# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
include("/root/repo/build/tests/platform_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/telemetry_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/estimators_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/experiments_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/active_sampling_test[1]_include.cmake")
include("/root/repo/build/tests/csv_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/simplex_stress_test[1]_include.cmake")
include("/root/repo/build/tests/eigen_test[1]_include.cmake")
include("/root/repo/build/tests/coverage_test[1]_include.cmake")
