file(REMOVE_RECURSE
  "CMakeFiles/simplex_stress_test.dir/simplex_stress_test.cc.o"
  "CMakeFiles/simplex_stress_test.dir/simplex_stress_test.cc.o.d"
  "simplex_stress_test"
  "simplex_stress_test.pdb"
  "simplex_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simplex_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
