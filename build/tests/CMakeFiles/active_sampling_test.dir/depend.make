# Empty dependencies file for active_sampling_test.
# This may be replaced when dependencies are built.
