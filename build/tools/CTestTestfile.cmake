# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_demo "/root/repo/build/tools/leo_cli" "demo" "--out" "/root/repo/build/tools/cli_demo_out")
set_tests_properties(cli_demo PROPERTIES  FIXTURES_SETUP "cli_data" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_estimate "sh" "-c" "/root/repo/build/tools/leo_cli estimate              --prior /root/repo/build/tools/cli_demo_out/prior_perf.csv              --obs /root/repo/build/tools/cli_demo_out/obs_perf.csv > /root/repo/build/tools/cli_demo_out/est.csv              && test -s /root/repo/build/tools/cli_demo_out/est.csv")
set_tests_properties(cli_estimate PROPERTIES  FIXTURES_REQUIRED "cli_data" FIXTURES_SETUP "cli_est" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;11;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_schedule "sh" "-c" "cut -d, -f1,2 /root/repo/build/tools/cli_demo_out/est.csv              > /root/repo/build/tools/cli_demo_out/perf.csv &&              awk -F, '{print \$1\",\"(100 + 5 * \$1)}'                  /root/repo/build/tools/cli_demo_out/perf.csv > /root/repo/build/tools/cli_demo_out/power.csv &&              /root/repo/build/tools/leo_cli schedule                  --perf /root/repo/build/tools/cli_demo_out/perf.csv                  --power /root/repo/build/tools/cli_demo_out/power.csv                  --work 1000 --deadline 10 --idle 85")
set_tests_properties(cli_schedule PROPERTIES  FIXTURES_REQUIRED "cli_data;cli_est" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;19;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_usage "/root/repo/build/tools/leo_cli" "estimate" "--prior" "/nonexistent" "--obs" "/nonexistent")
set_tests_properties(cli_bad_usage PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;31;add_test;/root/repo/tools/CMakeLists.txt;0;")
