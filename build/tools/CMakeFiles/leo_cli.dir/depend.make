# Empty dependencies file for leo_cli.
# This may be replaced when dependencies are built.
