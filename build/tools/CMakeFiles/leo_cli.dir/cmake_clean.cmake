file(REMOVE_RECURSE
  "CMakeFiles/leo_cli.dir/leo_cli.cc.o"
  "CMakeFiles/leo_cli.dir/leo_cli.cc.o.d"
  "leo_cli"
  "leo_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leo_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
