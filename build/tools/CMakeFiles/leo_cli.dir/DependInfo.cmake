
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/leo_cli.cc" "tools/CMakeFiles/leo_cli.dir/leo_cli.cc.o" "gcc" "tools/CMakeFiles/leo_cli.dir/leo_cli.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/leo_core.dir/DependInfo.cmake"
  "/root/repo/build/src/experiments/CMakeFiles/leo_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/leo_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/estimators/CMakeFiles/leo_estimators.dir/DependInfo.cmake"
  "/root/repo/build/src/optimizer/CMakeFiles/leo_optimizer.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/leo_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/leo_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/leo_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/leo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/leo_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
