# Empty compiler generated dependencies file for tab01_phase_energy.
# This may be replaced when dependencies are built.
