file(REMOVE_RECURSE
  "CMakeFiles/tab01_phase_energy.dir/bench/tab01_phase_energy.cc.o"
  "CMakeFiles/tab01_phase_energy.dir/bench/tab01_phase_energy.cc.o.d"
  "bench/tab01_phase_energy"
  "bench/tab01_phase_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab01_phase_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
