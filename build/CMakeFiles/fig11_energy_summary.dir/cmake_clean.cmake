file(REMOVE_RECURSE
  "CMakeFiles/fig11_energy_summary.dir/bench/fig11_energy_summary.cc.o"
  "CMakeFiles/fig11_energy_summary.dir/bench/fig11_energy_summary.cc.o.d"
  "bench/fig11_energy_summary"
  "bench/fig11_energy_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_energy_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
