# Empty dependencies file for fig07_perf_examples.
# This may be replaced when dependencies are built.
