file(REMOVE_RECURSE
  "CMakeFiles/fig07_perf_examples.dir/bench/fig07_perf_examples.cc.o"
  "CMakeFiles/fig07_perf_examples.dir/bench/fig07_perf_examples.cc.o.d"
  "bench/fig07_perf_examples"
  "bench/fig07_perf_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_perf_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
