file(REMOVE_RECURSE
  "CMakeFiles/fig04_covariance.dir/bench/fig04_covariance.cc.o"
  "CMakeFiles/fig04_covariance.dir/bench/fig04_covariance.cc.o.d"
  "bench/fig04_covariance"
  "bench/fig04_covariance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_covariance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
