# Empty dependencies file for fig04_covariance.
# This may be replaced when dependencies are built.
