file(REMOVE_RECURSE
  "CMakeFiles/fig10_energy_vs_utilization.dir/bench/fig10_energy_vs_utilization.cc.o"
  "CMakeFiles/fig10_energy_vs_utilization.dir/bench/fig10_energy_vs_utilization.cc.o.d"
  "bench/fig10_energy_vs_utilization"
  "bench/fig10_energy_vs_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_energy_vs_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
