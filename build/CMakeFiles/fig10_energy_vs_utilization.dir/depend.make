# Empty dependencies file for fig10_energy_vs_utilization.
# This may be replaced when dependencies are built.
