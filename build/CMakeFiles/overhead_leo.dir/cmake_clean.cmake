file(REMOVE_RECURSE
  "CMakeFiles/overhead_leo.dir/bench/overhead_leo.cc.o"
  "CMakeFiles/overhead_leo.dir/bench/overhead_leo.cc.o.d"
  "bench/overhead_leo"
  "bench/overhead_leo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/overhead_leo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
