# Empty compiler generated dependencies file for overhead_leo.
# This may be replaced when dependencies are built.
