file(REMOVE_RECURSE
  "CMakeFiles/abl01_em_init.dir/bench/abl01_em_init.cc.o"
  "CMakeFiles/abl01_em_init.dir/bench/abl01_em_init.cc.o.d"
  "bench/abl01_em_init"
  "bench/abl01_em_init.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl01_em_init.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
