# Empty compiler generated dependencies file for abl01_em_init.
# This may be replaced when dependencies are built.
