file(REMOVE_RECURSE
  "CMakeFiles/fig06_power_accuracy.dir/bench/fig06_power_accuracy.cc.o"
  "CMakeFiles/fig06_power_accuracy.dir/bench/fig06_power_accuracy.cc.o.d"
  "bench/fig06_power_accuracy"
  "bench/fig06_power_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_power_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
