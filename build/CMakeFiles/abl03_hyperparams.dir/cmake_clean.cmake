file(REMOVE_RECURSE
  "CMakeFiles/abl03_hyperparams.dir/bench/abl03_hyperparams.cc.o"
  "CMakeFiles/abl03_hyperparams.dir/bench/abl03_hyperparams.cc.o.d"
  "bench/abl03_hyperparams"
  "bench/abl03_hyperparams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl03_hyperparams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
