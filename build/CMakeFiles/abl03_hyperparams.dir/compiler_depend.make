# Empty compiler generated dependencies file for abl03_hyperparams.
# This may be replaced when dependencies are built.
