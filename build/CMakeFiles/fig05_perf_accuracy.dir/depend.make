# Empty dependencies file for fig05_perf_accuracy.
# This may be replaced when dependencies are built.
