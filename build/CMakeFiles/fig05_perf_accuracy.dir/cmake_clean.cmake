file(REMOVE_RECURSE
  "CMakeFiles/fig05_perf_accuracy.dir/bench/fig05_perf_accuracy.cc.o"
  "CMakeFiles/fig05_perf_accuracy.dir/bench/fig05_perf_accuracy.cc.o.d"
  "bench/fig05_perf_accuracy"
  "bench/fig05_perf_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_perf_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
