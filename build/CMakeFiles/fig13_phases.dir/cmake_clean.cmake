file(REMOVE_RECURSE
  "CMakeFiles/fig13_phases.dir/bench/fig13_phases.cc.o"
  "CMakeFiles/fig13_phases.dir/bench/fig13_phases.cc.o.d"
  "bench/fig13_phases"
  "bench/fig13_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
