# Empty dependencies file for fig13_phases.
# This may be replaced when dependencies are built.
