# Empty dependencies file for abl02_active_sampling.
# This may be replaced when dependencies are built.
