file(REMOVE_RECURSE
  "CMakeFiles/abl02_active_sampling.dir/bench/abl02_active_sampling.cc.o"
  "CMakeFiles/abl02_active_sampling.dir/bench/abl02_active_sampling.cc.o.d"
  "bench/abl02_active_sampling"
  "bench/abl02_active_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl02_active_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
