file(REMOVE_RECURSE
  "CMakeFiles/fig08_power_examples.dir/bench/fig08_power_examples.cc.o"
  "CMakeFiles/fig08_power_examples.dir/bench/fig08_power_examples.cc.o.d"
  "bench/fig08_power_examples"
  "bench/fig08_power_examples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_power_examples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
