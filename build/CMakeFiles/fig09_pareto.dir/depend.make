# Empty dependencies file for fig09_pareto.
# This may be replaced when dependencies are built.
