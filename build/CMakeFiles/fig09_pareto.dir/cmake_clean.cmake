file(REMOVE_RECURSE
  "CMakeFiles/fig09_pareto.dir/bench/fig09_pareto.cc.o"
  "CMakeFiles/fig09_pareto.dir/bench/fig09_pareto.cc.o.d"
  "bench/fig09_pareto"
  "bench/fig09_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
