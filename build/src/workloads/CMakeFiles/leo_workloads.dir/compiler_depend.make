# Empty compiler generated dependencies file for leo_workloads.
# This may be replaced when dependencies are built.
