file(REMOVE_RECURSE
  "CMakeFiles/leo_workloads.dir/app_model.cc.o"
  "CMakeFiles/leo_workloads.dir/app_model.cc.o.d"
  "CMakeFiles/leo_workloads.dir/ground_truth.cc.o"
  "CMakeFiles/leo_workloads.dir/ground_truth.cc.o.d"
  "CMakeFiles/leo_workloads.dir/inputs.cc.o"
  "CMakeFiles/leo_workloads.dir/inputs.cc.o.d"
  "CMakeFiles/leo_workloads.dir/phased.cc.o"
  "CMakeFiles/leo_workloads.dir/phased.cc.o.d"
  "CMakeFiles/leo_workloads.dir/scaling.cc.o"
  "CMakeFiles/leo_workloads.dir/scaling.cc.o.d"
  "CMakeFiles/leo_workloads.dir/suite.cc.o"
  "CMakeFiles/leo_workloads.dir/suite.cc.o.d"
  "libleo_workloads.a"
  "libleo_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leo_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
