
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/app_model.cc" "src/workloads/CMakeFiles/leo_workloads.dir/app_model.cc.o" "gcc" "src/workloads/CMakeFiles/leo_workloads.dir/app_model.cc.o.d"
  "/root/repo/src/workloads/ground_truth.cc" "src/workloads/CMakeFiles/leo_workloads.dir/ground_truth.cc.o" "gcc" "src/workloads/CMakeFiles/leo_workloads.dir/ground_truth.cc.o.d"
  "/root/repo/src/workloads/inputs.cc" "src/workloads/CMakeFiles/leo_workloads.dir/inputs.cc.o" "gcc" "src/workloads/CMakeFiles/leo_workloads.dir/inputs.cc.o.d"
  "/root/repo/src/workloads/phased.cc" "src/workloads/CMakeFiles/leo_workloads.dir/phased.cc.o" "gcc" "src/workloads/CMakeFiles/leo_workloads.dir/phased.cc.o.d"
  "/root/repo/src/workloads/scaling.cc" "src/workloads/CMakeFiles/leo_workloads.dir/scaling.cc.o" "gcc" "src/workloads/CMakeFiles/leo_workloads.dir/scaling.cc.o.d"
  "/root/repo/src/workloads/suite.cc" "src/workloads/CMakeFiles/leo_workloads.dir/suite.cc.o" "gcc" "src/workloads/CMakeFiles/leo_workloads.dir/suite.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/platform/CMakeFiles/leo_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/leo_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
