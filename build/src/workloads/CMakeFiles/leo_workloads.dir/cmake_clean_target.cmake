file(REMOVE_RECURSE
  "libleo_workloads.a"
)
