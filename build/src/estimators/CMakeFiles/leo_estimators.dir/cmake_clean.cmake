file(REMOVE_RECURSE
  "CMakeFiles/leo_estimators.dir/active_sampling.cc.o"
  "CMakeFiles/leo_estimators.dir/active_sampling.cc.o.d"
  "CMakeFiles/leo_estimators.dir/estimator.cc.o"
  "CMakeFiles/leo_estimators.dir/estimator.cc.o.d"
  "CMakeFiles/leo_estimators.dir/leo.cc.o"
  "CMakeFiles/leo_estimators.dir/leo.cc.o.d"
  "CMakeFiles/leo_estimators.dir/normalization.cc.o"
  "CMakeFiles/leo_estimators.dir/normalization.cc.o.d"
  "CMakeFiles/leo_estimators.dir/offline.cc.o"
  "CMakeFiles/leo_estimators.dir/offline.cc.o.d"
  "CMakeFiles/leo_estimators.dir/online.cc.o"
  "CMakeFiles/leo_estimators.dir/online.cc.o.d"
  "libleo_estimators.a"
  "libleo_estimators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leo_estimators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
