# Empty compiler generated dependencies file for leo_estimators.
# This may be replaced when dependencies are built.
