
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/estimators/active_sampling.cc" "src/estimators/CMakeFiles/leo_estimators.dir/active_sampling.cc.o" "gcc" "src/estimators/CMakeFiles/leo_estimators.dir/active_sampling.cc.o.d"
  "/root/repo/src/estimators/estimator.cc" "src/estimators/CMakeFiles/leo_estimators.dir/estimator.cc.o" "gcc" "src/estimators/CMakeFiles/leo_estimators.dir/estimator.cc.o.d"
  "/root/repo/src/estimators/leo.cc" "src/estimators/CMakeFiles/leo_estimators.dir/leo.cc.o" "gcc" "src/estimators/CMakeFiles/leo_estimators.dir/leo.cc.o.d"
  "/root/repo/src/estimators/normalization.cc" "src/estimators/CMakeFiles/leo_estimators.dir/normalization.cc.o" "gcc" "src/estimators/CMakeFiles/leo_estimators.dir/normalization.cc.o.d"
  "/root/repo/src/estimators/offline.cc" "src/estimators/CMakeFiles/leo_estimators.dir/offline.cc.o" "gcc" "src/estimators/CMakeFiles/leo_estimators.dir/offline.cc.o.d"
  "/root/repo/src/estimators/online.cc" "src/estimators/CMakeFiles/leo_estimators.dir/online.cc.o" "gcc" "src/estimators/CMakeFiles/leo_estimators.dir/online.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/telemetry/CMakeFiles/leo_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/leo_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/leo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/leo_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/leo_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
