file(REMOVE_RECURSE
  "libleo_estimators.a"
)
