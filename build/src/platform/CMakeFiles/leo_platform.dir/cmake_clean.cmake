file(REMOVE_RECURSE
  "CMakeFiles/leo_platform.dir/config_space.cc.o"
  "CMakeFiles/leo_platform.dir/config_space.cc.o.d"
  "CMakeFiles/leo_platform.dir/machine.cc.o"
  "CMakeFiles/leo_platform.dir/machine.cc.o.d"
  "libleo_platform.a"
  "libleo_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leo_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
