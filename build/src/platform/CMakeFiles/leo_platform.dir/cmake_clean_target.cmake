file(REMOVE_RECURSE
  "libleo_platform.a"
)
