# Empty dependencies file for leo_platform.
# This may be replaced when dependencies are built.
