
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/platform/config_space.cc" "src/platform/CMakeFiles/leo_platform.dir/config_space.cc.o" "gcc" "src/platform/CMakeFiles/leo_platform.dir/config_space.cc.o.d"
  "/root/repo/src/platform/machine.cc" "src/platform/CMakeFiles/leo_platform.dir/machine.cc.o" "gcc" "src/platform/CMakeFiles/leo_platform.dir/machine.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/leo_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
