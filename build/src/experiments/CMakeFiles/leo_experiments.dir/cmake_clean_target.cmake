file(REMOVE_RECURSE
  "libleo_experiments.a"
)
