# Empty compiler generated dependencies file for leo_experiments.
# This may be replaced when dependencies are built.
