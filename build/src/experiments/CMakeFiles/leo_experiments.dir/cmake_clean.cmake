file(REMOVE_RECURSE
  "CMakeFiles/leo_experiments.dir/accuracy.cc.o"
  "CMakeFiles/leo_experiments.dir/accuracy.cc.o.d"
  "CMakeFiles/leo_experiments.dir/csv.cc.o"
  "CMakeFiles/leo_experiments.dir/csv.cc.o.d"
  "CMakeFiles/leo_experiments.dir/energy.cc.o"
  "CMakeFiles/leo_experiments.dir/energy.cc.o.d"
  "CMakeFiles/leo_experiments.dir/report.cc.o"
  "CMakeFiles/leo_experiments.dir/report.cc.o.d"
  "libleo_experiments.a"
  "libleo_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leo_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
