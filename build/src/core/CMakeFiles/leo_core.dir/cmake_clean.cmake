file(REMOVE_RECURSE
  "CMakeFiles/leo_core.dir/leo_system.cc.o"
  "CMakeFiles/leo_core.dir/leo_system.cc.o.d"
  "libleo_core.a"
  "libleo_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leo_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
