file(REMOVE_RECURSE
  "libleo_telemetry.a"
)
