file(REMOVE_RECURSE
  "CMakeFiles/leo_telemetry.dir/meters.cc.o"
  "CMakeFiles/leo_telemetry.dir/meters.cc.o.d"
  "CMakeFiles/leo_telemetry.dir/profile_store.cc.o"
  "CMakeFiles/leo_telemetry.dir/profile_store.cc.o.d"
  "CMakeFiles/leo_telemetry.dir/sampler.cc.o"
  "CMakeFiles/leo_telemetry.dir/sampler.cc.o.d"
  "libleo_telemetry.a"
  "libleo_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leo_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
