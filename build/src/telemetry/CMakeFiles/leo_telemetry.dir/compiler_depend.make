# Empty compiler generated dependencies file for leo_telemetry.
# This may be replaced when dependencies are built.
