
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/telemetry/meters.cc" "src/telemetry/CMakeFiles/leo_telemetry.dir/meters.cc.o" "gcc" "src/telemetry/CMakeFiles/leo_telemetry.dir/meters.cc.o.d"
  "/root/repo/src/telemetry/profile_store.cc" "src/telemetry/CMakeFiles/leo_telemetry.dir/profile_store.cc.o" "gcc" "src/telemetry/CMakeFiles/leo_telemetry.dir/profile_store.cc.o.d"
  "/root/repo/src/telemetry/sampler.cc" "src/telemetry/CMakeFiles/leo_telemetry.dir/sampler.cc.o" "gcc" "src/telemetry/CMakeFiles/leo_telemetry.dir/sampler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/leo_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/leo_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/leo_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/linalg/CMakeFiles/leo_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
