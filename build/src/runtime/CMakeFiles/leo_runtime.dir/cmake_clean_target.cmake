file(REMOVE_RECURSE
  "libleo_runtime.a"
)
