file(REMOVE_RECURSE
  "CMakeFiles/leo_runtime.dir/controller.cc.o"
  "CMakeFiles/leo_runtime.dir/controller.cc.o.d"
  "CMakeFiles/leo_runtime.dir/phased_run.cc.o"
  "CMakeFiles/leo_runtime.dir/phased_run.cc.o.d"
  "libleo_runtime.a"
  "libleo_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leo_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
