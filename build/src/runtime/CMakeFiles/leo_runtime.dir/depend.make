# Empty dependencies file for leo_runtime.
# This may be replaced when dependencies are built.
