file(REMOVE_RECURSE
  "libleo_linalg.a"
)
