file(REMOVE_RECURSE
  "CMakeFiles/leo_linalg.dir/cholesky.cc.o"
  "CMakeFiles/leo_linalg.dir/cholesky.cc.o.d"
  "CMakeFiles/leo_linalg.dir/eigen.cc.o"
  "CMakeFiles/leo_linalg.dir/eigen.cc.o.d"
  "CMakeFiles/leo_linalg.dir/least_squares.cc.o"
  "CMakeFiles/leo_linalg.dir/least_squares.cc.o.d"
  "CMakeFiles/leo_linalg.dir/matrix.cc.o"
  "CMakeFiles/leo_linalg.dir/matrix.cc.o.d"
  "CMakeFiles/leo_linalg.dir/poly_features.cc.o"
  "CMakeFiles/leo_linalg.dir/poly_features.cc.o.d"
  "CMakeFiles/leo_linalg.dir/simplex.cc.o"
  "CMakeFiles/leo_linalg.dir/simplex.cc.o.d"
  "CMakeFiles/leo_linalg.dir/vector.cc.o"
  "CMakeFiles/leo_linalg.dir/vector.cc.o.d"
  "libleo_linalg.a"
  "libleo_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leo_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
