
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/linalg/cholesky.cc" "src/linalg/CMakeFiles/leo_linalg.dir/cholesky.cc.o" "gcc" "src/linalg/CMakeFiles/leo_linalg.dir/cholesky.cc.o.d"
  "/root/repo/src/linalg/eigen.cc" "src/linalg/CMakeFiles/leo_linalg.dir/eigen.cc.o" "gcc" "src/linalg/CMakeFiles/leo_linalg.dir/eigen.cc.o.d"
  "/root/repo/src/linalg/least_squares.cc" "src/linalg/CMakeFiles/leo_linalg.dir/least_squares.cc.o" "gcc" "src/linalg/CMakeFiles/leo_linalg.dir/least_squares.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/linalg/CMakeFiles/leo_linalg.dir/matrix.cc.o" "gcc" "src/linalg/CMakeFiles/leo_linalg.dir/matrix.cc.o.d"
  "/root/repo/src/linalg/poly_features.cc" "src/linalg/CMakeFiles/leo_linalg.dir/poly_features.cc.o" "gcc" "src/linalg/CMakeFiles/leo_linalg.dir/poly_features.cc.o.d"
  "/root/repo/src/linalg/simplex.cc" "src/linalg/CMakeFiles/leo_linalg.dir/simplex.cc.o" "gcc" "src/linalg/CMakeFiles/leo_linalg.dir/simplex.cc.o.d"
  "/root/repo/src/linalg/vector.cc" "src/linalg/CMakeFiles/leo_linalg.dir/vector.cc.o" "gcc" "src/linalg/CMakeFiles/leo_linalg.dir/vector.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
