# Empty compiler generated dependencies file for leo_linalg.
# This may be replaced when dependencies are built.
