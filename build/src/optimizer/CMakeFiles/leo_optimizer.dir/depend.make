# Empty dependencies file for leo_optimizer.
# This may be replaced when dependencies are built.
