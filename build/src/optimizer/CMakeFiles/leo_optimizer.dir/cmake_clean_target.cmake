file(REMOVE_RECURSE
  "libleo_optimizer.a"
)
