file(REMOVE_RECURSE
  "CMakeFiles/leo_optimizer.dir/pareto.cc.o"
  "CMakeFiles/leo_optimizer.dir/pareto.cc.o.d"
  "CMakeFiles/leo_optimizer.dir/schedule.cc.o"
  "CMakeFiles/leo_optimizer.dir/schedule.cc.o.d"
  "libleo_optimizer.a"
  "libleo_optimizer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leo_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
