
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/metrics.cc" "src/stats/CMakeFiles/leo_stats.dir/metrics.cc.o" "gcc" "src/stats/CMakeFiles/leo_stats.dir/metrics.cc.o.d"
  "/root/repo/src/stats/mvn.cc" "src/stats/CMakeFiles/leo_stats.dir/mvn.cc.o" "gcc" "src/stats/CMakeFiles/leo_stats.dir/mvn.cc.o.d"
  "/root/repo/src/stats/rng.cc" "src/stats/CMakeFiles/leo_stats.dir/rng.cc.o" "gcc" "src/stats/CMakeFiles/leo_stats.dir/rng.cc.o.d"
  "/root/repo/src/stats/summary.cc" "src/stats/CMakeFiles/leo_stats.dir/summary.cc.o" "gcc" "src/stats/CMakeFiles/leo_stats.dir/summary.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/linalg/CMakeFiles/leo_linalg.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
