file(REMOVE_RECURSE
  "libleo_stats.a"
)
