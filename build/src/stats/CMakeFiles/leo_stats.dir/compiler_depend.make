# Empty compiler generated dependencies file for leo_stats.
# This may be replaced when dependencies are built.
