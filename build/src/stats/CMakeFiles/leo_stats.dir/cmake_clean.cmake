file(REMOVE_RECURSE
  "CMakeFiles/leo_stats.dir/metrics.cc.o"
  "CMakeFiles/leo_stats.dir/metrics.cc.o.d"
  "CMakeFiles/leo_stats.dir/mvn.cc.o"
  "CMakeFiles/leo_stats.dir/mvn.cc.o.d"
  "CMakeFiles/leo_stats.dir/rng.cc.o"
  "CMakeFiles/leo_stats.dir/rng.cc.o.d"
  "CMakeFiles/leo_stats.dir/summary.cc.o"
  "CMakeFiles/leo_stats.dir/summary.cc.o.d"
  "libleo_stats.a"
  "libleo_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/leo_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
