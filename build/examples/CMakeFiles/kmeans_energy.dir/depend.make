# Empty dependencies file for kmeans_energy.
# This may be replaced when dependencies are built.
