file(REMOVE_RECURSE
  "CMakeFiles/kmeans_energy.dir/kmeans_energy.cpp.o"
  "CMakeFiles/kmeans_energy.dir/kmeans_energy.cpp.o.d"
  "kmeans_energy"
  "kmeans_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kmeans_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
