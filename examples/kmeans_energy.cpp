/**
 * @file
 * The Section 2 motivational example, end to end.
 *
 * Kmeans on the 32-point core-allocation space: its performance peaks
 * at 8 cores and collapses beyond, which racing-to-idle and offline
 * averaging both miss. LEO observes only 6 core counts
 * (5, 10, ..., 30) and still reconstructs the peak, because a
 * previously profiled application with a similar peak conditions its
 * estimate. Prints the Figure 1 data: per-core estimates from every
 * approach, then energy versus utilization.
 */

#include <cstdio>

#include "estimators/leo.hh"
#include "estimators/offline.hh"
#include "estimators/online.hh"
#include "optimizer/schedule.hh"
#include "platform/config_space.hh"
#include "stats/metrics.hh"
#include "telemetry/profile_store.hh"
#include "telemetry/sampler.hh"
#include "workloads/ground_truth.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace leo;

    platform::Machine machine;
    auto space = platform::ConfigSpace::coreOnly(machine);
    stats::Rng rng(2);

    telemetry::HeartbeatMonitor monitor;
    telemetry::WattsUpMeter meter;
    auto store = telemetry::ProfileStore::collect(
        workloads::standardSuite(), machine, space, monitor, meter,
        rng);
    auto prior = store.without("kmeans");

    workloads::ApplicationModel kmeans(
        workloads::profileByName("kmeans"), machine);
    auto truth = workloads::computeGroundTruth(kmeans, space);

    // Observe 6 uniformly spaced core counts: 5, 10, ..., 30.
    telemetry::Profiler profiler(monitor, meter);
    telemetry::UniformGridSampler grid;
    auto obs = profiler.sample(kmeans, space, grid, 6, rng);
    std::printf("Observed cores:");
    for (auto i : obs.indices)
        std::printf(" %zu", i + 1);
    std::printf("\n\n");

    estimators::LeoEstimator leo;
    // Degree 4 on the single core knob: the highest degree the
    // 6-point design supports, matching the paper's online
    // baseline, which bends enough to place a (wrong) peak.
    estimators::OnlineEstimator online(4);
    estimators::OfflineEstimator offline;
    estimators::EstimationInputs inputs{space, prior, obs};
    auto e_leo = leo.estimate(inputs);
    auto e_on = online.estimate(inputs);
    auto e_off = offline.estimate(inputs);

    // Figure 1a/1b: estimates as a function of cores.
    std::printf("cores  true-perf  leo  online  offline   "
                "true-W   leo-W  online-W  offline-W\n");
    for (std::size_t c = 0; c < space.size(); ++c) {
        std::printf("%5zu  %9.1f  %5.1f  %6.1f  %7.1f  %7.1f  %6.1f"
                    "  %8.1f  %9.1f\n",
                    c + 1, truth.performance[c],
                    e_leo.performance.values[c],
                    e_on.performance.values[c],
                    e_off.performance.values[c], truth.power[c],
                    e_leo.power.values[c], e_on.power.values[c],
                    e_off.power.values[c]);
    }

    std::printf("\nPeak found at %zu cores (true peak: %zu); "
                "LEO perf accuracy %.3f\n",
                e_leo.performance.values.argmax() + 1,
                truth.performance.argmax() + 1,
                stats::accuracy(e_leo.performance.values,
                                truth.performance));

    // Figure 1c: energy versus utilization.
    const double idle = machine.spec().idleSystemPowerW;
    std::printf("\nutil%%   leo-J   online-J  offline-J  race-J  "
                "optimal-J\n");
    for (int u = 10; u <= 100; u += 10) {
        optimizer::PerformanceConstraint c;
        c.deadlineSeconds = 100.0;
        c.work = (u / 100.0) * truth.performance.max() *
                 c.deadlineSeconds;
        auto energy = [&](const estimators::Estimate &e) {
            auto plan = optimizer::planMinimalEnergy(
                e.performance.values, e.power.values, idle, c);
            return optimizer::executeScheduleGuarded(plan, truth.performance,
                                              truth.power, idle, c)
                .energyJoules;
        };
        optimizer::Schedule race;
        race.parts.push_back({space.size() - 1, c.deadlineSeconds});
        const double race_j =
            optimizer::executeSchedule(race, truth.performance,
                                       truth.power, idle, c)
                .energyJoules;
        auto best = optimizer::planMinimalEnergy(
            truth.performance, truth.power, idle, c);
        const double best_j =
            optimizer::executeScheduleGuarded(best, truth.performance,
                                       truth.power, idle, c)
                .energyJoules;
        std::printf("%4d  %7.0f  %8.0f  %9.0f  %6.0f  %9.0f\n", u,
                    energy(e_leo), energy(e_on), energy(e_off),
                    race_j, best_j);
    }
    return 0;
}
