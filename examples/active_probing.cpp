/**
 * @file
 * Active probing: spending the measurement budget where the model is
 * least certain.
 *
 * This repository's extension beyond the paper: instead of sampling
 * configurations uniformly at random (Section 6.3), use the
 * hierarchical model's posterior predictive variance to decide what
 * to measure next. This example runs both policies side by side on a
 * benchmark of your choice and prints where each spent its probes
 * and what accuracy it bought.
 *
 *   ./active_probing [benchmark] [budget]    (default: kmeans 10)
 */

#include <cstdio>
#include <string>

#include "estimators/active_sampling.hh"
#include "estimators/leo.hh"
#include "platform/config_space.hh"
#include "stats/metrics.hh"
#include "telemetry/profile_store.hh"
#include "telemetry/sampler.hh"
#include "workloads/ground_truth.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace leo;
    const std::string name = argc > 1 ? argv[1] : "kmeans";
    const std::size_t budget =
        argc > 2 ? static_cast<std::size_t>(std::atol(argv[2])) : 10;

    platform::Machine machine;
    auto space = platform::ConfigSpace::coreOnly(machine);
    stats::Rng rng(11);
    telemetry::HeartbeatMonitor monitor;
    telemetry::WattsUpMeter meter;
    auto store = telemetry::ProfileStore::collect(
        workloads::standardSuite(), machine, space, monitor, meter,
        rng);
    auto prior = estimators::priorVectors(
        store.without(name), estimators::Metric::Performance);

    workloads::ApplicationModel app(workloads::profileByName(name),
                                    machine);
    auto gt = workloads::computeGroundTruth(app, space);

    // Random policy.
    telemetry::Profiler profiler(monitor, meter);
    telemetry::RandomSampler random_policy;
    auto obs_random =
        profiler.sample(app, space, random_policy, budget, rng);

    // Variance-guided policy.
    estimators::VarianceGuidedSampler active;
    auto measure = [&](std::size_t idx) {
        telemetry::Sample s;
        s.configIndex = idx;
        const auto &ra = space.assignment(idx);
        s.heartbeatRate = monitor.measureRate(app, ra, rng);
        s.powerWatts = meter.read(app, ra, rng);
        return s;
    };
    auto obs_active = active.collect(measure, prior, budget, rng);

    estimators::LeoEstimator leo;
    auto score = [&](const telemetry::Observations &obs) {
        return stats::accuracy(
            leo.estimateMetric(space, prior, obs.indices,
                               obs.performance)
                .values,
            gt.performance);
    };

    auto show = [&](const char *tag,
                    const telemetry::Observations &obs) {
        std::printf("%-16s probes at cores:", tag);
        for (std::size_t idx : obs.indices)
            std::printf(" %zu", idx + 1);
        std::printf("\n%-16s accuracy: %.3f\n", "", score(obs));
    };
    std::printf("%s on %zu core allocations, budget %zu\n\n",
                name.c_str(), space.size(), budget);
    show("random", obs_random);
    show("variance-guided", obs_active);
    return 0;
}
