/**
 * @file
 * Quickstart: the whole LEO pipeline in one page.
 *
 * Build the paper's platform (dual-Xeon, 1024 configurations),
 * collect the offline database from the 25-benchmark suite, observe a
 * "new" application in 20 random configurations, estimate its
 * performance and power everywhere with the hierarchical Bayesian
 * model, and pick the minimal-energy schedule for a 50% utilization
 * demand.
 *
 *   ./quickstart [benchmark-name]     (default: kmeans)
 */

#include <cstdio>
#include <string>

#include "core/leo_system.hh"
#include "stats/metrics.hh"
#include "workloads/ground_truth.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace leo;
    const std::string name = argc > 1 ? argv[1] : "kmeans";

    // 1. The assembled system: machine + 1024-config space + offline
    //    profiles of the 25-benchmark suite.
    std::printf("Building LEO system (collecting offline profiles)...\n");
    auto sys = core::LeoSystem::withStandardSuite();

    // 2. A "new" application arrives. (In this simulator it is a
    //    synthetic model; on real hardware it would be a heartbeat-
    //    instrumented process.)
    workloads::ApplicationModel target(
        workloads::profileByName(name), sys.machine());

    // 3. Observe it in a handful of configurations.
    stats::Rng rng(7);
    auto obs = sys.observe(target, rng);
    std::printf("Observed %zu of %zu configurations.\n", obs.size(),
                sys.space().size());

    // 4. Estimate everything. Exclude the target from the prior so
    //    this is an honest leave-one-out prediction.
    auto est = sys.estimate(obs, name);

    auto truth = workloads::computeGroundTruth(target, sys.space());
    std::printf("Estimation accuracy (Equation 5): "
                "performance %.3f, power %.3f\n",
                stats::accuracy(est.performance.values,
                                truth.performance),
                stats::accuracy(est.power.values, truth.power));

    // 5. Minimize energy for a 50% utilization demand.
    optimizer::PerformanceConstraint constraint;
    constraint.deadlineSeconds = 100.0;
    constraint.work =
        0.5 * truth.performance.max() * constraint.deadlineSeconds;

    auto plan = sys.minimizeEnergy(est, constraint);
    std::printf("\nMinimal-energy plan for 50%% utilization "
                "(W = %.0f heartbeats, T = %.0f s):\n",
                constraint.work, constraint.deadlineSeconds);
    for (const auto &part : plan.parts) {
        if (part.configIndex == optimizer::kIdleConfig) {
            std::printf("  idle                 %8.2f s\n",
                        part.seconds);
        } else {
            std::printf("  config %4zu (%s)  %8.2f s\n",
                        part.configIndex,
                        sys.space().describe(part.configIndex).c_str(),
                        part.seconds);
        }
    }

    const double idle = sys.machine().spec().idleSystemPowerW;
    auto run = optimizer::executeScheduleGuarded(
        plan, truth.performance, truth.power, idle, constraint);
    auto best = optimizer::executeScheduleGuarded(
        optimizer::planMinimalEnergy(truth.performance, truth.power,
                                     idle, constraint),
        truth.performance, truth.power, idle, constraint);
    optimizer::Schedule race;
    race.parts.push_back(
        {sys.space().size() - 1, constraint.deadlineSeconds});
    auto raced = optimizer::executeSchedule(
        race, truth.performance, truth.power, idle, constraint);

    std::printf("\nMeasured energy: LEO plan %.0f J  |  optimal %.0f J"
                "  |  race-to-idle %.0f J\n",
                run.energyJoules, best.energyJoules,
                raced.energyJoules);
    std::printf("LEO is within %.1f%% of optimal; race-to-idle wastes "
                "%.1f%%.\n",
                100.0 * (run.energyJoules / best.energyJoules - 1.0),
                100.0 * (raced.energyJoules / best.energyJoules - 1.0));
    return 0;
}
