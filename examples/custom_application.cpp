/**
 * @file
 * Bringing your own application and platform to LEO.
 *
 * The library is not tied to the paper's testbed or suite: this
 * example builds a smaller 8-core machine, defines two custom
 * application models, profiles a custom prior database, and uses the
 * estimator + optimizer directly (no facade) — the integration path a
 * downstream system would take.
 */

#include <cstdio>

#include "estimators/leo.hh"
#include "optimizer/schedule.hh"
#include "platform/config_space.hh"
#include "stats/metrics.hh"
#include "telemetry/profile_store.hh"
#include "telemetry/sampler.hh"
#include "workloads/ground_truth.hh"

int
main()
{
    using namespace leo;

    // --- A custom platform: single-socket 8-core, 8 DVFS steps. ----
    platform::MachineSpec spec;
    spec.coresPerSocket = 8;
    spec.sockets = 1;
    spec.memControllers = 1;
    spec.dvfsSteps = 8;
    spec.minFreqGHz = 0.8;
    spec.maxFreqGHz = 3.2;
    spec.turboPeakGHz = 3.6;
    spec.turboAllCoreGHz = 3.4;
    spec.idleSystemPowerW = 30.0;
    spec.tdpPerSocketW = 65.0;
    platform::Machine machine(spec);
    auto space = platform::ConfigSpace::fullFactorial(machine);
    std::printf("Custom platform: %zu configurations\n", space.size());

    // --- Custom applications. --------------------------------------
    auto make_app = [](const char *name, workloads::ScalingKind kind,
                       double param, double peak, double mem) {
        workloads::ApplicationProfile p;
        p.name = name;
        p.suite = "custom";
        p.baseHeartbeatRate = 40.0;
        p.kind = kind;
        p.scaleParam = param;
        p.scalePeak = peak;
        p.scaleDecay = 0.92;
        p.memIntensity = mem;
        p.freqSensitivity = 0.8;
        p.htEfficiency = 0.3;
        p.textureSeed = std::hash<std::string>{}(name);
        return p;
    };

    std::vector<workloads::ApplicationProfile> prior_apps{
        make_app("encoder", workloads::ScalingKind::Saturating, 0.93,
                 6, 0.04),
        make_app("solver", workloads::ScalingKind::Amdahl, 0.96, 0,
                 0.15),
        make_app("indexer", workloads::ScalingKind::Peaked, 0.94, 5,
                 0.08),
        make_app("renderer", workloads::ScalingKind::Linear, 0.9, 0,
                 0.02),
        make_app("ingest", workloads::ScalingKind::Log, 1.8, 0, 0.12),
    };

    stats::Rng rng(21);
    telemetry::HeartbeatMonitor monitor;
    telemetry::WattsUpMeter meter;
    auto prior_store = telemetry::ProfileStore::collect(
        prior_apps, machine, space, monitor, meter, rng);

    // --- The new, unseen application. ------------------------------
    auto target_profile = make_app(
        "analytics", workloads::ScalingKind::Peaked, 0.95, 4, 0.10);
    workloads::ApplicationModel target(target_profile, machine);
    auto truth = workloads::computeGroundTruth(target, space);

    telemetry::Profiler profiler(monitor, meter);
    telemetry::RandomSampler policy;
    auto obs = profiler.sample(target, space, policy, 16, rng);

    estimators::LeoEstimator leo;
    estimators::EstimationInputs inputs{space, prior_store, obs};
    auto est = leo.estimate(inputs);

    std::printf("Estimated 'analytics' from %zu observations: "
                "perf accuracy %.3f, power accuracy %.3f\n",
                obs.size(),
                stats::accuracy(est.performance.values,
                                truth.performance),
                stats::accuracy(est.power.values, truth.power));

    // --- Use the estimates: sweep demands, print chosen configs. ---
    std::printf("\ndemand(hb/s)  chosen-config        "
                "predicted-W  true-W\n");
    for (double frac : {0.25, 0.5, 0.75, 0.95}) {
        optimizer::PerformanceConstraint c;
        c.deadlineSeconds = 60.0;
        c.work = frac * truth.performance.max() * c.deadlineSeconds;
        auto plan = optimizer::planMinimalEnergy(
            est.performance.values, est.power.values,
            spec.idleSystemPowerW, c);
        // Report the dominant (longest) productive part.
        std::size_t cfg = 0;
        double secs = -1.0;
        for (const auto &part : plan.parts) {
            if (part.configIndex != optimizer::kIdleConfig &&
                part.seconds > secs) {
                secs = part.seconds;
                cfg = part.configIndex;
            }
        }
        std::printf("%11.1f  %-18s  %11.1f  %6.1f\n",
                    c.work / c.deadlineSeconds,
                    space.describe(cfg).c_str(),
                    est.power.values[cfg], truth.power[cfg]);
    }
    return 0;
}
