/**
 * @file
 * Adapting to phase changes (the Section 6.6 scenario).
 *
 * fluidanimate renders frames in real time; halfway through, its
 * input enters a lighter phase needing 2/3 the resources per frame.
 * A LEO-driven controller detects the drift from its predictions,
 * re-samples, re-estimates, and settles on a cheaper configuration —
 * compare its energy with an oracle that switches instantly.
 */

#include <cstdio>

#include "estimators/leo.hh"
#include "platform/config_space.hh"
#include "runtime/phased_run.hh"
#include "telemetry/profile_store.hh"
#include "workloads/ground_truth.hh"
#include "workloads/suite.hh"

int
main()
{
    using namespace leo;

    platform::Machine machine;
    auto space = platform::ConfigSpace::coreOnly(machine);
    stats::Rng rng(4);

    telemetry::HeartbeatMonitor monitor;
    telemetry::WattsUpMeter meter;
    auto store = telemetry::ProfileStore::collect(
        workloads::standardSuite(), machine, space, monitor, meter,
        rng);
    auto prior = store.without("fluidanimate");

    auto app = workloads::PhasedApplication::fluidanimateTwoPhase(100);

    // Real-time demand: 60% of the heavy phase's peak rate.
    workloads::ApplicationModel heavy(app.phases()[0].profile,
                                      machine);
    auto gt = workloads::computeGroundTruth(heavy, space);
    runtime::ControllerOptions opt;
    opt.targetRate = 0.6 * gt.performance.max();
    opt.sampleBudget = 6;

    estimators::LeoEstimator leo;
    stats::Rng rng_leo(9), rng_oracle(9);
    auto mine = runtime::runPhased(app, machine, space, &leo, prior,
                                   opt, rng_leo);
    auto oracle = runtime::runPhased(app, machine, space, nullptr,
                                     store, opt, rng_oracle);

    std::printf("frame  phase  config  rate/target  power-W  "
                "sampling\n");
    for (const auto &f : mine.trace) {
        if (f.frame % 10 != 0 && !f.sampling)
            continue; // print every 10th frame plus probe frames
        std::printf("%5zu  %5zu  %6zu  %11.2f  %7.1f  %s\n", f.frame,
                    f.phase, f.configIndex,
                    f.normalizedPerformance, f.powerWatts,
                    f.sampling ? "probe" : "");
    }

    std::printf("\nPhase energies (J): LEO %.0f / %.0f  |  oracle "
                "%.0f / %.0f\n",
                mine.phaseEnergy[0], mine.phaseEnergy[1],
                oracle.phaseEnergy[0], oracle.phaseEnergy[1]);
    std::printf("Total: LEO %.0f J vs oracle %.0f J (%.1f%% over); "
                "%zu re-estimation(s); %.0f%% frames on time\n",
                mine.totalEnergy, oracle.totalEnergy,
                100.0 * (mine.totalEnergy / oracle.totalEnergy - 1.0),
                mine.reestimations, 100.0 * mine.deadlineHitRate);
    return 0;
}
