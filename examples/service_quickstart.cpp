/**
 * @file
 * Serving-core quickstart: many applications, one process.
 *
 * Builds the shared world once (machine, configuration space,
 * offline prior), admits a small fleet of tenants into
 * leo::service::Service, and drives each through its sampling phase
 * into steady-state control — samples flowing through the sharded
 * lock-free queues, all EM fits batched on the shared pool, cold
 * fits shared through the fit cache. Finishes with a snapshot
 * round-trip to show bit-identical resumption.
 *
 *   ./service_quickstart [tenants]     (default: 6)
 */

#include <cstdio>
#include <string>

#include "estimators/leo.hh"
#include "linalg/serialize.hh"
#include "obs/obs.hh"
#include "parallel/thread_pool.hh"
#include "service/service.hh"
#include "telemetry/profile_store.hh"
#include "workloads/ground_truth.hh"
#include "workloads/suite.hh"

int
main(int argc, char **argv)
{
    using namespace leo;
    const std::size_t tenants =
        argc > 1 ? static_cast<std::size_t>(std::stoul(argv[1])) : 6;

    // 1. The shared world: one machine, one space, one offline
    //    prior, one estimator, one pool — for every tenant.
    platform::Machine machine;
    auto space = platform::ConfigSpace::coreOnly(machine);
    telemetry::HeartbeatMonitor monitor(0.01);
    telemetry::WattsUpMeter meter(0.005, 0.1);
    stats::Rng store_rng(7);
    std::printf("Collecting the shared offline prior...\n");
    auto prior = std::make_shared<const telemetry::ProfileStore>(
        telemetry::ProfileStore::collect(workloads::standardSuite(),
                                         machine, space, monitor,
                                         meter, store_rng)
            .without("x264"));
    estimators::LeoEstimator estimator;
    parallel::ThreadPool pool(2);

    // 2. The service: 4 shards, deferred batched fits, fit cache.
    service::ServiceOptions opt;
    opt.shards = 4;
    opt.controller.sampleBudget = 6;
    opt.controller.idlePower = machine.spec().idleSystemPowerW;
    service::Service svc(space, estimator, prior, pool, opt);

    // 3. Admit the fleet: same application binary, different
    //    performance demands (think replicas behind a balancer).
    workloads::ApplicationModel app(workloads::profileByName("x264"),
                                    machine);
    const auto gt = workloads::computeGroundTruth(app, space);
    std::vector<std::uint64_t> ids;
    std::vector<stats::Rng> meas;
    for (std::size_t t = 0; t < tenants; ++t) {
        service::TenantConfig cfg;
        cfg.appId = "x264";
        cfg.targetRate =
            (0.3 + 0.4 * static_cast<double>(t) /
                       static_cast<double>(tenants)) *
            gt.performance.max();
        cfg.seed = 100 + t;
        ids.push_back(*svc.admit(cfg));
        meas.emplace_back(900 + t);
    }
    std::printf("Admitted %zu tenants across %zu shards.\n",
                svc.activeTenants(), opt.shards);

    // 4. The serving loop: ask, measure, submit, tick. In a real
    //    deployment submit() is called from the tenants' own threads;
    //    tick() runs on the control plane.
    for (std::size_t round = 0; round < 16; ++round) {
        for (std::size_t t = 0; t < tenants; ++t) {
            const std::size_t cfg = svc.nextConfig(ids[t]);
            const auto &ra = space.assignment(cfg);
            svc.submit(ids[t],
                       {cfg, monitor.measureRate(app, ra, meas[t]),
                        meter.read(app, ra, meas[t])});
        }
        const auto report = svc.tick();
        if (report.tenantsFitted > 0)
            std::printf("  tick %2zu: %zu windows, fitted %zu "
                        "tenants (%zu EM fits batched, %zu cache "
                        "hits)\n",
                        round, report.windowsProcessed,
                        report.tenantsFitted, report.fitsBatched,
                        report.cacheHits);
    }

    // 5. Snapshot and restore: the restored service resumes every
    //    tenant's schedule bit for bit.
    linalg::ByteWriter writer;
    svc.saveSnapshot(writer);
    const std::string blob = writer.take();
    service::Service resumed(space, estimator, prior, pool, opt);
    linalg::ByteReader reader(blob);
    if (!resumed.restoreSnapshot(reader)) {
        std::fprintf(stderr, "restore failed\n");
        return 1;
    }
    bool identical = true;
    for (std::size_t t = 0; t < tenants; ++t)
        identical = identical &&
                    svc.nextConfig(ids[t]) == resumed.nextConfig(ids[t]);
    std::printf("Snapshot: %zu bytes; restored fleet resumes %s.\n",
                blob.size(),
                identical ? "bit-identically" : "DIFFERENTLY (bug!)");

    const auto snap = svc.metrics().snapshot();
    std::printf("Counters: %llu windows, %llu fits batched, "
                "%llu cache hits.\n",
                static_cast<unsigned long long>(snap.counterOr(
                    obs::names::kServiceWindowsProcessed)),
                static_cast<unsigned long long>(snap.counterOr(
                    obs::names::kServiceFitsBatched)),
                static_cast<unsigned long long>(
                    snap.counterOr(obs::names::kServiceCacheHits)));
    return identical ? 0 : 1;
}
