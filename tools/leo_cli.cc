/**
 * @file
 * leo_cli — LEO from the command line, over CSV files.
 *
 * Subcommands:
 *
 *   estimate --prior FILE --obs FILE [--psi X] [--iters N]
 *            [--threads N]
 *       Fit the hierarchical model: FILE formats per
 *       src/experiments/csv.hh. Prints `index,estimate,stddev` for
 *       every configuration to stdout.
 *
 *   schedule --perf FILE --power FILE --work W --deadline T
 *            [--idle WATTS]
 *       Solve Equation (1) on estimate tables (index,value rows).
 *       Prints the minimal-energy time allocation.
 *
 *   demo [--out DIR]
 *       Generate example CSVs from the built-in simulator (the
 *       24-app leave-one-out prior for kmeans plus 6 observations),
 *       ready to feed back into `estimate`.
 *
 * Observability (any subcommand):
 *
 *   --metrics FILE   write the obs registry snapshot (JSON) on exit
 *   --trace FILE     record tracing spans and write a Chrome
 *                    trace_event JSON (Perfetto-loadable) on exit
 *
 * Exit status: 0 on success, 1 on bad usage or unreadable input.
 */

#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "estimators/leo.hh"
#include "experiments/csv.hh"
#include "linalg/error.hh"
#include "obs/obs.hh"
#include "optimizer/schedule.hh"
#include "platform/config_space.hh"
#include "telemetry/profile_store.hh"
#include "telemetry/sampler.hh"
#include "workloads/suite.hh"

namespace
{

using namespace leo;

/** Parsed --key value options. */
using Options = std::map<std::string, std::string>;

Options
parseOptions(int argc, char **argv, int first)
{
    Options opts;
    for (int i = first; i < argc; ++i) {
        std::string key = argv[i];
        if (key.rfind("--", 0) != 0)
            fatal("expected --option, got '" + key + "'");
        key = key.substr(2);
        if (i + 1 >= argc)
            fatal("missing value for --" + key);
        opts[key] = argv[++i];
    }
    return opts;
}

std::string
need(const Options &opts, const std::string &key)
{
    auto it = opts.find(key);
    if (it == opts.end())
        fatal("missing required option --" + key);
    return it->second;
}

double
getDouble(const Options &opts, const std::string &key,
          double fallback)
{
    auto it = opts.find(key);
    return it == opts.end() ? fallback : std::stod(it->second);
}

std::ifstream
open(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open " + path);
    return in;
}

/** Read an `index,value` table into a dense vector. */
linalg::Vector
readDense(const std::string &path)
{
    std::ifstream in = open(path);
    auto [idx, vals] = experiments::readObservations(in);
    std::size_t n = 0;
    for (std::size_t i : idx)
        n = std::max(n, i + 1);
    linalg::Vector dense(n, 0.0);
    for (std::size_t k = 0; k < idx.size(); ++k)
        dense[idx[k]] = vals[k];
    return dense;
}

int
cmdEstimate(const Options &opts)
{
    std::ifstream prior_in = open(need(opts, "prior"));
    const auto rows = experiments::readProfileTable(prior_in);
    require(!rows.empty(), "prior table is empty");

    std::ifstream obs_in = open(need(opts, "obs"));
    auto [obs_idx, obs_vals] = experiments::readObservations(obs_in);

    std::vector<linalg::Vector> prior;
    prior.reserve(rows.size());
    for (const auto &r : rows)
        prior.push_back(r.values);

    estimators::LeoOptions lo;
    lo.hyperPsiScale = getDouble(opts, "psi", lo.hyperPsiScale);
    lo.maxIterations = static_cast<std::size_t>(
        getDouble(opts, "iters", static_cast<double>(
                                     lo.maxIterations)));
    // 0 = shared pool sized from LEO_THREADS / hardware concurrency;
    // the fit is bitwise identical at any thread count.
    lo.threads = static_cast<std::size_t>(
        getDouble(opts, "threads", 0.0));
    const estimators::LeoEstimator leo(lo);
    const estimators::LeoFit fit =
        leo.fitMetric(prior, obs_idx, obs_vals);

    linalg::Vector stddev(fit.prediction.size());
    for (std::size_t i = 0; i < stddev.size(); ++i)
        stddev[i] = std::sqrt(fit.predictionVariance[i]);
    experiments::writeEstimates(std::cout, fit.prediction, stddev);
    std::cerr << "# EM: " << fit.iterations << " iterations, sigma^2="
              << fit.sigma2 << (fit.converged ? " (converged)" : "")
              << "\n";
    return 0;
}

int
cmdSchedule(const Options &opts)
{
    const linalg::Vector perf = readDense(need(opts, "perf"));
    const linalg::Vector power = readDense(need(opts, "power"));
    require(perf.size() == power.size(),
            "perf and power tables differ in length");

    optimizer::PerformanceConstraint c;
    c.work = std::stod(need(opts, "work"));
    c.deadlineSeconds = std::stod(need(opts, "deadline"));
    const double idle = getDouble(opts, "idle", 85.0);

    const optimizer::Schedule plan =
        optimizer::planMinimalEnergy(perf, power, idle, c);
    for (const auto &part : plan.parts) {
        if (part.configIndex == optimizer::kIdleConfig)
            std::cout << "idle," << part.seconds << "\n";
        else
            std::cout << part.configIndex << "," << part.seconds
                      << "\n";
    }
    std::cerr << "# predicted energy: " << plan.predictedEnergy
              << " J" << (plan.feasible ? "" : " (INFEASIBLE demand)")
              << "\n";
    return plan.feasible ? 0 : 1;
}

int
cmdDemo(const Options &opts)
{
    const std::string dir =
        opts.count("out") ? opts.at("out") : ".";
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec)
        fatal("cannot create directory " + dir + ": " + ec.message());

    platform::Machine machine;
    auto space = platform::ConfigSpace::coreOnly(machine);
    stats::Rng rng(17);
    telemetry::HeartbeatMonitor monitor;
    telemetry::WattsUpMeter meter;
    auto store = telemetry::ProfileStore::collect(
        workloads::standardSuite(), machine, space, monitor, meter,
        rng);
    auto prior = store.without("kmeans");

    std::vector<experiments::NamedVector> rows;
    for (const auto &rec : prior.records())
        rows.push_back({rec.name, rec.performance});
    std::ofstream prior_out(dir + "/prior_perf.csv");
    require(static_cast<bool>(prior_out),
            "cannot write " + dir + "/prior_perf.csv");
    prior_out << "# heartbeat rate per core count, 24 applications\n";
    experiments::writeProfileTable(prior_out, rows);

    workloads::ApplicationModel kmeans(
        workloads::profileByName("kmeans"), machine);
    telemetry::Profiler profiler(monitor, meter);
    telemetry::UniformGridSampler grid;
    auto obs = profiler.sample(kmeans, space, grid, 6, rng);
    std::ofstream obs_out(dir + "/obs_perf.csv");
    require(static_cast<bool>(obs_out),
            "cannot write " + dir + "/obs_perf.csv");
    obs_out << "# kmeans observed at cores 5,10,...,30\n";
    experiments::writeObservations(obs_out, obs.indices,
                                   obs.performance);

    std::cout << "wrote " << dir << "/prior_perf.csv and " << dir
              << "/obs_perf.csv\n"
              << "try:  leo_cli estimate --prior " << dir
              << "/prior_perf.csv --obs " << dir << "/obs_perf.csv\n";
    return 0;
}

void
usage()
{
    std::cerr
        << "usage: leo_cli estimate --prior FILE --obs FILE "
           "[--psi X] [--iters N] [--threads N]\n"
           "       leo_cli schedule --perf FILE --power FILE "
           "--work W --deadline T [--idle WATTS]\n"
           "       leo_cli demo [--out DIR]\n"
           "any subcommand also takes --metrics FILE (registry "
           "snapshot JSON)\n"
           "and --trace FILE (Chrome trace_event JSON)\n";
}

/** Write the --metrics / --trace outputs after a subcommand ran. */
void
writeObsOutputs(const Options &opts)
{
    if (opts.count("trace")) {
        obs::Tracer &tracer = obs::Tracer::global();
        tracer.disable();
        if (!tracer.writeChromeTrace(opts.at("trace")))
            fatal("cannot write " + opts.at("trace"));
        std::cerr << "# trace: " << tracer.recorded() << " spans ("
                  << tracer.dropped() << " dropped) -> "
                  << opts.at("trace") << "\n";
    }
    if (opts.count("metrics")) {
        std::ofstream out(opts.at("metrics"));
        if (!out)
            fatal("cannot write " + opts.at("metrics"));
        out << obs::snapshotJson();
    }
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string cmd = argv[1];
    try {
        const Options opts = parseOptions(argc, argv, 2);
        if (opts.count("trace"))
            obs::Tracer::global().enable(1u << 16);
        int rc = 1;
        if (cmd == "estimate")
            rc = cmdEstimate(opts);
        else if (cmd == "schedule")
            rc = cmdSchedule(opts);
        else if (cmd == "demo")
            rc = cmdDemo(opts);
        else {
            usage();
            return 1;
        }
        writeObsOutputs(opts);
        return rc;
    } catch (const leo::Error &e) {
        std::cerr << "leo_cli: " << e.what() << "\n";
        return 1;
    } catch (const std::exception &e) {
        std::cerr << "leo_cli: " << e.what() << "\n";
        return 1;
    }
}
