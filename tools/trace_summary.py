#!/usr/bin/env python3
"""Summarize a leo::obs Chrome trace_event JSON file.

Usage: tools/trace_summary.py TRACE.json [--top N] [--sort total|self]

TRACE.json is the ``{"displayTimeUnit": "ms", "traceEvents": [...]}``
document written by ``obs::Tracer::writeChromeTrace`` (also what
``overhead_leo --trace`` and ``leo_cli --trace`` emit). The script
aggregates the complete ("X") events per span name and prints one row
each: call count, total wall time, *self* time (total minus the time
spent in spans nested inside on the same thread), and the p50/p95 of
the span duration. Rows are sorted by total time (or self time with
``--sort self``) and truncated to the top N (default 20).

Exits non-zero when the file is not a valid trace document, so CI can
use it as a cheap format check as well.
"""

import argparse
import json
import sys
from collections import defaultdict


def load_events(path):
    """Return the list of complete (ph == "X") events of a trace."""
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(f"{path}: not a trace_event document "
                         "(missing 'traceEvents')")
    events = []
    for e in doc["traceEvents"]:
        if e.get("ph") != "X":
            continue
        for key in ("name", "ts", "dur", "tid"):
            if key not in e:
                raise ValueError(f"{path}: X event missing '{key}'")
        events.append(e)
    return events


def self_times(events):
    """Per-event self time: duration minus same-thread nested spans.

    Events are swept per thread in start order with an interval
    stack; a span that starts inside the stack top is charged to the
    parent's child time. Identical start times nest the longer span
    outside (it must be the parent if either is).
    """
    self_us = {}
    by_tid = defaultdict(list)
    for e in events:
        by_tid[e["tid"]].append(e)
    for evs in by_tid.values():
        evs.sort(key=lambda e: (e["ts"], -e["dur"]))
        stack = []  # (end_ts, event_id, child_time)
        child = {}
        for e in evs:
            start, end = e["ts"], e["ts"] + e["dur"]
            while stack and stack[-1][0] <= start:
                stack.pop()
            if stack:
                child[stack[-1][1]] = child.get(stack[-1][1], 0.0) \
                    + e["dur"]
            stack.append((end, id(e)))
        for e in evs:
            self_us[id(e)] = e["dur"] - child.get(id(e), 0.0)
    return self_us


def percentile(sorted_vals, q):
    """Nearest-rank percentile of an already-sorted list."""
    if not sorted_vals:
        return 0.0
    k = max(0, min(len(sorted_vals) - 1,
                   int(round(q * (len(sorted_vals) - 1)))))
    return sorted_vals[k]


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="Top spans of a leo::obs Chrome trace")
    ap.add_argument("trace")
    ap.add_argument("--top", type=int, default=20,
                    help="rows to print (default 20)")
    ap.add_argument("--sort", choices=["total", "self"],
                    default="total", help="sort key (default total)")
    args = ap.parse_args(argv)

    try:
        events = load_events(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as e:
        print(f"trace_summary: {e}", file=sys.stderr)
        return 1

    selfs = self_times(events)
    rows = defaultdict(lambda: {"count": 0, "total": 0.0,
                                "self": 0.0, "durs": []})
    for e in events:
        r = rows[e["name"]]
        r["count"] += 1
        r["total"] += e["dur"]
        r["self"] += selfs[id(e)]
        r["durs"].append(e["dur"])

    order = sorted(rows.items(), key=lambda kv: -kv[1][args.sort])
    width = max([len(n) for n, _ in order] + [4])
    print(f"{'span':<{width}}  {'count':>7}  {'total ms':>10}"
          f"  {'self ms':>10}  {'p50 ms':>9}  {'p95 ms':>9}")
    for name, r in order[:args.top]:
        durs = sorted(r["durs"])
        print(f"{name:<{width}}  {r['count']:>7}"
              f"  {r['total'] / 1e3:>10.3f}  {r['self'] / 1e3:>10.3f}"
              f"  {percentile(durs, 0.50) / 1e3:>9.3f}"
              f"  {percentile(durs, 0.95) / 1e3:>9.3f}")
    if len(order) > args.top:
        print(f"... {len(order) - args.top} more span name(s)")
    print(f"\n{len(events)} spans, {len(rows)} names, "
          f"{len({e['tid'] for e in events})} thread(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
