#!/usr/bin/env bash
# Build and run the robustness-sensitive test binaries under
# AddressSanitizer + UndefinedBehaviorSanitizer (the
# -DLEO_SANITIZE=address preset of the top-level CMakeLists.txt, which
# expands to ASan+UBSan). This is the acceptance gate for src/faults/
# and the fault-injection / sanitization / graceful-degradation path:
# a heap error or UB triggered by corrupted telemetry fails the run.
#
# Usage: tools/run_asan_tests.sh [build-dir]
#   build-dir  defaults to build-asan (kept separate from the plain
#              build so the two configurations never collide)
set -euo pipefail

src_dir=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$src_dir/build-asan"}

cmake -B "$build_dir" -S "$src_dir" \
    -DLEO_SANITIZE=address \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j \
    --target robustness_test optimizer_test runtime_test lowrank_test service_test global_test scenario_test simplex_stress_test

# ASAN/UBSAN_OPTIONS: fail the script on any report; UBSan reports are
# non-fatal by default, so force a non-zero exit and keep going within
# a binary so one finding does not mask another.
asan="abort_on_error=0 exitcode=66 ${ASAN_OPTIONS:-}"
ubsan="halt_on_error=0 exitcode=66 print_stacktrace=1 ${UBSAN_OPTIONS:-}"
for t in robustness_test optimizer_test runtime_test lowrank_test service_test global_test scenario_test simplex_stress_test; do
    ASAN_OPTIONS="$asan" UBSAN_OPTIONS="$ubsan" \
        "$build_dir/tests/$t"
done

echo "ASan+UBSan run clean: robustness_test + optimizer_test + runtime_test + lowrank_test + service_test + global_test + scenario_test + simplex_stress_test"
