/**
 * @file
 * leo-lint: project-invariant static analysis for the LEO tree.
 *
 * The invariants built up by the previous PRs — bitwise-deterministic
 * parallel reduction, the allocation-free EM hot loop,
 * sanitize-at-every-estimator-boundary, the never-throwing
 * controller, and the obs naming contract — are properties no
 * off-the-shelf tool knows about. This tool enforces them at build
 * time with a small check registry over a hand-rolled C++ tokenizer
 * (no libclang dependency; the tool builds with the tree's own
 * toolchain and nothing else).
 *
 * Checks (see DESIGN.md "Static analysis and enforced invariants"):
 *
 *   determinism        no wall-clock / libc randomness / unordered
 *                      container use inside the deterministic core
 *                      (src/estimators, src/linalg, src/parallel,
 *                      src/optimizer, src/scenario, src/service,
 *                      src/stats)
 *   hot-alloc          no allocation inside regions bracketed by
 *                      `// leo-lint: hot-begin` / `hot-end` markers
 *   sanitize-boundary  every estimate()/estimateMetric() definition
 *                      in src/estimators (.cc files) sanitizes its
 *                      observations or delegates to one that does
 *   controller-nothrow `throw` is forbidden in
 *                      src/runtime/controller.cc
 *   obs-naming         instrument name literals must match
 *                      leo.<subsystem>.<name> and live in
 *                      src/obs/names.hh (call sites use the
 *                      constants, never raw literals)
 *   header-hygiene     headers open with a guard and never say
 *                      `using namespace`
 *
 * Suppression: append `// leo-lint: allow(<check>[, <check>...])` to
 * the offending line. `allow(all)` silences every check on the line.
 * Directives are recognized in line comments only.
 *
 * Usage:
 *   leo_lint [--root DIR] [--json] [--list-checks] [paths...]
 *
 * With no paths, scans src/, tools/, bench/ and tests/ under the
 * root (default: current directory), skipping tests/lint_fixtures/
 * and build directories. Exit status: 0 clean, 1 findings, 2 usage
 * or I/O error.
 *
 * The test harness includes this file with LEO_LINT_NO_MAIN defined
 * and drives lintSource() directly over fixture snippets.
 */

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace leolint
{

// ---------------------------------------------------------------- //
// Tokenizer                                                        //
// ---------------------------------------------------------------- //

/** Lexical class of a token. */
enum class TokenKind
{
    Identifier, //!< Identifiers and keywords.
    Number,     //!< Numeric literals.
    String,     //!< String literal (text excludes the quotes).
    Character,  //!< Character literal.
    Punct       //!< Punctuation; `::` and `->` are single tokens.
};

/** One token with its source line. */
struct Token
{
    TokenKind kind;
    std::string text;
    int line;
};

/** An inclusive line range bracketed by hot-begin/hot-end markers. */
struct HotRegion
{
    int begin;
    int end;
};

/** A tokenized source file plus its lint directives. */
struct SourceUnit
{
    std::string rel; //!< Root-relative path with '/' separators.
    std::vector<Token> tokens;
    /** Line -> checks allowed ("all" allows everything). */
    std::map<int, std::set<std::string>> allows;
    std::vector<HotRegion> hotRegions;
    /** Lines of unmatched hot markers (reported as findings). */
    std::vector<int> danglingHotMarkers;
};

namespace
{

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Trim ASCII whitespace from both ends. */
std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Parse a `leo-lint:` directive found in a line comment. */
void
applyDirective(SourceUnit &unit, const std::string &comment, int line,
               std::vector<int> &hot_stack)
{
    const std::string marker = "leo-lint:";
    const std::size_t at = comment.find(marker);
    if (at == std::string::npos)
        return;
    const std::string body = trim(comment.substr(at + marker.size()));
    if (body.rfind("allow(", 0) == 0) {
        const std::size_t close = body.find(')');
        if (close == std::string::npos)
            return;
        std::string names = body.substr(6, close - 6);
        std::replace(names.begin(), names.end(), ',', ' ');
        std::istringstream in(names);
        std::string name;
        while (in >> name)
            unit.allows[line].insert(name);
    } else if (body.rfind("hot-begin", 0) == 0) {
        hot_stack.push_back(line);
    } else if (body.rfind("hot-end", 0) == 0) {
        if (hot_stack.empty()) {
            unit.danglingHotMarkers.push_back(line);
        } else {
            unit.hotRegions.push_back({hot_stack.back(), line});
            hot_stack.pop_back();
        }
    }
}

} // namespace

/**
 * Tokenize one source file. Comments are consumed (and scanned for
 * directives); string and character literals become single tokens so
 * checks never mistake quoted text for code.
 */
SourceUnit
tokenize(const std::string &rel, const std::string &src)
{
    SourceUnit unit;
    unit.rel = rel;
    std::vector<int> hot_stack;
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = src.size();

    auto advanceLine = [&](char c) {
        if (c == '\n')
            ++line;
    };

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Line comment (may carry a lint directive).
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            const std::size_t eol = src.find('\n', i);
            const std::string text =
                src.substr(i, (eol == std::string::npos ? n : eol) - i);
            applyDirective(unit, text, line, hot_stack);
            i = eol == std::string::npos ? n : eol;
            continue;
        }
        // Block comment.
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            i += 2;
            while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
                advanceLine(src[i]);
                ++i;
            }
            i = std::min(n, i + 2);
            continue;
        }
        // Raw string literal R"delim(...)delim".
        if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
            std::size_t p = i + 2;
            std::string delim;
            while (p < n && src[p] != '(')
                delim += src[p++];
            const std::string close = ")" + delim + "\"";
            const std::size_t end = src.find(close, p);
            const int start_line = line;
            const std::size_t stop =
                end == std::string::npos ? n : end + close.size();
            std::string text = src.substr(
                p + 1, (end == std::string::npos ? n : end) - p - 1);
            for (std::size_t q = i; q < stop; ++q)
                advanceLine(src[q]);
            unit.tokens.push_back(
                {TokenKind::String, std::move(text), start_line});
            i = stop;
            continue;
        }
        // String / character literal.
        if (c == '"' || c == '\'') {
            const char quote = c;
            std::string text;
            ++i;
            while (i < n && src[i] != quote) {
                if (src[i] == '\\' && i + 1 < n) {
                    text += src[i];
                    text += src[i + 1];
                    advanceLine(src[i + 1]);
                    i += 2;
                    continue;
                }
                advanceLine(src[i]);
                text += src[i++];
            }
            ++i; // Closing quote.
            unit.tokens.push_back({quote == '"' ? TokenKind::String
                                                : TokenKind::Character,
                                   std::move(text), line});
            continue;
        }
        // Identifier / keyword.
        if (identStart(c)) {
            std::size_t b = i;
            while (i < n && identChar(src[i]))
                ++i;
            unit.tokens.push_back(
                {TokenKind::Identifier, src.substr(b, i - b), line});
            continue;
        }
        // Number (simplified: digits, dots, exponent tails).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
            std::size_t b = i;
            while (i < n &&
                   (identChar(src[i]) || src[i] == '.' ||
                    ((src[i] == '+' || src[i] == '-') && i > b &&
                     (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                      src[i - 1] == 'p' || src[i - 1] == 'P')))) {
                ++i;
            }
            unit.tokens.push_back(
                {TokenKind::Number, src.substr(b, i - b), line});
            continue;
        }
        // Punctuation; keep `::` and `->` whole for the checks.
        if (c == ':' && i + 1 < n && src[i + 1] == ':') {
            unit.tokens.push_back({TokenKind::Punct, "::", line});
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && src[i + 1] == '>') {
            unit.tokens.push_back({TokenKind::Punct, "->", line});
            i += 2;
            continue;
        }
        unit.tokens.push_back({TokenKind::Punct, std::string(1, c), line});
        ++i;
    }
    for (int l : hot_stack)
        unit.danglingHotMarkers.push_back(l);
    return unit;
}

// ---------------------------------------------------------------- //
// Diagnostics and the check registry                               //
// ---------------------------------------------------------------- //

/** One finding. */
struct Diagnostic
{
    std::string check;
    std::string file;
    int line;
    std::string message;
};

/** Context shared by every check. */
struct LintContext
{
    /** Names declared in src/obs/names.hh. */
    std::set<std::string> obsNames;
    /** True once names.hh was parsed (obs-naming needs it). */
    bool obsNamesLoaded = false;
};

using CheckFn = void (*)(const SourceUnit &, const LintContext &,
                         std::vector<Diagnostic> &);

/** A registered check. */
struct Check
{
    std::string name;
    std::string description;
    CheckFn run;
};

namespace
{

bool
hasExtension(const std::string &rel, const char *ext)
{
    const std::size_t len = std::string(ext).size();
    return rel.size() >= len &&
           rel.compare(rel.size() - len, len, ext) == 0;
}

bool
isHeader(const std::string &rel)
{
    return hasExtension(rel, ".hh") || hasExtension(rel, ".h") ||
           hasExtension(rel, ".hpp");
}

bool
underAny(const std::string &rel,
         std::initializer_list<const char *> prefixes)
{
    for (const char *p : prefixes)
        if (rel.rfind(p, 0) == 0)
            return true;
    return false;
}

void
report(std::vector<Diagnostic> &out, const SourceUnit &unit,
       const char *check, int line, std::string message)
{
    out.push_back({check, unit.rel, line, std::move(message)});
}

/** True when `name` is valid per the leo.<subsystem>.<name> scheme. */
bool
validObsName(const std::string &name)
{
    if (name.rfind("leo.", 0) != 0)
        return false;
    std::size_t components = 0;
    std::size_t b = 4;
    while (b <= name.size()) {
        const std::size_t dot = std::min(name.find('.', b), name.size());
        if (dot == b)
            return false; // Empty component.
        for (std::size_t i = b; i < dot; ++i) {
            const char c = name[i];
            const bool ok =
                (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                c == '_';
            if (!ok)
                return false;
        }
        ++components;
        b = dot + 1;
    }
    return components >= 2; // At least subsystem + name.
}

// ---- determinism ----------------------------------------------- //

void
checkDeterminism(const SourceUnit &unit, const LintContext &,
                 std::vector<Diagnostic> &out)
{
    if (!underAny(unit.rel,
                  {"src/estimators/", "src/linalg/", "src/parallel/",
                   "src/optimizer/", "src/scenario/", "src/service/",
                   "src/stats/"}))
        return;
    static const std::set<std::string> banned_idents = {
        "random_device", "system_clock", "high_resolution_clock",
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    static const std::set<std::string> banned_calls = {
        "rand", "srand", "rand_r", "drand48", "time", "clock"};
    const std::vector<Token> &t = unit.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokenKind::Identifier)
            continue;
        if (banned_idents.count(t[i].text)) {
            report(out, unit, "determinism", t[i].line,
                   "'" + t[i].text +
                       "' in the deterministic core: iteration order "
                       "/ values are nondeterministic (use std::map, "
                       "sorted vectors, steady_clock or seeded "
                       "stats::Rng instead)");
            continue;
        }
        // Bare libc calls: `rand(`, `time(` etc. Member calls like
        // `rng.rand(...)` would be a different function; only flag
        // the unqualified or std-qualified form.
        if (banned_calls.count(t[i].text) && i + 1 < t.size() &&
            t[i + 1].kind == TokenKind::Punct && t[i + 1].text == "(") {
            const bool member =
                i > 0 && t[i - 1].kind == TokenKind::Punct &&
                (t[i - 1].text == "." || t[i - 1].text == "->");
            if (!member) {
                report(out, unit, "determinism", t[i].line,
                       "call to '" + t[i].text +
                           "(' in the deterministic core: wall-clock "
                           "and libc randomness break bitwise "
                           "reproducibility (use stats::Rng with an "
                           "explicit seed)");
            }
        }
    }
}

// ---- hot-alloc -------------------------------------------------- //

void
checkHotAlloc(const SourceUnit &unit, const LintContext &,
              std::vector<Diagnostic> &out)
{
    for (int l : unit.danglingHotMarkers)
        report(out, unit, "hot-alloc", l,
               "unmatched hot-begin/hot-end marker");
    if (unit.hotRegions.empty())
        return;
    static const std::set<std::string> containers = {
        "vector",        "deque",         "list",
        "map",           "set",           "multimap",
        "multiset",      "unordered_map", "unordered_set",
        "unordered_multimap", "unordered_multiset", "basic_string"};
    static const std::set<std::string> alloc_calls = {
        "malloc", "calloc", "realloc", "strdup", "make_unique",
        "make_shared"};
    auto inHot = [&](int line) {
        for (const HotRegion &r : unit.hotRegions)
            if (line >= r.begin && line <= r.end)
                return true;
        return false;
    };
    const std::vector<Token> &t = unit.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokenKind::Identifier || !inHot(t[i].line))
            continue;
        const std::string &w = t[i].text;
        const bool after_scope = i > 0 &&
                                 t[i - 1].kind == TokenKind::Punct &&
                                 t[i - 1].text == "::";
        const bool after_member =
            i > 0 && t[i - 1].kind == TokenKind::Punct &&
            (t[i - 1].text == "." || t[i - 1].text == "->");
        if (w == "new") {
            report(out, unit, "hot-alloc", t[i].line,
                   "'new' inside a hot region: the loop must stay "
                   "allocation-free (acquire the buffer from the "
                   "Workspace before the loop)");
        } else if (w == "resize" && after_member) {
            report(out, unit, "hot-alloc", t[i].line,
                   "'.resize(' inside a hot region may reallocate; "
                   "size the buffer before the loop");
        } else if ((w == "string" || w == "to_string") && after_scope) {
            report(out, unit, "hot-alloc", t[i].line,
                   "std::" + w +
                       " temporary inside a hot region allocates; "
                       "build strings outside the loop");
        } else if (containers.count(w) && after_scope) {
            report(out, unit, "hot-alloc", t[i].line,
                   "std::" + w +
                       " constructed inside a hot region allocates; "
                       "acquire it from the Workspace before the "
                       "loop");
        } else if (alloc_calls.count(w) && i + 1 < t.size() &&
                   t[i + 1].text == "(") {
            report(out, unit, "hot-alloc", t[i].line,
                   "'" + w + "(' inside a hot region allocates");
        }
    }
}

// ---- sanitize-boundary ------------------------------------------ //

void
checkSanitizeBoundary(const SourceUnit &unit, const LintContext &,
                      std::vector<Diagnostic> &out)
{
    if (unit.rel.rfind("src/estimators/", 0) != 0 ||
        !hasExtension(unit.rel, ".cc"))
        return;
    static const std::set<std::string> entry_points = {"estimate",
                                                       "estimateMetric"};
    const std::vector<Token> &t = unit.tokens;
    for (std::size_t i = 1; i < t.size(); ++i) {
        if (t[i].kind != TokenKind::Identifier ||
            !entry_points.count(t[i].text))
            continue;
        // Out-of-class definitions look like `Class::name(` — a
        // preceding `::` and a following `(`.
        if (t[i - 1].text != "::" || i + 1 >= t.size() ||
            t[i + 1].text != "(")
            continue;
        // Skip the parameter list.
        std::size_t j = i + 1;
        int parens = 0;
        for (; j < t.size(); ++j) {
            if (t[j].kind != TokenKind::Punct)
                continue;
            if (t[j].text == "(")
                ++parens;
            else if (t[j].text == ")" && --parens == 0)
                break;
        }
        // Scan qualifiers up to the body; a `;` means this was just
        // a qualified call or declaration.
        std::size_t body = j + 1;
        while (body < t.size() && t[body].text != "{" &&
               t[body].text != ";")
            ++body;
        if (body >= t.size() || t[body].text != "{")
            continue;
        // Walk the body looking for sanitizeObservations or a
        // delegating estimate*/fit call.
        int braces = 0;
        bool sanitized = false;
        std::size_t k = body;
        for (; k < t.size(); ++k) {
            if (t[k].kind == TokenKind::Punct) {
                if (t[k].text == "{")
                    ++braces;
                else if (t[k].text == "}" && --braces == 0)
                    break;
                continue;
            }
            if (t[k].kind != TokenKind::Identifier)
                continue;
            if (t[k].text == "sanitizeObservations" ||
                (k != i && entry_points.count(t[k].text) &&
                 k + 1 < t.size() && t[k + 1].text == "(")) {
                sanitized = true;
            }
        }
        if (!sanitized) {
            report(out, unit, "sanitize-boundary", t[i].line,
                   "estimator entry point '" + t[i].text +
                       "' neither calls sanitizeObservations() nor "
                       "delegates to an overload that does "
                       "(sanitize.hh: every estimator boundary "
                       "sanitizes its observations)");
        }
        i = k;
    }
}

// ---- controller-nothrow ----------------------------------------- //

void
checkControllerNoThrow(const SourceUnit &unit, const LintContext &,
                       std::vector<Diagnostic> &out)
{
    if (unit.rel != "src/runtime/controller.cc")
        return;
    for (const Token &tok : unit.tokens) {
        if (tok.kind == TokenKind::Identifier && tok.text == "throw") {
            report(out, unit, "controller-nothrow", tok.line,
                   "'throw' in the controller: no estimator or "
                   "planner failure may escape the control loop "
                   "(route it through the fit() guard and the "
                   "degradation policy instead)");
        }
    }
}

// ---- obs-naming ------------------------------------------------- //

void
checkObsNaming(const SourceUnit &unit, const LintContext &ctx,
               std::vector<Diagnostic> &out)
{
    if (!underAny(unit.rel, {"src/", "tools/", "bench/"}))
        return;
    const bool is_names_header = unit.rel == "src/obs/names.hh";
    static const std::set<std::string> instruments = {
        "counter", "gauge", "histogram", "counterOr", "gaugeOr",
        "histogramOr", "Span"};
    const std::vector<Token> &t = unit.tokens;
    if (is_names_header) {
        // The central header itself: every literal must be a valid
        // leo.<subsystem>.<name>.
        for (const Token &tok : t) {
            if (tok.kind == TokenKind::String &&
                !validObsName(tok.text)) {
                report(out, unit, "obs-naming", tok.line,
                       "'" + tok.text +
                           "' does not match leo.<subsystem>.<name> "
                           "(lowercase [a-z0-9_] components joined "
                           "by dots)");
            }
        }
        return;
    }
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (t[i].kind != TokenKind::Identifier ||
            !instruments.count(t[i].text))
            continue;
        // `counter("x")` and — for RAII spans — the declaration form
        // `Span span("x", ...)` with a variable name in between.
        std::size_t open = i + 1;
        if (t[i].text == "Span" &&
            t[open].kind == TokenKind::Identifier)
            ++open;
        if (open + 1 >= t.size() || t[open].text != "(" ||
            t[open + 1].kind != TokenKind::String)
            continue;
        const std::string &name = t[open + 1].text;
        if (!validObsName(name)) {
            report(out, unit, "obs-naming", t[open + 1].line,
                   "instrument name '" + name +
                       "' must match leo.<subsystem>.<name>; use the "
                       "constant from src/obs/names.hh");
        } else if (ctx.obsNamesLoaded && !ctx.obsNames.count(name)) {
            report(out, unit, "obs-naming", t[open + 1].line,
                   "instrument name '" + name +
                       "' is not declared in src/obs/names.hh; add "
                       "it there and reference the constant");
        }
    }
}

// ---- header-hygiene --------------------------------------------- //

void
checkHeaderHygiene(const SourceUnit &unit, const LintContext &,
                   std::vector<Diagnostic> &out)
{
    if (!isHeader(unit.rel))
        return;
    const std::vector<Token> &t = unit.tokens;
    if (t.empty())
        return;
    const bool pragma_once = t.size() >= 3 && t[0].text == "#" &&
                             t[1].text == "pragma" &&
                             t[2].text == "once";
    const bool ifndef_guard = t.size() >= 3 && t[0].text == "#" &&
                              t[1].text == "ifndef";
    if (!pragma_once && !ifndef_guard) {
        report(out, unit, "header-hygiene", t[0].line,
               "header must open with '#pragma once' or an #ifndef "
               "include guard (before any other code)");
    }
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind == TokenKind::Identifier &&
            t[i].text == "using" &&
            t[i + 1].kind == TokenKind::Identifier &&
            t[i + 1].text == "namespace") {
            report(out, unit, "header-hygiene", t[i].line,
                   "'using namespace' in a header leaks into every "
                   "includer; qualify names instead");
        }
    }
}

} // namespace

/** The registry: every check leo-lint knows about. */
const std::vector<Check> &
checks()
{
    static const std::vector<Check> registry = {
        {"determinism",
         "no clocks/randomness/unordered containers in the "
         "deterministic core",
         &checkDeterminism},
        {"hot-alloc",
         "no allocation between hot-begin/hot-end markers",
         &checkHotAlloc},
        {"sanitize-boundary",
         "estimator entry points sanitize their observations",
         &checkSanitizeBoundary},
        {"controller-nothrow",
         "no 'throw' inside the runtime controller", &checkControllerNoThrow},
        {"obs-naming",
         "instrument names are leo.<subsystem>.<name> constants from "
         "src/obs/names.hh",
         &checkObsNaming},
        {"header-hygiene",
         "headers have include guards and no 'using namespace'",
         &checkHeaderHygiene},
    };
    return registry;
}

/**
 * Lint one in-memory source. `rel` selects which path-scoped checks
 * apply (e.g. "src/estimators/foo.cc"). Suppressed findings are
 * dropped; `suppressed`, when given, receives their count.
 */
std::vector<Diagnostic>
lintSource(const std::string &rel, const std::string &src,
           const LintContext &ctx, std::size_t *suppressed = nullptr)
{
    const SourceUnit unit = tokenize(rel, src);
    std::vector<Diagnostic> raw;
    for (const Check &c : checks())
        c.run(unit, ctx, raw);
    std::vector<Diagnostic> kept;
    std::size_t dropped = 0;
    for (Diagnostic &d : raw) {
        const auto it = unit.allows.find(d.line);
        if (it != unit.allows.end() &&
            (it->second.count(d.check) || it->second.count("all"))) {
            ++dropped;
            continue;
        }
        kept.push_back(std::move(d));
    }
    std::sort(kept.begin(), kept.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  return std::tie(a.file, a.line, a.check) <
                         std::tie(b.file, b.line, b.check);
              });
    if (suppressed)
        *suppressed += dropped;
    return kept;
}

/** Read a whole file; nullopt on I/O failure. */
std::optional<std::string>
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Build the shared context (loads src/obs/names.hh when present). */
LintContext
makeContext(const std::filesystem::path &root)
{
    LintContext ctx;
    const auto names = readFile(root / "src" / "obs" / "names.hh");
    if (!names)
        return ctx;
    const SourceUnit unit = tokenize("src/obs/names.hh", *names);
    for (const Token &tok : unit.tokens)
        if (tok.kind == TokenKind::String)
            ctx.obsNames.insert(tok.text);
    ctx.obsNamesLoaded = true;
    return ctx;
}

} // namespace leolint

#ifndef LEO_LINT_NO_MAIN

namespace
{

/** JSON string escaping for the --json report. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

bool
lintableFile(const std::filesystem::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".h" ||
           ext == ".cpp" || ext == ".hpp";
}

bool
excludedPath(const std::string &rel)
{
    return rel.find("lint_fixtures") != std::string::npos ||
           rel.rfind("build", 0) == 0 ||
           rel.find("/build") != std::string::npos ||
           rel.find("CMakeFiles") != std::string::npos;
}

} // namespace

int
main(int argc, char **argv)
{
    namespace fs = std::filesystem;
    fs::path root = fs::current_path();
    bool json = false;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--list-checks") {
            for (const leolint::Check &c : leolint::checks())
                std::cout << c.name << "\t" << c.description << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: leo_lint [--root DIR] [--json] "
                   "[--list-checks] [paths...]\n"
                   "Project-invariant static analysis; see DESIGN.md "
                   "\"Static analysis and enforced invariants\".\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "leo_lint: unknown option '" << arg << "'\n";
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        paths = {"src", "tools", "bench", "tests"};

    std::error_code ec;
    root = fs::canonical(root, ec);
    if (ec) {
        std::cerr << "leo_lint: bad root: " << ec.message() << "\n";
        return 2;
    }

    // Collect the file set (sorted for stable output).
    std::vector<fs::path> files;
    for (const std::string &p : paths) {
        const fs::path base =
            fs::path(p).is_absolute() ? fs::path(p) : root / p;
        if (fs::is_regular_file(base, ec)) {
            files.push_back(base);
            continue;
        }
        if (!fs::is_directory(base, ec))
            continue; // Optional tree (e.g. no tests/ checkout).
        for (auto it = fs::recursive_directory_iterator(base, ec);
             !ec && it != fs::recursive_directory_iterator(); ++it) {
            if (it->is_regular_file() && lintableFile(it->path()))
                files.push_back(it->path());
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    const leolint::LintContext ctx = leolint::makeContext(root);
    std::vector<leolint::Diagnostic> findings;
    std::size_t suppressed = 0;
    std::size_t scanned = 0;
    for (const fs::path &f : files) {
        std::string rel = fs::relative(f, root, ec).generic_string();
        if (ec || rel.rfind("..", 0) == 0)
            rel = f.generic_string();
        if (excludedPath(rel))
            continue;
        const auto src = leolint::readFile(f);
        if (!src) {
            std::cerr << "leo_lint: cannot read " << f << "\n";
            return 2;
        }
        ++scanned;
        std::vector<leolint::Diagnostic> d =
            leolint::lintSource(rel, *src, ctx, &suppressed);
        findings.insert(findings.end(),
                        std::make_move_iterator(d.begin()),
                        std::make_move_iterator(d.end()));
    }

    if (json) {
        std::cout << "{\n  \"diagnostics\": [";
        for (std::size_t i = 0; i < findings.size(); ++i) {
            const leolint::Diagnostic &d = findings[i];
            std::cout << (i ? ",\n    " : "\n    ") << "{\"file\": \""
                      << jsonEscape(d.file) << "\", \"line\": "
                      << d.line << ", \"check\": \""
                      << jsonEscape(d.check) << "\", \"message\": \""
                      << jsonEscape(d.message) << "\"}";
        }
        std::cout << (findings.empty() ? "" : "\n  ") << "],\n"
                  << "  \"filesScanned\": " << scanned << ",\n"
                  << "  \"suppressed\": " << suppressed << ",\n"
                  << "  \"clean\": "
                  << (findings.empty() ? "true" : "false") << "\n}\n";
    } else {
        for (const leolint::Diagnostic &d : findings) {
            std::cout << d.file << ":" << d.line << ": [" << d.check
                      << "] " << d.message << "\n";
        }
        std::cout << "leo-lint: " << findings.size() << " issue"
                  << (findings.size() == 1 ? "" : "s") << ", "
                  << suppressed << " suppressed, " << scanned
                  << " files scanned\n";
    }
    return findings.empty() ? 0 : 1;
}

#endif // LEO_LINT_NO_MAIN
