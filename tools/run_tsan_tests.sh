#!/usr/bin/env bash
# Build and run the concurrency-sensitive test binaries under
# ThreadSanitizer (the -DLEO_SANITIZE=thread preset of the top-level
# CMakeLists.txt). This is the acceptance gate for src/parallel/ and
# the parallel EM fit: a data race in the pool, the parallel loops or
# the estimator slot writes fails the run.
#
# Usage: tools/run_tsan_tests.sh [build-dir]
#   build-dir  defaults to build-tsan (kept separate from the plain
#              build so the two configurations never collide)
set -euo pipefail

src_dir=$(cd "$(dirname "$0")/.." && pwd)
build_dir=${1:-"$src_dir/build-tsan"}

cmake -B "$build_dir" -S "$src_dir" \
    -DLEO_SANITIZE=thread \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$build_dir" -j \
    --target parallel_test estimators_test obs_test lowrank_test service_test global_test scenario_test

# TSAN_OPTIONS: fail the script on any report (exitcode) and keep
# going within a binary so one race does not mask another.
for t in parallel_test estimators_test obs_test lowrank_test service_test global_test scenario_test; do
    TSAN_OPTIONS="halt_on_error=0 exitcode=66 ${TSAN_OPTIONS:-}" \
        "$build_dir/tests/$t"
done

echo "TSan run clean: parallel_test + estimators_test + obs_test + lowrank_test + service_test + global_test + scenario_test"
