#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and fail on regressions.

Usage: tools/bench_diff.py BASELINE.json CANDIDATE.json [--threshold 0.10]

Both files are the BENCH_leo.json format that bench/overhead_leo
always emits (google-benchmark ``--benchmark_out_format=json``). The
script pairs benchmarks by name, prints a per-row delta table, and
exits non-zero if any benchmark present in both files got slower than
the baseline by more than the threshold (default 10%).

Aggregate rows (``_mean``/``_median``/``_stddev``/``_cv``) are
preferred over raw repetition rows when present: if a benchmark was
run with ``--benchmark_repetitions``, only its ``_median`` row is
compared; otherwise the single raw row is used. Rows present in only
one file are reported but never fail the run, so adding or removing
benchmarks does not break CI.
"""

import argparse
import json
import sys


def load_rows(path):
    """Return {name: real_time_ms} for the comparable rows of a file."""
    with open(path) as f:
        data = json.load(f)
    benchmarks = data.get("benchmarks", [])
    raw = {}
    medians = {}
    for b in benchmarks:
        name = b.get("name", "")
        # Normalize everything to milliseconds.
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}.get(unit)
        if scale is None or "real_time" not in b:
            continue
        t = b["real_time"] * scale
        agg = b.get("aggregate_name", "")
        if agg == "median":
            medians[name.rsplit("_median", 1)[0]] = t
        elif agg:
            continue
        else:
            raw[name] = t
    # Median rows shadow their raw repetitions.
    raw.update(medians)
    return raw


def main(argv=None):
    ap = argparse.ArgumentParser(
        description="Fail if CANDIDATE regresses vs BASELINE")
    ap.add_argument("baseline")
    ap.add_argument("candidate")
    ap.add_argument("--threshold", type=float, default=0.10,
                    help="allowed slowdown fraction (default 0.10)")
    args = ap.parse_args(argv)

    base = load_rows(args.baseline)
    cand = load_rows(args.candidate)

    width = max([len(n) for n in set(base) | set(cand)] + [9])
    print(f"{'benchmark':<{width}}  {'base ms':>10}  {'cand ms':>10}"
          f"  {'delta':>8}")
    regressions = []
    for name in sorted(set(base) | set(cand)):
        b = base.get(name)
        c = cand.get(name)
        if b is None or c is None:
            only = "candidate only" if b is None else "baseline only"
            print(f"{name:<{width}}  {'-' if b is None else f'{b:10.2f}'}"
                  f"  {'-' if c is None else f'{c:10.2f}'}  ({only})")
            continue
        delta = (c - b) / b if b > 0 else 0.0
        flag = "  << REGRESSION" if delta > args.threshold else ""
        print(f"{name:<{width}}  {b:10.2f}  {c:10.2f}  {delta:+7.1%}"
              f"{flag}")
        if delta > args.threshold:
            regressions.append((name, delta))

    if regressions:
        print(f"\nFAIL: {len(regressions)} benchmark(s) slower than "
              f"baseline by more than {args.threshold:.0%}:",
              file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1
    print(f"\nOK: no benchmark regressed by more than "
          f"{args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
