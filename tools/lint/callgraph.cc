/**
 * @file
 * Implementation of the leo-lint call-graph pass (see callgraph.hh).
 */

#include "lint/callgraph.hh"

#include <set>

namespace leolint
{

namespace
{

/** Control-flow and operator-like keywords that look like calls. */
const std::set<std::string> &
notACallee()
{
    static const std::set<std::string> kw = {
        "if",       "while",     "for",         "switch",
        "return",   "sizeof",    "alignof",     "alignas",
        "catch",    "throw",     "noexcept",    "decltype",
        "typeid",   "new",       "delete",      "assert",
        "static_cast",           "dynamic_cast",
        "reinterpret_cast",      "const_cast",  "defined"};
    return kw;
}

const std::set<std::string> &
determinismIdents()
{
    static const std::set<std::string> s = {
        "random_device", "system_clock", "high_resolution_clock",
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    return s;
}

const std::set<std::string> &
determinismCalls()
{
    // The libc set from the per-file check, plus the thread-identity
    // sources ("thread-id-dependent branching" is nondeterministic
    // under any scheduler).
    static const std::set<std::string> s = {
        "rand",  "srand",  "rand_r",      "drand48", "time",
        "clock", "get_id", "pthread_self", "gettid"};
    return s;
}

const std::set<std::string> &
allocContainers()
{
    static const std::set<std::string> s = {
        "vector",        "deque",         "list",
        "map",           "set",           "multimap",
        "multiset",      "unordered_map", "unordered_set",
        "unordered_multimap", "unordered_multiset", "basic_string"};
    return s;
}

const std::set<std::string> &
allocCalls()
{
    static const std::set<std::string> s = {
        "malloc", "calloc", "realloc", "strdup", "make_unique",
        "make_shared"};
    return s;
}

/** Scan one function body and fill its facts. */
void
scanBody(const SourceUnit &unit, const FunctionDef &fn,
         FunctionFacts &out)
{
    const std::vector<Token> &t = unit.tokens;
    int depth = 0;
    bool pendingTry = false;
    std::vector<int> tryDepths; //!< Brace depth of each open try {}.

    for (std::size_t i = fn.bodyBegin;
         i <= fn.bodyEnd && i < t.size(); ++i) {
        const Token &tok = t[i];
        const bool guarded = !tryDepths.empty();
        if (tok.kind == TokenKind::Punct) {
            if (tok.text == "{") {
                ++depth;
                if (pendingTry) {
                    tryDepths.push_back(depth);
                    pendingTry = false;
                }
            } else if (tok.text == "}") {
                if (!tryDepths.empty() && tryDepths.back() == depth)
                    tryDepths.pop_back();
                --depth;
            }
            continue;
        }
        if (tok.kind != TokenKind::Identifier)
            continue;
        const std::string &w = tok.text;
        if (w == "try") {
            pendingTry = true;
            continue;
        }
        const bool after_scope = i > fn.bodyBegin &&
                                 t[i - 1].kind == TokenKind::Punct &&
                                 t[i - 1].text == "::";
        const bool after_member =
            i > fn.bodyBegin && t[i - 1].kind == TokenKind::Punct &&
            (t[i - 1].text == "." || t[i - 1].text == "->");
        const bool before_paren = i + 1 < t.size() &&
                                  t[i + 1].kind == TokenKind::Punct &&
                                  t[i + 1].text == "(";

        if (w == "throw") {
            out.events.push_back(
                {BodyEvent::Kind::Throw, "throw", tok.line, guarded});
            continue;
        }
        // Determinism sources (mirrors the per-file check so the
        // taint analysis reports the same vocabulary).
        if (determinismIdents().count(w)) {
            out.events.push_back({BodyEvent::Kind::Determinism, w,
                                  tok.line, guarded});
        } else if (determinismCalls().count(w) && before_paren &&
                   !after_member) {
            out.events.push_back({BodyEvent::Kind::Determinism,
                                  w + "(", tok.line, guarded});
        }
        // Allocation patterns (mirrors the hot-alloc per-file check).
        if (w == "new") {
            out.events.push_back(
                {BodyEvent::Kind::Alloc, "new", tok.line, guarded});
            continue;
        }
        // `.resize(` / `.reserve(` are modeled as the allocation
        // itself, not as an edge: resolving them by name would wire
        // every `vec.reserve(..)` into every project function named
        // `reserve` (the receiver's type is unknown), and the
        // capacity operation is what the hot-path checks care about.
        const bool capacityOp =
            (w == "resize" || w == "reserve") && after_member;
        if (capacityOp ||
            ((w == "string" || w == "to_string") && after_scope) ||
            (allocContainers().count(w) && after_scope) ||
            (allocCalls().count(w) && before_paren)) {
            out.events.push_back(
                {BodyEvent::Kind::Alloc, w, tok.line, guarded});
            if (capacityOp)
                continue;
            // make_unique( etc. are also calls; fall through so the
            // call edge exists too (harmless — they resolve to
            // nothing in the index).
        }
        // Call site: identifier directly before '('.
        if (before_paren && !notACallee().count(w)) {
            CallSite call;
            call.callee = w;
            if (after_scope && i >= fn.bodyBegin + 2 &&
                t[i - 2].kind == TokenKind::Identifier)
                call.classHint = t[i - 2].text;
            call.line = tok.line;
            call.guarded = guarded;
            out.calls.push_back(std::move(call));
        }
    }
}

} // namespace

CallGraph
buildCallGraph(const std::vector<SourceUnit> &units,
               const SymbolIndex &index)
{
    CallGraph graph;
    graph.facts.resize(index.functions.size());
    for (std::size_t f = 0; f < index.functions.size(); ++f) {
        const FunctionDef &fn = index.functions[f];
        if (fn.unit < units.size())
            scanBody(units[fn.unit], fn, graph.facts[f]);
    }
    return graph;
}

} // namespace leolint
