/**
 * @file
 * leo-lint pass 0: the tokenizer.
 *
 * A hand-rolled C++ lexer (no libclang dependency; the tool builds
 * with the tree's own toolchain and nothing else) that turns one
 * source file into a token stream plus its lint directives. Comments
 * are consumed — line comments are scanned for `leo-lint:`
 * directives first — and string/character literals become single
 * tokens so no check ever mistakes quoted text for code.
 *
 * Hardened corners (each pinned by a fixture triple in
 * tests/lint_fixtures/):
 *  - raw strings, including encoding-prefixed ones (`LR"(..)"`,
 *    `u8R"(..)"`), may contain `//`, `/ *`, quotes and lint
 *    directives without confusing the lexer or the directive parser;
 *  - a line comment whose last character is a backslash splices the
 *    next line into the comment (translation phase 2), so code
 *    "hidden" behind a continued comment is never tokenized;
 *  - block comments do not nest: the first `* /` ends the comment
 *    and everything after it is code again (matching the compiler).
 */

#ifndef LEO_TOOLS_LINT_TOKENIZER_HH
#define LEO_TOOLS_LINT_TOKENIZER_HH

#include <filesystem>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace leolint
{

/** Lexical class of a token. */
enum class TokenKind
{
    Identifier, //!< Identifiers and keywords.
    Number,     //!< Numeric literals.
    String,     //!< String literal (text excludes the quotes).
    Character,  //!< Character literal.
    Punct       //!< Punctuation; `::` and `->` are single tokens.
};

/** One token with its source line. */
struct Token
{
    TokenKind kind;
    std::string text;
    int line;
};

/** An inclusive line range bracketed by hot-begin/hot-end markers. */
struct HotRegion
{
    int begin;
    int end;
};

/** A tokenized source file plus its lint directives. */
struct SourceUnit
{
    std::string rel; //!< Root-relative path with '/' separators.
    std::vector<Token> tokens;
    /** Line -> checks allowed ("all" allows everything). */
    std::map<int, std::set<std::string>> allows;
    /** Checks allowed for the whole file via `allow-file(...)`. */
    std::set<std::string> fileAllows;
    std::vector<HotRegion> hotRegions;
    /** Lines of unmatched hot markers (reported as findings). */
    std::vector<int> danglingHotMarkers;

    /** True when `line` carries `allow(check)` or `allow(all)`, or
     *  the whole file carries a matching `allow-file(...)`. */
    bool lineAllows(int line, const std::string &check) const;

    /** True when `line` falls inside a hot-begin/hot-end region. */
    bool inHotRegion(int line) const;
};

/**
 * Tokenize one source file. `rel` is the root-relative path used by
 * the path-scoped checks (e.g. "src/estimators/foo.cc").
 */
SourceUnit tokenize(const std::string &rel, const std::string &src);

/** Read a whole file; nullopt on I/O failure. */
std::optional<std::string> readFile(const std::filesystem::path &path);

} // namespace leolint

#endif // LEO_TOOLS_LINT_TOKENIZER_HH
