/**
 * @file
 * leo-lint pass 2 input: the approximate call graph.
 *
 * For every function definition in the symbol index this pass records
 * (a) its outgoing call sites — identifier-before-'(' with an
 * optional `Qualifier::` hint — and (b) the "events" the reachability
 * checks care about: `throw` statements, nondeterminism sources and
 * allocation patterns. Call sites and throw events carry a `guarded`
 * bit when they sit inside a `try` block: for the nothrow analysis a
 * guarded call cannot leak an exception, so those edges are cut
 * (catch bodies are ordinary, unguarded code).
 *
 * Resolution is name-based and overload/template-blind, i.e. an
 * over-approximation: a member call `x.fit()` reaches every indexed
 * function named `fit`. That errs toward reporting, and the per-line
 * suppressions absorb the rare false positive.
 */

#ifndef LEO_TOOLS_LINT_CALLGRAPH_HH
#define LEO_TOOLS_LINT_CALLGRAPH_HH

#include <cstddef>
#include <string>
#include <vector>

#include "lint/index.hh"
#include "lint/tokenizer.hh"

namespace leolint
{

/** One call site inside a function body. */
struct CallSite
{
    std::string callee;    //!< Simple name before the '('.
    std::string classHint; //!< `Hint::callee(` qualifier, or "".
    int line;
    bool guarded; //!< Inside a `try` block of the caller.
};

/** One event a reachability check may report on. */
struct BodyEvent
{
    enum class Kind
    {
        Throw,       //!< A `throw` expression.
        Determinism, //!< Clock / randomness / unordered container.
        Alloc        //!< Heap allocation pattern.
    };
    Kind kind;
    std::string what; //!< The offending token / pattern, for messages.
    int line;
    bool guarded; //!< Inside a `try` block (relevant for Throw).
};

/** Per-function facts; parallel to SymbolIndex::functions. */
struct FunctionFacts
{
    std::vector<CallSite> calls;
    std::vector<BodyEvent> events;
};

/** The call graph: facts[i] describes index.functions[i]. */
struct CallGraph
{
    std::vector<FunctionFacts> facts;
};

/**
 * Scan every indexed function body in `units` and collect call sites
 * and events. `units` must be the same vector `index` was built from.
 */
CallGraph buildCallGraph(const std::vector<SourceUnit> &units,
                         const SymbolIndex &index);

} // namespace leolint

#endif // LEO_TOOLS_LINT_CALLGRAPH_HH
