/**
 * @file
 * leo-lint checks: per-file token checks and whole-program
 * reachability/completeness checks.
 *
 * Two families share one diagnostic format and one suppression
 * mechanism (`// leo-lint: allow(<check>)` on the offending line):
 *
 *  - *File checks* see one SourceUnit at a time: determinism (scoped
 *    to the deterministic core), hot-alloc (direct allocation between
 *    hot markers), sanitize-boundary, obs-naming, header-hygiene.
 *  - *Program checks* see the symbol index and call graph built over
 *    the whole scan set: nothrow-reachability, determinism-taint,
 *    hot-alloc-transitive and snapshot-completeness. Their findings
 *    carry a call-chain trace (`Diagnostic::chain`) from the root
 *    that makes the invariant apply down to the offending site.
 */

#ifndef LEO_TOOLS_LINT_CHECKS_HH
#define LEO_TOOLS_LINT_CHECKS_HH

#include <cstddef>
#include <filesystem>
#include <set>
#include <string>
#include <vector>

#include "lint/callgraph.hh"
#include "lint/index.hh"
#include "lint/tokenizer.hh"

namespace leolint
{

/** One finding. */
struct Diagnostic
{
    std::string check;
    std::string file;
    int line;
    std::string message;
    /** Call-chain trace (program checks only): "file:line symbol"
     *  frames from the root to the offending function. */
    std::vector<std::string> chain;
};

/** Shared context for the file checks. */
struct LintContext
{
    std::set<std::string> obsNames;
    bool obsNamesLoaded = false;
};

/** A check's identity, for --list-checks and the tests. */
struct CheckInfo
{
    std::string name;
    std::string description;
};

/** The per-file checks, in execution order. */
const std::vector<CheckInfo> &fileChecks();

/** The whole-program checks, in execution order. */
const std::vector<CheckInfo> &programChecks();

/**
 * Run the file checks over one tokenized unit. Suppressed findings
 * are dropped; `suppressed`, when given, is incremented per drop.
 */
std::vector<Diagnostic> lintUnit(const SourceUnit &unit,
                                 const LintContext &ctx,
                                 std::size_t *suppressed = nullptr);

/** Convenience: tokenize `src` as `rel` and run the file checks. */
std::vector<Diagnostic> lintSource(const std::string &rel,
                                   const std::string &src,
                                   const LintContext &ctx,
                                   std::size_t *suppressed = nullptr);

/**
 * Run the program checks over the whole scan set. `units` must be
 * the vector `index` and `graph` were built from.
 */
std::vector<Diagnostic> lintProgram(const std::vector<SourceUnit> &units,
                                    const SymbolIndex &index,
                                    const CallGraph &graph,
                                    std::size_t *suppressed = nullptr);

/** Stable ordering shared by all reports. */
void sortDiagnostics(std::vector<Diagnostic> &diags);

/** Build the shared context (loads src/obs/names.hh when present). */
LintContext makeContext(const std::filesystem::path &root);

} // namespace leolint

#endif // LEO_TOOLS_LINT_CHECKS_HH
