/**
 * @file
 * Implementation of the leo-lint tokenizer (see tokenizer.hh).
 */

#include "lint/tokenizer.hh"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace leolint
{

namespace
{

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Trim ASCII whitespace from both ends. */
std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

/** Parse a `leo-lint:` directive found in a line comment. */
void
applyDirective(SourceUnit &unit, const std::string &comment, int line,
               std::vector<int> &hot_stack)
{
    const std::string marker = "leo-lint:";
    const std::size_t at = comment.find(marker);
    if (at == std::string::npos)
        return;
    const std::string body = trim(comment.substr(at + marker.size()));
    const auto parseNames = [&](std::size_t prefix,
                                std::set<std::string> &into) {
        const std::size_t close = body.find(')');
        if (close == std::string::npos || close < prefix)
            return;
        std::string names = body.substr(prefix, close - prefix);
        std::replace(names.begin(), names.end(), ',', ' ');
        std::istringstream in(names);
        std::string name;
        while (in >> name)
            into.insert(name);
    };
    if (body.rfind("allow(", 0) == 0) {
        parseNames(6, unit.allows[line]);
    } else if (body.rfind("allow-file(", 0) == 0) {
        // Whole-file suppression, for files whose purpose is to
        // violate a check (e.g. tests exercising synthetic names).
        parseNames(11, unit.fileAllows);
    } else if (body.rfind("hot-begin", 0) == 0) {
        hot_stack.push_back(line);
    } else if (body.rfind("hot-end", 0) == 0) {
        if (hot_stack.empty()) {
            unit.danglingHotMarkers.push_back(line);
        } else {
            unit.hotRegions.push_back({hot_stack.back(), line});
            hot_stack.pop_back();
        }
    }
}

/** True when `word` is a raw-string encoding prefix ending in R. */
bool
rawStringPrefix(const std::string &word)
{
    return word == "R" || word == "LR" || word == "uR" ||
           word == "UR" || word == "u8R";
}

} // namespace

bool
SourceUnit::lineAllows(int line, const std::string &check) const
{
    if (fileAllows.count(check) || fileAllows.count("all"))
        return true;
    const auto it = allows.find(line);
    return it != allows.end() &&
           (it->second.count(check) || it->second.count("all"));
}

bool
SourceUnit::inHotRegion(int line) const
{
    for (const HotRegion &r : hotRegions)
        if (line >= r.begin && line <= r.end)
            return true;
    return false;
}

SourceUnit
tokenize(const std::string &rel, const std::string &src)
{
    SourceUnit unit;
    unit.rel = rel;
    std::vector<int> hot_stack;
    int line = 1;
    std::size_t i = 0;
    const std::size_t n = src.size();

    auto advanceLine = [&](char c) {
        if (c == '\n')
            ++line;
    };

    // Consume R"delim(...)delim" starting at the opening quote
    // (i points at the '"'); pushes one String token.
    auto lexRawString = [&]() {
        std::size_t p = i + 1;
        std::string delim;
        while (p < n && src[p] != '(')
            delim += src[p++];
        const std::string close = ")" + delim + "\"";
        const std::size_t end = src.find(close, p);
        const int start_line = line;
        const std::size_t stop =
            end == std::string::npos ? n : end + close.size();
        std::string text = src.substr(
            p + 1, (end == std::string::npos ? n : end) - p - 1);
        for (std::size_t q = i; q < stop; ++q)
            advanceLine(src[q]);
        unit.tokens.push_back(
            {TokenKind::String, std::move(text), start_line});
        i = stop;
    };

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Line comment (may carry a lint directive). A backslash
        // immediately before the newline splices the next line into
        // the comment (translation phase 2) — without this, code
        // after a continued comment would be tokenized as live.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            const int start_line = line;
            std::size_t eol = src.find('\n', i);
            while (eol != std::string::npos && eol > i &&
                   src[eol - 1] == '\\') {
                ++line;
                eol = src.find('\n', eol + 1);
            }
            const std::string text =
                src.substr(i, (eol == std::string::npos ? n : eol) - i);
            applyDirective(unit, text, start_line, hot_stack);
            i = eol == std::string::npos ? n : eol;
            continue;
        }
        // Block comment. Does not nest: the first */ ends it (as in
        // the compiler), so anything after that is code again.
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            i += 2;
            while (i + 1 < n && !(src[i] == '*' && src[i + 1] == '/')) {
                advanceLine(src[i]);
                ++i;
            }
            i = std::min(n, i + 2);
            continue;
        }
        // String / character literal.
        if (c == '"' || c == '\'') {
            const char quote = c;
            std::string text;
            ++i;
            while (i < n && src[i] != quote) {
                if (src[i] == '\\' && i + 1 < n) {
                    text += src[i];
                    text += src[i + 1];
                    advanceLine(src[i + 1]);
                    i += 2;
                    continue;
                }
                advanceLine(src[i]);
                text += src[i++];
            }
            ++i; // Closing quote.
            unit.tokens.push_back({quote == '"' ? TokenKind::String
                                                : TokenKind::Character,
                                   std::move(text), line});
            continue;
        }
        // Identifier / keyword — or the prefix of a raw string
        // (R"(..)", LR"(..)", u8R"(..)", ...), which must be lexed
        // as one literal so `//` inside it never looks like a
        // comment.
        if (identStart(c)) {
            std::size_t b = i;
            while (i < n && identChar(src[i]))
                ++i;
            std::string word = src.substr(b, i - b);
            if (i < n && src[i] == '"' && rawStringPrefix(word)) {
                lexRawString();
                continue;
            }
            unit.tokens.push_back(
                {TokenKind::Identifier, std::move(word), line});
            continue;
        }
        // Number (simplified: digits, dots, exponent tails).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
            std::size_t b = i;
            while (i < n &&
                   (identChar(src[i]) || src[i] == '.' ||
                    ((src[i] == '+' || src[i] == '-') && i > b &&
                     (src[i - 1] == 'e' || src[i - 1] == 'E' ||
                      src[i - 1] == 'p' || src[i - 1] == 'P')))) {
                ++i;
            }
            unit.tokens.push_back(
                {TokenKind::Number, src.substr(b, i - b), line});
            continue;
        }
        // Punctuation; keep `::` and `->` whole for the checks.
        if (c == ':' && i + 1 < n && src[i + 1] == ':') {
            unit.tokens.push_back({TokenKind::Punct, "::", line});
            i += 2;
            continue;
        }
        if (c == '-' && i + 1 < n && src[i + 1] == '>') {
            unit.tokens.push_back({TokenKind::Punct, "->", line});
            i += 2;
            continue;
        }
        unit.tokens.push_back({TokenKind::Punct, std::string(1, c), line});
        ++i;
    }
    for (int l : hot_stack)
        unit.danglingHotMarkers.push_back(l);
    return unit;
}

std::optional<std::string>
readFile(const std::filesystem::path &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

} // namespace leolint
