/**
 * @file
 * Implementation of the leo-lint symbol index (see index.hh).
 *
 * The parser is a single forward walk per unit with a scope stack
 * (namespace / class / plain block). At declaration context it
 * recognizes, in order: preprocessor directives (skipped line-wise,
 * honoring backslash continuations), namespaces, class/struct
 * definitions (pushed as scopes; their headers yield the name),
 * enums (skipped whole — enumerators are not fields), access
 * specifiers, and otherwise a "declaration statement" that is
 * classified as a field, a method declaration, or a function
 * definition with a body. Constructor initializer lists, brace
 * initializers, trailing return types and `= default/delete` are
 * all handled structurally; everything type-level (templates,
 * overloads) is deliberately name-blind.
 */

#include "lint/index.hh"

#include <algorithm>

namespace leolint
{

namespace
{

/** Keywords that can never be a callee or declarator name. */
const std::set<std::string> &
cppKeywords()
{
    static const std::set<std::string> kw = {
        "alignas",  "alignof",  "auto",     "bool",     "break",
        "case",     "catch",    "char",     "class",    "const",
        "constexpr","continue", "decltype", "default",  "delete",
        "do",       "double",   "else",     "enum",     "explicit",
        "extern",   "false",    "float",    "for",      "friend",
        "goto",     "if",       "inline",   "int",      "long",
        "mutable",  "namespace","new",      "noexcept", "nullptr",
        "operator", "private",  "protected","public",   "register",
        "return",   "short",    "signed",   "sizeof",   "static",
        "struct",   "switch",   "template", "this",     "throw",
        "true",     "try",      "typedef",  "typeid",   "typename",
        "union",    "unsigned", "using",    "virtual",  "void",
        "volatile", "while"};
    return kw;
}

/** Per-unit parser state. */
struct Parser
{
    const SourceUnit &unit;
    std::size_t unitId;
    SymbolIndex &index;

    struct Scope
    {
        enum class Kind
        {
            Namespace,
            Class,
            Block
        };
        Kind kind;
        std::size_t structId = 0; //!< Valid when kind == Class.
        bool accessPublic = true; //!< Current access in a class.
    };
    std::vector<Scope> scopes;

    const std::vector<Token> &t() const { return unit.tokens; }
    std::size_t n() const { return unit.tokens.size(); }

    bool isIdent(std::size_t i, const char *text = nullptr) const
    {
        return i < n() && t()[i].kind == TokenKind::Identifier &&
               (!text || t()[i].text == text);
    }

    bool isPunct(std::size_t i, const char *text) const
    {
        return i < n() && t()[i].kind == TokenKind::Punct &&
               t()[i].text == text;
    }

    /** Innermost class scope, or nullptr. */
    Scope *classScope()
    {
        return !scopes.empty() &&
                       scopes.back().kind == Scope::Kind::Class
                   ? &scopes.back()
                   : nullptr;
    }

    /**
     * Skip a preprocessor directive starting at the '#' token:
     * consume every token on the directive's line, following
     * backslash continuations onto subsequent lines.
     */
    std::size_t skipDirective(std::size_t i) const
    {
        int curLine = t()[i].line;
        ++i;
        while (i < n()) {
            if (t()[i].line == curLine) {
                const bool cont = isPunct(i, "\\");
                ++i;
                if (cont && i < n() && t()[i].line == curLine + 1)
                    ++curLine;
                continue;
            }
            break;
        }
        return i;
    }

    /** Skip a balanced token group opened at `i` (any of ( [ {). */
    std::size_t skipBalanced(std::size_t i, const char *open,
                             const char *close) const
    {
        int depth = 0;
        for (; i < n(); ++i) {
            if (isPunct(i, open))
                ++depth;
            else if (isPunct(i, close) && --depth == 0)
                return i + 1;
        }
        return i;
    }

    void run()
    {
        std::size_t i = 0;
        while (i < n())
            i = step(i);
    }

    /** One dispatch at declaration context; returns the next pos. */
    std::size_t step(std::size_t i)
    {
        if (isPunct(i, "#"))
            return skipDirective(i);
        if (isPunct(i, ";"))
            return i + 1;
        if (isPunct(i, "{")) {
            scopes.push_back({Scope::Kind::Block});
            return i + 1;
        }
        if (isPunct(i, "}")) {
            const bool wasClass =
                !scopes.empty() &&
                scopes.back().kind == Scope::Kind::Class;
            if (!scopes.empty())
                scopes.pop_back();
            ++i;
            if (wasClass && isPunct(i, ";"))
                ++i;
            return i;
        }
        if (isIdent(i, "namespace"))
            return parseNamespace(i);
        if (isIdent(i, "template")) {
            // Skip the parameter list; the declaration that follows
            // is handled normally (name-blind).
            if (isPunct(i + 1, "<")) {
                int depth = 0;
                std::size_t j = i + 1;
                for (; j < n(); ++j) {
                    if (isPunct(j, "<"))
                        ++depth;
                    else if (isPunct(j, ">") && --depth == 0)
                        return j + 1;
                }
                return j;
            }
            return i + 1;
        }
        if (isIdent(i, "enum"))
            return parseEnum(i);
        if (isIdent(i, "using") || isIdent(i, "typedef") ||
            isIdent(i, "friend"))
            return skipToSemicolon(i);
        if ((isIdent(i, "class") || isIdent(i, "struct") ||
             isIdent(i, "union")))
            return parseClass(i);
        if (Scope *cls = classScope()) {
            if ((isIdent(i, "public") || isIdent(i, "private") ||
                 isIdent(i, "protected")) &&
                isPunct(i + 1, ":")) {
                cls->accessPublic = t()[i].text == "public";
                return i + 2;
            }
        }
        if (isIdent(i, "extern") && i + 1 < n() &&
            t()[i + 1].kind == TokenKind::String &&
            isPunct(i + 2, "{")) {
            scopes.push_back({Scope::Kind::Block});
            return i + 3;
        }
        return parseDeclaration(i);
    }

    /** Skip to the next ';' at group depth 0 (consuming balanced
     *  paren/brace/bracket groups on the way). */
    std::size_t skipToSemicolon(std::size_t i) const
    {
        while (i < n()) {
            if (isPunct(i, ";"))
                return i + 1;
            if (isPunct(i, "("))
                i = skipBalanced(i, "(", ")");
            else if (isPunct(i, "{"))
                i = skipBalanced(i, "{", "}");
            else if (isPunct(i, "["))
                i = skipBalanced(i, "[", "]");
            else if (isPunct(i, "#"))
                i = skipDirective(i);
            else
                ++i;
        }
        return i;
    }

    std::size_t parseNamespace(std::size_t i)
    {
        std::size_t j = i + 1;
        while (isIdent(j) || isPunct(j, "::"))
            ++j;
        if (isPunct(j, "{")) {
            scopes.push_back({Scope::Kind::Namespace});
            return j + 1;
        }
        return skipToSemicolon(j); // Alias or malformed.
    }

    std::size_t parseEnum(std::size_t i)
    {
        std::size_t j = i + 1;
        while (j < n() && !isPunct(j, "{") && !isPunct(j, ";"))
            ++j;
        if (isPunct(j, "{"))
            j = skipBalanced(j, "{", "}");
        if (isPunct(j, ";"))
            ++j;
        return j;
    }

    std::size_t parseClass(std::size_t i)
    {
        const bool isClass = isIdent(i, "class");
        std::size_t j = i + 1;
        std::string name;
        // The header: attributes/macros/name, then { or ; or a base
        // clause. The last identifier before the body (skipping
        // `final`) is the class name.
        while (j < n() && !isPunct(j, "{") && !isPunct(j, ";") &&
               !isPunct(j, ":")) {
            if (isPunct(j, "[")) {
                j = skipBalanced(j, "[", "]");
                continue;
            }
            if (isIdent(j) && t()[j].text != "final")
                name = t()[j].text;
            ++j;
        }
        if (isPunct(j, ":")) {
            // Base clause: no braces before the body brace.
            while (j < n() && !isPunct(j, "{") && !isPunct(j, ";"))
                ++j;
        }
        if (!isPunct(j, "{") || name.empty())
            return isPunct(j, ";") ? j + 1 : j + 1;
        StructDef def;
        def.name = name;
        def.unit = unitId;
        def.line = t()[i].line;
        index.structs.push_back(std::move(def));
        const std::size_t id = index.structs.size() - 1;
        index.structsByName[name].push_back(id);
        Scope scope{Scope::Kind::Class};
        scope.structId = id;
        scope.accessPublic = !isClass; // struct/union default public.
        scopes.push_back(scope);
        return j + 1;
    }

    /**
     * Parse one declaration statement at namespace or class scope:
     * a field, a method declaration, or a function definition.
     */
    std::size_t parseDeclaration(std::size_t start)
    {
        std::size_t i = start;
        int parens = 0;
        std::size_t firstParen = 0;
        bool haveParen = false;
        bool eqBeforeParen = false;
        bool sawEq = false;
        bool inCtorInit = false;
        bool sawStatic = false;
        std::size_t terminator = n();
        bool isBody = false;

        while (i < n()) {
            if (isPunct(i, "#")) {
                i = skipDirective(i);
                continue;
            }
            if (isPunct(i, "(")) {
                if (parens == 0 && !haveParen && !sawEq &&
                    !inCtorInit) {
                    haveParen = true;
                    firstParen = i;
                    i = skipBalanced(i, "(", ")");
                    continue;
                }
                i = skipBalanced(i, "(", ")");
                continue;
            }
            if (isPunct(i, "[")) {
                i = skipBalanced(i, "[", "]");
                continue;
            }
            if (isPunct(i, ";")) {
                terminator = i;
                break;
            }
            if (isPunct(i, "}")) {
                // Scope end leaked into the statement: bail out and
                // let the main loop pop the scope.
                return i;
            }
            if (isPunct(i, "=")) {
                sawEq = true;
                if (!haveParen)
                    eqBeforeParen = true;
                ++i;
                continue;
            }
            if (isPunct(i, ":") && haveParen && !sawEq) {
                inCtorInit = true;
                ++i;
                continue;
            }
            if (isPunct(i, "{")) {
                if (haveParen && !sawEq) {
                    // Function body (possibly after a ctor-init
                    // group chain, qualifiers or trailing return).
                    terminator = i;
                    isBody = true;
                    break;
                }
                // Brace initializer of a variable / field.
                i = skipBalanced(i, "{", "}");
                continue;
            }
            if (isIdent(i, "static"))
                sawStatic = true;
            if (isIdent(i, "try") && haveParen) {
                // Function-try-block: `f() try { ... } catch ...`.
                // Treat the block that follows as the body.
                ++i;
                continue;
            }
            ++i;
        }
        if (terminator >= n())
            return n();

        if (isBody) {
            const std::size_t bodyEnd =
                skipBalanced(terminator, "{", "}") - 1;
            registerFunction(start, firstParen, terminator, bodyEnd);
            return bodyEnd + 1;
        }
        // Declaration without a body.
        if (Scope *cls = classScope()) {
            if (haveParen && !eqBeforeParen &&
                !isPunct(firstParen + 1, "*")) {
                registerMethodDecl(cls, firstParen);
            } else if (!sawStatic) {
                registerField(cls, start, terminator, firstParen,
                              haveParen, eqBeforeParen);
            }
        }
        return terminator + 1;
    }

    /** The identifier immediately before `paren`, or npos. */
    std::size_t nameBeforeParen(std::size_t paren) const
    {
        if (paren == 0)
            return n();
        const std::size_t i = paren - 1;
        if (!isIdent(i) || cppKeywords().count(t()[i].text) ||
            t()[i].text == "operator")
            return n();
        return i;
    }

    void registerMethodDecl(Scope *cls, std::size_t firstParen)
    {
        const std::size_t nameIdx = nameBeforeParen(firstParen);
        if (nameIdx >= n())
            return;
        MethodDecl decl;
        decl.name = t()[nameIdx].text;
        decl.line = t()[nameIdx].line;
        decl.isPublic = cls->accessPublic;
        index.structs[cls->structId].methods.push_back(
            std::move(decl));
    }

    void registerField(Scope *cls, std::size_t start,
                       std::size_t terminator, std::size_t firstParen,
                       bool haveParen, bool eqBeforeParen)
    {
        // Skip statements that are not instance data.
        static const std::set<std::string> nonField = {
            "static", "constexpr", "using",  "typedef",
            "friend", "template",  "struct", "class",
            "union",  "enum",      "operator"};
        std::size_t nameIdx = n();
        for (std::size_t i = start; i < terminator; ++i) {
            if (isPunct(i, "(")) {
                // A paren group after '=' is an initializer call;
                // the declarator name was already seen.
                if (haveParen && i == firstParen && !eqBeforeParen &&
                    isPunct(i + 1, "*")) {
                    // Function-pointer field: name inside the group.
                    const std::size_t close =
                        skipBalanced(i, "(", ")") - 1;
                    for (std::size_t j = i + 1; j < close; ++j)
                        if (isIdent(j))
                            nameIdx = j;
                    break;
                }
                i = skipBalanced(i, "(", ")") - 1;
                continue;
            }
            if (isPunct(i, "=") || isPunct(i, "{") ||
                isPunct(i, "[") || isPunct(i, ":"))
                break;
            if (isIdent(i)) {
                if (nonField.count(t()[i].text))
                    return;
                if (!cppKeywords().count(t()[i].text))
                    nameIdx = i;
            }
        }
        if (nameIdx >= n())
            return;
        FieldDef field;
        field.name = t()[nameIdx].text;
        field.line = t()[nameIdx].line;
        index.structs[cls->structId].fields.push_back(
            std::move(field));
    }

    void registerFunction(std::size_t start, std::size_t firstParen,
                          std::size_t bodyBegin, std::size_t bodyEnd)
    {
        const std::size_t nameIdx = nameBeforeParen(firstParen);
        if (nameIdx >= n())
            return;
        FunctionDef fn;
        fn.name = t()[nameIdx].text;
        if (nameIdx > 0 && isPunct(nameIdx - 1, "~"))
            fn.name = "~" + fn.name;
        fn.unit = unitId;
        fn.line = t()[nameIdx].line;
        fn.bodyBegin = bodyBegin;
        fn.bodyEnd = bodyEnd;
        fn.isPublic = true;

        // Class membership: an explicit `Class::name` qualifier
        // wins; otherwise the enclosing class scope.
        std::size_t qual = nameIdx;
        while (qual >= 2 && isPunct(qual - 1, "::") &&
               isIdent(qual - 2)) {
            fn.className = t()[qual - 2].text;
            qual -= 2;
            break; // Last (innermost) qualifier only.
        }
        Scope *cls = classScope();
        if (fn.className.empty() && cls) {
            fn.className = index.structs[cls->structId].name;
            fn.isPublic = cls->accessPublic;
            // An inline definition is also a declaration.
            MethodDecl decl;
            decl.name = fn.name;
            decl.line = fn.line;
            decl.isPublic = cls->accessPublic;
            index.structs[cls->structId].methods.push_back(decl);
        }
        // Tail of the return type (identifier before the qualifier
        // chain / name), when present on this declaration.
        if (qual >= 1 && isIdent(qual - 1) &&
            !cppKeywords().count(t()[qual - 1].text))
            fn.returnIdent = t()[qual - 1].text;

        const std::size_t parenClose =
            skipBalanced(firstParen, "(", ")") - 1;
        for (std::size_t j = firstParen + 1; j < parenClose; ++j)
            if (isIdent(j) && !cppKeywords().count(t()[j].text))
                fn.paramIdents.push_back(t()[j].text);

        (void)start;
        index.functions.push_back(std::move(fn));
        const std::size_t id = index.functions.size() - 1;
        index.functionsByName[index.functions[id].name].push_back(id);
    }
};

} // namespace

std::vector<std::size_t>
SymbolIndex::resolve(const std::string &name,
                     const std::string &className) const
{
    const auto it = functionsByName.find(name);
    if (it == functionsByName.end())
        return {};
    if (!className.empty()) {
        std::vector<std::size_t> scoped;
        for (std::size_t id : it->second)
            if (functions[id].className == className)
                scoped.push_back(id);
        if (!scoped.empty())
            return scoped;
    }
    return it->second;
}

SymbolIndex
buildIndex(const std::vector<SourceUnit> &units)
{
    SymbolIndex index;
    for (std::size_t u = 0; u < units.size(); ++u) {
        Parser parser{units[u], u, index, {}};
        parser.run();
    }
    return index;
}

} // namespace leolint
