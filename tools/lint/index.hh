/**
 * @file
 * leo-lint pass 1: the cross-translation-unit symbol index.
 *
 * A lightweight whole-program view built from the token streams of
 * every scanned unit: function definitions (with qualified names,
 * class membership, declared access and body token ranges), class /
 * struct definitions with their field lists and method
 * declarations. It is deliberately approximate — overload- and
 * template-blind, resolved by name — which is exactly enough for the
 * reachability checks in pass 2 (an over-approximation of the call
 * graph errs toward reporting, and per-line suppressions absorb the
 * rare false positive).
 *
 * The index is what lets an invariant hold *transitively*: the
 * nothrow guarantee of the controller entry points, the determinism
 * scope, and the hot-region allocation audit all follow calls out of
 * the file where the entry point lives, which the old token-level
 * linter could not see.
 */

#ifndef LEO_TOOLS_LINT_INDEX_HH
#define LEO_TOOLS_LINT_INDEX_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "lint/tokenizer.hh"

namespace leolint
{

/** One data member of an indexed class/struct. */
struct FieldDef
{
    std::string name;
    int line;
};

/** One method declaration seen inside a class body. */
struct MethodDecl
{
    std::string name;
    int line;
    bool isPublic;
};

/** One class/struct definition with its members. */
struct StructDef
{
    std::string name;
    std::size_t unit; //!< Index into the unit list given to buildIndex.
    int line;
    std::vector<FieldDef> fields;
    std::vector<MethodDecl> methods;
};

/** One function definition with a body. */
struct FunctionDef
{
    std::string name;      //!< Simple name (last component).
    std::string className; //!< Enclosing/qualifying class; "" if free.
    std::size_t unit;      //!< Index into the unit list.
    int line;
    std::size_t bodyBegin; //!< Token index of the opening '{'.
    std::size_t bodyEnd;   //!< Token index of the matching '}'.
    bool isPublic;         //!< Access at an in-class definition site;
                           //!< true for free and out-of-class defs
                           //!< (resolve via the class's MethodDecls).
    /** Identifier tokens appearing in the parameter list (type and
     *  parameter names, unresolved — used to spot ByteWriter /
     *  ByteReader serializer signatures and their subject struct). */
    std::vector<std::string> paramIdents;
    /** Identifier immediately preceding the name (the tail of the
     *  return type), "" when unavailable. */
    std::string returnIdent;

    /** Qualified display name, e.g. "EnergyController::fit". */
    std::string qualified() const
    {
        return className.empty() ? name : className + "::" + name;
    }
};

/** The whole-program symbol index (pass 1 output). */
struct SymbolIndex
{
    std::vector<FunctionDef> functions;
    std::vector<StructDef> structs;
    /** Simple name -> ids into `functions`. */
    std::map<std::string, std::vector<std::size_t>> functionsByName;
    /** Struct name -> ids into `structs` (collisions preserved). */
    std::map<std::string, std::vector<std::size_t>> structsByName;

    /** Ids of functions named `name` on class `className` ("" =
     *  any). Falls back to all functions of that simple name when no
     *  class-qualified match exists. */
    std::vector<std::size_t> resolve(const std::string &name,
                                     const std::string &className) const;
};

/**
 * Build the symbol index over `units`. Units are identified by their
 * position in the vector; every FunctionDef/StructDef refers back to
 * it. Call once over the full scan set (src/, tools/, bench/).
 */
SymbolIndex buildIndex(const std::vector<SourceUnit> &units);

} // namespace leolint

#endif // LEO_TOOLS_LINT_INDEX_HH
