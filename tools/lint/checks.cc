/**
 * @file
 * Implementation of the leo-lint checks (see checks.hh).
 */

#include "lint/checks.hh"

#include <algorithm>
#include <deque>
#include <tuple>

namespace leolint
{

namespace
{

bool
hasExtension(const std::string &rel, const char *ext)
{
    const std::size_t len = std::string(ext).size();
    return rel.size() >= len &&
           rel.compare(rel.size() - len, len, ext) == 0;
}

bool
isHeader(const std::string &rel)
{
    return hasExtension(rel, ".hh") || hasExtension(rel, ".h") ||
           hasExtension(rel, ".hpp");
}

bool
underAny(const std::string &rel,
         std::initializer_list<const char *> prefixes)
{
    for (const char *p : prefixes)
        if (rel.rfind(p, 0) == 0)
            return true;
    return false;
}

bool
nameStarts(const std::string &name, const char *prefix)
{
    return name.rfind(prefix, 0) == 0;
}

/** The deterministic core: per-file determinism check scope and the
 *  root set of the determinism-taint analysis. PR 10 widened it to
 *  platform, telemetry and workloads — everything the replayable
 *  trace pipeline touches. */
bool
inDeterminismScope(const std::string &rel)
{
    return underAny(rel, {"src/estimators/", "src/linalg/",
                          "src/parallel/", "src/optimizer/",
                          "src/scenario/", "src/service/",
                          "src/stats/", "src/platform/",
                          "src/telemetry/", "src/workloads/"});
}

void
report(std::vector<Diagnostic> &out, const SourceUnit &unit,
       const char *check, int line, std::string message)
{
    out.push_back({check, unit.rel, line, std::move(message), {}});
}

/** True when `name` is valid per the leo.<subsystem>.<name> scheme. */
bool
validObsName(const std::string &name)
{
    if (name.rfind("leo.", 0) != 0)
        return false;
    std::size_t components = 0;
    std::size_t b = 4;
    while (b <= name.size()) {
        const std::size_t dot = std::min(name.find('.', b), name.size());
        if (dot == b)
            return false; // Empty component.
        for (std::size_t i = b; i < dot; ++i) {
            const char c = name[i];
            const bool ok =
                (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
                c == '_';
            if (!ok)
                return false;
        }
        ++components;
        b = dot + 1;
    }
    return components >= 2; // At least subsystem + name.
}

// ---- determinism (per-file) ------------------------------------- //

void
checkDeterminism(const SourceUnit &unit, const LintContext &,
                 std::vector<Diagnostic> &out)
{
    if (!inDeterminismScope(unit.rel))
        return;
    static const std::set<std::string> banned_idents = {
        "random_device", "system_clock", "high_resolution_clock",
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    static const std::set<std::string> banned_calls = {
        "rand", "srand", "rand_r", "drand48", "time", "clock"};
    const std::vector<Token> &t = unit.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokenKind::Identifier)
            continue;
        if (banned_idents.count(t[i].text)) {
            report(out, unit, "determinism", t[i].line,
                   "'" + t[i].text +
                       "' in the deterministic core: iteration order "
                       "/ values are nondeterministic (use std::map, "
                       "sorted vectors, steady_clock or seeded "
                       "stats::Rng instead)");
            continue;
        }
        // Bare libc calls: `rand(`, `time(` etc. Member calls like
        // `rng.rand(...)` would be a different function; only flag
        // the unqualified or std-qualified form.
        if (banned_calls.count(t[i].text) && i + 1 < t.size() &&
            t[i + 1].kind == TokenKind::Punct && t[i + 1].text == "(") {
            const bool member =
                i > 0 && t[i - 1].kind == TokenKind::Punct &&
                (t[i - 1].text == "." || t[i - 1].text == "->");
            if (!member) {
                report(out, unit, "determinism", t[i].line,
                       "call to '" + t[i].text +
                           "(' in the deterministic core: wall-clock "
                           "and libc randomness break bitwise "
                           "reproducibility (use stats::Rng with an "
                           "explicit seed)");
            }
        }
    }
}

// ---- hot-alloc (per-file, direct) ------------------------------- //

void
checkHotAlloc(const SourceUnit &unit, const LintContext &,
              std::vector<Diagnostic> &out)
{
    for (int l : unit.danglingHotMarkers)
        report(out, unit, "hot-alloc", l,
               "unmatched hot-begin/hot-end marker");
    if (unit.hotRegions.empty())
        return;
    static const std::set<std::string> containers = {
        "vector",        "deque",         "list",
        "map",           "set",           "multimap",
        "multiset",      "unordered_map", "unordered_set",
        "unordered_multimap", "unordered_multiset", "basic_string"};
    static const std::set<std::string> alloc_calls = {
        "malloc", "calloc", "realloc", "strdup", "make_unique",
        "make_shared"};
    const std::vector<Token> &t = unit.tokens;
    for (std::size_t i = 0; i < t.size(); ++i) {
        if (t[i].kind != TokenKind::Identifier ||
            !unit.inHotRegion(t[i].line))
            continue;
        const std::string &w = t[i].text;
        const bool after_scope = i > 0 &&
                                 t[i - 1].kind == TokenKind::Punct &&
                                 t[i - 1].text == "::";
        const bool after_member =
            i > 0 && t[i - 1].kind == TokenKind::Punct &&
            (t[i - 1].text == "." || t[i - 1].text == "->");
        if (w == "new") {
            report(out, unit, "hot-alloc", t[i].line,
                   "'new' inside a hot region: the loop must stay "
                   "allocation-free (acquire the buffer from the "
                   "Workspace before the loop)");
        } else if ((w == "resize" || w == "reserve") && after_member) {
            report(out, unit, "hot-alloc", t[i].line,
                   "'." + w +
                       "(' inside a hot region may reallocate; "
                       "size the buffer before the loop");
        } else if ((w == "string" || w == "to_string") && after_scope) {
            report(out, unit, "hot-alloc", t[i].line,
                   "std::" + w +
                       " temporary inside a hot region allocates; "
                       "build strings outside the loop");
        } else if (containers.count(w) && after_scope) {
            report(out, unit, "hot-alloc", t[i].line,
                   "std::" + w +
                       " constructed inside a hot region allocates; "
                       "acquire it from the Workspace before the "
                       "loop");
        } else if (alloc_calls.count(w) && i + 1 < t.size() &&
                   t[i + 1].text == "(") {
            report(out, unit, "hot-alloc", t[i].line,
                   "'" + w + "(' inside a hot region allocates");
        }
    }
}

// ---- sanitize-boundary (per-file) ------------------------------- //

void
checkSanitizeBoundary(const SourceUnit &unit, const LintContext &,
                      std::vector<Diagnostic> &out)
{
    if (unit.rel.rfind("src/estimators/", 0) != 0 ||
        !hasExtension(unit.rel, ".cc"))
        return;
    static const std::set<std::string> entry_points = {"estimate",
                                                       "estimateMetric"};
    const std::vector<Token> &t = unit.tokens;
    for (std::size_t i = 1; i < t.size(); ++i) {
        if (t[i].kind != TokenKind::Identifier ||
            !entry_points.count(t[i].text))
            continue;
        // Out-of-class definitions look like `Class::name(` — a
        // preceding `::` and a following `(`.
        if (t[i - 1].text != "::" || i + 1 >= t.size() ||
            t[i + 1].text != "(")
            continue;
        // Skip the parameter list.
        std::size_t j = i + 1;
        int parens = 0;
        for (; j < t.size(); ++j) {
            if (t[j].kind != TokenKind::Punct)
                continue;
            if (t[j].text == "(")
                ++parens;
            else if (t[j].text == ")" && --parens == 0)
                break;
        }
        // Scan qualifiers up to the body; a `;` means this was just
        // a qualified call or declaration.
        std::size_t body = j + 1;
        while (body < t.size() && t[body].text != "{" &&
               t[body].text != ";")
            ++body;
        if (body >= t.size() || t[body].text != "{")
            continue;
        // Walk the body looking for sanitizeObservations or a
        // delegating estimate*/fit call.
        int braces = 0;
        bool sanitized = false;
        std::size_t k = body;
        for (; k < t.size(); ++k) {
            if (t[k].kind == TokenKind::Punct) {
                if (t[k].text == "{")
                    ++braces;
                else if (t[k].text == "}" && --braces == 0)
                    break;
                continue;
            }
            if (t[k].kind != TokenKind::Identifier)
                continue;
            if (t[k].text == "sanitizeObservations" ||
                (k != i && entry_points.count(t[k].text) &&
                 k + 1 < t.size() && t[k + 1].text == "(")) {
                sanitized = true;
            }
        }
        if (!sanitized) {
            report(out, unit, "sanitize-boundary", t[i].line,
                   "estimator entry point '" + t[i].text +
                       "' neither calls sanitizeObservations() nor "
                       "delegates to an overload that does "
                       "(sanitize.hh: every estimator boundary "
                       "sanitizes its observations)");
        }
        i = k;
    }
}

// ---- obs-naming (per-file) -------------------------------------- //

void
checkObsNaming(const SourceUnit &unit, const LintContext &ctx,
               std::vector<Diagnostic> &out)
{
    if (!underAny(unit.rel, {"src/", "tools/", "bench/", "tests/"}))
        return;
    const bool is_names_header = unit.rel == "src/obs/names.hh";
    static const std::set<std::string> instruments = {
        "counter", "gauge", "histogram", "counterOr", "gaugeOr",
        "histogramOr", "Span"};
    const std::vector<Token> &t = unit.tokens;
    if (is_names_header) {
        // The central header itself: every literal must be a valid
        // leo.<subsystem>.<name>.
        for (const Token &tok : t) {
            if (tok.kind == TokenKind::String &&
                !validObsName(tok.text)) {
                report(out, unit, "obs-naming", tok.line,
                       "'" + tok.text +
                           "' does not match leo.<subsystem>.<name> "
                           "(lowercase [a-z0-9_] components joined "
                           "by dots)");
            }
        }
        return;
    }
    for (std::size_t i = 0; i + 2 < t.size(); ++i) {
        if (t[i].kind != TokenKind::Identifier ||
            !instruments.count(t[i].text))
            continue;
        // `counter("x")` and — for RAII spans — the declaration form
        // `Span span("x", ...)` with a variable name in between.
        std::size_t open = i + 1;
        if (t[i].text == "Span" &&
            t[open].kind == TokenKind::Identifier)
            ++open;
        if (open + 1 >= t.size() || t[open].text != "(" ||
            t[open + 1].kind != TokenKind::String)
            continue;
        const std::string &name = t[open + 1].text;
        if (!validObsName(name)) {
            report(out, unit, "obs-naming", t[open + 1].line,
                   "instrument name '" + name +
                       "' must match leo.<subsystem>.<name>; use the "
                       "constant from src/obs/names.hh");
        } else if (ctx.obsNamesLoaded && !ctx.obsNames.count(name)) {
            report(out, unit, "obs-naming", t[open + 1].line,
                   "instrument name '" + name +
                       "' is not declared in src/obs/names.hh; add "
                       "it there and reference the constant");
        }
    }
}

// ---- header-hygiene (per-file) ---------------------------------- //

void
checkHeaderHygiene(const SourceUnit &unit, const LintContext &,
                   std::vector<Diagnostic> &out)
{
    if (!isHeader(unit.rel))
        return;
    const std::vector<Token> &t = unit.tokens;
    if (t.empty())
        return;
    const bool pragma_once = t.size() >= 3 && t[0].text == "#" &&
                             t[1].text == "pragma" &&
                             t[2].text == "once";
    const bool ifndef_guard = t.size() >= 3 && t[0].text == "#" &&
                              t[1].text == "ifndef";
    if (!pragma_once && !ifndef_guard) {
        report(out, unit, "header-hygiene", t[0].line,
               "header must open with '#pragma once' or an #ifndef "
               "include guard (before any other code)");
    }
    for (std::size_t i = 0; i + 1 < t.size(); ++i) {
        if (t[i].kind == TokenKind::Identifier &&
            t[i].text == "using" &&
            t[i + 1].kind == TokenKind::Identifier &&
            t[i + 1].text == "namespace") {
            report(out, unit, "header-hygiene", t[i].line,
                   "'using namespace' in a header leaks into every "
                   "includer; qualify names instead");
        }
    }
}

// ---------------------------------------------------------------- //
// Program checks                                                   //
// ---------------------------------------------------------------- //

/** BFS bookkeeping over the function graph. */
struct Walk
{
    std::vector<char> visited;
    std::vector<std::size_t> parent;    //!< Caller id, or npos.
    std::vector<int> parentLine;        //!< Call-site line in caller.
    std::deque<std::size_t> queue;

    explicit Walk(std::size_t n)
        : visited(n, 0),
          parent(n, static_cast<std::size_t>(-1)),
          parentLine(n, 0)
    {
    }

    void seed(std::size_t id)
    {
        if (!visited[id]) {
            visited[id] = 1;
            queue.push_back(id);
        }
    }

    void follow(std::size_t from, const CallSite &call,
                const SymbolIndex &index)
    {
        for (std::size_t id :
             index.resolve(call.callee, call.classHint)) {
            if (visited[id])
                continue;
            visited[id] = 1;
            parent[id] = from;
            parentLine[id] = call.line;
            queue.push_back(id);
        }
    }

    /** "file:line symbol" frames from the BFS root down to `id`. */
    std::vector<std::string>
    chain(std::size_t id, const std::vector<SourceUnit> &units,
          const SymbolIndex &index) const
    {
        std::vector<std::string> frames;
        std::size_t cur = id;
        while (cur != static_cast<std::size_t>(-1)) {
            const FunctionDef &fn = index.functions[cur];
            const std::size_t par = parent[cur];
            const bool isRoot = par == static_cast<std::size_t>(-1);
            const std::string &file =
                isRoot ? units[fn.unit].rel
                       : units[index.functions[par].unit].rel;
            const int line = isRoot ? fn.line : parentLine[cur];
            frames.push_back(file + ":" + std::to_string(line) +
                             " " + fn.qualified());
            cur = par;
        }
        std::reverse(frames.begin(), frames.end());
        return frames;
    }
};

/** Root function the BFS entered `id` from (for messages). */
std::size_t
walkRoot(const Walk &walk, std::size_t id)
{
    while (walk.parent[id] != static_cast<std::size_t>(-1))
        id = walk.parent[id];
    return id;
}

// ---- nothrow-reachability --------------------------------------- //

void
checkNothrowReachability(const std::vector<SourceUnit> &units,
                         const SymbolIndex &index,
                         const CallGraph &graph,
                         std::vector<Diagnostic> &out,
                         std::size_t &suppressed)
{
    static const std::set<std::string> rootClasses = {
        "EnergyController", "Service"};
    Walk walk(index.functions.size());
    for (const StructDef &s : index.structs) {
        if (!rootClasses.count(s.name))
            continue;
        for (const MethodDecl &m : s.methods) {
            // Constructors/destructors run offline, before and after
            // the control loop; the nothrow contract covers the
            // steady-state entry points.
            if (!m.isPublic || m.name == s.name ||
                (!m.name.empty() && m.name[0] == '~'))
                continue;
            const auto it = index.functionsByName.find(m.name);
            if (it == index.functionsByName.end())
                continue;
            for (std::size_t id : it->second)
                if (index.functions[id].className == s.name)
                    walk.seed(id);
        }
    }
    while (!walk.queue.empty()) {
        const std::size_t f = walk.queue.front();
        walk.queue.pop_front();
        const FunctionDef &fn = index.functions[f];
        const SourceUnit &unit = units[fn.unit];
        for (const BodyEvent &ev : graph.facts[f].events) {
            if (ev.kind != BodyEvent::Kind::Throw || ev.guarded)
                continue;
            if (unit.lineAllows(ev.line, "nothrow-reachability")) {
                ++suppressed;
                continue;
            }
            const FunctionDef &root =
                index.functions[walkRoot(walk, f)];
            Diagnostic d;
            d.check = "nothrow-reachability";
            d.file = unit.rel;
            d.line = ev.line;
            d.message =
                "'throw' reachable from public entry point '" +
                root.qualified() +
                "': nothing on a controller/service path may throw "
                "(route failures through the fit() guard and the "
                "degradation policy)";
            d.chain = walk.chain(f, units, index);
            out.push_back(std::move(d));
        }
        for (const CallSite &call : graph.facts[f].calls)
            if (!call.guarded)
                walk.follow(f, call, index);
    }
}

// ---- determinism-taint ------------------------------------------ //

void
checkDeterminismTaint(const std::vector<SourceUnit> &units,
                      const SymbolIndex &index, const CallGraph &graph,
                      std::vector<Diagnostic> &out,
                      std::size_t &suppressed)
{
    Walk walk(index.functions.size());
    for (std::size_t f = 0; f < index.functions.size(); ++f)
        if (inDeterminismScope(units[index.functions[f].unit].rel))
            walk.seed(f);
    while (!walk.queue.empty()) {
        const std::size_t f = walk.queue.front();
        walk.queue.pop_front();
        const FunctionDef &fn = index.functions[f];
        const SourceUnit &unit = units[fn.unit];
        // Events inside the scope itself are the per-file
        // determinism check's findings; the taint pass reports the
        // sources that *leaked in* from outside the scope.
        if (!inDeterminismScope(unit.rel)) {
            for (const BodyEvent &ev : graph.facts[f].events) {
                if (ev.kind != BodyEvent::Kind::Determinism)
                    continue;
                if (unit.lineAllows(ev.line, "determinism-taint")) {
                    ++suppressed;
                    continue;
                }
                const FunctionDef &root =
                    index.functions[walkRoot(walk, f)];
                Diagnostic d;
                d.check = "determinism-taint";
                d.file = unit.rel;
                d.line = ev.line;
                d.message =
                    "'" + ev.what + "' in '" + fn.qualified() +
                    "' is reachable from the deterministic core ('" +
                    root.qualified() +
                    "'): the call chain imports nondeterminism the "
                    "per-file scope cannot see";
                d.chain = walk.chain(f, units, index);
                out.push_back(std::move(d));
            }
        }
        for (const CallSite &call : graph.facts[f].calls)
            walk.follow(f, call, index);
    }
}

// ---- hot-alloc-transitive --------------------------------------- //

void
checkHotAllocTransitive(const std::vector<SourceUnit> &units,
                        const SymbolIndex &index,
                        const CallGraph &graph,
                        std::vector<Diagnostic> &out,
                        std::size_t &suppressed)
{
    for (std::size_t f = 0; f < index.functions.size(); ++f) {
        const FunctionDef &fn = index.functions[f];
        const SourceUnit &unit = units[fn.unit];
        if (unit.hotRegions.empty())
            continue;
        for (const CallSite &call : graph.facts[f].calls) {
            if (!unit.inHotRegion(call.line))
                continue;
            if (unit.lineAllows(call.line, "hot-alloc-transitive")) {
                // Counted once per suppressed call site, even if
                // several allocations would be reachable.
                ++suppressed;
                continue;
            }
            // BFS from this call site only: the chain in the finding
            // starts at the hot call.
            Walk walk(index.functions.size());
            walk.visited[f] = 1; // Caller's own body is per-file.
            walk.follow(f, call, index);
            bool reported = false;
            while (!walk.queue.empty() && !reported) {
                const std::size_t g = walk.queue.front();
                walk.queue.pop_front();
                const FunctionDef &callee = index.functions[g];
                const SourceUnit &calleeUnit = units[callee.unit];
                for (const BodyEvent &ev : graph.facts[g].events) {
                    if (ev.kind != BodyEvent::Kind::Alloc)
                        continue;
                    if (calleeUnit.lineAllows(
                            ev.line, "hot-alloc-transitive"))
                        continue; // The allocation site opted out.
                    Diagnostic d;
                    d.check = "hot-alloc-transitive";
                    d.file = unit.rel;
                    d.line = call.line;
                    d.message =
                        "call to '" + call.callee +
                        "' inside a hot region reaches an "
                        "allocation ('" + ev.what + "' in '" +
                        callee.qualified() + "', " + calleeUnit.rel +
                        ":" + std::to_string(ev.line) +
                        "); hoist the allocation out of the hot "
                        "path";
                    d.chain = walk.chain(g, units, index);
                    d.chain.insert(
                        d.chain.begin(),
                        unit.rel + ":" + std::to_string(call.line) +
                            " " + fn.qualified());
                    out.push_back(std::move(d));
                    reported = true;
                    break;
                }
                if (reported)
                    break;
                for (const CallSite &next : graph.facts[g].calls)
                    walk.follow(g, next, index);
            }
        }
    }
}

// ---- snapshot-completeness -------------------------------------- //

/** One recognized serializer function. */
struct Serializer
{
    std::size_t fn;
    bool writer;
};

void
checkSnapshotCompleteness(const std::vector<SourceUnit> &units,
                          const SymbolIndex &index,
                          const CallGraph &graph,
                          std::vector<Diagnostic> &out,
                          std::size_t &suppressed)
{
    (void)graph;
    // Subject struct -> its serializers.
    std::map<std::string, std::vector<Serializer>> pairs;
    for (std::size_t f = 0; f < index.functions.size(); ++f) {
        const FunctionDef &fn = index.functions[f];
        const auto hasParam = [&](const char *type) {
            return std::find(fn.paramIdents.begin(),
                             fn.paramIdents.end(),
                             type) != fn.paramIdents.end();
        };
        const bool writer = (nameStarts(fn.name, "save") ||
                             nameStarts(fn.name, "write")) &&
                            hasParam("ByteWriter");
        const bool reader = (nameStarts(fn.name, "load") ||
                             nameStarts(fn.name, "restore") ||
                             nameStarts(fn.name, "read")) &&
                            hasParam("ByteReader");
        if (!writer && !reader)
            continue;
        // Subject: the method's class, or — for free functions like
        // saveFit(ByteWriter&, const LeoFit&) — the first parameter
        // / return type that names an indexed struct.
        std::string subject = fn.className;
        if (subject.empty()) {
            for (const std::string &p : fn.paramIdents) {
                if (p == "ByteWriter" || p == "ByteReader")
                    continue;
                if (index.structsByName.count(p)) {
                    subject = p;
                    break;
                }
            }
        }
        if (subject.empty() &&
            index.structsByName.count(fn.returnIdent))
            subject = fn.returnIdent;
        if (subject.empty() || !index.structsByName.count(subject))
            continue;
        pairs[subject].push_back({f, writer});
    }
    for (const auto &[subject, serializers] : pairs) {
        const StructDef &s =
            index.structs[index.structsByName.at(subject).front()];
        // Every identifier in every serializer body "mentions" a
        // field; a field absent from *both* sides of the pair was
        // added after the serializers were written.
        std::set<std::string> mentioned;
        std::vector<std::string> sites;
        for (const Serializer &ser : serializers) {
            const FunctionDef &fn = index.functions[ser.fn];
            const SourceUnit &unit = units[fn.unit];
            for (std::size_t i = fn.bodyBegin;
                 i <= fn.bodyEnd && i < unit.tokens.size(); ++i)
                if (unit.tokens[i].kind == TokenKind::Identifier)
                    mentioned.insert(unit.tokens[i].text);
            sites.push_back(unit.rel + ":" +
                            std::to_string(fn.line) + " " +
                            fn.qualified());
        }
        const SourceUnit &structUnit = units[s.unit];
        for (const FieldDef &field : s.fields) {
            if (mentioned.count(field.name))
                continue;
            if (structUnit.lineAllows(field.line,
                                      "snapshot-completeness")) {
                ++suppressed;
                continue;
            }
            Diagnostic d;
            d.check = "snapshot-completeness";
            d.file = structUnit.rel;
            d.line = field.line;
            d.message =
                "field '" + field.name + "' of '" + s.name +
                "' is not touched by its serializer pair: a "
                "snapshot round trip silently drops it (serialize "
                "it, or suppress with a justification if it is "
                "derived/scratch state)";
            d.chain = sites;
            out.push_back(std::move(d));
        }
    }
}

} // namespace

// ---------------------------------------------------------------- //
// Registries and drivers                                           //
// ---------------------------------------------------------------- //

const std::vector<CheckInfo> &
fileChecks()
{
    static const std::vector<CheckInfo> registry = {
        {"determinism",
         "no clocks/randomness/unordered containers in the "
         "deterministic core"},
        {"hot-alloc",
         "no direct allocation between hot-begin/hot-end markers"},
        {"sanitize-boundary",
         "estimator entry points sanitize their observations"},
        {"obs-naming",
         "instrument names are leo.<subsystem>.<name> constants from "
         "src/obs/names.hh"},
        {"header-hygiene",
         "headers have include guards and no 'using namespace'"},
    };
    return registry;
}

const std::vector<CheckInfo> &
programChecks()
{
    static const std::vector<CheckInfo> registry = {
        {"nothrow-reachability",
         "no 'throw' reachable from public EnergyController/Service "
         "entry points"},
        {"determinism-taint",
         "no nondeterminism source reachable from the deterministic "
         "core"},
        {"hot-alloc-transitive",
         "hot regions reach no allocation through the call graph"},
        {"snapshot-completeness",
         "every field of a serialized struct is covered by its "
         "serializer pair"},
    };
    return registry;
}

void
sortDiagnostics(std::vector<Diagnostic> &diags)
{
    std::sort(diags.begin(), diags.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  return std::tie(a.file, a.line, a.check) <
                         std::tie(b.file, b.line, b.check);
              });
}

std::vector<Diagnostic>
lintUnit(const SourceUnit &unit, const LintContext &ctx,
         std::size_t *suppressed)
{
    std::vector<Diagnostic> raw;
    checkDeterminism(unit, ctx, raw);
    checkHotAlloc(unit, ctx, raw);
    checkSanitizeBoundary(unit, ctx, raw);
    checkObsNaming(unit, ctx, raw);
    checkHeaderHygiene(unit, ctx, raw);
    std::vector<Diagnostic> kept;
    std::size_t dropped = 0;
    for (Diagnostic &d : raw) {
        if (unit.lineAllows(d.line, d.check)) {
            ++dropped;
            continue;
        }
        kept.push_back(std::move(d));
    }
    sortDiagnostics(kept);
    if (suppressed)
        *suppressed += dropped;
    return kept;
}

std::vector<Diagnostic>
lintSource(const std::string &rel, const std::string &src,
           const LintContext &ctx, std::size_t *suppressed)
{
    return lintUnit(tokenize(rel, src), ctx, suppressed);
}

std::vector<Diagnostic>
lintProgram(const std::vector<SourceUnit> &units,
            const SymbolIndex &index, const CallGraph &graph,
            std::size_t *suppressed)
{
    std::vector<Diagnostic> out;
    std::size_t dropped = 0;
    checkNothrowReachability(units, index, graph, out, dropped);
    checkDeterminismTaint(units, index, graph, out, dropped);
    checkHotAllocTransitive(units, index, graph, out, dropped);
    checkSnapshotCompleteness(units, index, graph, out, dropped);
    sortDiagnostics(out);
    if (suppressed)
        *suppressed += dropped;
    return out;
}

LintContext
makeContext(const std::filesystem::path &root)
{
    LintContext ctx;
    const auto names = readFile(root / "src" / "obs" / "names.hh");
    if (!names)
        return ctx;
    const SourceUnit unit = tokenize("src/obs/names.hh", *names);
    for (const Token &tok : unit.tokens)
        if (tok.kind == TokenKind::String)
            ctx.obsNames.insert(tok.text);
    ctx.obsNamesLoaded = true;
    return ctx;
}

} // namespace leolint
