/**
 * @file
 * leo-lint driver: two-pass project-invariant analysis for the LEO
 * tree.
 *
 * Pass 0 tokenizes every file in the scan set; the per-file checks
 * run on each unit as before. Pass 1 builds the cross-TU symbol
 * index over the same units and pass 2 builds the approximate call
 * graph and runs the reachability/completeness checks
 * (nothrow-reachability, determinism-taint, hot-alloc-transitive,
 * snapshot-completeness). See DESIGN.md "Static analysis and
 * enforced invariants".
 *
 * Usage:
 *   leo_lint [--root DIR] [--json] [--sarif FILE] [--list-checks]
 *            [paths...]
 *
 * With no paths, scans src/, tools/, bench/ and tests/ under the
 * root (default: current directory), skipping tests/lint_fixtures/
 * and build directories. `--sarif FILE` additionally writes a SARIF
 * 2.1.0 report for CI annotation upload. Exit status: 0 clean, 1
 * findings, 2 usage or I/O error.
 */

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "lint/callgraph.hh"
#include "lint/checks.hh"
#include "lint/index.hh"
#include "lint/tokenizer.hh"

namespace
{

/** JSON string escaping for the --json / --sarif reports. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

bool
lintableFile(const std::filesystem::path &p)
{
    const std::string ext = p.extension().string();
    return ext == ".cc" || ext == ".hh" || ext == ".h" ||
           ext == ".cpp" || ext == ".hpp";
}

bool
excludedPath(const std::string &rel)
{
    return rel.find("lint_fixtures") != std::string::npos ||
           rel.rfind("build", 0) == 0 ||
           rel.find("/build") != std::string::npos ||
           rel.find("CMakeFiles") != std::string::npos;
}

/** Write the SARIF 2.1.0 report for CI annotation upload. */
bool
writeSarif(const std::filesystem::path &path,
           const std::vector<leolint::Diagnostic> &findings)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << "{\n"
        << "  \"$schema\": "
           "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
        << "  \"version\": \"2.1.0\",\n"
        << "  \"runs\": [\n    {\n"
        << "      \"tool\": {\n        \"driver\": {\n"
        << "          \"name\": \"leo-lint\",\n"
        << "          \"informationUri\": "
           "\"DESIGN.md#static-analysis\",\n"
        << "          \"rules\": [";
    bool first = true;
    auto emitRules = [&](const std::vector<leolint::CheckInfo> &set) {
        for (const leolint::CheckInfo &c : set) {
            out << (first ? "\n" : ",\n")
                << "            {\"id\": \"" << jsonEscape(c.name)
                << "\", \"shortDescription\": {\"text\": \""
                << jsonEscape(c.description) << "\"}}";
            first = false;
        }
    };
    emitRules(leolint::fileChecks());
    emitRules(leolint::programChecks());
    out << "\n          ]\n        }\n      },\n"
        << "      \"results\": [";
    for (std::size_t i = 0; i < findings.size(); ++i) {
        const leolint::Diagnostic &d = findings[i];
        std::string text = d.message;
        for (const std::string &frame : d.chain)
            text += "\n  via " + frame;
        out << (i ? ",\n" : "\n")
            << "        {\"ruleId\": \"" << jsonEscape(d.check)
            << "\", \"level\": \"error\", \"message\": {\"text\": \""
            << jsonEscape(text)
            << "\"}, \"locations\": [{\"physicalLocation\": "
               "{\"artifactLocation\": {\"uri\": \""
            << jsonEscape(d.file)
            << "\"}, \"region\": {\"startLine\": " << d.line
            << "}}}]}";
    }
    out << (findings.empty() ? "" : "\n      ") << "]\n    }\n  ]\n}\n";
    return static_cast<bool>(out);
}

} // namespace

int
main(int argc, char **argv)
{
    namespace fs = std::filesystem;
    fs::path root = fs::current_path();
    bool json = false;
    std::string sarifPath;
    std::vector<std::string> paths;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--sarif" && i + 1 < argc) {
            sarifPath = argv[++i];
        } else if (arg == "--list-checks") {
            for (const leolint::CheckInfo &c : leolint::fileChecks())
                std::cout << c.name << "\t" << c.description << "\n";
            for (const leolint::CheckInfo &c :
                 leolint::programChecks())
                std::cout << c.name << "\t" << c.description << "\n";
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: leo_lint [--root DIR] [--json] "
                   "[--sarif FILE] [--list-checks] [paths...]\n"
                   "Two-pass project-invariant static analysis; see "
                   "DESIGN.md \"Static analysis and enforced "
                   "invariants\".\n";
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "leo_lint: unknown option '" << arg << "'\n";
            return 2;
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.empty())
        paths = {"src", "tools", "bench", "tests"};

    std::error_code ec;
    root = fs::canonical(root, ec);
    if (ec) {
        std::cerr << "leo_lint: bad root: " << ec.message() << "\n";
        return 2;
    }

    // Collect the file set (sorted for stable output).
    std::vector<fs::path> files;
    for (const std::string &p : paths) {
        const fs::path base =
            fs::path(p).is_absolute() ? fs::path(p) : root / p;
        if (fs::is_regular_file(base, ec)) {
            files.push_back(base);
            continue;
        }
        if (!fs::is_directory(base, ec))
            continue; // Optional tree (e.g. no tests/ checkout).
        for (auto it = fs::recursive_directory_iterator(base, ec);
             !ec && it != fs::recursive_directory_iterator(); ++it) {
            if (it->is_regular_file() && lintableFile(it->path()))
                files.push_back(it->path());
        }
    }
    std::sort(files.begin(), files.end());
    files.erase(std::unique(files.begin(), files.end()), files.end());

    // Pass 0: tokenize everything once; the file checks and the
    // whole-program passes share the token streams.
    const leolint::LintContext ctx = leolint::makeContext(root);
    std::vector<leolint::SourceUnit> units;
    for (const fs::path &f : files) {
        std::string rel = fs::relative(f, root, ec).generic_string();
        if (ec || rel.rfind("..", 0) == 0)
            rel = f.generic_string();
        if (excludedPath(rel))
            continue;
        const auto src = leolint::readFile(f);
        if (!src) {
            std::cerr << "leo_lint: cannot read " << f << "\n";
            return 2;
        }
        units.push_back(leolint::tokenize(rel, *src));
    }

    std::vector<leolint::Diagnostic> findings;
    std::size_t suppressed = 0;
    for (const leolint::SourceUnit &unit : units) {
        std::vector<leolint::Diagnostic> d =
            leolint::lintUnit(unit, ctx, &suppressed);
        findings.insert(findings.end(),
                        std::make_move_iterator(d.begin()),
                        std::make_move_iterator(d.end()));
    }

    // Passes 1 + 2: symbol index, call graph, reachability checks.
    const leolint::SymbolIndex index = leolint::buildIndex(units);
    const leolint::CallGraph graph =
        leolint::buildCallGraph(units, index);
    std::vector<leolint::Diagnostic> program =
        leolint::lintProgram(units, index, graph, &suppressed);
    findings.insert(findings.end(),
                    std::make_move_iterator(program.begin()),
                    std::make_move_iterator(program.end()));
    leolint::sortDiagnostics(findings);

    if (!sarifPath.empty() && !writeSarif(sarifPath, findings)) {
        std::cerr << "leo_lint: cannot write SARIF to " << sarifPath
                  << "\n";
        return 2;
    }

    if (json) {
        std::cout << "{\n  \"diagnostics\": [";
        for (std::size_t i = 0; i < findings.size(); ++i) {
            const leolint::Diagnostic &d = findings[i];
            std::cout << (i ? ",\n    " : "\n    ") << "{\"file\": \""
                      << jsonEscape(d.file) << "\", \"line\": "
                      << d.line << ", \"check\": \""
                      << jsonEscape(d.check) << "\", \"message\": \""
                      << jsonEscape(d.message) << "\"";
            if (!d.chain.empty()) {
                std::cout << ", \"chain\": [";
                for (std::size_t k = 0; k < d.chain.size(); ++k)
                    std::cout << (k ? ", " : "") << "\""
                              << jsonEscape(d.chain[k]) << "\"";
                std::cout << "]";
            }
            std::cout << "}";
        }
        std::cout << (findings.empty() ? "" : "\n  ") << "],\n"
                  << "  \"filesScanned\": " << units.size() << ",\n"
                  << "  \"suppressed\": " << suppressed << ",\n"
                  << "  \"clean\": "
                  << (findings.empty() ? "true" : "false") << "\n}\n";
    } else {
        for (const leolint::Diagnostic &d : findings) {
            std::cout << d.file << ":" << d.line << ": [" << d.check
                      << "] " << d.message << "\n";
            for (const std::string &frame : d.chain)
                std::cout << "    via " << frame << "\n";
        }
        std::cout << "leo-lint: " << findings.size() << " issue"
                  << (findings.size() == 1 ? "" : "s") << ", "
                  << suppressed << " suppressed, " << units.size()
                  << " files scanned\n";
    }
    return findings.empty() ? 0 : 1;
}
