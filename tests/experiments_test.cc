/**
 * @file
 * Tests for the experiment harnesses that regenerate the paper's
 * figures, run at miniature scale so ctest stays fast.
 */

#include <gtest/gtest.h>

#include "experiments/accuracy.hh"
#include "experiments/energy.hh"
#include "experiments/report.hh"
#include "linalg/error.hh"
#include "telemetry/profile_store.hh"
#include "workloads/suite.hh"

using namespace leo;

namespace
{

std::vector<workloads::ApplicationProfile>
smallAppSet()
{
    return {workloads::profileByName("kmeans"),
            workloads::profileByName("x264"),
            workloads::profileByName("blackscholes"),
            workloads::profileByName("streamcluster"),
            workloads::profileByName("swish"),
            workloads::profileByName("lud"),
            workloads::profileByName("bodytrack"),
            workloads::profileByName("jacobi")};
}

} // namespace

TEST(AccuracyExperiment, OrderingOnCoreOnlySpace)
{
    platform::Machine machine;
    auto space = platform::ConfigSpace::coreOnly(machine);
    experiments::AccuracyOptions opt;
    opt.trials = 2;
    opt.sampleBudget = 8;

    auto rows = experiments::runAccuracyExperiment(
        estimators::Metric::Performance, machine, space,
        smallAppSet(), opt);
    ASSERT_EQ(rows.size(), 8u);

    const double leo = experiments::meanAccuracy(
        rows, &experiments::AccuracyRow::leo);
    const double off = experiments::meanAccuracy(
        rows, &experiments::AccuracyRow::offline);
    // The headline ordering of Figure 5: LEO above offline, high
    // absolute accuracy.
    EXPECT_GT(leo, 0.85);
    EXPECT_GT(leo, off);
    for (const auto &r : rows) {
        EXPECT_GE(r.leo, 0.0);
        EXPECT_LE(r.leo, 1.0);
    }
}

TEST(AccuracyExperiment, PowerAccuracyHigh)
{
    platform::Machine machine;
    auto space = platform::ConfigSpace::coreOnly(machine);
    experiments::AccuracyOptions opt;
    opt.trials = 2;
    opt.sampleBudget = 8;
    auto rows = experiments::runAccuracyExperiment(
        estimators::Metric::Power, machine, space, smallAppSet(),
        opt);
    EXPECT_GT(experiments::meanAccuracy(
                  rows, &experiments::AccuracyRow::leo),
              0.95);
}

TEST(EnergyExperiment, LeoNearOptimalRaceWorst)
{
    platform::Machine machine;
    auto space = platform::ConfigSpace::coreOnly(machine);
    stats::Rng rng(3);
    telemetry::HeartbeatMonitor mon;
    telemetry::WattsUpMeter met;
    auto store = telemetry::ProfileStore::collect(
        workloads::standardSuite(), machine, space, mon, met, rng);

    experiments::EnergyOptions opt;
    opt.utilizationLevels = 10;
    opt.sampleBudget = 8;

    auto curve = experiments::runEnergyExperiment(
        workloads::profileByName("kmeans"), machine, space,
        store.without("kmeans"), opt);
    ASSERT_EQ(curve.points.size(), 10u);

    const double rel_leo =
        curve.meanRelative(&experiments::EnergyPoint::leo);
    const double rel_race =
        curve.meanRelative(&experiments::EnergyPoint::raceToIdle);
    // Optimal is a lower bound on everything.
    EXPECT_GE(rel_leo, 0.999);
    EXPECT_GE(rel_race, 0.999);
    // Figure 11 shape: LEO near optimal, race-to-idle far above.
    EXPECT_LT(rel_leo, 1.25);
    EXPECT_GT(rel_race, rel_leo);

    // Energy increases with utilization for the optimal planner.
    for (std::size_t i = 0; i + 1 < curve.points.size(); ++i)
        EXPECT_LE(curve.points[i].optimal,
                  curve.points[i + 1].optimal * 1.001);
}

TEST(EnergyExperiment, PriorMustExcludeTarget)
{
    platform::Machine machine;
    auto space = platform::ConfigSpace::coreOnly(machine);
    stats::Rng rng(3);
    telemetry::HeartbeatMonitor mon;
    telemetry::WattsUpMeter met;
    auto store = telemetry::ProfileStore::collect(
        workloads::standardSuite(), machine, space, mon, met, rng);
    experiments::EnergyOptions opt;
    EXPECT_THROW(experiments::runEnergyExperiment(
                     workloads::profileByName("kmeans"), machine,
                     space, store, opt),
                 FatalError);
}

// ---------------------------------------------------------------- Report

TEST(Report, TextTableAligns)
{
    experiments::TextTable t({"name", "value"});
    t.addRow({"kmeans", "0.97"});
    t.addRow({"x", "1"});
    const std::string out = t.render();
    EXPECT_NE(out.find("kmeans"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
    EXPECT_THROW(t.addRow({"only-one-cell"}), FatalError);
}

TEST(Report, FmtAndEnv)
{
    EXPECT_EQ(experiments::fmt(1.23456, 2), "1.23");
    EXPECT_EQ(experiments::fmt(2.0, 0), "2");
    ::setenv("LEO_TEST_ENV_SIZE", "17", 1);
    EXPECT_EQ(experiments::envSize("LEO_TEST_ENV_SIZE", 3), 17u);
    EXPECT_EQ(experiments::envSize("LEO_TEST_ENV_MISSING", 3), 3u);
    ::setenv("LEO_TEST_ENV_SIZE", "-4", 1);
    EXPECT_EQ(experiments::envSize("LEO_TEST_ENV_SIZE", 3), 3u);
}
