/**
 * @file
 * Full-scale integration tests: the complete pipeline on the paper's
 * 1024-configuration space. Slower than the unit tests (a few
 * seconds each) but still well inside ctest budgets.
 */

#include <gtest/gtest.h>

#include "core/leo_system.hh"
#include "estimators/offline.hh"
#include "estimators/online.hh"
#include "linalg/error.hh"
#include "stats/metrics.hh"
#include "workloads/ground_truth.hh"
#include "workloads/suite.hh"

using namespace leo;

namespace
{

/** Shared full-scale world (built once for the whole binary). */
struct FullWorld
{
    platform::Machine machine;
    platform::ConfigSpace space =
        platform::ConfigSpace::fullFactorial(machine);
    telemetry::ProfileStore store = [this] {
        stats::Rng rng(2026);
        telemetry::HeartbeatMonitor mon;
        telemetry::WattsUpMeter met;
        return telemetry::ProfileStore::collect(
            workloads::standardSuite(), machine, space, mon, met,
            rng);
    }();
};

FullWorld &
world()
{
    static FullWorld w;
    return w;
}

} // namespace

TEST(FullScale, SpaceIsPaperSized)
{
    EXPECT_EQ(world().space.size(), 1024u);
    EXPECT_EQ(world().store.numApplications(), 25u);
}

TEST(FullScale, LeoEndToEndOnKmeans)
{
    FullWorld &w = world();
    workloads::ApplicationModel app(
        workloads::profileByName("kmeans"), w.machine);
    auto gt = workloads::computeGroundTruth(app, w.space);

    stats::Rng rng(5);
    telemetry::HeartbeatMonitor mon;
    telemetry::WattsUpMeter met;
    telemetry::Profiler prof(mon, met);
    telemetry::RandomSampler pol;
    auto obs = prof.sample(app, w.space, pol, 20, rng);

    estimators::LeoEstimator leo;
    auto prior = w.store.without("kmeans");
    estimators::EstimationInputs inputs{w.space, prior, obs};
    auto est = leo.estimate(inputs);

    // The paper's headline: high accuracy from < 2% of the space.
    EXPECT_GT(stats::accuracy(est.performance.values,
                              gt.performance),
              0.85);
    EXPECT_GT(stats::accuracy(est.power.values, gt.power), 0.97);
    EXPECT_LE(est.performance.iterations, 6u);

    // Energy: guarded execution of LEO's plan lands within 15% of
    // optimal at mid utilization.
    optimizer::PerformanceConstraint c;
    c.deadlineSeconds = 100.0;
    c.work = 0.5 * gt.performance.max() * c.deadlineSeconds;
    const double idle = w.machine.spec().idleSystemPowerW;
    auto mine = optimizer::executeScheduleGuarded(
        optimizer::planMinimalEnergy(est.performance.values,
                                     est.power.values, idle, c),
        gt.performance, gt.power, idle, c);
    auto best = optimizer::executeScheduleGuarded(
        optimizer::planMinimalEnergy(gt.performance, gt.power, idle,
                                     c),
        gt.performance, gt.power, idle, c);
    EXPECT_TRUE(mine.deadlineMet);
    EXPECT_LT(mine.energyJoules, best.energyJoules * 1.15);

    // And race-to-idle (open loop, all resources) pays dearly on
    // kmeans, whose performance collapses past 8 cores.
    optimizer::Schedule race;
    race.parts.push_back({w.space.size() - 1, c.deadlineSeconds});
    auto raced = optimizer::executeSchedule(race, gt.performance,
                                            gt.power, idle, c);
    EXPECT_GT(raced.energyJoules, best.energyJoules * 1.5);
}

TEST(FullScale, EstimatorOrderingOnRepresentativeApps)
{
    FullWorld &w = world();
    stats::Rng rng(9);
    telemetry::HeartbeatMonitor mon;
    telemetry::WattsUpMeter met;
    telemetry::Profiler prof(mon, met);
    telemetry::RandomSampler pol;

    estimators::LeoEstimator leo;
    estimators::OnlineEstimator online;
    estimators::OfflineEstimator offline;

    double leo_sum = 0, online_sum = 0, offline_sum = 0;
    for (const char *name : {"kmeans", "swish", "x264"}) {
        workloads::ApplicationModel app(
            workloads::profileByName(name), w.machine);
        auto gt = workloads::computeGroundTruth(app, w.space);
        auto obs = prof.sample(app, w.space, pol, 20, rng);
        auto prior = w.store.without(name);
        estimators::EstimationInputs inputs{w.space, prior, obs};
        leo_sum += stats::accuracy(
            leo.estimate(inputs).performance.values, gt.performance);
        online_sum += stats::accuracy(
            online.estimate(inputs).performance.values,
            gt.performance);
        offline_sum += stats::accuracy(
            offline.estimate(inputs).performance.values,
            gt.performance);
    }
    // Figure 5's ordering on the hard apps.
    EXPECT_GT(leo_sum, online_sum);
    EXPECT_GT(leo_sum, offline_sum);
    EXPECT_GT(leo_sum / 3.0, 0.9);
}

TEST(FullScale, FacadeQuickstartPath)
{
    // The README's five-line tour, end to end on the real scale.
    core::LeoSystemOptions opt;
    opt.sampleBudget = 20;
    core::LeoSystem sys(world().machine, world().space,
                        world().store, opt);
    workloads::ApplicationModel target(
        workloads::profileByName("streamcluster"), sys.machine());
    stats::Rng rng(3);
    auto obs = sys.observe(target, rng);
    auto est = sys.estimate(obs, "streamcluster");
    auto gt = workloads::computeGroundTruth(target, sys.space());
    EXPECT_GT(stats::accuracy(est.performance.values,
                              gt.performance),
              0.9);
}
