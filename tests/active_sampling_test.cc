/**
 * @file
 * Tests for the variance-guided active sampler (extension).
 */

#include <gtest/gtest.h>

#include "estimators/active_sampling.hh"
#include "linalg/error.hh"
#include "platform/config_space.hh"
#include "stats/metrics.hh"
#include "telemetry/meters.hh"
#include "telemetry/profile_store.hh"
#include "workloads/ground_truth.hh"
#include "workloads/suite.hh"

using namespace leo;

namespace
{

struct World
{
    platform::Machine machine;
    platform::ConfigSpace space =
        platform::ConfigSpace::coreOnly(machine);
    telemetry::HeartbeatMonitor monitor;
    telemetry::WattsUpMeter meter;
    stats::Rng rng{3};
    telemetry::ProfileStore store = telemetry::ProfileStore::collect(
        workloads::standardSuite(), machine, space, monitor, meter,
        rng);

    estimators::VarianceGuidedSampler::MeasureFn
    measureFn(const workloads::ApplicationModel &app)
    {
        return [this, &app](std::size_t idx) {
            telemetry::Sample s;
            s.configIndex = idx;
            const auto &ra = space.assignment(idx);
            s.heartbeatRate = monitor.measureRate(app, ra, rng);
            s.powerWatts = meter.read(app, ra, rng);
            return s;
        };
    }
};

} // namespace

TEST(ActiveSampling, CollectsExactBudgetDistinct)
{
    World w;
    workloads::ApplicationModel app(
        workloads::profileByName("kmeans"), w.machine);
    auto prior = estimators::priorVectors(
        w.store.without("kmeans"), estimators::Metric::Performance);

    estimators::VarianceGuidedSampler sampler;
    auto obs = sampler.collect(w.measureFn(app), prior, 12, w.rng);
    EXPECT_EQ(obs.size(), 12u);
    std::vector<bool> seen(w.space.size(), false);
    for (std::size_t idx : obs.indices) {
        ASSERT_LT(idx, w.space.size());
        EXPECT_FALSE(seen[idx]);
        seen[idx] = true;
    }
}

TEST(ActiveSampling, BudgetClampedToSpace)
{
    World w;
    workloads::ApplicationModel app(
        workloads::profileByName("x264"), w.machine);
    auto prior = estimators::priorVectors(
        w.store.without("x264"), estimators::Metric::Performance);
    estimators::VarianceGuidedSampler sampler;
    auto obs = sampler.collect(w.measureFn(app), prior, 999, w.rng);
    EXPECT_EQ(obs.size(), w.space.size());
}

TEST(ActiveSampling, EstimateQualityComparableToRandom)
{
    World w;
    workloads::ApplicationModel app(
        workloads::profileByName("swish"), w.machine);
    auto loo = w.store.without("swish");
    auto prior = estimators::priorVectors(
        loo, estimators::Metric::Performance);
    auto gt = workloads::computeGroundTruth(app, w.space);

    estimators::VarianceGuidedSampler sampler;
    auto obs = sampler.collect(w.measureFn(app), prior, 10, w.rng);

    estimators::LeoEstimator leo;
    const double acc = stats::accuracy(
        leo.estimateMetric(w.space, prior, obs.indices,
                           obs.performance)
            .values,
        gt.performance);
    EXPECT_GT(acc, 0.85);
}

TEST(ActiveSampling, RejectsBadSetup)
{
    estimators::ActiveSamplingOptions bad;
    bad.seedProbes = 0;
    EXPECT_THROW(estimators::VarianceGuidedSampler{bad}, FatalError);

    World w;
    estimators::VarianceGuidedSampler sampler;
    auto noop = [](std::size_t idx) {
        return telemetry::Sample{idx, 1.0, 1.0};
    };
    EXPECT_THROW(sampler.collect(noop, {}, 4, w.rng), FatalError);
}

TEST(ActiveSampling, DetectsMisbehavingCallback)
{
    World w;
    workloads::ApplicationModel app(
        workloads::profileByName("lud"), w.machine);
    auto prior = estimators::priorVectors(
        w.store.without("lud"), estimators::Metric::Performance);
    estimators::VarianceGuidedSampler sampler;
    auto wrong = [](std::size_t) {
        return telemetry::Sample{0, 1.0, 1.0}; // always config 0
    };
    EXPECT_THROW(sampler.collect(wrong, prior, 6, w.rng),
                 FatalError);
}

/**
 * Low-rank guidance fits that skip the n-vector variance expansion
 * (expandVariance = false) must select exactly the probes the
 * expanded path selects: lowRankPredictiveVariance evaluates each
 * candidate bitwise identically to the expanded fill, so the whole
 * collected observation set matches.
 */
TEST(ActiveSampling, FactoredVarianceMatchesExpandedPath)
{
    World w;
    workloads::ApplicationModel app(
        workloads::profileByName("kmeans"), w.machine);
    auto prior = estimators::priorVectors(
        w.store.without("kmeans"), estimators::Metric::Performance);

    auto run = [&](bool expand) {
        estimators::ActiveSamplingOptions opt;
        opt.estimator.representation =
            estimators::CovarianceRep::LowRank;
        opt.estimator.expandVariance = expand;
        estimators::VarianceGuidedSampler sampler(opt);
        // Fresh, identically seeded streams per run so both paths
        // see the same measurements and the same seed probes.
        stats::Rng meas(11);
        stats::Rng sel(17);
        auto measure = [&](std::size_t idx) {
            telemetry::Sample s;
            s.configIndex = idx;
            const auto &ra = w.space.assignment(idx);
            s.heartbeatRate = w.monitor.measureRate(app, ra, meas);
            s.powerWatts = w.meter.read(app, ra, meas);
            return s;
        };
        return sampler.collect(measure, prior, 14, sel);
    };

    const auto expanded = run(true);
    const auto factored = run(false);
    ASSERT_EQ(expanded.indices, factored.indices);
    for (std::size_t i = 0; i < expanded.size(); ++i) {
        EXPECT_EQ(expanded.performance[i], factored.performance[i]);
        EXPECT_EQ(expanded.power[i], factored.power[i]);
    }
}
