/**
 * @file
 * Tests for leo::scenario: trace parsing and replay, the scenario
 * DSL, the change-point detector, and the scenario runners.
 *
 * The contracts under test, from DESIGN.md "Scenarios and
 * change-point adaptation":
 *
 *  - TraceTable parsing rejects malformed input loudly (missing
 *    columns, non-finite cells, empty segments) and tolerates
 *    comments, headers and CRLF endings;
 *  - TraceApplicationModel fills missing configs deterministically
 *    per interpolation policy and replays seeded noise bit-exactly;
 *  - Spec round-trips through its canonical text form, parses JSON,
 *    and expands grids as a pure cross product;
 *  - the ChangePointDetector stays quiet on stationary residual
 *    streams, fires within a few windows of a genuine step, and
 *    centers out persistent fit bias learned during warmup;
 *  - runScenario with a fault-free spec and the policy Off is
 *    bitwise identical (0 ULP) to runtime::runPhased;
 *  - runScenarioService schedules are a pure function of the spec —
 *    independent of shard count, worker count and mid-run snapshot
 *    round-trips.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "estimators/leo.hh"
#include "estimators/sanitize.hh"
#include "linalg/error.hh"
#include "parallel/thread_pool.hh"
#include "runtime/changepoint.hh"
#include "runtime/phased_run.hh"
#include "scenario/scenario.hh"
#include "scenario/spec.hh"
#include "telemetry/profile_store.hh"
#include "workloads/ground_truth.hh"
#include "workloads/suite.hh"
#include "workloads/trace.hh"

using namespace leo;
using linalg::Vector;
using platform::ConfigSpace;
using platform::Machine;
using runtime::ChangePointDetector;
using runtime::ChangePointMethod;
using runtime::ChangePointOptions;
using workloads::TraceApplicationModel;
using workloads::TraceInterpolation;
using workloads::TraceModelOptions;
using workloads::TraceTable;

namespace
{

struct World
{
    Machine machine;
    ConfigSpace space = ConfigSpace::coreOnly(machine);
    telemetry::HeartbeatMonitor monitor{0.01};
    telemetry::WattsUpMeter meter{0.005, 0.1};
    stats::Rng rng{7};
    telemetry::ProfileStore store = telemetry::ProfileStore::collect(
        workloads::standardSuite(), machine, space, monitor, meter,
        rng);
};

/** Write text to a fresh file under the gtest temp dir. */
std::string
writeTempFile(const std::string &name, const std::string &text)
{
    const std::string path = ::testing::TempDir() + name;
    std::ofstream out(path, std::ios::binary);
    out << text;
    return path;
}

/** A two-segment trace over @p space: rows at the ends and middle. */
std::string
twoSegmentCsv(const ConfigSpace &space)
{
    const std::size_t last = space.size() - 1;
    char buf[256];
    std::string text = "# two-segment test trace\r\n"
                       "config,performance,power\r\n"
                       "segment,40\r\n";
    std::snprintf(buf, sizeof(buf), "0,10.0,100.0\r\n%zu,30.0,140.0\r\n",
                  last);
    text += buf;
    text += "segment,0\r\n";
    std::snprintf(buf, sizeof(buf), "0,5.0,90.0\r\n%zu,15.0,120.0\r\n",
                  last);
    text += buf;
    return text;
}

} // namespace

// ------------------------------------------------------- Trace parsing

TEST(TraceParse, CsvTolerantOfHeaderCommentsCrlf)
{
    World w;
    const TraceTable t = TraceTable::fromString(twoSegmentCsv(w.space));
    ASSERT_EQ(t.segments.size(), 2u);
    EXPECT_EQ(t.segments[0].workUnits, 40u);
    EXPECT_EQ(t.segments[1].workUnits, 0u);
    ASSERT_EQ(t.segments[0].indices.size(), 2u);
    EXPECT_EQ(t.segments[0].indices[0], 0u);
    EXPECT_EQ(t.segments[0].performance[1], 30.0);
    EXPECT_EQ(t.segments[1].power[0], 90.0);
    EXPECT_EQ(t.maxIndex(), w.space.size() - 1);
    EXPECT_EQ(t.totalWorkUnits(), 40u);
}

TEST(TraceParse, MissingColumnThrows)
{
    EXPECT_THROW(TraceTable::fromString("0,1.0\n"), FatalError);
}

TEST(TraceParse, NonFiniteCellThrows)
{
    EXPECT_THROW(TraceTable::fromString("0,nan,100.0\n"), FatalError);
    EXPECT_THROW(TraceTable::fromString("0,1.0,inf\n"), FatalError);
}

TEST(TraceParse, NonPositiveCellThrows)
{
    EXPECT_THROW(TraceTable::fromString("0,0.0,100.0\n"), FatalError);
    EXPECT_THROW(TraceTable::fromString("0,1.0,-5.0\n"), FatalError);
}

TEST(TraceParse, EmptySegmentThrows)
{
    EXPECT_THROW(
        TraceTable::fromString("segment,10\nsegment,0\n0,1.0,100\n"),
        FatalError);
    EXPECT_THROW(TraceTable::fromString("segment,10\n"), FatalError);
}

TEST(TraceParse, DuplicateConfigInSegmentThrows)
{
    EXPECT_THROW(
        TraceTable::fromString("0,1.0,100\n0,2.0,110\n"), FatalError);
}

TEST(TraceParse, JsonBareArray)
{
    const TraceTable t =
        TraceTable::fromString("[[0, 2.5, 100.0], [3, 5.0, 130.0]]");
    ASSERT_EQ(t.segments.size(), 1u);
    EXPECT_EQ(t.segments[0].workUnits, 0u);
    ASSERT_EQ(t.segments[0].indices.size(), 2u);
    EXPECT_EQ(t.segments[0].indices[1], 3u);
    EXPECT_EQ(t.segments[0].performance[0], 2.5);
}

TEST(TraceParse, JsonSegmentsObject)
{
    const TraceTable t = TraceTable::fromString(
        "{\"segments\": ["
        "{\"workUnits\": 20, \"rows\": [[0, 1.0, 90.0]]},"
        "{\"workUnits\": 0, \"rows\": [[0, 2.0, 95.0]]}]}");
    ASSERT_EQ(t.segments.size(), 2u);
    EXPECT_EQ(t.segments[0].workUnits, 20u);
    EXPECT_EQ(t.segments[1].performance[0], 2.0);
}

TEST(TraceParse, FromFileRoundTripAndUnreadablePath)
{
    World w;
    const std::string path =
        writeTempFile("scenario_trace.csv", twoSegmentCsv(w.space));
    const TraceTable t = TraceTable::fromFile(path);
    EXPECT_EQ(t.segments.size(), 2u);
    EXPECT_THROW(TraceTable::fromFile(::testing::TempDir() +
                                      "does_not_exist.csv"),
                 FatalError);
}

TEST(TraceParse, ShippedExampleTracesStayValid)
{
    // The example traces under examples/traces/ are documentation;
    // parsing them here keeps the docs honest as the format evolves.
    const std::string dir = LEO_EXAMPLE_TRACES_DIR;
    const TraceTable csv =
        TraceTable::fromFile(dir + "/web_requests.csv");
    ASSERT_EQ(csv.segments.size(), 2u);
    EXPECT_EQ(csv.segments[0].workUnits, 500u);
    EXPECT_EQ(csv.segments[1].workUnits, 0u);
    EXPECT_EQ(csv.maxIndex(), 15u);

    const TraceTable json =
        TraceTable::fromFile(dir + "/batch_phases.json");
    ASSERT_EQ(json.segments.size(), 2u);
    EXPECT_EQ(json.segments[0].workUnits, 300u);
    EXPECT_EQ(json.maxIndex(), 15u);

    // Both replay against any space with at least 16 configurations.
    World w;
    ASSERT_GE(w.space.size(), 16u);
    const TraceApplicationModel m(csv, w.space);
    EXPECT_EQ(m.numSegments(), 2u);
}

// -------------------------------------------------------- Trace replay

TEST(TraceModel, OutOfRangeIndexThrowsAtConstruction)
{
    World w;
    TraceTable t;
    t.segments.push_back(
        {0, {w.space.size() + 7}, {1.0}, {100.0}});
    EXPECT_THROW(TraceApplicationModel(t, w.space), FatalError);
}

TEST(TraceModel, InterpolationPolicies)
{
    World w;
    const std::size_t last = w.space.size() - 1;
    ASSERT_GE(last, 2u);
    TraceTable t;
    t.segments.push_back({0, {0, last}, {10.0, 30.0}, {100.0, 140.0}});

    TraceModelOptions lin;
    lin.interpolation = TraceInterpolation::Linear;
    const TraceApplicationModel ml(t, w.space, lin);
    const Vector &pl = ml.segmentPerformance(0);
    EXPECT_EQ(pl[0], 10.0);
    EXPECT_EQ(pl[last], 30.0);
    for (std::size_t c = 1; c < last; ++c) {
        const double expect =
            10.0 + (30.0 - 10.0) * static_cast<double>(c) /
                       static_cast<double>(last);
        EXPECT_NEAR(pl[c], expect, 1e-12) << "config " << c;
    }

    TraceModelOptions near;
    near.interpolation = TraceInterpolation::Nearest;
    const TraceApplicationModel mn(t, w.space, near);
    const Vector &pn = mn.segmentPerformance(0);
    EXPECT_EQ(pn[1], 10.0);        // Closer to row 0.
    EXPECT_EQ(pn[last - 1], 30.0); // Closer to the last row.

    TraceModelOptions hold;
    hold.interpolation = TraceInterpolation::Hold;
    const TraceApplicationModel mh(t, w.space, hold);
    const Vector &ph = mh.segmentPerformance(0);
    // Hold carries the last row at-or-below forward.
    for (std::size_t c = 0; c < last; ++c)
        EXPECT_EQ(ph[c], 10.0) << "config " << c;
    EXPECT_EQ(ph[last], 30.0);
}

TEST(TraceModel, NoiseReplayIsDeterministicPerSeed)
{
    World w;
    const std::size_t last = w.space.size() - 1;
    TraceTable t;
    t.segments.push_back({0, {0, last}, {10.0, 30.0}, {100.0, 140.0}});

    TraceModelOptions a;
    a.noiseRelative = 0.05;
    a.noiseSeed = 123;
    const TraceApplicationModel ma(t, w.space, a);
    const TraceApplicationModel mb(t, w.space, a);
    for (std::size_t c = 0; c <= last; ++c) {
        EXPECT_EQ(ma.segmentPerformance(0)[c],
                  mb.segmentPerformance(0)[c]);
        EXPECT_EQ(ma.segmentPower(0)[c], mb.segmentPower(0)[c]);
    }

    TraceModelOptions other = a;
    other.noiseSeed = 124;
    const TraceApplicationModel mc(t, w.space, other);
    bool any_differ = false;
    for (std::size_t c = 0; c <= last; ++c)
        any_differ = any_differ || ma.segmentPerformance(0)[c] !=
                                       mc.segmentPerformance(0)[c];
    EXPECT_TRUE(any_differ);

    // Zero noise replays the table rows bit-exactly.
    const TraceApplicationModel m0(t, w.space);
    EXPECT_EQ(m0.segmentPerformance(0)[0], 10.0);
    EXPECT_EQ(m0.segmentPower(0)[last], 140.0);
}

TEST(TraceModel, SegmentSwitchingFollowsWorkUnits)
{
    World w;
    TraceApplicationModel m(
        TraceTable::fromString(twoSegmentCsv(w.space)), w.space);
    ASSERT_EQ(m.numSegments(), 2u);
    const auto &ra0 = w.space.assignment(0);

    m.setWorkUnit(0);
    EXPECT_EQ(m.activeSegment(), 0u);
    EXPECT_EQ(m.heartbeatRate(ra0), 10.0);

    m.setWorkUnit(39);
    EXPECT_EQ(m.activeSegment(), 0u);
    m.advance();
    EXPECT_EQ(m.workUnit(), 40u);
    EXPECT_EQ(m.activeSegment(), 1u);
    EXPECT_EQ(m.heartbeatRate(ra0), 5.0);

    // The unbounded terminal segment runs forever.
    m.setWorkUnit(100000);
    EXPECT_EQ(m.activeSegment(), 1u);
    EXPECT_EQ(m.segmentAt(0), 0u);
    EXPECT_EQ(m.segmentAt(40), 1u);
}

// --------------------------------------------------------- Scenario DSL

TEST(SpecDsl, CanonicalTextRoundTrips)
{
    scenario::Spec spec;
    spec.name = "round_trip";
    spec.workload = scenario::WorkloadKind::Phased;
    spec.phases = {{"swaptions", 1.0, 60}, {"kmeans", 0.75, 40}};
    spec.targetRate = 3.5;
    spec.frames = 100;
    spec.seed = 99;
    spec.changePointPolicy = runtime::ChangePointPolicy::ColdRefit;
    spec.changePointMethod = runtime::ChangePointMethod::Bayesian;
    spec.faults.nanProb = 0.05;
    spec.faults.outlierProb = 0.02;
    spec.faults.outlierScale = 25.0;
    spec.faults.seed = 7;
    spec.arrivals = {4, 8, 0.2};

    const std::string text = spec.toString();
    const scenario::Spec back = scenario::Spec::fromString(text);
    EXPECT_EQ(back.toString(), text);
    EXPECT_EQ(back.name, "round_trip");
    ASSERT_EQ(back.phases.size(), 2u);
    EXPECT_EQ(back.phases[1].app, "kmeans");
    EXPECT_EQ(back.phases[1].scale, 0.75);
    EXPECT_EQ(back.changePointPolicy,
              runtime::ChangePointPolicy::ColdRefit);
    EXPECT_EQ(back.changePointMethod,
              runtime::ChangePointMethod::Bayesian);
    EXPECT_EQ(back.faults.outlierScale, 25.0);
    EXPECT_EQ(back.arrivals.tenants, 4u);
    EXPECT_EQ(back.arrivals.rateSpread, 0.2);
}

TEST(SpecDsl, TolerantOfCommentsAndCrlf)
{
    const scenario::Spec spec = scenario::Spec::fromString(
        "# a comment\r\n"
        "name crlf_spec\r\n"
        "\r\n"
        "workload analytic   # trailing comment\r\n"
        "app kmeans\r\n"
        "frames 32\r\n");
    EXPECT_EQ(spec.name, "crlf_spec");
    EXPECT_EQ(spec.workload, scenario::WorkloadKind::Analytic);
    EXPECT_EQ(spec.app, "kmeans");
    EXPECT_EQ(spec.frames, 32u);
}

TEST(SpecDsl, JsonParses)
{
    const scenario::Spec spec = scenario::Spec::fromString(
        "{\"name\": \"j\", \"workload\": \"phased\", \"target\": 2.0,"
        " \"seed\": 5, \"changepoint\": \"priorreset\","
        " \"phases\": [{\"app\": \"x264\", \"frames\": 30,"
        "               \"scale\": 0.5}],"
        " \"fault\": {\"dropout\": 0.1},"
        " \"tenants\": {\"count\": 3, \"spacing\": 2,"
        "               \"rate_spread\": 0.1}}");
    EXPECT_EQ(spec.name, "j");
    EXPECT_EQ(spec.workload, scenario::WorkloadKind::Phased);
    EXPECT_EQ(spec.targetRate, 2.0);
    EXPECT_EQ(spec.changePointPolicy,
              runtime::ChangePointPolicy::PriorReset);
    ASSERT_EQ(spec.phases.size(), 1u);
    EXPECT_EQ(spec.phases[0].scale, 0.5);
    EXPECT_EQ(spec.faults.dropoutProb, 0.1);
    EXPECT_EQ(spec.arrivals.tenants, 3u);
}

TEST(SpecDsl, RejectsUnknownKeysAndBadValues)
{
    EXPECT_THROW(scenario::Spec::fromString("bogus_key 1\n"),
                 FatalError);
    EXPECT_THROW(scenario::Spec::fromString("frames not_a_number\n"),
                 FatalError);
    EXPECT_THROW(scenario::Spec::fromString("workload quantum\n"),
                 FatalError);
    EXPECT_THROW(scenario::Spec::fromString("changepoint maybe\n"),
                 FatalError);
}

TEST(SpecDsl, InlineTraceHeredoc)
{
    World w;
    const scenario::Spec spec = scenario::Spec::fromString(
        "name heredoc\n"
        "workload trace\n"
        "frames 20\n"
        "trace_inline <<END\n"
        "0,2.0,100.0\n"
        "END\n");
    EXPECT_EQ(spec.workload, scenario::WorkloadKind::Trace);
    EXPECT_NE(spec.traceText.find("0,2.0,100.0"), std::string::npos);
    scenario::Scenario sc(spec, w.machine, w.space);
    EXPECT_EQ(sc.totalFrames(), 20u);
    EXPECT_EQ(sc.numPhases(), 1u);
    // Auto target: half the peak rate (flat 2.0 everywhere).
    EXPECT_EQ(sc.targetRate(), 1.0);
}

TEST(SpecDsl, ExpandGridIsCrossProduct)
{
    scenario::Spec base;
    base.name = "grid";
    const auto cells = scenario::expandGrid(
        base, {{"changepoint", {"off", "coldrefit"}},
               {"seed", {"1", "2", "3"}}});
    ASSERT_EQ(cells.size(), 6u);
    EXPECT_EQ(cells[0].name, "grid/changepoint=off/seed=1");
    EXPECT_EQ(cells[0].seed, 1u);
    EXPECT_EQ(cells[5].name, "grid/changepoint=coldrefit/seed=3");
    EXPECT_EQ(cells[5].changePointPolicy,
              runtime::ChangePointPolicy::ColdRefit);
    EXPECT_EQ(cells[5].seed, 3u);
    // Cells inherit everything not swept.
    EXPECT_EQ(cells[3].workload, base.workload);
}

TEST(SpecDsl, SetFieldRoutesFaultAndPhaseScale)
{
    scenario::Spec spec;
    spec.workload = scenario::WorkloadKind::Phased;
    spec.phases = {{"x264", 1.0, 10}, {"x264", 2.0, 10}};
    scenario::setField(spec, "fault.nan", "0.25");
    scenario::setField(spec, "phase_scale", "0.5");
    EXPECT_EQ(spec.faults.nanProb, 0.25);
    EXPECT_EQ(spec.phases[0].scale, 0.5);
    EXPECT_EQ(spec.phases[1].scale, 1.0);
    EXPECT_THROW(scenario::setField(spec, "fault.gamma_rays", "1"),
                 FatalError);
}

// ------------------------------------------------ Scenario materialize

TEST(Scenario, MaterializationErrors)
{
    World w;
    scenario::Spec no_phases;
    no_phases.workload = scenario::WorkloadKind::Phased;
    EXPECT_THROW(scenario::Scenario(no_phases, w.machine, w.space),
                 FatalError);

    scenario::Spec no_trace;
    no_trace.workload = scenario::WorkloadKind::Trace;
    EXPECT_THROW(scenario::Scenario(no_trace, w.machine, w.space),
                 FatalError);

    scenario::Spec zero_frames;
    zero_frames.frames = 0;
    EXPECT_THROW(scenario::Scenario(zero_frames, w.machine, w.space),
                 FatalError);
}

TEST(Scenario, AutoTargetIsHalfFirstPhasePeak)
{
    World w;
    scenario::Spec spec;
    spec.app = "swaptions";
    spec.frames = 10;
    scenario::Scenario sc(spec, w.machine, w.space);
    workloads::ApplicationModel m(
        workloads::profileByName("swaptions"), w.machine);
    const auto gt = workloads::computeGroundTruth(m, w.space);
    EXPECT_EQ(sc.targetRate(), 0.5 * gt.performance.max());
}

// -------------------------------------------------- Runner equivalence

TEST(ScenarioRun, BitwiseIdenticalToRunPhased)
{
    // A fault-free spec with the policy Off must reproduce
    // runtime::runPhased to the last bit: same controller decisions,
    // same RNG consumption, same energy accounting.
    World w;
    workloads::ApplicationProfile heavy =
        workloads::profileByName("fluidanimate");
    workloads::ApplicationProfile light = heavy;
    light.baseHeartbeatRate *= 1.5;
    const workloads::PhasedApplication app(
        {workloads::Phase{heavy, 30}, workloads::Phase{light, 30}});

    workloads::ApplicationModel hm(heavy, w.machine);
    const auto gt = workloads::computeGroundTruth(hm, w.space);
    const double demand = 0.6 * gt.performance.max();

    scenario::Spec spec;
    spec.workload = scenario::WorkloadKind::Phased;
    spec.phases = {{"fluidanimate", 1.0, 30},
                   {"fluidanimate", 1.5, 30}};
    spec.targetRate = demand;
    spec.seed = 91;
    scenario::Scenario sc(spec, w.machine, w.space);

    estimators::LeoEstimator leo;
    const auto prior = w.store.without("fluidanimate");

    runtime::ControllerOptions opts;
    opts.targetRate = demand;
    opts.idlePower = w.machine.spec().idleSystemPowerW;
    opts.sampleBudget = 6;
    stats::Rng rng(91);
    const auto expect = runtime::runPhased(app, w.machine, w.space,
                                           &leo, prior, opts, rng);

    runtime::ControllerOptions base;
    base.sampleBudget = 6;
    const auto got = scenario::runScenario(sc, &leo, prior, base);

    ASSERT_EQ(got.trace.size(), expect.trace.size());
    for (std::size_t f = 0; f < got.trace.size(); ++f) {
        EXPECT_EQ(got.trace[f].configIndex,
                  expect.trace[f].configIndex);
        EXPECT_EQ(got.trace[f].rate, expect.trace[f].rate);
        EXPECT_EQ(got.trace[f].powerWatts,
                  expect.trace[f].powerWatts);
        EXPECT_EQ(got.trace[f].energyJoules,
                  expect.trace[f].energyJoules);
    }
    EXPECT_EQ(got.totalEnergy, expect.totalEnergy);
    EXPECT_EQ(got.deadlineHitRate, expect.deadlineHitRate);
    EXPECT_EQ(got.reestimations, expect.reestimations);
    EXPECT_EQ(got.changePoints, 0u);
    EXPECT_EQ(got.faultsInjected, 0u);
}

TEST(ScenarioRun, FaultyRunStaysFiniteAndCountsInjections)
{
    World w;
    scenario::Spec spec;
    spec.app = "x264";
    spec.frames = 80;
    spec.faults.nanProb = 0.1;
    spec.faults.outlierProb = 0.1;
    spec.faults.outlierScale = 50.0;
    scenario::Scenario sc(spec, w.machine, w.space);
    estimators::LeoEstimator leo;
    runtime::ControllerOptions base;
    base.sampleBudget = 6;
    const auto r = scenario::runScenario(sc, &leo, w.store, base);
    EXPECT_GT(r.faultsInjected, 0u);
    EXPECT_TRUE(std::isfinite(r.totalEnergy));
    EXPECT_GT(r.totalEnergy, 0.0);
    for (const auto &fr : r.trace)
        EXPECT_TRUE(std::isfinite(fr.energyJoules));
}

TEST(ScenarioRun, ChangePointPolicyReactsToPhaseStep)
{
    // A 40% rate step is far above the detector's standardization
    // scale: the ColdRefit run must notice it at least once.
    World w;
    scenario::Spec spec;
    spec.workload = scenario::WorkloadKind::Phased;
    spec.phases = {{"swaptions", 1.0, 50}, {"swaptions", 0.6, 50}};
    spec.changePointPolicy = runtime::ChangePointPolicy::ColdRefit;
    spec.seed = 17;
    scenario::Scenario sc(spec, w.machine, w.space);
    estimators::LeoEstimator leo;
    runtime::ControllerOptions base;
    base.sampleBudget = 6;
    const auto r = scenario::runScenario(sc, &leo, w.store, base);
    EXPECT_GE(r.changePoints, 1u);
    EXPECT_GE(r.reestimations, r.changePoints);
}

TEST(ScenarioRun, TraceWorkloadThroughEstimatorAndController)
{
    World w;
    scenario::Spec spec;
    spec.name = "trace_loop";
    spec.workload = scenario::WorkloadKind::Trace;
    spec.frames = 60;
    spec.traceText = twoSegmentCsv(w.space);
    scenario::Scenario sc(spec, w.machine, w.space);
    estimators::LeoEstimator leo;
    runtime::ControllerOptions base;
    base.sampleBudget = 6;
    const auto r = scenario::runScenario(sc, &leo, w.store, base);
    EXPECT_EQ(r.trace.size(), 60u);
    EXPECT_EQ(r.phaseEnergy.size(), 2u);
    EXPECT_TRUE(std::isfinite(r.totalEnergy));
    EXPECT_GT(r.phaseEnergy[0], 0.0);
    EXPECT_GT(r.phaseEnergy[1], 0.0);
    // Re-running the same scenario replays bit-for-bit.
    const auto again = scenario::runScenario(sc, &leo, w.store, base);
    EXPECT_EQ(again.totalEnergy, r.totalEnergy);
    ASSERT_EQ(again.trace.size(), r.trace.size());
    for (std::size_t f = 0; f < r.trace.size(); ++f)
        EXPECT_EQ(again.trace[f].configIndex,
                  r.trace[f].configIndex);
}

// --------------------------------------------- Change-point detector

TEST(ChangePoint, QuietOnStationaryResiduals)
{
    ChangePointOptions opt;
    ChangePointDetector det;
    det.configure(opt);
    // Standardized residuals in steady state sit well inside one
    // predictive sigma (the floor/cap bracket the noise).
    stats::Rng rng(404);
    for (std::size_t i = 0; i < 500; ++i)
        EXPECT_FALSE(det.observe(0.5 * rng.gaussian()))
            << "false alarm at window " << i;
    EXPECT_EQ(det.windowsObserved(), 500u);
}

TEST(ChangePoint, DetectsStepWithinAFewWindows)
{
    ChangePointOptions opt;
    opt.warmupWindows = 10; // Pin the bias estimate down first.
    ChangePointDetector det;
    det.configure(opt);
    stats::Rng rng(405);
    for (std::size_t i = 0; i < 50; ++i)
        ASSERT_FALSE(det.observe(0.5 * rng.gaussian()));
    // A 4-sigma step must fire within 5 windows.
    bool fired = false;
    std::size_t windows = 0;
    for (; windows < 5 && !fired; ++windows)
        fired = det.observe(4.0 + 0.5 * rng.gaussian());
    EXPECT_TRUE(fired);
    EXPECT_LE(windows, 5u);
    EXPECT_GE(det.lastDetectionLatency(), 1u);
}

TEST(ChangePoint, BayesianQuietThenDetects)
{
    ChangePointOptions opt;
    opt.method = ChangePointMethod::Bayesian;
    ChangePointDetector det;
    det.configure(opt);
    stats::Rng rng(406);
    for (std::size_t i = 0; i < 300; ++i)
        ASSERT_FALSE(det.observe(0.5 * rng.gaussian()))
            << "false alarm at window " << i;
    bool fired = false;
    for (std::size_t i = 0; i < 8 && !fired; ++i)
        fired = det.observe(4.0 + 0.5 * rng.gaussian());
    EXPECT_TRUE(fired);
}

TEST(ChangePoint, WarmupCentersOutPersistentFitBias)
{
    // A constant 2.5-sigma residual is static fit bias, not a phase
    // change: warmup learns it and the CUSUM never accumulates.
    ChangePointOptions opt;
    ChangePointDetector det;
    det.configure(opt);
    for (std::size_t i = 0; i < 200; ++i)
        EXPECT_FALSE(det.observe(2.5)) << "window " << i;
    // A later step on top of the bias is still detected.
    bool fired = false;
    std::size_t windows = 0;
    for (; windows < 5 && !fired; ++windows)
        fired = det.observe(6.5);
    EXPECT_TRUE(fired);
}

TEST(ChangePoint, NonFiniteResidualsAreIgnored)
{
    ChangePointOptions opt;
    ChangePointDetector det;
    det.configure(opt);
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_FALSE(
            det.observe(std::numeric_limits<double>::quiet_NaN()));
        EXPECT_FALSE(
            det.observe(std::numeric_limits<double>::infinity()));
    }
    // Faulted telemetry is not evidence — and not windows either.
    EXPECT_EQ(det.windowsObserved(), 0u);
}

TEST(ChangePoint, SerializationRoundTripsMidStream)
{
    for (const auto method :
         {ChangePointMethod::Cusum, ChangePointMethod::Bayesian}) {
        ChangePointOptions opt;
        opt.method = method;
        ChangePointDetector a;
        a.configure(opt);
        stats::Rng rng(407);
        std::vector<double> head, tail;
        for (std::size_t i = 0; i < 30; ++i)
            head.push_back(0.5 * rng.gaussian());
        for (std::size_t i = 0; i < 30; ++i)
            tail.push_back(2.0 + 0.5 * rng.gaussian());

        for (const double r : head)
            a.observe(r);
        linalg::ByteWriter bw;
        a.save(bw);
        ChangePointDetector b;
        b.configure(opt);
        linalg::ByteReader br(bw.bytes());
        ASSERT_TRUE(b.restore(br));
        EXPECT_EQ(b.windowsObserved(), a.windowsObserved());
        // The restored detector fires in lockstep with the original.
        for (const double r : tail)
            EXPECT_EQ(a.observe(r), b.observe(r));
    }
}

// ------------------------------------------------- Sanitize regression

TEST(Sanitize, DuplicateMergeIsOrderIndependent)
{
    // Permutations of the same duplicate set must sanitize to
    // bitwise-identical merged values (the service's fit cache keys
    // on a permutation-invariant content hash).
    const std::vector<std::size_t> idx_a = {3, 5, 3, 7, 5, 3};
    const Vector vals_a{10.0, 20.0, 10.3, 5.0, 19.7, 10.6};
    const std::vector<std::size_t> idx_b = {7, 3, 5, 3, 3, 5};
    const Vector vals_b{5.0, 10.6, 19.7, 10.3, 10.0, 20.0};

    const auto sa = estimators::sanitizeObservations(idx_a, vals_a, 16);
    const auto sb = estimators::sanitizeObservations(idx_b, vals_b, 16);
    ASSERT_TRUE(sa.modified);
    ASSERT_TRUE(sb.modified);
    EXPECT_EQ(sa.merged, 3u);
    EXPECT_EQ(sb.merged, 3u);
    ASSERT_EQ(sa.indices.size(), 3u);
    ASSERT_EQ(sb.indices.size(), 3u);
    for (std::size_t i = 0; i < sa.indices.size(); ++i) {
        for (std::size_t j = 0; j < sb.indices.size(); ++j) {
            if (sa.indices[i] != sb.indices[j])
                continue;
            EXPECT_EQ(sa.values[i], sb.values[j])
                << "config " << sa.indices[i];
        }
    }
}

TEST(Sanitize, IdenticalDuplicateRowsMergeExactly)
{
    // Trace replays repeat rows verbatim; the merge must reproduce
    // the reading bit-exactly, not an average with rounding error.
    const std::vector<std::size_t> idx = {4, 4, 4};
    const double v = 0.1 + 0.2; // Not exactly representable.
    const Vector vals{v, v, v};
    const auto s = estimators::sanitizeObservations(idx, vals, 16);
    ASSERT_TRUE(s.modified);
    ASSERT_EQ(s.values.size(), 1u);
    EXPECT_EQ(s.values[0], v);
}

// --------------------------------------------- Predictive variance

TEST(LeoFit, PredictiveVarianceAtEveryConfig)
{
    World w;
    estimators::LeoEstimator leo;
    std::vector<Vector> prior;
    for (const auto &p : workloads::standardSuite()) {
        if (p.name == "x264")
            continue;
        workloads::ApplicationModel m(p, w.machine);
        prior.push_back(
            workloads::computeGroundTruth(m, w.space).performance);
    }
    workloads::ApplicationModel target(
        workloads::profileByName("x264"), w.machine);
    const auto gt = workloads::computeGroundTruth(target, w.space);
    const std::vector<std::size_t> obs = {0, w.space.size() / 2,
                                          w.space.size() - 1};
    estimators::LeoFit fit;
    const auto est = leo.estimateMetric(w.space, prior, obs,
                                        gt.performance.gather(obs),
                                        nullptr, nullptr, &fit);
    ASSERT_TRUE(est.reliable);
    for (std::size_t c = 0; c < w.space.size(); ++c) {
        const double v = fit.predictiveVarianceAt(c);
        EXPECT_TRUE(std::isfinite(v)) << "config " << c;
        EXPECT_GE(v, 0.0) << "config " << c;
    }
    EXPECT_THROW(fit.predictiveVarianceAt(w.space.size() + 99),
                 FatalError);
}

// ------------------------------------------------- Service determinism

TEST(ScenarioService, SchedulesInvariantToShardsWorkersSnapshot)
{
    World w;
    scenario::Spec spec;
    spec.name = "svc_trace";
    spec.workload = scenario::WorkloadKind::Trace;
    spec.frames = 24;
    spec.traceText = twoSegmentCsv(w.space);
    spec.arrivals = {3, 2, 0.15};
    spec.seed = 60;

    estimators::LeoEstimator leo;
    auto prior = std::make_shared<const telemetry::ProfileStore>(
        w.store);

    scenario::Scenario sc_a(spec, w.machine, w.space);
    parallel::ThreadPool pool_a(0);
    scenario::ServiceRunOptions opt_a;
    opt_a.service.shards = 1;
    const auto a =
        scenario::runScenarioService(sc_a, leo, prior, pool_a, opt_a);

    scenario::Scenario sc_b(spec, w.machine, w.space);
    parallel::ThreadPool pool_b(2);
    scenario::ServiceRunOptions opt_b;
    opt_b.service.shards = 4;
    opt_b.snapshotAtWindow = 12; // Mid-run save/restore round-trip.
    const auto b =
        scenario::runScenarioService(sc_b, leo, prior, pool_b, opt_b);

    EXPECT_FALSE(a.restored);
    EXPECT_TRUE(b.restored);
    EXPECT_EQ(a.windowsProcessed, 24u);
    EXPECT_EQ(b.windowsProcessed, 24u);
    ASSERT_EQ(a.tenants.size(), 3u);
    ASSERT_EQ(b.tenants.size(), 3u);
    ASSERT_EQ(a.schedules.size(), b.schedules.size());
    for (std::size_t t = 0; t < a.schedules.size(); ++t) {
        ASSERT_EQ(a.schedules[t].size(), b.schedules[t].size())
            << "tenant " << t;
        for (std::size_t i = 0; i < a.schedules[t].size(); ++i)
            EXPECT_EQ(a.schedules[t][i], b.schedules[t][i])
                << "tenant " << t << " window " << i;
    }
}
