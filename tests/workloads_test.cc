/**
 * @file
 * Unit tests for the synthetic workload models.
 */

#include <gtest/gtest.h>

#include "linalg/error.hh"
#include "platform/config_space.hh"
#include "workloads/ground_truth.hh"
#include "workloads/phased.hh"
#include "workloads/scaling.hh"
#include "workloads/suite.hh"

using namespace leo;
using platform::ConfigSpace;
using platform::Machine;
using workloads::ApplicationModel;
using workloads::ApplicationProfile;

// -------------------------------------------------------------- Scaling

TEST(Scaling, AmdahlLimits)
{
    workloads::AmdahlScaling s(0.9);
    EXPECT_DOUBLE_EQ(s.speedup(1.0), 1.0);
    // Amdahl asymptote 1 / (1 - p) = 10.
    EXPECT_NEAR(s.speedup(1e9), 10.0, 1e-6);
    EXPECT_LT(s.speedup(8.0), 8.0);
    EXPECT_THROW(s.speedup(0.5), FatalError);
    EXPECT_THROW(workloads::AmdahlScaling(1.5), FatalError);
}

TEST(Scaling, AmdahlMonotone)
{
    workloads::AmdahlScaling s(0.95);
    for (double k = 1.0; k < 32.0; k += 1.0)
        EXPECT_LT(s.speedup(k), s.speedup(k + 1.0));
}

TEST(Scaling, PeakedHasPeak)
{
    workloads::PeakedScaling s(0.96, 8.0, 0.93);
    const double at_peak = s.speedup(8.0);
    EXPECT_GT(at_peak, s.speedup(4.0));
    EXPECT_GT(at_peak, s.speedup(16.0));
    EXPECT_GT(at_peak, s.speedup(32.0));
    // Decay is multiplicative per extra thread.
    EXPECT_NEAR(s.speedup(9.0), at_peak * 0.93, 1e-9);
}

TEST(Scaling, SaturatingIsFlatPastKnee)
{
    workloads::SaturatingScaling s(0.94, 16.0);
    EXPECT_DOUBLE_EQ(s.speedup(16.0), s.speedup(32.0));
    EXPECT_LT(s.speedup(8.0), s.speedup(16.0));
}

TEST(Scaling, LinearAndLog)
{
    workloads::LinearScaling lin(0.9);
    EXPECT_DOUBLE_EQ(lin.speedup(1.0), 1.0);
    EXPECT_NEAR(lin.speedup(11.0), 10.0, 1e-12);

    workloads::LogScaling lg(2.0);
    EXPECT_DOUBLE_EQ(lg.speedup(1.0), 1.0);
    EXPECT_GT(lg.speedup(8.0), lg.speedup(4.0));
    // Diminishing returns per added thread.
    EXPECT_LT(lg.speedup(9.0) - lg.speedup(8.0),
              lg.speedup(2.0) - lg.speedup(1.0));
}

// ------------------------------------------------------------ App model

namespace
{

ApplicationProfile
testProfile()
{
    ApplicationProfile p = workloads::profileByName("bodytrack");
    p.textureAmplitude = 0.0; // deterministic checks
    return p;
}

} // namespace

TEST(AppModel, SpeedupAtOneThreadIsBase)
{
    Machine m;
    ApplicationProfile p = testProfile();
    ApplicationModel app(p, m);
    auto ra = m.assignment({1, 1, 2, 14}); // 1 thread, top speed
    EXPECT_NEAR(app.heartbeatRate(ra), p.baseHeartbeatRate,
                p.baseHeartbeatRate * 0.02);
}

TEST(AppModel, FrequencyHelpsComputeBoundApps)
{
    Machine m;
    ApplicationProfile p = testProfile();
    p.freqSensitivity = 0.95;
    ApplicationModel app(p, m);
    const double slow = app.heartbeatRate(m.assignment({8, 1, 2, 0}));
    const double fast = app.heartbeatRate(m.assignment({8, 1, 2, 14}));
    EXPECT_GT(fast, slow * 1.5);
}

TEST(AppModel, FrequencyBarelyHelpsMemoryBoundApps)
{
    Machine m;
    ApplicationProfile p = testProfile();
    p.freqSensitivity = 0.1;
    ApplicationModel app(p, m);
    const double slow = app.heartbeatRate(m.assignment({8, 1, 2, 0}));
    const double fast = app.heartbeatRate(m.assignment({8, 1, 2, 14}));
    EXPECT_LT(fast / slow, 1.15);
}

TEST(AppModel, MemoryControllersHelpBandwidthBoundApps)
{
    Machine m;
    ApplicationProfile p = testProfile();
    p.memIntensity = 0.2;
    ApplicationModel app(p, m);
    const double one_mc =
        app.heartbeatRate(m.assignment({16, 1, 1, 14}));
    const double two_mc =
        app.heartbeatRate(m.assignment({16, 1, 2, 14}));
    EXPECT_GT(two_mc, one_mc * 1.2);
}

TEST(AppModel, PowerIncreasesWithCoresAndSpeed)
{
    Machine m;
    ApplicationModel app(testProfile(), m);
    const double p1 = app.powerWatts(m.assignment({1, 1, 1, 0}));
    const double p8 = app.powerWatts(m.assignment({8, 1, 1, 0}));
    const double p8fast = app.powerWatts(m.assignment({8, 1, 1, 14}));
    EXPECT_GT(p8, p1);
    EXPECT_GT(p8fast, p8);
    // Wall power always exceeds the idle floor.
    EXPECT_GT(p1, app.idlePowerWatts());
}

TEST(AppModel, ChipPowerBelowWallPower)
{
    Machine m;
    ApplicationModel app(testProfile(), m);
    auto ra = m.assignment({16, 2, 2, 15});
    EXPECT_LT(app.chipPowerWatts(ra), app.powerWatts(ra));
    // And below the two-socket TDP cap.
    EXPECT_LE(app.chipPowerWatts(ra), 2.0 * m.spec().tdpPerSocketW);
}

TEST(AppModel, TextureIsDeterministic)
{
    Machine m;
    ApplicationProfile p = workloads::profileByName("kmeans");
    ApplicationModel a(p, m), b(p, m);
    auto ra = m.assignment({7, 2, 1, 9});
    EXPECT_DOUBLE_EQ(a.heartbeatRate(ra), b.heartbeatRate(ra));
    EXPECT_DOUBLE_EQ(a.powerWatts(ra), b.powerWatts(ra));
}

TEST(AppModel, RejectsBadProfiles)
{
    Machine m;
    ApplicationProfile p = testProfile();
    p.baseHeartbeatRate = 0.0;
    EXPECT_THROW(ApplicationModel(p, m), FatalError);
    p = testProfile();
    p.htEfficiency = 1.5;
    EXPECT_THROW(ApplicationModel(p, m), FatalError);
    p = testProfile();
    p.ioBoundFraction = 1.0;
    EXPECT_THROW(ApplicationModel(p, m), FatalError);
}

// ----------------------------------------------------------- The suite

TEST(Suite, HasTwentyFiveNamedBenchmarks)
{
    const auto &suite = workloads::standardSuite();
    EXPECT_EQ(suite.size(), 25u);
    // The paper's benchmark names are all present.
    for (const char *name :
         {"blackscholes", "bodytrack", "fluidanimate", "swaptions",
          "x264", "ScalParC", "apr", "semphy", "svmrfe", "kmeans",
          "HOP", "PLSA", "kmeansnf", "cfd", "nn", "lud",
          "particlefilter", "vips", "btree", "streamcluster",
          "backprop", "bfs", "jacobi", "filebound", "swish"}) {
        EXPECT_NO_THROW(workloads::profileByName(name)) << name;
    }
    EXPECT_THROW(workloads::profileByName("nosuchapp"), FatalError);
}

TEST(Suite, KmeansPeaksAtEightCores)
{
    // Section 2: kmeans "scales well to 8 cores, but its performance
    // degrades sharply with more".
    Machine m;
    ApplicationModel app(workloads::profileByName("kmeans"), m);
    auto space = ConfigSpace::coreOnly(m);
    auto gt = workloads::computeGroundTruth(app, space);
    const std::size_t peak = gt.performance.argmax();
    EXPECT_NEAR(static_cast<double>(peak + 1), 8.0, 1.0);
    // Sharp degradation: 32 cores much slower than the peak.
    EXPECT_LT(gt.performance[31], 0.6 * gt.performance[peak]);
}

TEST(Suite, SwishPeaksNearSixteen)
{
    Machine m;
    ApplicationModel app(workloads::profileByName("swish"), m);
    auto space = ConfigSpace::coreOnly(m);
    auto gt = workloads::computeGroundTruth(app, space);
    const std::size_t peak = gt.performance.argmax();
    EXPECT_NEAR(static_cast<double>(peak + 1), 16.0, 2.0);
}

TEST(Suite, X264FlatPastSixteen)
{
    Machine m;
    ApplicationModel app(workloads::profileByName("x264"), m);
    auto space = ConfigSpace::coreOnly(m);
    auto gt = workloads::computeGroundTruth(app, space);
    // Essentially constant after 16: within texture noise.
    const double at16 = gt.performance[15];
    for (std::size_t c = 16; c < 32; ++c)
        EXPECT_NEAR(gt.performance[c], at16, 0.12 * at16);
}

TEST(Suite, GroundTruthPositiveEverywhere)
{
    Machine m;
    auto space = ConfigSpace::reducedFactorial(m, 4, 4);
    for (const auto &p : workloads::standardSuite()) {
        ApplicationModel app(p, m);
        auto gt = workloads::computeGroundTruth(app, space);
        EXPECT_GT(gt.performance.min(), 0.0) << p.name;
        EXPECT_GT(gt.power.min(), m.spec().idleSystemPowerW) << p.name;
        EXPECT_TRUE(gt.performance.allFinite()) << p.name;
        EXPECT_TRUE(gt.power.allFinite()) << p.name;
    }
}

// ---------------------------------------------------------- Phased app

TEST(Phased, FluidanimateTwoPhase)
{
    auto app = workloads::PhasedApplication::fluidanimateTwoPhase(50);
    EXPECT_EQ(app.phases().size(), 2u);
    EXPECT_EQ(app.totalFrames(), 100u);
    EXPECT_EQ(app.phaseIndexAt(0), 0u);
    EXPECT_EQ(app.phaseIndexAt(49), 0u);
    EXPECT_EQ(app.phaseIndexAt(50), 1u);
    EXPECT_EQ(app.phaseIndexAt(99), 1u);
    EXPECT_THROW(app.phaseIndexAt(100), FatalError);
    // Phase 2 needs 2/3 the resources: 3/2 the heartbeat rate.
    EXPECT_NEAR(app.phases()[1].profile.baseHeartbeatRate,
                1.5 * app.phases()[0].profile.baseHeartbeatRate,
                1e-9);
}

TEST(Phased, RejectsEmpty)
{
    EXPECT_THROW(workloads::PhasedApplication({}), FatalError);
    workloads::Phase empty{workloads::profileByName("kmeans"), 0};
    EXPECT_THROW(workloads::PhasedApplication({empty}), FatalError);
}

// ------------------------------------------------------- Input variation

#include "estimators/leo.hh"
#include "stats/metrics.hh"
#include "telemetry/profile_store.hh"
#include "telemetry/sampler.hh"
#include "workloads/inputs.hh"

TEST(Inputs, ReferenceInputUnchanged)
{
    const auto base = workloads::profileByName("kmeans");
    const auto same = workloads::withInput(base, 0);
    EXPECT_DOUBLE_EQ(same.baseHeartbeatRate, base.baseHeartbeatRate);
    EXPECT_DOUBLE_EQ(same.memIntensity, base.memIntensity);
    EXPECT_EQ(same.textureSeed, base.textureSeed);
}

TEST(Inputs, DeterministicPerInput)
{
    const auto base = workloads::profileByName("kmeans");
    const auto a = workloads::withInput(base, 7);
    const auto b = workloads::withInput(base, 7);
    EXPECT_DOUBLE_EQ(a.baseHeartbeatRate, b.baseHeartbeatRate);
    EXPECT_DOUBLE_EQ(a.scaleParam, b.scaleParam);
    EXPECT_EQ(a.textureSeed, b.textureSeed);

    const auto c = workloads::withInput(base, 8);
    EXPECT_NE(a.baseHeartbeatRate, c.baseHeartbeatRate);
}

TEST(Inputs, PerturbationsBounded)
{
    const auto base = workloads::profileByName("kmeans");
    workloads::InputVariation v;
    for (std::uint64_t input = 1; input <= 50; ++input) {
        const auto p = workloads::withInput(base, input, v);
        EXPECT_GT(p.baseHeartbeatRate,
                  base.baseHeartbeatRate / (1.0 + v.rateSpread) - 1e-9);
        EXPECT_LT(p.baseHeartbeatRate,
                  base.baseHeartbeatRate * (1.0 + v.rateSpread) + 1e-9);
        EXPECT_GE(p.memIntensity, 0.0);
        EXPECT_GE(p.scaleParam, 0.0);
        EXPECT_LE(p.scaleParam, 1.0);
        EXPECT_GE(p.scalePeak, 1.0);
        // Still a valid model.
        platform::Machine m;
        EXPECT_NO_THROW(ApplicationModel(p, m));
    }
}

TEST(Inputs, LeoAdaptsAcrossInputs)
{
    // The paper's motivation: behaviour varies with input. Profile
    // the suite on reference inputs, then estimate kmeans running a
    // *different* input — LEO's online observations must carry it.
    platform::Machine machine;
    auto space = ConfigSpace::coreOnly(machine);
    stats::Rng rng(3);
    telemetry::HeartbeatMonitor mon;
    telemetry::WattsUpMeter met;
    auto store = telemetry::ProfileStore::collect(
        workloads::standardSuite(), machine, space, mon, met, rng);

    const auto varied =
        workloads::withInput(workloads::profileByName("kmeans"), 3);
    ApplicationModel app(varied, machine);
    auto gt = workloads::computeGroundTruth(app, space);

    telemetry::Profiler prof(mon, met);
    telemetry::RandomSampler pol;
    auto obs = prof.sample(app, space, pol, 10, rng);

    estimators::LeoEstimator leo;
    auto prior = store.without("kmeans");
    estimators::EstimationInputs inputs{space, prior, obs};
    auto est = leo.estimate(inputs);
    EXPECT_GT(stats::accuracy(est.performance.values,
                              gt.performance),
              0.8);
}
