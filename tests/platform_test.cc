/**
 * @file
 * Unit tests for the machine model and configuration spaces.
 */

#include <gtest/gtest.h>

#include "linalg/error.hh"
#include "platform/config_space.hh"
#include "platform/machine.hh"

using namespace leo;
using platform::Config;
using platform::ConfigSpace;
using platform::Machine;
using platform::MachineSpec;

TEST(Machine, DefaultSpecMatchesPaperTestbed)
{
    Machine m;
    const MachineSpec &s = m.spec();
    EXPECT_EQ(s.totalCores(), 16u);      // 2 x 8-core Xeon E5-2690
    EXPECT_EQ(s.threadsPerCore, 2u);     // hyperthreading
    EXPECT_EQ(s.memControllers, 2u);     // one per socket
    EXPECT_EQ(s.speedSettings(), 16u);   // 15 DVFS + TurboBoost
    EXPECT_DOUBLE_EQ(s.minFreqGHz, 1.2);
    EXPECT_DOUBLE_EQ(s.maxFreqGHz, 2.9);
    EXPECT_DOUBLE_EQ(s.tdpPerSocketW, 135.0);
}

TEST(Machine, DvfsLadderEndpoints)
{
    Machine m;
    EXPECT_DOUBLE_EQ(m.frequencyGHz(0, 1), 1.2);
    EXPECT_DOUBLE_EQ(m.frequencyGHz(14, 1), 2.9);
    // Ladder is monotone.
    for (unsigned i = 0; i + 1 < 15; ++i)
        EXPECT_LT(m.frequencyGHz(i, 1), m.frequencyGHz(i + 1, 1));
}

TEST(Machine, TurboDegradesWithActiveCores)
{
    Machine m;
    const double one = m.frequencyGHz(15, 1);
    const double all = m.frequencyGHz(15, 16);
    EXPECT_DOUBLE_EQ(one, m.spec().turboPeakGHz);
    EXPECT_DOUBLE_EQ(all, m.spec().turboAllCoreGHz);
    EXPECT_GT(one, all);
    // Turbo is always at least the top non-turbo speed.
    EXPECT_GE(all, m.spec().maxFreqGHz);
}

TEST(Machine, VoltageMonotone)
{
    Machine m;
    for (unsigned i = 0; i + 1 < m.spec().speedSettings(); ++i)
        EXPECT_LE(m.voltage(i), m.voltage(i + 1));
    EXPECT_THROW(m.voltage(16), FatalError);
}

TEST(Machine, AssignmentSocketFilling)
{
    Machine m;
    auto a8 = m.assignment({8, 1, 2, 0});
    EXPECT_EQ(a8.activeSockets, 1u);
    auto a9 = m.assignment({9, 1, 2, 0});
    EXPECT_EQ(a9.activeSockets, 2u);
    auto a16 = m.assignment({16, 2, 2, 15});
    EXPECT_EQ(a16.threads, 32u);
    EXPECT_TRUE(a16.turbo);
}

TEST(Machine, AssignmentHyperthreading)
{
    Machine m;
    auto ht = m.assignment({4, 2, 1, 3});
    EXPECT_EQ(ht.threads, 8u);
    EXPECT_EQ(ht.activeCores, 4u);
    EXPECT_DOUBLE_EQ(ht.htShare, 0.5);
    auto no_ht = m.assignment({4, 1, 1, 3});
    EXPECT_DOUBLE_EQ(no_ht.htShare, 0.0);
}

TEST(Machine, CoreOnlyAssignment)
{
    Machine m;
    auto a1 = m.coreOnlyAssignment(1);
    EXPECT_EQ(a1.threads, 1u);
    EXPECT_EQ(a1.activeCores, 1u);
    EXPECT_DOUBLE_EQ(a1.freqGHz, m.spec().maxFreqGHz);

    auto a20 = m.coreOnlyAssignment(20);
    EXPECT_EQ(a20.threads, 20u);
    EXPECT_EQ(a20.activeCores, 16u);
    EXPECT_GT(a20.htShare, 0.0);

    auto a32 = m.coreOnlyAssignment(32);
    EXPECT_EQ(a32.activeCores, 16u);
    EXPECT_NEAR(a32.htShare, 0.5, 1e-12);

    EXPECT_THROW(m.coreOnlyAssignment(0), FatalError);
    EXPECT_THROW(m.coreOnlyAssignment(33), FatalError);
}

TEST(Machine, ValidRejectsBadKnobs)
{
    Machine m;
    EXPECT_TRUE(m.valid({1, 1, 1, 0}));
    EXPECT_FALSE(m.valid({0, 1, 1, 0}));
    EXPECT_FALSE(m.valid({17, 1, 1, 0}));
    EXPECT_FALSE(m.valid({1, 3, 1, 0}));
    EXPECT_FALSE(m.valid({1, 1, 3, 0}));
    EXPECT_FALSE(m.valid({1, 1, 1, 16}));
    EXPECT_THROW(m.apply({17, 1, 1, 0}), FatalError);
}

TEST(ConfigSpace, FullFactorialSize)
{
    Machine m;
    auto space = ConfigSpace::fullFactorial(m);
    // 16 cores x 2 HT x 2 MCs x 16 speeds = 1024 (Section 6.1).
    EXPECT_EQ(space.size(), 1024u);
    EXPECT_EQ(space.numKnobs(), 4u);
}

TEST(ConfigSpace, FlatteningOrderMatchesPaper)
{
    // "The number of memory controllers is the fastest changing
    // component of configuration, followed by clockspeed, followed by
    // number of cores" (Section 6.3).
    Machine m;
    auto space = ConfigSpace::fullFactorial(m);

    auto c0 = *space.config(0);
    auto c1 = *space.config(1);
    EXPECT_EQ(c1.memControllers, c0.memControllers + 1);
    EXPECT_EQ(c1.speedIdx, c0.speedIdx);
    EXPECT_EQ(c1.cores, c0.cores);

    auto c2 = *space.config(2);
    EXPECT_EQ(c2.speedIdx, c0.speedIdx + 1);
    EXPECT_EQ(c2.memControllers, c0.memControllers);

    auto c32 = *space.config(32);
    EXPECT_EQ(c32.cores, c0.cores + 1);

    // Hyperthreading changes slowest: second half of the space.
    auto chalf = *space.config(512);
    EXPECT_EQ(chalf.threadsPerCore, 2u);
}

TEST(ConfigSpace, RoundTripIndexing)
{
    Machine m;
    auto space = ConfigSpace::fullFactorial(m);
    for (std::size_t c = 0; c < space.size(); c += 97) {
        auto cfg = space.config(c);
        ASSERT_TRUE(cfg.has_value());
        auto idx = space.indexOf(*cfg);
        ASSERT_TRUE(idx.has_value());
        EXPECT_EQ(*idx, c);
    }
}

TEST(ConfigSpace, LastConfigIsAllResources)
{
    // planRaceToIdle relies on the final index being the
    // all-resources configuration.
    Machine m;
    auto space = ConfigSpace::fullFactorial(m);
    auto last = *space.config(space.size() - 1);
    EXPECT_EQ(last.cores, 16u);
    EXPECT_EQ(last.threadsPerCore, 2u);
    EXPECT_EQ(last.memControllers, 2u);
    EXPECT_EQ(last.speedIdx, 15u);
}

TEST(ConfigSpace, CoreOnlySpace)
{
    Machine m;
    auto space = ConfigSpace::coreOnly(m);
    EXPECT_EQ(space.size(), 32u); // Section 2: 32 core allocations
    EXPECT_EQ(space.numKnobs(), 1u);
    EXPECT_FALSE(space.config(0).has_value());
    EXPECT_EQ(space.assignment(0).threads, 1u);
    EXPECT_EQ(space.assignment(31).threads, 32u);
    EXPECT_DOUBLE_EQ(space.knobs(4)[0], 5.0);
}

TEST(ConfigSpace, ReducedFactorial)
{
    Machine m;
    auto space = ConfigSpace::reducedFactorial(m, 2, 2);
    // 8 cores x 2 HT x 2 MC x 8 speeds = 256.
    EXPECT_EQ(space.size(), 256u);
    EXPECT_THROW(ConfigSpace::reducedFactorial(m, 0, 1), FatalError);
}

TEST(ConfigSpace, AssignmentsConsistentWithKnobs)
{
    Machine m;
    auto space = ConfigSpace::fullFactorial(m);
    for (std::size_t c = 0; c < space.size(); c += 131) {
        const auto &ra = space.assignment(c);
        const auto &k = space.knobs(c);
        EXPECT_DOUBLE_EQ(k[0], ra.activeCores);
        EXPECT_DOUBLE_EQ(k[2], ra.memControllers);
        EXPECT_EQ(ra.threads,
                  static_cast<unsigned>(k[0]) *
                      static_cast<unsigned>(k[1]));
    }
}

TEST(ConfigSpace, OutOfRangeThrows)
{
    Machine m;
    auto space = ConfigSpace::coreOnly(m);
    EXPECT_THROW(space.assignment(32), FatalError);
    EXPECT_THROW(space.knobs(99), FatalError);
    EXPECT_THROW(space.describe(32), FatalError);
}
