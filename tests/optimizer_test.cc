/**
 * @file
 * Unit tests for the Pareto/hull/scheduling optimizer.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/error.hh"
#include "linalg/simplex.hh"
#include "optimizer/global.hh"
#include "optimizer/pareto.hh"
#include "optimizer/schedule.hh"
#include "stats/rng.hh"

using namespace leo;
using linalg::Vector;
using optimizer::kIdleConfig;
using optimizer::PerformanceConstraint;
using optimizer::TradeoffPoint;

// --------------------------------------------------------------- Pareto

TEST(Pareto, DominatedPointsRemoved)
{
    // Config 1 dominates config 0 (faster AND cheaper); config 2 is
    // fastest but expensive.
    Vector perf{1.0, 2.0, 3.0};
    Vector power{100.0, 90.0, 200.0};
    auto front = optimizer::paretoFrontier(perf, power);
    ASSERT_EQ(front.size(), 2u);
    EXPECT_EQ(front[0].configIndex, 1u);
    EXPECT_EQ(front[1].configIndex, 2u);
}

TEST(Pareto, FrontierSortedAndMonotone)
{
    stats::Rng rng(5);
    Vector perf(50), power(50);
    for (int i = 0; i < 50; ++i) {
        perf[i] = rng.uniform(1.0, 20.0);
        power[i] = rng.uniform(80.0, 300.0);
    }
    auto front = optimizer::paretoFrontier(perf, power);
    ASSERT_GE(front.size(), 1u);
    for (std::size_t i = 0; i + 1 < front.size(); ++i) {
        EXPECT_LT(front[i].performance, front[i + 1].performance);
        EXPECT_LT(front[i].power, front[i + 1].power);
    }
}

TEST(Pareto, FrontierPointsNotDominated)
{
    stats::Rng rng(6);
    Vector perf(100), power(100);
    for (int i = 0; i < 100; ++i) {
        perf[i] = rng.uniform(1.0, 20.0);
        power[i] = rng.uniform(80.0, 300.0);
    }
    auto front = optimizer::paretoFrontier(perf, power);
    for (const auto &f : front) {
        for (std::size_t c = 0; c < 100; ++c) {
            const bool dominates =
                perf[c] >= f.performance && power[c] < f.power;
            EXPECT_FALSE(dominates)
                << "config " << c << " dominates frontier point";
        }
    }
}

// ----------------------------------------------------------------- Hull

TEST(Hull, ConvexAndRootedAtIdle)
{
    std::vector<TradeoffPoint> pts{
        {0, 1.0, 100.0}, {1, 2.0, 120.0}, {2, 3.0, 200.0},
        {3, 2.5, 190.0},                          // above the hull
    };
    auto hull = optimizer::lowerConvexHull(pts, 80.0);
    ASSERT_GE(hull.size(), 2u);
    EXPECT_EQ(hull.front().configIndex, kIdleConfig);
    EXPECT_DOUBLE_EQ(hull.front().performance, 0.0);
    EXPECT_EQ(hull.back().configIndex, 2u);

    // Slopes (Joules per heartbeat) are non-decreasing: convexity.
    for (std::size_t i = 0; i + 2 < hull.size(); ++i) {
        const double s1 =
            (hull[i + 1].power - hull[i].power) /
            (hull[i + 1].performance - hull[i].performance);
        const double s2 =
            (hull[i + 2].power - hull[i + 1].power) /
            (hull[i + 2].performance - hull[i + 1].performance);
        EXPECT_LE(s1, s2 + 1e-9);
    }
}

TEST(Hull, HullIsBelowAllPoints)
{
    stats::Rng rng(7);
    std::vector<TradeoffPoint> pts;
    for (std::size_t c = 0; c < 60; ++c)
        pts.push_back({c, rng.uniform(0.5, 10.0),
                       rng.uniform(90.0, 250.0)});
    auto hull = optimizer::lowerConvexHull(pts, 85.0);

    auto hull_power_at = [&](double perf) {
        for (std::size_t i = 0; i + 1 < hull.size(); ++i) {
            if (perf >= hull[i].performance &&
                perf <= hull[i + 1].performance) {
                const double t = (perf - hull[i].performance) /
                                 (hull[i + 1].performance -
                                  hull[i].performance);
                return hull[i].power +
                       t * (hull[i + 1].power - hull[i].power);
            }
        }
        return hull.back().power;
    };
    for (const auto &p : pts) {
        if (p.performance <= hull.back().performance) {
            EXPECT_LE(hull_power_at(p.performance), p.power + 1e-9);
        }
    }
}

TEST(Hull, EqualPerformanceKeepsCheapest)
{
    std::vector<TradeoffPoint> pts{
        {0, 2.0, 150.0}, {1, 2.0, 120.0}, {2, 4.0, 260.0}};
    auto hull = optimizer::lowerConvexHull(pts, 100.0);
    for (const auto &v : hull) {
        if (v.performance == 2.0) {
            EXPECT_EQ(v.configIndex, 1u);
        }
    }
}

// ------------------------------------------------------------- Schedule

TEST(Schedule, MeetsConstraintExactly)
{
    Vector perf{1.0, 2.0, 4.0};
    Vector power{100.0, 130.0, 220.0};
    PerformanceConstraint c{3.0 * 10.0, 10.0}; // rate 3 for 10 s
    auto plan =
        optimizer::planMinimalEnergy(perf, power, 85.0, c);
    EXPECT_TRUE(plan.feasible);
    double work = 0.0, time = 0.0;
    for (const auto &part : plan.parts) {
        time += part.seconds;
        if (part.configIndex != kIdleConfig)
            work += perf[part.configIndex] * part.seconds;
    }
    EXPECT_NEAR(work, c.work, 1e-9);
    EXPECT_LE(time, c.deadlineSeconds + 1e-9);
}

TEST(Schedule, InfeasibleDemandRunsFlatOut)
{
    Vector perf{1.0, 2.0};
    Vector power{100.0, 150.0};
    PerformanceConstraint c{100.0, 10.0}; // rate 10 >> max 2
    auto plan = optimizer::planMinimalEnergy(perf, power, 85.0, c);
    EXPECT_FALSE(plan.feasible);
    ASSERT_EQ(plan.parts.size(), 1u);
    EXPECT_EQ(plan.parts[0].configIndex, 1u);
    EXPECT_DOUBLE_EQ(plan.parts[0].seconds, 10.0);
}

TEST(Schedule, LowUtilizationMixesWithIdle)
{
    Vector perf{2.0, 4.0};
    Vector power{120.0, 200.0};
    // Demand far below the slowest config: mix with idle.
    PerformanceConstraint c{0.5 * 10.0, 10.0};
    auto plan = optimizer::planMinimalEnergy(perf, power, 85.0, c);
    EXPECT_TRUE(plan.feasible);
    bool has_idle = false;
    for (const auto &p : plan.parts)
        has_idle |= p.configIndex == kIdleConfig;
    EXPECT_TRUE(has_idle);
}

TEST(Schedule, HullWalkMatchesSimplex)
{
    // Property: the hull-walk solution of Equation (1) equals the
    // exact LP optimum, with idle as an explicit zero-rate config.
    stats::Rng rng(13);
    for (int trial = 0; trial < 20; ++trial) {
        const std::size_t n = 12;
        Vector perf(n), power(n);
        for (std::size_t i = 0; i < n; ++i) {
            perf[i] = rng.uniform(0.5, 8.0);
            power[i] = 85.0 + perf[i] * rng.uniform(8.0, 30.0);
        }
        const double idle = 85.0;
        const double t_total = 10.0;
        const double rate = rng.uniform(0.2, 7.5);
        PerformanceConstraint c{rate * t_total, t_total};

        auto plan = optimizer::planMinimalEnergy(perf, power, idle, c);
        if (!plan.feasible)
            continue;

        // LP over n configs + idle, with sum t = T exactly (slack is
        // idle) and idle power in the objective.
        linalg::LinearProgram lp(n + 1);
        Vector obj(n + 1), rates(n + 1), ones(n + 1, 1.0);
        for (std::size_t i = 0; i < n; ++i) {
            obj[i] = power[i];
            rates[i] = perf[i];
        }
        obj[n] = idle;
        rates[n] = 0.0;
        lp.setObjective(obj);
        lp.addEquality(rates, c.work);
        lp.addEquality(ones, t_total);
        auto sol = lp.solve();
        ASSERT_EQ(sol.status, linalg::LpStatus::Optimal);

        // Hull plan energy including idle slack.
        double plan_energy = plan.predictedEnergy;
        double planned_time = 0.0;
        for (const auto &p : plan.parts)
            planned_time += p.seconds;
        plan_energy += (t_total - planned_time) * idle;

        EXPECT_NEAR(plan_energy, sol.objective,
                    1e-6 * sol.objective)
            << "trial " << trial;
    }
}

// ------------------------------------------------------------ Execution

TEST(Execute, PerfectEstimatesMeetDeadline)
{
    Vector perf{1.0, 2.0, 4.0};
    Vector power{100.0, 130.0, 220.0};
    PerformanceConstraint c{30.0, 10.0};
    auto plan = optimizer::planMinimalEnergy(perf, power, 85.0, c);
    auto result =
        optimizer::executeSchedule(plan, perf, power, 85.0, c);
    EXPECT_TRUE(result.deadlineMet);
    EXPECT_NEAR(result.completionSeconds, 10.0, 1e-6);
    // Energy equals prediction plus idle slack (none here).
    EXPECT_NEAR(result.energyJoules, plan.predictedEnergy, 1e-6);
}

TEST(Execute, OverestimatedPerformanceMissesDeadline)
{
    Vector est_perf{4.0};
    Vector true_perf{2.0}; // half as fast as believed
    Vector power{200.0};
    PerformanceConstraint c{40.0, 10.0};
    auto plan =
        optimizer::planMinimalEnergy(est_perf, power, 85.0, c);
    auto result = optimizer::executeSchedule(plan, true_perf, power,
                                             85.0, c);
    EXPECT_FALSE(result.deadlineMet);
    EXPECT_GT(result.completionSeconds, 10.0);
    // Overtime energy accrues past the deadline.
    EXPECT_GT(result.energyJoules, plan.predictedEnergy);
}

TEST(Execute, UnderestimatedPerformanceWastesEnergyButMeets)
{
    Vector est_perf{1.0, 2.0};
    Vector true_perf{2.0, 4.0}; // twice as fast as believed
    Vector power{120.0, 200.0};
    PerformanceConstraint c{15.0, 10.0};
    auto plan =
        optimizer::planMinimalEnergy(est_perf, power, 85.0, c);
    auto result = optimizer::executeSchedule(plan, true_perf, power,
                                             85.0, c);
    EXPECT_TRUE(result.deadlineMet);
    EXPECT_LT(result.completionSeconds, 10.0);
}

TEST(Execute, RaceToIdlePlansAllResources)
{
    Vector perf{1.0, 3.0};
    Vector power{100.0, 250.0};
    PerformanceConstraint c{6.0, 10.0};
    auto plan = optimizer::planRaceToIdle(perf, power, 85.0, c);
    ASSERT_EQ(plan.parts.size(), 2u);
    EXPECT_EQ(plan.parts[0].configIndex, 1u);
    EXPECT_NEAR(plan.parts[0].seconds, 2.0, 1e-9);
    EXPECT_EQ(plan.parts[1].configIndex, kIdleConfig);

    auto result =
        optimizer::executeSchedule(plan, perf, power, 85.0, c);
    EXPECT_TRUE(result.deadlineMet);
    // 2 s at 250 W + 8 s at 85 W.
    EXPECT_NEAR(result.energyJoules, 2 * 250.0 + 8 * 85.0, 1e-6);
}

TEST(Execute, RaceToIdleWastesEnergyVsOptimal)
{
    // The Section 2 story: with a convex tradeoff, racing costs more
    // than pacing.
    Vector perf{1.0, 2.0, 3.0};
    Vector power{100.0, 125.0, 250.0};
    PerformanceConstraint c{10.0, 10.0}; // rate 1: lowest config fits
    const double idle = 85.0;
    auto optimal = optimizer::executeSchedule(
        optimizer::planMinimalEnergy(perf, power, idle, c), perf,
        power, idle, c);
    auto race = optimizer::executeSchedule(
        optimizer::planRaceToIdle(perf, power, idle, c), perf, power,
        idle, c);
    EXPECT_TRUE(optimal.deadlineMet);
    EXPECT_TRUE(race.deadlineMet);
    EXPECT_GT(race.energyJoules, optimal.energyJoules);
}

TEST(Execute, PureIdlePlanFallsBackToFastest)
{
    // A degenerate plan with no productive part must still finish.
    Vector perf{2.0, 5.0};
    Vector power{120.0, 210.0};
    optimizer::Schedule plan;
    plan.parts.push_back({kIdleConfig, 1.0});
    PerformanceConstraint c{10.0, 10.0};
    auto result =
        optimizer::executeSchedule(plan, perf, power, 85.0, c);
    EXPECT_GT(result.energyJoules, 0.0);
    EXPECT_NEAR(result.completionSeconds, 1.0 + 10.0 / 5.0, 1e-9);
}

// ---------------------------------------------------- Guarded executor

TEST(GuardedExecute, BadPlanMeetsDeadlineAndCostsMore)
{
    // Truth: three configs; the plan (from a delusional estimate)
    // schedules only the slowest. The guard must escalate, meet the
    // deadline, and cost at least the optimum.
    Vector perf{1.0, 2.0, 4.0};
    Vector power{100.0, 130.0, 220.0};
    PerformanceConstraint c{30.0, 10.0}; // rate 3

    optimizer::Schedule bad;
    bad.parts.push_back({0, 10.0}); // believes config 0 suffices

    auto guarded = optimizer::executeScheduleGuarded(
        bad, perf, power, 85.0, c);
    EXPECT_TRUE(guarded.deadlineMet);

    auto best = optimizer::planMinimalEnergy(perf, power, 85.0, c);
    auto best_run = optimizer::executeScheduleGuarded(
        best, perf, power, 85.0, c);
    EXPECT_GE(guarded.energyJoules, best_run.energyJoules - 1e-6);

    // The open-loop executor would have been late instead.
    auto open = optimizer::executeSchedule(bad, perf, power, 85.0, c);
    EXPECT_FALSE(open.deadlineMet);
}

TEST(GuardedExecute, AccuratePlanUntouched)
{
    Vector perf{1.0, 2.0, 4.0};
    Vector power{100.0, 130.0, 220.0};
    PerformanceConstraint c{30.0, 10.0};
    auto plan = optimizer::planMinimalEnergy(perf, power, 85.0, c);
    auto guarded = optimizer::executeScheduleGuarded(
        plan, perf, power, 85.0, c, 1000);
    auto open = optimizer::executeSchedule(plan, perf, power, 85.0, c);
    EXPECT_TRUE(guarded.deadlineMet);
    EXPECT_NEAR(guarded.energyJoules, open.energyJoules,
                0.01 * open.energyJoules);
}

TEST(GuardedExecute, NoEstimateEverBeatsOptimal)
{
    // Property: for random truths and arbitrary (wrong) plans, the
    // guarded energy is never below the guarded optimal energy.
    stats::Rng rng(29);
    for (int trial = 0; trial < 15; ++trial) {
        const std::size_t n = 10;
        Vector perf(n), power(n);
        for (std::size_t i = 0; i < n; ++i) {
            perf[i] = rng.uniform(0.5, 8.0);
            power[i] = 85.0 + perf[i] * rng.uniform(8.0, 30.0);
        }
        PerformanceConstraint c{rng.uniform(0.2, 7.0) * 10.0, 10.0};
        if (c.work / c.deadlineSeconds > perf.max())
            continue;

        // A deliberately wrong plan: random config for the window.
        optimizer::Schedule plan;
        plan.parts.push_back(
            {static_cast<std::size_t>(rng.uniformInt(0, 9)), 10.0});
        auto run = optimizer::executeScheduleGuarded(plan, perf,
                                                     power, 85.0, c);
        EXPECT_TRUE(run.deadlineMet);

        auto best = optimizer::planMinimalEnergy(perf, power, 85.0, c);
        auto best_run = optimizer::executeScheduleGuarded(
            best, perf, power, 85.0, c);
        EXPECT_GE(run.energyJoules,
                  best_run.energyJoules * (1.0 - 1e-9))
            << "trial " << trial;
    }
}

TEST(GuardedExecute, InfeasibleDemandFinishesLate)
{
    Vector perf{1.0, 2.0};
    Vector power{100.0, 150.0};
    PerformanceConstraint c{100.0, 10.0}; // rate 10 >> max 2
    optimizer::Schedule plan;
    plan.parts.push_back({1, 10.0});
    auto run =
        optimizer::executeScheduleGuarded(plan, perf, power, 85.0, c);
    EXPECT_FALSE(run.deadlineMet);
    EXPECT_NEAR(run.completionSeconds, 50.0, 1e-6);
}

// ---------------------------------------------------- Degenerate inputs

TEST(Degenerate, SinglePointSpace)
{
    Vector perf{2.0};
    Vector power{120.0};

    auto front = optimizer::paretoFrontier(perf, power);
    ASSERT_EQ(front.size(), 1u);
    EXPECT_EQ(front[0].configIndex, 0u);

    auto hull = optimizer::lowerConvexHull(front, 85.0);
    ASSERT_EQ(hull.size(), 2u);
    EXPECT_EQ(hull.front().configIndex, kIdleConfig);
    EXPECT_EQ(hull.back().configIndex, 0u);

    PerformanceConstraint c{10.0, 10.0}; // rate 1 <= 2: feasible
    auto plan = optimizer::planMinimalEnergy(perf, power, 85.0, c);
    EXPECT_TRUE(plan.feasible);
    double busy = 0.0;
    for (const auto &part : plan.parts)
        if (part.configIndex != kIdleConfig)
            busy += part.seconds;
    EXPECT_NEAR(busy * perf[0], c.work, 1e-9);
}

TEST(Degenerate, AllEqualPerformances)
{
    // Every configuration delivers the same rate; the only rational
    // pick is the cheapest, and the planner must not divide by the
    // zero performance gap between hull candidates.
    Vector perf{3.0, 3.0, 3.0, 3.0};
    Vector power{150.0, 110.0, 170.0, 130.0};

    auto front = optimizer::paretoFrontier(perf, power);
    ASSERT_EQ(front.size(), 1u);
    EXPECT_EQ(front[0].configIndex, 1u);

    PerformanceConstraint c{15.0, 10.0}; // rate 1.5 <= 3
    auto plan = optimizer::planMinimalEnergy(perf, power, 85.0, c);
    EXPECT_TRUE(plan.feasible);
    for (const auto &part : plan.parts) {
        if (part.configIndex != kIdleConfig) {
            EXPECT_EQ(part.configIndex, 1u);
        }
    }
}

TEST(Degenerate, ZeroWorkIsFreeAndFeasible)
{
    Vector perf{1.0, 2.0};
    Vector power{100.0, 150.0};
    PerformanceConstraint c{0.0, 10.0};

    auto plan = optimizer::planMinimalEnergy(perf, power, 85.0, c);
    EXPECT_TRUE(plan.feasible);
    EXPECT_NEAR(plan.predictedEnergy, 85.0 * 10.0, 1e-9);

    auto race = optimizer::planRaceToIdle(perf, power, 85.0, c);
    EXPECT_TRUE(race.feasible);
    auto run = optimizer::executeSchedule(race, perf, power, 85.0, c);
    EXPECT_TRUE(run.deadlineMet);
}

TEST(Degenerate, IdleCheaperThanEveryConfig)
{
    // Idle power above every configuration's power: the hull is still
    // rooted at the idle pseudo-config and plans stay feasible (the
    // optimizer may simply never idle).
    Vector perf{1.0, 2.0};
    Vector power{100.0, 150.0};
    const double idle = 500.0;

    auto hull = optimizer::lowerConvexHull(
        optimizer::paretoFrontier(perf, power), idle);
    ASSERT_GE(hull.size(), 2u);
    EXPECT_EQ(hull.front().configIndex, kIdleConfig);

    PerformanceConstraint c{5.0, 10.0}; // rate 0.5
    auto plan = optimizer::planMinimalEnergy(perf, power, idle, c);
    EXPECT_TRUE(plan.feasible);
    EXPECT_TRUE(std::isfinite(plan.predictedEnergy));
    auto run = optimizer::executeSchedule(plan, perf, power, idle, c);
    EXPECT_TRUE(run.deadlineMet);
}

TEST(Degenerate, RaceToIdleExactDeadlineIsFeasible)
{
    // busy == deadline exactly: work 20 at rate 2 over a 10 s window.
    // The old `busy >= deadline` branch marked this infeasible; the
    // plan must be feasible with no idle tail, matching
    // planMinimalEnergy's epsilon.
    Vector perf{1.0, 2.0};
    Vector power{100.0, 150.0};
    PerformanceConstraint c{20.0, 10.0};

    auto race = optimizer::planRaceToIdle(perf, power, 85.0, c);
    EXPECT_TRUE(race.feasible);
    ASSERT_EQ(race.parts.size(), 1u);
    EXPECT_EQ(race.parts[0].configIndex, 1u);
    EXPECT_NEAR(race.parts[0].seconds, 10.0, 1e-12);

    auto exact = optimizer::planMinimalEnergy(perf, power, 85.0, c);
    EXPECT_EQ(race.feasible, exact.feasible);

    // Just past the deadline stays infeasible.
    PerformanceConstraint over{20.0 + 1e-6, 10.0};
    EXPECT_FALSE(
        optimizer::planRaceToIdle(perf, power, 85.0, over).feasible);

    // Zero rate with zero work: trivially feasible; with work: not.
    Vector zperf{0.0};
    Vector zpower{100.0};
    PerformanceConstraint none{0.0, 10.0};
    EXPECT_TRUE(
        optimizer::planRaceToIdle(zperf, zpower, 85.0, none).feasible);
    PerformanceConstraint some{1.0, 10.0};
    EXPECT_FALSE(
        optimizer::planRaceToIdle(zperf, zpower, 85.0, some).feasible);
}

// --------------------------------------- Guarded-executor boundaries

TEST(GuardedBoundary, PlanPieceEndingAtDeadlineStaysFinite)
{
    // A plan whose last piece ends within the boundary-snap epsilon
    // of the deadline: the snap used to carry `now` onto (or past)
    // the deadline, divide the remaining work by a non-positive time
    // and walk time backwards with negative energy. The run must stay
    // finite, monotone and correctly classified.
    Vector perf{1.0, 2.0};
    Vector power{100.0, 150.0};
    PerformanceConstraint c{30.0, 10.0}; // needs rate 3 > max 2
    optimizer::Schedule plan;
    plan.parts.push_back({1, 10.0 - 5e-10}); // ends 5e-10 before T
    auto run =
        optimizer::executeScheduleGuarded(plan, perf, power, 85.0, c);
    EXPECT_TRUE(std::isfinite(run.energyJoules));
    EXPECT_TRUE(std::isfinite(run.completionSeconds));
    EXPECT_GT(run.energyJoules, 0.0);
    EXPECT_FALSE(run.deadlineMet); // physically impossible demand
    EXPECT_NEAR(run.completionSeconds, 15.0, 1e-5); // 30 work @ 2/s
}

TEST(GuardedBoundary, ManyTinyPiecesNearDeadlineStayMonotone)
{
    // Several sub-epsilon pieces crowded against the deadline stress
    // the snap repeatedly.
    Vector perf{1.0, 2.0};
    Vector power{100.0, 150.0};
    PerformanceConstraint c{25.0, 10.0};
    optimizer::Schedule plan;
    plan.parts.push_back({1, 10.0 - 3e-9});
    plan.parts.push_back({0, 1e-9});
    plan.parts.push_back({1, 1e-9});
    plan.parts.push_back({0, 1e-9});
    auto run =
        optimizer::executeScheduleGuarded(plan, perf, power, 85.0, c);
    EXPECT_TRUE(std::isfinite(run.energyJoules));
    EXPECT_GE(run.completionSeconds, 10.0 - 1e-6);
    EXPECT_FALSE(run.deadlineMet);
}

TEST(GuardedBoundary, ZeroRateFrontierWithWorkFailsLoudly)
{
    // No configuration makes progress but work remains: the old code
    // divided by the frontier's zero rate and returned an infinite
    // completion time. The contract (matching executeSchedule) is a
    // loud FatalError.
    Vector perf{0.0, 0.0};
    Vector power{100.0, 150.0};
    PerformanceConstraint c{1.0, 10.0};
    optimizer::Schedule plan;
    plan.parts.push_back({1, 10.0});
    EXPECT_THROW(optimizer::executeScheduleGuarded(plan, perf, power,
                                                   85.0, c),
                 FatalError);
}

TEST(GuardedBoundary, ZeroRateFrontierWithZeroWorkIdlesOut)
{
    // Zero work needs no progress: the guarded run just idles to the
    // deadline, whatever the (useless) plan says.
    Vector perf{0.0, 0.0};
    Vector power{100.0, 150.0};
    PerformanceConstraint c{0.0, 10.0};
    optimizer::Schedule plan;
    plan.parts.push_back({kIdleConfig, 10.0});
    auto run =
        optimizer::executeScheduleGuarded(plan, perf, power, 85.0, c);
    EXPECT_TRUE(run.deadlineMet);
    EXPECT_NEAR(run.energyJoules, 85.0 * 10.0, 1e-9);
}

// ------------------------------------ Planner feasibility consistency

// Satellite check: planMinimalEnergy, planRaceToIdle and the global
// planner must agree on feasibility across degenerate constraints.
// The grid stays outside the planners' epsilon disagreement band
// (relative over-capacity between ~1e-12 and the LP's ~1e-7
// feasibility tolerance), where the hull walk and the simplex are
// allowed to disagree on exactly-critical demands.
TEST(FeasibilityConsistency, DegenerateConstraintGrid)
{
    const Vector perf{1.0, 2.0, 4.0};
    const Vector power{100.0, 130.0, 220.0};
    const double idle = 85.0;
    const double deadline = 10.0;
    const double capacity = 4.0 * deadline; // fastest rate * T

    const double works[] = {0.0,
                            0.5 * capacity,
                            capacity,
                            capacity * (1.0 + 1e-13),
                            capacity * (1.0 + 1e-6),
                            capacity * 1.5};
    for (const double work : works) {
        PerformanceConstraint c{work, deadline};
        const auto minimal =
            optimizer::planMinimalEnergy(perf, power, idle, c);
        const auto race =
            optimizer::planRaceToIdle(perf, power, idle, c);
        optimizer::TenantDemand demand{perf, power, c};
        const auto fast =
            optimizer::planGlobalSchedule({demand}, idle, {});
        optimizer::GlobalPlanOptions force;
        force.forceLp = true;
        const auto lp =
            optimizer::planGlobalSchedule({demand}, idle, force);

        EXPECT_EQ(minimal.feasible, race.feasible) << "work " << work;
        EXPECT_EQ(minimal.feasible, fast.feasible) << "work " << work;
        EXPECT_EQ(minimal.feasible, lp.feasible) << "work " << work;
    }

    // Zero-rate configuration space: feasible iff there is no work,
    // in all three planners.
    const Vector zperf{0.0, 0.0};
    const Vector zpower{90.0, 95.0};
    for (const double work : {0.0, 1.0}) {
        PerformanceConstraint c{work, deadline};
        const bool want = work == 0.0;
        EXPECT_EQ(optimizer::planMinimalEnergy(zperf, zpower, idle, c)
                      .feasible,
                  want);
        EXPECT_EQ(
            optimizer::planRaceToIdle(zperf, zpower, idle, c).feasible,
            want);
        optimizer::TenantDemand demand{zperf, zpower, c};
        EXPECT_EQ(
            optimizer::planGlobalSchedule({demand}, idle, {}).feasible,
            want);
        optimizer::GlobalPlanOptions force;
        force.forceLp = true;
        EXPECT_EQ(optimizer::planGlobalSchedule({demand}, idle, force)
                      .feasible,
                  want);
    }
}
