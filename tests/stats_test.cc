/**
 * @file
 * Unit tests for the statistics substrate.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "linalg/error.hh"
#include "stats/metrics.hh"
#include "stats/mvn.hh"
#include "stats/rng.hh"
#include "stats/summary.hh"

using namespace leo;
using linalg::Matrix;
using linalg::Vector;

// ------------------------------------------------------------------ Rng

TEST(Rng, Deterministic)
{
    stats::Rng a(123), b(123);
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}

TEST(Rng, DifferentSeedsDiffer)
{
    stats::Rng a(1), b(2);
    bool any_diff = false;
    for (int i = 0; i < 10; ++i)
        any_diff |= a.uniform() != b.uniform();
    EXPECT_TRUE(any_diff);
}

TEST(Rng, UniformRange)
{
    stats::Rng rng(5);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(2.0, 3.0);
        EXPECT_GE(u, 2.0);
        EXPECT_LT(u, 3.0);
    }
}

TEST(Rng, UniformIntInclusive)
{
    stats::Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniformInt(0, 3);
        EXPECT_GE(v, 0);
        EXPECT_LE(v, 3);
        saw_lo |= v == 0;
        saw_hi |= v == 3;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
    EXPECT_THROW(rng.uniformInt(2, 1), FatalError);
}

TEST(Rng, GaussianMoments)
{
    stats::Rng rng(9);
    stats::RunningStats acc;
    for (int i = 0; i < 20000; ++i)
        acc.push(rng.gaussian(5.0, 2.0));
    EXPECT_NEAR(acc.mean(), 5.0, 0.1);
    EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(Rng, SampleWithoutReplacement)
{
    stats::Rng rng(11);
    auto idx = rng.sampleWithoutReplacement(100, 20);
    EXPECT_EQ(idx.size(), 20u);
    std::vector<bool> seen(100, false);
    for (auto i : idx) {
        EXPECT_LT(i, 100u);
        EXPECT_FALSE(seen[i]) << "duplicate index " << i;
        seen[i] = true;
    }
    EXPECT_THROW(rng.sampleWithoutReplacement(5, 6), FatalError);
    auto all = rng.sampleWithoutReplacement(7, 7);
    EXPECT_EQ(all.size(), 7u);
}

TEST(Rng, ForkIndependence)
{
    stats::Rng a(42);
    stats::Rng fork1 = a.fork();
    stats::Rng fork2 = a.fork();
    // Distinct forks give distinct streams.
    bool differ = false;
    for (int i = 0; i < 8; ++i)
        differ |= fork1.uniform() != fork2.uniform();
    EXPECT_TRUE(differ);
}

// -------------------------------------------------------------- Metrics

TEST(Metrics, AccuracyPerfectAndClamped)
{
    Vector y{1.0, 2.0, 3.0, 4.0};
    EXPECT_DOUBLE_EQ(stats::accuracy(y, y), 1.0);
    // Far-off estimate clamps to zero (Equation 5's max with 0).
    Vector bad{100.0, -50.0, 7.0, 0.0};
    EXPECT_DOUBLE_EQ(stats::accuracy(bad, y), 0.0);
}

TEST(Metrics, AccuracyMeanPredictorIsZero)
{
    Vector y{1.0, 2.0, 3.0};
    Vector mean_est(3, 2.0);
    EXPECT_DOUBLE_EQ(stats::accuracy(mean_est, y), 0.0);
}

TEST(Metrics, AccuracyScaleInvariance)
{
    // Equation (5) is invariant under a common scaling of estimate
    // and truth — the property that makes raw-unit accuracies equal
    // speedup-space accuracies.
    Vector y{2.0, 4.0, 8.0, 5.0};
    Vector e{2.1, 3.9, 7.7, 5.2};
    const double a1 = stats::accuracy(e, y);
    const double a2 = stats::accuracy(e * 3.5, y * 3.5);
    EXPECT_NEAR(a1, a2, 1e-12);
}

TEST(Metrics, AccuracyConstantTruth)
{
    Vector y(4, 3.0);
    EXPECT_DOUBLE_EQ(stats::accuracy(y, y), 1.0);
    Vector off{3.0, 3.0, 3.0, 3.1};
    EXPECT_DOUBLE_EQ(stats::accuracy(off, y), 0.0);
}

TEST(Metrics, RmseAndMae)
{
    Vector y{0.0, 0.0};
    Vector e{3.0, 4.0};
    EXPECT_NEAR(stats::rmse(e, y), std::sqrt(12.5), 1e-12);
    EXPECT_DOUBLE_EQ(stats::meanAbsoluteError(e, y), 3.5);
}

TEST(Metrics, Mape)
{
    Vector y{10.0, 20.0};
    Vector e{11.0, 18.0};
    EXPECT_NEAR(stats::meanAbsolutePercentageError(e, y), 0.1, 1e-12);
    Vector zero{0.0, 1.0};
    EXPECT_THROW(stats::meanAbsolutePercentageError(e, zero),
                 FatalError);
}

TEST(Metrics, PearsonCorrelation)
{
    Vector a{1.0, 2.0, 3.0, 4.0};
    EXPECT_NEAR(stats::pearsonCorrelation(a, a), 1.0, 1e-12);
    Vector b{4.0, 3.0, 2.0, 1.0};
    EXPECT_NEAR(stats::pearsonCorrelation(a, b), -1.0, 1e-12);
    Vector c(4, 7.0);
    EXPECT_DOUBLE_EQ(stats::pearsonCorrelation(a, c), 0.0);
}

// -------------------------------------------------------- RunningStats

TEST(RunningStats, BasicMoments)
{
    stats::RunningStats s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.push(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, MergeMatchesSequential)
{
    stats::Rng rng(17);
    stats::RunningStats all, a, b;
    for (int i = 0; i < 500; ++i) {
        const double v = rng.gaussian(1.0, 3.0);
        all.push(v);
        (i % 2 == 0 ? a : b).push(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-10);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-8);
}

TEST(RunningStats, Reset)
{
    stats::RunningStats s;
    s.push(1.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

// ----------------------------------------------------------------- MVN

TEST(Mvn, SampleMomentsMatch)
{
    Matrix cov{{2.0, 0.6}, {0.6, 1.0}};
    Vector mean{1.0, -1.0};
    stats::MultivariateNormal mvn(mean, cov);
    stats::Rng rng(23);
    stats::RunningStats m0, m1;
    double cross = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        Vector x = mvn.sample(rng);
        m0.push(x[0]);
        m1.push(x[1]);
        cross += (x[0] - 1.0) * (x[1] + 1.0);
    }
    EXPECT_NEAR(m0.mean(), 1.0, 0.05);
    EXPECT_NEAR(m1.mean(), -1.0, 0.05);
    EXPECT_NEAR(m0.variance(), 2.0, 0.1);
    EXPECT_NEAR(m1.variance(), 1.0, 0.05);
    EXPECT_NEAR(cross / n, 0.6, 0.05);
}

TEST(Mvn, LogPdfAgainstKnownValue)
{
    // Standard bivariate normal at the origin:
    // log pdf = -log(2 pi).
    Matrix cov = Matrix::identity(2);
    stats::MultivariateNormal mvn(Vector{0.0, 0.0}, cov);
    EXPECT_NEAR(mvn.logPdf(Vector{0.0, 0.0}),
                -std::log(2.0 * std::numbers::pi), 1e-10);
}

TEST(Mvn, ConditioningShrinksVariance)
{
    // Strongly correlated pair; observing one nearly determines the
    // other.
    Matrix cov{{1.0, 0.95}, {0.95, 1.0}};
    Vector mu{0.0, 0.0};
    auto post = stats::conditionOnObservations(mu, cov, {0},
                                               Vector{2.0}, 0.01);
    EXPECT_GT(post.mean[1], 1.5);
    EXPECT_LT(post.cov(1, 1), cov(1, 1));
    EXPECT_LT(post.cov(0, 0), 0.02);
}

TEST(Mvn, ConditioningNoObservationsIsPrior)
{
    Matrix cov{{1.0, 0.2}, {0.2, 2.0}};
    Vector mu{3.0, 4.0};
    auto post =
        stats::conditionOnObservations(mu, cov, {}, Vector{}, 0.1);
    EXPECT_DOUBLE_EQ(post.mean[0], 3.0);
    EXPECT_DOUBLE_EQ(post.cov(1, 1), 2.0);
}

TEST(Mvn, ConditioningMatchesPaperForm)
{
    // Equation (3) direct form: C = (diag(L)/s2 + Sigma^-1)^-1,
    // z = C (diag(L) y / s2 + Sigma^-1 mu). Verify the GP form used
    // in the implementation is algebraically identical.
    Matrix sigma{{1.5, 0.4, 0.1},
                 {0.4, 1.2, 0.3},
                 {0.1, 0.3, 0.9}};
    Vector mu{0.5, -0.2, 0.1};
    const double s2 = 0.05;
    std::vector<std::size_t> obs_idx{0, 2};
    Vector y_obs{1.0, -0.5};

    // Direct evaluation of Equation (3).
    Vector l(3, 0.0);
    l[0] = 1.0;
    l[2] = 1.0;
    Vector y_full(3, 0.0);
    y_full[0] = 1.0;
    y_full[2] = -0.5;
    // A = diag(L)/s2 + Sigma^-1 needs the explicit inverse (it is a
    // matrix sum), and C is compared entry-wise against the posterior
    // covariance below; the two inverse-times-vector products are
    // factored solves instead of inverse() multiplications.
    Matrix a = linalg::spdInverse(sigma);
    for (int i = 0; i < 3; ++i)
        a(i, i) += l[i] / s2;
    Matrix c = linalg::spdInverse(a);
    Vector rhs = linalg::spdSolve(sigma, mu);
    for (int i = 0; i < 3; ++i)
        rhs[i] += l[i] * y_full[i] / s2;
    Vector z_direct = linalg::spdSolve(a, rhs);

    // Implementation form.
    auto post =
        stats::conditionOnObservations(mu, sigma, obs_idx, y_obs, s2);

    for (int i = 0; i < 3; ++i) {
        EXPECT_NEAR(post.mean[i], z_direct[i], 1e-9);
        for (int j = 0; j < 3; ++j)
            EXPECT_NEAR(post.cov(i, j), c(i, j), 1e-9);
    }
}

TEST(Mvn, RejectsBadNoise)
{
    Matrix cov = Matrix::identity(2);
    Vector mu(2, 0.0);
    EXPECT_THROW(stats::conditionOnObservations(mu, cov, {0},
                                                Vector{1.0}, 0.0),
                 FatalError);
}

// ------------------------------------------- Allocation-free conditioning

namespace
{

/** An exactly symmetric SPD matrix: B B^T + n I with the lower
 *  triangle mirrored bit-for-bit into the upper. */
Matrix
randomSpdExact(std::size_t n, stats::Rng &rng)
{
    Matrix b(n, n);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < n; ++c)
            b.at(r, c) = rng.uniform(-1.0, 1.0);
    Matrix s(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k < n; ++k)
                acc += b.at(i, k) * b.at(j, k);
            s.at(i, j) = acc;
            s.at(j, i) = acc;
        }
        s.at(i, i) += static_cast<double>(n);
    }
    return s;
}

void
expectPosteriorBitwiseEqual(const stats::GaussianPosterior &got,
                            const stats::GaussianPosterior &want,
                            const std::string &what, bool with_cov)
{
    ASSERT_EQ(got.mean.size(), want.mean.size()) << what;
    for (std::size_t i = 0; i < want.mean.size(); ++i)
        ASSERT_EQ(got.mean[i], want.mean[i])
            << what << " mean differs at " << i;
    if (!with_cov)
        return;
    ASSERT_EQ(got.cov.rows(), want.cov.rows()) << what;
    ASSERT_EQ(got.cov.cols(), want.cov.cols()) << what;
    for (std::size_t r = 0; r < want.cov.rows(); ++r)
        for (std::size_t c = 0; c < want.cov.cols(); ++c)
            ASSERT_EQ(got.cov.at(r, c), want.cov.at(r, c))
                << what << " cov differs at (" << r << "," << c << ")";
}

} // namespace

TEST(Mvn, ConditionIntoMatchesAllocatingToZeroUlp)
{
    // One scratch + one posterior reused across problems of differing
    // shapes: buffers left dirty by one problem must not leak into the
    // next, and every result must match the allocating reference
    // bit-for-bit (the sigma built here is exactly symmetric, as the
    // Into variant requires).
    stats::Rng rng(331);
    stats::ConditioningScratch scratch;
    stats::GaussianPosterior post;

    struct Case
    {
        std::size_t n;
        std::vector<std::size_t> obs;
    };
    const Case cases[] = {
        {6, {0, 2, 5}},
        {9, {1, 3, 4, 8}},  // Shape grows: scratch reassigns.
        {6, {4, 1}},        // Shape shrinks again, buffers dirty.
    };
    const double s2 = 0.07;

    for (const Case &cs : cases) {
        const Matrix sigma = randomSpdExact(cs.n, rng);
        Vector mu(cs.n);
        for (std::size_t i = 0; i < cs.n; ++i)
            mu[i] = rng.uniform(-2.0, 2.0);
        Vector y(cs.obs.size());
        for (std::size_t j = 0; j < y.size(); ++j)
            y[j] = rng.uniform(-2.0, 2.0);

        const auto ref = stats::conditionOnObservations(
            mu, sigma, cs.obs, y, s2, /*want_cov=*/true);
        stats::conditionOnObservationsInto(post, scratch, mu, sigma,
                                           cs.obs, y, s2,
                                           /*want_cov=*/true);
        expectPosteriorBitwiseEqual(
            post, ref, "n=" + std::to_string(cs.n), /*with_cov=*/true);

        // Mean-only pass over the same problem (cov buffers stay
        // dirty; only the mean is contractually written).
        const auto ref_mean = stats::conditionOnObservations(
            mu, sigma, cs.obs, y, s2, /*want_cov=*/false);
        stats::conditionOnObservationsInto(post, scratch, mu, sigma,
                                           cs.obs, y, s2,
                                           /*want_cov=*/false);
        expectPosteriorBitwiseEqual(post, ref_mean,
                                    "mean-only n=" + std::to_string(cs.n),
                                    /*with_cov=*/false);
    }

    // s == 0 passthrough: posterior is the prior, bit-for-bit.
    const Matrix sigma = randomSpdExact(5, rng);
    Vector mu(5);
    for (std::size_t i = 0; i < 5; ++i)
        mu[i] = rng.uniform(-1.0, 1.0);
    stats::conditionOnObservationsInto(post, scratch, mu, sigma, {},
                                       Vector{}, s2);
    stats::GaussianPosterior prior{mu, sigma};
    expectPosteriorBitwiseEqual(post, prior, "no observations",
                                /*with_cov=*/true);
}

TEST(Mvn, ConditionIntoRejectsBadShapes)
{
    stats::ConditioningScratch scratch;
    stats::GaussianPosterior post;
    const Matrix cov = Matrix::identity(2);
    const Vector mu(2, 0.0);
    EXPECT_THROW(stats::conditionOnObservationsInto(
                     post, scratch, mu, cov, {0}, Vector{1.0}, 0.0),
                 FatalError);
    EXPECT_THROW(stats::conditionOnObservationsInto(
                     post, scratch, mu, cov, {0, 1}, Vector{1.0}, 0.1),
                 FatalError);
}
