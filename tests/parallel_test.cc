/**
 * @file
 * Unit tests for the parallel subsystem: ThreadPool lifecycle and
 * the deterministic parallelFor / parallelReduce primitives.
 */

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "parallel/parallel_for.hh"
#include "parallel/thread_pool.hh"

using namespace leo;
using parallel::ThreadPool;

// ------------------------------------------------------------- ThreadPool

TEST(ThreadPool, CompletesEveryTask)
{
    ThreadPool pool(3);
    std::atomic<int> count{0};
    std::vector<std::future<void>> futures;
    for (int i = 0; i < 100; ++i)
        futures.push_back(pool.submit([&count]() { ++count; }));
    for (auto &f : futures)
        f.get();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, SubmitReturnsValue)
{
    ThreadPool pool(2);
    auto f = pool.submit([]() { return 6 * 7; });
    EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPool, DestructorDrainsQueue)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(1);
        for (int i = 0; i < 50; ++i)
            pool.post([&count]() {
                std::this_thread::sleep_for(
                    std::chrono::microseconds(10));
                ++count;
            });
    }
    // Destruction joins only after every already-posted task ran.
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, ExceptionPropagatesThroughFuture)
{
    ThreadPool pool(2);
    auto f = pool.submit(
        []() -> int { throw std::runtime_error("boom"); });
    EXPECT_THROW(f.get(), std::runtime_error);
}

TEST(ThreadPool, ZeroWorkersRunInline)
{
    ThreadPool pool(0);
    EXPECT_EQ(pool.workerCount(), 0u);
    EXPECT_EQ(pool.concurrency(), 1u);
    const std::thread::id caller = std::this_thread::get_id();
    std::thread::id ran_on;
    bool ran = false;
    pool.post([&]() {
        ran_on = std::this_thread::get_id();
        ran = true;
    });
    // Inline execution: done before post() returns, on this thread.
    EXPECT_TRUE(ran);
    EXPECT_EQ(ran_on, caller);
    auto f = pool.submit([]() { return 1; });
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
}

TEST(ThreadPool, ReentrantSubmissionDoesNotDeadlock)
{
    ThreadPool pool(2);
    // A task that itself fans a loop across the same pool: the
    // nesting rule (insideWorker -> inline) must keep this from
    // blocking a worker on other workers.
    auto f = pool.submit([&pool]() {
        EXPECT_TRUE(ThreadPool::insideWorker());
        std::atomic<int> inner{0};
        parallel::parallelFor(pool, 64,
                              [&inner](std::size_t) { ++inner; });
        return inner.load();
    });
    EXPECT_EQ(f.get(), 64);
}

TEST(ThreadPool, InsideWorkerFalseOnCaller)
{
    EXPECT_FALSE(ThreadPool::insideWorker());
    ThreadPool pool(1);
    auto f = pool.submit([]() { return ThreadPool::insideWorker(); });
    EXPECT_TRUE(f.get());
}

TEST(ThreadPool, DefaultConcurrencyPositive)
{
    EXPECT_GE(ThreadPool::defaultConcurrency(), 1u);
    EXPECT_GE(ThreadPool::global().concurrency(), 1u);
    EXPECT_EQ(ThreadPool::serial().workerCount(), 0u);
}

// ------------------------------------------------------------ parallelFor

TEST(ParallelFor, TouchesEveryIndexOnce)
{
    ThreadPool pool(3);
    std::vector<int> hits(1000, 0);
    parallel::parallelFor(pool, hits.size(),
                          [&](std::size_t i) { ++hits[i]; });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ParallelFor, ChunkedCoversRangeExactly)
{
    ThreadPool pool(2);
    // Awkward grain: n not divisible by grain.
    std::vector<int> hits(97, 0);
    parallel::parallelForChunked(
        pool, hits.size(), 10, [&](std::size_t b, std::size_t e) {
            for (std::size_t i = b; i < e; ++i)
                ++hits[i];
        });
    for (int h : hits)
        EXPECT_EQ(h, 1);
}

TEST(ParallelFor, EmptyRangeIsNoop)
{
    ThreadPool pool(2);
    bool called = false;
    parallel::parallelFor(pool, 0,
                          [&](std::size_t) { called = true; });
    EXPECT_FALSE(called);
}

TEST(ParallelFor, BodyExceptionRethrownInCaller)
{
    ThreadPool pool(3);
    EXPECT_THROW(
        parallel::parallelFor(pool, 100,
                              [](std::size_t i) {
                                  if (i == 57)
                                      throw std::runtime_error("57");
                              }),
        std::runtime_error);
    // Pool survives the exception and keeps working.
    std::atomic<int> count{0};
    parallel::parallelFor(pool, 10,
                          [&count](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 10);
}

TEST(ParallelFor, ZeroWorkerPoolRunsInline)
{
    ThreadPool pool(0);
    const std::thread::id caller = std::this_thread::get_id();
    parallel::parallelFor(pool, 16, [&](std::size_t) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
    });
}

// --------------------------------------------------------- parallelReduce

TEST(ParallelReduce, SumsExactly)
{
    ThreadPool pool(3);
    const std::size_t n = 12345;
    const long total = parallel::parallelReduce<long>(
        pool, n, 100,
        [](std::size_t b, std::size_t e) {
            long acc = 0;
            for (std::size_t i = b; i < e; ++i)
                acc += static_cast<long>(i);
            return acc;
        },
        [](long &into, long &&from) { into += from; });
    EXPECT_EQ(total, static_cast<long>(n * (n - 1) / 2));
}

TEST(ParallelReduce, SingleChunk)
{
    ThreadPool pool(2);
    const int v = parallel::parallelReduce<int>(
        pool, 5, 100,
        [](std::size_t b, std::size_t e) {
            return static_cast<int>(e - b);
        },
        [](int &into, int &&from) { into += from; });
    EXPECT_EQ(v, 5);
}

TEST(ParallelReduce, FloatingPointBitwiseIdenticalAcrossPoolSizes)
{
    // Ill-conditioned summands: any change in accumulation order
    // changes the rounded result, so exact equality across pool
    // sizes exercises the fixed chunking + fixed combine tree.
    const std::size_t n = 4097;
    std::vector<double> xs(n);
    double sign = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
        xs[i] = sign * 1e16 / static_cast<double>(i + 3) +
                1e-7 * static_cast<double>(i % 97);
        sign = -sign;
    }
    auto reduce = [&](ThreadPool &pool) {
        return parallel::parallelReduce<double>(
            pool, n, 64,
            [&](std::size_t b, std::size_t e) {
                double acc = 0.0;
                for (std::size_t i = b; i < e; ++i)
                    acc += xs[i];
                return acc;
            },
            [](double &into, double &&from) { into += from; });
    };
    ThreadPool serial(0);
    const double reference = reduce(serial);
    for (std::size_t workers : {1u, 2u, 3u, 7u}) {
        ThreadPool pool(workers);
        // Repeat: scheduling varies run to run, results must not.
        for (int rep = 0; rep < 3; ++rep)
            EXPECT_EQ(reduce(pool), reference)
                << "workers=" << workers << " rep=" << rep;
    }
}

TEST(ParallelReduce, IntoVariantMatchesAllocatingBitwise)
{
    // Same ill-conditioned summands as above: parallelReduceInto must
    // reproduce parallelReduce bit-for-bit at every pool size, with
    // the caller-owned partials left dirty between runs.
    const std::size_t n = 4097;
    const std::size_t grain = 64;
    std::vector<double> xs(n);
    double sign = 1.0;
    for (std::size_t i = 0; i < n; ++i) {
        xs[i] = sign * 1e16 / static_cast<double>(i + 3) +
                1e-7 * static_cast<double>(i % 97);
        sign = -sign;
    }
    auto map = [&](std::size_t b, std::size_t e) {
        double acc = 0.0;
        for (std::size_t i = b; i < e; ++i)
            acc += xs[i];
        return acc;
    };

    ThreadPool serial(0);
    const double reference = parallel::parallelReduce<double>(
        serial, n, grain, map,
        [](double &into, double &&from) { into += from; });

    const std::size_t chunks = parallel::chunkCount(n, grain);
    std::vector<double> storage(chunks, -1234.5);  // Dirty partials.
    std::vector<double *> parts(chunks);
    for (std::size_t c = 0; c < chunks; ++c)
        parts[c] = &storage[c];

    for (std::size_t workers : {0u, 1u, 2u, 3u, 7u}) {
        ThreadPool pool(workers);
        for (int rep = 0; rep < 3; ++rep) {
            parallel::parallelReduceInto<double>(
                pool, n, grain, parts,
                [&](std::size_t b, std::size_t e, double &part) {
                    part = map(b, e);
                },
                [](double &into, const double &from) { into += from; });
            EXPECT_EQ(storage[0], reference)
                << "workers=" << workers << " rep=" << rep;
        }
    }

    // Single chunk: the map result lands in *parts[0] untouched.
    std::vector<double *> one{&storage[0]};
    parallel::parallelReduceInto<double>(
        serial, 5, 100, one,
        [&](std::size_t b, std::size_t e, double &part) {
            part = static_cast<double>(e - b);
        },
        [](double &into, const double &from) { into += from; });
    EXPECT_EQ(storage[0], 5.0);
}

TEST(ParallelReduce, IntoVariantRejectsPartCountMismatch)
{
    ThreadPool pool(1);
    double slot = 0.0;
    std::vector<double *> parts{&slot};  // Needs 2 for n=10, grain=5.
    EXPECT_THROW(
        parallel::parallelReduceInto<double>(
            pool, 10, 5, parts,
            [](std::size_t, std::size_t, double &part) { part = 0.0; },
            [](double &into, const double &from) { into += from; }),
        FatalError);
}
