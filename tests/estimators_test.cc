/**
 * @file
 * Unit tests for the estimators: LEO (hierarchical Bayes + EM),
 * Online (polynomial regression) and Offline (prior mean).
 */

#include <atomic>
#include <cstdlib>
#include <new>

#include <gtest/gtest.h>

#include "estimators/batch.hh"
#include "estimators/fit_io.hh"
#include "estimators/leo.hh"
#include "estimators/normalization.hh"
#include "estimators/offline.hh"
#include "estimators/online.hh"
#include "linalg/error.hh"
#include "linalg/workspace.hh"
#include "platform/config_space.hh"
#include "stats/metrics.hh"
#include "stats/mvn.hh"
#include "telemetry/sampler.hh"
#include "workloads/ground_truth.hh"
#include "workloads/suite.hh"

/**
 * Allocation instrumentation for the hot-loop tests: every operator
 * new in this binary bumps a counter (operator new[] funnels through
 * operator new by default), which LeoFit::loopAllocations reads via
 * the estimators::setAllocationCounter hook.
 */
static std::atomic<std::size_t> g_heap_allocs{0};

// noinline keeps the optimizer from pairing the malloc inside the
// replacement operator new with the free inside operator delete
// across inlined call chains, which trips a spurious GCC
// -Wmismatched-new-delete at -O2.
[[gnu::noinline]] void *
operator new(std::size_t size)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

[[gnu::noinline]] void
operator delete(void *p) noexcept
{
    std::free(p);
}

[[gnu::noinline]] void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

using namespace leo;
using linalg::Matrix;
using linalg::Vector;
using platform::ConfigSpace;
using platform::Machine;

namespace
{

/** Small test fixture: the 32-point core-only space with the suite. */
struct CoreOnlyWorld
{
    Machine machine;
    ConfigSpace space = ConfigSpace::coreOnly(machine);
    telemetry::HeartbeatMonitor monitor{0.01};
    telemetry::WattsUpMeter meter{0.005, 0.1};
    stats::Rng rng{2024};

    std::vector<Vector>
    priorPerf(const std::string &exclude)
    {
        std::vector<Vector> out;
        for (const auto &p : workloads::standardSuite()) {
            if (p.name == exclude)
                continue;
            workloads::ApplicationModel m(p, machine);
            out.push_back(
                workloads::computeGroundTruth(m, space).performance);
        }
        return out;
    }

    Vector
    truthPerf(const std::string &name)
    {
        workloads::ApplicationModel m(
            workloads::profileByName(name), machine);
        return workloads::computeGroundTruth(m, space).performance;
    }
};

} // namespace

// -------------------------------------------------------- Normalization

TEST(Normalization, ShapesHaveUnitMean)
{
    std::vector<Vector> prior{Vector{2.0, 4.0}, Vector{10.0, 30.0}};
    auto shapes = estimators::normalizeShapes(prior);
    ASSERT_EQ(shapes.size(), 2u);
    EXPECT_NEAR(shapes[0].mean(), 1.0, 1e-12);
    EXPECT_NEAR(shapes[1].mean(), 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(shapes[1][1], 1.5);
}

TEST(Normalization, RejectsDegenerate)
{
    EXPECT_THROW(estimators::normalizeShapes({Vector{}}), FatalError);
    EXPECT_THROW(estimators::normalizeShapes({Vector{-1.0, 1.0}}),
                 FatalError);
    EXPECT_THROW(estimators::observedScale(Vector{}), FatalError);
}

// -------------------------------------------------------------- Offline

TEST(Offline, MeanShapeIsAverage)
{
    std::vector<Vector> prior{Vector{1.0, 3.0}, Vector{3.0, 1.0}};
    Vector shape = estimators::OfflineEstimator::meanShape(prior);
    // Both normalize to mean 1: (0.5,1.5) and (1.5,0.5) -> (1,1).
    EXPECT_NEAR(shape[0], 1.0, 1e-12);
    EXPECT_NEAR(shape[1], 1.0, 1e-12);
}

TEST(Offline, AnchorsToObservedScale)
{
    CoreOnlyWorld w;
    auto prior = w.priorPerf("kmeans");
    estimators::OfflineEstimator off;
    // Observe two configs of a hypothetical app at scale ~100.
    auto est = off.estimateMetric(w.space, prior, {0, 16},
                                  Vector{80.0, 120.0});
    EXPECT_TRUE(est.reliable);
    // The estimate's scale is anchored near the observations.
    EXPECT_NEAR(est.values.gather({0, 16}).mean(), 100.0, 25.0);
}

TEST(Offline, IgnoresObservedShape)
{
    // Offline never adapts its shape: two different observation
    // SHAPES with the same mean produce the same estimate.
    CoreOnlyWorld w;
    auto prior = w.priorPerf("kmeans");
    estimators::OfflineEstimator off;
    auto a = off.estimateMetric(w.space, prior, {0, 31},
                                Vector{50.0, 150.0});
    auto b = off.estimateMetric(w.space, prior, {0, 31},
                                Vector{150.0, 50.0});
    for (std::size_t c = 0; c < w.space.size(); ++c)
        EXPECT_NEAR(a.values[c], b.values[c], 1e-9);
}

TEST(Offline, RequiresPrior)
{
    CoreOnlyWorld w;
    estimators::OfflineEstimator off;
    EXPECT_THROW(off.estimateMetric(w.space, {}, {}, Vector{}),
                 FatalError);
}

// --------------------------------------------------------------- Online

TEST(Online, RankDeficientBelowFeatureCount)
{
    // Full space has 4 knobs, degree 2 -> 15 features; below 15
    // samples the estimate must be flagged unreliable (Fig. 12).
    Machine m;
    auto space = ConfigSpace::fullFactorial(m);
    workloads::ApplicationModel app(
        workloads::profileByName("x264"), m);
    telemetry::HeartbeatMonitor mon(0.0);
    telemetry::WattsUpMeter met(0.0, 0.0);
    telemetry::Profiler prof(mon, met);
    telemetry::RandomSampler pol;
    stats::Rng rng(3);
    estimators::OnlineEstimator online;

    auto obs14 = prof.sample(app, space, pol, 14, rng);
    auto est14 = online.estimateMetric(space, {}, obs14.indices,
                                       obs14.performance);
    EXPECT_FALSE(est14.reliable);

    auto obs20 = prof.sample(app, space, pol, 20, rng);
    auto est20 = online.estimateMetric(space, {}, obs20.indices,
                                       obs20.performance);
    EXPECT_TRUE(est20.reliable);
}

TEST(Online, FitsSmoothSurfacesWell)
{
    // A quadratic-ish smooth application: degree-2 online regression
    // should reach high accuracy with ample samples.
    Machine m;
    auto space = ConfigSpace::fullFactorial(m);
    workloads::ApplicationProfile p =
        workloads::profileByName("blackscholes");
    p.textureAmplitude = 0.0;
    workloads::ApplicationModel app(p, m);
    auto gt = workloads::computeGroundTruth(app, space);

    telemetry::HeartbeatMonitor mon(0.0);
    telemetry::WattsUpMeter met(0.0, 0.0);
    telemetry::Profiler prof(mon, met);
    telemetry::RandomSampler pol;
    stats::Rng rng(5);
    auto obs = prof.sample(app, space, pol, 200, rng);

    estimators::OnlineEstimator online;
    auto est = online.estimateMetric(space, {}, obs.indices,
                                     obs.performance);
    EXPECT_TRUE(est.reliable);
    EXPECT_GT(stats::accuracy(est.values, gt.performance), 0.9);
}

TEST(Online, NoObservationsUnreliable)
{
    CoreOnlyWorld w;
    estimators::OnlineEstimator online;
    auto est = online.estimateMetric(w.space, {}, {}, Vector{});
    EXPECT_FALSE(est.reliable);
}

TEST(Online, PredictionsNonNegative)
{
    CoreOnlyWorld w;
    workloads::ApplicationModel app(
        workloads::profileByName("kmeans"), w.machine);
    telemetry::Profiler prof(w.monitor, w.meter);
    telemetry::RandomSampler pol;
    auto obs = prof.sample(app, w.space, pol, 12, w.rng);
    estimators::OnlineEstimator online;
    auto est = online.estimateMetric(w.space, {}, obs.indices,
                                     obs.performance);
    EXPECT_GE(est.values.min(), 0.0);
}

// ------------------------------------------------------------------ LEO

TEST(Leo, RecoversModelGeneratedData)
{
    // Property test: generate applications *from the hierarchical
    // model itself* (Equation 2) and verify EM recovers the target
    // vector to high accuracy from partial observations.
    const std::size_t n = 24;
    const std::size_t m_apps = 30;
    stats::Rng rng(99);

    // A smooth random mean and a low-rank-plus-diagonal covariance.
    Vector mu(n);
    for (std::size_t j = 0; j < n; ++j)
        mu[j] = 5.0 + 2.0 * std::sin(0.3 * static_cast<double>(j));
    Matrix cov(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            cov(i, j) = 1.5 * std::exp(
                -0.05 * static_cast<double>((i - j) * (i - j)));
    cov.addToDiagonal(0.05);

    stats::MultivariateNormal latent(mu, cov);
    const double noise_sd = 0.05;

    std::vector<Vector> prior;
    for (std::size_t a = 0; a + 1 < m_apps; ++a) {
        Vector z = latent.sample(rng);
        for (std::size_t j = 0; j < n; ++j)
            z[j] = std::max(z[j] + rng.gaussian(0, noise_sd), 0.1);
        prior.push_back(z);
    }
    Vector target = latent.sample(rng);
    for (std::size_t j = 0; j < n; ++j)
        target[j] = std::max(target[j], 0.1);

    std::vector<std::size_t> obs_idx{1, 5, 9, 13, 17, 21};
    Vector obs_vals(obs_idx.size());
    for (std::size_t k = 0; k < obs_idx.size(); ++k)
        obs_vals[k] = target[obs_idx[k]] + rng.gaussian(0, noise_sd);

    estimators::LeoEstimator leo;
    auto fit = leo.fitMetric(prior, obs_idx, obs_vals);
    EXPECT_GT(stats::accuracy(fit.prediction, target), 0.85);
    EXPECT_TRUE(fit.prediction.allFinite());
    EXPECT_GT(fit.sigma2, 0.0);
}

TEST(Leo, BeatsOfflineAndOnlineOnKmeans)
{
    // The motivating example: kmeans' peak at 8 cores with 6
    // uniformly spaced observations (Section 2 / Figure 1).
    CoreOnlyWorld w;
    auto prior = w.priorPerf("kmeans");
    auto truth = w.truthPerf("kmeans");

    workloads::ApplicationModel app(
        workloads::profileByName("kmeans"), w.machine);
    telemetry::Profiler prof(w.monitor, w.meter);
    telemetry::UniformGridSampler grid;
    auto obs = prof.sample(app, w.space, grid, 6, w.rng);

    estimators::LeoEstimator leo;
    estimators::OnlineEstimator online(2);
    estimators::OfflineEstimator offline;

    const double acc_leo = stats::accuracy(
        leo.estimateMetric(w.space, prior, obs.indices,
                           obs.performance)
            .values,
        truth);
    const double acc_on = stats::accuracy(
        online
            .estimateMetric(w.space, prior, obs.indices,
                            obs.performance)
            .values,
        truth);
    const double acc_off = stats::accuracy(
        offline
            .estimateMetric(w.space, prior, obs.indices,
                            obs.performance)
            .values,
        truth);

    EXPECT_GT(acc_leo, 0.85);
    EXPECT_GT(acc_leo, acc_on);
    EXPECT_GT(acc_leo, acc_off);

    // LEO finds the peak near 8 cores.
    auto est = leo.estimateMetric(w.space, prior, obs.indices,
                                  obs.performance);
    EXPECT_NEAR(static_cast<double>(est.values.argmax() + 1), 8.0,
                2.0);
}

TEST(Leo, ConvergesInFewIterations)
{
    // Section 5.5: "the algorithm converges quickly ... generally
    // requiring 3-4 iterations".
    CoreOnlyWorld w;
    auto prior = w.priorPerf("x264");
    workloads::ApplicationModel app(
        workloads::profileByName("x264"), w.machine);
    telemetry::Profiler prof(w.monitor, w.meter);
    telemetry::RandomSampler pol;
    auto obs = prof.sample(app, w.space, pol, 8, w.rng);

    estimators::LeoOptions opt;
    opt.maxIterations = 10;
    estimators::LeoEstimator leo(opt);
    auto fit = leo.fitMetric(prior, obs.indices, obs.performance);
    EXPECT_LE(fit.iterations, 6u);
}

TEST(Leo, InterpolatesObservationsClosely)
{
    CoreOnlyWorld w;
    auto prior = w.priorPerf("swish");
    workloads::ApplicationModel app(
        workloads::profileByName("swish"), w.machine);
    telemetry::Profiler prof(w.monitor, w.meter);
    telemetry::RandomSampler pol;
    auto obs = prof.sample(app, w.space, pol, 10, w.rng);

    estimators::LeoEstimator leo;
    auto est = leo.estimateMetric(w.space, prior, obs.indices,
                                  obs.performance);
    for (std::size_t k = 0; k < obs.indices.size(); ++k) {
        EXPECT_NEAR(est.values[obs.indices[k]], obs.performance[k],
                    0.1 * obs.performance[k]);
    }
}

TEST(Leo, ZeroObservationsEqualsOfflineShape)
{
    // Figure 12: "with 0 samples, LEO behaves as the offline method".
    CoreOnlyWorld w;
    auto prior = w.priorPerf("kmeans");
    estimators::LeoEstimator leo;
    auto fit = leo.fitMetric(prior, {}, Vector{});
    Vector offline_shape =
        estimators::OfflineEstimator::meanShape(prior);
    // Same shape up to the gentle EM smoothing: high correlation.
    EXPECT_GT(stats::pearsonCorrelation(fit.prediction,
                                        offline_shape),
              0.99);
}

TEST(Leo, LearnedSigmaCapturesConfigCorrelation)
{
    // Figure 4: Sigma captures correlation between configurations.
    // Adjacent core counts behave similarly across applications, so
    // their correlation must exceed that of distant core counts.
    CoreOnlyWorld w;
    auto prior = w.priorPerf("kmeans");
    workloads::ApplicationModel app(
        workloads::profileByName("kmeans"), w.machine);
    telemetry::Profiler prof(w.monitor, w.meter);
    telemetry::RandomSampler pol;
    auto obs = prof.sample(app, w.space, pol, 6, w.rng);

    estimators::LeoEstimator leo;
    auto fit = leo.fitMetric(prior, obs.indices, obs.performance);
    const Matrix &s = fit.sigma;
    auto corr = [&](std::size_t i, std::size_t j) {
        return s(i, j) / std::sqrt(s(i, i) * s(j, j));
    };
    EXPECT_GT(corr(10, 11), corr(2, 30));
    EXPECT_TRUE(fit.sigma.isSymmetric(1e-8));
}

TEST(Leo, MoreSamplesNeverMuchWorse)
{
    // Sensitivity property (Fig. 12): accuracy is non-decreasing in
    // sample budget, modulo small noise.
    CoreOnlyWorld w;
    auto prior = w.priorPerf("kmeans");
    auto truth = w.truthPerf("kmeans");
    workloads::ApplicationModel app(
        workloads::profileByName("kmeans"), w.machine);
    telemetry::Profiler prof(w.monitor, w.meter);
    telemetry::RandomSampler pol;
    estimators::LeoEstimator leo;

    double prev = 0.0;
    for (std::size_t budget : {4u, 12u, 24u}) {
        double acc = 0.0;
        for (int t = 0; t < 3; ++t) {
            auto obs = prof.sample(app, w.space, pol, budget, w.rng);
            acc += stats::accuracy(
                leo.estimateMetric(w.space, prior, obs.indices,
                                   obs.performance)
                    .values,
                truth);
        }
        acc /= 3.0;
        EXPECT_GT(acc, prev - 0.08)
            << "accuracy collapsed at budget " << budget;
        prev = acc;
    }
}

TEST(Leo, NoPriorFallsBackUnreliable)
{
    CoreOnlyWorld w;
    estimators::LeoEstimator leo;
    auto est =
        leo.estimateMetric(w.space, {}, {0}, Vector{5.0});
    EXPECT_FALSE(est.reliable);
    EXPECT_DOUBLE_EQ(est.values[10], 5.0);
}

TEST(Leo, RejectsBadInputs)
{
    estimators::LeoEstimator leo;
    EXPECT_THROW(leo.fitMetric({}, {}, Vector{}), FatalError);
    std::vector<Vector> ragged{Vector(4, 1.0), Vector(5, 1.0)};
    EXPECT_THROW(leo.fitMetric(ragged, {}, Vector{}), FatalError);
    std::vector<Vector> ok{Vector(4, 1.0)};
    EXPECT_THROW(leo.fitMetric(ok, {9}, Vector{1.0}), FatalError);
    EXPECT_THROW(leo.fitMetric(ok, {0, 1}, Vector{1.0}), FatalError);
}

TEST(Leo, OptionsValidated)
{
    estimators::LeoOptions bad;
    bad.maxIterations = 0;
    EXPECT_THROW(estimators::LeoEstimator{bad}, FatalError);
    bad = estimators::LeoOptions{};
    bad.initSigma2 = 0.0;
    EXPECT_THROW(estimators::LeoEstimator{bad}, FatalError);
    bad = estimators::LeoOptions{};
    bad.hyperPi = -1.0;
    EXPECT_THROW(estimators::LeoEstimator{bad}, FatalError);
}

// ---------------------------------------------- Estimator front door

TEST(Estimator, EstimateRunsBothMetrics)
{
    CoreOnlyWorld w;
    stats::Rng rng(31);
    auto store = telemetry::ProfileStore::collect(
        workloads::standardSuite(), w.machine, w.space, w.monitor,
        w.meter, rng);
    auto prior = store.without("kmeans");

    workloads::ApplicationModel app(
        workloads::profileByName("kmeans"), w.machine);
    telemetry::Profiler prof(w.monitor, w.meter);
    telemetry::RandomSampler pol;
    auto obs = prof.sample(app, w.space, pol, 8, rng);

    estimators::LeoEstimator leo;
    estimators::EstimationInputs inputs{w.space, prior, obs};
    auto est = leo.estimate(inputs);
    EXPECT_EQ(est.performance.values.size(), w.space.size());
    EXPECT_EQ(est.power.values.size(), w.space.size());
    EXPECT_TRUE(est.performance.reliable);
    EXPECT_TRUE(est.power.reliable);
    // Power estimates stay in a physically sane band.
    EXPECT_GT(est.power.values.min(), 50.0);
    EXPECT_LT(est.power.values.max(), 500.0);
}

// ------------------------------------------------ Parallel determinism

namespace
{

/** One EM fit on a fixed-seed workload at the given thread count. */
estimators::LeoFit
fitWithThreads(std::size_t threads)
{
    CoreOnlyWorld w; // fixed fixture seed (2024)
    auto prior = w.priorPerf("kmeans");
    workloads::ApplicationModel app(
        workloads::profileByName("kmeans"), w.machine);
    telemetry::Profiler prof(w.monitor, w.meter);
    telemetry::RandomSampler pol;
    auto obs = prof.sample(app, w.space, pol, 12, w.rng);

    estimators::LeoOptions opt;
    opt.threads = threads;
    opt.maxIterations = 8;
    estimators::LeoEstimator leo(opt);
    return leo.fitMetric(prior, obs.indices, obs.performance);
}

/** Exact (bitwise) vector equality, with a useful failure message. */
void
expectExactlyEqual(const Vector &a, const Vector &b,
                   const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << what << " differs at index " << i;
}

} // namespace

TEST(LeoParallel, FitBitwiseIdenticalAcrossThreadCounts)
{
    // The acceptance bar for the parallel subsystem: the EM fit is
    // *exactly* the same computation at 1, 2 and 8 threads — same
    // estimates, same fitted parameters, same iteration count, same
    // per-iteration log-likelihood trace.
    const estimators::LeoFit serial = fitWithThreads(1);
    for (std::size_t threads : {2u, 8u}) {
        const estimators::LeoFit fit = fitWithThreads(threads);
        expectExactlyEqual(fit.prediction, serial.prediction,
                           "prediction");
        expectExactlyEqual(fit.predictionVariance,
                           serial.predictionVariance,
                           "predictionVariance");
        expectExactlyEqual(fit.mu, serial.mu, "mu");
        EXPECT_EQ(fit.sigma2, serial.sigma2);
        EXPECT_EQ(fit.iterations, serial.iterations);
        EXPECT_EQ(fit.converged, serial.converged);
        ASSERT_EQ(fit.logLikelihoodTrace.size(),
                  serial.logLikelihoodTrace.size());
        for (std::size_t i = 0; i < fit.logLikelihoodTrace.size();
             ++i)
            EXPECT_EQ(fit.logLikelihoodTrace[i],
                      serial.logLikelihoodTrace[i]);
        for (std::size_t r = 0; r < fit.sigma.rows(); ++r)
            for (std::size_t c = 0; c < fit.sigma.cols(); ++c)
                ASSERT_EQ(fit.sigma.at(r, c), serial.sigma.at(r, c));
    }
}

TEST(LeoParallel, SharedGlobalPoolMatchesSerial)
{
    // threads = 0 routes through the process-wide pool; still the
    // identical computation.
    const estimators::LeoFit serial = fitWithThreads(1);
    const estimators::LeoFit pooled = fitWithThreads(0);
    expectExactlyEqual(pooled.prediction, serial.prediction,
                       "prediction (global pool)");
    EXPECT_EQ(pooled.iterations, serial.iterations);
}

TEST(EstimatorBatch, MatchesIndividualFitsExactly)
{
    CoreOnlyWorld w;
    telemetry::Profiler prof(w.monitor, w.meter);
    telemetry::RandomSampler pol;
    estimators::LeoEstimator leo;

    std::vector<estimators::EstimateRequest> requests;
    for (const char *name : {"kmeans", "swish", "x264"}) {
        auto prior = w.priorPerf(name);
        workloads::ApplicationModel app(
            workloads::profileByName(name), w.machine);
        auto obs = prof.sample(app, w.space, pol, 8, w.rng);
        estimators::EstimateRequest req;
        req.prior = std::move(prior);
        req.obsIndices = obs.indices;
        req.obsValues = obs.performance;
        requests.push_back(std::move(req));
    }

    parallel::ThreadPool pool(3);
    estimators::EstimatorBatch batch(leo, pool);
    for (const auto &r : requests)
        batch.add(r);
    auto batched = batch.run(w.space);
    ASSERT_EQ(batched.size(), requests.size());
    EXPECT_EQ(batch.size(), 0u); // run() clears the queue

    for (std::size_t i = 0; i < requests.size(); ++i) {
        auto solo = leo.estimateMetric(w.space, requests[i].prior,
                                       requests[i].obsIndices,
                                       requests[i].obsValues);
        expectExactlyEqual(batched[i].values, solo.values, "batch");
        EXPECT_EQ(batched[i].iterations, solo.iterations);
    }
}

// ------------------------------------------- Hot-loop memory discipline

namespace
{

/** Reads the operator-new counter defined at the top of this file. */
std::size_t
heapAllocCount()
{
    return g_heap_allocs.load(std::memory_order_relaxed);
}

/** Exact equality on every field of two fits. */
void
expectFitsExactlyEqual(const estimators::LeoFit &a,
                       const estimators::LeoFit &b,
                       const std::string &what)
{
    expectExactlyEqual(a.prediction, b.prediction, what + ".prediction");
    expectExactlyEqual(a.predictionVariance, b.predictionVariance,
                       what + ".predictionVariance");
    expectExactlyEqual(a.mu, b.mu, what + ".mu");
    EXPECT_EQ(a.sigma2, b.sigma2) << what;
    EXPECT_EQ(a.iterations, b.iterations) << what;
    EXPECT_EQ(a.converged, b.converged) << what;
    ASSERT_EQ(a.logLikelihoodTrace.size(), b.logLikelihoodTrace.size())
        << what;
    for (std::size_t i = 0; i < a.logLikelihoodTrace.size(); ++i)
        EXPECT_EQ(a.logLikelihoodTrace[i], b.logLikelihoodTrace[i])
            << what << ".trace[" << i << "]";
    ASSERT_EQ(a.sigma.rows(), b.sigma.rows()) << what;
    for (std::size_t r = 0; r < a.sigma.rows(); ++r)
        for (std::size_t c = 0; c < a.sigma.cols(); ++c)
            ASSERT_EQ(a.sigma.at(r, c), b.sigma.at(r, c))
                << what << ".sigma(" << r << "," << c << ")";
}

/** A fixed-seed fit problem shared by the hot-loop tests. */
struct FitProblem
{
    std::vector<Vector> prior;
    std::vector<std::size_t> idx;
    Vector vals;
};

FitProblem
makeFitProblem(std::size_t n_obs)
{
    CoreOnlyWorld w;
    FitProblem p;
    p.prior = w.priorPerf("kmeans");
    workloads::ApplicationModel app(
        workloads::profileByName("kmeans"), w.machine);
    telemetry::Profiler prof(w.monitor, w.meter);
    telemetry::RandomSampler pol;
    auto obs = prof.sample(app, w.space, pol, n_obs, w.rng);
    p.idx = obs.indices;
    p.vals = obs.performance;
    return p;
}

} // namespace

TEST(LeoHotLoop, WorkspacePathMatchesReferencePathBitwise)
{
    // The acceptance bar for the allocation-free loop: the workspace
    // path is the *same computation* as the straightforward
    // reference implementation — every field of the fit, bit for
    // bit, with and without observations.
    const FitProblem p = makeFitProblem(12);

    estimators::LeoOptions oref;
    oref.threads = 1;
    oref.referencePath = true;
    estimators::LeoOptions ows;
    ows.threads = 1;
    const estimators::LeoEstimator ref(oref), fast(ows);

    linalg::Workspace ws;
    expectFitsExactlyEqual(
        fast.fitMetric(p.prior, p.idx, p.vals, &ws, nullptr),
        ref.fitMetric(p.prior, p.idx, p.vals), "observed");

    expectFitsExactlyEqual(
        fast.fitMetric(p.prior, {}, Vector(0), &ws, nullptr),
        ref.fitMetric(p.prior, {}, Vector(0)), "unobserved");
}

TEST(LeoHotLoop, WarmStartSameThetaMatchesAcrossPaths)
{
    // Warm starting only changes the EM initialization, so for the
    // same warm theta the reference and workspace paths must still
    // agree exactly.
    const FitProblem p = makeFitProblem(12);

    estimators::LeoOptions oref;
    oref.threads = 1;
    oref.referencePath = true;
    estimators::LeoOptions ows;
    ows.threads = 1;
    const estimators::LeoEstimator ref(oref), fast(ows);

    linalg::Workspace ws;
    const estimators::LeoFit cold =
        fast.fitMetric(p.prior, p.idx, p.vals, &ws, nullptr);
    EXPECT_FALSE(cold.warmStarted);

    const estimators::LeoFit warm_ws =
        fast.fitMetric(p.prior, p.idx, p.vals, &ws, &cold);
    EXPECT_TRUE(warm_ws.warmStarted);
    expectFitsExactlyEqual(
        warm_ws, ref.fitMetric(p.prior, p.idx, p.vals, nullptr, &cold),
        "warm");

    // An incompatible warm fit silently falls back to the cold init.
    estimators::LeoFit bogus;
    bogus.mu = Vector(3, 1.0);
    bogus.sigma = Matrix(3, 3, 0.1);
    bogus.sigma2 = 0.01;
    const estimators::LeoFit fallback =
        fast.fitMetric(p.prior, p.idx, p.vals, &ws, &bogus);
    EXPECT_FALSE(fallback.warmStarted);
    expectFitsExactlyEqual(fallback, cold, "fallback");
}

TEST(LeoHotLoop, WarmFitBitwiseIdenticalAcrossThreadCounts)
{
    // The PR-1 determinism guarantee extended to warm refits: same
    // bits at 1, 2 and 8 threads.
    const FitProblem p = makeFitProblem(12);
    const estimators::LeoFit seed_fit = [&] {
        estimators::LeoOptions o;
        o.threads = 1;
        return estimators::LeoEstimator(o).fitMetric(
            p.prior, p.idx, p.vals);
    }();

    auto warm_fit = [&](std::size_t threads) {
        estimators::LeoOptions o;
        o.threads = threads;
        o.maxIterations = 8;
        linalg::Workspace ws;
        return estimators::LeoEstimator(o).fitMetric(
            p.prior, p.idx, p.vals, &ws, &seed_fit);
    };

    const estimators::LeoFit serial = warm_fit(1);
    EXPECT_TRUE(serial.warmStarted);
    expectFitsExactlyEqual(warm_fit(2), serial, "2 threads");
    expectFitsExactlyEqual(warm_fit(8), serial, "8 threads");
}

TEST(LeoHotLoop, SerialIterationLoopIsAllocationFree)
{
    // The tentpole guarantee: once the workspace is bound, the EM
    // iteration loop performs zero heap allocations — on a cold fit
    // with a fresh arena (buffers are acquired in the prologue), on
    // the warm refit reusing it, and with or without observations.
    const FitProblem p = makeFitProblem(12);
    estimators::LeoOptions o;
    o.threads = 1; // pool fan-out posts tasks; the guarantee is serial
    const estimators::LeoEstimator est(o);

    estimators::setAllocationCounter(&heapAllocCount);
    linalg::Workspace ws;
    const estimators::LeoFit cold =
        est.fitMetric(p.prior, p.idx, p.vals, &ws, nullptr);
    const estimators::LeoFit warm =
        est.fitMetric(p.prior, p.idx, p.vals, &ws, &cold);
    const estimators::LeoFit no_obs =
        est.fitMetric(p.prior, {}, Vector(0), &ws, nullptr);

    // The reference path allocates every iteration, by design; its
    // count doubles as a check that the hook actually measures.
    estimators::LeoOptions oref = o;
    oref.referencePath = true;
    const estimators::LeoFit ref =
        estimators::LeoEstimator(oref).fitMetric(p.prior, p.idx,
                                                 p.vals);
    estimators::setAllocationCounter(nullptr);

    EXPECT_EQ(cold.loopAllocations, 0u);
    EXPECT_EQ(warm.loopAllocations, 0u);
    EXPECT_EQ(no_obs.loopAllocations, 0u);
    EXPECT_GT(ref.loopAllocations, 100u);
}

TEST(LeoHotLoop, WarmRefitConvergesInFewerIterations)
{
    // The point of warm starting: an incremental refit (a few extra
    // observations on the same target) resumes near the optimum.
    const FitProblem p = makeFitProblem(16);
    std::vector<std::size_t> idx8(p.idx.begin(), p.idx.begin() + 8);
    Vector vals8(8);
    for (std::size_t j = 0; j < 8; ++j)
        vals8[j] = p.vals[j];

    estimators::LeoOptions o;
    o.threads = 1;
    o.maxIterations = 8;
    const estimators::LeoEstimator est(o);
    linalg::Workspace ws;

    const estimators::LeoFit first =
        est.fitMetric(p.prior, idx8, vals8, &ws, nullptr);
    const estimators::LeoFit cold =
        est.fitMetric(p.prior, p.idx, p.vals, &ws, nullptr);
    const estimators::LeoFit warm =
        est.fitMetric(p.prior, p.idx, p.vals, &ws, &first);

    EXPECT_TRUE(warm.warmStarted);
    EXPECT_TRUE(warm.converged);
    EXPECT_LE(warm.iterations, cold.iterations);
}

TEST(LeoHotLoop, BatchWarmStartMatchesDirectWarmFit)
{
    // EstimateRequest::warmStart/fitOut plumb the same machinery
    // through the batch API.
    const FitProblem p = makeFitProblem(12);
    estimators::LeoOptions o;
    o.threads = 1;
    const estimators::LeoEstimator est(o);

    const estimators::LeoFit seed_fit =
        est.fitMetric(p.prior, p.idx, p.vals);

    CoreOnlyWorld w;
    parallel::ThreadPool pool(0);
    estimators::EstimatorBatch batch(est, pool);
    estimators::LeoFit batch_fit;
    estimators::EstimateRequest req;
    req.prior = p.prior;
    req.obsIndices = p.idx;
    req.obsValues = p.vals;
    req.warmStart = &seed_fit;
    req.fitOut = &batch_fit;
    batch.add(std::move(req));
    const auto results = batch.run(w.space);

    const estimators::LeoFit direct =
        est.fitMetric(p.prior, p.idx, p.vals, nullptr, &seed_fit);
    ASSERT_EQ(results.size(), 1u);
    expectExactlyEqual(results[0].values, direct.prediction,
                       "batch warm prediction");
    expectFitsExactlyEqual(batch_fit, direct, "batch fitOut");
}

// --------------------------------------------------- fit round trip

namespace
{

void
expectFitsBitwiseEqual(const estimators::LeoFit &a,
                       const estimators::LeoFit &b)
{
    ASSERT_EQ(a.prediction.size(), b.prediction.size());
    for (std::size_t j = 0; j < a.prediction.size(); ++j)
        EXPECT_EQ(a.prediction[j], b.prediction[j]);
    ASSERT_EQ(a.predictionVariance.size(),
              b.predictionVariance.size());
    for (std::size_t j = 0; j < a.predictionVariance.size(); ++j)
        EXPECT_EQ(a.predictionVariance[j], b.predictionVariance[j]);
    ASSERT_EQ(a.mu.size(), b.mu.size());
    for (std::size_t j = 0; j < a.mu.size(); ++j)
        EXPECT_EQ(a.mu[j], b.mu[j]);
    EXPECT_EQ(a.sigma2, b.sigma2);
    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.converged, b.converged);
    EXPECT_EQ(a.logLikelihoodTrace, b.logLikelihoodTrace);
    EXPECT_EQ(a.scale, b.scale);
    EXPECT_EQ(a.warmStarted, b.warmStarted);
    EXPECT_EQ(a.lowRank, b.lowRank);
    EXPECT_EQ(a.alphaDiag, b.alphaDiag);
    ASSERT_EQ(a.basisT.rows(), b.basisT.rows());
    ASSERT_EQ(a.basisT.cols(), b.basisT.cols());
    for (std::size_t r = 0; r < a.basisT.rows(); ++r)
        for (std::size_t c = 0; c < a.basisT.cols(); ++c)
            EXPECT_EQ(a.basisT(r, c), b.basisT(r, c));
    ASSERT_EQ(a.varCore.rows(), b.varCore.rows());
    for (std::size_t r = 0; r < a.varCore.rows(); ++r)
        for (std::size_t c = 0; c < a.varCore.cols(); ++c)
            EXPECT_EQ(a.varCore(r, c), b.varCore(r, c));
}

} // namespace

/**
 * saveFit/loadFit round-trip every field bit for bit, dense and
 * low-rank alike — the warm-start continuation from a loaded fit is
 * indistinguishable from one using the original.
 */
TEST(FitIo, RoundTripsDenseAndLowRankBitwise)
{
    CoreOnlyWorld w;
    auto prior = w.priorPerf("kmeans");
    telemetry::RandomSampler sampler;
    stats::Rng rng(41);
    workloads::ApplicationModel app(
        workloads::profileByName("kmeans"), w.machine);
    telemetry::Profiler profiler(w.monitor, w.meter);
    auto obs = profiler.sample(app, w.space, sampler, 8, rng);

    for (const auto rep : {estimators::CovarianceRep::Dense,
                           estimators::CovarianceRep::LowRank}) {
        estimators::LeoOptions opt;
        opt.representation = rep;
        estimators::LeoEstimator leo(opt);
        const auto fit =
            leo.fitMetric(prior, obs.indices, obs.performance);

        linalg::ByteWriter wtr;
        estimators::saveFit(wtr, fit);
        const std::string blob = wtr.take();
        linalg::ByteReader rdr(blob);
        const auto loaded = estimators::loadFit(rdr);
        ASSERT_TRUE(rdr.ok());
        EXPECT_TRUE(rdr.atEnd());
        ASSERT_NO_FATAL_FAILURE(expectFitsBitwiseEqual(fit, loaded));

        // Warm-starting from the loaded fit matches warm-starting
        // from the original.
        const auto warm_orig = leo.fitMetric(
            prior, obs.indices, obs.performance, nullptr, &fit);
        const auto warm_loaded = leo.fitMetric(
            prior, obs.indices, obs.performance, nullptr, &loaded);
        ASSERT_NO_FATAL_FAILURE(
            expectFitsBitwiseEqual(warm_orig, warm_loaded));
    }

    // A truncated blob fails closed.
    estimators::LeoEstimator leo;
    const auto fit =
        leo.fitMetric(prior, obs.indices, obs.performance);
    linalg::ByteWriter wtr;
    estimators::saveFit(wtr, fit);
    std::string blob = wtr.take();
    blob.resize(blob.size() / 2);
    linalg::ByteReader rdr(blob);
    (void)estimators::loadFit(rdr);
    EXPECT_FALSE(rdr.ok());
}
