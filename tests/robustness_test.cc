/**
 * @file
 * Randomized robustness harness for the online pipeline.
 *
 * Sweeps fault scenarios x sampling policies x estimators through the
 * telemetry -> estimator -> optimizer -> runtime path and asserts the
 * robustness contract end to end:
 *
 *  - no crash: no estimator throw escapes the pipeline;
 *  - all outputs finite: estimates, plans and controller decisions;
 *  - the deadline guard still escalates under corrupted estimates;
 *  - zero-fault runs are bitwise identical (0 ULP) to the bare,
 *    unwrapped pipeline.
 *
 * This suite is the acceptance gate for the ASan+UBSan preset
 * (tools/run_asan_tests.sh).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "estimators/leo.hh"
#include "estimators/offline.hh"
#include "estimators/online.hh"
#include "estimators/sanitize.hh"
#include "faults/faults.hh"
#include "linalg/error.hh"
#include "optimizer/schedule.hh"
#include "runtime/controller.hh"
#include "scenario/spec.hh"
#include "telemetry/profile_store.hh"
#include "telemetry/sampler.hh"
#include "workloads/ground_truth.hh"
#include "workloads/suite.hh"

using namespace leo;
using faults::FaultScenario;
using faults::FaultyHeartbeatMonitor;
using faults::FaultyPowerMeter;
using linalg::Vector;
using platform::ConfigSpace;
using platform::Machine;
using runtime::ControllerOptions;
using runtime::EnergyController;

namespace
{

struct World
{
    Machine machine;
    ConfigSpace space = ConfigSpace::coreOnly(machine);
    telemetry::HeartbeatMonitor monitor{0.01};
    telemetry::WattsUpMeter meter{0.005, 0.1};
    stats::Rng rng{7};
    telemetry::ProfileStore store = telemetry::ProfileStore::collect(
        workloads::standardSuite(), machine, space, monitor, meter,
        rng);

    ControllerOptions
    options(double rate, std::size_t budget = 6)
    {
        ControllerOptions o;
        o.targetRate = rate;
        o.sampleBudget = budget;
        o.idlePower = machine.spec().idleSystemPowerW;
        return o;
    }
};

struct NamedScenario
{
    std::string name;
    FaultScenario scenario;
};

/**
 * The fault sweep: each class alone, plus everything at once —
 * authored in the scenario DSL (scenario/spec.hh), so the sweep
 * exercises the same parser operators use, and the two nan-intensity
 * variants come from a grid expansion to prove the cells are a pure
 * function of the spec.
 */
std::vector<NamedScenario>
faultSweep()
{
    static const char *const kCells[] = {
        "name none\n",
        "name nan\nfault.nan 0.15\n",
        "name inf\nfault.inf 0.15\n",
        "name dropout\nfault.dropout 0.15\n",
        "name outlier\nfault.outlier 0.15\nfault.outlier_scale 25\n",
        "name stale\nfault.stale 0.25\n",
        "name mixed\nfault.nan 0.05\nfault.inf 0.05\n"
        "fault.dropout 0.05\nfault.outlier 0.05\nfault.stale 0.05\n",
    };
    std::vector<NamedScenario> sweep;
    for (const char *text : kCells) {
        const scenario::Spec spec = scenario::Spec::fromString(text);
        sweep.push_back({spec.name, spec.faults});
    }
    const scenario::Spec base = scenario::Spec::fromString("name nan\n");
    for (const scenario::Spec &spec : scenario::expandGrid(
             base, {{"fault.nan", {"0.05", "0.30"}}}))
        sweep.push_back({spec.name, spec.faults});
    return sweep;
}

/** An estimator that always fails mid-flight. */
class ThrowingEstimator : public estimators::Estimator
{
  public:
    std::string name() const override { return "throwing"; }

    estimators::MetricEstimate estimateMetric(
        const platform::ConfigSpace &, const std::vector<Vector> &,
        const std::vector<std::size_t> &,
        const Vector &) const override
    {
        fatal("synthetic estimator failure");
    }
};

/** Drive a controller for n windows against a live application. */
void
driveWindows(EnergyController &ctl,
             const workloads::ApplicationModel &app,
             const ConfigSpace &space,
             const telemetry::HeartbeatMonitor &monitor,
             const telemetry::PowerMeter &meter, stats::Rng &rng,
             std::size_t n, std::vector<std::size_t> *decisions = nullptr)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t cfg = ctl.nextConfig(rng);
        ASSERT_LT(cfg, space.size());
        if (decisions)
            decisions->push_back(cfg);
        const auto &ra = space.assignment(cfg);
        ctl.recordMeasurement({cfg, monitor.measureRate(app, ra, rng),
                               meter.read(app, ra, rng)});
    }
}

} // namespace

// ------------------------------------------------------- FaultInjector

TEST(FaultInjector, DeterministicPerSeed)
{
    FaultScenario s;
    s.nanProb = 0.2;
    s.outlierProb = 0.2;
    s.staleProb = 0.2;
    faults::FaultInjector a(s), b(s);
    s.seed += 1;
    faults::FaultInjector c(s);
    bool any_differs = false;
    for (int i = 0; i < 200; ++i) {
        const double clean = 100.0 + i;
        const double va = a.corrupt(clean);
        const double vb = b.corrupt(clean);
        const double vc = c.corrupt(clean);
        // Same seed: identical stream (NaN == NaN via bit pattern).
        EXPECT_TRUE(va == vb || (std::isnan(va) && std::isnan(vb)));
        if (vc != va && !(std::isnan(vc) && std::isnan(va)))
            any_differs = true;
    }
    EXPECT_TRUE(any_differs);
    EXPECT_EQ(a.readings(), 200u);
    EXPECT_GT(a.faultsInjected(), 0u);
}

TEST(FaultInjector, ZeroScenarioIsIdentity)
{
    faults::FaultInjector inj(FaultScenario::none());
    for (int i = 0; i < 100; ++i) {
        const double clean = 3.25 * i + 0.125;
        EXPECT_EQ(inj.corrupt(clean), clean);
    }
    EXPECT_EQ(inj.faultsInjected(), 0u);
}

TEST(FaultInjector, RejectsBadProbabilities)
{
    FaultScenario s;
    s.nanProb = 0.8;
    s.infProb = 0.8;
    EXPECT_THROW(faults::FaultInjector{s}, FatalError);
    s = FaultScenario{};
    s.dropoutProb = -0.1;
    EXPECT_THROW(faults::FaultInjector{s}, FatalError);
}

TEST(FaultyMeters, ZeroFaultWrapperIsBitwiseIdentical)
{
    World w;
    workloads::ApplicationModel app(
        workloads::profileByName("x264"), w.machine);
    const FaultyHeartbeatMonitor monitor(w.monitor,
                                         FaultScenario::none());
    const FaultyPowerMeter meter(w.meter, FaultScenario::none());
    stats::Rng ra(123), rb(123);
    for (std::size_t c = 0; c < w.space.size(); ++c) {
        const auto &assign = w.space.assignment(c);
        EXPECT_EQ(w.monitor.measureRate(app, assign, ra),
                  monitor.measureRate(app, assign, rb));
        EXPECT_EQ(w.meter.read(app, assign, ra),
                  meter.read(app, assign, rb));
    }
}

// ----------------------------------------------------------- Sanitizer

TEST(Sanitize, CleanSetPassesThroughUntouched)
{
    const std::vector<std::size_t> idx{3, 1, 7};
    const Vector vals{1.0, 2.0, 3.0};
    const auto out = estimators::sanitizeObservations(idx, vals, 10);
    EXPECT_FALSE(out.modified);
    EXPECT_EQ(out.rejected, 0u);
    EXPECT_EQ(out.merged, 0u);
    EXPECT_TRUE(estimators::observationsClean(idx, vals, 10));
}

TEST(Sanitize, RejectsNonFiniteAndNonPositive)
{
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const double inf = std::numeric_limits<double>::infinity();
    const std::vector<std::size_t> idx{0, 1, 2, 3, 4, 12};
    const Vector vals{1.0, nan, inf, 0.0, -2.0, 5.0};
    const auto out = estimators::sanitizeObservations(idx, vals, 10);
    EXPECT_TRUE(out.modified);
    // NaN, Inf, 0, negative, out-of-range index: five rejects.
    EXPECT_EQ(out.rejected, 5u);
    ASSERT_EQ(out.indices.size(), 1u);
    EXPECT_EQ(out.indices[0], 0u);
    EXPECT_EQ(out.values[0], 1.0);
}

TEST(Sanitize, MergesDuplicateIndicesByAveraging)
{
    const std::vector<std::size_t> idx{2, 5, 2, 2};
    const Vector vals{1.0, 7.0, 2.0, 3.0};
    const auto out = estimators::sanitizeObservations(idx, vals, 10);
    EXPECT_TRUE(out.modified);
    EXPECT_EQ(out.merged, 2u);
    ASSERT_EQ(out.indices.size(), 2u);
    EXPECT_EQ(out.indices[0], 2u);
    EXPECT_EQ(out.indices[1], 5u);
    EXPECT_NEAR(out.values[0], 2.0, 1e-12);
    EXPECT_EQ(out.values[1], 7.0);
}

// ------------------------------------------- Estimator boundary sweep

TEST(RobustEstimators, FaultSweepNeverThrowsAndStaysFinite)
{
    World w;
    workloads::ApplicationModel app(
        workloads::profileByName("x264"), w.machine);
    const auto prior = w.store.without("x264");

    const estimators::LeoEstimator leo;
    const estimators::OnlineEstimator online;
    const estimators::OfflineEstimator offline;
    const std::vector<const estimators::Estimator *> approaches{
        &leo, &online, &offline};

    const telemetry::RandomSampler random;
    const telemetry::UniformGridSampler grid;
    const std::vector<const telemetry::SamplingPolicy *> samplers{
        &random, &grid};

    for (const NamedScenario &ns : faultSweep()) {
        for (const telemetry::SamplingPolicy *policy : samplers) {
            SCOPED_TRACE(ns.name);
            const FaultyHeartbeatMonitor monitor(w.monitor,
                                                 ns.scenario);
            const FaultyPowerMeter meter(w.meter, ns.scenario);
            const telemetry::Profiler profiler(monitor, meter);
            stats::Rng rng(91);
            const telemetry::Observations obs = profiler.sample(
                app, w.space, *policy, 20, rng);
            for (const estimators::Estimator *approach : approaches) {
                SCOPED_TRACE(approach->name());
                const estimators::EstimationInputs inputs{
                    w.space, prior, obs};
                estimators::Estimate est;
                ASSERT_NO_THROW(est = approach->estimate(inputs));
                EXPECT_EQ(est.performance.values.size(),
                          w.space.size());
                EXPECT_EQ(est.power.values.size(), w.space.size());
                EXPECT_TRUE(est.performance.values.allFinite());
                EXPECT_TRUE(est.power.values.allFinite());
                // A finite estimate must also plan without throwing.
                const auto frontier = optimizer::paretoFrontier(
                    est.performance.values + Vector(w.space.size(), 1e-9),
                    est.power.values + Vector(w.space.size(), 1e-9));
                EXPECT_FALSE(frontier.empty());
            }
        }
    }
}

TEST(RobustEstimators, ZeroFaultEstimatesBitwiseIdentical)
{
    World w;
    workloads::ApplicationModel app(
        workloads::profileByName("bodytrack"), w.machine);
    const auto prior = w.store.without("bodytrack");

    const FaultyHeartbeatMonitor monitor(w.monitor,
                                         FaultScenario::none());
    const FaultyPowerMeter meter(w.meter, FaultScenario::none());
    const telemetry::Profiler bare(w.monitor, w.meter);
    const telemetry::Profiler wrapped(monitor, meter);
    const telemetry::RandomSampler policy;

    stats::Rng ra(17), rb(17);
    const auto obs_a = bare.sample(app, w.space, policy, 20, ra);
    const auto obs_b = wrapped.sample(app, w.space, policy, 20, rb);
    ASSERT_EQ(obs_a.indices, obs_b.indices);
    for (std::size_t j = 0; j < obs_a.size(); ++j) {
        EXPECT_EQ(obs_a.performance[j], obs_b.performance[j]);
        EXPECT_EQ(obs_a.power[j], obs_b.power[j]);
    }

    const estimators::LeoEstimator leo;
    const estimators::EstimationInputs in_a{w.space, prior, obs_a};
    const estimators::EstimationInputs in_b{w.space, prior, obs_b};
    const estimators::Estimate est_a = leo.estimate(in_a);
    const estimators::Estimate est_b = leo.estimate(in_b);
    ASSERT_EQ(est_a.performance.values.size(),
              est_b.performance.values.size());
    for (std::size_t c = 0; c < est_a.performance.values.size(); ++c) {
        EXPECT_EQ(est_a.performance.values[c],
                  est_b.performance.values[c]);
        EXPECT_EQ(est_a.power.values[c], est_b.power.values[c]);
    }
}

// --------------------------------------------------- Controller sweep

TEST(RobustController, FaultSweepSurvivesAndStaysFinite)
{
    World w;
    workloads::ApplicationModel app(
        workloads::profileByName("x264"), w.machine);
    auto gt = workloads::computeGroundTruth(app, w.space);
    const double demand = 0.5 * gt.performance.max();
    const auto prior = w.store.without("x264");

    for (const NamedScenario &ns : faultSweep()) {
        SCOPED_TRACE(ns.name);
        const FaultyHeartbeatMonitor monitor(w.monitor, ns.scenario);
        const FaultyPowerMeter meter(w.meter, ns.scenario);
        estimators::LeoEstimator leo;
        EnergyController ctl(w.space, &leo, prior,
                             w.options(demand, 6));
        stats::Rng rng(29);
        ASSERT_NO_FATAL_FAILURE(driveWindows(
            ctl, app, w.space, monitor, meter, rng, 80));
        if (ctl.hasEstimates()) {
            EXPECT_TRUE(ctl.performanceEstimate().allFinite());
            EXPECT_TRUE(ctl.powerEstimate().allFinite());
        }
        if (std::string(ns.name) == "none") {
            EXPECT_EQ(ctl.samplesRejected(), 0u);
            EXPECT_EQ(ctl.fitsFailed(), 0u);
            EXPECT_TRUE(ctl.hasEstimates());
        }
    }
}

TEST(RobustController, AllReadingsFaultedNeverFits)
{
    // Every power reading is NaN: the controller must reject every
    // sample, never reach a fit, and keep producing valid decisions.
    World w;
    workloads::ApplicationModel app(
        workloads::profileByName("x264"), w.machine);
    const auto prior = w.store.without("x264");
    FaultScenario s;
    s.nanProb = 1.0;
    const FaultyPowerMeter meter(w.meter, s);
    estimators::LeoEstimator leo;
    EnergyController ctl(w.space, &leo, prior, w.options(30.0, 5));
    stats::Rng rng(31);
    driveWindows(ctl, app, w.space, w.monitor, meter, rng, 40);
    EXPECT_EQ(ctl.state(), EnergyController::State::Sampling);
    EXPECT_EQ(ctl.samplesRejected(), 40u);
    EXPECT_FALSE(ctl.hasEstimates());
}

TEST(RobustController, OutOfBandSampleDoesNotSkipProbe)
{
    World w;
    workloads::ApplicationModel app(
        workloads::profileByName("x264"), w.machine);
    const auto prior = w.store.without("x264");
    estimators::LeoEstimator leo;
    EnergyController ctl(w.space, &leo, prior, w.options(30.0, 4));

    const std::size_t cfg = ctl.nextConfig(w.rng);
    // An out-of-band measurement of a different configuration must
    // not advance the probe plan or enter the observation set.
    const std::size_t other = (cfg + 1) % w.space.size();
    const auto &ra_other = w.space.assignment(other);
    ctl.recordMeasurement({other,
                           w.monitor.measureRate(app, ra_other, w.rng),
                           w.meter.read(app, ra_other, w.rng)});
    EXPECT_EQ(ctl.nextConfig(w.rng), cfg);
    EXPECT_EQ(ctl.state(), EnergyController::State::Sampling);

    // The planned probes still complete the round as usual.
    for (int i = 0; i < 4; ++i) {
        const std::size_t c = ctl.nextConfig(w.rng);
        const auto &ra = w.space.assignment(c);
        ctl.recordMeasurement({c, w.monitor.measureRate(app, ra, w.rng),
                               w.meter.read(app, ra, w.rng)});
    }
    EXPECT_EQ(ctl.state(), EnergyController::State::Controlling);
}

TEST(RobustController, ThrowingEstimatorFallsBackToPriorMean)
{
    World w;
    workloads::ApplicationModel app(
        workloads::profileByName("x264"), w.machine);
    const auto prior = w.store.without("x264");
    const ThrowingEstimator thrower;
    ControllerOptions opt = w.options(30.0, 4);
    opt.fallbackBackoffWindows = 3;
    EnergyController ctl(w.space, &thrower, prior, opt);

    stats::Rng rng(41);
    // Sampling round completes; the fit throws; the controller must
    // catch it, count it, and control on the prior-mean fallback.
    driveWindows(ctl, app, w.space, w.monitor, w.meter, rng, 4);
    EXPECT_EQ(ctl.state(), EnergyController::State::Controlling);
    EXPECT_EQ(ctl.fitsFailed(), 1u);
    EXPECT_TRUE(ctl.hasEstimates());
    EXPECT_TRUE(ctl.performanceEstimate().allFinite());
    EXPECT_TRUE(ctl.powerEstimate().allFinite());

    // After the backoff window the controller retries with fresh
    // probes (and fails again, forever, without ever throwing).
    driveWindows(ctl, app, w.space, w.monitor, w.meter, rng, 3);
    EXPECT_EQ(ctl.state(), EnergyController::State::Sampling);
    EXPECT_GT(ctl.fallbackWindows(), 0u);
    driveWindows(ctl, app, w.space, w.monitor, w.meter, rng, 20);
    EXPECT_GE(ctl.fitsFailed(), 2u);
}

TEST(RobustController, ThrowingEstimatorWithoutPriorRacesToIdle)
{
    World w;
    workloads::ApplicationModel app(
        workloads::profileByName("x264"), w.machine);
    const telemetry::ProfileStore empty_prior(
        std::vector<telemetry::ApplicationRecord>{});
    const ThrowingEstimator thrower;
    ControllerOptions opt = w.options(30.0, 4);
    opt.fallbackBackoffWindows = 4;
    EnergyController ctl(w.space, &thrower, empty_prior, opt);

    stats::Rng rng(43);
    driveWindows(ctl, app, w.space, w.monitor, w.meter, rng, 4);
    EXPECT_EQ(ctl.state(), EnergyController::State::Controlling);
    EXPECT_EQ(ctl.fitsFailed(), 1u);
    // No prior: no estimates; the controller races the all-resources
    // configuration rather than guessing.
    EXPECT_FALSE(ctl.hasEstimates());
    EXPECT_EQ(ctl.nextConfig(rng), w.space.size() - 1);
}

// ------------------------------------------------------ Deadline guard

TEST(RobustGuard, EscalatesUnderCorruptedEstimates)
{
    // Estimates fitted from heavily faulted telemetry still yield
    // plans whose guarded execution meets a feasible deadline.
    World w;
    workloads::ApplicationModel app(
        workloads::profileByName("swaptions"), w.machine);
    const auto prior = w.store.without("swaptions");
    auto gt = workloads::computeGroundTruth(app, w.space);
    const double idle = w.machine.spec().idleSystemPowerW;

    for (const NamedScenario &ns : faultSweep()) {
        SCOPED_TRACE(ns.name);
        const FaultyHeartbeatMonitor monitor(w.monitor, ns.scenario);
        const FaultyPowerMeter meter(w.meter, ns.scenario);
        const telemetry::Profiler profiler(monitor, meter);
        const telemetry::RandomSampler policy;
        stats::Rng rng(53);
        const auto obs =
            profiler.sample(app, w.space, policy, 20, rng);
        const estimators::LeoEstimator leo;
        const estimators::EstimationInputs inputs{w.space, prior, obs};
        const estimators::Estimate est = leo.estimate(inputs);
        ASSERT_TRUE(est.performance.values.allFinite());

        optimizer::PerformanceConstraint constraint;
        constraint.deadlineSeconds = 10.0;
        constraint.work = 0.5 * gt.performance.max() * 10.0;
        const optimizer::Schedule plan = optimizer::planMinimalEnergy(
            est.performance.values, est.power.values, idle,
            constraint);
        EXPECT_TRUE(std::isfinite(plan.predictedEnergy));
        const optimizer::ExecutionResult run =
            optimizer::executeScheduleGuarded(plan, gt.performance,
                                              gt.power, idle,
                                              constraint);
        EXPECT_TRUE(run.deadlineMet);
        EXPECT_TRUE(std::isfinite(run.energyJoules));
    }
}

// ------------------------------------------------ 0-ULP clean identity

TEST(RobustPipeline, ZeroFaultControllerBitwiseIdenticalToBare)
{
    // The whole closed loop — wrapped in zero-fault injectors, with
    // all sanitization engaged — must reproduce the bare pipeline's
    // decisions and fit outputs exactly (0 ULP).
    World w;
    workloads::ApplicationModel app(
        workloads::profileByName("x264"), w.machine);
    auto gt = workloads::computeGroundTruth(app, w.space);
    const double demand = 0.5 * gt.performance.max();
    const auto prior = w.store.without("x264");

    const FaultyHeartbeatMonitor monitor(w.monitor,
                                         FaultScenario::none());
    const FaultyPowerMeter meter(w.meter, FaultScenario::none());

    estimators::LeoEstimator leo_a, leo_b;
    EnergyController bare(w.space, &leo_a, prior,
                          w.options(demand, 6));
    EnergyController wrapped(w.space, &leo_b, prior,
                             w.options(demand, 6));
    stats::Rng ra(61), rb(61);
    std::vector<std::size_t> dec_a, dec_b;
    driveWindows(bare, app, w.space, w.monitor, w.meter, ra, 60,
                 &dec_a);
    driveWindows(wrapped, app, w.space, monitor, meter, rb, 60,
                 &dec_b);

    EXPECT_EQ(dec_a, dec_b);
    ASSERT_TRUE(bare.hasEstimates());
    ASSERT_TRUE(wrapped.hasEstimates());
    ASSERT_EQ(bare.performanceEstimate().size(),
              wrapped.performanceEstimate().size());
    for (std::size_t c = 0; c < bare.performanceEstimate().size();
         ++c) {
        EXPECT_EQ(bare.performanceEstimate()[c],
                  wrapped.performanceEstimate()[c]);
        EXPECT_EQ(bare.powerEstimate()[c], wrapped.powerEstimate()[c]);
    }
    EXPECT_EQ(wrapped.samplesRejected(), 0u);
    EXPECT_EQ(wrapped.fitsFailed(), 0u);
    EXPECT_EQ(wrapped.fallbackWindows(), 0u);
}
