/**
 * @file
 * Tests for leo::service — the multi-tenant serving core.
 *
 * The load-bearing properties:
 *  - per-tenant schedules are invariant under shard count and pool
 *    worker count (sharded dispatch erases producer interleaving);
 *  - a tenant served through the deferred batched fit path follows
 *    bitwise the same schedule as a standalone inline-fitting
 *    controller over the same samples;
 *  - the cold-fit cache changes cost, never behavior;
 *  - a snapshot restored into a fresh service resumes every tenant's
 *    schedule bit for bit, dense and low-rank, with incremental
 *    refit state, across the fault-scenario sweep.
 */

#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "faults/faults.hh"
#include "linalg/serialize.hh"
#include "obs/obs.hh"
#include "service/service.hh"
#include "telemetry/profile_store.hh"
#include "workloads/ground_truth.hh"
#include "workloads/suite.hh"

using namespace leo;
using platform::ConfigSpace;
using platform::Machine;
using service::Service;
using service::ServiceOptions;
using service::TenantConfig;

namespace
{

/** Shared measurement world; one per fixture. */
struct World
{
    Machine machine;
    ConfigSpace space = ConfigSpace::coreOnly(machine);
    telemetry::HeartbeatMonitor monitor{0.01};
    telemetry::WattsUpMeter meter{0.005, 0.1};
    stats::Rng store_rng{7};
    telemetry::ProfileStore store = telemetry::ProfileStore::collect(
        workloads::standardSuite(), machine, space, monitor, meter,
        store_rng);
    std::shared_ptr<const telemetry::ProfileStore> prior =
        std::make_shared<const telemetry::ProfileStore>(
            store.without("x264"));
    workloads::ApplicationModel app{workloads::profileByName("x264"),
                                    machine};
    workloads::GroundTruth gt =
        workloads::computeGroundTruth(app, space);

    ServiceOptions
    serviceOptions(std::size_t shards) const
    {
        ServiceOptions o;
        o.shards = shards;
        o.controller.targetRate = 0.5 * gt.performance.max();
        o.controller.sampleBudget = 6;
        o.controller.idlePower = machine.spec().idleSystemPowerW;
        return o;
    }

    TenantConfig
    tenant(std::size_t i) const
    {
        TenantConfig c;
        c.appId = "x264";
        c.targetRate = (0.4 + 0.1 * static_cast<double>(i % 3)) *
                       gt.performance.max();
        c.seed = 101 + i;
        return c;
    }
};

/**
 * Drive every tenant through `windows` windows: one nextConfig +
 * submit per tenant, one tick per round. Appends each tenant's
 * accepted configurations to `schedules`.
 */
void
driveFleet(Service &svc, const World &w,
           const telemetry::HeartbeatMonitor &monitor,
           const telemetry::PowerMeter &meter,
           const std::vector<std::uint64_t> &ids,
           std::vector<stats::Rng> &meas_rngs, std::size_t windows,
           std::vector<std::vector<std::size_t>> &schedules)
{
    ASSERT_EQ(ids.size(), meas_rngs.size());
    schedules.resize(ids.size());
    for (std::size_t round = 0; round < windows; ++round) {
        for (std::size_t t = 0; t < ids.size(); ++t) {
            const std::size_t cfg = svc.nextConfig(ids[t]);
            ASSERT_LT(cfg, w.space.size());
            schedules[t].push_back(cfg);
            const auto &ra = w.space.assignment(cfg);
            ASSERT_TRUE(svc.submit(
                ids[t],
                {cfg, monitor.measureRate(w.app, ra, meas_rngs[t]),
                 meter.read(w.app, ra, meas_rngs[t])}));
        }
        svc.tick();
    }
}

std::vector<stats::Rng>
measurementRngs(std::size_t n)
{
    std::vector<stats::Rng> rngs;
    for (std::size_t t = 0; t < n; ++t)
        rngs.emplace_back(900 + t);
    return rngs;
}

} // namespace

// -------------------------------------------------- admission basics

TEST(Service, AdmitRejectClose)
{
    World w;
    estimators::LeoEstimator leo;
    parallel::ThreadPool pool(0);
    ServiceOptions opt = w.serviceOptions(4);
    opt.maxTenants = 2;
    Service svc(w.space, leo, w.prior, pool, opt);

    const auto a = svc.admit(w.tenant(0));
    const auto b = svc.admit(w.tenant(1));
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_NE(*a, *b);
    EXPECT_EQ(svc.activeTenants(), 2u);

    // At capacity, and bad demands are rejected outright.
    EXPECT_FALSE(svc.admit(w.tenant(2)).has_value());
    TenantConfig bad = w.tenant(3);
    bad.targetRate = 0.0;
    EXPECT_FALSE(svc.admit(bad).has_value());

    EXPECT_TRUE(svc.close(*a));
    EXPECT_FALSE(svc.close(*a));
    EXPECT_EQ(svc.activeTenants(), 1u);

    const auto snap = svc.metrics().snapshot();
    EXPECT_EQ(snap.counterOr(obs::names::kServiceTenantsAdmitted),
              2u);
    EXPECT_EQ(snap.counterOr(obs::names::kServiceTenantsRejected),
              2u);
    EXPECT_EQ(snap.counterOr(obs::names::kServiceTenantsClosed), 1u);
}

TEST(Service, SubmitToUnknownTenantIsCountedDrop)
{
    World w;
    estimators::LeoEstimator leo;
    parallel::ThreadPool pool(0);
    Service svc(w.space, leo, w.prior, pool, w.serviceOptions(2));
    EXPECT_FALSE(svc.submit(1234, {0, 1.0, 1.0}));
    EXPECT_EQ(svc.metrics().snapshot().counterOr(
                  obs::names::kServiceSamplesDropped),
              1u);
}

// --------------------------------------- shard/thread-count identity

/**
 * The same fleet replayed at 1, 4 and 16 shards — and different pool
 * worker counts — produces bitwise-identical per-tenant schedules:
 * shard layout is a throughput knob, never a behavior knob.
 */
TEST(Service, ScheduleInvariantUnderShardsAndThreads)
{
    World w;
    estimators::LeoEstimator leo;
    constexpr std::size_t kTenants = 5;
    constexpr std::size_t kWindows = 24;

    auto run = [&](std::size_t shards, std::size_t workers,
                   std::vector<std::vector<std::size_t>> &schedules) {
        parallel::ThreadPool pool(workers);
        Service svc(w.space, leo, w.prior, pool,
                    w.serviceOptions(shards));
        std::vector<std::uint64_t> ids;
        for (std::size_t t = 0; t < kTenants; ++t) {
            const auto id = svc.admit(w.tenant(t));
            ASSERT_TRUE(id.has_value());
            ids.push_back(*id);
        }
        auto rngs = measurementRngs(kTenants);
        ASSERT_NO_FATAL_FAILURE(driveFleet(svc, w, w.monitor,
                                           w.meter, ids, rngs,
                                           kWindows, schedules));
    };

    std::vector<std::vector<std::size_t>> one, four, sixteen;
    run(1, 0, one);
    run(4, 2, four);
    run(16, 3, sixteen);

    ASSERT_EQ(one.size(), four.size());
    ASSERT_EQ(one.size(), sixteen.size());
    for (std::size_t t = 0; t < one.size(); ++t) {
        EXPECT_EQ(one[t], four[t]) << "tenant " << t;
        EXPECT_EQ(one[t], sixteen[t]) << "tenant " << t;
    }
}

// ------------------------------------ deferred fit == inline fit

/**
 * A tenant served through the service (deferred fits, batched EM,
 * shard queues) follows bitwise the same schedule as a standalone
 * controller fitting inline from the same samples — the deferred
 * path is a scheduling transformation, not a model change.
 */
TEST(Service, MatchesStandaloneInlineController)
{
    World w;
    estimators::LeoEstimator leo;
    parallel::ThreadPool pool(2);
    Service svc(w.space, leo, w.prior, pool, w.serviceOptions(4));

    constexpr std::size_t kTenants = 3;
    constexpr std::size_t kWindows = 30;
    std::vector<std::uint64_t> ids;
    std::vector<std::unique_ptr<runtime::EnergyController>> solo;
    std::vector<stats::Rng> solo_rngs;
    for (std::size_t t = 0; t < kTenants; ++t) {
        const TenantConfig cfg = w.tenant(t);
        const auto id = svc.admit(cfg);
        ASSERT_TRUE(id.has_value());
        ids.push_back(*id);
        runtime::ControllerOptions copts =
            w.serviceOptions(4).controller;
        copts.targetRate = cfg.targetRate;
        solo.push_back(std::make_unique<runtime::EnergyController>(
            w.space, &leo, *w.prior, copts));
        solo_rngs.emplace_back(cfg.seed);
    }

    auto svc_meas = measurementRngs(kTenants);
    auto solo_meas = measurementRngs(kTenants);
    for (std::size_t round = 0; round < kWindows; ++round) {
        for (std::size_t t = 0; t < kTenants; ++t) {
            const std::size_t via_service = svc.nextConfig(ids[t]);
            const std::size_t via_solo =
                solo[t]->nextConfig(solo_rngs[t]);
            ASSERT_EQ(via_service, via_solo)
                << "tenant " << t << " window " << round;
            const auto &ra = w.space.assignment(via_service);
            const telemetry::Sample s{
                via_service,
                w.monitor.measureRate(w.app, ra, svc_meas[t]),
                w.meter.read(w.app, ra, svc_meas[t])};
            // Keep the solo measurement stream in lockstep.
            (void)w.monitor.measureRate(w.app, ra, solo_meas[t]);
            (void)w.meter.read(w.app, ra, solo_meas[t]);
            ASSERT_TRUE(svc.submit(ids[t], s));
            solo[t]->recordMeasurement(s);
        }
        svc.tick();
    }
    for (std::size_t t = 0; t < kTenants; ++t)
        EXPECT_EQ(solo[t]->state(),
                  runtime::EnergyController::State::Controlling);
}

// -------------------------------------------------- cold-fit cache

/**
 * Two tenants of the same application with identical observation
 * sets share one cold fit: the second is served from the cache
 * (counted) and follows exactly the schedule of the first.
 */
TEST(Service, ColdFitCacheServesIdenticalTenant)
{
    World w;
    estimators::LeoEstimator leo;
    parallel::ThreadPool pool(0);
    Service svc(w.space, leo, w.prior, pool, w.serviceOptions(4));

    constexpr std::size_t kWindows = 12;
    const auto a = svc.admit(w.tenant(0));
    ASSERT_TRUE(a.has_value());
    std::vector<std::vector<std::size_t>> sched_a;
    {
        std::vector<stats::Rng> rngs;
        rngs.emplace_back(900);
        ASSERT_NO_FATAL_FAILURE(driveFleet(svc, w, w.monitor,
                                           w.meter, {*a}, rngs,
                                           kWindows, sched_a));
    }

    // Same app, same seed, same measurement stream: the cold fit is
    // a cache hit, and the schedule replays bit for bit.
    const auto b = svc.admit(w.tenant(0));
    ASSERT_TRUE(b.has_value());
    std::vector<std::vector<std::size_t>> sched_b;
    {
        std::vector<stats::Rng> rngs;
        rngs.emplace_back(900);
        ASSERT_NO_FATAL_FAILURE(driveFleet(svc, w, w.monitor,
                                           w.meter, {*b}, rngs,
                                           kWindows, sched_b));
    }

    EXPECT_EQ(sched_a[0], sched_b[0]);
    const auto snap = svc.metrics().snapshot();
    EXPECT_EQ(snap.counterOr(obs::names::kServiceCacheHits), 1u);
    EXPECT_EQ(snap.counterOr(obs::names::kServiceCacheMisses), 1u);

    // And the cache is cost-only: a cacheless service produces the
    // same schedules.
    ServiceOptions nocache = w.serviceOptions(4);
    nocache.fitCacheCapacity = 0;
    Service plain(w.space, leo, w.prior, pool, nocache);
    const auto c = plain.admit(w.tenant(0));
    ASSERT_TRUE(c.has_value());
    std::vector<std::vector<std::size_t>> sched_c;
    {
        std::vector<stats::Rng> rngs;
        rngs.emplace_back(900);
        ASSERT_NO_FATAL_FAILURE(driveFleet(plain, w, w.monitor,
                                           w.meter, {*c}, rngs,
                                           kWindows, sched_c));
    }
    EXPECT_EQ(sched_a[0], sched_c[0]);
    EXPECT_EQ(plain.metrics().snapshot().counterOr(
                  obs::names::kServiceCacheHits),
              0u);
}

// ----------------------------------------------- concurrent submit

/**
 * submit() from many threads concurrently: every sample is either
 * applied at the next tick or counted as a drop — none vanish.
 * (This is the test the TSan preset leans on.)
 */
TEST(Service, ConcurrentSubmitAccountsForEverySample)
{
    World w;
    estimators::LeoEstimator leo;
    parallel::ThreadPool pool(2);
    ServiceOptions opt = w.serviceOptions(4);
    opt.queueCapacity = 64; // Small ring: force some drops.
    Service svc(w.space, leo, w.prior, pool, opt);

    constexpr std::size_t kProducers = 4;
    constexpr std::size_t kPerProducer = 200;
    std::vector<std::uint64_t> ids;
    for (std::size_t t = 0; t < kProducers; ++t) {
        const auto id = svc.admit(w.tenant(t));
        ASSERT_TRUE(id.has_value());
        ids.push_back(*id);
    }

    std::vector<std::thread> producers;
    for (std::size_t t = 0; t < kProducers; ++t) {
        producers.emplace_back([&svc, &ids, t] {
            for (std::size_t i = 0; i < kPerProducer; ++i)
                (void)svc.submit(ids[t], {0, 1.0, 1.0});
        });
    }
    for (auto &p : producers)
        p.join();
    svc.tick();

    const auto snap = svc.metrics().snapshot();
    const std::uint64_t enqueued =
        snap.counterOr(obs::names::kServiceSamplesEnqueued);
    const std::uint64_t dropped =
        snap.counterOr(obs::names::kServiceSamplesDropped);
    const std::uint64_t processed =
        snap.counterOr(obs::names::kServiceWindowsProcessed);
    EXPECT_EQ(enqueued + dropped, kProducers * kPerProducer);
    EXPECT_EQ(processed, enqueued);
}

// ------------------------------------------------ snapshot/restore

namespace
{

/** Fault scenarios the snapshot property must hold across (mirrors
 *  property_test's refit sweep). */
std::vector<std::pair<const char *, faults::FaultScenario>>
faultSweep()
{
    std::vector<std::pair<const char *, faults::FaultScenario>> v;
    v.push_back({"none", faults::FaultScenario::none()});
    faults::FaultScenario s;
    s.nanProb = 0.10;
    v.push_back({"nan", s});
    s = faults::FaultScenario{};
    s.outlierProb = 0.10;
    s.outlierScale = 25.0;
    v.push_back({"outlier", s});
    s = faults::FaultScenario{};
    s.nanProb = 0.05;
    s.dropoutProb = 0.05;
    s.staleProb = 0.05;
    v.push_back({"mixed", s});
    return v;
}

} // namespace

/**
 * Snapshot mid-run (with samples still queued), restore into a fresh
 * service, and continue both side by side over one shared sample
 * stream: every tenant's remaining schedule is bitwise identical.
 * Parameter = scenario index * 2 + (0 dense / 1 low-rank with
 * incremental refits).
 */
class ServiceSnapshotProperty
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(ServiceSnapshotProperty, RestoredFleetResumesBitwise)
{
    const auto sweep = faultSweep();
    const auto &[name, scenario] = sweep[GetParam() / 2];
    const bool lowrank = (GetParam() % 2) == 1;
    SCOPED_TRACE(name);
    SCOPED_TRACE(lowrank ? "lowrank+incremental" : "dense");

    World w;
    estimators::LeoOptions lopt;
    if (lowrank)
        lopt.representation = estimators::CovarianceRep::LowRank;
    estimators::LeoEstimator leo(lopt);
    ServiceOptions opt = w.serviceOptions(4);
    opt.controller.onlineSampleWindow = 8;
    if (lowrank)
        opt.controller.refitMode = runtime::RefitMode::Incremental;

    parallel::ThreadPool pool(2);
    Service original(w.space, leo, w.prior, pool, opt);

    constexpr std::size_t kTenants = 3;
    constexpr std::size_t kBefore = 20;
    constexpr std::size_t kAfter = 14;
    std::vector<std::uint64_t> ids;
    for (std::size_t t = 0; t < kTenants; ++t) {
        const auto id = original.admit(w.tenant(t));
        ASSERT_TRUE(id.has_value());
        ids.push_back(*id);
    }

    const faults::FaultyHeartbeatMonitor fmon(w.monitor, scenario);
    const faults::FaultyPowerMeter fmet(w.meter, scenario);
    auto rngs = measurementRngs(kTenants);
    std::vector<std::vector<std::size_t>> before;
    ASSERT_NO_FATAL_FAILURE(driveFleet(original, w, fmon, fmet, ids,
                                       rngs, kBefore, before));

    // Leave one un-ticked batch in the shard queues so the snapshot
    // carries in-flight samples, not just controller state.
    for (std::size_t t = 0; t < kTenants; ++t) {
        const std::size_t cfg = original.nextConfig(ids[t]);
        const auto &ra = w.space.assignment(cfg);
        ASSERT_TRUE(original.submit(
            ids[t], {cfg, fmon.measureRate(w.app, ra, rngs[t]),
                     fmet.read(w.app, ra, rngs[t])}));
    }

    linalg::ByteWriter writer;
    original.saveSnapshot(writer);
    const std::string blob = writer.take();

    parallel::ThreadPool pool_b(0); // Different worker count too.
    ServiceOptions opt_b = opt;
    opt_b.shards = 4; // Restore requires the same shard count.
    Service restored(w.space, leo, w.prior, pool_b, opt_b);
    linalg::ByteReader reader(blob);
    ASSERT_TRUE(restored.restoreSnapshot(reader));
    EXPECT_TRUE(reader.atEnd());
    EXPECT_EQ(restored.activeTenants(), kTenants);

    original.tick();
    restored.tick();

    // Continue both fleets over one shared measurement stream.
    for (std::size_t round = 0; round < kAfter; ++round) {
        for (std::size_t t = 0; t < kTenants; ++t) {
            const std::size_t cfg_o = original.nextConfig(ids[t]);
            const std::size_t cfg_r = restored.nextConfig(ids[t]);
            ASSERT_EQ(cfg_o, cfg_r)
                << "tenant " << t << " window " << round;
            const auto &ra = w.space.assignment(cfg_o);
            const telemetry::Sample s{
                cfg_o, fmon.measureRate(w.app, ra, rngs[t]),
                fmet.read(w.app, ra, rngs[t])};
            ASSERT_TRUE(original.submit(ids[t], s));
            ASSERT_TRUE(restored.submit(ids[t], s));
        }
        original.tick();
        restored.tick();
    }
}

INSTANTIATE_TEST_SUITE_P(FaultSweep, ServiceSnapshotProperty,
                         ::testing::Range<std::size_t>(0, 8));

TEST(Service, RestoreRejectsCorruptSnapshot)
{
    World w;
    estimators::LeoEstimator leo;
    parallel::ThreadPool pool(0);
    Service svc(w.space, leo, w.prior, pool, w.serviceOptions(2));
    ASSERT_TRUE(svc.admit(w.tenant(0)).has_value());

    linalg::ByteWriter writer;
    svc.saveSnapshot(writer);
    std::string blob = writer.take();

    // Truncation fails cleanly and empties the service.
    const std::string truncated = blob.substr(0, blob.size() / 2);
    linalg::ByteReader r1(truncated);
    EXPECT_FALSE(svc.restoreSnapshot(r1));
    EXPECT_EQ(svc.activeTenants(), 0u);

    // A flipped version word fails before any session is built.
    blob[0] = static_cast<char>(blob[0] ^ 0x7f);
    linalg::ByteReader r2(blob);
    EXPECT_FALSE(svc.restoreSnapshot(r2));
    EXPECT_EQ(svc.activeTenants(), 0u);
}

TEST(Service, PriorRefreshInstallsAtTickBoundary)
{
    World w;
    estimators::LeoEstimator leo;
    parallel::ThreadPool pool(0);
    Service svc(w.space, leo, w.prior, pool, w.serviceOptions(2));

    auto refreshed =
        std::make_shared<const telemetry::ProfileStore>(
            w.store.without("swish"));
    svc.refreshPrior(refreshed);
    EXPECT_EQ(svc.metrics().snapshot().counterOr(
                  obs::names::kServicePriorRefreshes),
              0u);
    svc.tick();
    EXPECT_EQ(svc.metrics().snapshot().counterOr(
                  obs::names::kServicePriorRefreshes),
              1u);
    // New admissions bind the refreshed prior without disturbance.
    EXPECT_TRUE(svc.admit(w.tenant(0)).has_value());
}

// ------------------------------------------------------ shard queue

TEST(ShardQueue, RoundsCapacityAndReportsIt)
{
    service::ShardQueue q(100);
    EXPECT_EQ(q.capacity(), 128u);
    service::ShardQueue q1(1);
    EXPECT_EQ(q1.capacity(), 1u);
}

TEST(ShardQueue, FifoAndFullRejection)
{
    service::ShardQueue q(4);
    service::InboundSample s;
    for (std::uint64_t i = 0; i < 4; ++i) {
        s.tenant = 1;
        s.seq = i;
        EXPECT_TRUE(q.push(s));
    }
    s.seq = 99;
    EXPECT_FALSE(q.push(s)); // Full.
    for (std::uint64_t i = 0; i < 4; ++i) {
        service::InboundSample out;
        ASSERT_TRUE(q.pop(out));
        EXPECT_EQ(out.seq, i);
    }
    service::InboundSample out;
    EXPECT_FALSE(q.pop(out)); // Empty.
    EXPECT_TRUE(q.push(s));   // Usable again after wrap.
    ASSERT_TRUE(q.pop(out));
    EXPECT_EQ(out.seq, 99u);
}

TEST(ShardQueue, ConcurrentProducersLoseNothing)
{
    service::ShardQueue q(1024);
    constexpr std::uint64_t kProducers = 4;
    constexpr std::uint64_t kEach = 200;
    std::vector<std::thread> producers;
    for (std::uint64_t t = 0; t < kProducers; ++t) {
        producers.emplace_back([&q, t] {
            service::InboundSample s;
            s.tenant = t;
            for (std::uint64_t i = 0; i < kEach; ++i) {
                s.seq = i;
                while (!q.push(s)) {
                }
            }
        });
    }
    for (auto &p : producers)
        p.join();

    std::vector<std::uint64_t> next(kProducers, 0);
    service::InboundSample out;
    std::size_t total = 0;
    while (q.pop(out)) {
        ++total;
        // Per-producer FIFO even under contention.
        EXPECT_EQ(out.seq, next[out.tenant]++);
    }
    EXPECT_EQ(total, kProducers * kEach);
}

// -------------------------------------------------------- fit cache

TEST(FitCache, EvictsLeastRecentlyUsedDeterministically)
{
    service::FitCache cache(2);
    service::FitCacheKey a{"a", 0, 0, 1};
    service::FitCacheKey b{"b", 0, 0, 2};
    service::FitCacheKey c{"c", 0, 0, 3};
    cache.insert(a, {});
    cache.insert(b, {});
    EXPECT_NE(cache.lookup(a), nullptr); // a is now most recent.
    cache.insert(c, {});                 // Evicts b.
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(cache.evictions(), 1u);
    EXPECT_NE(cache.lookup(a), nullptr);
    EXPECT_EQ(cache.lookup(b), nullptr);
    EXPECT_NE(cache.lookup(c), nullptr);
}

TEST(FitCache, ZeroCapacityDisables)
{
    service::FitCache cache(0);
    service::FitCacheKey k{"a", 0, 0, 1};
    cache.insert(k, {});
    EXPECT_EQ(cache.lookup(k), nullptr);
    EXPECT_EQ(cache.size(), 0u);
}

TEST(FitCache, OverwriteRefreshesWithoutEviction)
{
    service::FitCache cache(2);
    service::FitCacheKey a{"a", 0, 0, 1};
    service::CachedFit fit;
    fit.perfEstimate.reliable = true;
    cache.insert(a, {});
    cache.insert(a, std::move(fit));
    EXPECT_EQ(cache.size(), 1u);
    EXPECT_EQ(cache.evictions(), 0u);
    const service::CachedFit *got = cache.lookup(a);
    ASSERT_NE(got, nullptr);
    EXPECT_TRUE(got->perfEstimate.reliable);
}

// ---------------------------------------------- global co-scheduling

namespace
{

/** Two-tenant fleet options with global planning on. */
ServiceOptions
planningOptions(const World &w, std::size_t shards)
{
    ServiceOptions o = w.serviceOptions(shards);
    o.globalPlanning = true;
    o.planningHorizonSeconds = 2.0;
    return o;
}

TenantConfig
planningTenant(const World &w, std::size_t i)
{
    TenantConfig c = w.tenant(i);
    // Modest demands so the shared machine stays feasible, with
    // staggered deadlines so the planner has real intervals.
    c.targetRate = (0.15 + 0.05 * static_cast<double>(i)) *
                   w.gt.performance.max();
    c.deadlineSeconds = 1.0 + 0.5 * static_cast<double>(i);
    return c;
}

} // namespace

TEST(ServiceGlobal, TickProducesAFleetPlanOnceEstimatesExist)
{
    World w;
    estimators::LeoEstimator leo;
    parallel::ThreadPool pool(0);
    Service svc(w.space, leo, w.prior, pool, planningOptions(w, 4));

    std::vector<std::uint64_t> ids;
    for (std::size_t t = 0; t < 2; ++t)
        ids.push_back(*svc.admit(planningTenant(w, t)));

    // Before anyone has estimates there is nothing to plan.
    service::TickReport early = svc.tick();
    EXPECT_EQ(early.tenantsPlanned, 0u);
    EXPECT_EQ(svc.globalPlan().perTenant.size(), 0u);
    EXPECT_EQ(svc.tenantSchedule(ids[0]), nullptr);

    auto rngs = measurementRngs(ids.size());
    std::vector<std::vector<std::size_t>> schedules;
    driveFleet(svc, w, w.monitor, w.meter, ids, rngs, 10, schedules);

    service::TickReport report = svc.tick();
    EXPECT_EQ(report.tenantsPlanned, 2u);
    EXPECT_TRUE(report.globalFeasible);
    EXPECT_GT(report.globalPredictedEnergy, 0.0);

    const auto &plan = svc.globalPlan();
    ASSERT_EQ(plan.perTenant.size(), 2u);
    EXPECT_TRUE(plan.feasible);
    for (const std::uint64_t id : ids) {
        const optimizer::Schedule *slice = svc.tenantSchedule(id);
        ASSERT_NE(slice, nullptr);
        EXPECT_FALSE(slice->parts.empty());
    }
    EXPECT_EQ(svc.tenantSchedule(9999), nullptr);
    EXPECT_GT(svc.metrics().snapshot().counterOr(
                  obs::names::kServiceGlobalReplans, 0),
              0u);

    // Closing a tenant invalidates the stale fleet plan until the
    // next tick rebuilds it without the departed tenant.
    EXPECT_TRUE(svc.close(ids[1]));
    EXPECT_EQ(svc.tenantSchedule(ids[0]), nullptr);
    svc.tick();
    EXPECT_NE(svc.tenantSchedule(ids[0]), nullptr);
    EXPECT_EQ(svc.tenantSchedule(ids[1]), nullptr);
    EXPECT_EQ(svc.globalPlan().perTenant.size(), 1u);
}

TEST(ServiceGlobal, FleetPlanInvariantUnderShardsAndThreads)
{
    World w;
    estimators::LeoEstimator leo;

    struct Run
    {
        double energy = 0.0;
        bool feasible = false;
        std::vector<optimizer::Schedule> slices;
    };
    auto runFleet = [&](std::size_t shards, std::size_t workers) {
        parallel::ThreadPool pool(workers);
        Service svc(w.space, leo, w.prior, pool,
                    planningOptions(w, shards));
        std::vector<std::uint64_t> ids;
        for (std::size_t t = 0; t < 3; ++t)
            ids.push_back(*svc.admit(planningTenant(w, t)));
        auto rngs = measurementRngs(ids.size());
        std::vector<std::vector<std::size_t>> schedules;
        driveFleet(svc, w, w.monitor, w.meter, ids, rngs, 12,
                   schedules);
        Run r;
        r.energy = svc.globalPlan().predictedEnergy;
        r.feasible = svc.globalPlan().feasible;
        for (const std::uint64_t id : ids)
            r.slices.push_back(*svc.tenantSchedule(id));
        return r;
    };

    const Run base = runFleet(1, 0);
    for (const auto &[shards, workers] :
         {std::pair<std::size_t, std::size_t>{2, 2},
          std::pair<std::size_t, std::size_t>{7, 4}}) {
        const Run other = runFleet(shards, workers);
        // Bitwise: the plan is a pure function of the session table.
        EXPECT_EQ(base.energy, other.energy)
            << shards << " shards " << workers << " workers";
        EXPECT_EQ(base.feasible, other.feasible);
        ASSERT_EQ(base.slices.size(), other.slices.size());
        for (std::size_t t = 0; t < base.slices.size(); ++t) {
            ASSERT_EQ(base.slices[t].parts.size(),
                      other.slices[t].parts.size());
            for (std::size_t i = 0; i < base.slices[t].parts.size();
                 ++i) {
                EXPECT_EQ(base.slices[t].parts[i].configIndex,
                          other.slices[t].parts[i].configIndex);
                EXPECT_EQ(base.slices[t].parts[i].seconds,
                          other.slices[t].parts[i].seconds);
            }
        }
    }
}

TEST(ServiceGlobal, RestorePlusTickReproducesThePlan)
{
    World w;
    estimators::LeoEstimator leo;
    parallel::ThreadPool pool(0);
    Service svc(w.space, leo, w.prior, pool, planningOptions(w, 4));

    std::vector<std::uint64_t> ids;
    for (std::size_t t = 0; t < 2; ++t)
        ids.push_back(*svc.admit(planningTenant(w, t)));
    auto rngs = measurementRngs(ids.size());
    std::vector<std::vector<std::size_t>> schedules;
    driveFleet(svc, w, w.monitor, w.meter, ids, rngs, 10, schedules);

    linalg::ByteWriter blob;
    svc.saveSnapshot(blob);

    Service copy(w.space, leo, w.prior, pool, planningOptions(w, 4));
    linalg::ByteReader r(blob.bytes());
    ASSERT_TRUE(copy.restoreSnapshot(r));
    // The fleet plan is derived state: absent after restore, rebuilt
    // bitwise by the next tick.
    EXPECT_EQ(copy.globalPlan().perTenant.size(), 0u);
    svc.tick();
    copy.tick();

    EXPECT_EQ(copy.globalPlan().predictedEnergy,
              svc.globalPlan().predictedEnergy);
    EXPECT_EQ(copy.globalPlan().feasible, svc.globalPlan().feasible);
    for (const std::uint64_t id : ids) {
        const optimizer::Schedule *a = svc.tenantSchedule(id);
        const optimizer::Schedule *b = copy.tenantSchedule(id);
        ASSERT_NE(a, nullptr);
        ASSERT_NE(b, nullptr);
        ASSERT_EQ(a->parts.size(), b->parts.size());
        for (std::size_t i = 0; i < a->parts.size(); ++i) {
            EXPECT_EQ(a->parts[i].configIndex,
                      b->parts[i].configIndex);
            EXPECT_EQ(a->parts[i].seconds, b->parts[i].seconds);
        }
    }
}

TEST(ServiceGlobal, RejectsBadDeadlines)
{
    World w;
    estimators::LeoEstimator leo;
    parallel::ThreadPool pool(0);
    Service svc(w.space, leo, w.prior, pool, planningOptions(w, 2));
    TenantConfig bad = planningTenant(w, 0);
    bad.deadlineSeconds = -1.0;
    EXPECT_FALSE(svc.admit(bad).has_value());
    bad.deadlineSeconds =
        std::numeric_limits<double>::infinity();
    EXPECT_FALSE(svc.admit(bad).has_value());
}
