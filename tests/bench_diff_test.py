#!/usr/bin/env python3
"""Unit checks for tools/bench_diff.py.

The compare logic must pair benchmarks by name, normalize time units,
prefer ``_median`` aggregate rows, flag regressions past the
threshold, and — critically for a growing bench suite — tolerate keys
present in only one file (new or retired benchmarks must never fail
the comparison). Registered with ctest so the tier-1 suite runs it.
"""

import json
import os
import sys
import tempfile
import unittest

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..",
                 "tools"))
import bench_diff  # noqa: E402


def bench_file(rows):
    """Write a minimal google-benchmark JSON file; return its path."""
    fd, path = tempfile.mkstemp(suffix=".json")
    with os.fdopen(fd, "w") as f:
        json.dump({"benchmarks": rows}, f)
    return path


def row(name, ms, unit="ms", aggregate=None):
    r = {"name": name, "real_time": ms, "time_unit": unit}
    if aggregate:
        r["aggregate_name"] = aggregate
    return r


class LoadRows(unittest.TestCase):
    def test_unit_normalization(self):
        path = bench_file([
            row("a", 2.0, unit="ms"),
            row("b", 3000.0, unit="us"),
            row("c", 4e6, unit="ns"),
            row("d", 0.005, unit="s"),
        ])
        try:
            rows = bench_diff.load_rows(path)
        finally:
            os.unlink(path)
        self.assertAlmostEqual(rows["a"], 2.0)
        self.assertAlmostEqual(rows["b"], 3.0)
        self.assertAlmostEqual(rows["c"], 4.0)
        self.assertAlmostEqual(rows["d"], 5.0)

    def test_median_shadows_repetitions(self):
        path = bench_file([
            row("a", 10.0),
            row("a", 30.0),
            row("a_median", 20.0, aggregate="median"),
            row("a_mean", 21.0, aggregate="mean"),
            row("a_stddev", 2.0, aggregate="stddev"),
        ])
        try:
            rows = bench_diff.load_rows(path)
        finally:
            os.unlink(path)
        self.assertAlmostEqual(rows["a"], 20.0)
        self.assertNotIn("a_mean", rows)


class Compare(unittest.TestCase):
    def run_diff(self, base_rows, cand_rows, extra=()):
        base = bench_file(base_rows)
        cand = bench_file(cand_rows)
        try:
            return bench_diff.main([base, cand, *extra])
        finally:
            os.unlink(base)
            os.unlink(cand)

    def test_no_regression_passes(self):
        self.assertEqual(
            self.run_diff([row("a", 10.0)], [row("a", 10.5)]), 0)

    def test_regression_fails(self):
        self.assertEqual(
            self.run_diff([row("a", 10.0)], [row("a", 12.0)]), 1)

    def test_threshold_is_respected(self):
        self.assertEqual(
            self.run_diff([row("a", 10.0)], [row("a", 12.0)],
                          extra=["--threshold", "0.25"]), 0)

    def test_one_sided_keys_never_fail(self):
        # A benchmark added in the candidate (e.g. the low-rank or
        # headroom rows) and one retired from the baseline must both
        # be reported without failing the comparison.
        self.assertEqual(
            self.run_diff(
                [row("a", 10.0), row("retired", 5.0)],
                [row("a", 10.0), row("added_lowrank", 500.0)]), 0)

    def test_speedup_passes(self):
        self.assertEqual(
            self.run_diff([row("a", 344.0)], [row("a", 5.0)]), 0)


if __name__ == "__main__":
    unittest.main()
