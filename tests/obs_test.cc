/**
 * @file
 * Unit tests for the leo::obs observability subsystem: the metrics
 * registry (counters, gauges, histograms, deterministic shard merge,
 * JSON export), the tracer (ring capacity, drop counting, Chrome
 * trace_event output) and the two integration guarantees the rest of
 * the pipeline relies on — the instrumented fit is bitwise identical
 * to the uninstrumented reference path, and counter snapshots are
 * identical at any fit thread count.
 */
// leo-lint: allow-file(obs-naming) — registry mechanics are tested
// with synthetic instrument names, not the production constants.

#include <cstdint>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "estimators/leo.hh"
#include "linalg/workspace.hh"
#include "obs/obs.hh"
#include "platform/config_space.hh"
#include "runtime/controller.hh"
#include "telemetry/profile_store.hh"
#include "telemetry/sampler.hh"
#include "workloads/ground_truth.hh"
#include "workloads/suite.hh"

using namespace leo;

namespace
{

/** A fixed-seed fit problem (mirrors the estimator tests' setup). */
struct FitProblem
{
    std::vector<linalg::Vector> prior;
    std::vector<std::size_t> idx;
    linalg::Vector vals;
};

FitProblem
makeFitProblem(std::size_t n_obs)
{
    platform::Machine machine;
    auto space = platform::ConfigSpace::coreOnly(machine);
    telemetry::HeartbeatMonitor monitor{0.01};
    telemetry::WattsUpMeter meter{0.005, 0.1};
    stats::Rng rng{2024};

    FitProblem p;
    for (const auto &prof : workloads::standardSuite()) {
        if (prof.name == "kmeans")
            continue;
        workloads::ApplicationModel app(prof, machine);
        p.prior.push_back(
            workloads::computeGroundTruth(app, space).performance);
    }
    workloads::ApplicationModel app(
        workloads::profileByName("kmeans"), machine);
    telemetry::Profiler prof(monitor, meter);
    telemetry::RandomSampler pol;
    auto obs = prof.sample(app, space, pol, n_obs, rng);
    p.idx = obs.indices;
    p.vals = obs.performance;
    return p;
}

/** Exact (bitwise, via ==) equality of two vectors. */
void
expectExactlyEqual(const linalg::Vector &a, const linalg::Vector &b,
                   const std::string &what)
{
    ASSERT_EQ(a.size(), b.size()) << what;
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << what << "[" << i << "]";
}

/** Counter name/value pairs of a snapshot, for whole-map compares. */
std::vector<std::pair<std::string, std::uint64_t>>
counterMap(const obs::Snapshot &s)
{
    return s.counters;
}

} // namespace

// ------------------------------------------------------- null sink

TEST(ObsRegistry, NullSinkHandlesAreInert)
{
    const obs::Counter c;
    const obs::Gauge g;
    const obs::Histogram h;
    c.add(5);
    g.set(3.0);
    h.record(1.0);
    EXPECT_EQ(c.value(), 0u);
    EXPECT_EQ(g.value(), 0.0);
    EXPECT_FALSE(h.live());
    {
        obs::ScopedMs timer(h); // must not crash or record
    }
}

TEST(ObsRegistry, SetEnabledFalseDropsWrites)
{
    obs::Registry reg;
    const obs::Counter c = reg.counter("x.events.seen");
    c.add(2);
    reg.setEnabled(false);
    c.add(40);
    EXPECT_EQ(c.value(), 2u);
    reg.setEnabled(true);
    c.add(1);
    EXPECT_EQ(c.value(), 3u);
}

// ------------------------------------------------------ instruments

TEST(ObsRegistry, CounterAccumulatesAndSnapshotSortsByName)
{
    obs::Registry reg;
    reg.counter("b.second.one").add(7);
    reg.counter("a.first.one").add(3);
    const obs::Snapshot s = reg.snapshot();
    ASSERT_EQ(s.counters.size(), 2u);
    EXPECT_EQ(s.counters[0].first, "a.first.one");
    EXPECT_EQ(s.counters[0].second, 3u);
    EXPECT_EQ(s.counters[1].first, "b.second.one");
    EXPECT_EQ(s.counters[1].second, 7u);
    EXPECT_EQ(s.counterOr("missing.counter", 42u), 42u);
}

TEST(ObsRegistry, ReregistrationReturnsTheSameInstrument)
{
    obs::Registry reg;
    reg.counter("dup.events.seen").add(1);
    reg.counter("dup.events.seen").add(1);
    EXPECT_EQ(reg.counter("dup.events.seen").value(), 2u);

    // Histogram edges are fixed at first registration.
    reg.histogram("dup.vals.unit", {1.0, 2.0});
    const obs::Histogram again =
        reg.histogram("dup.vals.unit", {99.0});
    again.record(1.5);
    const obs::Snapshot snap = reg.snapshot();
    const obs::HistogramSnapshot *h = snap.histogram("dup.vals.unit");
    ASSERT_NE(h, nullptr);
    ASSERT_EQ(h->edges.size(), 2u);
    EXPECT_EQ(h->edges[0], 1.0);
    EXPECT_EQ(h->counts[1], 1u); // 1.5 in (1, 2]
}

TEST(ObsRegistry, GaugeLastWriteWins)
{
    obs::Registry reg;
    const obs::Gauge g = reg.gauge("x.level.units");
    g.set(1.0);
    g.set(2.0);
    g.set(3.0);
    EXPECT_EQ(g.value(), 3.0);
    // A later write from another thread (another shard) wins the
    // merge: the global write ticket orders across shards.
    std::thread t([&]() { g.set(5.0); });
    t.join();
    EXPECT_EQ(g.value(), 5.0);
}

TEST(ObsRegistry, HistogramBucketEdges)
{
    // A value v lands in the first bucket with v <= edges[i]; above
    // the last edge is the overflow bucket.
    obs::Registry reg;
    const obs::Histogram h =
        reg.histogram("x.vals.unit", {1.0, 2.0, 4.0});
    EXPECT_TRUE(h.live());
    const double samples[] = {0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0};
    for (double v : samples)
        h.record(v);

    const obs::Snapshot snap = reg.snapshot();
    const obs::HistogramSnapshot *s = snap.histogram("x.vals.unit");
    ASSERT_NE(s, nullptr);
    ASSERT_EQ(s->counts.size(), 4u); // 3 edges + overflow
    EXPECT_EQ(s->counts[0], 2u);     // 0.5, 1.0
    EXPECT_EQ(s->counts[1], 2u);     // 1.5, 2.0
    EXPECT_EQ(s->counts[2], 2u);     // 3.0, 4.0
    EXPECT_EQ(s->counts[3], 1u);     // 5.0
    EXPECT_EQ(s->count, 7u);
    EXPECT_EQ(s->min, 0.5);
    EXPECT_EQ(s->max, 5.0);
    EXPECT_EQ(s->sum, 0.5 + 1.0 + 1.5 + 2.0 + 3.0 + 4.0 + 5.0);
}

TEST(ObsRegistry, DefaultTimeBucketsAreStrictlyIncreasing)
{
    const std::vector<double> e = obs::defaultTimeBucketsMs();
    ASSERT_GE(e.size(), 8u);
    for (std::size_t i = 1; i < e.size(); ++i)
        EXPECT_LT(e[i - 1], e[i]) << i;
}

// ---------------------------------------------- deterministic merge

TEST(ObsRegistry, ShardMergeIsDeterministicAcrossThreadCounts)
{
    // The same total workload, partitioned across 1, 4 and 16
    // threads, must produce identical counter values and histogram
    // bucket counts: integer sums commute, and the snapshot merges
    // shards in creation order. This is the guarantee behind the
    // "--threads N gives identical metric snapshots" acceptance.
    constexpr std::size_t kItems = 1600;
    auto run = [](std::size_t threads) {
        obs::Registry reg;
        const obs::Counter c = reg.counter("work.items.done");
        const obs::Histogram h =
            reg.histogram("work.size.unit", {1.0, 3.0, 5.0});
        auto worker = [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                c.add(1);
                h.record(static_cast<double>(i % 7));
            }
        };
        std::vector<std::thread> pool;
        const std::size_t per = kItems / threads;
        for (std::size_t t = 0; t < threads; ++t)
            pool.emplace_back(worker, t * per, (t + 1) * per);
        for (std::thread &t : pool)
            t.join();
        return reg.snapshot();
    };

    const obs::Snapshot s1 = run(1);
    for (std::size_t threads : {4u, 16u}) {
        const obs::Snapshot sn = run(threads);
        EXPECT_EQ(counterMap(sn), counterMap(s1)) << threads;
        const obs::HistogramSnapshot *h1 =
            s1.histogram("work.size.unit");
        const obs::HistogramSnapshot *hn =
            sn.histogram("work.size.unit");
        ASSERT_NE(h1, nullptr);
        ASSERT_NE(hn, nullptr);
        EXPECT_EQ(hn->counts, h1->counts) << threads;
        EXPECT_EQ(hn->count, h1->count) << threads;
        EXPECT_EQ(hn->min, h1->min) << threads;
        EXPECT_EQ(hn->max, h1->max) << threads;
    }
    EXPECT_EQ(s1.counterOr("work.items.done"), kItems);
}

// ------------------------------------------------------ JSON export

TEST(ObsRegistry, JsonSnapshotListsEveryInstrument)
{
    obs::Registry reg;
    reg.counter("j.events.seen").add(9);
    reg.gauge("j.level.units").set(2.5);
    reg.histogram("j.vals.unit", {1.0}).record(0.5);

    const std::string json = obs::snapshotJson(reg);
    EXPECT_NE(json.find("\"j.events.seen\""), std::string::npos);
    EXPECT_NE(json.find("\"j.level.units\""), std::string::npos);
    EXPECT_NE(json.find("\"j.vals.unit\""), std::string::npos);
    EXPECT_NE(json.find("\"counters\""), std::string::npos);

    // NDJSON: one line per instrument.
    const std::string nd = obs::snapshotNdjson(reg);
    std::istringstream lines(nd);
    std::string line;
    std::size_t n = 0;
    while (std::getline(lines, line))
        if (!line.empty())
            ++n;
    EXPECT_EQ(n, 3u);
}

// ----------------------------------------------------------- tracer

TEST(ObsTracer, SpansWhileDisabledAreInert)
{
    obs::Tracer &tracer = obs::Tracer::global();
    ASSERT_FALSE(tracer.enabled());
    const std::uint64_t dropped = tracer.dropped();
    {
        obs::Span span("test.disabled");
        span.arg("k", 1.0);
    }
    EXPECT_EQ(tracer.dropped(), dropped);
}

TEST(ObsTracer, RingOverflowSetsDropCounter)
{
    obs::Tracer &tracer = obs::Tracer::global();
    tracer.enable(4);
    for (int i = 0; i < 6; ++i) {
        obs::Span span("test.overflow");
        span.arg("i", static_cast<double>(i));
    }
    tracer.disable();
    EXPECT_EQ(tracer.recorded(), 4u);
    EXPECT_EQ(tracer.dropped(), 2u);
    tracer.clear();
    EXPECT_EQ(tracer.recorded(), 0u);
    EXPECT_EQ(tracer.dropped(), 0u);
}

TEST(ObsTracer, ChromeTraceJsonIsWellFormed)
{
    obs::Tracer &tracer = obs::Tracer::global();
    tracer.clear();
    tracer.enable(64);
    {
        obs::Span outer("test.outer");
        outer.arg("depth", 0.0);
        obs::Span inner("test.inner", "testcat");
        inner.arg("depth", 1.0);
    }
    tracer.disable();
    ASSERT_EQ(tracer.recorded(), 2u);

    const std::string json = tracer.chromeTraceJson();
    EXPECT_EQ(json.find("{"), 0u);
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
    EXPECT_NE(json.find("\"test.outer\""), std::string::npos);
    EXPECT_NE(json.find("\"test.inner\""), std::string::npos);
    EXPECT_NE(json.find("\"testcat\""), std::string::npos);
    EXPECT_NE(json.find("\"depth\""), std::string::npos);
    // Metadata names the process for Perfetto.
    EXPECT_NE(json.find("process_name"), std::string::npos);
    tracer.clear();
}

// ------------------------------------------------------ integration

TEST(ObsIntegration, InstrumentedFitMatchesReferencePathBitwise)
{
    // The 0-ULP guarantee: the instrumented workspace path (metrics
    // on, tracing actively recording) computes exactly the same bits
    // as the uninstrumented reference path.
    const FitProblem p = makeFitProblem(12);

    estimators::LeoOptions oref;
    oref.threads = 1;
    oref.referencePath = true;
    const estimators::LeoFit ref =
        estimators::LeoEstimator(oref).fitMetric(p.prior, p.idx,
                                                 p.vals);

    obs::Tracer &tracer = obs::Tracer::global();
    tracer.clear();
    tracer.enable(1u << 12);
    estimators::LeoOptions ows;
    ows.threads = 1;
    linalg::Workspace ws;
    const estimators::LeoFit fast = estimators::LeoEstimator(
        ows).fitMetric(p.prior, p.idx, p.vals, &ws, nullptr);
    tracer.disable();

    EXPECT_GT(tracer.recorded(), 0u); // the fit did emit spans
    tracer.clear();

    expectExactlyEqual(fast.prediction, ref.prediction, "prediction");
    expectExactlyEqual(fast.predictionVariance,
                       ref.predictionVariance, "variance");
    expectExactlyEqual(fast.mu, ref.mu, "mu");
    EXPECT_EQ(fast.sigma2, ref.sigma2);
    EXPECT_EQ(fast.iterations, ref.iterations);
    ASSERT_EQ(fast.sigma.rows(), ref.sigma.rows());
    for (std::size_t r = 0; r < fast.sigma.rows(); ++r)
        for (std::size_t c = 0; c < fast.sigma.cols(); ++c)
            ASSERT_EQ(fast.sigma.at(r, c), ref.sigma.at(r, c))
                << r << "," << c;
}

TEST(ObsIntegration, FitCountersIdenticalAcrossThreadCounts)
{
    // The registry delta of one deterministic fit must be the same
    // whether EM fans across 1, 4 or 16 threads: the fit itself is
    // bitwise thread-count-invariant, and integer counter merges are
    // order-free.
    const FitProblem p = makeFitProblem(12);
    obs::Registry &reg = obs::Registry::global();

    auto em_delta = [&](std::size_t threads) {
        estimators::LeoOptions o;
        o.threads = threads;
        const obs::Snapshot before = reg.snapshot();
        const estimators::LeoFit f = estimators::LeoEstimator(
            o).fitMetric(p.prior, p.idx, p.vals);
        EXPECT_GT(f.iterations, 0u);
        const obs::Snapshot after = reg.snapshot();
        std::vector<std::pair<std::string, std::uint64_t>> delta;
        for (const auto &kv : after.counters) {
            if (kv.first.rfind("leo.em.", 0) != 0)
                continue;
            delta.emplace_back(
                kv.first,
                kv.second - before.counterOr(kv.first));
        }
        return delta;
    };

    const auto d1 = em_delta(1);
    ASSERT_FALSE(d1.empty());
    EXPECT_EQ(em_delta(4), d1);
    EXPECT_EQ(em_delta(16), d1);
}

TEST(ObsIntegration, ControllerCountersAreInstanceLocal)
{
    // Satellite guarantee: the controller's degradation counters are
    // registry-backed but instance-local — two controllers never see
    // each other's events, and the accessors read the same numbers
    // the registry snapshot exports.
    platform::Machine machine;
    auto space = platform::ConfigSpace::coreOnly(machine);
    telemetry::ProfileStore store({});
    runtime::ControllerOptions opts;
    runtime::EnergyController a(space, nullptr, store, opts);
    runtime::EnergyController b(space, nullptr, store, opts);

    telemetry::Sample bad;
    bad.configIndex = 0;
    bad.heartbeatRate = std::numeric_limits<double>::quiet_NaN();
    bad.powerWatts = 90.0;
    a.recordMeasurement(bad);
    a.recordMeasurement(bad);

    EXPECT_EQ(a.samplesRejected(), 2u);
    EXPECT_EQ(b.samplesRejected(), 0u);
    EXPECT_EQ(a.metrics().snapshot().counterOr(
                  obs::names::kControllerSamplesRejected),
              2u);
    EXPECT_EQ(b.metrics().snapshot().counterOr(
                  obs::names::kControllerSamplesRejected),
              0u);
}
