/**
 * @file
 * Coverage tests for corners the module suites leave untouched.
 */

#include <gtest/gtest.h>

#include "core/leo_system.hh"
#include "estimators/leo.hh"
#include "linalg/error.hh"
#include "optimizer/schedule.hh"
#include "platform/config_space.hh"
#include "runtime/controller.hh"
#include "stats/rng.hh"
#include "stats/summary.hh"
#include "workloads/suite.hh"

using namespace leo;
using linalg::Vector;

// ------------------------------------------------------------------ Rng

TEST(RngDistributions, LogNormalMoments)
{
    stats::Rng rng(41);
    stats::RunningStats acc;
    const double mu = 0.5, sigma = 0.25;
    for (int i = 0; i < 40000; ++i)
        acc.push(std::log(rng.logNormal(mu, sigma)));
    EXPECT_NEAR(acc.mean(), mu, 0.01);
    EXPECT_NEAR(acc.stddev(), sigma, 0.01);
}

TEST(RngDistributions, BernoulliFrequency)
{
    stats::Rng rng(43);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.bernoulli(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngDistributions, ShuffleIsPermutation)
{
    stats::Rng rng(47);
    std::vector<std::size_t> v{0, 1, 2, 3, 4, 5, 6, 7};
    auto orig = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

// -------------------------------------------------------------- Machine

TEST(MachineEdge, TurboSingleVsAllCore)
{
    platform::Machine m;
    // Turbo with 1 core beats turbo with 16 and both beat max DVFS.
    EXPECT_GT(m.frequencyGHz(15, 1), m.frequencyGHz(15, 16));
    EXPECT_GE(m.frequencyGHz(15, 16), m.frequencyGHz(14, 16));
    // Turbo voltage carries the bump.
    EXPECT_GT(m.voltage(15), m.voltage(14));
}

TEST(MachineEdge, DescribeStrings)
{
    platform::Config cfg{8, 2, 1, 15};
    EXPECT_EQ(cfg.describe(), "8c x2 1m s15");
    platform::Machine m;
    auto space = platform::ConfigSpace::coreOnly(m);
    EXPECT_EQ(space.describe(4), "5 logical cores");
    EXPECT_EQ(space.name(), "cores32");
    auto full = platform::ConfigSpace::fullFactorial(m);
    EXPECT_EQ(full.name(), "full1024");
}

TEST(MachineEdge, CustomSpecValidation)
{
    platform::MachineSpec bad;
    bad.dvfsSteps = 1;
    EXPECT_THROW(platform::Machine{bad}, FatalError);
    bad = platform::MachineSpec{};
    bad.minFreqGHz = 3.0; // above max
    EXPECT_THROW(platform::Machine{bad}, FatalError);
}

// ------------------------------------------------------------ Scheduler

TEST(ScheduleEdge, ZeroWorkIsPureIdle)
{
    Vector perf{1.0, 2.0};
    Vector power{100.0, 150.0};
    optimizer::PerformanceConstraint c{0.0, 10.0};
    auto plan = optimizer::planMinimalEnergy(perf, power, 85.0, c);
    EXPECT_TRUE(plan.feasible);
    auto run =
        optimizer::executeSchedule(plan, perf, power, 85.0, c);
    EXPECT_TRUE(run.deadlineMet);
    EXPECT_NEAR(run.energyJoules, 85.0 * 10.0, 1e-6);
}

TEST(ScheduleEdge, GuardedZeroWork)
{
    Vector perf{1.0};
    Vector power{100.0};
    optimizer::PerformanceConstraint c{0.0, 5.0};
    optimizer::Schedule empty;
    empty.parts.push_back({optimizer::kIdleConfig, 5.0});
    auto run = optimizer::executeScheduleGuarded(empty, perf, power,
                                                 85.0, c);
    EXPECT_TRUE(run.deadlineMet);
    EXPECT_NEAR(run.energyJoules, 85.0 * 5.0, 1e-6);
}

TEST(ScheduleEdge, RejectsBadConstraints)
{
    Vector perf{1.0};
    Vector power{100.0};
    optimizer::PerformanceConstraint bad{10.0, 0.0};
    EXPECT_THROW(
        optimizer::planMinimalEnergy(perf, power, 85.0, bad),
        FatalError);
    optimizer::PerformanceConstraint neg{-1.0, 10.0};
    EXPECT_THROW(
        optimizer::planMinimalEnergy(perf, power, 85.0, neg),
        FatalError);
}

// ----------------------------------------------------------- Controller

TEST(ControllerEdge, PacesCheapestFrontierConfigMeetingDemand)
{
    platform::Machine machine;
    auto space = platform::ConfigSpace::coreOnly(machine);
    telemetry::ProfileStore empty_store{
        std::vector<telemetry::ApplicationRecord>{}};
    runtime::ControllerOptions opt;
    opt.targetRate = 3.0;
    runtime::EnergyController ctl(space, nullptr, empty_store, opt);

    // Synthetic estimates: rate grows with index, power too; the
    // frontier is the whole set. Demand 3.0 -> config 2 (rate 3).
    Vector perf(space.size()), power(space.size());
    for (std::size_t c = 0; c < space.size(); ++c) {
        perf[c] = static_cast<double>(c + 1);
        power[c] = 100.0 + 10.0 * static_cast<double>(c);
    }
    ctl.setEstimates(perf, power);
    stats::Rng rng(1);
    EXPECT_EQ(ctl.nextConfig(rng), 2u);
}

TEST(ControllerEdge, BoostClimbsOnMisses)
{
    platform::Machine machine;
    auto space = platform::ConfigSpace::coreOnly(machine);
    telemetry::ProfileStore empty_store{
        std::vector<telemetry::ApplicationRecord>{}};
    runtime::ControllerOptions opt;
    opt.targetRate = 3.0;
    runtime::EnergyController ctl(space, nullptr, empty_store, opt);

    Vector perf(space.size()), power(space.size());
    for (std::size_t c = 0; c < space.size(); ++c) {
        perf[c] = static_cast<double>(c + 1);
        power[c] = 100.0 + 10.0 * static_cast<double>(c);
    }
    ctl.setEstimates(perf, power);
    stats::Rng rng(1);
    std::size_t cfg = ctl.nextConfig(rng);
    // Report persistent under-delivery; the pace must climb.
    for (int i = 0; i < 4; ++i) {
        ctl.recordMeasurement({cfg, 1.0, 120.0});
        cfg = ctl.nextConfig(rng);
    }
    EXPECT_GT(cfg, 2u);
}

// ----------------------------------------------------------- Estimators

TEST(EstimatorEdge, LeoHandlesDuplicateObservationIndices)
{
    // Measuring the same configuration twice is legal (two windows);
    // the fit must stay finite and anchored.
    platform::Machine machine;
    auto space = platform::ConfigSpace::coreOnly(machine);
    stats::Rng rng(3);
    telemetry::HeartbeatMonitor mon;
    telemetry::WattsUpMeter met;
    auto store = telemetry::ProfileStore::collect(
        workloads::standardSuite(), machine, space, mon, met, rng);

    auto prior = estimators::priorVectors(
        store.without("x264"), estimators::Metric::Performance);
    estimators::LeoEstimator leo;
    auto fit = leo.fitMetric(prior, {4, 4, 20},
                             Vector{100.0, 102.0, 160.0});
    EXPECT_TRUE(fit.prediction.allFinite());
    EXPECT_NEAR(fit.prediction[4], 101.0, 25.0);
}

TEST(EstimatorEdge, MetricEstimateDefaults)
{
    estimators::MetricEstimate e;
    EXPECT_TRUE(e.reliable);
    EXPECT_EQ(e.iterations, 0u);
    EXPECT_TRUE(e.values.empty());
}

// ---------------------------------------------------------------- Error

TEST(ErrorDiscipline, PanicVsFatal)
{
    EXPECT_THROW(panic("bug"), PanicError);
    EXPECT_THROW(fatal("user error"), FatalError);
    EXPECT_NO_THROW(require(true, "fine"));
    EXPECT_THROW(require(false, "nope"), FatalError);
    EXPECT_NO_THROW(invariant(true, "fine"));
    EXPECT_THROW(invariant(false, "broken"), PanicError);
    // Both are catchable as the common base.
    try {
        fatal("x");
    } catch (const Error &e) {
        EXPECT_NE(std::string(e.what()).find("fatal"),
                  std::string::npos);
    }
}
