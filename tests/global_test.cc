/**
 * @file
 * Tests for the global multi-app co-scheduler (optimizer/global.hh).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/error.hh"
#include "optimizer/global.hh"
#include "stats/rng.hh"

using namespace leo;
using linalg::Vector;
using optimizer::GlobalPlanOptions;
using optimizer::GlobalSchedule;
using optimizer::kIdleConfig;
using optimizer::kNoPowerCap;
using optimizer::PerformanceConstraint;
using optimizer::TenantDemand;

namespace
{

const Vector kPerf{1.0, 2.5, 4.0};
const Vector kPower{100.0, 130.0, 220.0};
constexpr double kIdle = 85.0;

TenantDemand
demand(double work, double deadline)
{
    return TenantDemand{kPerf, kPower, {work, deadline}};
}

double
busySeconds(const optimizer::Schedule &s)
{
    double busy = 0.0;
    for (const auto &part : s.parts)
        if (part.configIndex != kIdleConfig)
            busy += part.seconds;
    return busy;
}

double
workDelivered(const optimizer::Schedule &s, const Vector &perf)
{
    double work = 0.0;
    for (const auto &part : s.parts)
        if (part.configIndex != kIdleConfig)
            work += perf[part.configIndex] * part.seconds;
    return work;
}

} // namespace

// ------------------------------------------------ single-app parity

TEST(GlobalPlan, SingleAppFastPathIsExactlyTheHullWalk)
{
    const TenantDemand d = demand(30.0, 10.0);
    const auto hull = optimizer::planMinimalEnergy(
        kPerf, kPower, kIdle, d.constraint);
    const GlobalSchedule fast =
        optimizer::planGlobalSchedule({d}, kIdle, {});
    ASSERT_EQ(fast.perTenant.size(), 1u);
    // Bitwise: the fast path *is* planMinimalEnergy.
    EXPECT_EQ(fast.predictedEnergy, hull.predictedEnergy);
    EXPECT_EQ(fast.feasible, hull.feasible);
    ASSERT_EQ(fast.perTenant[0].parts.size(), hull.parts.size());
    for (std::size_t i = 0; i < hull.parts.size(); ++i) {
        EXPECT_EQ(fast.perTenant[0].parts[i].configIndex,
                  hull.parts[i].configIndex);
        EXPECT_EQ(fast.perTenant[0].parts[i].seconds,
                  hull.parts[i].seconds);
    }
}

TEST(GlobalPlan, SingleAppForcedLpMatchesTheHullWalk)
{
    // The interval LP reduces to Equation (1) for one app with no
    // cap; across a sweep of demands its optimum must agree with the
    // hull walk to LP tolerance.
    stats::Rng rng(42);
    for (int trial = 0; trial < 50; ++trial) {
        const double deadline = rng.uniform(1.0, 20.0);
        const double work = rng.uniform(0.0, 4.0 * deadline * 0.99);
        const TenantDemand d = demand(work, deadline);
        const auto hull = optimizer::planMinimalEnergy(
            kPerf, kPower, kIdle, d.constraint);
        GlobalPlanOptions force;
        force.forceLp = true;
        const GlobalSchedule lp =
            optimizer::planGlobalSchedule({d}, kIdle, force);
        ASSERT_TRUE(lp.feasible) << "trial " << trial;
        EXPECT_NEAR(lp.predictedEnergy, hull.predictedEnergy,
                    1e-9 * (1.0 + hull.predictedEnergy))
            << "trial " << trial;
        // The LP schedule really delivers the work by the deadline.
        EXPECT_NEAR(workDelivered(lp.perTenant[0], kPerf), work,
                    1e-6 * (1.0 + work));
        EXPECT_LE(busySeconds(lp.perTenant[0]), deadline + 1e-9);
    }
}

TEST(GlobalPlan, SingleAppInfeasibleDemandFallsBack)
{
    const TenantDemand d = demand(100.0, 10.0); // rate 10 > max 4
    for (const bool force : {false, true}) {
        GlobalPlanOptions o;
        o.forceLp = force;
        const GlobalSchedule g =
            optimizer::planGlobalSchedule({d}, kIdle, o);
        EXPECT_FALSE(g.feasible);
        ASSERT_EQ(g.perTenant.size(), 1u);
        EXPECT_FALSE(g.perTenant[0].feasible);
        // Best effort: flat out for the whole window.
        EXPECT_TRUE(std::isfinite(g.predictedEnergy));
    }
}

// ------------------------------------------------- multi-app sharing

TEST(GlobalPlan, ExclusivityHoldsInEveryInterval)
{
    const std::vector<TenantDemand> demands{
        demand(12.0, 4.0), demand(20.0, 10.0), demand(6.0, 7.0)};
    const GlobalSchedule g =
        optimizer::planGlobalSchedule(demands, kIdle, {});
    ASSERT_TRUE(g.feasible);
    ASSERT_EQ(g.intervals.size(), 3u); // deadlines 4, 7, 10
    EXPECT_EQ(g.intervals[0].endSeconds, 4.0);
    EXPECT_EQ(g.intervals[1].endSeconds, 7.0);
    EXPECT_EQ(g.intervals[2].endSeconds, 10.0);
    double prev = 0.0;
    for (const auto &iv : g.intervals) {
        // One machine: total busy time cannot exceed the interval.
        EXPECT_LE(iv.busySeconds, (iv.endSeconds - prev) + 1e-9);
        prev = iv.endSeconds;
    }
    // Every app's work is delivered within its own deadline.
    for (std::size_t a = 0; a < demands.size(); ++a) {
        EXPECT_NEAR(workDelivered(g.perTenant[a], kPerf),
                    demands[a].constraint.work,
                    1e-6 * (1.0 + demands[a].constraint.work));
        EXPECT_LE(busySeconds(g.perTenant[a]),
                  demands[a].constraint.deadlineSeconds + 1e-9);
    }
}

TEST(GlobalPlan, PowerCapIsRespectedPerInterval)
{
    // Uncapped, the loose-deadline app races flat out in the second
    // interval at 220 W average; the 210 W cap binds and forces part
    // of its work into the first interval.
    const std::vector<TenantDemand> demands{demand(20.0, 10.0),
                                            demand(18.0, 5.0)};
    GlobalPlanOptions o;
    o.powerCapWatts = 210.0;
    const GlobalSchedule g =
        optimizer::planGlobalSchedule(demands, kIdle, o);
    ASSERT_TRUE(g.feasible);
    double prev = 0.0;
    for (const auto &iv : g.intervals) {
        const double len = iv.endSeconds - prev;
        const double avg_power =
            (iv.activeEnergyJoules +
             kIdle * (len - iv.busySeconds)) /
            len;
        EXPECT_LE(avg_power, o.powerCapWatts * (1.0 + 1e-9));
        prev = iv.endSeconds;
    }
}

TEST(GlobalPlan, TooTightCapFallsBackInfeasible)
{
    // Even the cheapest active configuration averages well above
    // this cap once the work forces the machine busy.
    const std::vector<TenantDemand> demands{demand(38.0, 10.0),
                                            demand(19.0, 5.0)};
    GlobalPlanOptions o;
    o.powerCapWatts = 100.0;
    const GlobalSchedule g =
        optimizer::planGlobalSchedule(demands, kIdle, o);
    EXPECT_FALSE(g.feasible);
    EXPECT_EQ(g.perTenant.size(), 2u);
}

TEST(GlobalPlan, OverloadedMachineFallsBackPerApp)
{
    // Each app alone is feasible; together they exceed one machine.
    const std::vector<TenantDemand> demands{demand(39.0, 10.0),
                                            demand(39.0, 10.0)};
    const GlobalSchedule g =
        optimizer::planGlobalSchedule(demands, kIdle, {});
    EXPECT_FALSE(g.feasible);
    ASSERT_EQ(g.perTenant.size(), 2u);
    // The best-effort slices are the standalone plans.
    for (const auto &s : g.perTenant)
        EXPECT_TRUE(s.feasible); // standalone each is feasible
}

TEST(GlobalPlan, ZeroWorkTenantJustIdles)
{
    const std::vector<TenantDemand> demands{demand(20.0, 10.0),
                                            demand(0.0, 4.0)};
    const GlobalSchedule g =
        optimizer::planGlobalSchedule(demands, kIdle, {});
    ASSERT_TRUE(g.feasible);
    EXPECT_NEAR(busySeconds(g.perTenant[1]), 0.0, 1e-9);
    EXPECT_NEAR(g.perTenant[1].predictedEnergy, kIdle * 4.0, 1e-9);
}

TEST(GlobalPlan, ZeroRateTenantWithWorkIsInfeasible)
{
    // The dead tenant's work row degenerates to 0 = W > 0 inside the
    // shared LP — the simplex redundant-row handling must classify
    // it Infeasible (this was the Unbounded-misreport regression).
    TenantDemand dead{Vector{0.0, 0.0}, Vector{90.0, 95.0},
                      {1.0, 6.0}};
    const GlobalSchedule g = optimizer::planGlobalSchedule(
        {demand(20.0, 10.0), dead}, kIdle, {});
    EXPECT_FALSE(g.feasible);

    TenantDemand dead_ok{Vector{0.0, 0.0}, Vector{90.0, 95.0},
                         {0.0, 6.0}};
    const GlobalSchedule g2 = optimizer::planGlobalSchedule(
        {demand(20.0, 10.0), dead_ok}, kIdle, {});
    EXPECT_TRUE(g2.feasible);
}

TEST(GlobalPlan, IdenticalFrontiersShareTheMachine)
{
    // Two copies of the same app give the LP linearly dependent
    // structure; it must still split the machine and deliver both.
    const std::vector<TenantDemand> demands{demand(15.0, 10.0),
                                            demand(15.0, 10.0)};
    const GlobalSchedule g =
        optimizer::planGlobalSchedule(demands, kIdle, {});
    ASSERT_TRUE(g.feasible);
    for (const auto &s : g.perTenant)
        EXPECT_NEAR(workDelivered(s, kPerf), 15.0, 1e-6);
    EXPECT_LE(g.intervals[0].busySeconds, 10.0 + 1e-9);
}

TEST(GlobalPlan, DeterministicAcrossRepeatedCalls)
{
    const std::vector<TenantDemand> demands{
        demand(12.0, 4.0), demand(20.0, 10.0), demand(6.0, 7.0)};
    GlobalPlanOptions o;
    o.powerCapWatts = 170.0;
    const GlobalSchedule a =
        optimizer::planGlobalSchedule(demands, kIdle, o);
    const GlobalSchedule b =
        optimizer::planGlobalSchedule(demands, kIdle, o);
    EXPECT_EQ(a.predictedEnergy, b.predictedEnergy);
    ASSERT_EQ(a.perTenant.size(), b.perTenant.size());
    for (std::size_t t = 0; t < a.perTenant.size(); ++t) {
        ASSERT_EQ(a.perTenant[t].parts.size(),
                  b.perTenant[t].parts.size());
        for (std::size_t i = 0; i < a.perTenant[t].parts.size(); ++i) {
            EXPECT_EQ(a.perTenant[t].parts[i].configIndex,
                      b.perTenant[t].parts[i].configIndex);
            EXPECT_EQ(a.perTenant[t].parts[i].seconds,
                      b.perTenant[t].parts[i].seconds);
        }
    }
}

TEST(GlobalPlan, RejectsMalformedInputs)
{
    EXPECT_THROW(optimizer::planGlobalSchedule({}, kIdle, {}),
                 FatalError);
    EXPECT_THROW(
        optimizer::planGlobalSchedule({demand(1.0, 0.0)}, kIdle, {}),
        FatalError);
    EXPECT_THROW(
        optimizer::planGlobalSchedule({demand(-1.0, 1.0)}, kIdle, {}),
        FatalError);
    EXPECT_THROW(
        optimizer::planGlobalSchedule({demand(1.0, 1.0)}, -1.0, {}),
        FatalError);
    GlobalPlanOptions nan_cap;
    nan_cap.powerCapWatts = std::nan("");
    EXPECT_THROW(optimizer::planGlobalSchedule({demand(1.0, 1.0)},
                                               kIdle, nan_cap),
                 FatalError);
}

// ------------------------------------------------- greedy baseline

TEST(GreedyBaseline, NeverBeatsTheGlobalPlan)
{
    // Greedy's outcome is a feasible point of the global program, so
    // the global optimum can never predict more energy.
    stats::Rng rng(7);
    for (int trial = 0; trial < 40; ++trial) {
        std::vector<TenantDemand> demands;
        const int napps = 2 + rng.uniformInt(0, 2);
        for (int a = 0; a < napps; ++a) {
            const double deadline = rng.uniform(2.0, 12.0);
            const double work =
                rng.uniform(0.0, 4.0 * deadline * 0.5);
            demands.push_back(demand(work, deadline));
        }
        const GlobalSchedule global =
            optimizer::planGlobalSchedule(demands, kIdle, {});
        const GlobalSchedule greedy =
            optimizer::planPerAppGreedy(demands, kIdle, {});
        if (!global.feasible || !greedy.feasible)
            continue; // fallbacks are not comparable energies
        EXPECT_LE(global.predictedEnergy,
                  greedy.predictedEnergy *
                      (1.0 + 1e-9) + 1e-9)
            << "trial " << trial;
    }
}

TEST(GreedyBaseline, StarvesTightDeadlineAppThatGlobalPlaces)
{
    // App 0 (loose deadline, planned first) soaks up the early
    // interval; app 1 (tight deadline) then cannot fit its work in
    // what is left and greedy degrades to an infeasible best-effort,
    // while the global plan coordinates both — the strict win the
    // tab03 bench measures as a feasibility-rate gap.
    const std::vector<TenantDemand> demands{demand(20.0, 10.0),
                                            demand(18.0, 5.0)};
    const GlobalSchedule global =
        optimizer::planGlobalSchedule(demands, kIdle, {});
    const GlobalSchedule greedy =
        optimizer::planPerAppGreedy(demands, kIdle, {});
    ASSERT_TRUE(global.feasible);
    EXPECT_FALSE(greedy.feasible);
    EXPECT_TRUE(std::isfinite(global.predictedEnergy));
}

TEST(GreedyBaseline, CapStarvationMakesGreedyInfeasible)
{
    // With a binding cap the greedy first app drains the early
    // interval's cap budget; the tight-deadline app then cannot fit,
    // while the global plan places both.
    const std::vector<TenantDemand> demands{demand(20.0, 10.0),
                                            demand(18.0, 5.0)};
    GlobalPlanOptions o;
    o.powerCapWatts = 210.0;
    const GlobalSchedule global =
        optimizer::planGlobalSchedule(demands, kIdle, o);
    const GlobalSchedule greedy =
        optimizer::planPerAppGreedy(demands, kIdle, o);
    EXPECT_TRUE(global.feasible);
    // Greedy either fails outright or pays at least as much.
    if (greedy.feasible)
        EXPECT_GE(greedy.predictedEnergy,
                  global.predictedEnergy * (1.0 - 1e-9));
}
