/**
 * @file
 * Tests for leo-lint (tools/leo_lint.cc): the tokenizer, the six
 * project-invariant checks, and the per-line suppression syntax.
 *
 * The linter is a single self-contained translation unit; the test
 * includes it with LEO_LINT_NO_MAIN and drives lintSource() directly
 * over the known-good / known-bad snippets in tests/lint_fixtures/
 * (compiled-in path LEO_LINT_FIXTURES_DIR). Fixtures are linted
 * under *virtual* paths — the path scoping is part of what is being
 * tested (e.g. unordered_map is an error in src/estimators/ but fine
 * in src/runtime/).
 */

#define LEO_LINT_NO_MAIN
#include "leo_lint.cc" // leo-lint: allow(all)

#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

namespace
{

using leolint::Diagnostic;
using leolint::LintContext;
using leolint::lintSource;

/** Read one fixture file (fails the test on a missing fixture). */
std::string
fixture(const std::string &name)
{
    const std::string path =
        std::string(LEO_LINT_FIXTURES_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture: " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Count diagnostics of one check. */
std::size_t
countCheck(const std::vector<Diagnostic> &ds, const std::string &check)
{
    std::size_t n = 0;
    for (const Diagnostic &d : ds)
        n += d.check == check;
    return n;
}

LintContext
testContext()
{
    LintContext ctx;
    ctx.obsNamesLoaded = true;
    ctx.obsNames = {"leo.em.fits.completed"};
    return ctx;
}

// ---- determinism ------------------------------------------------ //

TEST(LintDeterminism, FiresInsideTheDeterministicCore)
{
    const auto ds = lintSource("src/estimators/fixture.cc",
                               fixture("bad_determinism.cc"),
                               testContext());
    // unordered_map, rand(, system_clock — at least three findings.
    EXPECT_GE(countCheck(ds, "determinism"), 3u);
}

TEST(LintDeterminism, CleanCodePasses)
{
    const auto ds = lintSource("src/estimators/fixture.cc",
                               fixture("good_determinism.cc"),
                               testContext());
    EXPECT_EQ(countCheck(ds, "determinism"), 0u);
}

TEST(LintDeterminism, GlobalPlannerIsInScope)
{
    // The global co-scheduler must stay deterministic (the fleet
    // plan is asserted bitwise-reproducible across shard and worker
    // counts), so src/optimizer/ — including global.cc — is in the
    // determinism scope.
    const auto ds = lintSource("src/optimizer/global.cc",
                               fixture("bad_determinism.cc"),
                               testContext());
    EXPECT_GE(countCheck(ds, "determinism"), 3u);
}

TEST(LintDeterminism, ScenarioSubsystemIsInScope)
{
    // Scenario replay is asserted bit-reproducible (same spec, same
    // schedule at any shard/thread count), so src/scenario/ is in
    // the determinism scope.
    const auto ds = lintSource("src/scenario/scenario.cc",
                               fixture("bad_determinism.cc"),
                               testContext());
    EXPECT_GE(countCheck(ds, "determinism"), 3u);
}

TEST(LintDeterminism, OutsideTheCoreIsNotScoped)
{
    // The same bad code under src/runtime/ is out of scope.
    const auto ds = lintSource("src/runtime/fixture.cc",
                               fixture("bad_determinism.cc"),
                               testContext());
    EXPECT_EQ(countCheck(ds, "determinism"), 0u);
}

TEST(LintDeterminism, AllowDirectiveSilences)
{
    std::size_t suppressed = 0;
    const auto ds = lintSource("src/linalg/fixture.cc",
                               fixture("suppressed_determinism.cc"),
                               testContext(), &suppressed);
    EXPECT_EQ(countCheck(ds, "determinism"), 0u);
    EXPECT_GE(suppressed, 2u);
}

// ---- hot-alloc -------------------------------------------------- //

TEST(LintHotAlloc, FiresBetweenMarkers)
{
    const auto ds = lintSource("src/estimators/fixture.cc",
                               fixture("bad_hot_alloc.cc"),
                               testContext());
    // vector ctor, .resize, new, std::string/std::to_string.
    EXPECT_GE(countCheck(ds, "hot-alloc"), 4u);
}

TEST(LintHotAlloc, PreallocatedLoopPasses)
{
    const auto ds = lintSource("src/estimators/fixture.cc",
                               fixture("good_hot_alloc.cc"),
                               testContext());
    EXPECT_EQ(countCheck(ds, "hot-alloc"), 0u);
}

TEST(LintHotAlloc, AllowDirectiveSilences)
{
    std::size_t suppressed = 0;
    const auto ds = lintSource("src/estimators/fixture.cc",
                               fixture("suppressed_hot_alloc.cc"),
                               testContext(), &suppressed);
    EXPECT_EQ(countCheck(ds, "hot-alloc"), 0u);
    EXPECT_EQ(suppressed, 1u);
}

TEST(LintHotAlloc, OutsideMarkersIsFree)
{
    const auto ds = lintSource(
        "src/estimators/fixture.cc",
        "#include <vector>\n"
        "std::vector<int> make() { return std::vector<int>(4); }\n",
        testContext());
    EXPECT_EQ(countCheck(ds, "hot-alloc"), 0u);
}

TEST(LintHotAlloc, DanglingMarkerIsReported)
{
    const auto ds = lintSource("src/x/fixture.cc",
                               "// leo-lint: hot-end\nint x;\n",
                               testContext());
    EXPECT_EQ(countCheck(ds, "hot-alloc"), 1u);
}

// ---- sanitize-boundary ------------------------------------------ //

TEST(LintSanitize, UnsanitizedEntryPointFires)
{
    const auto ds = lintSource("src/estimators/fixture.cc",
                               fixture("bad_sanitize.cc"),
                               testContext());
    EXPECT_EQ(countCheck(ds, "sanitize-boundary"), 1u);
}

TEST(LintSanitize, SanitizingAndDelegatingOverloadsPass)
{
    const auto ds = lintSource("src/estimators/fixture.cc",
                               fixture("good_sanitize.cc"),
                               testContext());
    EXPECT_EQ(countCheck(ds, "sanitize-boundary"), 0u);
}

TEST(LintSanitize, OnlyEstimatorSourcesAreScoped)
{
    const auto ds = lintSource("src/optimizer/fixture.cc",
                               fixture("bad_sanitize.cc"),
                               testContext());
    EXPECT_EQ(countCheck(ds, "sanitize-boundary"), 0u);
}

TEST(LintSanitize, AllowDirectiveSilences)
{
    std::size_t suppressed = 0;
    const auto ds = lintSource("src/estimators/fixture.cc",
                               fixture("suppressed_sanitize.cc"),
                               testContext(), &suppressed);
    EXPECT_EQ(countCheck(ds, "sanitize-boundary"), 0u);
    EXPECT_EQ(suppressed, 1u);
}

// ---- controller-nothrow ----------------------------------------- //

TEST(LintNoThrow, ThrowInControllerFires)
{
    const auto ds = lintSource("src/runtime/controller.cc",
                               fixture("bad_controller_throw.cc"),
                               testContext());
    EXPECT_EQ(countCheck(ds, "controller-nothrow"), 1u);
}

TEST(LintNoThrow, OtherFilesMayThrow)
{
    const auto ds = lintSource("src/runtime/phased_run.cc",
                               fixture("bad_controller_throw.cc"),
                               testContext());
    EXPECT_EQ(countCheck(ds, "controller-nothrow"), 0u);
}

TEST(LintNoThrow, AllowDirectiveSilences)
{
    std::size_t suppressed = 0;
    const auto ds = lintSource(
        "src/runtime/controller.cc",
        "void f() { throw 1; } // leo-lint: allow(controller-nothrow)\n",
        testContext(), &suppressed);
    EXPECT_EQ(countCheck(ds, "controller-nothrow"), 0u);
    EXPECT_EQ(suppressed, 1u);
}

// ---- obs-naming ------------------------------------------------- //

TEST(LintObsNaming, RawAndUndeclaredLiteralsFire)
{
    const auto ds = lintSource("src/telemetry/fixture.cc",
                               fixture("bad_obs_name.cc"),
                               testContext());
    // One off-scheme literal + one undeclared-but-valid literal.
    EXPECT_EQ(countCheck(ds, "obs-naming"), 2u);
}

TEST(LintObsNaming, ConstantsAndDeclaredLiteralsPass)
{
    const auto ds = lintSource("src/telemetry/fixture.cc",
                               fixture("good_obs_name.cc"),
                               testContext());
    EXPECT_EQ(countCheck(ds, "obs-naming"), 0u);
}

TEST(LintObsNaming, SpanDeclarationsAreChecked)
{
    const auto ds = lintSource(
        "src/runtime/fixture.cc",
        "struct Span { Span(const char *, const char *); };\n"
        "void f() { Span span(\"controller.window\", \"rt\"); }\n",
        testContext());
    EXPECT_EQ(countCheck(ds, "obs-naming"), 1u);
}

TEST(LintObsNaming, TestsAreOutOfScope)
{
    const auto ds = lintSource(
        "tests/fixture.cc",
        "struct R { int counter(const char *); };\n"
        "int f(R r) { return r.counter(\"test.ad.hoc\"); }\n",
        testContext());
    EXPECT_EQ(countCheck(ds, "obs-naming"), 0u);
}

TEST(LintObsNaming, NamesHeaderLiteralsAreValidated)
{
    const auto ds = lintSource(
        "src/obs/names.hh",
        "#pragma once\n"
        "inline constexpr const char *kBad = \"Em.Fits\";\n",
        testContext());
    EXPECT_EQ(countCheck(ds, "obs-naming"), 1u);
}

TEST(LintObsNaming, AllowDirectiveSilences)
{
    std::size_t suppressed = 0;
    const auto ds = lintSource(
        "src/telemetry/fixture.cc",
        "struct R { int counter(const char *); };\n"
        "int f(R r) { return r.counter(\"x.y\"); } "
        "// leo-lint: allow(obs-naming)\n",
        testContext(), &suppressed);
    EXPECT_EQ(countCheck(ds, "obs-naming"), 0u);
    EXPECT_EQ(suppressed, 1u);
}

// ---- header-hygiene --------------------------------------------- //

TEST(LintHeaderHygiene, UnguardedUsingNamespaceHeaderFires)
{
    const auto ds = lintSource("src/workloads/fixture.hh",
                               fixture("bad_header.hh"),
                               testContext());
    EXPECT_EQ(countCheck(ds, "header-hygiene"), 2u);
}

TEST(LintHeaderHygiene, GuardedHeaderPasses)
{
    const auto ds = lintSource("src/workloads/fixture.hh",
                               fixture("good_header.hh"),
                               testContext());
    EXPECT_EQ(countCheck(ds, "header-hygiene"), 0u);
}

TEST(LintHeaderHygiene, IfndefGuardAccepted)
{
    const auto ds = lintSource("src/workloads/fixture.hh",
                               "#ifndef A_HH\n#define A_HH\n"
                               "int two();\n#endif\n",
                               testContext());
    EXPECT_EQ(countCheck(ds, "header-hygiene"), 0u);
}

TEST(LintHeaderHygiene, SourcesAreOutOfScope)
{
    const auto ds = lintSource("src/workloads/fixture.cc",
                               fixture("bad_header.hh"),
                               testContext());
    EXPECT_EQ(countCheck(ds, "header-hygiene"), 0u);
}

// ---- tokenizer / directives ------------------------------------- //

TEST(LintTokenizer, LiteralsAndCommentsAreInert)
{
    // Banned words inside strings and comments never fire.
    const auto ds = lintSource(
        "src/linalg/fixture.cc",
        "// mentions rand() and unordered_map in a comment\n"
        "/* system_clock too */\n"
        "const char *s = \"rand() unordered_map system_clock\";\n"
        "const char *r = R\"(time( rand( )\";\n", // leo-lint: allow(all)
        testContext());
    EXPECT_EQ(countCheck(ds, "determinism"), 0u);
}

TEST(LintTokenizer, MemberCallsAreNotLibcCalls)
{
    // The declaration of a member named rand() is flagged (line 1,
    // silenced here); the member *call* r.rand() must not be.
    const auto ds = lintSource(
        "src/stats/fixture.cc",
        "struct Rng { double rand(); }; // leo-lint: allow(determinism)\n"
        "double f(Rng &r) { return r.rand(); }\n",
        testContext());
    EXPECT_EQ(countCheck(ds, "determinism"), 0u);
}

TEST(LintDirectives, AllowListSupportsMultipleChecks)
{
    std::size_t suppressed = 0;
    const auto ds = lintSource(
        "src/estimators/fixture.cc",
        "std::unordered_map<int,int> m; "
        "// leo-lint: allow(determinism, hot-alloc)\n",
        testContext(), &suppressed);
    EXPECT_TRUE(ds.empty());
    EXPECT_EQ(suppressed, 1u);
}

TEST(LintDirectives, AllowOnOtherLineDoesNotSilence)
{
    const auto ds = lintSource(
        "src/estimators/fixture.cc",
        "// leo-lint: allow(determinism)\n"
        "std::unordered_map<int,int> m;\n",
        testContext());
    EXPECT_EQ(countCheck(ds, "determinism"), 1u);
}

TEST(LintRegistry, ExposesAllSixChecks)
{
    std::set<std::string> names;
    for (const leolint::Check &c : leolint::checks())
        names.insert(c.name);
    const std::set<std::string> expected = {
        "determinism",      "hot-alloc",  "sanitize-boundary",
        "controller-nothrow", "obs-naming", "header-hygiene"};
    EXPECT_EQ(names, expected);
}

// ---- the real tree ---------------------------------------------- //

TEST(LintTree, RepoRootLintsClean)
{
    // The acceptance gate, as a unit test: the checked-in tree has
    // zero unsuppressed diagnostics. LEO_LINT_REPO_ROOT is the
    // source dir baked in by tests/CMakeLists.txt.
    const std::filesystem::path root(LEO_LINT_REPO_ROOT);
    const LintContext ctx = leolint::makeContext(root);
    ASSERT_TRUE(ctx.obsNamesLoaded)
        << "src/obs/names.hh missing or unreadable";
    EXPECT_TRUE(ctx.obsNames.count("leo.em.fits.completed"));

    std::vector<std::string> offenders;
    for (const char *sub : {"src", "tools", "bench"}) {
        for (const auto &entry :
             std::filesystem::recursive_directory_iterator(root /
                                                           sub)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension().string();
            if (ext != ".cc" && ext != ".hh" && ext != ".h")
                continue;
            const auto src = leolint::readFile(entry.path());
            ASSERT_TRUE(src.has_value()) << entry.path();
            const std::string rel =
                std::filesystem::relative(entry.path(), root)
                    .generic_string();
            for (const Diagnostic &d :
                 lintSource(rel, *src, ctx)) {
                offenders.push_back(d.file + ":" +
                                    std::to_string(d.line) + " [" +
                                    d.check + "] " + d.message);
            }
        }
    }
    EXPECT_TRUE(offenders.empty())
        << "tree is not lint-clean:\n"
        << [&] {
               std::string all;
               for (const std::string &o : offenders)
                   all += o + "\n";
               return all;
           }();
}

} // namespace
