/**
 * @file
 * Tests for leo-lint v2 (tools/lint/): the tokenizer (including the
 * hardened corners), the symbol index, the call graph, the five
 * per-file checks, the four whole-program checks, and the
 * suppression syntax (per-line `allow` and whole-file `allow-file`).
 *
 * The test links the linter's library target (leo_lint_lib) and
 * drives lintSource() / lintProgram() directly over the known-good /
 * known-bad snippets in tests/lint_fixtures/ (compiled-in path
 * LEO_LINT_FIXTURES_DIR). Fixtures are linted under *virtual* paths —
 * the path scoping is part of what is being tested (e.g.
 * unordered_map is an error in src/estimators/ but fine in
 * src/runtime/).
 */

#include "lint/callgraph.hh"
#include "lint/checks.hh"
#include "lint/index.hh"
#include "lint/tokenizer.hh"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace
{

using leolint::Diagnostic;
using leolint::LintContext;
using leolint::lintSource;
using leolint::SourceUnit;

/** Read one fixture file (fails the test on a missing fixture). */
std::string
fixture(const std::string &name)
{
    const std::string path =
        std::string(LEO_LINT_FIXTURES_DIR) + "/" + name;
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << "missing fixture: " << path;
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Count diagnostics of one check. */
std::size_t
countCheck(const std::vector<Diagnostic> &ds, const std::string &check)
{
    std::size_t n = 0;
    for (const Diagnostic &d : ds)
        n += d.check == check;
    return n;
}

LintContext
testContext()
{
    LintContext ctx;
    ctx.obsNamesLoaded = true;
    ctx.obsNames = {"leo.em.fits.completed"};
    return ctx;
}

/** Tokenize (rel, source) pairs into a unit vector. */
std::vector<SourceUnit>
tokenizeAll(
    const std::vector<std::pair<std::string, std::string>> &files)
{
    std::vector<SourceUnit> units;
    for (const auto &[rel, src] : files)
        units.push_back(leolint::tokenize(rel, src));
    return units;
}

/** Index + call graph + program checks over virtual units. */
std::vector<Diagnostic>
lintProgramOver(
    const std::vector<std::pair<std::string, std::string>> &files,
    std::size_t *suppressed = nullptr)
{
    const auto units = tokenizeAll(files);
    const auto index = leolint::buildIndex(units);
    const auto graph = leolint::buildCallGraph(units, index);
    return leolint::lintProgram(units, index, graph, suppressed);
}

// ---- determinism ------------------------------------------------ //

TEST(LintDeterminism, FiresInsideTheDeterministicCore)
{
    const auto ds = lintSource("src/estimators/fixture.cc",
                               fixture("bad_determinism.cc"),
                               testContext());
    // unordered_map, rand(, system_clock — at least three findings.
    EXPECT_GE(countCheck(ds, "determinism"), 3u);
}

TEST(LintDeterminism, CleanCodePasses)
{
    const auto ds = lintSource("src/estimators/fixture.cc",
                               fixture("good_determinism.cc"),
                               testContext());
    EXPECT_EQ(countCheck(ds, "determinism"), 0u);
}

TEST(LintDeterminism, GlobalPlannerIsInScope)
{
    // The global co-scheduler must stay deterministic (the fleet
    // plan is asserted bitwise-reproducible across shard and worker
    // counts), so src/optimizer/ — including global.cc — is in the
    // determinism scope.
    const auto ds = lintSource("src/optimizer/global.cc",
                               fixture("bad_determinism.cc"),
                               testContext());
    EXPECT_GE(countCheck(ds, "determinism"), 3u);
}

TEST(LintDeterminism, ScenarioSubsystemIsInScope)
{
    // Scenario replay is asserted bit-reproducible (same spec, same
    // schedule at any shard/thread count), so src/scenario/ is in
    // the determinism scope.
    const auto ds = lintSource("src/scenario/scenario.cc",
                               fixture("bad_determinism.cc"),
                               testContext());
    EXPECT_GE(countCheck(ds, "determinism"), 3u);
}

TEST(LintDeterminism, PlatformTelemetryWorkloadsAreInScope)
{
    // PR 10 widened the determinism scope: sensor/actuator shims,
    // the observability layer and the workload generators all feed
    // replayed traces, so they are held to the same standard.
    for (const char *rel : {"src/platform/fixture.cc",
                            "src/telemetry/fixture.cc",
                            "src/workloads/fixture.cc"}) {
        const auto ds =
            lintSource(rel, fixture("bad_determinism.cc"),
                       testContext());
        EXPECT_GE(countCheck(ds, "determinism"), 3u) << rel;
    }
}

TEST(LintDeterminism, OutsideTheCoreIsNotScoped)
{
    // The same bad code under src/runtime/ is out of scope.
    const auto ds = lintSource("src/runtime/fixture.cc",
                               fixture("bad_determinism.cc"),
                               testContext());
    EXPECT_EQ(countCheck(ds, "determinism"), 0u);
}

TEST(LintDeterminism, AllowDirectiveSilences)
{
    std::size_t suppressed = 0;
    const auto ds = lintSource("src/linalg/fixture.cc",
                               fixture("suppressed_determinism.cc"),
                               testContext(), &suppressed);
    EXPECT_EQ(countCheck(ds, "determinism"), 0u);
    EXPECT_GE(suppressed, 2u);
}

// ---- hot-alloc -------------------------------------------------- //

TEST(LintHotAlloc, FiresBetweenMarkers)
{
    const auto ds = lintSource("src/estimators/fixture.cc",
                               fixture("bad_hot_alloc.cc"),
                               testContext());
    // vector ctor, .resize, new, std::string/std::to_string.
    EXPECT_GE(countCheck(ds, "hot-alloc"), 4u);
}

TEST(LintHotAlloc, PreallocatedLoopPasses)
{
    const auto ds = lintSource("src/estimators/fixture.cc",
                               fixture("good_hot_alloc.cc"),
                               testContext());
    EXPECT_EQ(countCheck(ds, "hot-alloc"), 0u);
}

TEST(LintHotAlloc, AllowDirectiveSilences)
{
    std::size_t suppressed = 0;
    const auto ds = lintSource("src/estimators/fixture.cc",
                               fixture("suppressed_hot_alloc.cc"),
                               testContext(), &suppressed);
    EXPECT_EQ(countCheck(ds, "hot-alloc"), 0u);
    EXPECT_EQ(suppressed, 1u);
}

TEST(LintHotAlloc, OutsideMarkersIsFree)
{
    const auto ds = lintSource(
        "src/estimators/fixture.cc",
        "#include <vector>\n"
        "std::vector<int> make() { return std::vector<int>(4); }\n",
        testContext());
    EXPECT_EQ(countCheck(ds, "hot-alloc"), 0u);
}

TEST(LintHotAlloc, DanglingMarkerIsReported)
{
    const auto ds = lintSource("src/x/fixture.cc",
                               "// leo-lint: hot-end\nint x;\n",
                               testContext());
    EXPECT_EQ(countCheck(ds, "hot-alloc"), 1u);
}

// ---- sanitize-boundary ------------------------------------------ //

TEST(LintSanitize, UnsanitizedEntryPointFires)
{
    const auto ds = lintSource("src/estimators/fixture.cc",
                               fixture("bad_sanitize.cc"),
                               testContext());
    EXPECT_EQ(countCheck(ds, "sanitize-boundary"), 1u);
}

TEST(LintSanitize, SanitizingAndDelegatingOverloadsPass)
{
    const auto ds = lintSource("src/estimators/fixture.cc",
                               fixture("good_sanitize.cc"),
                               testContext());
    EXPECT_EQ(countCheck(ds, "sanitize-boundary"), 0u);
}

TEST(LintSanitize, OnlyEstimatorSourcesAreScoped)
{
    const auto ds = lintSource("src/optimizer/fixture.cc",
                               fixture("bad_sanitize.cc"),
                               testContext());
    EXPECT_EQ(countCheck(ds, "sanitize-boundary"), 0u);
}

TEST(LintSanitize, AllowDirectiveSilences)
{
    std::size_t suppressed = 0;
    const auto ds = lintSource("src/estimators/fixture.cc",
                               fixture("suppressed_sanitize.cc"),
                               testContext(), &suppressed);
    EXPECT_EQ(countCheck(ds, "sanitize-boundary"), 0u);
    EXPECT_EQ(suppressed, 1u);
}

// ---- obs-naming ------------------------------------------------- //

TEST(LintObsNaming, RawAndUndeclaredLiteralsFire)
{
    const auto ds = lintSource("src/telemetry/fixture.cc",
                               fixture("bad_obs_name.cc"),
                               testContext());
    // One off-scheme literal + one undeclared-but-valid literal.
    EXPECT_EQ(countCheck(ds, "obs-naming"), 2u);
}

TEST(LintObsNaming, ConstantsAndDeclaredLiteralsPass)
{
    const auto ds = lintSource("src/telemetry/fixture.cc",
                               fixture("good_obs_name.cc"),
                               testContext());
    EXPECT_EQ(countCheck(ds, "obs-naming"), 0u);
}

TEST(LintObsNaming, SpanDeclarationsAreChecked)
{
    const auto ds = lintSource(
        "src/runtime/fixture.cc",
        "struct Span { Span(const char *, const char *); };\n"
        "void f() { Span span(\"controller.window\", \"rt\"); }\n",
        testContext());
    EXPECT_EQ(countCheck(ds, "obs-naming"), 1u);
}

TEST(LintObsNaming, TestsAreInScope)
{
    // PR 10 widened obs-naming to tests/: ad-hoc instrument names in
    // test code would otherwise leak into dashboards unreviewed.
    // Files that intentionally fabricate names (obs_test.cc) opt out
    // with allow-file.
    const auto ds = lintSource(
        "tests/fixture.cc",
        "struct R { int counter(const char *); };\n"
        "int f(R r) { return r.counter(\"test.ad.hoc\"); }\n",
        testContext());
    EXPECT_EQ(countCheck(ds, "obs-naming"), 1u);
}

TEST(LintObsNaming, NamesHeaderLiteralsAreValidated)
{
    const auto ds = lintSource(
        "src/obs/names.hh",
        "#pragma once\n"
        "inline constexpr const char *kBad = \"Em.Fits\";\n",
        testContext());
    EXPECT_EQ(countCheck(ds, "obs-naming"), 1u);
}

TEST(LintObsNaming, AllowDirectiveSilences)
{
    std::size_t suppressed = 0;
    const auto ds = lintSource(
        "src/telemetry/fixture.cc",
        "struct R { int counter(const char *); };\n"
        "int f(R r) { return r.counter(\"x.y\"); } "
        "// leo-lint: allow(obs-naming)\n",
        testContext(), &suppressed);
    EXPECT_EQ(countCheck(ds, "obs-naming"), 0u);
    EXPECT_EQ(suppressed, 1u);
}

// ---- header-hygiene --------------------------------------------- //

TEST(LintHeaderHygiene, UnguardedUsingNamespaceHeaderFires)
{
    const auto ds = lintSource("src/workloads/fixture.hh",
                               fixture("bad_header.hh"),
                               testContext());
    EXPECT_EQ(countCheck(ds, "header-hygiene"), 2u);
}

TEST(LintHeaderHygiene, GuardedHeaderPasses)
{
    const auto ds = lintSource("src/workloads/fixture.hh",
                               fixture("good_header.hh"),
                               testContext());
    EXPECT_EQ(countCheck(ds, "header-hygiene"), 0u);
}

TEST(LintHeaderHygiene, IfndefGuardAccepted)
{
    const auto ds = lintSource("src/workloads/fixture.hh",
                               "#ifndef A_HH\n#define A_HH\n"
                               "int two();\n#endif\n",
                               testContext());
    EXPECT_EQ(countCheck(ds, "header-hygiene"), 0u);
}

TEST(LintHeaderHygiene, SourcesAreOutOfScope)
{
    const auto ds = lintSource("src/workloads/fixture.cc",
                               fixture("bad_header.hh"),
                               testContext());
    EXPECT_EQ(countCheck(ds, "header-hygiene"), 0u);
}

// ---- tokenizer / directives ------------------------------------- //

TEST(LintTokenizer, LiteralsAndCommentsAreInert)
{
    // Banned words inside strings and comments never fire.
    const auto ds = lintSource(
        "src/linalg/fixture.cc",
        "// mentions rand() and unordered_map in a comment\n"
        "/* system_clock too */\n"
        "const char *s = \"rand() unordered_map system_clock\";\n"
        "const char *r = R\"(time( rand( )\";\n", // leo-lint: allow(all)
        testContext());
    EXPECT_EQ(countCheck(ds, "determinism"), 0u);
}

TEST(LintTokenizer, MemberCallsAreNotLibcCalls)
{
    // The declaration of a member named rand() is flagged (line 1,
    // silenced here); the member *call* r.rand() must not be.
    const auto ds = lintSource(
        "src/stats/fixture.cc",
        "struct Rng { double rand(); }; // leo-lint: allow(determinism)\n"
        "double f(Rng &r) { return r.rand(); }\n",
        testContext());
    EXPECT_EQ(countCheck(ds, "determinism"), 0u);
}

TEST(LintTokenizer, RawStringsSwallowCommentsAndDirectives)
{
    // `//`, banned identifiers and even lint directives inside
    // (possibly prefixed) raw string literals are literal text; code
    // *after* the raw string on the same line stays live.
    const auto bad = lintSource("src/estimators/fixture.cc",
                                fixture("bad_tok_raw.cc"),
                                testContext());
    EXPECT_GE(countCheck(bad, "determinism"), 1u);

    const auto good = lintSource("src/estimators/fixture.cc",
                                 fixture("good_tok_raw.cc"),
                                 testContext());
    EXPECT_EQ(countCheck(good, "determinism"), 0u);

    std::size_t suppressed = 0;
    const auto sup = lintSource("src/estimators/fixture.cc",
                                fixture("suppressed_tok_raw.cc"),
                                testContext(), &suppressed);
    EXPECT_EQ(countCheck(sup, "determinism"), 0u);
    EXPECT_GE(suppressed, 1u);
}

TEST(LintTokenizer, BackslashContinuedCommentsSpliceLines)
{
    // A line comment ending in '\' swallows the next line (phase-2
    // splicing): code "hidden" there is dead. Macro bodies continued
    // with '\' remain live code.
    const auto bad = lintSource("src/estimators/fixture.cc",
                                fixture("bad_tok_continuation.cc"),
                                testContext());
    EXPECT_GE(countCheck(bad, "determinism"), 1u);

    const auto good = lintSource("src/estimators/fixture.cc",
                                 fixture("good_tok_continuation.cc"),
                                 testContext());
    EXPECT_EQ(countCheck(good, "determinism"), 0u);

    std::size_t suppressed = 0;
    const auto sup = lintSource("src/estimators/fixture.cc",
                                fixture("suppressed_tok_continuation.cc"),
                                testContext(), &suppressed);
    EXPECT_EQ(countCheck(sup, "determinism"), 0u);
    EXPECT_GE(suppressed, 1u);
}

TEST(LintTokenizer, BlockCommentsDoNotNest)
{
    // `/* a /* b */` ends at the first `*/` (as in the compiler), so
    // code after it is live.
    const auto bad = lintSource("src/estimators/fixture.cc",
                                fixture("bad_tok_nested_comment.cc"),
                                testContext());
    EXPECT_GE(countCheck(bad, "determinism"), 1u);

    const auto good = lintSource("src/estimators/fixture.cc",
                                 fixture("good_tok_nested_comment.cc"),
                                 testContext());
    EXPECT_EQ(countCheck(good, "determinism"), 0u);

    std::size_t suppressed = 0;
    const auto sup =
        lintSource("src/estimators/fixture.cc",
                   fixture("suppressed_tok_nested_comment.cc"),
                   testContext(), &suppressed);
    EXPECT_EQ(countCheck(sup, "determinism"), 0u);
    EXPECT_GE(suppressed, 1u);
}

TEST(LintDirectives, AllowListSupportsMultipleChecks)
{
    std::size_t suppressed = 0;
    const auto ds = lintSource(
        "src/estimators/fixture.cc",
        "std::unordered_map<int,int> m; "
        "// leo-lint: allow(determinism, hot-alloc)\n",
        testContext(), &suppressed);
    EXPECT_TRUE(ds.empty());
    EXPECT_EQ(suppressed, 1u);
}

TEST(LintDirectives, AllowOnOtherLineDoesNotSilence)
{
    const auto ds = lintSource(
        "src/estimators/fixture.cc",
        "// leo-lint: allow(determinism)\n"
        "std::unordered_map<int,int> m;\n",
        testContext());
    EXPECT_EQ(countCheck(ds, "determinism"), 1u);
}

TEST(LintDirectives, AllowFileSilencesTheWholeFile)
{
    std::size_t suppressed = 0;
    const auto ds = lintSource(
        "src/estimators/fixture.cc",
        "// leo-lint: allow-file(determinism)\n"
        "std::unordered_map<int, int> a;\n"
        "std::unordered_map<int, int> b;\n",
        testContext(), &suppressed);
    EXPECT_EQ(countCheck(ds, "determinism"), 0u);
    EXPECT_EQ(suppressed, 2u);
}

TEST(LintDirectives, AllowFileIsPerCheck)
{
    // allow-file(determinism) does not silence other checks.
    const auto ds = lintSource(
        "src/estimators/fixture.cc",
        "// leo-lint: allow-file(determinism)\n"
        "// leo-lint: hot-end\n"
        "std::unordered_map<int, int> a;\n",
        testContext());
    EXPECT_EQ(countCheck(ds, "determinism"), 0u);
    EXPECT_EQ(countCheck(ds, "hot-alloc"), 1u);
}

// ---- symbol index ----------------------------------------------- //

TEST(LintIndex, RoundTripsFunctionsStructsAndFields)
{
    const auto units = tokenizeAll(
        {{"src/service/fixture.cc", fixture("bad_nothrow.cc")},
         {"src/runtime/blob.cc", fixture("bad_snapshot.cc")}});
    const auto index = leolint::buildIndex(units);

    // Service with a public method declaration `tick`.
    ASSERT_TRUE(index.structsByName.count("Service"));
    const auto &service =
        index.structs[index.structsByName.at("Service").front()];
    ASSERT_EQ(service.methods.size(), 1u);
    EXPECT_EQ(service.methods[0].name, "tick");
    EXPECT_TRUE(service.methods[0].isPublic);

    // The out-of-class definition Service::tick and the free helper.
    ASSERT_TRUE(index.functionsByName.count("tick"));
    const auto &tick =
        index.functions[index.functionsByName.at("tick").front()];
    EXPECT_EQ(tick.className, "Service");
    EXPECT_EQ(tick.qualified(), "Service::tick");
    EXPECT_EQ(tick.unit, 0u);
    ASSERT_TRUE(index.functionsByName.count("helperDeep"));

    // Blob's fields, with the units they came from.
    ASSERT_TRUE(index.structsByName.count("Blob"));
    const auto &blob =
        index.structs[index.structsByName.at("Blob").front()];
    EXPECT_EQ(blob.unit, 1u);
    ASSERT_EQ(blob.fields.size(), 2u);
    EXPECT_EQ(blob.fields[0].name, "kept");
    EXPECT_EQ(blob.fields[1].name, "dropped");

    // Serializer signatures carry their parameter identifiers.
    ASSERT_TRUE(index.functionsByName.count("saveBlob"));
    const auto &save =
        index.functions[index.functionsByName.at("saveBlob").front()];
    EXPECT_NE(std::find(save.paramIdents.begin(),
                        save.paramIdents.end(), "ByteWriter"),
              save.paramIdents.end());
    EXPECT_NE(std::find(save.paramIdents.begin(),
                        save.paramIdents.end(), "Blob"),
              save.paramIdents.end());

    // resolve(): class-qualified beats the name-wide fallback.
    const auto viaClass = index.resolve("tick", "Service");
    ASSERT_EQ(viaClass.size(), 1u);
    EXPECT_EQ(index.functions[viaClass.front()].qualified(),
              "Service::tick");
}

// ---- call graph ------------------------------------------------- //

TEST(LintCallGraph, RecordsCallsAndGuardedThrows)
{
    const auto units = tokenizeAll(
        {{"src/service/fixture.cc", fixture("good_nothrow.cc")}});
    const auto index = leolint::buildIndex(units);
    const auto graph = leolint::buildCallGraph(units, index);

    const std::size_t tick =
        index.functionsByName.at("tick").front();
    ASSERT_EQ(graph.facts[tick].calls.size(), 1u);
    EXPECT_EQ(graph.facts[tick].calls[0].callee, "helperDeep");
    EXPECT_FALSE(graph.facts[tick].calls[0].guarded);

    // helperDeep's throw sits inside try{} — guarded.
    const std::size_t helper =
        index.functionsByName.at("helperDeep").front();
    bool sawGuardedThrow = false;
    for (const auto &ev : graph.facts[helper].events)
        sawGuardedThrow |=
            ev.kind == leolint::BodyEvent::Kind::Throw && ev.guarded;
    EXPECT_TRUE(sawGuardedThrow);
}

TEST(LintCallGraph, CyclesTerminateAndStillReport)
{
    // Mutual recursion must not hang the BFS, and the throw inside
    // the cycle is still reported exactly once per entry point.
    const auto ds = lintProgramOver(
        {{"src/service/fixture.cc",
          "struct Service { public: void tick(); };\n"
          "void pong();\n"
          "void ping() { pong(); }\n"
          "void pong() { ping(); throw 1; }\n"
          "void Service::tick() { ping(); }\n"}});
    EXPECT_EQ(countCheck(ds, "nothrow-reachability"), 1u);
}

// ---- nothrow-reachability --------------------------------------- //

TEST(LintNoThrowReach, ThrowTwoCallsDeepFires)
{
    const auto ds = lintProgramOver(
        {{"src/service/fixture.cc", fixture("bad_nothrow.cc")}});
    ASSERT_EQ(countCheck(ds, "nothrow-reachability"), 1u);
    for (const Diagnostic &d : ds) {
        if (d.check != "nothrow-reachability")
            continue;
        EXPECT_NE(d.message.find("Service::tick"), std::string::npos)
            << d.message;
        // The chain walks root -> offender.
        EXPECT_GE(d.chain.size(), 2u);
    }
}

TEST(LintNoThrowReach, TryGuardedThrowPasses)
{
    const auto ds = lintProgramOver(
        {{"src/service/fixture.cc", fixture("good_nothrow.cc")}});
    EXPECT_EQ(countCheck(ds, "nothrow-reachability"), 0u);
}

TEST(LintNoThrowReach, AllowDirectiveSilences)
{
    std::size_t suppressed = 0;
    const auto ds = lintProgramOver(
        {{"src/service/fixture.cc", fixture("suppressed_nothrow.cc")}},
        &suppressed);
    EXPECT_EQ(countCheck(ds, "nothrow-reachability"), 0u);
    EXPECT_GE(suppressed, 1u);
}

// ---- determinism-taint ------------------------------------------ //

TEST(LintTaint, ScopedRootReachingWallClockFires)
{
    // fitSomething() (scoped, src/estimators/) calls freshSeed()
    // (unscoped, src/runtime/) which reads the wall clock. The
    // per-file check cannot see this; the taint walk must.
    const auto ds = lintProgramOver(
        {{"src/estimators/fixture.cc", fixture("taint_root.cc")},
         {"src/runtime/fixture_util.cc", fixture("bad_taint_util.cc")}});
    ASSERT_EQ(countCheck(ds, "determinism-taint"), 1u);
    for (const Diagnostic &d : ds) {
        if (d.check != "determinism-taint")
            continue;
        EXPECT_EQ(d.file, "src/runtime/fixture_util.cc");
        EXPECT_NE(d.message.find("fitSomething"), std::string::npos)
            << d.message;
    }
}

TEST(LintTaint, DeterministicHelperPasses)
{
    const auto ds = lintProgramOver(
        {{"src/estimators/fixture.cc", fixture("taint_root.cc")},
         {"src/runtime/fixture_util.cc",
          fixture("good_taint_util.cc")}});
    EXPECT_EQ(countCheck(ds, "determinism-taint"), 0u);
}

TEST(LintTaint, UnreachedHelperIsNotReported)
{
    // Without the scoped root, the unscoped helper's wall-clock read
    // is nobody's business.
    const auto ds = lintProgramOver(
        {{"src/runtime/fixture_util.cc", fixture("bad_taint_util.cc")}});
    EXPECT_EQ(countCheck(ds, "determinism-taint"), 0u);
}

TEST(LintTaint, AllowDirectiveSilences)
{
    std::size_t suppressed = 0;
    const auto ds = lintProgramOver(
        {{"src/estimators/fixture.cc", fixture("taint_root.cc")},
         {"src/runtime/fixture_util.cc",
          fixture("suppressed_taint_util.cc")}},
        &suppressed);
    EXPECT_EQ(countCheck(ds, "determinism-taint"), 0u);
    EXPECT_GE(suppressed, 1u);
}

// ---- hot-alloc-transitive --------------------------------------- //

TEST(LintHotTransitive, AllocBehindACallFires)
{
    const auto ds = lintProgramOver(
        {{"src/estimators/fixture.cc",
          fixture("bad_hot_transitive.cc")}});
    ASSERT_EQ(countCheck(ds, "hot-alloc-transitive"), 1u);
    for (const Diagnostic &d : ds) {
        if (d.check != "hot-alloc-transitive")
            continue;
        EXPECT_NE(d.message.find("resize"), std::string::npos)
            << d.message;
        EXPECT_FALSE(d.chain.empty());
    }
}

TEST(LintHotTransitive, AllocFreeCalleePasses)
{
    const auto ds = lintProgramOver(
        {{"src/estimators/fixture.cc",
          fixture("good_hot_transitive.cc")}});
    EXPECT_EQ(countCheck(ds, "hot-alloc-transitive"), 0u);
}

TEST(LintHotTransitive, AllowDirectiveSilences)
{
    std::size_t suppressed = 0;
    const auto ds = lintProgramOver(
        {{"src/estimators/fixture.cc",
          fixture("suppressed_hot_transitive.cc")}},
        &suppressed);
    EXPECT_EQ(countCheck(ds, "hot-alloc-transitive"), 0u);
    EXPECT_GE(suppressed, 1u);
}

// ---- snapshot-completeness -------------------------------------- //

TEST(LintSnapshot, FieldMissingFromBothSerializersFires)
{
    // `dropped` was added to Blob without touching saveBlob/loadBlob:
    // exactly the drift this check exists to catch.
    const auto ds = lintProgramOver(
        {{"src/runtime/blob.cc", fixture("bad_snapshot.cc")}});
    ASSERT_EQ(countCheck(ds, "snapshot-completeness"), 1u);
    for (const Diagnostic &d : ds) {
        if (d.check != "snapshot-completeness")
            continue;
        EXPECT_NE(d.message.find("dropped"), std::string::npos)
            << d.message;
        EXPECT_NE(d.message.find("Blob"), std::string::npos)
            << d.message;
    }
}

TEST(LintSnapshot, FullyRoundTrippedStructPasses)
{
    const auto ds = lintProgramOver(
        {{"src/runtime/blob.cc", fixture("good_snapshot.cc")}});
    EXPECT_EQ(countCheck(ds, "snapshot-completeness"), 0u);
}

TEST(LintSnapshot, AllowDirectiveOnTheFieldSilences)
{
    std::size_t suppressed = 0;
    const auto ds = lintProgramOver(
        {{"src/runtime/blob.cc", fixture("suppressed_snapshot.cc")}},
        &suppressed);
    EXPECT_EQ(countCheck(ds, "snapshot-completeness"), 0u);
    EXPECT_GE(suppressed, 1u);
}

// ---- registry --------------------------------------------------- //

TEST(LintRegistry, ExposesAllNineChecks)
{
    std::set<std::string> file, program;
    for (const leolint::CheckInfo &c : leolint::fileChecks())
        file.insert(c.name);
    for (const leolint::CheckInfo &c : leolint::programChecks())
        program.insert(c.name);
    const std::set<std::string> expectedFile = {
        "determinism", "hot-alloc", "sanitize-boundary", "obs-naming",
        "header-hygiene"};
    const std::set<std::string> expectedProgram = {
        "nothrow-reachability", "determinism-taint",
        "hot-alloc-transitive", "snapshot-completeness"};
    EXPECT_EQ(file, expectedFile);
    EXPECT_EQ(program, expectedProgram);
}

// ---- the real tree ---------------------------------------------- //

TEST(LintTree, RepoRootLintsClean)
{
    // The acceptance gate, as a unit test: the checked-in tree has
    // zero unsuppressed diagnostics from the file checks *and* the
    // program checks. LEO_LINT_REPO_ROOT is the source dir baked in
    // by tests/CMakeLists.txt.
    const std::filesystem::path root(LEO_LINT_REPO_ROOT);
    const LintContext ctx = leolint::makeContext(root);
    ASSERT_TRUE(ctx.obsNamesLoaded)
        << "src/obs/names.hh missing or unreadable";
    EXPECT_TRUE(ctx.obsNames.count("leo.em.fits.completed"));

    std::vector<SourceUnit> units;
    for (const char *sub : {"src", "tools", "bench", "tests"}) {
        for (const auto &entry :
             std::filesystem::recursive_directory_iterator(root /
                                                           sub)) {
            if (!entry.is_regular_file())
                continue;
            const std::string ext = entry.path().extension().string();
            if (ext != ".cc" && ext != ".hh" && ext != ".h")
                continue;
            const std::string rel =
                std::filesystem::relative(entry.path(), root)
                    .generic_string();
            if (rel.find("lint_fixtures/") != std::string::npos)
                continue;
            const auto src = leolint::readFile(entry.path());
            ASSERT_TRUE(src.has_value()) << entry.path();
            units.push_back(leolint::tokenize(rel, *src));
        }
    }

    std::vector<Diagnostic> all;
    for (const SourceUnit &unit : units)
        for (Diagnostic &d : leolint::lintUnit(unit, ctx))
            all.push_back(std::move(d));
    const auto index = leolint::buildIndex(units);
    const auto graph = leolint::buildCallGraph(units, index);
    for (Diagnostic &d : leolint::lintProgram(units, index, graph))
        all.push_back(std::move(d));

    std::vector<std::string> offenders;
    for (const Diagnostic &d : all)
        offenders.push_back(d.file + ":" + std::to_string(d.line) +
                            " [" + d.check + "] " + d.message);
    EXPECT_TRUE(offenders.empty())
        << "tree is not lint-clean:\n"
        << [&] {
               std::string joined;
               for (const std::string &o : offenders)
                   joined += o + "\n";
               return joined;
           }();
}

} // namespace
