/**
 * @file
 * Unit tests for the dense linear-algebra substrate.
 */

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/cholesky.hh"
#include "linalg/error.hh"
#include "linalg/least_squares.hh"
#include "linalg/matrix.hh"
#include "linalg/poly_features.hh"
#include "linalg/simplex.hh"
#include "linalg/vector.hh"
#include "linalg/workspace.hh"
#include "stats/rng.hh"

using namespace leo;
using linalg::Matrix;
using linalg::Vector;

// ---------------------------------------------------------------- Vector

TEST(Vector, ConstructAndFill)
{
    Vector v(4, 2.5);
    EXPECT_EQ(v.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_DOUBLE_EQ(v[i], 2.5);
    v.fill(-1.0);
    EXPECT_DOUBLE_EQ(v.sum(), -4.0);
}

TEST(Vector, InitializerList)
{
    Vector v{1.0, 2.0, 3.0};
    EXPECT_EQ(v.size(), 3u);
    EXPECT_DOUBLE_EQ(v(1), 2.0);
}

TEST(Vector, BoundsChecking)
{
    Vector v(3);
    EXPECT_THROW(v(3), FatalError);
    const Vector &cv = v;
    EXPECT_THROW(cv(7), FatalError);
}

TEST(Vector, Arithmetic)
{
    Vector a{1.0, 2.0, 3.0};
    Vector b{4.0, 5.0, 6.0};
    Vector c = a + b;
    EXPECT_DOUBLE_EQ(c[0], 5.0);
    EXPECT_DOUBLE_EQ(c[2], 9.0);
    c -= a;
    EXPECT_DOUBLE_EQ(c[1], 5.0);
    Vector d = 2.0 * a;
    EXPECT_DOUBLE_EQ(d[2], 6.0);
    d /= 2.0;
    EXPECT_DOUBLE_EQ(d[2], 3.0);
    EXPECT_THROW(d /= 0.0, FatalError);
}

TEST(Vector, DimensionMismatchThrows)
{
    Vector a(3), b(4);
    EXPECT_THROW(a += b, FatalError);
    EXPECT_THROW(dot(a, b), FatalError);
    EXPECT_THROW(a.cwiseProduct(b), FatalError);
}

TEST(Vector, Statistics)
{
    Vector v{3.0, -1.0, 4.0, 0.0};
    EXPECT_DOUBLE_EQ(v.sum(), 6.0);
    EXPECT_DOUBLE_EQ(v.mean(), 1.5);
    EXPECT_DOUBLE_EQ(v.min(), -1.0);
    EXPECT_DOUBLE_EQ(v.max(), 4.0);
    EXPECT_EQ(v.argmax(), 2u);
    EXPECT_EQ(v.argmin(), 1u);
    EXPECT_DOUBLE_EQ(v.squaredNorm(), 9.0 + 1.0 + 16.0);
    EXPECT_DOUBLE_EQ(v.norm(), std::sqrt(26.0));
}

TEST(Vector, DotAndGather)
{
    Vector a{1.0, 2.0, 3.0};
    Vector b{-1.0, 0.5, 2.0};
    EXPECT_DOUBLE_EQ(dot(a, b), -1.0 + 1.0 + 6.0);
    Vector g = a.gather({2, 0});
    ASSERT_EQ(g.size(), 2u);
    EXPECT_DOUBLE_EQ(g[0], 3.0);
    EXPECT_DOUBLE_EQ(g[1], 1.0);
    EXPECT_THROW(a.gather({5}), FatalError);
}

TEST(Vector, AllFinite)
{
    Vector v{1.0, 2.0};
    EXPECT_TRUE(v.allFinite());
    v[1] = std::nan("");
    EXPECT_FALSE(v.allFinite());
}

// ---------------------------------------------------------------- Matrix

TEST(Matrix, IdentityAndDiag)
{
    Matrix i = Matrix::identity(3);
    EXPECT_DOUBLE_EQ(i(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(i(0, 1), 0.0);
    EXPECT_DOUBLE_EQ(i.trace(), 3.0);

    Matrix d = Matrix::diag(Vector{2.0, 3.0});
    EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(d(1, 1), 3.0);
    EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Matrix, OuterProduct)
{
    Matrix o = Matrix::outer(Vector{1.0, 2.0}, Vector{3.0, 4.0, 5.0});
    EXPECT_EQ(o.rows(), 2u);
    EXPECT_EQ(o.cols(), 3u);
    EXPECT_DOUBLE_EQ(o(1, 2), 10.0);
}

TEST(Matrix, MultiplyMatrixVector)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Vector x{1.0, -1.0};
    Vector y = a * x;
    EXPECT_DOUBLE_EQ(y[0], -1.0);
    EXPECT_DOUBLE_EQ(y[1], -1.0);
}

TEST(Matrix, MultiplyMatrixMatrix)
{
    Matrix a{{1.0, 2.0}, {3.0, 4.0}};
    Matrix b{{0.0, 1.0}, {1.0, 0.0}};
    Matrix c = a * b;
    EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
    EXPECT_DOUBLE_EQ(c(0, 1), 1.0);
    EXPECT_DOUBLE_EQ(c(1, 0), 4.0);
    EXPECT_DOUBLE_EQ(c(1, 1), 3.0);
}

TEST(Matrix, TransposeTraceFrobenius)
{
    Matrix a{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
    Matrix t = a.transpose();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
    EXPECT_NEAR(a.frobeniusNorm(), std::sqrt(91.0), 1e-12);
    EXPECT_THROW(a.trace(), FatalError);
}

TEST(Matrix, SymmetryHelpers)
{
    Matrix a{{1.0, 2.0}, {2.0000000001, 3.0}};
    EXPECT_TRUE(a.isSymmetric(1e-6));
    EXPECT_FALSE(a.isSymmetric(1e-12));
    a.symmetrize();
    EXPECT_DOUBLE_EQ(a(0, 1), a(1, 0));
}

TEST(Matrix, GatherSubmatrix)
{
    Matrix a{{1., 2., 3.}, {4., 5., 6.}, {7., 8., 9.}};
    Matrix s = a.gather({0, 2});
    EXPECT_EQ(s.rows(), 2u);
    EXPECT_DOUBLE_EQ(s(0, 0), 1.0);
    EXPECT_DOUBLE_EQ(s(0, 1), 3.0);
    EXPECT_DOUBLE_EQ(s(1, 1), 9.0);
    Matrix r = a.gather({1}, {0, 1, 2});
    EXPECT_EQ(r.rows(), 1u);
    EXPECT_DOUBLE_EQ(r(0, 2), 6.0);
}

TEST(Matrix, RowColAccess)
{
    Matrix a{{1., 2.}, {3., 4.}};
    Vector r = a.row(1);
    EXPECT_DOUBLE_EQ(r[0], 3.0);
    Vector c = a.col(0);
    EXPECT_DOUBLE_EQ(c[1], 3.0);
    a.setRow(0, Vector{9.0, 8.0});
    EXPECT_DOUBLE_EQ(a(0, 1), 8.0);
    a.setCol(1, Vector{7.0, 6.0});
    EXPECT_DOUBLE_EQ(a(1, 1), 6.0);
}

// -------------------------------------------------------------- Cholesky

TEST(Cholesky, FactorizeAndSolve)
{
    Matrix a{{4.0, 2.0}, {2.0, 3.0}};
    linalg::Cholesky chol(a);
    EXPECT_DOUBLE_EQ(chol.jitterUsed(), 0.0);

    Vector b{2.0, 1.0};
    Vector x = chol.solve(b);
    // Verify A x = b.
    Vector ax = a * x;
    EXPECT_NEAR(ax[0], b[0], 1e-12);
    EXPECT_NEAR(ax[1], b[1], 1e-12);
}

TEST(Cholesky, InverseMatchesSolve)
{
    stats::Rng rng(7);
    const std::size_t n = 12;
    // Random SPD: A = B B' + n I.
    Matrix b(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            b(i, j) = rng.gaussian();
    Matrix a = b * b.transpose();
    a.addToDiagonal(static_cast<double>(n));

    linalg::Cholesky chol(a);
    Matrix inv = chol.inverse();
    Matrix prod = a * inv;
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            EXPECT_NEAR(prod(i, j), i == j ? 1.0 : 0.0, 1e-9);
}

TEST(Cholesky, MatrixSolve)
{
    Matrix a{{5.0, 1.0}, {1.0, 3.0}};
    Matrix rhs{{1.0, 0.0}, {0.0, 1.0}};
    linalg::Cholesky chol(a);
    Matrix x = chol.solve(rhs);
    Matrix prod = a * x;
    EXPECT_NEAR(prod(0, 0), 1.0, 1e-12);
    EXPECT_NEAR(prod(1, 0), 0.0, 1e-12);
}

TEST(Cholesky, LogDet)
{
    Matrix a{{2.0, 0.0}, {0.0, 8.0}};
    linalg::Cholesky chol(a);
    EXPECT_NEAR(chol.logDet(), std::log(16.0), 1e-12);
}

TEST(Cholesky, RejectsNonPositiveDefinite)
{
    Matrix a{{1.0, 2.0}, {2.0, 1.0}}; // eigenvalues 3, -1
    EXPECT_THROW(linalg::Cholesky(a, 1e-6), FatalError);
}

TEST(Cholesky, JitterRecoversBorderline)
{
    // Singular PSD matrix; jitter should rescue it.
    Matrix a{{1.0, 1.0}, {1.0, 1.0}};
    linalg::Cholesky chol(a, 1e-4);
    EXPECT_GT(chol.jitterUsed(), 0.0);
}

TEST(Cholesky, RejectsAsymmetric)
{
    Matrix a{{1.0, 0.5}, {0.0, 1.0}};
    EXPECT_THROW(linalg::Cholesky{a}, FatalError);
}

// ------------------------------------------------ Rank-1 up/downdates

namespace
{

/** Random SPD matrix A = B B' + n I for the rank-1 tests. */
Matrix
randomSpd(std::size_t n, unsigned seed)
{
    stats::Rng rng(seed);
    Matrix b(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            b(i, j) = rng.gaussian();
    Matrix a = b * b.transpose();
    a.addToDiagonal(static_cast<double>(n));
    return a;
}

/** Max |L1 - L2| over the lower triangle. */
double
lowerMaxDiff(const Matrix &l1, const Matrix &l2)
{
    double worst = 0.0;
    for (std::size_t i = 0; i < l1.rows(); ++i)
        for (std::size_t j = 0; j <= i; ++j)
            worst = std::max(worst,
                             std::abs(l1.at(i, j) - l2.at(i, j)));
    return worst;
}

} // namespace

TEST(CholeskyRank1, UpdateMatchesRefactorization)
{
    const std::size_t n = 16;
    Matrix a = randomSpd(n, 11);
    stats::Rng rng(12);
    Vector x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = rng.gaussian();

    linalg::Cholesky chol(a);
    ASSERT_EQ(chol.updateRank1(x), linalg::UpdateStatus::Ok);

    Matrix aup = a;
    aup.outerAddInto(1.0, x, x);
    linalg::Cholesky ref(aup);
    EXPECT_LT(lowerMaxDiff(chol.factor(), ref.factor()), 1e-10);
    EXPECT_NEAR(chol.logDet(), ref.logDet(), 1e-10);
}

TEST(CholeskyRank1, UpdateDowndateRoundTrips)
{
    const std::size_t n = 12;
    Matrix a = randomSpd(n, 21);
    stats::Rng rng(22);
    Vector x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = rng.gaussian();

    linalg::Cholesky chol(a);
    const Matrix before = chol.factor();
    ASSERT_EQ(chol.updateRank1(x), linalg::UpdateStatus::Ok);
    ASSERT_EQ(chol.downdateRank1(x), linalg::UpdateStatus::Ok);
    EXPECT_LT(lowerMaxDiff(chol.factor(), before), 1e-10);
}

TEST(CholeskyRank1, RandomSequenceTracksRefactorization)
{
    // A window of adds and evictions, the way the incremental
    // refitter drives the factor: every prefix must stay close to a
    // from-scratch factorization of the running matrix.
    const std::size_t n = 8;
    Matrix a = randomSpd(n, 31);
    linalg::Cholesky chol(a);
    stats::Rng rng(32);

    std::vector<Vector> window;
    for (int step = 0; step < 40; ++step) {
        Vector x(n);
        for (std::size_t i = 0; i < n; ++i)
            x[i] = rng.gaussian();
        ASSERT_EQ(chol.updateRank1(x), linalg::UpdateStatus::Ok);
        a.outerAddInto(1.0, x, x);
        window.push_back(x);
        if (window.size() > 6) {
            const Vector old = window.front();
            window.erase(window.begin());
            ASSERT_EQ(chol.downdateRank1(old),
                      linalg::UpdateStatus::Ok);
            a.outerAddInto(-1.0, old, old);
        }
    }
    linalg::Cholesky ref(a);
    EXPECT_LT(lowerMaxDiff(chol.factor(), ref.factor()), 1e-8);
}

TEST(CholeskyRank1, DowndateNearSingularityFailsGracefully)
{
    // Downdating A by one of its own "columns" scaled to push an
    // eigenvalue through zero must refuse without touching the
    // factor and without manufacturing NaNs.
    Matrix a{{4.0, 2.0}, {2.0, 3.0}};
    linalg::Cholesky chol(a);
    const Matrix before = chol.factor();

    // x x' with x = (2, 1)' makes A - x x' exactly singular at the
    // (0,0) pivot; scale slightly past it to be infeasible.
    Vector x{2.0000001, 1.0};
    EXPECT_EQ(chol.downdateRank1(x),
              linalg::UpdateStatus::NotPositiveDefinite);
    EXPECT_EQ(lowerMaxDiff(chol.factor(), before), 0.0);
    EXPECT_TRUE(chol.factor().allFinite());

    // The factor is still usable after the refusal.
    Vector b{1.0, 1.0};
    Vector sol = b;
    chol.solveInPlace(sol);
    Vector ab = a * sol;
    EXPECT_NEAR(ab[0], b[0], 1e-12);
    EXPECT_NEAR(ab[1], b[1], 1e-12);
}

TEST(CholeskyRank1, DowndateExactBoundaryRefusedByTolerance)
{
    // rho2 lands at ~0 for the exactly singular downdate; the default
    // tolerance must classify it as infeasible, not sqrt(-eps).
    Matrix a{{4.0, 2.0}, {2.0, 3.0}};
    linalg::Cholesky chol(a);
    Vector x{2.0, 1.0};
    EXPECT_EQ(chol.downdateRank1(x),
              linalg::UpdateStatus::NotPositiveDefinite);
    EXPECT_TRUE(chol.factor().allFinite());
}

TEST(CholeskyRank1, NonFiniteVectorsRejected)
{
    Matrix a{{4.0, 2.0}, {2.0, 3.0}};
    linalg::Cholesky chol(a);
    const Matrix before = chol.factor();
    Vector x{1.0, std::numeric_limits<double>::quiet_NaN()};
    EXPECT_EQ(chol.updateRank1(x),
              linalg::UpdateStatus::NotPositiveDefinite);
    EXPECT_EQ(chol.downdateRank1(x),
              linalg::UpdateStatus::NotPositiveDefinite);
    EXPECT_EQ(lowerMaxDiff(chol.factor(), before), 0.0);
}

// --------------------------------------------------------- Least squares

TEST(LeastSquares, ExactFit)
{
    // y = 2 + 3x on 4 points, quadratic-free.
    Matrix x(4, 2);
    Vector y(4);
    for (std::size_t i = 0; i < 4; ++i) {
        const double xv = static_cast<double>(i);
        x(i, 0) = 1.0;
        x(i, 1) = xv;
        y[i] = 2.0 + 3.0 * xv;
    }
    auto fit = linalg::leastSquares(x, y);
    EXPECT_TRUE(fit.fullRank);
    EXPECT_EQ(fit.rank, 2u);
    EXPECT_NEAR(fit.coefficients[0], 2.0, 1e-10);
    EXPECT_NEAR(fit.coefficients[1], 3.0, 1e-10);
    EXPECT_NEAR(fit.residualSumSquares, 0.0, 1e-18);
}

TEST(LeastSquares, OverdeterminedNoisy)
{
    stats::Rng rng(3);
    const std::size_t m = 200;
    Matrix x(m, 3);
    Vector y(m);
    for (std::size_t i = 0; i < m; ++i) {
        const double a = rng.uniform(-1, 1);
        const double b = rng.uniform(-1, 1);
        x(i, 0) = 1.0;
        x(i, 1) = a;
        x(i, 2) = b;
        y[i] = 0.5 - 2.0 * a + 4.0 * b + rng.gaussian(0.0, 0.01);
    }
    auto fit = linalg::leastSquares(x, y);
    EXPECT_TRUE(fit.fullRank);
    EXPECT_NEAR(fit.coefficients[0], 0.5, 0.01);
    EXPECT_NEAR(fit.coefficients[1], -2.0, 0.01);
    EXPECT_NEAR(fit.coefficients[2], 4.0, 0.01);
}

TEST(LeastSquares, DetectsRankDeficiency)
{
    // Fewer rows than columns: necessarily rank deficient.
    Matrix x(2, 3);
    x(0, 0) = 1.0;
    x(0, 1) = 2.0;
    x(0, 2) = 3.0;
    x(1, 0) = 4.0;
    x(1, 1) = 5.0;
    x(1, 2) = 6.0;
    Vector y{1.0, 2.0};
    auto fit = linalg::leastSquares(x, y);
    EXPECT_FALSE(fit.fullRank);
    EXPECT_LE(fit.rank, 2u);
}

TEST(LeastSquares, DuplicateColumnRankDeficient)
{
    Matrix x(5, 2);
    Vector y(5);
    for (std::size_t i = 0; i < 5; ++i) {
        x(i, 0) = static_cast<double>(i);
        x(i, 1) = static_cast<double>(i); // duplicate
        y[i] = static_cast<double>(i);
    }
    auto fit = linalg::leastSquares(x, y);
    EXPECT_FALSE(fit.fullRank);
}

TEST(Ridge, ShrinksTowardZero)
{
    Matrix x(3, 2);
    x(0, 0) = 1.0;
    x(1, 1) = 1.0;
    x(2, 0) = 1.0;
    x(2, 1) = 1.0;
    Vector y{1.0, 1.0, 2.0};
    Vector w_small = linalg::ridgeRegression(x, y, 1e-8);
    Vector w_big = linalg::ridgeRegression(x, y, 100.0);
    EXPECT_GT(w_small.norm(), w_big.norm());
    EXPECT_THROW(linalg::ridgeRegression(x, y, 0.0), FatalError);
}

// ------------------------------------------------------ Poly features

TEST(PolyFeatures, CountMatchesBinomial)
{
    // C(d + k, k) features for d inputs, degree k.
    linalg::PolynomialFeatures f42(4, 2);
    EXPECT_EQ(f42.numFeatures(), 15u); // the Fig. 12 threshold
    linalg::PolynomialFeatures f23(2, 3);
    EXPECT_EQ(f23.numFeatures(), 10u);
    linalg::PolynomialFeatures f11(1, 1);
    EXPECT_EQ(f11.numFeatures(), 2u);
}

TEST(PolyFeatures, ExpandValues)
{
    linalg::PolynomialFeatures f(2, 2);
    Vector x{2.0, 3.0};
    Vector e = f.expand(x);
    ASSERT_EQ(e.size(), 6u);
    // Sorted by total degree: 1, x, y, x^2, xy, y^2.
    EXPECT_DOUBLE_EQ(e[0], 1.0);
    double sum = 0.0;
    for (double v : e)
        sum += v;
    // 1 + 2 + 3 + 4 + 6 + 9 = 25.
    EXPECT_DOUBLE_EQ(sum, 25.0);
}

TEST(PolyFeatures, DesignMatrixShape)
{
    linalg::PolynomialFeatures f(3, 2);
    std::vector<Vector> rows{Vector{1., 2., 3.}, Vector{0., 0., 0.}};
    Matrix d = f.designMatrix(rows);
    EXPECT_EQ(d.rows(), 2u);
    EXPECT_EQ(d.cols(), f.numFeatures());
    // The all-zero point has only the constant feature.
    double row1 = 0.0;
    for (std::size_t c = 0; c < d.cols(); ++c)
        row1 += d(1, c);
    EXPECT_DOUBLE_EQ(row1, 1.0);
}

// ------------------------------------------------------------- Simplex

TEST(Simplex, SimpleMinimization)
{
    // min x + y s.t. x + 2y >= 4 (as -x - 2y <= -4), x,y >= 0.
    linalg::LinearProgram lp(2);
    lp.setObjective(Vector{1.0, 1.0});
    lp.addInequality(Vector{-1.0, -2.0}, -4.0);
    auto sol = lp.solve();
    ASSERT_EQ(sol.status, linalg::LpStatus::Optimal);
    EXPECT_NEAR(sol.objective, 2.0, 1e-8); // x=0, y=2
}

TEST(Simplex, EqualityConstraint)
{
    // min 2x + y s.t. x + y = 3, x,y >= 0 -> x=0, y=3, obj 3.
    linalg::LinearProgram lp(2);
    lp.setObjective(Vector{2.0, 1.0});
    lp.addEquality(Vector{1.0, 1.0}, 3.0);
    auto sol = lp.solve();
    ASSERT_EQ(sol.status, linalg::LpStatus::Optimal);
    EXPECT_NEAR(sol.objective, 3.0, 1e-8);
    EXPECT_NEAR(sol.x[1], 3.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible)
{
    // x = 5 and x <= 1 cannot hold.
    linalg::LinearProgram lp(1);
    lp.setObjective(Vector{1.0});
    lp.addEquality(Vector{1.0}, 5.0);
    lp.addInequality(Vector{1.0}, 1.0);
    auto sol = lp.solve();
    EXPECT_EQ(sol.status, linalg::LpStatus::Infeasible);
}

TEST(Simplex, DetectsUnbounded)
{
    // min -x s.t. x >= 0 only.
    linalg::LinearProgram lp(1);
    lp.setObjective(Vector{-1.0});
    lp.addInequality(Vector{-1.0}, 0.0); // -x <= 0, vacuous
    auto sol = lp.solve();
    EXPECT_EQ(sol.status, linalg::LpStatus::Unbounded);
}

TEST(Simplex, EnergyLpShape)
{
    // A miniature Equation (1): three configs, rates 1/2/4,
    // powers 1/3/10; W = 2, T = 1. Pure config 1 (t = 1) meets the
    // work exactly with energy 3; every feasible mix costs more.
    linalg::LinearProgram lp(3);
    lp.setObjective(Vector{1.0, 3.0, 10.0});
    lp.addEquality(Vector{1.0, 2.0, 4.0}, 2.0);
    lp.addInequality(Vector{1.0, 1.0, 1.0}, 1.0);
    auto sol = lp.solve();
    ASSERT_EQ(sol.status, linalg::LpStatus::Optimal);
    EXPECT_NEAR(sol.objective, 3.0, 1e-8);
    EXPECT_NEAR(sol.x[1], 1.0, 1e-8);
}

// ------------------------------------------- Blocked kernel properties

namespace
{

/** Naive i,j,k reference product — the shared accumulation order
 *  (inner dimension folded in increasing k) the blocked kernels
 *  must reproduce bit for bit. */
Matrix
naiveMultiply(const Matrix &a, const Matrix &b)
{
    Matrix out(a.rows(), b.cols());
    for (std::size_t i = 0; i < a.rows(); ++i) {
        for (std::size_t j = 0; j < b.cols(); ++j) {
            double acc = 0.0;
            for (std::size_t k = 0; k < a.cols(); ++k)
                acc += a.at(i, k) * b.at(k, j);
            out.at(i, j) = acc;
        }
    }
    return out;
}

Matrix
randomMatrix(std::size_t rows, std::size_t cols, stats::Rng &rng)
{
    Matrix m(rows, cols);
    for (std::size_t r = 0; r < rows; ++r)
        for (std::size_t c = 0; c < cols; ++c)
            // Wide dynamic range so reordered accumulation would
            // actually round differently.
            m.at(r, c) = rng.gaussian() * std::pow(10.0, rng.uniform(-6.0, 6.0));
    return m;
}

void
expectBitwiseEqual(const Matrix &a, const Matrix &b,
                   const std::string &what)
{
    ASSERT_EQ(a.rows(), b.rows()) << what;
    ASSERT_EQ(a.cols(), b.cols()) << what;
    for (std::size_t r = 0; r < a.rows(); ++r)
        for (std::size_t c = 0; c < a.cols(); ++c)
            ASSERT_EQ(a.at(r, c), b.at(r, c))
                << what << " differs at (" << r << "," << c << ")";
}

/** Awkward (m, k, n) shapes: degenerate edges, primes, and dims
 *  straddling the 64-wide tile of the blocked kernels. */
const std::size_t kShapes[][3] = {
    {1, 1, 1},   {1, 7, 1},   {1, 5, 9},    {9, 1, 5},
    {3, 17, 1},  {7, 11, 13}, {31, 37, 29}, {61, 64, 67},
    {64, 64, 64}, {65, 63, 64}, {65, 129, 66}, {128, 65, 2},
};

} // namespace

TEST(BlockedKernels, MultiplyMatchesNaiveToZeroUlp)
{
    stats::Rng rng(8881);
    for (const auto &shape : kShapes) {
        const Matrix a = randomMatrix(shape[0], shape[1], rng);
        const Matrix b = randomMatrix(shape[1], shape[2], rng);
        expectBitwiseEqual(Matrix::multiply(a, b), naiveMultiply(a, b),
                           "multiply " + std::to_string(shape[0]) + "x" +
                               std::to_string(shape[1]) + "x" +
                               std::to_string(shape[2]));
    }
}

TEST(BlockedKernels, OperatorForwardsToBlockedMultiply)
{
    stats::Rng rng(17);
    const Matrix a = randomMatrix(33, 65, rng);
    const Matrix b = randomMatrix(65, 31, rng);
    expectBitwiseEqual(a * b, Matrix::multiply(a, b), "operator*");
}

TEST(BlockedKernels, MultiplyTransposedMatchesNaiveToZeroUlp)
{
    stats::Rng rng(4242);
    for (const auto &shape : kShapes) {
        const Matrix a = randomMatrix(shape[0], shape[1], rng);
        const Matrix bt = randomMatrix(shape[2], shape[1], rng);
        expectBitwiseEqual(
            Matrix::multiplyTransposed(a, bt),
            naiveMultiply(a, bt.transpose()),
            "multiplyTransposed " + std::to_string(shape[0]) + "x" +
                std::to_string(shape[1]) + "x" +
                std::to_string(shape[2]));
    }
}

TEST(BlockedKernels, SyrkMatchesNaiveToZeroUlp)
{
    stats::Rng rng(9091);
    for (const auto &shape : kShapes) {
        const Matrix a = randomMatrix(shape[0], shape[1], rng);
        const Matrix s = Matrix::syrk(a);
        expectBitwiseEqual(s, naiveMultiply(a, a.transpose()),
                           "syrk " + std::to_string(shape[0]) + "x" +
                               std::to_string(shape[1]));
        EXPECT_TRUE(s.isSymmetric(0.0));
    }
}

TEST(BlockedKernels, GramMatchesNaiveToZeroUlp)
{
    stats::Rng rng(7777);
    for (const auto &shape : kShapes) {
        const Matrix a = randomMatrix(shape[0], shape[1], rng);
        const Matrix g = Matrix::gram(a);
        expectBitwiseEqual(g, naiveMultiply(a.transpose(), a),
                           "gram " + std::to_string(shape[0]) + "x" +
                               std::to_string(shape[1]));
        EXPECT_TRUE(g.isSymmetric(0.0));
    }
}

TEST(BlockedKernels, GramIsOrderedSumOfRowOuterProducts)
{
    // The EM M-step contract: gram(R) where rows of R are residuals
    // r_i equals sum_i outer(r_i, r_i) accumulated in row order —
    // exactly, not approximately.
    stats::Rng rng(555);
    const Matrix r = randomMatrix(13, 37, rng);
    Matrix expect(37, 37, 0.0);
    for (std::size_t i = 0; i < r.rows(); ++i) {
        const Vector row = r.row(i);
        expect += Matrix::outer(row, row);
    }
    expectBitwiseEqual(Matrix::gram(r), expect, "gram-as-outer-sum");
}

// ------------------------------------------------- Into-variant kernels
//
// The allocation-free EM loop substitutes every allocating kernel
// with an into-buffer variant; each substitution must be exact — 0
// ULP — or the workspace path would diverge from the reference path.
// Every test below also re-runs into the *same dirty buffers* to
// prove stale workspace contents cannot leak into a result.

namespace
{

/** Random SPD matrix a = b b' + n I with wide dynamic range. */
Matrix
randomSpd(std::size_t n, stats::Rng &rng)
{
    Matrix b(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            b.at(i, j) = rng.gaussian();
    Matrix a = Matrix::syrk(b);
    a.addToDiagonal(static_cast<double>(n));
    return a;
}

/** The EM-relevant dimensions: trivial, prime, one tile, many tiles. */
const std::size_t kSpdSizes[] = {1, 7, 64, 130};

} // namespace

TEST(Workspace, ReusesBuffersByKeyAndShape)
{
    linalg::Workspace ws;
    Matrix &a = ws.matrix("a", 3, 4);
    a.at(1, 2) = 42.0;
    EXPECT_EQ(ws.allocations(), 1u);

    // Same key + shape: same buffer, contents untouched.
    Matrix &a2 = ws.matrix("a", 3, 4);
    EXPECT_EQ(&a, &a2);
    EXPECT_DOUBLE_EQ(a2.at(1, 2), 42.0);
    EXPECT_EQ(ws.allocations(), 1u);

    // Shape change on the same key counts as a fresh allocation.
    Matrix &a3 = ws.matrix("a", 5, 5);
    EXPECT_EQ(a3.rows(), 5u);
    EXPECT_EQ(ws.allocations(), 2u);

    ws.vector("v", 9);
    ws.vectorArray("arr", 3, 8);
    EXPECT_EQ(ws.buffers(), 3u);
    EXPECT_EQ(ws.allocations(), 4u);

    std::vector<Vector> &arr = ws.vectorArray("arr", 3, 8);
    EXPECT_EQ(arr.size(), 3u);
    EXPECT_EQ(ws.allocations(), 4u);
}

TEST(IntoKernels, MultiplyIntoMatchesMultiplyToZeroUlp)
{
    stats::Rng rng(3111);
    linalg::Workspace ws;
    Matrix &out = ws.matrix("out", 1, 1);
    for (const auto &shape : kShapes) {
        const Matrix a = randomMatrix(shape[0], shape[1], rng);
        const Matrix b = randomMatrix(shape[1], shape[2], rng);
        // Reuse the same (dirty, reshaped) buffer every iteration.
        Matrix::multiplyInto(out, a, b);
        expectBitwiseEqual(out, Matrix::multiply(a, b),
                           "multiplyInto " + std::to_string(shape[0]) +
                               "x" + std::to_string(shape[1]) + "x" +
                               std::to_string(shape[2]));
    }
}

TEST(IntoKernels, SyrkIntoAndGramIntoMatchToZeroUlp)
{
    stats::Rng rng(3222);
    Matrix s_out, g_out;
    for (const auto &shape : kShapes) {
        const Matrix a = randomMatrix(shape[0], shape[1], rng);
        Matrix::syrkInto(s_out, a);
        expectBitwiseEqual(s_out, Matrix::syrk(a),
                           "syrkInto " + std::to_string(shape[0]) + "x" +
                               std::to_string(shape[1]));
        Matrix::gramInto(g_out, a);
        expectBitwiseEqual(g_out, Matrix::gram(a),
                           "gramInto " + std::to_string(shape[0]) + "x" +
                               std::to_string(shape[1]));
    }
}

TEST(IntoKernels, GatherTransposeAndAxpyVariantsMatchToZeroUlp)
{
    stats::Rng rng(3333);
    const Matrix a = randomMatrix(67, 67, rng);
    const std::vector<std::size_t> idx = {0, 3, 5, 17, 64, 66};

    Matrix out;
    a.gatherInto(out, idx);
    expectBitwiseEqual(out, a.gather(idx), "gatherInto");

    a.transposeInto(out);
    expectBitwiseEqual(out, a.transpose(), "transposeInto");

    const Matrix b = randomMatrix(67, 67, rng);
    Matrix sum = a;
    sum.addScaled(-3.5, b);
    Matrix expect = a;
    expect += -3.5 * b;
    expectBitwiseEqual(sum, expect, "addScaled");

    Vector x(67), y(67);
    for (std::size_t i = 0; i < 67; ++i) {
        x[i] = rng.gaussian();
        y[i] = rng.gaussian();
    }
    sum = a;
    sum.outerAddInto(2.25, x, y);
    expect = a;
    expect += 2.25 * Matrix::outer(x, y);
    expectBitwiseEqual(sum, expect, "outerAddInto");

    Vector vs = x;
    vs.addScaled(0.75, y);
    const Vector vexpect = x + 0.75 * y;
    for (std::size_t i = 0; i < 67; ++i)
        ASSERT_EQ(vs[i], vexpect[i]) << "Vector::addScaled at " << i;
}

TEST(IntoKernels, SymvAndSymmetricAxpyReadOnlyLowerTriangle)
{
    stats::Rng rng(3444);
    for (std::size_t n : kSpdSizes) {
        const Matrix a = randomSpd(n, rng);
        // Poison the strict upper triangle: symmetry-aware consumers
        // must never read it.
        Matrix lower = a;
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = i + 1; j < n; ++j)
                lower.at(i, j) = std::nan("");

        Vector x(n);
        for (std::size_t i = 0; i < n; ++i)
            x[i] = rng.gaussian();
        Vector y;
        linalg::symv(lower, x, y);
        const Vector expect = a * x;
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(y[i], expect[i]) << "symv n=" << n << " at " << i;

        Matrix sum = randomMatrix(n, n, rng);
        Matrix full_expect = sum;
        sum.addScaledSymmetric(-1.75, lower);
        full_expect += -1.75 * a;
        expectBitwiseEqual(sum, full_expect,
                           "addScaledSymmetric n=" + std::to_string(n));
    }
}

TEST(IntoKernels, FactorizeMatchesConstructorToZeroUlp)
{
    stats::Rng rng(3555);
    linalg::Cholesky incremental;
    for (std::size_t n : kSpdSizes) {
        const Matrix sigma = randomSpd(n, rng);
        const double added = 0.037;

        Matrix a = sigma;
        a.addToDiagonal(added);
        const linalg::Cholesky reference(a, 1e-6);

        // Reuses the factor storage left over from the previous
        // (different-sized) problem.
        incremental.reserve(n);
        incremental.factorize(sigma, added, 1e-6);
        expectBitwiseEqual(incremental.factor(), reference.factor(),
                           "factorize n=" + std::to_string(n));
        EXPECT_EQ(incremental.jitterUsed(), reference.jitterUsed());
    }
}

TEST(IntoKernels, FactorizeAppliesJitterScheduleLikeConstructor)
{
    // Singular PSD input: both paths must land on the same jitter.
    Matrix a{{1.0, 1.0}, {1.0, 1.0}};
    const linalg::Cholesky reference(a, 1e-4);
    linalg::Cholesky incremental;
    incremental.factorize(a, 0.0, 1e-4);
    EXPECT_EQ(incremental.jitterUsed(), reference.jitterUsed());
    expectBitwiseEqual(incremental.factor(), reference.factor(),
                       "jittered factor");
    // And an outright non-PSD input still fails.
    Matrix bad{{1.0, 2.0}, {2.0, 1.0}};
    EXPECT_THROW(incremental.factorize(bad, 0.0, 1e-6), FatalError);
}

TEST(IntoKernels, InverseIntoMatchesInverseToZeroUlp)
{
    stats::Rng rng(3666);
    linalg::Workspace ws;
    Matrix inv_buf;
    for (std::size_t n : kSpdSizes) {
        const Matrix a = randomSpd(n, rng);
        const linalg::Cholesky chol(a, 1e-6);
        const Matrix reference = chol.inverse();

        chol.inverseInto(inv_buf, ws, /*mirror=*/true);
        expectBitwiseEqual(inv_buf, reference,
                           "inverseInto n=" + std::to_string(n));

        // mirror = false must still produce the exact lower triangle
        // (the upper is unspecified).
        chol.inverseInto(inv_buf, ws, /*mirror=*/false);
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j <= i; ++j)
                ASSERT_EQ(inv_buf.at(i, j), reference.at(i, j))
                    << "lower-only inverseInto n=" << n;
    }
}

TEST(IntoKernels, InPlaceSolvesMatchAllocatingSolvesToZeroUlp)
{
    stats::Rng rng(3777);
    for (std::size_t n : kSpdSizes) {
        const Matrix a = randomSpd(n, rng);
        const linalg::Cholesky chol(a, 1e-6);

        Vector b(n);
        for (std::size_t i = 0; i < n; ++i)
            b[i] = rng.gaussian();

        Vector x = b;
        chol.solveInPlace(x);
        const Vector expect = chol.solve(b);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(x[i], expect[i]) << "solveInPlace n=" << n;

        Vector y = b;
        chol.solveLowerInPlace(y);
        const Vector lexpect = chol.solveLower(b);
        for (std::size_t i = 0; i < n; ++i)
            ASSERT_EQ(y[i], lexpect[i]) << "solveLowerInPlace n=" << n;

        const Matrix rhs = randomMatrix(n, 3, rng);
        Matrix xm = rhs;
        chol.solveInPlace(xm);
        expectBitwiseEqual(xm, chol.solve(rhs),
                           "matrix solveInPlace n=" + std::to_string(n));
    }
}

TEST(IntoKernels, LargeProblemMatchesNaiveKernelsToZeroUlp)
{
    // One EM-scale problem (n ~ 1024, off the tile grid) exercising
    // the full factor -> invert pipeline against the naive kernels.
    stats::Rng rng(3888);
    const std::size_t n = 1030;
    Matrix b(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            b.at(i, j) = rng.gaussian();
    Matrix a = Matrix::syrk(b);
    a.addToDiagonal(static_cast<double>(n));

    const linalg::Cholesky reference(a, 1e-6);
    linalg::Cholesky blocked;
    blocked.reserve(n);
    blocked.factorize(a, 0.0, 1e-6);
    expectBitwiseEqual(blocked.factor(), reference.factor(),
                       "blocked factor n=1030");

    linalg::Workspace ws;
    Matrix inv_buf;
    blocked.inverseInto(inv_buf, ws, /*mirror=*/true);
    expectBitwiseEqual(inv_buf, reference.inverse(),
                       "inverseInto n=1030");
}
