/**
 * @file
 * Tests for the symmetric eigensolver and the rank analysis of the
 * learned covariance.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "estimators/leo.hh"
#include "linalg/eigen.hh"
#include "linalg/error.hh"
#include "platform/config_space.hh"
#include "stats/rng.hh"
#include "telemetry/profile_store.hh"
#include "telemetry/sampler.hh"
#include "workloads/suite.hh"

using namespace leo;
using linalg::Matrix;
using linalg::Vector;

TEST(Eigen, DiagonalMatrix)
{
    Matrix a = Matrix::diag(Vector{3.0, 1.0, 2.0});
    auto e = linalg::symmetricEigen(a);
    EXPECT_TRUE(e.converged);
    EXPECT_DOUBLE_EQ(e.values[0], 3.0);
    EXPECT_DOUBLE_EQ(e.values[1], 2.0);
    EXPECT_DOUBLE_EQ(e.values[2], 1.0);
}

TEST(Eigen, KnownTwoByTwo)
{
    // [[2,1],[1,2]] has eigenvalues 3 and 1.
    Matrix a{{2.0, 1.0}, {1.0, 2.0}};
    auto e = linalg::symmetricEigen(a);
    EXPECT_NEAR(e.values[0], 3.0, 1e-12);
    EXPECT_NEAR(e.values[1], 1.0, 1e-12);
    // Eigenvector of 3 is (1,1)/sqrt(2) up to sign.
    EXPECT_NEAR(std::abs(e.vectors(0, 0)), 1.0 / std::sqrt(2.0),
                1e-10);
}

TEST(Eigen, ReconstructionAndOrthogonality)
{
    stats::Rng rng(33);
    const std::size_t n = 16;
    Matrix b(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            b(i, j) = rng.gaussian();
    Matrix a = b * b.transpose();

    auto e = linalg::symmetricEigen(a);
    ASSERT_TRUE(e.converged);

    // V diag(w) V' == A.
    Matrix recon =
        e.vectors * Matrix::diag(e.values) * e.vectors.transpose();
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            EXPECT_NEAR(recon(i, j), a(i, j),
                        1e-8 * (1.0 + std::abs(a(i, j))));

    // V' V == I.
    Matrix vtv = e.vectors.transpose() * e.vectors;
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            EXPECT_NEAR(vtv(i, j), i == j ? 1.0 : 0.0, 1e-10);

    // Trace preserved.
    EXPECT_NEAR(e.values.sum(), a.trace(), 1e-8);
}

TEST(Eigen, RejectsAsymmetric)
{
    Matrix a{{1.0, 2.0}, {0.0, 1.0}};
    EXPECT_THROW(linalg::symmetricEigen(a), FatalError);
}

TEST(Eigen, EffectiveRank)
{
    EXPECT_EQ(linalg::effectiveRank(Vector{10.0, 0.0, 0.0}), 1u);
    EXPECT_EQ(linalg::effectiveRank(Vector{5.0, 5.0, 0.0}, 0.99),
              2u);
    EXPECT_EQ(linalg::effectiveRank(Vector{1.0, 1.0, 1.0, 1.0}, 1.0),
              4u);
    // Negative round-off eigenvalues are clamped.
    EXPECT_EQ(linalg::effectiveRank(Vector{3.0, -1e-14}, 0.9), 1u);
    EXPECT_THROW(linalg::effectiveRank(Vector{1.0}, 0.0), FatalError);
}

TEST(Eigen, LearnedSigmaIsEffectivelyLowRank)
{
    // The DESIGN.md discussion: with M-1 = 24 fully observed priors
    // the learned Sigma carries at most ~M directions of real
    // variance (plus the psi I regularizer). Verify on the 32-point
    // space: 99% of the trace in <= 25 directions, and far fewer
    // than n directions carry 90%.
    platform::Machine machine;
    auto space = platform::ConfigSpace::coreOnly(machine);
    stats::Rng rng(7);
    telemetry::HeartbeatMonitor mon;
    telemetry::WattsUpMeter met;
    auto store = telemetry::ProfileStore::collect(
        workloads::standardSuite(), machine, space, mon, met, rng);

    workloads::ApplicationModel app(
        workloads::profileByName("kmeans"), machine);
    telemetry::Profiler prof(mon, met);
    telemetry::RandomSampler pol;
    auto obs = prof.sample(app, space, pol, 8, rng);

    estimators::LeoEstimator leo;
    auto fit = leo.fitMetric(
        estimators::priorVectors(store.without("kmeans"),
                                 estimators::Metric::Performance),
        obs.indices, obs.performance);

    auto e = linalg::symmetricEigen(fit.sigma);
    ASSERT_TRUE(e.converged);
    EXPECT_GE(e.values.min(), -1e-9); // PSD up to round-off
    EXPECT_LE(linalg::effectiveRank(e.values, 0.90), 12u);
    EXPECT_LE(linalg::effectiveRank(e.values, 0.99), 26u);
}
