/**
 * @file
 * Tests for the LeoSystem facade and end-to-end integration.
 */

#include <gtest/gtest.h>

#include "core/leo_system.hh"
#include "linalg/error.hh"
#include "stats/metrics.hh"
#include "workloads/ground_truth.hh"
#include "workloads/suite.hh"

using namespace leo;

namespace
{

/** A small facade instance on the 32-point core-only space. */
core::LeoSystem
smallSystem(std::size_t budget = 8)
{
    platform::Machine machine;
    auto space = platform::ConfigSpace::coreOnly(machine);
    stats::Rng rng(5);
    telemetry::HeartbeatMonitor mon;
    telemetry::WattsUpMeter met;
    auto prior = telemetry::ProfileStore::collect(
        workloads::standardSuite(), machine, space, mon, met, rng);
    core::LeoSystemOptions opt;
    opt.sampleBudget = budget;
    return core::LeoSystem(machine, space, std::move(prior), opt);
}

} // namespace

TEST(LeoSystem, ObserveEstimateMinimize)
{
    auto sys = smallSystem();
    workloads::ApplicationModel target(
        workloads::profileByName("kmeans"), sys.machine());

    stats::Rng rng(13);
    auto obs = sys.observe(target, rng);
    EXPECT_EQ(obs.size(), 8u);

    auto est = sys.estimate(obs, "kmeans");
    EXPECT_EQ(est.performance.values.size(), sys.space().size());

    auto gt = workloads::computeGroundTruth(target, sys.space());
    EXPECT_GT(stats::accuracy(est.performance.values,
                              gt.performance),
              0.8);
    EXPECT_GT(stats::accuracy(est.power.values, gt.power), 0.9);

    // Minimize energy for a mid-range demand.
    optimizer::PerformanceConstraint c;
    c.deadlineSeconds = 10.0;
    c.work = 0.5 * gt.performance.max() * c.deadlineSeconds;
    auto plan = sys.minimizeEnergy(est, c);
    EXPECT_TRUE(plan.feasible);
    auto result = optimizer::executeSchedule(
        plan, gt.performance, gt.power,
        sys.machine().spec().idleSystemPowerW, c);
    EXPECT_TRUE(result.deadlineMet);

    // Near-optimal energy: within 15% of the oracle plan.
    auto best = optimizer::planMinimalEnergy(
        gt.performance, gt.power,
        sys.machine().spec().idleSystemPowerW, c);
    auto best_result = optimizer::executeSchedule(
        best, gt.performance, gt.power,
        sys.machine().spec().idleSystemPowerW, c);
    EXPECT_LT(result.energyJoules,
              best_result.energyJoules * 1.15);
}

TEST(LeoSystem, EstimateWithoutExclusionUsesWholePrior)
{
    auto sys = smallSystem();
    workloads::ApplicationModel target(
        workloads::profileByName("kmeans"), sys.machine());
    stats::Rng rng(17);
    auto obs = sys.observe(target, rng);

    // With kmeans itself in the prior the estimate should be at
    // least as good as the leave-one-out one.
    auto gt = workloads::computeGroundTruth(target, sys.space());
    auto with = sys.estimate(obs);
    auto without = sys.estimate(obs, "kmeans");
    const double acc_with =
        stats::accuracy(with.performance.values, gt.performance);
    const double acc_without = stats::accuracy(
        without.performance.values, gt.performance);
    EXPECT_GE(acc_with, acc_without - 0.05);
}

TEST(LeoSystem, MakeControllerWired)
{
    auto sys = smallSystem(5);
    auto ctl = sys.makeController(25.0);
    EXPECT_EQ(ctl.state(),
              runtime::EnergyController::State::Sampling);
    EXPECT_EQ(ctl.options().sampleBudget, 5u);
    EXPECT_DOUBLE_EQ(ctl.options().idlePower,
                     sys.machine().spec().idleSystemPowerW);
}

TEST(LeoSystem, RejectsMismatchedPrior)
{
    platform::Machine machine;
    auto space32 = platform::ConfigSpace::coreOnly(machine);
    auto space_full = platform::ConfigSpace::fullFactorial(machine);
    stats::Rng rng(5);
    telemetry::HeartbeatMonitor mon;
    telemetry::WattsUpMeter met;
    auto prior32 = telemetry::ProfileStore::collect(
        workloads::standardSuite(), machine, space32, mon, met, rng);
    EXPECT_THROW(core::LeoSystem(machine, space_full,
                                 std::move(prior32)),
                 FatalError);
}
