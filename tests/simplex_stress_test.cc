/**
 * @file
 * Stress and edge-case tests for the simplex LP solver.
 */

#include <gtest/gtest.h>

#include "linalg/error.hh"
#include "linalg/simplex.hh"
#include "stats/rng.hh"

using namespace leo;
using linalg::LinearProgram;
using linalg::LpStatus;
using linalg::Vector;

TEST(SimplexStress, DegenerateVertexNoCycling)
{
    // Classic degeneracy: multiple constraints meet at the optimum.
    // Bland's rule must terminate.
    LinearProgram lp(2);
    lp.setObjective(Vector{-1.0, -1.0});
    lp.addInequality(Vector{1.0, 0.0}, 1.0);
    lp.addInequality(Vector{0.0, 1.0}, 1.0);
    lp.addInequality(Vector{1.0, 1.0}, 2.0); // redundant at (1,1)
    lp.addInequality(Vector{2.0, 1.0}, 3.0); // also tight at (1,1)
    auto sol = lp.solve();
    ASSERT_EQ(sol.status, LpStatus::Optimal);
    EXPECT_NEAR(sol.objective, -2.0, 1e-8);
}

TEST(SimplexStress, RedundantEqualities)
{
    // The same equality twice: phase 1 leaves an artificial basic at
    // zero; phase 2 must still solve.
    LinearProgram lp(2);
    lp.setObjective(Vector{1.0, 2.0});
    lp.addEquality(Vector{1.0, 1.0}, 4.0);
    lp.addEquality(Vector{2.0, 2.0}, 8.0); // same plane
    auto sol = lp.solve();
    ASSERT_EQ(sol.status, LpStatus::Optimal);
    EXPECT_NEAR(sol.objective, 4.0, 1e-8); // x = 4, y = 0
}

TEST(SimplexStress, NegativeRhsNormalized)
{
    // -x <= -3 means x >= 3.
    LinearProgram lp(1);
    lp.setObjective(Vector{1.0});
    lp.addInequality(Vector{-1.0}, -3.0);
    auto sol = lp.solve();
    ASSERT_EQ(sol.status, LpStatus::Optimal);
    EXPECT_NEAR(sol.x[0], 3.0, 1e-8);
}

TEST(SimplexStress, RandomFeasibleInstancesSatisfyConstraints)
{
    stats::Rng rng(101);
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t n = 3 + static_cast<std::size_t>(
                                      rng.uniformInt(0, 4));
        LinearProgram lp(n);
        Vector c(n);
        for (std::size_t i = 0; i < n; ++i)
            c[i] = rng.uniform(0.5, 5.0); // positive: bounded below
        lp.setObjective(c);

        // A random feasible point defines consistent constraints.
        Vector x0(n);
        for (std::size_t i = 0; i < n; ++i)
            x0[i] = rng.uniform(0.0, 3.0);

        std::vector<Vector> eq_rows;
        std::vector<double> eq_rhs;
        for (int k = 0; k < 2; ++k) {
            Vector a(n);
            for (std::size_t i = 0; i < n; ++i)
                a[i] = rng.uniform(-1.0, 2.0);
            eq_rows.push_back(a);
            eq_rhs.push_back(dot(a, x0));
            lp.addEquality(a, dot(a, x0));
        }
        Vector ub(n);
        for (std::size_t i = 0; i < n; ++i)
            ub[i] = rng.uniform(0.0, 1.0);
        lp.addInequality(ub, dot(ub, x0) + 1.0);

        auto sol = lp.solve();
        ASSERT_EQ(sol.status, LpStatus::Optimal) << "trial " << trial;
        // Constraints hold at the reported optimum.
        for (std::size_t k = 0; k < eq_rows.size(); ++k)
            EXPECT_NEAR(dot(eq_rows[k], sol.x), eq_rhs[k], 1e-6);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_GE(sol.x[i], -1e-9);
        // And the optimum is no worse than the feasible point.
        EXPECT_LE(sol.objective, dot(c, x0) + 1e-6);
    }
}

TEST(SimplexStress, RejectsMalformedPrograms)
{
    EXPECT_THROW(LinearProgram{0}, FatalError);
    LinearProgram lp(2);
    EXPECT_THROW(lp.setObjective(Vector{1.0}), FatalError);
    EXPECT_THROW(lp.addEquality(Vector{1.0}, 0.0), FatalError);
    lp.setObjective(Vector{1.0, 1.0});
    EXPECT_THROW(lp.solve(), FatalError); // no constraints
}
