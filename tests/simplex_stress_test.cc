/**
 * @file
 * Stress and edge-case tests for the simplex LP solver.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/error.hh"
#include "linalg/simplex.hh"
#include "stats/rng.hh"

using namespace leo;
using linalg::LinearProgram;
using linalg::LpStatus;
using linalg::Vector;

TEST(SimplexStress, DegenerateVertexNoCycling)
{
    // Classic degeneracy: multiple constraints meet at the optimum.
    // Bland's rule must terminate.
    LinearProgram lp(2);
    lp.setObjective(Vector{-1.0, -1.0});
    lp.addInequality(Vector{1.0, 0.0}, 1.0);
    lp.addInequality(Vector{0.0, 1.0}, 1.0);
    lp.addInequality(Vector{1.0, 1.0}, 2.0); // redundant at (1,1)
    lp.addInequality(Vector{2.0, 1.0}, 3.0); // also tight at (1,1)
    auto sol = lp.solve();
    ASSERT_EQ(sol.status, LpStatus::Optimal);
    EXPECT_NEAR(sol.objective, -2.0, 1e-8);
}

TEST(SimplexStress, RedundantEqualities)
{
    // The same equality twice: phase 1 leaves an artificial basic at
    // zero; phase 2 must still solve.
    LinearProgram lp(2);
    lp.setObjective(Vector{1.0, 2.0});
    lp.addEquality(Vector{1.0, 1.0}, 4.0);
    lp.addEquality(Vector{2.0, 2.0}, 8.0); // same plane
    auto sol = lp.solve();
    ASSERT_EQ(sol.status, LpStatus::Optimal);
    EXPECT_NEAR(sol.objective, 4.0, 1e-8); // x = 4, y = 0
}

TEST(SimplexStress, NegativeRhsNormalized)
{
    // -x <= -3 means x >= 3.
    LinearProgram lp(1);
    lp.setObjective(Vector{1.0});
    lp.addInequality(Vector{-1.0}, -3.0);
    auto sol = lp.solve();
    ASSERT_EQ(sol.status, LpStatus::Optimal);
    EXPECT_NEAR(sol.x[0], 3.0, 1e-8);
}

TEST(SimplexStress, RandomFeasibleInstancesSatisfyConstraints)
{
    stats::Rng rng(101);
    for (int trial = 0; trial < 30; ++trial) {
        const std::size_t n = 3 + static_cast<std::size_t>(
                                      rng.uniformInt(0, 4));
        LinearProgram lp(n);
        Vector c(n);
        for (std::size_t i = 0; i < n; ++i)
            c[i] = rng.uniform(0.5, 5.0); // positive: bounded below
        lp.setObjective(c);

        // A random feasible point defines consistent constraints.
        Vector x0(n);
        for (std::size_t i = 0; i < n; ++i)
            x0[i] = rng.uniform(0.0, 3.0);

        std::vector<Vector> eq_rows;
        std::vector<double> eq_rhs;
        for (int k = 0; k < 2; ++k) {
            Vector a(n);
            for (std::size_t i = 0; i < n; ++i)
                a[i] = rng.uniform(-1.0, 2.0);
            eq_rows.push_back(a);
            eq_rhs.push_back(dot(a, x0));
            lp.addEquality(a, dot(a, x0));
        }
        Vector ub(n);
        for (std::size_t i = 0; i < n; ++i)
            ub[i] = rng.uniform(0.0, 1.0);
        lp.addInequality(ub, dot(ub, x0) + 1.0);

        auto sol = lp.solve();
        ASSERT_EQ(sol.status, LpStatus::Optimal) << "trial " << trial;
        // Constraints hold at the reported optimum.
        for (std::size_t k = 0; k < eq_rows.size(); ++k)
            EXPECT_NEAR(dot(eq_rows[k], sol.x), eq_rhs[k], 1e-6);
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_GE(sol.x[i], -1e-9);
        // And the optimum is no worse than the feasible point.
        EXPECT_LE(sol.objective, dot(c, x0) + 1e-6);
    }
}

// The redundant-row regressions below all failed before the solver
// dropped rows whose artificial cannot leave the basis: a redundant
// equality left its artificial basic at ~0, and the old "prohibitive
// cost" trick multiplied the ~1e-16 elimination residues in that row
// into garbage reduced costs, misreporting bounded feasible programs
// as Unbounded.

TEST(SimplexStress, NearDependentEqualitiesStayBounded)
{
    // r2 = 3 * r1 computed in floating point: dependent up to
    // rounding. min x+2y+3z s.t. 0.1x+0.2y+0.3z = 0.7 has optimum 7
    // (put everything on x: x = 7).
    LinearProgram lp(3);
    lp.setObjective(Vector{1.0, 2.0, 3.0});
    const Vector r1{0.1, 0.2, 0.3};
    const Vector r2{0.1 * 3.0, 0.2 * 3.0, 0.3 * 3.0};
    const double b1 = 0.1 * 2.0 + 0.2 * 1.0 + 0.3 * 1.0;
    lp.addEquality(r1, b1);
    lp.addEquality(r2, b1 * 3.0);
    lp.addInequality(Vector{1.0, 1.0, 1.0}, 10.0);
    auto sol = lp.solve();
    ASSERT_EQ(sol.status, LpStatus::Optimal);
    EXPECT_NEAR(sol.objective, 7.0, 1e-8);
}

TEST(SimplexStress, ScaledDuplicateEqualityStaysBounded)
{
    // The duplicate is scaled by 1/3, whose product with the row
    // entries does not round-trip exactly.
    LinearProgram lp(2);
    lp.setObjective(Vector{3.0, 5.0});
    const double s = 1.0 / 3.0;
    const double b1 = 0.7 * 1.0 + 1.3 * 2.0;
    lp.addEquality(Vector{0.7, 1.3}, b1);
    lp.addEquality(Vector{0.7 * s, 1.3 * s}, b1 * s);
    auto sol = lp.solve();
    ASSERT_EQ(sol.status, LpStatus::Optimal);
    // Cheapest way to reach 0.7x + 1.3y = 3.3: all on y (cost/unit
    // 5/1.3 < 3/0.7).
    EXPECT_NEAR(sol.objective, 5.0 * (b1 / 1.3), 1e-8);
}

TEST(SimplexStress, ZeroRowZeroRhsIsRedundant)
{
    // A zero equality row with zero rhs (the global co-scheduler
    // emits one for a tenant with zero work and no usable configs)
    // constrains nothing.
    LinearProgram lp(2);
    lp.setObjective(Vector{1.0, 1.0});
    lp.addEquality(Vector{0.0, 0.0}, 0.0);
    lp.addEquality(Vector{1.0, 1.0}, 2.0);
    auto sol = lp.solve();
    ASSERT_EQ(sol.status, LpStatus::Optimal);
    EXPECT_NEAR(sol.objective, 2.0, 1e-8);
}

TEST(SimplexStress, ZeroRowNonzeroRhsIsInfeasible)
{
    // 0 = 1 must report Infeasible, not Unbounded or a bogus optimum.
    LinearProgram lp(2);
    lp.setObjective(Vector{1.0, 1.0});
    lp.addEquality(Vector{0.0, 0.0}, 1.0);
    lp.addEquality(Vector{1.0, 1.0}, 2.0);
    auto sol = lp.solve();
    EXPECT_EQ(sol.status, LpStatus::Infeasible);
}

TEST(SimplexStress, AllRowsRedundantZeroRhs)
{
    // Every constraint is vacuous; with a nonnegative objective the
    // optimum is x = 0.
    LinearProgram lp(3);
    lp.setObjective(Vector{1.0, 2.0, 0.0});
    lp.addEquality(Vector{0.0, 0.0, 0.0}, 0.0);
    lp.addEquality(Vector{0.0, 0.0, 0.0}, 0.0);
    auto sol = lp.solve();
    ASSERT_EQ(sol.status, LpStatus::Optimal);
    EXPECT_NEAR(sol.objective, 0.0, 1e-12);
    // And with a negative objective coefficient it is unbounded.
    LinearProgram lp2(2);
    lp2.setObjective(Vector{-1.0, 1.0});
    lp2.addEquality(Vector{0.0, 0.0}, 0.0);
    EXPECT_EQ(lp2.solve().status, LpStatus::Unbounded);
}

TEST(SimplexStress, RandomNearDependentFamiliesStayBounded)
{
    // Randomized version of the regression that exposed the bug:
    // three pairwise-dependent equality rows (computed in floating
    // point, so dependent only up to rounding) plus a box. Before the
    // fix roughly 3 in 4 of these instances came back Unbounded.
    stats::Rng rng(7);
    for (int trial = 0; trial < 400; ++trial) {
        const std::size_t n = 3 + static_cast<std::size_t>(
                                      rng.uniformInt(0, 3));
        Vector c(n), x0(n), r1(n);
        for (std::size_t i = 0; i < n; ++i) {
            c[i] = rng.uniform(0.1, 3.0);
            x0[i] = rng.uniform(0.1, 3.0);
            r1[i] = rng.uniform(0.1, 3.0);
        }
        const double s = rng.uniform(0.1, 3.0);
        Vector r2(n), r3(n);
        for (std::size_t i = 0; i < n; ++i) {
            r2[i] = r1[i] * s;
            r3[i] = r1[i] * 0.5 + r2[i];
        }
        LinearProgram lp(n);
        lp.setObjective(c);
        const double b1 = dot(r1, x0);
        lp.addEquality(r1, b1);
        lp.addEquality(r2, b1 * s);
        lp.addEquality(r3, b1 * 0.5 + b1 * s);
        const Vector ones(n, 1.0);
        lp.addInequality(ones, dot(ones, x0) + 1.0);

        auto sol = lp.solve();
        ASSERT_EQ(sol.status, LpStatus::Optimal) << "trial " << trial;
        ASSERT_TRUE(std::isfinite(sol.objective)) << "trial " << trial;
        EXPECT_NEAR(dot(r1, sol.x), b1, 1e-6 * (1.0 + std::abs(b1)))
            << "trial " << trial;
        EXPECT_LE(sol.objective, dot(c, x0) + 1e-6)
            << "trial " << trial;
        for (std::size_t i = 0; i < n; ++i)
            EXPECT_GE(sol.x[i], -1e-9) << "trial " << trial;
    }
}

TEST(SimplexStress, RejectsMalformedPrograms)
{
    EXPECT_THROW(LinearProgram{0}, FatalError);
    LinearProgram lp(2);
    EXPECT_THROW(lp.setObjective(Vector{1.0}), FatalError);
    EXPECT_THROW(lp.addEquality(Vector{1.0}, 0.0), FatalError);
    lp.setObjective(Vector{1.0, 1.0});
    EXPECT_THROW(lp.solve(), FatalError); // no constraints
}
