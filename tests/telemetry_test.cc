/**
 * @file
 * Unit tests for the telemetry layer.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "estimators/sanitize.hh"
#include "linalg/error.hh"
#include "platform/config_space.hh"
#include "stats/summary.hh"
#include "telemetry/meters.hh"
#include "telemetry/profile_store.hh"
#include "telemetry/sampler.hh"
#include "workloads/suite.hh"

using namespace leo;
using platform::ConfigSpace;
using platform::Machine;
using workloads::ApplicationModel;

namespace
{

ApplicationModel
kmeansModel(const Machine &m)
{
    return ApplicationModel(workloads::profileByName("kmeans"), m);
}

} // namespace

// --------------------------------------------------------------- Meters

TEST(Meters, WattsUpUnbiasedAndQuantized)
{
    Machine m;
    auto app = kmeansModel(m);
    auto ra = m.assignment({8, 1, 2, 10});
    const double truth = app.powerWatts(ra);

    telemetry::WattsUpMeter meter(0.01, 0.1);
    stats::Rng rng(3);
    stats::RunningStats acc;
    for (int i = 0; i < 3000; ++i) {
        const double r = meter.read(app, ra, rng);
        acc.push(r);
        // 0.1 W display quantization.
        const double q = r * 10.0;
        EXPECT_NEAR(q, std::round(q), 1e-9);
    }
    EXPECT_NEAR(acc.mean(), truth, truth * 0.002);
    EXPECT_GT(acc.stddev(), 0.0);
}

TEST(Meters, NoiselessWattsUpIsExact)
{
    Machine m;
    auto app = kmeansModel(m);
    auto ra = m.assignment({4, 2, 1, 5});
    telemetry::WattsUpMeter meter(0.0, 0.0);
    stats::Rng rng(1);
    EXPECT_DOUBLE_EQ(meter.read(app, ra, rng), app.powerWatts(ra));
}

TEST(Meters, RaplReadsChipPower)
{
    Machine m;
    auto app = kmeansModel(m);
    auto ra = m.assignment({8, 1, 2, 10});
    telemetry::RaplMeter meter(0.0);
    stats::Rng rng(1);
    EXPECT_DOUBLE_EQ(meter.read(app, ra, rng),
                     app.chipPowerWatts(ra));
    // RAPL is finer-grain than the wall meter.
    EXPECT_LT(meter.intervalSeconds(),
              telemetry::WattsUpMeter().intervalSeconds());
}

TEST(Meters, HeartbeatMonitorUnbiased)
{
    Machine m;
    auto app = kmeansModel(m);
    auto ra = m.assignment({8, 1, 2, 10});
    const double truth = app.heartbeatRate(ra);
    telemetry::HeartbeatMonitor mon(0.02);
    stats::Rng rng(5);
    stats::RunningStats acc;
    for (int i = 0; i < 3000; ++i)
        acc.push(mon.measureRate(app, ra, rng));
    EXPECT_NEAR(acc.mean(), truth, truth * 0.005);
    EXPECT_NEAR(acc.stddev(), truth * 0.02, truth * 0.005);
}

TEST(Meters, RejectNegativeNoise)
{
    EXPECT_THROW(telemetry::WattsUpMeter(-0.1), FatalError);
    EXPECT_THROW(telemetry::RaplMeter(-1.0), FatalError);
    EXPECT_THROW(telemetry::HeartbeatMonitor(-0.1), FatalError);
}

// -------------------------------------------------------------- Sampler

TEST(Sampler, RandomDistinctWithinBudget)
{
    telemetry::RandomSampler s;
    stats::Rng rng(7);
    auto idx = s.select(1024, 20, rng);
    EXPECT_EQ(idx.size(), 20u);
    std::sort(idx.begin(), idx.end());
    EXPECT_TRUE(std::adjacent_find(idx.begin(), idx.end()) ==
                idx.end());
    // Budget larger than the space clamps.
    auto all = s.select(10, 50, rng);
    EXPECT_EQ(all.size(), 10u);
}

TEST(Sampler, UniformGridMatchesSectionTwo)
{
    // n = 32, budget 6 -> cores 5, 10, ..., 30 (indices 4, 9, ... 29).
    telemetry::UniformGridSampler s;
    stats::Rng rng(1);
    auto idx = s.select(32, 6, rng);
    ASSERT_EQ(idx.size(), 6u);
    for (std::size_t j = 0; j < 6; ++j)
        EXPECT_EQ(idx[j], 5 * (j + 1) - 1);
}

TEST(Sampler, ProfilerMeasuresRequestedConfigs)
{
    Machine m;
    auto space = ConfigSpace::coreOnly(m);
    auto app = kmeansModel(m);
    telemetry::HeartbeatMonitor mon(0.0);
    telemetry::WattsUpMeter met(0.0, 0.0);
    telemetry::Profiler prof(mon, met);
    stats::Rng rng(9);

    std::vector<std::size_t> want{0, 7, 31};
    auto obs = prof.measureAt(app, space, want, rng);
    ASSERT_EQ(obs.size(), 3u);
    EXPECT_EQ(obs.indices, want);
    for (std::size_t j = 0; j < 3; ++j) {
        const auto &ra = space.assignment(want[j]);
        EXPECT_DOUBLE_EQ(obs.performance[j], app.heartbeatRate(ra));
        EXPECT_DOUBLE_EQ(obs.power[j], app.powerWatts(ra));
    }
    EXPECT_THROW(prof.measureAt(app, space, {99}, rng), FatalError);
}

TEST(Sampler, ObservationsPush)
{
    telemetry::Observations obs;
    EXPECT_TRUE(obs.empty());
    obs.push({3, 10.0, 100.0});
    obs.push({5, 20.0, 150.0});
    EXPECT_EQ(obs.size(), 2u);
    EXPECT_EQ(obs.indices[1], 5u);
    EXPECT_DOUBLE_EQ(obs.performance[0], 10.0);
    EXPECT_DOUBLE_EQ(obs.power[1], 150.0);
}

// -------------------------------------------------------- Profile store

TEST(ProfileStore, CollectCoversSuiteAndSpace)
{
    Machine m;
    auto space = ConfigSpace::coreOnly(m);
    stats::Rng rng(11);
    telemetry::HeartbeatMonitor mon;
    telemetry::WattsUpMeter met;
    auto store = telemetry::ProfileStore::collect(
        workloads::standardSuite(), m, space, mon, met, rng);
    EXPECT_EQ(store.numApplications(), 25u);
    EXPECT_EQ(store.spaceSize(), 32u);
    EXPECT_TRUE(store.contains("kmeans"));
    EXPECT_FALSE(store.contains("quake"));
}

TEST(ProfileStore, LeaveOneOut)
{
    Machine m;
    auto space = ConfigSpace::coreOnly(m);
    stats::Rng rng(11);
    telemetry::HeartbeatMonitor mon;
    telemetry::WattsUpMeter met;
    auto store = telemetry::ProfileStore::collect(
        workloads::standardSuite(), m, space, mon, met, rng);

    auto loo = store.without("kmeans");
    EXPECT_EQ(loo.numApplications(), 24u);
    EXPECT_FALSE(loo.contains("kmeans"));
    EXPECT_TRUE(loo.contains("swish"));
    // Original store untouched.
    EXPECT_TRUE(store.contains("kmeans"));
    // Removing an absent name is a no-op.
    EXPECT_EQ(store.without("nosuchapp").numApplications(), 25u);
}

TEST(ProfileStore, RejectsRaggedRecords)
{
    std::vector<telemetry::ApplicationRecord> recs(2);
    recs[0].name = "a";
    recs[0].performance = linalg::Vector(4, 1.0);
    recs[0].power = linalg::Vector(4, 1.0);
    recs[1].name = "b";
    recs[1].performance = linalg::Vector(3, 1.0);
    recs[1].power = linalg::Vector(3, 1.0);
    EXPECT_THROW(telemetry::ProfileStore{std::move(recs)}, FatalError);
}

// ------------------------------------------------------ content hash

namespace
{

telemetry::Observations
obsOf(std::initializer_list<telemetry::Sample> samples)
{
    telemetry::Observations o;
    for (const auto &s : samples)
        o.push(s);
    return o;
}

} // namespace

TEST(ContentHash, InsensitiveToSampleOrder)
{
    const auto a = obsOf({{0, 2.0, 10.0}, {3, 4.0, 20.0},
                          {7, 8.0, 30.0}});
    const auto b = obsOf({{7, 8.0, 30.0}, {0, 2.0, 10.0},
                          {3, 4.0, 20.0}});
    EXPECT_EQ(a.contentHash(16), b.contentHash(16));
}

TEST(ContentHash, DuplicateArrivalOrderIrrelevantAndMergeAgrees)
{
    // A retried probe delivers the same index twice; the two arrival
    // orders must hash identically, and sanitization must merge them
    // to the same surviving set (the property that makes the hash a
    // safe fit-cache key).
    const auto a = obsOf({{5, 2.0, 10.0}, {5, 4.0, 30.0},
                          {1, 1.0, 5.0}});
    const auto b = obsOf({{5, 4.0, 30.0}, {1, 1.0, 5.0},
                          {5, 2.0, 10.0}});
    EXPECT_EQ(a.contentHash(16), b.contentHash(16));

    const auto sa =
        estimators::sanitizeObservations(a.indices, a.performance, 16);
    const auto sb =
        estimators::sanitizeObservations(b.indices, b.performance, 16);
    ASSERT_TRUE(sa.modified);
    ASSERT_TRUE(sb.modified);
    ASSERT_EQ(sa.values.size(), sb.values.size());
    // First-occurrence order differs between the two arrivals, so
    // compare the merged sets as (index, value) multisets.
    std::vector<std::pair<std::size_t, double>> ma, mb;
    for (std::size_t i = 0; i < sa.indices.size(); ++i)
        ma.push_back({sa.indices[i], sa.values[i]});
    for (std::size_t i = 0; i < sb.indices.size(); ++i)
        mb.push_back({sb.indices[i], sb.values[i]});
    std::sort(ma.begin(), ma.end());
    std::sort(mb.begin(), mb.end());
    EXPECT_EQ(ma, mb);
}

TEST(ContentHash, RejectedReadingsCollide)
{
    // Sanitization rejects non-finite and non-positive values, so
    // observation sets that differ only in the *kind* of rejected
    // reading produce the same fit — and must produce the same hash.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    const auto a = obsOf({{2, nan, 10.0}, {4, 3.0, 20.0}});
    const auto b = obsOf({{2, -7.0, 10.0}, {4, 3.0, 20.0}});
    const auto c = obsOf({{2, 0.0, 10.0}, {4, 3.0, 20.0}});
    EXPECT_EQ(a.contentHash(16), b.contentHash(16));
    EXPECT_EQ(a.contentHash(16), c.contentHash(16));

    // A sample rejected on both metrics contributes nothing, as does
    // an out-of-range index.
    const auto d = obsOf({{4, 3.0, 20.0}});
    const auto e = obsOf({{4, 3.0, 20.0}, {2, nan, -1.0}});
    const auto f = obsOf({{4, 3.0, 20.0}, {99, 5.0, 25.0}});
    EXPECT_EQ(d.contentHash(16), e.contentHash(16));
    EXPECT_EQ(d.contentHash(16), f.contentHash(16));
    // But a rejected metric next to a surviving one still counts.
    EXPECT_NE(a.contentHash(16), d.contentHash(16));
}

TEST(ContentHash, SensitiveToSurvivingBits)
{
    const auto a = obsOf({{3, 2.0, 10.0}});
    auto b = obsOf({{3, 2.0, 10.0}});
    b.performance[0] = std::nextafter(2.0, 3.0);
    EXPECT_NE(a.contentHash(16), b.contentHash(16));

    // Different index, same values: different hash.
    const auto c = obsOf({{4, 2.0, 10.0}});
    EXPECT_NE(a.contentHash(16), c.contentHash(16));

    // Empty set hashes consistently and differs from non-empty.
    const telemetry::Observations empty;
    EXPECT_EQ(empty.contentHash(16),
              telemetry::Observations{}.contentHash(16));
    EXPECT_NE(empty.contentHash(16), a.contentHash(16));
}
