/**
 * @file
 * Parameterized property tests: invariants swept across the whole
 * benchmark suite, random problem instances and option grids.
 */

#include <gtest/gtest.h>

#include "estimators/leo.hh"
#include "estimators/offline.hh"
#include "estimators/online.hh"
#include "faults/faults.hh"
#include "linalg/cholesky.hh"
#include "linalg/simplex.hh"
#include "obs/obs.hh"
#include "optimizer/global.hh"
#include "optimizer/pareto.hh"
#include "optimizer/schedule.hh"
#include "runtime/controller.hh"
#include "scenario/spec.hh"
#include "stats/metrics.hh"
#include "telemetry/profile_store.hh"
#include "telemetry/sampler.hh"
#include "workloads/ground_truth.hh"
#include "workloads/suite.hh"

using namespace leo;
using linalg::Matrix;
using linalg::Vector;

// ----------------------------------------------------- per-benchmark

/**
 * Every suite benchmark satisfies the physical sanity invariants on
 * the full factorial space, and LEO estimates it acceptably on the
 * core-only space.
 */
class SuiteProperty : public ::testing::TestWithParam<std::string>
{
  protected:
    static platform::Machine machine_;
    static platform::ConfigSpace space_;
    static telemetry::ProfileStore store_;
};

platform::Machine SuiteProperty::machine_{};
platform::ConfigSpace SuiteProperty::space_ =
    platform::ConfigSpace::coreOnly(SuiteProperty::machine_);
telemetry::ProfileStore SuiteProperty::store_ = [] {
    stats::Rng rng(77);
    telemetry::HeartbeatMonitor mon;
    telemetry::WattsUpMeter met;
    return telemetry::ProfileStore::collect(
        workloads::standardSuite(), SuiteProperty::machine_,
        SuiteProperty::space_, mon, met, rng);
}();

TEST_P(SuiteProperty, PowerWithinPhysicalEnvelope)
{
    workloads::ApplicationModel app(
        workloads::profileByName(GetParam()), machine_);
    const auto &spec = machine_.spec();
    for (std::size_t c = 0; c < space_.size(); ++c) {
        const auto &ra = space_.assignment(c);
        const double wall = app.powerWatts(ra);
        EXPECT_GT(wall, spec.idleSystemPowerW);
        EXPECT_LT(wall, spec.idleSystemPowerW +
                            spec.memControllerPowerW *
                                spec.memControllers +
                            spec.tdpPerSocketW * spec.sockets * 1.05);
        EXPECT_LE(app.chipPowerWatts(ra),
                  spec.tdpPerSocketW * spec.sockets * 1.05);
    }
}

TEST_P(SuiteProperty, MorePowerAtHigherSpeed)
{
    // Fixing everything but the clock, power is non-decreasing in
    // speed (texture can add a small ripple; allow 5%).
    workloads::ApplicationModel app(
        workloads::profileByName(GetParam()), machine_);
    auto full = platform::ConfigSpace::fullFactorial(machine_);
    for (unsigned s = 0; s + 1 < 15; s += 4) {
        auto lo = machine_.assignment({8, 1, 2, s});
        auto hi = machine_.assignment({8, 1, 2, s + 1});
        EXPECT_LT(app.powerWatts(lo), app.powerWatts(hi) * 1.05)
            << GetParam() << " at speed " << s;
    }
}

TEST_P(SuiteProperty, LeoEstimateAcceptable)
{
    const std::string name = GetParam();
    workloads::ApplicationModel app(
        workloads::profileByName(name), machine_);
    auto gt = workloads::computeGroundTruth(app, space_);

    stats::Rng rng(7);
    telemetry::HeartbeatMonitor mon;
    telemetry::WattsUpMeter met;
    telemetry::Profiler prof(mon, met);
    telemetry::RandomSampler pol;
    auto obs = prof.sample(app, space_, pol, 10, rng);

    estimators::LeoEstimator leo;
    auto prior = store_.without(name);
    estimators::EstimationInputs inputs{space_, prior, obs};
    auto est = leo.estimate(inputs);
    // filebound is the suite's pathological case: IO-bound, nearly
    // flat response, no shape-mate in the prior. Equation (5)'s
    // denominator (truth variance) is tiny there, so R^2 is a harsh
    // yardstick even for a prediction within a few percent; check
    // relative RMSE instead for that one benchmark.
    if (name == "filebound") {
        EXPECT_LT(stats::rmse(est.performance.values,
                              gt.performance),
                  0.15 * gt.performance.mean());
    } else {
        EXPECT_GT(stats::accuracy(est.performance.values,
                                  gt.performance),
                  0.6)
            << name;
    }
    EXPECT_GT(stats::accuracy(est.power.values, gt.power), 0.8)
        << name;
}

TEST_P(SuiteProperty, EmLikelihoodNonDecreasing)
{
    // EM's defining property: the observed-data likelihood never
    // decreases across iterations (tiny numerical slack).
    const std::string name = GetParam();
    workloads::ApplicationModel app(
        workloads::profileByName(name), machine_);
    stats::Rng rng(11);
    telemetry::HeartbeatMonitor mon;
    telemetry::WattsUpMeter met;
    telemetry::Profiler prof(mon, met);
    telemetry::RandomSampler pol;
    auto obs = prof.sample(app, space_, pol, 6, rng);

    estimators::LeoOptions opt;
    opt.maxIterations = 6;
    opt.tolerance = 0.0;
    estimators::LeoEstimator leo(opt);
    auto prior = estimators::priorVectors(
        store_.without(name), estimators::Metric::Performance);
    auto fit = leo.fitMetric(prior, obs.indices, obs.performance);

    ASSERT_GE(fit.logLikelihoodTrace.size(), 2u);
    for (std::size_t i = 0; i + 1 < fit.logLikelihoodTrace.size();
         ++i) {
        const double slack =
            0.01 * std::abs(fit.logLikelihoodTrace[i]) + 1.0;
        EXPECT_GE(fit.logLikelihoodTrace[i + 1],
                  fit.logLikelihoodTrace[i] - slack)
            << name << " iteration " << i;
    }
    // And it improves overall from the initial parameters.
    EXPECT_GT(fit.logLikelihoodTrace.back(),
              fit.logLikelihoodTrace.front());
}

INSTANTIATE_TEST_SUITE_P(
    AllBenchmarks, SuiteProperty,
    ::testing::ValuesIn(workloads::suiteNames()),
    [](const ::testing::TestParamInfo<std::string> &param_info) {
        return param_info.param;
    });

// ------------------------------------------------ random LP instances

/** Hull-walk vs simplex equivalence on seeded random instances. */
class LpEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(LpEquivalence, HullWalkMatchesSimplex)
{
    stats::Rng rng(static_cast<std::uint64_t>(GetParam()));
    const std::size_t n = 8 + static_cast<std::size_t>(
                                  rng.uniformInt(0, 12));
    Vector perf(n), power(n);
    for (std::size_t i = 0; i < n; ++i) {
        perf[i] = rng.uniform(0.5, 10.0);
        power[i] = 80.0 + perf[i] * rng.uniform(5.0, 40.0) +
                   rng.uniform(0.0, 20.0);
    }
    const double idle = rng.uniform(40.0, 90.0);
    const double t_total = rng.uniform(5.0, 50.0);
    const double rate = rng.uniform(0.1, 9.0);
    optimizer::PerformanceConstraint c{rate * t_total, t_total};

    auto plan = optimizer::planMinimalEnergy(perf, power, idle, c);
    if (!plan.feasible)
        GTEST_SKIP() << "demand above capacity";

    linalg::LinearProgram lp(n + 1);
    Vector obj(n + 1), rates(n + 1), ones(n + 1, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
        obj[i] = power[i];
        rates[i] = perf[i];
    }
    obj[n] = idle;
    lp.setObjective(obj);
    lp.addEquality(rates, c.work);
    lp.addEquality(ones, t_total);
    auto sol = lp.solve();
    ASSERT_EQ(sol.status, linalg::LpStatus::Optimal);

    double plan_energy = plan.predictedEnergy;
    double planned_time = 0.0;
    for (const auto &p : plan.parts)
        planned_time += p.seconds;
    plan_energy += (t_total - planned_time) * idle;

    EXPECT_NEAR(plan_energy, sol.objective, 1e-6 * sol.objective);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpEquivalence,
                         ::testing::Range(1, 26));

// ------------------------------------------- random SPD factorization

/** Cholesky round-trip across sizes. */
class CholeskyProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(CholeskyProperty, FactorSolveRoundTrip)
{
    const std::size_t n = static_cast<std::size_t>(GetParam());
    stats::Rng rng(1000 + n);
    Matrix b(n, n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            b(i, j) = rng.gaussian();
    Matrix a = b * b.transpose();
    a.addToDiagonal(0.5 * static_cast<double>(n));

    linalg::Cholesky chol(a);
    // L L' == A.
    const Matrix &l = chol.factor();
    Matrix llt = l * l.transpose();
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            EXPECT_NEAR(llt(i, j), a(i, j),
                        1e-9 * (1.0 + std::abs(a(i, j))));

    // Solve round trip.
    Vector x(n);
    for (std::size_t i = 0; i < n; ++i)
        x[i] = rng.gaussian();
    Vector y = a * x;
    Vector back = chol.solve(y);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_NEAR(back[i], x[i], 1e-7 * (1.0 + std::abs(x[i])));

    // Inverse agrees with solve(identity).
    Matrix inv = chol.inverse();
    Matrix id = chol.solve(Matrix::identity(n));
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            EXPECT_NEAR(inv(i, j), id(i, j), 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34,
                                           55));

// ------------------------------------------------ frontier invariants

/** Pareto/hull invariants on random tradeoff clouds. */
class FrontierProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(FrontierProperty, HullSubsetOfFrontierPlusIdle)
{
    stats::Rng rng(static_cast<std::uint64_t>(500 + GetParam()));
    const std::size_t n = 40;
    Vector perf(n), power(n);
    for (std::size_t i = 0; i < n; ++i) {
        perf[i] = rng.uniform(0.1, 30.0);
        power[i] = rng.uniform(90.0, 300.0);
    }
    auto frontier = optimizer::paretoFrontier(perf, power);
    auto hull = optimizer::lowerConvexHull(frontier, 85.0);

    // Every hull vertex is the idle point or a frontier point.
    for (const auto &v : hull) {
        if (v.configIndex == optimizer::kIdleConfig)
            continue;
        bool found = false;
        for (const auto &f : frontier)
            found |= f.configIndex == v.configIndex;
        EXPECT_TRUE(found);
    }
    // Hull performance strictly increases.
    for (std::size_t i = 0; i + 1 < hull.size(); ++i)
        EXPECT_LT(hull[i].performance, hull[i + 1].performance);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FrontierProperty,
                         ::testing::Range(1, 16));

// --------------------------------------------- estimator option grid

/** LEO stays sane across its option grid. */
struct LeoGridParam
{
    double psi;
    double pi;
    std::size_t iters;
};

class LeoOptionGrid : public ::testing::TestWithParam<LeoGridParam>
{
};

TEST_P(LeoOptionGrid, FitStaysFiniteAndAnchored)
{
    const LeoGridParam p = GetParam();
    platform::Machine machine;
    auto space = platform::ConfigSpace::coreOnly(machine);
    stats::Rng rng(5);
    telemetry::HeartbeatMonitor mon;
    telemetry::WattsUpMeter met;
    auto store = telemetry::ProfileStore::collect(
        workloads::standardSuite(), machine, space, mon, met, rng);

    workloads::ApplicationModel app(
        workloads::profileByName("swish"), machine);
    telemetry::Profiler prof(mon, met);
    telemetry::RandomSampler pol;
    auto obs = prof.sample(app, space, pol, 8, rng);

    estimators::LeoOptions opt;
    opt.hyperPsiScale = p.psi;
    opt.hyperPi = p.pi;
    opt.maxIterations = p.iters;
    estimators::LeoEstimator leo(opt);
    auto fit = leo.fitMetric(
        estimators::priorVectors(store.without("swish"),
                                 estimators::Metric::Performance),
        obs.indices, obs.performance);

    EXPECT_TRUE(fit.prediction.allFinite());
    EXPECT_GE(fit.prediction.min(), 0.0);
    EXPECT_GT(fit.sigma2, 0.0);
    // Prediction scale is anchored near the observations.
    const double obs_mean = obs.performance.mean();
    EXPECT_NEAR(fit.prediction.gather(obs.indices).mean(), obs_mean,
                0.35 * obs_mean);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LeoOptionGrid,
    ::testing::Values(LeoGridParam{0.005, 1.0, 4},
                      LeoGridParam{0.02, 1.0, 1},
                      LeoGridParam{0.02, 0.0, 4},
                      LeoGridParam{0.02, 5.0, 4},
                      LeoGridParam{0.5, 1.0, 8},
                      LeoGridParam{0.02, 1.0, 12}));

// ---------------------------------------- incremental refit schedule

namespace
{

/** Fault scenarios the refit equivalence must hold across,
 *  authored in the scenario DSL (scenario/spec.hh) so the sweep is a
 *  pure function of parseable spec text. Exactly four cells: the
 *  INSTANTIATE_TEST_SUITE_P ranges below index into this list. */
struct RefitScenario
{
    std::string name;
    faults::FaultScenario scenario;
};

std::vector<RefitScenario>
refitSweep()
{
    static const char *const kCells[] = {
        "name none\n",
        "name nan\nfault.nan 0.10\n",
        "name outlier\nfault.outlier 0.10\nfault.outlier_scale 25\n",
        "name mixed\nfault.nan 0.05\nfault.dropout 0.05\n"
        "fault.stale 0.05\n",
    };
    std::vector<RefitScenario> sweep;
    for (const char *text : kCells) {
        const scenario::Spec spec = scenario::Spec::fromString(text);
        sweep.push_back({spec.name, spec.faults});
    }
    return sweep;
}

/** Drive n windows, appending each accepted configuration. */
void
driveSchedule(runtime::EnergyController &ctl,
              const workloads::ApplicationModel &app,
              const platform::ConfigSpace &space,
              const telemetry::HeartbeatMonitor &monitor,
              const telemetry::PowerMeter &meter, stats::Rng &rng,
              std::size_t n, std::vector<std::size_t> &schedule)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t cfg = ctl.nextConfig(rng);
        ASSERT_LT(cfg, space.size());
        schedule.push_back(cfg);
        const auto &ra = space.assignment(cfg);
        ctl.recordMeasurement({cfg, monitor.measureRate(app, ra, rng),
                               meter.read(app, ra, rng)});
    }
}

} // namespace

/**
 * Batch refits (the executable specification: the Woodbury system is
 * refactorized from scratch every sample) and incremental refits
 * (rank-1 Cholesky up/downdates) must drive the controller to the
 * same accepted-config schedule over the same observation stream,
 * with or without sensor faults in the stream.
 */
class RefitScheduleEquivalence
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(RefitScheduleEquivalence, BatchAndIncrementalAgree)
{
    const RefitScenario ns = refitSweep()[GetParam()];
    SCOPED_TRACE(ns.name);

    platform::Machine machine;
    auto space = platform::ConfigSpace::coreOnly(machine);
    telemetry::HeartbeatMonitor monitor(0.01);
    telemetry::WattsUpMeter meter(0.005, 0.1);
    stats::Rng store_rng(7);
    auto store = telemetry::ProfileStore::collect(
        workloads::standardSuite(), machine, space, monitor, meter,
        store_rng);
    workloads::ApplicationModel app(
        workloads::profileByName("x264"), machine);
    auto gt = workloads::computeGroundTruth(app, space);
    const auto prior = store.without("x264");

    estimators::LeoOptions lopt;
    lopt.representation = estimators::CovarianceRep::LowRank;
    estimators::LeoEstimator leo(lopt);

    runtime::ControllerOptions copt;
    copt.targetRate = 0.5 * gt.performance.max();
    copt.sampleBudget = 6;
    copt.idlePower = machine.spec().idleSystemPowerW;
    copt.onlineSampleWindow = 8;

    auto runOne = [&](runtime::RefitMode mode,
                      std::vector<std::size_t> &schedule) {
        // Fresh fault wrappers per run: the injector's own RNG stream
        // is stateful, and both controllers must see the same stream.
        const faults::FaultyHeartbeatMonitor fmon(monitor,
                                                  ns.scenario);
        const faults::FaultyPowerMeter fmet(meter, ns.scenario);
        runtime::ControllerOptions o = copt;
        o.refitMode = mode;
        runtime::EnergyController ctl(space, &leo, prior, o);
        stats::Rng rng(29);
        ASSERT_NO_FATAL_FAILURE(driveSchedule(
            ctl, app, space, fmon, fmet, rng, 60, schedule));
        EXPECT_TRUE(ctl.performanceEstimate().allFinite());
        EXPECT_TRUE(ctl.powerEstimate().allFinite());
    };

    const std::uint64_t applied_before =
        obs::Registry::global()
            .counter(obs::names::kRefitSamplesApplied)
            .value();

    std::vector<std::size_t> batch, incremental;
    runOne(runtime::RefitMode::Batch, batch);
    runOne(runtime::RefitMode::Incremental, incremental);

    // The property is vacuous unless the refitters actually ran.
    EXPECT_GT(obs::Registry::global()
                  .counter(obs::names::kRefitSamplesApplied)
                  .value(),
              applied_before);

    ASSERT_EQ(batch.size(), incremental.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
        EXPECT_EQ(batch[i], incremental[i]) << "window " << i;
}

INSTANTIATE_TEST_SUITE_P(FaultSweep, RefitScheduleEquivalence,
                         ::testing::Range<std::size_t>(0, 4));

// ------------------------------------------- global co-scheduling

/**
 * Properties of the global multi-app co-scheduler, swept across the
 * same fault scenarios as the refit equivalence: estimates corrupted
 * by sensor faults (then sanitized the way the runtime does) must
 * never let the shared plan undercut the single-app optimum, and a
 * binding power cap must hold in every interval.
 */
class GlobalPlanProperty : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(GlobalPlanProperty, SharingNeverBeatsStandaloneAndCapsHold)
{
    const RefitScenario ns = refitSweep()[GetParam()];
    SCOPED_TRACE(ns.name);
    faults::FaultInjector perf_faults(ns.scenario);
    faults::FaultInjector power_faults(ns.scenario);
    stats::Rng rng(131 + GetParam());

    const double idle = 85.0;
    for (int trial = 0; trial < 25; ++trial) {
        // Random fleet with faulted estimate vectors, sanitized the
        // way the telemetry path does (non-finite / non-positive
        // readings clamp to a dead config at idle power).
        std::vector<optimizer::TenantDemand> demands;
        const int napps = 1 + rng.uniformInt(0, 3);
        for (int a = 0; a < napps; ++a) {
            const std::size_t ncfg = 2 + static_cast<std::size_t>(
                                             rng.uniformInt(0, 4));
            Vector perf(ncfg), power(ncfg);
            for (std::size_t c = 0; c < ncfg; ++c) {
                const double r = perf_faults.corrupt(
                    rng.uniform(0.5, 4.0));
                const double p = power_faults.corrupt(
                    rng.uniform(90.0, 220.0));
                perf[c] = std::isfinite(r) && r > 0.0 ? r : 0.0;
                power[c] =
                    std::isfinite(p) && p > idle ? p : idle;
            }
            const double deadline = rng.uniform(2.0, 12.0);
            const double fastest = perf.max();
            const double work =
                rng.uniform(0.0, 0.8 * fastest * deadline);
            demands.push_back({perf, power, {work, deadline}});
        }

        // Slack cap: per-tenant energy never undercuts the hull walk
        // (sharing one machine cannot beat having it exclusively).
        optimizer::GlobalPlanOptions slack;
        slack.forceLp = true;
        const auto shared =
            optimizer::planGlobalSchedule(demands, idle, slack);
        if (shared.feasible) {
            for (std::size_t a = 0; a < demands.size(); ++a) {
                const auto solo = optimizer::planMinimalEnergy(
                    demands[a].performance, demands[a].power, idle,
                    demands[a].constraint);
                EXPECT_GE(shared.perTenant[a].predictedEnergy,
                          solo.predictedEnergy *
                                  (1.0 - 1e-9) -
                              1e-9)
                    << "trial " << trial << " app " << a;
            }
            // Greedy is a feasible point of the same program.
            const auto greedy =
                optimizer::planPerAppGreedy(demands, idle, {});
            if (greedy.feasible)
                EXPECT_LE(shared.predictedEnergy,
                          greedy.predictedEnergy * (1.0 + 1e-9) +
                              1e-9)
                    << "trial " << trial;
        }

        // Binding cap: whenever the capped program stays feasible,
        // the average power holds in *every* interval.
        optimizer::GlobalPlanOptions capped;
        capped.powerCapWatts = rng.uniform(idle + 10.0, 230.0);
        const auto under_cap =
            optimizer::planGlobalSchedule(demands, idle, capped);
        if (under_cap.feasible && !under_cap.intervals.empty()) {
            double prev = 0.0;
            for (const auto &iv : under_cap.intervals) {
                const double len = iv.endSeconds - prev;
                const double avg =
                    (iv.activeEnergyJoules +
                     idle * std::max(len - iv.busySeconds, 0.0)) /
                    len;
                EXPECT_LE(avg, capped.powerCapWatts * (1.0 + 1e-7))
                    << "trial " << trial << " scenario " << ns.name;
                prev = iv.endSeconds;
            }
        }
    }
}

INSTANTIATE_TEST_SUITE_P(FaultSweep, GlobalPlanProperty,
                         ::testing::Range<std::size_t>(0, 4));
