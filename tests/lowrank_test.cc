/**
 * @file
 * Equivalence harness for the low-rank EM path.
 *
 * The low-rank representation (Sigma = alpha I + Q' C Q, DESIGN.md
 * section 7.2) evaluates the same EM algebra as the dense path in a
 * rotated parameterization, so the two paths agree to accumulated
 * rounding, not to the bit. The discipline mirrors PR 2's two-path
 * harness:
 *
 *  - Where the dense path runs verbatim (Auto resolving to Dense,
 *    referencePath), equality is asserted at 0 ULP.
 *  - Where the reordering is inherent (LowRank vs Dense), relative
 *    L2 agreement is pinned at documented tolerances: 1e-6 on
 *    well-conditioned problems, 1e-4 on deliberately ill-conditioned
 *    and rank-deficient ones (the subspace rotation amplifies
 *    rounding roughly by the covariance condition number).
 *
 * Every fit in this file sets tolerance = 0 so both paths run exactly
 * maxIterations: convergence is judged on a thresholded quantity, and
 * a 1e-15 rounding difference on the threshold's edge would otherwise
 * let one path stop an iteration early and turn rounding into a
 * macroscopic (but meaningless) discrepancy.
 */

#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "estimators/leo.hh"
#include "linalg/lowrank.hh"
#include "linalg/workspace.hh"
#include "stats/rng.hh"

/** Heap-allocation audit hook (same pattern as estimators_test.cc). */
static std::atomic<std::size_t> g_heap_allocs{0};

[[gnu::noinline]] void *
operator new(std::size_t size)
{
    g_heap_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

[[gnu::noinline]] void
operator delete(void *p) noexcept
{
    std::free(p);
}

[[gnu::noinline]] void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

using namespace leo;
using estimators::CovarianceRep;
using estimators::LeoEstimator;
using estimators::LeoFit;
using estimators::LeoOptions;
using linalg::Matrix;
using linalg::Vector;

namespace
{

/**
 * Synthetic prior: m positive shape vectors over n configurations
 * drawn from `rank` smooth latent directions plus per-shape noise.
 * rank < m produces a genuinely rank-deficient shape family;
 * noise = 0 makes shapes exact combinations of the latents.
 */
std::vector<Vector>
makePrior(std::size_t m, std::size_t n, std::size_t rank,
          unsigned seed, double noise = 0.05)
{
    stats::Rng rng(seed);
    std::vector<Vector> latents;
    for (std::size_t r = 0; r < rank; ++r) {
        Vector l(n);
        const double f = 0.5 + rng.uniform(0.0, 2.0);
        const double ph = rng.uniform(0.0, 6.28);
        for (std::size_t j = 0; j < n; ++j) {
            const double x =
                static_cast<double>(j) / static_cast<double>(n);
            l[j] = std::sin(f * 6.28 * x + ph) +
                   0.3 * std::cos((f + 1.0) * 12.0 * x);
        }
        latents.push_back(std::move(l));
    }
    std::vector<Vector> prior;
    for (std::size_t i = 0; i < m; ++i) {
        Vector y(n, 0.0);
        for (std::size_t r = 0; r < rank; ++r) {
            const double c = rng.uniform(0.2, 1.0);
            y.addScaled(c, latents[r]);
        }
        // Lift into positive territory and add measurement noise.
        double lo = y[0];
        for (std::size_t j = 1; j < n; ++j)
            lo = std::min(lo, y[j]);
        for (std::size_t j = 0; j < n; ++j) {
            y[j] += 1.0 - lo;
            if (noise > 0.0)
                y[j] *= 1.0 + rng.uniform(-noise, noise);
        }
        prior.push_back(std::move(y));
    }
    return prior;
}

/** Observation set: k spread-out indices, values near prior level. */
void
makeObservations(const std::vector<Vector> &prior, std::size_t k,
                 unsigned seed, std::vector<std::size_t> &idx,
                 Vector &vals)
{
    const std::size_t n = prior.front().size();
    stats::Rng rng(seed);
    idx = rng.sampleWithoutReplacement(n, std::min(k, n));
    vals = Vector(idx.size());
    for (std::size_t j = 0; j < idx.size(); ++j) {
        // The "target app" scales the first prior shape by ~40x.
        vals[j] = 40.0 * prior.front()[idx[j]] *
                  (1.0 + rng.uniform(-0.03, 0.03));
    }
}

double
relL2(const Vector &a, const Vector &b)
{
    double num = 0.0;
    double den = 0.0;
    for (std::size_t j = 0; j < a.size(); ++j) {
        const double d = a[j] - b[j];
        num += d * d;
        den += a[j] * a[j];
    }
    return std::sqrt(num) / (std::sqrt(den) + 1e-300);
}

LeoOptions
gridOptions(CovarianceRep rep)
{
    LeoOptions opt;
    opt.representation = rep;
    opt.tolerance = 0.0; // run exactly maxIterations on both paths
    opt.threads = 1;
    return opt;
}

} // namespace

// ----------------------------------------------------- LowRankBasis

TEST(LowRankBasis, OrthonormalAndSpanning)
{
    auto prior = makePrior(6, 64, 6, 11);
    linalg::LowRankBasis basis;
    basis.reset(64, 8);
    for (const Vector &x : prior)
        ASSERT_TRUE(basis.appendVector(x));
    ASSERT_TRUE(basis.appendUnit(17));
    EXPECT_EQ(basis.size(), 7u);

    // Rows pairwise orthonormal.
    for (std::size_t a = 0; a < basis.size(); ++a) {
        for (std::size_t b = 0; b <= a; ++b) {
            double d = 0.0;
            for (std::size_t j = 0; j < 64; ++j)
                d += basis.entry(a, j) * basis.entry(b, j);
            EXPECT_NEAR(d, a == b ? 1.0 : 0.0, 1e-12);
        }
    }

    // Round-trip: expand(coords(x)) == x for in-span vectors.
    Vector c, back;
    basis.coordsInto(c, prior[3]);
    basis.expandInto(back, c);
    EXPECT_LT(relL2(prior[3], back), 1e-12);
}

TEST(LowRankBasis, DropsDependentVectors)
{
    auto prior = makePrior(4, 32, 4, 5, 0.0);
    linalg::LowRankBasis basis;
    basis.reset(32, 8);
    for (const Vector &x : prior)
        ASSERT_TRUE(basis.appendVector(x));
    // An exact linear combination adds no direction.
    Vector combo(32, 0.0);
    combo.addScaled(0.5, prior[0]);
    combo.addScaled(2.0, prior[2]);
    EXPECT_FALSE(basis.appendVector(combo));
    EXPECT_EQ(basis.size(), 4u);
    // A repeated unit direction is likewise dropped.
    ASSERT_TRUE(basis.appendUnit(9));
    EXPECT_FALSE(basis.appendUnit(9));
}

// ------------------------------------------- Dense/low-rank equivalence

struct GridCase
{
    std::size_t m;
    std::size_t n;
    std::size_t rank;
    std::size_t obs;
};

class LowRankGrid : public ::testing::TestWithParam<GridCase>
{
};

TEST_P(LowRankGrid, MatchesDensePath)
{
    const GridCase gc = GetParam();
    auto prior = makePrior(gc.m, gc.n, gc.rank, 41 + gc.n);
    std::vector<std::size_t> idx;
    Vector vals;
    makeObservations(prior, gc.obs, 7 + gc.m, idx, vals);

    const LeoEstimator dense(gridOptions(CovarianceRep::Dense));
    const LeoEstimator lowrank(gridOptions(CovarianceRep::LowRank));
    const LeoFit fd = dense.fitMetric(prior, idx, vals);
    const LeoFit fl = lowrank.fitMetric(prior, idx, vals);

    ASSERT_FALSE(fd.lowRank);
    ASSERT_TRUE(fl.lowRank);
    ASSERT_EQ(fd.iterations, fl.iterations);
    ASSERT_TRUE(fl.prediction.allFinite());
    ASSERT_TRUE(fl.predictionVariance.allFinite());

    // Documented equivalence bound for well-conditioned problems.
    EXPECT_LT(relL2(fd.prediction, fl.prediction), 1e-6);
    EXPECT_LT(relL2(fd.mu, fl.mu), 1e-6);
    EXPECT_LT(relL2(fd.predictionVariance, fl.predictionVariance),
              1e-4);
    EXPECT_NEAR(fl.sigma2, fd.sigma2,
                1e-6 * fd.sigma2 + 1e-12);

    // The factored Sigma must carry an orthonormal basis.
    EXPECT_GE(fl.basisT.rows(), 1u);
    EXPECT_EQ(fl.basisT.cols(), gc.n);
    EXPECT_EQ(fl.coeff.rows(), fl.basisT.rows());
    EXPECT_GT(fl.alphaDiag, 0.0);
    EXPECT_TRUE(fl.sigma.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LowRankGrid,
    ::testing::Values(GridCase{4, 128, 4, 4},   // tiny
                      GridCase{8, 256, 8, 8},   // small
                      GridCase{12, 512, 12, 12}, // medium
                      GridCase{25, 1024, 25, 20}, // paper scale
                      GridCase{8, 256, 3, 8},   // rank-deficient prior
                      GridCase{25, 1024, 5, 20}, // strongly deficient
                      GridCase{6, 333, 6, 5},   // odd n (kernel tails)
                      GridCase{8, 256, 8, 0}),  // no observations
    [](const ::testing::TestParamInfo<GridCase> &info) {
        const GridCase &g = info.param;
        return "m" + std::to_string(g.m) + "_n" + std::to_string(g.n) +
               "_rank" + std::to_string(g.rank) + "_obs" +
               std::to_string(g.obs);
    });

TEST(LowRankEquivalence, IllConditionedPriorStaysClose)
{
    // Nearly collinear shapes: the dense covariance is within 1e-8
    // of singular, which is where the rotated algebra diverges
    // fastest. The documented bound here is 1e-4.
    const std::size_t n = 256;
    auto prior = makePrior(1, n, 1, 3, 0.0);
    stats::Rng rng(17);
    for (std::size_t i = 1; i < 10; ++i) {
        Vector y = prior[0];
        for (std::size_t j = 0; j < n; ++j)
            y[j] *= 1.0 + 1e-8 * rng.uniform(-1.0, 1.0);
        prior.push_back(std::move(y));
    }
    std::vector<std::size_t> idx;
    Vector vals;
    makeObservations(prior, 8, 23, idx, vals);

    const LeoEstimator dense(gridOptions(CovarianceRep::Dense));
    const LeoEstimator lowrank(gridOptions(CovarianceRep::LowRank));
    const LeoFit fd = dense.fitMetric(prior, idx, vals);
    const LeoFit fl = lowrank.fitMetric(prior, idx, vals);
    ASSERT_TRUE(fl.prediction.allFinite());
    EXPECT_LT(relL2(fd.prediction, fl.prediction), 1e-4);
}

TEST(LowRankEquivalence, DuplicateObservationIndices)
{
    // Repeated indices shrink the basis (the second unit vector is
    // in-span) but both paths must accept them and agree.
    auto prior = makePrior(8, 200, 8, 9);
    std::vector<std::size_t> idx{5, 50, 5, 120, 50};
    Vector vals(5);
    for (std::size_t j = 0; j < 5; ++j)
        vals[j] = 30.0 * prior[0][idx[j]];

    const LeoEstimator dense(gridOptions(CovarianceRep::Dense));
    const LeoEstimator lowrank(gridOptions(CovarianceRep::LowRank));
    const LeoFit fd = dense.fitMetric(prior, idx, vals);
    const LeoFit fl = lowrank.fitMetric(prior, idx, vals);
    ASSERT_TRUE(fl.prediction.allFinite());
    EXPECT_LT(relL2(fd.prediction, fl.prediction), 1e-6);
}

// --------------------------------------------------- Auto resolution

TEST(LowRankAuto, ResolvesDenseBitwiseOnSmallProblems)
{
    // 4 (m + s + 1) > n: Auto must run the dense path, and not just
    // approximately — bit for bit.
    auto prior = makePrior(12, 64, 12, 29);
    std::vector<std::size_t> idx;
    Vector vals;
    makeObservations(prior, 4, 31, idx, vals);

    const LeoEstimator dense(gridOptions(CovarianceRep::Dense));
    const LeoEstimator automatic(gridOptions(CovarianceRep::Auto));
    const LeoFit fd = dense.fitMetric(prior, idx, vals);
    const LeoFit fa = automatic.fitMetric(prior, idx, vals);
    ASSERT_FALSE(fa.lowRank);
    ASSERT_EQ(fd.prediction.size(), fa.prediction.size());
    auto bits = [](double v) {
        std::uint64_t u = 0;
        std::memcpy(&u, &v, sizeof(u));
        return u;
    };
    for (std::size_t j = 0; j < fd.prediction.size(); ++j) {
        EXPECT_EQ(bits(fd.prediction[j]), bits(fa.prediction[j]));
        EXPECT_EQ(bits(fd.predictionVariance[j]),
                  bits(fa.predictionVariance[j]));
    }
    EXPECT_EQ(bits(fd.sigma2), bits(fa.sigma2));
}

TEST(LowRankAuto, ResolvesLowRankOnLargeProblems)
{
    auto prior = makePrior(8, 512, 8, 37);
    std::vector<std::size_t> idx;
    Vector vals;
    makeObservations(prior, 8, 39, idx, vals);
    const LeoEstimator automatic(gridOptions(CovarianceRep::Auto));
    const LeoFit fa = automatic.fitMetric(prior, idx, vals);
    EXPECT_TRUE(fa.lowRank);
}

TEST(LowRankAuto, ReferencePathForcesDense)
{
    auto prior = makePrior(6, 256, 6, 43);
    LeoOptions opt = gridOptions(CovarianceRep::LowRank);
    opt.referencePath = true;
    const LeoEstimator est(opt);
    const LeoFit f = est.fitMetric(prior, {3, 9}, Vector{10.0, 11.0});
    EXPECT_FALSE(f.lowRank);
    EXPECT_FALSE(f.sigma.empty());
}

// ------------------------------------------------------- Warm starts

TEST(LowRankWarm, WarmStartResumesAndStaysEquivalent)
{
    auto prior = makePrior(10, 512, 10, 53);
    std::vector<std::size_t> idx;
    Vector vals;
    makeObservations(prior, 10, 57, idx, vals);

    const LeoEstimator est(gridOptions(CovarianceRep::LowRank));
    linalg::Workspace ws;
    const LeoFit cold = est.fitMetric(prior, idx, vals, &ws, nullptr);
    ASSERT_TRUE(cold.lowRank);

    // Add one observation and refit warm; the warm fit must converge
    // to (essentially) the cold refit of the same problem.
    std::vector<std::size_t> idx2 = idx;
    idx2.push_back((idx.back() + 101) % 512);
    Vector vals2(idx2.size());
    for (std::size_t j = 0; j + 1 < idx2.size(); ++j)
        vals2[j] = vals[j];
    vals2[idx2.size() - 1] = 40.0 * prior[0][idx2.back()];

    const LeoFit warm = est.fitMetric(prior, idx2, vals2, &ws, &cold);
    EXPECT_TRUE(warm.warmStarted);
    EXPECT_TRUE(warm.lowRank);
    const LeoFit cold2 = est.fitMetric(prior, idx2, vals2);
    EXPECT_LT(relL2(cold2.prediction, warm.prediction), 5e-3);
}

TEST(LowRankWarm, DenseWarmFitIsIgnoredByLowRankPath)
{
    auto prior = makePrior(6, 256, 6, 61);
    const LeoEstimator dense(gridOptions(CovarianceRep::Dense));
    const LeoEstimator lowrank(gridOptions(CovarianceRep::LowRank));
    const LeoFit fd =
        dense.fitMetric(prior, {4, 80}, Vector{12.0, 13.0});
    // A dense warm fit must not poison the low-rank init: the fit
    // falls back to cold (warmStarted false) and stays finite.
    const LeoFit fl = lowrank.fitMetric(prior, {4, 80},
                                        Vector{12.0, 13.0}, nullptr,
                                        &fd);
    EXPECT_FALSE(fl.warmStarted);
    EXPECT_TRUE(fl.prediction.allFinite());
}

// ----------------------------------------------- Allocation contract

TEST(LowRankHotLoop, SerialLoopIsAllocationFree)
{
    auto prior = makePrior(10, 512, 10, 67);
    std::vector<std::size_t> idx;
    Vector vals;
    makeObservations(prior, 10, 71, idx, vals);

    LeoOptions opt = gridOptions(CovarianceRep::LowRank);
    const LeoEstimator est(opt);
    linalg::Workspace ws;
    // Prime the arena, then audit a second fit's loop.
    (void)est.fitMetric(prior, idx, vals, &ws, nullptr);
    estimators::setAllocationCounter(
        +[]() -> std::size_t { return g_heap_allocs.load(); });
    const LeoFit fit = est.fitMetric(prior, idx, vals, &ws, nullptr);
    estimators::setAllocationCounter(nullptr);
    EXPECT_EQ(fit.loopAllocations, 0u);
}

// ------------------------------------- factored predictive variance

/**
 * lowRankPredictiveVariance evaluates single entries of the factored
 * posterior bitwise identically to the expanded predictionVariance
 * fill, and expandVariance = false only suppresses the expansion —
 * every other fit field is untouched.
 */
TEST(LowRankVariance, OnDemandMatchesExpandedBitwise)
{
    auto prior = makePrior(8, 96, 8, 21);
    std::vector<std::size_t> idx;
    Vector vals;
    makeObservations(prior, 12, 22, idx, vals);

    const LeoEstimator expanded(gridOptions(CovarianceRep::LowRank));
    LeoOptions lazy_opt = gridOptions(CovarianceRep::LowRank);
    lazy_opt.expandVariance = false;
    const LeoEstimator lazy(lazy_opt);

    const LeoFit full = expanded.fitMetric(prior, idx, vals);
    const LeoFit factored = lazy.fitMetric(prior, idx, vals);

    ASSERT_TRUE(full.lowRank);
    ASSERT_TRUE(factored.lowRank);
    ASSERT_EQ(full.predictionVariance.size(), 96u);
    EXPECT_EQ(factored.predictionVariance.size(), 0u);
    ASSERT_GT(factored.varCore.rows(), 0u);

    for (std::size_t c = 0; c < 96; ++c) {
        EXPECT_EQ(estimators::lowRankPredictiveVariance(factored, c),
                  full.predictionVariance[c])
            << "config " << c;
        // The expanded fit carries the same core; on-demand entries
        // agree with its own expansion too.
        EXPECT_EQ(estimators::lowRankPredictiveVariance(full, c),
                  full.predictionVariance[c]);
    }
    for (std::size_t c = 0; c < 96; ++c)
        EXPECT_EQ(full.prediction[c], factored.prediction[c]);
    EXPECT_EQ(full.sigma2, factored.sigma2);
    EXPECT_EQ(full.alphaDiag, factored.alphaDiag);
}
