/**
 * @file
 * Tests for the CSV interchange helpers.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "experiments/csv.hh"
#include "linalg/error.hh"

using namespace leo;
using experiments::NamedVector;

TEST(Csv, ProfileTableRoundTrip)
{
    std::vector<NamedVector> rows{
        {"kmeans", linalg::Vector{1.0, 2.5, 3.25}},
        {"x264", linalg::Vector{4.0, 5.0, 6.0}},
    };
    std::ostringstream out;
    experiments::writeProfileTable(out, rows);
    std::istringstream in(out.str());
    auto back = experiments::readProfileTable(in);
    ASSERT_EQ(back.size(), 2u);
    EXPECT_EQ(back[0].name, "kmeans");
    EXPECT_DOUBLE_EQ(back[0].values[1], 2.5);
    EXPECT_EQ(back[1].name, "x264");
    EXPECT_DOUBLE_EQ(back[1].values[2], 6.0);
}

TEST(Csv, SkipsCommentsAndBlankLines)
{
    std::istringstream in(
        "# a comment\n"
        "\n"
        "app1,1,2\n"
        "   \n"
        "# another\n"
        "app2,3,4\n");
    auto rows = experiments::readProfileTable(in);
    ASSERT_EQ(rows.size(), 2u);
    EXPECT_EQ(rows[1].name, "app2");
}

TEST(Csv, RejectsRaggedProfileTable)
{
    std::istringstream in("a,1,2\nb,3\n");
    EXPECT_THROW(experiments::readProfileTable(in), FatalError);
}

TEST(Csv, RejectsGarbageNumbers)
{
    std::istringstream in("a,1,banana\n");
    EXPECT_THROW(experiments::readProfileTable(in), FatalError);
}

TEST(Csv, ObservationsRoundTrip)
{
    std::vector<std::size_t> idx{4, 9, 29};
    linalg::Vector vals{214.0, 273.0, 160.5};
    std::ostringstream out;
    experiments::writeObservations(out, idx, vals);
    std::istringstream in(out.str());
    auto [bidx, bvals] = experiments::readObservations(in);
    EXPECT_EQ(bidx, idx);
    ASSERT_EQ(bvals.size(), 3u);
    EXPECT_DOUBLE_EQ(bvals[2], 160.5);
}

TEST(Csv, ObservationsRejectBadRows)
{
    std::istringstream three("1,2,3\n");
    EXPECT_THROW(experiments::readObservations(three), FatalError);
    std::istringstream negative("-1,2\n");
    EXPECT_THROW(experiments::readObservations(negative), FatalError);
    std::istringstream fractional("1.5,2\n");
    EXPECT_THROW(experiments::readObservations(fractional),
                 FatalError);
}

TEST(Csv, EstimatesWithAndWithoutStddev)
{
    linalg::Vector v{1.0, 2.0};
    std::ostringstream plain;
    experiments::writeEstimates(plain, v);
    EXPECT_EQ(plain.str(), "0,1\n1,2\n");

    std::ostringstream with;
    experiments::writeEstimates(with, v, linalg::Vector{0.1, 0.2});
    EXPECT_EQ(with.str(), "0,1,0.1\n1,2,0.2\n");

    EXPECT_THROW(
        experiments::writeEstimates(plain, v, linalg::Vector{0.1}),
        FatalError);
}
