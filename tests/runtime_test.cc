/**
 * @file
 * Unit tests for the runtime controller and the phased closed loop.
 */

#include <gtest/gtest.h>

#include "estimators/leo.hh"
#include "linalg/error.hh"
#include "linalg/serialize.hh"
#include "runtime/controller.hh"
#include "runtime/phased_run.hh"
#include "telemetry/profile_store.hh"
#include "workloads/ground_truth.hh"
#include "workloads/suite.hh"

using namespace leo;
using linalg::Vector;
using platform::ConfigSpace;
using platform::Machine;
using runtime::ControllerOptions;
using runtime::EnergyController;

namespace
{

struct World
{
    Machine machine;
    ConfigSpace space = ConfigSpace::coreOnly(machine);
    telemetry::HeartbeatMonitor monitor{0.01};
    telemetry::WattsUpMeter meter{0.005, 0.1};
    stats::Rng rng{7};
    telemetry::ProfileStore store = telemetry::ProfileStore::collect(
        workloads::standardSuite(), machine, space, monitor, meter,
        rng);

    ControllerOptions
    options(double rate, std::size_t budget = 6)
    {
        ControllerOptions o;
        o.targetRate = rate;
        o.sampleBudget = budget;
        o.idlePower = machine.spec().idleSystemPowerW;
        return o;
    }
};

} // namespace

TEST(Controller, SamplesThenControls)
{
    World w;
    estimators::LeoEstimator leo;
    auto prior = w.store.without("x264");
    EnergyController ctl(w.space, &leo, prior, w.options(40.0, 5));
    EXPECT_EQ(ctl.state(), EnergyController::State::Sampling);

    workloads::ApplicationModel app(
        workloads::profileByName("x264"), w.machine);
    for (int i = 0; i < 5; ++i) {
        const std::size_t cfg = ctl.nextConfig(w.rng);
        const auto &ra = w.space.assignment(cfg);
        ctl.recordMeasurement(
            {cfg, w.monitor.measureRate(app, ra, w.rng),
             w.meter.read(app, ra, w.rng)});
    }
    EXPECT_EQ(ctl.state(), EnergyController::State::Controlling);
    EXPECT_TRUE(ctl.hasEstimates());
    EXPECT_EQ(ctl.performanceEstimate().size(), w.space.size());
}

TEST(Controller, OracleStartsControlling)
{
    World w;
    EnergyController ctl(w.space, nullptr, w.store,
                         w.options(30.0));
    EXPECT_EQ(ctl.state(), EnergyController::State::Controlling);

    workloads::ApplicationModel app(
        workloads::profileByName("x264"), w.machine);
    auto gt = workloads::computeGroundTruth(app, w.space);
    ctl.setEstimates(gt.performance, gt.power);
    const std::size_t cfg = ctl.nextConfig(w.rng);
    EXPECT_LT(cfg, w.space.size());
}

TEST(Controller, DriftTriggersReestimation)
{
    World w;
    estimators::LeoEstimator leo;
    auto prior = w.store.without("fluidanimate");
    ControllerOptions opt = w.options(30.0, 5);
    opt.driftWindow = 2;
    opt.driftThreshold = 0.2;
    EnergyController ctl(w.space, &leo, prior, opt);

    workloads::ApplicationModel app(
        workloads::profileByName("fluidanimate"), w.machine);
    // Sampling phase.
    while (ctl.state() == EnergyController::State::Sampling) {
        const std::size_t cfg = ctl.nextConfig(w.rng);
        const auto &ra = w.space.assignment(cfg);
        ctl.recordMeasurement(
            {cfg, w.monitor.measureRate(app, ra, w.rng),
             w.meter.read(app, ra, w.rng)});
    }
    EXPECT_EQ(ctl.reestimations(), 0u);

    // Establish a steady measurement history at the operating point,
    // then feed a step change (the application entered a new phase).
    // Drift is judged against the configuration's own history, so
    // the steady stretch must not trigger, and the step must.
    for (int i = 0; i < 6; ++i) {
        const std::size_t cfg = ctl.nextConfig(w.rng);
        const auto &ra = w.space.assignment(cfg);
        ctl.recordMeasurement({cfg, app.heartbeatRate(ra),
                               app.powerWatts(ra)});
    }
    EXPECT_EQ(ctl.state(), EnergyController::State::Controlling);
    EXPECT_EQ(ctl.reestimations(), 0u);

    for (int i = 0; i < 5 &&
                    ctl.state() == EnergyController::State::Controlling;
         ++i) {
        const std::size_t cfg = ctl.nextConfig(w.rng);
        const auto &ra = w.space.assignment(cfg);
        // The new phase runs 1.6x faster everywhere.
        ctl.recordMeasurement({cfg, 1.6 * app.heartbeatRate(ra),
                               app.powerWatts(ra)});
    }
    EXPECT_EQ(ctl.state(), EnergyController::State::Sampling);
    EXPECT_EQ(ctl.reestimations(), 1u);
}

TEST(Controller, GradientAscentMeetsDemand)
{
    // Feed an oracle controller estimates that UNDERSTATE the needed
    // configuration; the guard must climb the hull until the demand
    // is met.
    World w;
    workloads::ApplicationModel app(
        workloads::profileByName("swaptions"), w.machine);
    auto gt = workloads::computeGroundTruth(app, w.space);

    // Demand achievable only near the top of the hull.
    const double demand = 0.8 * gt.performance.max();
    EnergyController ctl(w.space, nullptr, w.store,
                         w.options(demand));
    // Corrupt estimates: claim every config is 3x faster than truth,
    // tempting the controller toward slow configs.
    ctl.setEstimates(gt.performance * 3.0, gt.power);

    double last_rate = 0.0;
    for (int i = 0; i < 60; ++i) {
        const std::size_t cfg = ctl.nextConfig(w.rng);
        const auto &ra = w.space.assignment(cfg);
        const double rate = app.heartbeatRate(ra);
        ctl.recordMeasurement({cfg, rate, app.powerWatts(ra)});
        last_rate = rate;
    }
    EXPECT_GE(last_rate, demand * 0.9);
}

TEST(Controller, RejectsBadOptions)
{
    World w;
    ControllerOptions bad = w.options(0.0);
    estimators::LeoEstimator leo;
    EXPECT_THROW(EnergyController(w.space, &leo, w.store, bad),
                 FatalError);
}

// ------------------------------------------------------------ PhasedRun

TEST(PhasedRun, OracleMeetsDemandInBothPhases)
{
    World w;
    auto app = workloads::PhasedApplication::fluidanimateTwoPhase(30);
    // Demand achievable in both phases: ~60% of phase-1 peak.
    workloads::ApplicationModel heavy(app.phases()[0].profile,
                                      w.machine);
    auto gt = workloads::computeGroundTruth(heavy, w.space);
    const double demand = 0.6 * gt.performance.max();

    auto result = runtime::runPhased(app, w.machine, w.space, nullptr,
                                     w.store, w.options(demand),
                                     w.rng);
    EXPECT_EQ(result.trace.size(), 60u);
    EXPECT_EQ(result.phaseEnergy.size(), 2u);
    EXPECT_GT(result.deadlineHitRate, 0.9);
    // Phase 2 needs 2/3 the resources: oracle spends less energy.
    EXPECT_LT(result.phaseEnergy[1], result.phaseEnergy[0]);
}

TEST(PhasedRun, LeoAdaptsToPhaseChange)
{
    World w;
    auto app = workloads::PhasedApplication::fluidanimateTwoPhase(40);
    workloads::ApplicationModel heavy(app.phases()[0].profile,
                                      w.machine);
    auto gt = workloads::computeGroundTruth(heavy, w.space);
    const double demand = 0.6 * gt.performance.max();

    estimators::LeoEstimator leo;
    auto prior = w.store.without("fluidanimate");
    ControllerOptions opt = w.options(demand, 6);
    opt.driftWindow = 3;
    auto result = runtime::runPhased(app, w.machine, w.space, &leo,
                                     prior, opt, w.rng);
    // The phase change must have been noticed.
    EXPECT_GE(result.reestimations, 1u);
    // And the controller still hits most frames.
    EXPECT_GT(result.deadlineHitRate, 0.6);
}

TEST(PhasedRun, LeoNearOracleEnergy)
{
    // The Table 1 property, loosened: LEO's total energy lands
    // within 35% of the oracle on the phased workload.
    World w;
    auto app = workloads::PhasedApplication::fluidanimateTwoPhase(40);
    workloads::ApplicationModel heavy(app.phases()[0].profile,
                                      w.machine);
    auto gt = workloads::computeGroundTruth(heavy, w.space);
    const double demand = 0.55 * gt.performance.max();

    stats::Rng rng_a(11), rng_b(11);
    auto oracle = runtime::runPhased(app, w.machine, w.space, nullptr,
                                     w.store, w.options(demand),
                                     rng_a);
    estimators::LeoEstimator leo;
    auto prior = w.store.without("fluidanimate");
    auto mine = runtime::runPhased(app, w.machine, w.space, &leo,
                                   prior, w.options(demand, 6),
                                   rng_b);
    EXPECT_GT(oracle.totalEnergy, 0.0);
    EXPECT_LT(mine.totalEnergy, oracle.totalEnergy * 1.35);
}

// --------------------------------- Auto representation default

/**
 * ControllerOptions defaults to CovarianceRep::Auto, and on the
 * small test spaces Auto resolves to Dense — so the default-option
 * schedule is bitwise what it was when Dense was the default.
 */
TEST(Controller, AutoRepresentationDefaultPreservesDenseSchedule)
{
    World w;
    estimators::LeoEstimator leo;
    auto prior = w.store.without("x264");
    workloads::ApplicationModel app(
        workloads::profileByName("x264"), w.machine);

    ASSERT_EQ(ControllerOptions{}.representation,
              estimators::CovarianceRep::Auto);

    auto run = [&](estimators::CovarianceRep rep) {
        ControllerOptions o = w.options(40.0, 5);
        o.representation = rep;
        EnergyController ctl(w.space, &leo, prior, o);
        stats::Rng rng(23);
        std::vector<std::size_t> schedule;
        for (int i = 0; i < 20; ++i) {
            const std::size_t cfg = ctl.nextConfig(rng);
            schedule.push_back(cfg);
            const auto &ra = w.space.assignment(cfg);
            ctl.recordMeasurement(
                {cfg, w.monitor.measureRate(app, ra, rng),
                 w.meter.read(app, ra, rng)});
        }
        return schedule;
    };

    EXPECT_EQ(run(estimators::CovarianceRep::Auto),
              run(estimators::CovarianceRep::Dense));
}

// ------------------------------------------ state snapshot/restore

/**
 * A controller serialized mid-run and restored into a fresh instance
 * continues exactly the uninterrupted schedule.
 */
TEST(Controller, SaveRestoreResumesScheduleBitwise)
{
    World w;
    estimators::LeoOptions lopt;
    lopt.representation = estimators::CovarianceRep::LowRank;
    estimators::LeoEstimator leo(lopt);
    auto prior = w.store.without("fluidanimate");
    workloads::ApplicationModel app(
        workloads::profileByName("fluidanimate"), w.machine);

    ControllerOptions o = w.options(30.0, 5);
    o.onlineSampleWindow = 8;
    o.refitMode = runtime::RefitMode::Incremental;
    EnergyController ctl(w.space, &leo, prior, o);
    stats::Rng rng(31);

    auto window = [&](EnergyController &c, stats::Rng &r) {
        const std::size_t cfg = c.nextConfig(r);
        const auto &ra = w.space.assignment(cfg);
        c.recordMeasurement({cfg,
                             w.monitor.measureRate(app, ra, r),
                             w.meter.read(app, ra, r)});
        return cfg;
    };
    for (int i = 0; i < 18; ++i)
        window(ctl, rng);

    linalg::ByteWriter wtr;
    ctl.saveState(wtr);
    // The RNG travels alongside in the real snapshot path; fork a
    // copy here so both continuations draw the same stream.
    const std::string blob = wtr.take();
    EnergyController twin(w.space, &leo, prior, o);
    linalg::ByteReader rdr(blob);
    ASSERT_TRUE(twin.restoreState(rdr));
    ASSERT_TRUE(rdr.ok());
    EXPECT_EQ(twin.state(), ctl.state());

    stats::Rng rng_a(77), rng_b(77);
    stats::Rng meas_a(78), meas_b(78);
    for (int i = 0; i < 16; ++i) {
        const std::size_t ca = ctl.nextConfig(rng_a);
        const std::size_t cb = twin.nextConfig(rng_b);
        ASSERT_EQ(ca, cb) << "window " << i;
        const auto &ra = w.space.assignment(ca);
        const telemetry::Sample s{
            ca, w.monitor.measureRate(app, ra, meas_a),
            w.meter.read(app, ra, meas_a)};
        (void)w.monitor.measureRate(app, ra, meas_b);
        (void)w.meter.read(app, ra, meas_b);
        ctl.recordMeasurement(s);
        twin.recordMeasurement(s);
    }
}

TEST(Controller, RestoreRejectsTruncatedState)
{
    World w;
    estimators::LeoEstimator leo;
    auto prior = w.store.without("x264");
    EnergyController ctl(w.space, &leo, prior, w.options(40.0, 5));
    linalg::ByteWriter wtr;
    ctl.saveState(wtr);
    const std::string blob = wtr.take();
    const std::string cut = blob.substr(0, blob.size() / 3);
    EnergyController twin(w.space, &leo, prior, w.options(40.0, 5));
    linalg::ByteReader rdr(cut);
    EXPECT_FALSE(twin.restoreState(rdr));
    // A failed restore resets to a fresh sampling controller.
    EXPECT_EQ(twin.state(), EnergyController::State::Sampling);
}
