// Known-good fixture: one overload sanitizes, the other delegates.
struct MetricEstimate
{
    double value = 0.0;
};

struct Clean
{
    double clean[4];
    int n;
};

Clean sanitizeObservations(const double *vals, int n);

struct FancyEstimator
{
    MetricEstimate estimateMetric(const double *vals, int n) const;
    MetricEstimate estimateMetric(const double *vals, int n,
                                  bool verbose) const;
};

MetricEstimate
FancyEstimator::estimateMetric(const double *vals, int n) const
{
    return estimateMetric(vals, n, false); // delegates
}

MetricEstimate
FancyEstimator::estimateMetric(const double *vals, int n,
                               bool) const
{
    const Clean c = sanitizeObservations(vals, n);
    MetricEstimate est;
    for (int i = 0; i < c.n; ++i)
        est.value += c.clean[i];
    return est;
}
