// Known-bad fixture: raw instrument-name literals — one off-scheme,
// one valid but undeclared in src/obs/names.hh.
struct Counter
{
    void add(int) {}
};

struct Registry
{
    Counter counter(const char *) { return {}; }
};

void
instrument(Registry &reg)
{
    reg.counter("em.fits.completed").add(1);     // missing leo. prefix
    reg.counter("leo.em.fits.imagined").add(1);  // not in names.hh
}
