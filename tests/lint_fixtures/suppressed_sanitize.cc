// Suppression fixture: an entry point that deliberately consumes
// pre-sanitized observations, waived at the definition.
struct MetricEstimate
{
    double value = 0.0;
};

struct RawEstimator
{
    MetricEstimate estimateMetric(const double *vals, int n) const;
};

MetricEstimate
RawEstimator::estimateMetric(const double *vals, // leo-lint: allow(sanitize-boundary)
                             int n) const
{
    MetricEstimate est;
    for (int i = 0; i < n; ++i)
        est.value += vals[i];
    return est;
}
