// The throw sits inside a try block: the guard catches it before it
// can escape the entry point, so the reachability walk stays clean.
struct Service
{
public:
    void tick();
};

void helperDeep();

void
Service::tick()
{
    helperDeep();
}

void
helperDeep()
{
    try {
        throw 1;
    } catch (...) {
    }
}
