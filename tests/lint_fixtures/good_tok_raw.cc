// Banned identifiers, comment openers and lint directives inside raw
// strings (plain and encoding-prefixed) are literal text: no
// findings, no hot regions, no dangling markers.
const char *a = R"(rand( time( unordered_map // system_clock)";
const wchar_t *b = LR"x(drand48( // leo-lint: hot-begin)x";
const char *c = u8R"(srand( /* random_device */)";
int live = 0;
