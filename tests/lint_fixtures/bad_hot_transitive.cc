// The hot region itself never allocates; the helper it calls does.
// The transitive walk must chase the call edge and flag it.
#include <vector>

void
grow(std::vector<int> &v)
{
    v.resize(100);
}

void
step(std::vector<int> &v)
{
    // leo-lint: hot-begin
    grow(v);
    // leo-lint: hot-end
}
