// Known-bad fixture: nondeterminism inside the deterministic core.
// Linted under the virtual path src/estimators/<this file>.
#include <chrono>
#include <cstdlib>
#include <unordered_map>

int
nondeterministicSum()
{
    std::unordered_map<int, int> weights; // iteration order varies
    weights[1] = 2;
    int total = static_cast<int>(std::rand());
    for (const auto &kv : weights)
        total += kv.second;
    const auto now = std::chrono::system_clock::now();
    (void)now;
    return total;
}
