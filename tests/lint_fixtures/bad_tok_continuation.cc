// A line-continuation macro body is live code: the banned call on
// the continued line must fire even though the logical line started
// with `#define`.
#define FRESH_SEED() \
    rand()
int seed() { return FRESH_SEED(); }
