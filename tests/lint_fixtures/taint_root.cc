// Linted under a determinism-scoped path (e.g. src/estimators/):
// calls a helper that lives outside the scope.
int freshSeed();

int
fitSomething()
{
    return freshSeed() + 1;
}
