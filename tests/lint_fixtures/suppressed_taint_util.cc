// The wall-clock read opts out on its line with a justification.
int
freshSeed()
{
    return static_cast<int>(time(nullptr)); // leo-lint: allow(determinism-taint) coarse seed, not on a replayed path
}
