// Known-good fixture: a hot region that only touches preallocated
// buffers; construction happens before the markers.
#include <vector>

double
hotLoop(std::vector<double> &buf, int iters)
{
    std::vector<double> tmp(8, 1.0); // acquired before the region
    double acc = 0.0;
    // leo-lint: hot-begin
    for (int i = 0; i < iters; ++i) {
        for (std::size_t j = 0; j < tmp.size(); ++j)
            acc += tmp[j] * buf[j % buf.size()];
    }
    // leo-lint: hot-end
    return acc;
}
