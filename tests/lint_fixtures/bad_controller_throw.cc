// Known-bad fixture: a throw inside the controller. Linted under the
// virtual path src/runtime/controller.cc.
#include <stdexcept>

void
recordMeasurement(double rate)
{
    if (rate <= 0.0)
        throw std::runtime_error("bad rate"); // crashes the loop
}
