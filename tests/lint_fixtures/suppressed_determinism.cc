// Suppression fixture: the same violations as bad_determinism.cc,
// each silenced by a per-line allow directive.
#include <unordered_map> // leo-lint: allow(determinism)

int
allowedNondeterminism()
{
    std::unordered_map<int, int> w; // leo-lint: allow(determinism)
    w[1] = 2;
    int total = static_cast<int>(rand()); // leo-lint: allow(determinism)
    return total + static_cast<int>(w.size());
}
