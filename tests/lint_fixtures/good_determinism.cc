// Known-good fixture: ordered containers and steady_clock are fine
// in the deterministic core.
#include <chrono>
#include <map>

int
deterministicSum()
{
    std::map<int, int> weights;
    weights[1] = 2;
    int total = 0;
    for (const auto &kv : weights)
        total += kv.second;
    const auto t0 = std::chrono::steady_clock::now();
    (void)t0;
    return total;
}
