// The helper reached from the hot region does no allocation.
#include <vector>

void
grow(std::vector<int> &v)
{
    if (!v.empty())
        v[0] = 7;
}

void
step(std::vector<int> &v)
{
    // leo-lint: hot-begin
    grow(v);
    // leo-lint: hot-end
}
