// The live finding after the raw string is silenced on its line.
const char *q = R"(not a comment: // still inside the literal)";
std::chrono::system_clock::time_point stamp(); // leo-lint: allow(determinism)
