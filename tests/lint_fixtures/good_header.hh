// Known-good fixture: guarded, fully qualified.
#pragma once

#include <vector>

inline std::vector<int>
twoInts()
{
    return {1, 2};
}
