// The unserialized field opts out at its declaration line with a
// justification, as scratch/metric fields in the real tree do.
struct ByteWriter
{
    void u64(unsigned long long v);
};

struct ByteReader
{
    unsigned long long u64();
};

struct Blob
{
    unsigned long long kept = 0;
    unsigned long long dropped = 0; // leo-lint: allow(snapshot-completeness) process-local metric
};

void
saveBlob(ByteWriter &w, const Blob &b)
{
    w.u64(b.kept);
}

Blob
loadBlob(ByteReader &r)
{
    Blob b;
    b.kept = r.u64();
    return b;
}
