// Known-bad fixture: no include guard, and a namespace-scope
// using-directive that leaks into every includer.
#include <vector>

using namespace std;

inline vector<int>
twoInts()
{
    return {1, 2};
}
