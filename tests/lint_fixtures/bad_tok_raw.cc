// Raw string containing `//` must not swallow the rest of the file:
// the banned identifier on the next line is live code and must fire.
const char *q = R"(not a comment: // still inside the literal)";
std::chrono::system_clock::time_point stamp();
