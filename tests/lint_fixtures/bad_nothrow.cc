// A throw two calls away from a public Service entry point: the
// cross-TU walk must reach it even though tick() itself is clean.
struct Service
{
public:
    void tick();
};

void helperDeep();

void
Service::tick()
{
    helperDeep();
}

void
helperDeep()
{
    throw 1;
}
