// Same shape as bad_hot_transitive.cc; the hot call site opts out
// with a justification (capacity guard pattern).
#include <vector>

void
grow(std::vector<int> &v)
{
    v.resize(100);
}

void
step(std::vector<int> &v)
{
    // leo-lint: hot-begin
    grow(v); // leo-lint: allow(hot-alloc-transitive) capacity guard; no-op when presized
    // leo-lint: hot-end
}
