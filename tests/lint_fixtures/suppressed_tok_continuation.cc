// The continued-macro finding is silenced on the line that fires.
#define FRESH_SEED() \
    rand() // leo-lint: allow(determinism)
int seed() { return FRESH_SEED(); }
