// Same shape as bad_nothrow.cc; the throw line opts out with a
// justification, as src/linalg/error.hh does for panic()/fatal().
struct Service
{
public:
    void tick();
};

void helperDeep();

void
Service::tick()
{
    helperDeep();
}

void
helperDeep()
{
    throw 1; // leo-lint: allow(nothrow-reachability) assert-style escape
}
