// Linted under an unscoped path (e.g. src/runtime/): the per-file
// determinism check ignores it, but the taint walk must flag the
// wall-clock read because taint_root.cc reaches it from the core.
int
freshSeed()
{
    return static_cast<int>(time(nullptr));
}
