// Everything inside one block comment is inert, banned words
// included.
/* rand( srand( unordered_map system_clock random_device */
int live = 0;
