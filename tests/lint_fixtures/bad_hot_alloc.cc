// Known-bad fixture: heap traffic inside a hot region.
#include <string>
#include <vector>

double
hotLoop(std::vector<double> &buf, int iters)
{
    double acc = 0.0;
    // leo-lint: hot-begin
    for (int i = 0; i < iters; ++i) {
        std::vector<double> tmp(8, 1.0); // constructs in the loop
        buf.resize(buf.size() + 1);      // may reallocate
        double *raw = new double[4];     // naked allocation
        std::string label = std::to_string(i);
        acc += tmp[0] + static_cast<double>(label.size());
        delete[] raw;
    }
    // leo-lint: hot-end
    return acc;
}
