// Suppression fixture: an audited one-off allocation inside a hot
// region, explicitly waived.
#include <vector>

double
hotLoop(int iters)
{
    double acc = 0.0;
    // leo-lint: hot-begin
    for (int i = 0; i < iters; ++i) {
        std::vector<double> tmp(4, 1.0); // leo-lint: allow(hot-alloc)
        acc += tmp[0];
    }
    // leo-lint: hot-end
    return acc;
}
