// The live container after the first */ is silenced on its line.
/* outer /* looks nested */ std::unordered_map<int, int> live; // leo-lint: allow(determinism)
int after = 0;
