// Known-good fixture: call sites reference names.hh constants (no
// literal to check) or a literal that is declared there.
struct Counter
{
    void add(int) {}
};

struct Registry
{
    Counter counter(const char *) { return {}; }
};

namespace names
{
inline constexpr const char *kEmFitsCompleted = "leo.em.fits.completed";
}

void
instrument(Registry &reg)
{
    reg.counter(names::kEmFitsCompleted).add(1);
    reg.counter("leo.em.fits.completed").add(1); // declared literal
}
