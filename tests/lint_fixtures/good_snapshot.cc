// Both fields of Blob round-trip through the serializer pair.
struct ByteWriter
{
    void u64(unsigned long long v);
};

struct ByteReader
{
    unsigned long long u64();
};

struct Blob
{
    unsigned long long kept = 0;
    unsigned long long dropped = 0;
};

void
saveBlob(ByteWriter &w, const Blob &b)
{
    w.u64(b.kept);
    w.u64(b.dropped);
}

Blob
loadBlob(ByteReader &r)
{
    Blob b;
    b.kept = r.u64();
    b.dropped = r.u64();
    return b;
}
