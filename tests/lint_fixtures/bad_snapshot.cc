// The 'dropped' field was added to Blob without updating either
// serializer: snapshot-completeness must flag it.
struct ByteWriter
{
    void u64(unsigned long long v);
};

struct ByteReader
{
    unsigned long long u64();
};

struct Blob
{
    unsigned long long kept = 0;
    unsigned long long dropped = 0;
};

void
saveBlob(ByteWriter &w, const Blob &b)
{
    w.u64(b.kept);
}

Blob
loadBlob(ByteReader &r)
{
    Blob b;
    b.kept = r.u64();
    return b;
}
