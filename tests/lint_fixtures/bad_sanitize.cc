// Known-bad fixture: an estimator entry point that consumes raw
// observations without sanitizing or delegating. Linted under the
// virtual path src/estimators/<this file>.
struct MetricEstimate
{
    double value = 0.0;
};

struct FancyEstimator
{
    MetricEstimate estimateMetric(const double *vals, int n) const;
};

MetricEstimate
FancyEstimator::estimateMetric(const double *vals, int n) const
{
    MetricEstimate est;
    for (int i = 0; i < n; ++i)
        est.value += vals[i]; // a NaN reading walks straight in
    return est;
}
