// Block comments do not nest: the first */ ends the comment (as in
// the compiler), so the container after it is live and must fire.
/* outer /* looks nested */ std::unordered_map<int, int> live; /* tail */
int after = 0;
