// Deterministic helper: nothing for the taint walk to report.
int
freshSeed()
{
    return 42;
}
