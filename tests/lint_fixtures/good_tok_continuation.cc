// A line comment whose last character is a backslash splices the
// next line into the comment (translation phase 2): the banned call
// below is comment text, not code. \
rand(); srand(7); std::unordered_map<int, int> hidden;
int live = 1;
