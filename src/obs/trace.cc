/**
 * @file
 * Implementation of the span tracer and the Chrome trace_event
 * exporter.
 */

#include "obs/trace.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace leo::obs
{

Tracer::~Tracer() = default;

void
Tracer::enable(std::size_t capacity)
{
    std::lock_guard<std::mutex> lock(mutex_);
    enabled_.store(false, std::memory_order_release);
    if (!ring_.empty())
        retired_.push_back(std::move(ring_));
    ring_ = std::vector<Event>(capacity);
    next_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
    cap_.store(capacity, std::memory_order_release);
    data_.store(ring_.data(), std::memory_order_release);
    enabled_.store(capacity > 0, std::memory_order_release);
}

void
Tracer::disable()
{
    enabled_.store(false, std::memory_order_release);
}

std::size_t
Tracer::recorded() const
{
    const Event *d = data_.load(std::memory_order_acquire);
    if (d == nullptr)
        return 0;
    const std::size_t used =
        std::min(next_.load(std::memory_order_relaxed),
                 cap_.load(std::memory_order_acquire));
    std::size_t n = 0;
    for (std::size_t i = 0; i < used; ++i)
        if (d[i].ready.load(std::memory_order_acquire))
            ++n;
    return n;
}

void
Tracer::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (Event &e : ring_) {
        e.ready.store(false, std::memory_order_relaxed);
        e.nargs = 0;
    }
    next_.store(0, std::memory_order_relaxed);
    dropped_.store(0, std::memory_order_relaxed);
}

Tracer::Event *
Tracer::claim()
{
    if (!enabled())
        return nullptr;
    Event *d = data_.load(std::memory_order_acquire);
    const std::size_t cap = cap_.load(std::memory_order_acquire);
    if (d == nullptr || cap == 0)
        return nullptr;
    const std::size_t i =
        next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= cap) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return nullptr;
    }
    return &d[i];
}

double
Tracer::nowMicros()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch)
        .count();
}

std::uint32_t
Tracer::threadId()
{
    static std::atomic<std::uint32_t> next{1};
    thread_local const std::uint32_t id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

Tracer &
Tracer::global()
{
    // Leaked on purpose (see Registry::global()).
    static Tracer *tracer = new Tracer();
    return *tracer;
}

namespace
{

void
appendJsonNumber(std::string &out, double v)
{
    char buf[40];
    if (!std::isfinite(v))
        v = 0.0;
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    out += buf;
}

void
appendEvent(std::string &out, const Tracer::Event &e)
{
    out += "{\"name\": \"";
    out += e.name ? e.name : "?";
    out += "\", \"cat\": \"";
    out += e.cat ? e.cat : "leo";
    out += "\", \"ph\": \"X\", \"pid\": 1, \"tid\": ";
    out += std::to_string(e.tid);
    out += ", \"ts\": ";
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.3f", e.tsMicros);
    out += buf;
    out += ", \"dur\": ";
    std::snprintf(buf, sizeof(buf), "%.3f", e.durMicros);
    out += buf;
    if (e.nargs > 0) {
        out += ", \"args\": {";
        for (std::uint32_t a = 0; a < e.nargs; ++a) {
            if (a)
                out += ", ";
            out += "\"";
            out += e.keys[a] ? e.keys[a] : "?";
            out += "\": ";
            appendJsonNumber(out, e.values[a]);
        }
        out += "}";
    }
    out += "}";
}

} // namespace

std::string
Tracer::chromeTraceJson() const
{
    // Collect the published events, then sort by start time so the
    // document is stable regardless of which thread finished when.
    std::vector<const Event *> events;
    {
        const Event *d = data_.load(std::memory_order_acquire);
        const std::size_t used =
            d ? std::min(next_.load(std::memory_order_relaxed),
                         cap_.load(std::memory_order_acquire))
              : 0;
        events.reserve(used);
        for (std::size_t i = 0; i < used; ++i)
            if (d[i].ready.load(std::memory_order_acquire))
                events.push_back(&d[i]);
    }
    std::sort(events.begin(), events.end(),
              [](const Event *a, const Event *b) {
                  if (a->tsMicros != b->tsMicros)
                      return a->tsMicros < b->tsMicros;
                  return a->tid < b->tid;
              });

    std::string out = "{\"displayTimeUnit\": \"ms\", ";
    out += "\"traceEvents\": [\n";
    out += "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": 0, \"ts\": 0, "
           "\"args\": {\"name\": \"leo\"}}";
    for (const Event *e : events) {
        out += ",\n";
        appendEvent(out, *e);
    }
    out += "\n]}\n";
    return out;
}

bool
Tracer::writeChromeTrace(const std::string &path) const
{
    std::ofstream f(path);
    if (!f)
        return false;
    f << chromeTraceJson();
    return static_cast<bool>(f);
}

Span::Span(const char *name, const char *cat)
    : name_(name), cat_(cat)
{
    if (Tracer::global().enabled()) {
        active_ = true;
        t0_ = Tracer::nowMicros();
    }
}

void
Span::arg(const char *key, double value)
{
    if (!active_ || nargs_ >= Tracer::kMaxArgs)
        return;
    keys_[nargs_] = key;
    values_[nargs_] = value;
    ++nargs_;
}

Span::~Span()
{
    if (!active_)
        return;
    const double t1 = Tracer::nowMicros();
    Tracer::Event *e = Tracer::global().claim();
    if (e == nullptr)
        return;
    e->name = name_;
    e->cat = cat_;
    e->tsMicros = t0_;
    e->durMicros = t1 - t0_;
    e->tid = Tracer::threadId();
    e->nargs = nargs_;
    for (std::uint32_t a = 0; a < nargs_; ++a) {
        e->keys[a] = keys_[a];
        e->values[a] = values_[a];
    }
    e->ready.store(true, std::memory_order_release);
}

} // namespace leo::obs
