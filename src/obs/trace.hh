/**
 * @file
 * The tracing half of `leo::obs`: RAII scoped spans recorded into a
 * bounded event buffer and exported in Chrome `trace_event` format
 * (a JSON file loadable in Perfetto or chrome://tracing).
 *
 * Cost model:
 *
 *  - Tracing is **off by default**. A Span constructed while the
 *    tracer is disabled costs one relaxed atomic load and a branch —
 *    no clock reads, no stores. This is the null-sink mode that
 *    keeps the instrumented pipeline inside the overhead budget.
 *  - When enabled, a span costs two steady-clock reads plus one
 *    lock-free slot claim (relaxed fetch_add) into a pre-allocated
 *    buffer. Once the buffer is full further events are dropped and
 *    counted — dropped() — rather than blocking or reallocating.
 *  - Event slots are published with a per-slot release flag, so an
 *    export running concurrently with writers only sees fully
 *    written events (and is ThreadSanitizer-clean).
 *
 * Span names and arg keys must be string literals (or otherwise
 * outlive the tracer): events store the pointers, not copies.
 */

#ifndef LEO_OBS_TRACE_HH
#define LEO_OBS_TRACE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace leo::obs
{

/**
 * The process-wide span collector.
 *
 * enable()/disable()/clear() must not run concurrently with live
 * spans; everything else is thread safe.
 */
class Tracer
{
  public:
    /** Maximum key/value args attachable to one span. */
    static constexpr std::size_t kMaxArgs = 4;

    /** One completed span (Chrome "X" event). */
    struct Event
    {
        const char *name = nullptr;
        const char *cat = nullptr;
        double tsMicros = 0.0;
        double durMicros = 0.0;
        std::uint32_t tid = 0;
        std::uint32_t nargs = 0;
        const char *keys[kMaxArgs] = {};
        double values[kMaxArgs] = {};
        std::atomic<bool> ready{false};
    };

    Tracer() = default;
    ~Tracer();

    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /**
     * Allocate an event buffer and start recording.
     *
     * @param capacity Maximum events retained; later events are
     *                 dropped (and counted) once full.
     */
    void enable(std::size_t capacity);

    /** Stop recording (the buffer is kept for export). */
    void disable();

    /** @return True iff spans are being recorded. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_acquire);
    }

    /** @return Events retained in the buffer. */
    std::size_t recorded() const;

    /** @return Events dropped because the buffer was full. */
    std::uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Forget every recorded event (keeps the buffer and state). */
    void clear();

    /**
     * Render the Chrome trace_event JSON document:
     * `{"displayTimeUnit": "ms", "traceEvents": [...]}` with "X"
     * (complete) events sorted by timestamp.
     */
    std::string chromeTraceJson() const;

    /**
     * Write chromeTraceJson() to a file.
     *
     * @return True on success.
     */
    bool writeChromeTrace(const std::string &path) const;

    /** Claim an event slot; nullptr when disabled or full. */
    Event *claim();

    /** Monotone microseconds since the first call in the process. */
    static double nowMicros();

    /** Small dense id of the calling thread (1, 2, ...). */
    static std::uint32_t threadId();

    /**
     * The process-wide tracer. Never destructed (safe during static
     * destruction). Disabled until enable() is called.
     */
    static Tracer &global();

  private:
    std::atomic<bool> enabled_{false};
    std::atomic<std::size_t> next_{0};
    std::atomic<std::uint64_t> dropped_{0};
    /** Lock-free view of the current buffer for claim(); the vectors
     *  below own the storage. */
    std::atomic<Event *> data_{nullptr};
    std::atomic<std::size_t> cap_{0};
    mutable std::mutex mutex_;
    std::vector<Event> ring_;
    /** Buffers from previous enable() calls; kept so a straggling
     *  span from an old epoch never writes freed memory. */
    std::vector<std::vector<Event>> retired_;
};

/**
 * RAII scoped span on the global tracer: records name, thread id,
 * start timestamp and duration; up to kMaxArgs numeric args.
 *
 * A span created while tracing is disabled is inert (no clocks, no
 * stores) — the zero-overhead guarantee of the subsystem.
 */
class Span
{
  public:
    /**
     * @param name Span name (string literal; `subsystem.noun`).
     * @param cat  Chrome trace category (string literal).
     */
    explicit Span(const char *name, const char *cat = "leo");
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** Attach a numeric argument (ignored beyond kMaxArgs). */
    void arg(const char *key, double value);

  private:
    const char *name_;
    const char *cat_;
    double t0_ = 0.0;
    bool active_ = false;
    std::uint32_t nargs_ = 0;
    const char *keys_[Tracer::kMaxArgs] = {};
    double values_[Tracer::kMaxArgs] = {};
};

} // namespace leo::obs

#endif // LEO_OBS_TRACE_HH
