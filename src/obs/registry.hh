/**
 * @file
 * The metrics half of the `leo::obs` observability subsystem.
 *
 * A Registry is a named table of three instrument kinds —
 * monotone **counters**, last-write-wins **gauges** and fixed-bucket
 * **histograms** — designed so the *hot path pays no locks*:
 *
 *  - Storage is sharded per thread. An increment touches only the
 *    calling thread's shard (a relaxed atomic add into a cell that
 *    no other thread writes), so writers never contend with each
 *    other. ThreadSanitizer-clean by construction.
 *  - Shards are merged at snapshot() time, in shard-creation order.
 *    Counter and histogram-bucket merges are integer sums, so the
 *    merged values are *exactly* identical at any thread count —
 *    the determinism anchor the obs tests assert. (Histogram `sum`
 *    is a floating-point total and is deterministic only up to
 *    summation order; comparisons should use counts.)
 *  - A default-constructed handle is the **null sink**: every
 *    operation is a branch on a null pointer. Likewise
 *    setEnabled(false) — or the LEO_OBS=off environment variable for
 *    the process-wide Registry::global() — reduces every instrument
 *    to a single relaxed load and branch, which is what makes the
 *    instrumented build bitwise identical to (and within the
 *    overhead budget of) the bare one.
 *
 * Naming scheme (DESIGN.md "Observability"): instrument names are
 * `leo.<subsystem>.<noun>.<verb>` for counters
 * (`leo.em.fits.completed`), `leo.<subsystem>.<noun>.<unit>` for
 * histograms (`leo.em.iter.ms`) and gauges (`leo.em.workspace.bytes`).
 * Every name is declared once in names.hh and referenced as an
 * `obs::names::k...` constant — the obs-naming lint check rejects raw
 * literals at call sites.
 */

#ifndef LEO_OBS_REGISTRY_HH
#define LEO_OBS_REGISTRY_HH

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace leo::obs
{

class Registry;

namespace detail
{
/** Immutable histogram descriptor shared by handles and shards. */
struct HistDesc
{
    /** Upper bucket edges, strictly increasing. A value v lands in
     *  the first bucket with v <= edges[i]; values above the last
     *  edge land in the implicit overflow bucket. */
    std::vector<double> edges;
    /** First bucket cell of this histogram in the shard slot space. */
    std::size_t base = 0;
    /** Index of this histogram's sum/min/max stat cell. */
    std::size_t index = 0;
};
} // namespace detail

/**
 * A monotone event counter. Copyable value handle; the
 * default-constructed handle is a no-op null sink.
 */
class Counter
{
  public:
    Counter() = default;

    /** Add n to the counter (relaxed, lock-free, per-thread cell). */
    void add(std::uint64_t n = 1) const;

    /** @return The merged value across every shard. */
    std::uint64_t value() const;

  private:
    friend class Registry;
    Counter(Registry *r, std::size_t slot) : registry_(r), slot_(slot)
    {
    }
    Registry *registry_ = nullptr;
    std::size_t slot_ = 0;
};

/**
 * A last-write-wins gauge. Writes are globally sequenced with a
 * relaxed atomic ticket so the merge is well defined (the highest
 * ticket wins); reads merge across shards.
 */
class Gauge
{
  public:
    Gauge() = default;

    /** Record the current value. */
    void set(double v) const;

    /** @return The most recently set value (0 when never set). */
    double value() const;

  private:
    friend class Registry;
    Gauge(Registry *r, std::size_t slot) : registry_(r), slot_(slot) {}
    Registry *registry_ = nullptr;
    std::size_t slot_ = 0;
};

/**
 * A fixed-bucket histogram. Bucket edges are set at registration and
 * immutable afterwards; re-registering the same name returns the
 * existing instrument (the original edges win).
 */
class Histogram
{
  public:
    Histogram() = default;

    /** Record one observation. */
    void record(double v) const;

    /** @return True iff recording would actually land somewhere —
     *  the guard ScopedMs uses to skip its clock reads entirely. */
    bool live() const;

  private:
    friend class Registry;
    Histogram(Registry *r, const detail::HistDesc *desc)
        : registry_(r), desc_(desc)
    {
    }
    Registry *registry_ = nullptr;
    const detail::HistDesc *desc_ = nullptr;
};

/**
 * Default time buckets for millisecond histograms: powers of two
 * from ~1 us to ~16 s (25 edges + overflow).
 */
std::vector<double> defaultTimeBucketsMs();

/** One histogram's merged state inside a Snapshot. */
struct HistogramSnapshot
{
    std::string name;
    std::vector<double> edges;
    /** Per-bucket counts, size edges.size() + 1 (last = overflow). */
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0; //!< Total observations.
    double sum = 0.0;        //!< Sum of observations (order-dependent
                             //!< rounding; not bitwise deterministic).
    double min = 0.0;        //!< Smallest observation (0 if empty).
    double max = 0.0;        //!< Largest observation (0 if empty).
};

/**
 * A deterministic point-in-time view of a Registry: instruments
 * sorted by name, shards merged in creation order.
 */
struct Snapshot
{
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<HistogramSnapshot> histograms;

    /** @return Counter value by name, or fallback when absent. */
    std::uint64_t counterOr(const std::string &name,
                            std::uint64_t fallback = 0) const;

    /** @return Histogram by name, or nullptr when absent. */
    const HistogramSnapshot *histogram(const std::string &name) const;
};

/**
 * The instrument table plus its per-thread shards.
 *
 * Thread safe: any thread may register instruments, write through
 * handles, and snapshot concurrently. Registration and snapshot take
 * a mutex; handle writes never do.
 */
class Registry
{
  public:
    Registry();
    ~Registry();

    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Get or create the named counter. */
    Counter counter(const std::string &name);

    /** Get or create the named gauge. */
    Gauge gauge(const std::string &name);

    /**
     * Get or create the named histogram.
     *
     * @param edges Strictly increasing upper bucket edges; ignored
     *              when the name already exists.
     */
    Histogram histogram(const std::string &name,
                        std::vector<double> edges);

    /** Enable or disable every instrument of this registry. */
    void setEnabled(bool enabled)
    {
        enabled_.store(enabled, std::memory_order_relaxed);
    }

    /** @return True iff writes are being recorded. */
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** @return A deterministic merged view of every instrument. */
    Snapshot snapshot() const;

    /**
     * Pre-create the calling thread's shard (and the cell blocks of
     * every instrument registered so far), so that later hot-path
     * writes from this thread are guaranteed allocation-free. Called
     * automatically on first write; call explicitly before entering
     * an allocation-audited loop.
     */
    void prepareThread();

    /**
     * The process-wide registry. Enabled by default; the LEO_OBS
     * environment variable set to `off` or `0` disables it at first
     * use (the null-sink mode for overhead measurements). Never
     * destructed, so it is safe to use from static destructors.
     */
    static Registry &global();

  private:
    friend class Counter;
    friend class Gauge;
    friend class Histogram;

    struct Shard;
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram
    };
    struct Instrument
    {
        std::string name;
        Kind kind;
        std::size_t slot;
        const detail::HistDesc *desc = nullptr;
    };

    Shard &shard();
    void counterAdd(std::size_t slot, std::uint64_t n);
    std::uint64_t counterValue(std::size_t slot) const;
    void gaugeSet(std::size_t slot, double v);
    double gaugeValue(std::size_t slot) const;
    void histRecord(const detail::HistDesc &desc, double v);

    const std::uint64_t id_;
    std::atomic<bool> enabled_{true};
    std::atomic<std::uint64_t> gauge_seq_{0};
    mutable std::mutex mutex_;
    std::map<std::string, std::size_t> index_;
    std::deque<Instrument> instruments_;
    std::deque<detail::HistDesc> hist_descs_;
    std::deque<Shard> shards_;
    std::size_t num_counters_ = 0;
    std::size_t num_gauges_ = 0;
    std::size_t num_hist_cells_ = 0;
    std::size_t num_hist_buckets_ = 0;
};

inline bool
Histogram::live() const
{
    return registry_ != nullptr && registry_->enabled();
}

/** Render a snapshot of `reg` as a pretty-printed JSON object. */
std::string snapshotJson(const Registry &reg = Registry::global());

/** Render a snapshot as NDJSON: one instrument object per line. */
std::string snapshotNdjson(const Registry &reg = Registry::global());

/**
 * RAII millisecond timer: records the scope's wall time into a
 * histogram on destruction. The null-sink rule applies — timing a
 * default-constructed or disabled histogram costs two branches and
 * no clock reads.
 */
class ScopedMs
{
  public:
    explicit ScopedMs(Histogram h);
    ~ScopedMs();

    ScopedMs(const ScopedMs &) = delete;
    ScopedMs &operator=(const ScopedMs &) = delete;

  private:
    Histogram hist_;
    bool active_ = false;
    std::chrono::steady_clock::time_point t0_;
};

} // namespace leo::obs

#endif // LEO_OBS_REGISTRY_HH
