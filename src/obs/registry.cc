/**
 * @file
 * Implementation of the sharded metrics registry.
 *
 * Shard layout: each kind of cell lives in a two-level structure of
 * fixed-size blocks behind atomic pointers. The top-level pointer
 * array is embedded in the Shard (never reallocated), and a block,
 * once published, is immutable in structure — so a reader walking
 * blocks concurrently with the owner thread allocating new ones only
 * ever touches atomics. This is what keeps the writer path free of
 * locks *and* of ThreadSanitizer reports.
 *
 * Only the shard's owning thread allocates blocks and writes cells;
 * the snapshot thread reads cells through relaxed atomic loads. A
 * thread's first write to a registry creates its shard under the
 * registry mutex (see prepareThread() for pre-creating it outside an
 * allocation-audited region).
 */

#include "obs/registry.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>

namespace leo::obs
{

namespace
{

/** Cells per block; blocks per kind. 64 x 64 = 4096 cells, far more
 *  instruments than the pipeline registers. */
constexpr std::size_t kBlock = 64;
constexpr std::size_t kMaxBlocks = 64;

/** Registry instance ids are never reused, so a thread-local cache
 *  entry for a destroyed registry can never be mismatched. */
std::atomic<std::uint64_t> next_registry_id{1};

/** Round-trip-exact double formatting for the JSON exports. */
std::string
fmtDouble(double v)
{
    if (!std::isfinite(v))
        return v > 0 ? "1e999" : (v < 0 ? "-1e999" : "0");
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

/** Per-thread storage: atomic cells in stable two-level blocks. */
struct Registry::Shard
{
    struct U64Block
    {
        std::atomic<std::uint64_t> v[kBlock] = {};
    };
    struct GaugeCell
    {
        std::atomic<double> value{0.0};
        std::atomic<std::uint64_t> seq{0};
    };
    struct GaugeBlock
    {
        GaugeCell v[kBlock];
    };
    struct StatCell
    {
        std::atomic<double> sum{0.0};
        std::atomic<double> minv{
            std::numeric_limits<double>::infinity()};
        std::atomic<double> maxv{
            -std::numeric_limits<double>::infinity()};
    };
    struct StatBlock
    {
        StatCell v[kBlock];
    };

    std::atomic<U64Block *> counters[kMaxBlocks] = {};
    std::atomic<GaugeBlock *> gauges[kMaxBlocks] = {};
    std::atomic<U64Block *> buckets[kMaxBlocks] = {};
    std::atomic<StatBlock *> stats[kMaxBlocks] = {};

    ~Shard()
    {
        for (std::size_t b = 0; b < kMaxBlocks; ++b) {
            delete counters[b].load(std::memory_order_relaxed);
            delete gauges[b].load(std::memory_order_relaxed);
            delete buckets[b].load(std::memory_order_relaxed);
            delete stats[b].load(std::memory_order_relaxed);
        }
    }

    /** Owner-thread cell access: publish the block on first touch. */
    template <typename Block>
    static Block &
    ownBlock(std::atomic<Block *> (&blocks)[kMaxBlocks],
             std::size_t slot)
    {
        std::atomic<Block *> &p = blocks[slot / kBlock];
        Block *b = p.load(std::memory_order_acquire);
        if (b == nullptr) {
            b = new Block(); // leo-lint: allow(hot-alloc-transitive) first-touch lazy block; amortized, never steady-state
            p.store(b, std::memory_order_release);
        }
        return *b;
    }

    /** Reader cell access: nullptr block means all-zero cells. */
    template <typename Block>
    static const Block *
    peekBlock(const std::atomic<Block *> (&blocks)[kMaxBlocks],
              std::size_t slot)
    {
        return blocks[slot / kBlock].load(std::memory_order_acquire);
    }
};

namespace
{

/** The calling thread's shard cache, keyed by registry id. The
 *  payload is a Registry::Shard* (opaque here because Shard is a
 *  private member type). */
thread_local std::vector<std::pair<std::uint64_t, void *>> tls_shards;

} // namespace

Registry::Registry()
    : id_(next_registry_id.fetch_add(1, std::memory_order_relaxed))
{
}

Registry::~Registry() = default;

Registry::Shard &
Registry::shard()
{
    for (const auto &entry : tls_shards)
        if (entry.first == id_)
            return *static_cast<Shard *>(entry.second);
    std::lock_guard<std::mutex> lock(mutex_);
    Shard &s = shards_.emplace_back();
    tls_shards.emplace_back(id_, &s);
    return s;
}

void
Registry::prepareThread()
{
    Shard &s = shard();
    std::lock_guard<std::mutex> lock(mutex_);
    for (std::size_t c = 0; c < num_counters_; ++c)
        Shard::ownBlock(s.counters, c);
    for (std::size_t g = 0; g < num_gauges_; ++g)
        Shard::ownBlock(s.gauges, g);
    for (std::size_t b = 0; b < num_hist_buckets_; ++b)
        Shard::ownBlock(s.buckets, b);
    for (std::size_t h = 0; h < num_hist_cells_; ++h)
        Shard::ownBlock(s.stats, h);
}

Counter
Registry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(name);
    if (it != index_.end())
        return Counter(this, instruments_[it->second].slot);
    const std::size_t slot = num_counters_++;
    index_[name] = instruments_.size();
    instruments_.push_back({name, Kind::Counter, slot, nullptr});
    return Counter(this, slot);
}

Gauge
Registry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(name);
    if (it != index_.end())
        return Gauge(this, instruments_[it->second].slot);
    const std::size_t slot = num_gauges_++;
    index_[name] = instruments_.size();
    instruments_.push_back({name, Kind::Gauge, slot, nullptr});
    return Gauge(this, slot);
}

Histogram
Registry::histogram(const std::string &name,
                    std::vector<double> edges)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = index_.find(name);
    if (it != index_.end())
        return Histogram(this, instruments_[it->second].desc);
    detail::HistDesc &desc = hist_descs_.emplace_back();
    desc.edges = std::move(edges);
    std::sort(desc.edges.begin(), desc.edges.end());
    desc.edges.erase(
        std::unique(desc.edges.begin(), desc.edges.end()),
        desc.edges.end());
    desc.base = num_hist_buckets_;
    desc.index = num_hist_cells_++;
    num_hist_buckets_ += desc.edges.size() + 1;
    index_[name] = instruments_.size();
    instruments_.push_back({name, Kind::Histogram, desc.index, &desc});
    return Histogram(this, &desc);
}

void
Registry::counterAdd(std::size_t slot, std::uint64_t n)
{
    auto &cell =
        Shard::ownBlock(shard().counters, slot).v[slot % kBlock];
    cell.fetch_add(n, std::memory_order_relaxed);
}

std::uint64_t
Registry::counterValue(std::size_t slot) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::uint64_t total = 0;
    for (const Shard &s : shards_) {
        const auto *block = Shard::peekBlock(s.counters, slot);
        if (block)
            total += block->v[slot % kBlock].load(
                std::memory_order_relaxed);
    }
    return total;
}

void
Registry::gaugeSet(std::size_t slot, double v)
{
    // Ticket first, then the value: the merge takes the highest
    // ticket, so the last set wins across shards.
    const std::uint64_t seq =
        1 + gauge_seq_.fetch_add(1, std::memory_order_relaxed);
    auto &cell = Shard::ownBlock(shard().gauges, slot).v[slot % kBlock];
    cell.value.store(v, std::memory_order_relaxed);
    cell.seq.store(seq, std::memory_order_release);
}

double
Registry::gaugeValue(std::size_t slot) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    double value = 0.0;
    std::uint64_t best = 0;
    for (const Shard &s : shards_) {
        const auto *block = Shard::peekBlock(s.gauges, slot);
        if (!block)
            continue;
        const auto &cell = block->v[slot % kBlock];
        const std::uint64_t seq =
            cell.seq.load(std::memory_order_acquire);
        if (seq > best) {
            best = seq;
            value = cell.value.load(std::memory_order_relaxed);
        }
    }
    return value;
}

void
Registry::histRecord(const detail::HistDesc &desc, double v)
{
    Shard &s = shard();
    // Bucket = first edge >= v; everything beyond the last edge goes
    // to the overflow cell.
    const auto it =
        std::lower_bound(desc.edges.begin(), desc.edges.end(), v);
    const std::size_t bucket =
        desc.base +
        static_cast<std::size_t>(it - desc.edges.begin());
    Shard::ownBlock(s.buckets, bucket)
        .v[bucket % kBlock]
        .fetch_add(1, std::memory_order_relaxed);

    auto &stat =
        Shard::ownBlock(s.stats, desc.index).v[desc.index % kBlock];
    stat.sum.fetch_add(v, std::memory_order_relaxed);
    double cur = stat.minv.load(std::memory_order_relaxed);
    while (v < cur &&
           !stat.minv.compare_exchange_weak(
               cur, v, std::memory_order_relaxed)) {
    }
    cur = stat.maxv.load(std::memory_order_relaxed);
    while (v > cur &&
           !stat.maxv.compare_exchange_weak(
               cur, v, std::memory_order_relaxed)) {
    }
}

Snapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    Snapshot snap;
    // instruments_ is appended in registration order; collect then
    // sort by name so the view is independent of registration races.
    for (const Instrument &ins : instruments_) {
        if (ins.kind == Kind::Counter) {
            std::uint64_t total = 0;
            for (const Shard &s : shards_) {
                const auto *b = Shard::peekBlock(s.counters, ins.slot);
                if (b)
                    total += b->v[ins.slot % kBlock].load(
                        std::memory_order_relaxed);
            }
            snap.counters.emplace_back(ins.name, total);
        } else if (ins.kind == Kind::Gauge) {
            double value = 0.0;
            std::uint64_t best = 0;
            for (const Shard &s : shards_) {
                const auto *b = Shard::peekBlock(s.gauges, ins.slot);
                if (!b)
                    continue;
                const auto &cell = b->v[ins.slot % kBlock];
                const std::uint64_t seq =
                    cell.seq.load(std::memory_order_acquire);
                if (seq > best) {
                    best = seq;
                    value =
                        cell.value.load(std::memory_order_relaxed);
                }
            }
            snap.gauges.emplace_back(ins.name, value);
        } else {
            const detail::HistDesc &d = *ins.desc;
            HistogramSnapshot h;
            h.name = ins.name;
            h.edges = d.edges;
            h.counts.assign(d.edges.size() + 1, 0);
            double minv = std::numeric_limits<double>::infinity();
            double maxv = -std::numeric_limits<double>::infinity();
            for (const Shard &s : shards_) {
                for (std::size_t b = 0; b < h.counts.size(); ++b) {
                    const std::size_t cell = d.base + b;
                    const auto *blk =
                        Shard::peekBlock(s.buckets, cell);
                    if (blk)
                        h.counts[b] += blk->v[cell % kBlock].load(
                            std::memory_order_relaxed);
                }
                const auto *stat = Shard::peekBlock(s.stats, d.index);
                if (stat) {
                    const auto &cell = stat->v[d.index % kBlock];
                    h.sum +=
                        cell.sum.load(std::memory_order_relaxed);
                    minv = std::min(
                        minv,
                        cell.minv.load(std::memory_order_relaxed));
                    maxv = std::max(
                        maxv,
                        cell.maxv.load(std::memory_order_relaxed));
                }
            }
            for (std::uint64_t c : h.counts)
                h.count += c;
            if (h.count > 0) {
                h.min = minv;
                h.max = maxv;
            }
            snap.histograms.push_back(std::move(h));
        }
    }
    std::sort(snap.counters.begin(), snap.counters.end());
    std::sort(snap.gauges.begin(), snap.gauges.end());
    std::sort(snap.histograms.begin(), snap.histograms.end(),
              [](const HistogramSnapshot &a,
                 const HistogramSnapshot &b) {
                  return a.name < b.name;
              });
    return snap;
}

Registry &
Registry::global()
{
    // Leaked on purpose: instrumented code may run during static
    // destruction (pool teardown, atexit trace writers).
    static Registry *reg = []() {
        auto *r = new Registry();
        if (const char *env = std::getenv("LEO_OBS")) {
            if (std::strcmp(env, "off") == 0 ||
                std::strcmp(env, "0") == 0)
                r->setEnabled(false);
        }
        return r;
    }();
    return *reg;
}

// ---- Handles ------------------------------------------------------

void
Counter::add(std::uint64_t n) const
{
    if (registry_ == nullptr || !registry_->enabled())
        return;
    registry_->counterAdd(slot_, n);
}

std::uint64_t
Counter::value() const
{
    return registry_ ? registry_->counterValue(slot_) : 0;
}

void
Gauge::set(double v) const
{
    if (registry_ == nullptr || !registry_->enabled())
        return;
    registry_->gaugeSet(slot_, v);
}

double
Gauge::value() const
{
    return registry_ ? registry_->gaugeValue(slot_) : 0.0;
}

void
Histogram::record(double v) const
{
    if (registry_ == nullptr || desc_ == nullptr ||
        !registry_->enabled())
        return;
    registry_->histRecord(*desc_, v);
}

// ---- Snapshot helpers ---------------------------------------------

std::uint64_t
Snapshot::counterOr(const std::string &name,
                    std::uint64_t fallback) const
{
    for (const auto &c : counters)
        if (c.first == name)
            return c.second;
    return fallback;
}

const HistogramSnapshot *
Snapshot::histogram(const std::string &name) const
{
    for (const HistogramSnapshot &h : histograms)
        if (h.name == name)
            return &h;
    return nullptr;
}

std::vector<double>
defaultTimeBucketsMs()
{
    // 2^-10 .. 2^14 ms: ~1 us to ~16 s.
    std::vector<double> edges;
    edges.reserve(25);
    for (int p = -10; p <= 14; ++p)
        edges.push_back(std::ldexp(1.0, p));
    return edges;
}

// ---- JSON export --------------------------------------------------

namespace
{

std::string
histogramJson(const HistogramSnapshot &h)
{
    std::string out = "{\"edges\": [";
    for (std::size_t i = 0; i < h.edges.size(); ++i) {
        if (i)
            out += ", ";
        out += fmtDouble(h.edges[i]);
    }
    out += "], \"counts\": [";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
        if (i)
            out += ", ";
        out += std::to_string(h.counts[i]);
    }
    out += "], \"count\": " + std::to_string(h.count);
    out += ", \"sum\": " + fmtDouble(h.sum);
    out += ", \"min\": " + fmtDouble(h.min);
    out += ", \"max\": " + fmtDouble(h.max) + "}";
    return out;
}

} // namespace

std::string
snapshotJson(const Registry &reg)
{
    const Snapshot snap = reg.snapshot();
    std::string out = "{\n  \"counters\": {";
    for (std::size_t i = 0; i < snap.counters.size(); ++i) {
        out += i ? ",\n    " : "\n    ";
        out += "\"" + jsonEscape(snap.counters[i].first) +
               "\": " + std::to_string(snap.counters[i].second);
    }
    out += snap.counters.empty() ? "},\n" : "\n  },\n";
    out += "  \"gauges\": {";
    for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
        out += i ? ",\n    " : "\n    ";
        out += "\"" + jsonEscape(snap.gauges[i].first) +
               "\": " + fmtDouble(snap.gauges[i].second);
    }
    out += snap.gauges.empty() ? "},\n" : "\n  },\n";
    out += "  \"histograms\": {";
    for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
        out += i ? ",\n    " : "\n    ";
        out += "\"" + jsonEscape(snap.histograms[i].name) +
               "\": " + histogramJson(snap.histograms[i]);
    }
    out += snap.histograms.empty() ? "}\n}" : "\n  }\n}";
    return out;
}

std::string
snapshotNdjson(const Registry &reg)
{
    const Snapshot snap = reg.snapshot();
    std::string out;
    for (const auto &c : snap.counters)
        out += "{\"type\": \"counter\", \"name\": \"" +
               jsonEscape(c.first) +
               "\", \"value\": " + std::to_string(c.second) + "}\n";
    for (const auto &g : snap.gauges)
        out += "{\"type\": \"gauge\", \"name\": \"" +
               jsonEscape(g.first) +
               "\", \"value\": " + fmtDouble(g.second) + "}\n";
    for (const HistogramSnapshot &h : snap.histograms)
        out += "{\"type\": \"histogram\", \"name\": \"" +
               jsonEscape(h.name) + "\", \"data\": " +
               histogramJson(h) + "}\n";
    return out;
}

// ---- ScopedMs -----------------------------------------------------

ScopedMs::ScopedMs(Histogram h) : hist_(h), active_(h.live())
{
    if (active_)
        t0_ = std::chrono::steady_clock::now();
}

ScopedMs::~ScopedMs()
{
    if (!active_)
        return;
    const auto t1 = std::chrono::steady_clock::now();
    hist_.record(
        std::chrono::duration<double, std::milli>(t1 - t0_).count());
}

} // namespace leo::obs
