/**
 * @file
 * Central registry of observability instrument and span names.
 *
 * Every counter, gauge, histogram and span name in the tree lives
 * here, as a `leo.<subsystem>.<name>` constant — one source of truth
 * so a typo'd name is a missing-identifier compile error instead of a
 * silently forked metric. The leo-lint `obs-naming` check enforces
 * the contract from the other side: an instrument constructed from a
 * raw string literal anywhere in src/, tools/ or bench/ fails the
 * lint unless the literal both matches the scheme and appears in this
 * header (see DESIGN.md "Static analysis and enforced invariants").
 *
 * Naming scheme (DESIGN.md "Observability"): dot-joined lowercase
 * components, `leo.<subsystem>.<noun>.<verb>` for counters
 * (leo.em.fits.completed), `leo.<subsystem>.<noun>.<unit>` for
 * histograms (leo.em.iter.ms) and gauges (leo.em.workspace.bytes),
 * `leo.<subsystem>.<operation>` for spans (leo.em.fit).
 */

#ifndef LEO_OBS_NAMES_HH
#define LEO_OBS_NAMES_HH

namespace leo::obs::names
{

// ---- em: the LEO EM estimator (src/estimators/leo.cc) ----------- //
inline constexpr const char *kEmFitsCompleted = "leo.em.fits.completed";
inline constexpr const char *kEmFitsWarm = "leo.em.fits.warm";
inline constexpr const char *kEmIterationsRun = "leo.em.iterations.run";
inline constexpr const char *kEmRidgeRetried = "leo.em.ridge.retried";
inline constexpr const char *kEmIterMs = "leo.em.iter.ms";
inline constexpr const char *kEmWorkspaceBytes = "leo.em.workspace.bytes";
inline constexpr const char *kEmFitSpan = "leo.em.fit";
inline constexpr const char *kEmIterSpan = "leo.em.iter";
inline constexpr const char *kEmLowRankFits = "leo.em.lowrank.fits";
inline constexpr const char *kEmBasisColumns = "leo.em.basis.columns";

// ---- refit: the incremental per-window refitter ----------------- //
inline constexpr const char *kRefitSamplesApplied =
    "leo.refit.samples.applied";
inline constexpr const char *kRefitSamplesEvicted =
    "leo.refit.samples.evicted";
inline constexpr const char *kRefitDowndatesFailed =
    "leo.refit.downdates.failed";
inline constexpr const char *kRefitRebuildsRun =
    "leo.refit.rebuilds.run";

// ---- sanitize: estimator input sanitization --------------------- //
inline constexpr const char *kSanitizeSamplesRejected =
    "leo.sanitize.samples.rejected";
inline constexpr const char *kSanitizeSamplesMerged =
    "leo.sanitize.samples.merged";

// ---- sampling: variance-guided active sampling ------------------ //
inline constexpr const char *kSamplingProbesMeasured =
    "leo.sampling.probes.measured";
inline constexpr const char *kSamplingRoundsGuided =
    "leo.sampling.rounds.guided";
inline constexpr const char *kSamplingProbeSpan = "leo.sampling.probe";

// ---- lp: the simplex solver (src/linalg/simplex.cc) ------------- //
inline constexpr const char *kLpSolvesRun = "leo.lp.solves.run";
inline constexpr const char *kLpPivotsStepped = "leo.lp.pivots.stepped";
inline constexpr const char *kLpSolveSpan = "leo.lp.solve";

// ---- pool: the deterministic thread pool ------------------------ //
inline constexpr const char *kPoolTasksPosted = "leo.pool.tasks.posted";
inline constexpr const char *kPoolTasksExecuted =
    "leo.pool.tasks.executed";
inline constexpr const char *kPoolQueueDepth = "leo.pool.queue.depth";
inline constexpr const char *kPoolWaitMs = "leo.pool.wait.ms";
inline constexpr const char *kPoolTaskMs = "leo.pool.task.ms";

// ---- optimizer: schedule/plan computation ----------------------- //
inline constexpr const char *kOptimizerPlansComputed =
    "leo.optimizer.plans.computed";
inline constexpr const char *kOptimizerPlansInfeasible =
    "leo.optimizer.plans.infeasible";
inline constexpr const char *kOptimizerPlanSpan = "leo.optimizer.plan";

// ---- optimizer: global multi-app co-scheduling ------------------ //
inline constexpr const char *kOptimizerGlobalPlansComputed =
    "leo.optimizer.global.plans.computed";
inline constexpr const char *kOptimizerGlobalPlansInfeasible =
    "leo.optimizer.global.plans.infeasible";
inline constexpr const char *kOptimizerGlobalPlanSpan =
    "leo.optimizer.global.plan";

// ---- faults: the fault injector --------------------------------- //
inline constexpr const char *kFaultsReadingsSeen =
    "leo.faults.readings.seen";
inline constexpr const char *kFaultsReadingsCorrupted =
    "leo.faults.readings.corrupted";

// ---- profiler: the telemetry sweep profiler --------------------- //
inline constexpr const char *kProfilerConfigsMeasured =
    "leo.profiler.configs.measured";
inline constexpr const char *kProfilerSweepsRun =
    "leo.profiler.sweeps.run";
inline constexpr const char *kProfilerMeasureSpan = "leo.profiler.measure";

// ---- controller: the online energy controller ------------------- //
inline constexpr const char *kControllerFitsFailed =
    "leo.controller.fits.failed";
inline constexpr const char *kControllerSamplesRejected =
    "leo.controller.samples.rejected";
inline constexpr const char *kControllerWindowsFallback =
    "leo.controller.windows.fallback";
inline constexpr const char *kControllerWindowSpan =
    "leo.controller.window";
inline constexpr const char *kControllerFitSpan = "leo.controller.fit";
inline constexpr const char *kControllerChangepointsDetected =
    "leo.controller.changepoints.detected";
inline constexpr const char *kControllerChangepointLatency =
    "leo.controller.changepoint.latency.windows";

// ---- scenario: trace replay and scenario runs ------------------- //
inline constexpr const char *kScenarioRunsExecuted =
    "leo.scenario.runs.executed";
inline constexpr const char *kScenarioFramesSimulated =
    "leo.scenario.frames.simulated";
inline constexpr const char *kScenarioRunSpan = "leo.scenario.run";

// ---- service: the multi-tenant serving core --------------------- //
inline constexpr const char *kServiceTenantsAdmitted =
    "leo.service.tenants.admitted";
inline constexpr const char *kServiceTenantsRejected =
    "leo.service.tenants.rejected";
inline constexpr const char *kServiceTenantsClosed =
    "leo.service.tenants.closed";
inline constexpr const char *kServiceTenantsActive =
    "leo.service.tenants.active";
inline constexpr const char *kServiceSamplesEnqueued =
    "leo.service.samples.enqueued";
inline constexpr const char *kServiceSamplesDropped =
    "leo.service.samples.dropped";
inline constexpr const char *kServiceWindowsProcessed =
    "leo.service.windows.processed";
inline constexpr const char *kServiceTicksRun =
    "leo.service.ticks.run";
inline constexpr const char *kServiceFitsBatched =
    "leo.service.fits.batched";
inline constexpr const char *kServiceCacheHits =
    "leo.service.cache.hits";
inline constexpr const char *kServiceCacheMisses =
    "leo.service.cache.misses";
inline constexpr const char *kServiceCacheEvictions =
    "leo.service.cache.evictions";
inline constexpr const char *kServicePriorRefreshes =
    "leo.service.prior.refreshes";
inline constexpr const char *kServiceGlobalReplans =
    "leo.service.global.replans";
inline constexpr const char *kServiceGlobalInfeasible =
    "leo.service.global.infeasible";
inline constexpr const char *kServiceSnapshotsSaved =
    "leo.service.snapshots.saved";
inline constexpr const char *kServiceSnapshotsRestored =
    "leo.service.snapshots.restored";
inline constexpr const char *kServiceTickMs = "leo.service.tick.ms";
inline constexpr const char *kServiceTickSpan = "leo.service.tick";
inline constexpr const char *kServiceFitSpan = "leo.service.fit";

// ---- bench: benchmark-local instruments ------------------------- //
inline constexpr const char *kBenchFitMs = "leo.bench.fit.ms";
inline constexpr const char *kBenchFitIters = "leo.bench.fit.iters";
inline constexpr const char *kBenchLowRankMs = "leo.bench.lowrank.ms";
inline constexpr const char *kBenchIncrementalMs =
    "leo.bench.incremental.ms";
inline constexpr const char *kBenchTrialSpan = "leo.bench.trial";

} // namespace leo::obs::names

#endif // LEO_OBS_NAMES_HH
