/**
 * @file
 * Umbrella header of the `leo::obs` observability subsystem.
 *
 * Two cooperating halves (see DESIGN.md "Observability"):
 *
 *  - registry.hh — named counters / gauges / fixed-bucket histograms
 *    with per-thread sharded lock-free storage, deterministic
 *    snapshot merging, and JSON/NDJSON export.
 *  - trace.hh — RAII scoped spans collected into a bounded buffer
 *    and exported in Chrome trace_event format (Perfetto-loadable).
 *
 * Both halves honour the null-sink contract: with the registry
 * disabled (LEO_OBS=off) and the tracer off, every instrumentation
 * site reduces to a couple of branches and the pipeline output is
 * bitwise identical to the uninstrumented build.
 */

#ifndef LEO_OBS_OBS_HH
#define LEO_OBS_OBS_HH

#include "obs/names.hh"
#include "obs/registry.hh"
#include "obs/trace.hh"

#endif // LEO_OBS_OBS_HH
