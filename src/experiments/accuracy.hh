/**
 * @file
 * The estimation-accuracy experiment of Sections 6.3 and 6.5.
 *
 * Protocol (Section 6.3): deploy each of the 25 applications, let LEO
 * and the Online method sample the same 20 random configurations,
 * give LEO additionally the offline profiles of the other 24
 * applications (leave-one-out), estimate every configuration, and
 * score with the accuracy metric of Equation (5) against exhaustive
 * ground truth, averaging over 10 trials.
 */

#ifndef LEO_EXPERIMENTS_ACCURACY_HH
#define LEO_EXPERIMENTS_ACCURACY_HH

#include <string>
#include <vector>

#include "estimators/estimator.hh"
#include "platform/config_space.hh"
#include "workloads/app_model.hh"

namespace leo::experiments
{

/** Accuracy of every approach for one benchmark. */
struct AccuracyRow
{
    /** Benchmark name. */
    std::string application;
    /** Mean Equation-(5) accuracy over trials, per approach. */
    double leo = 0.0;
    double online = 0.0;
    double offline = 0.0;
};

/** Experiment knobs. */
struct AccuracyOptions
{
    /** Observations per trial (paper: 20). */
    std::size_t sampleBudget = 20;
    /** Trials averaged per benchmark (paper: 10). */
    std::size_t trials = 10;
    /** Master seed (profile collection, sampling, noise). */
    std::uint64_t seed = 42;
    /**
     * Threads for the batched fits: 0 = shared global pool
     * (LEO_THREADS / hardware concurrency), 1 = serial, N > 1 = a
     * private pool for this experiment. Results are identical for
     * every value.
     */
    std::size_t threads = 0;
};

/**
 * Run the accuracy experiment for one metric across a benchmark set.
 *
 * @param metric  Performance (Fig. 5) or Power (Fig. 6).
 * @param machine The machine model.
 * @param space   The configuration space.
 * @param apps    Benchmarks to evaluate (leave-one-out priors are
 *                drawn from this same set).
 * @param options Experiment knobs.
 * @return One row per benchmark, in input order.
 */
std::vector<AccuracyRow> runAccuracyExperiment(
    estimators::Metric metric, const platform::Machine &machine,
    const platform::ConfigSpace &space,
    const std::vector<workloads::ApplicationProfile> &apps,
    const AccuracyOptions &options);

/** Mean of a column across rows. */
double meanAccuracy(const std::vector<AccuracyRow> &rows,
                    double AccuracyRow::*column);

} // namespace leo::experiments

#endif // LEO_EXPERIMENTS_ACCURACY_HH
