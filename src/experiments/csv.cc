/**
 * @file
 * Implementation of the CSV interchange helpers.
 */

#include "experiments/csv.hh"

#include <cctype>
#include <istream>
#include <ostream>
#include <sstream>

#include "linalg/error.hh"

namespace leo::experiments
{

namespace
{

/** Split a line on commas, trimming surrounding whitespace. */
std::vector<std::string>
splitCsvLine(const std::string &line)
{
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream is(line);
    while (std::getline(is, cell, ',')) {
        const auto begin = cell.find_first_not_of(" \t\r");
        const auto end = cell.find_last_not_of(" \t\r");
        cells.push_back(begin == std::string::npos
                            ? std::string{}
                            : cell.substr(begin, end - begin + 1));
    }
    return cells;
}

/** True for lines CSV readers skip. */
bool
skippable(const std::string &line)
{
    for (char c : line) {
        if (c == '#')
            return true;
        if (!std::isspace(static_cast<unsigned char>(c)))
            return false;
    }
    return true;
}

double
parseDouble(const std::string &cell, const std::string &context)
{
    try {
        std::size_t used = 0;
        const double v = std::stod(cell, &used);
        require(used == cell.size(),
                "trailing characters in number: " + context);
        return v;
    } catch (const std::exception &) {
        fatal("cannot parse number '" + cell + "' in " + context);
    }
}

} // namespace

std::vector<NamedVector>
readProfileTable(std::istream &in)
{
    std::vector<NamedVector> rows;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (skippable(line))
            continue;
        const std::vector<std::string> cells = splitCsvLine(line);
        require(cells.size() >= 2,
                "profile row needs a name and at least one value "
                "(line " + std::to_string(lineno) + ")");
        NamedVector row;
        row.name = cells[0];
        linalg::Vector v(cells.size() - 1);
        for (std::size_t i = 1; i < cells.size(); ++i)
            v[i - 1] = parseDouble(
                cells[i], "line " + std::to_string(lineno));
        row.values = std::move(v);
        if (!rows.empty()) {
            require(row.values.size() == rows.front().values.size(),
                    "ragged profile table at line " +
                        std::to_string(lineno));
        }
        rows.push_back(std::move(row));
    }
    return rows;
}

void
writeProfileTable(std::ostream &out,
                  const std::vector<NamedVector> &rows)
{
    for (const NamedVector &row : rows) {
        out << row.name;
        for (double v : row.values)
            out << ',' << v;
        out << '\n';
    }
}

std::pair<std::vector<std::size_t>, linalg::Vector>
readObservations(std::istream &in)
{
    std::vector<std::size_t> indices;
    std::vector<double> values;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (skippable(line))
            continue;
        const std::vector<std::string> cells = splitCsvLine(line);
        require(cells.size() == 2,
                "observation row must be 'index,value' (line " +
                    std::to_string(lineno) + ")");
        const double idx = parseDouble(
            cells[0], "line " + std::to_string(lineno));
        require(idx >= 0.0 && idx == static_cast<double>(
                                         static_cast<std::size_t>(idx)),
                "observation index must be a non-negative integer "
                "(line " + std::to_string(lineno) + ")");
        indices.push_back(static_cast<std::size_t>(idx));
        values.push_back(parseDouble(
            cells[1], "line " + std::to_string(lineno)));
    }
    return {std::move(indices), linalg::Vector(std::move(values))};
}

void
writeObservations(std::ostream &out,
                  const std::vector<std::size_t> &indices,
                  const linalg::Vector &values)
{
    require(indices.size() == values.size(),
            "writeObservations: size mismatch");
    for (std::size_t i = 0; i < indices.size(); ++i)
        out << indices[i] << ',' << values[i] << '\n';
}

void
writeEstimates(std::ostream &out, const linalg::Vector &values,
               const linalg::Vector &stddev)
{
    require(stddev.empty() || stddev.size() == values.size(),
            "writeEstimates: stddev size mismatch");
    for (std::size_t i = 0; i < values.size(); ++i) {
        out << i << ',' << values[i];
        if (!stddev.empty())
            out << ',' << stddev[i];
        out << '\n';
    }
}

} // namespace leo::experiments
