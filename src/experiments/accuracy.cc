/**
 * @file
 * Implementation of the accuracy experiment.
 *
 * The leave-one-out protocol runs one independent estimation problem
 * per (application, trial, approach); those fits are fanned across
 * the shared thread pool through estimators::EstimatorBatch. All
 * randomness is forked from the master RNG in the serial order
 * before any parallel work starts, so the experiment's output is
 * identical at every thread count.
 */

#include "experiments/accuracy.hh"

#include <memory>

#include "estimators/batch.hh"
#include "estimators/leo.hh"
#include "estimators/offline.hh"
#include "estimators/online.hh"
#include "linalg/error.hh"
#include "parallel/parallel_for.hh"
#include "stats/metrics.hh"
#include "telemetry/profile_store.hh"
#include "telemetry/sampler.hh"
#include "workloads/ground_truth.hh"

namespace leo::experiments
{

namespace
{

/**
 * Score one estimate against truth, handling the unanchored
 * zero-observation case (estimators then return unit-mean shapes; in
 * the paper's speedup space no scale knowledge is needed, so the
 * harness supplies the truth's scale — Equation (5) is invariant
 * under that common factor).
 */
double
score(const estimators::MetricEstimate &est,
      const linalg::Vector &truth, bool anchored)
{
    if (anchored)
        return stats::accuracy(est.values, truth);
    const double est_mean = est.values.mean();
    if (est_mean <= 0.0)
        return 0.0;
    const linalg::Vector rescaled =
        est.values * (truth.mean() / est_mean);
    return stats::accuracy(rescaled, truth);
}

} // namespace

std::vector<AccuracyRow>
runAccuracyExperiment(estimators::Metric metric,
                      const platform::Machine &machine,
                      const platform::ConfigSpace &space,
                      const std::vector<workloads::ApplicationProfile> &apps,
                      const AccuracyOptions &options)
{
    require(!apps.empty(), "runAccuracyExperiment: no applications");
    require(options.trials >= 1,
            "runAccuracyExperiment: need >= 1 trial");

    stats::Rng master(options.seed);
    const telemetry::HeartbeatMonitor monitor;
    const telemetry::WattsUpMeter meter;
    const telemetry::Profiler profiler(monitor, meter);
    const telemetry::RandomSampler policy;

    // Offline database over the full benchmark set (leave-one-out
    // views are taken per target below).
    const telemetry::ProfileStore store = telemetry::ProfileStore::collect(
        apps, machine, space, monitor, meter, master);

    const estimators::LeoEstimator leo_est;
    const estimators::OnlineEstimator online_est;
    const estimators::OfflineEstimator offline_est;

    std::unique_ptr<parallel::ThreadPool> local_pool;
    parallel::ThreadPool *pool = &parallel::ThreadPool::global();
    if (options.threads == 1) {
        pool = &parallel::ThreadPool::serial();
    } else if (options.threads > 1) {
        local_pool = std::make_unique<parallel::ThreadPool>(
            options.threads - 1);
        pool = local_pool.get();
    }

    const std::size_t n_apps = apps.size();
    const std::size_t trials = options.trials;

    // Per-(app, trial) sampling, serial and in the seed's original
    // order so every RNG fork draws the same stream regardless of
    // the pool size; the expensive part — the fits — is batched.
    struct Trial
    {
        telemetry::Observations obs;
        bool anchored = false;
    };
    std::vector<workloads::GroundTruth> truths;
    truths.reserve(n_apps);
    std::vector<std::vector<Trial>> trial_inputs(n_apps);

    estimators::EstimatorBatch leo_batch(leo_est, *pool);
    estimators::EstimatorBatch online_batch(online_est, *pool);
    estimators::EstimatorBatch offline_batch(offline_est, *pool);

    for (std::size_t a = 0; a < n_apps; ++a) {
        const workloads::ApplicationProfile &profile = apps[a];
        const workloads::ApplicationModel model(profile, machine);
        truths.push_back(workloads::computeGroundTruth(model, space));
        const std::vector<linalg::Vector> prior_vecs =
            estimators::priorVectors(store.without(profile.name),
                                     metric);

        trial_inputs[a].reserve(trials);
        for (std::size_t t = 0; t < trials; ++t) {
            stats::Rng rng = master.fork();
            Trial trial;
            trial.obs = profiler.sample(model, space, policy,
                                        options.sampleBudget, rng);
            trial.anchored = !trial.obs.indices.empty();
            const linalg::Vector &obs_vals =
                metric == estimators::Metric::Performance
                    ? trial.obs.performance
                    : trial.obs.power;
            estimators::EstimateRequest req;
            req.prior = prior_vecs;
            req.obsIndices = trial.obs.indices;
            req.obsValues = obs_vals;
            leo_batch.add(req);
            online_batch.add(req);
            offline_batch.add(std::move(req));
            trial_inputs[a].push_back(std::move(trial));
        }
    }

    // Requests are laid out app-major, trial-minor: a * trials + t.
    const std::vector<estimators::MetricEstimate> leo_out =
        leo_batch.run(space);
    const std::vector<estimators::MetricEstimate> online_out =
        online_batch.run(space);
    const std::vector<estimators::MetricEstimate> offline_out =
        offline_batch.run(space);

    std::vector<AccuracyRow> rows;
    rows.reserve(n_apps);
    for (std::size_t a = 0; a < n_apps; ++a) {
        const linalg::Vector &truth =
            metric == estimators::Metric::Performance
                ? truths[a].performance
                : truths[a].power;
        AccuracyRow row;
        row.application = apps[a].name;
        for (std::size_t t = 0; t < trials; ++t) {
            const std::size_t k = a * trials + t;
            const bool anchored = trial_inputs[a][t].anchored;
            row.leo += score(leo_out[k], truth, anchored);
            row.online += score(online_out[k], truth, anchored);
            row.offline += score(offline_out[k], truth, anchored);
        }
        const double n = static_cast<double>(trials);
        row.leo /= n;
        row.online /= n;
        row.offline /= n;
        rows.push_back(row);
    }
    return rows;
}

double
meanAccuracy(const std::vector<AccuracyRow> &rows,
             double AccuracyRow::*column)
{
    require(!rows.empty(), "meanAccuracy: no rows");
    double acc = 0.0;
    for (const AccuracyRow &r : rows)
        acc += r.*column;
    return acc / static_cast<double>(rows.size());
}

} // namespace leo::experiments
