/**
 * @file
 * Implementation of the accuracy experiment.
 */

#include "experiments/accuracy.hh"

#include "estimators/leo.hh"
#include "estimators/offline.hh"
#include "estimators/online.hh"
#include "linalg/error.hh"
#include "stats/metrics.hh"
#include "telemetry/profile_store.hh"
#include "telemetry/sampler.hh"
#include "workloads/ground_truth.hh"

namespace leo::experiments
{

namespace
{

/**
 * Score one estimate against truth, handling the unanchored
 * zero-observation case (estimators then return unit-mean shapes; in
 * the paper's speedup space no scale knowledge is needed, so the
 * harness supplies the truth's scale — Equation (5) is invariant
 * under that common factor).
 */
double
score(const estimators::MetricEstimate &est,
      const linalg::Vector &truth, bool anchored)
{
    if (anchored)
        return stats::accuracy(est.values, truth);
    const double est_mean = est.values.mean();
    if (est_mean <= 0.0)
        return 0.0;
    const linalg::Vector rescaled =
        est.values * (truth.mean() / est_mean);
    return stats::accuracy(rescaled, truth);
}

} // namespace

std::vector<AccuracyRow>
runAccuracyExperiment(estimators::Metric metric,
                      const platform::Machine &machine,
                      const platform::ConfigSpace &space,
                      const std::vector<workloads::ApplicationProfile> &apps,
                      const AccuracyOptions &options)
{
    require(!apps.empty(), "runAccuracyExperiment: no applications");
    require(options.trials >= 1,
            "runAccuracyExperiment: need >= 1 trial");

    stats::Rng master(options.seed);
    const telemetry::HeartbeatMonitor monitor;
    const telemetry::WattsUpMeter meter;
    const telemetry::Profiler profiler(monitor, meter);
    const telemetry::RandomSampler policy;

    // Offline database over the full benchmark set (leave-one-out
    // views are taken per target below).
    const telemetry::ProfileStore store = telemetry::ProfileStore::collect(
        apps, machine, space, monitor, meter, master);

    const estimators::LeoEstimator leo_est;
    const estimators::OnlineEstimator online_est;
    const estimators::OfflineEstimator offline_est;

    std::vector<AccuracyRow> rows;
    rows.reserve(apps.size());

    for (const workloads::ApplicationProfile &profile : apps) {
        const workloads::ApplicationModel model(profile, machine);
        const workloads::GroundTruth gt =
            workloads::computeGroundTruth(model, space);
        const linalg::Vector &truth =
            metric == estimators::Metric::Performance ? gt.performance
                                                      : gt.power;
        const telemetry::ProfileStore prior =
            store.without(profile.name);
        const std::vector<linalg::Vector> prior_vecs =
            estimators::priorVectors(prior, metric);

        AccuracyRow row;
        row.application = profile.name;

        for (std::size_t t = 0; t < options.trials; ++t) {
            stats::Rng rng = master.fork();
            const telemetry::Observations obs = profiler.sample(
                model, space, policy, options.sampleBudget, rng);
            const linalg::Vector &obs_vals =
                metric == estimators::Metric::Performance
                    ? obs.performance
                    : obs.power;
            const bool anchored = !obs.indices.empty();

            row.leo += score(leo_est.estimateMetric(space, prior_vecs,
                                                    obs.indices,
                                                    obs_vals),
                             truth, anchored);
            row.online += score(
                online_est.estimateMetric(space, prior_vecs,
                                          obs.indices, obs_vals),
                truth, anchored);
            row.offline += score(
                offline_est.estimateMetric(space, prior_vecs,
                                           obs.indices, obs_vals),
                truth, anchored);
        }
        const double n = static_cast<double>(options.trials);
        row.leo /= n;
        row.online /= n;
        row.offline /= n;
        rows.push_back(row);
    }
    return rows;
}

double
meanAccuracy(const std::vector<AccuracyRow> &rows,
             double AccuracyRow::*column)
{
    require(!rows.empty(), "meanAccuracy: no rows");
    double acc = 0.0;
    for (const AccuracyRow &r : rows)
        acc += r.*column;
    return acc / static_cast<double>(rows.size());
}

} // namespace leo::experiments
