/**
 * @file
 * Plain-text reporting helpers shared by the benchmark binaries.
 *
 * Every bench prints the rows/series of the paper figure or table it
 * regenerates; these helpers keep the formatting consistent and
 * machine-greppable (aligned columns, one header line).
 */

#ifndef LEO_EXPERIMENTS_REPORT_HH
#define LEO_EXPERIMENTS_REPORT_HH

#include <cstdlib>
#include <string>
#include <vector>

namespace leo::experiments
{

/** A fixed-width text table accumulated row by row. */
class TextTable
{
  public:
    /** @param headers Column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append a row (must match the header count). */
    void addRow(std::vector<std::string> cells);

    /** Render with aligned columns. */
    std::string render() const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with fixed precision. */
std::string fmt(double v, int precision = 3);

/**
 * Read a positive integer from the environment, with default — used
 * by the benches so `LEO_BENCH_TRIALS=10 ./fig05_perf_accuracy`
 * reproduces the paper's full trial count while the default stays
 * laptop-fast.
 */
std::size_t envSize(const char *name, std::size_t fallback);

} // namespace leo::experiments

#endif // LEO_EXPERIMENTS_REPORT_HH
