/**
 * @file
 * Implementation of the energy experiment.
 */

#include "experiments/energy.hh"

#include "estimators/leo.hh"
#include "estimators/offline.hh"
#include "estimators/online.hh"
#include "linalg/error.hh"
#include "optimizer/schedule.hh"
#include "telemetry/sampler.hh"
#include "workloads/ground_truth.hh"

namespace leo::experiments
{

double
EnergyCurve::meanRelative(double EnergyPoint::*column) const
{
    require(!points.empty(), "EnergyCurve::meanRelative: no points");
    double acc = 0.0;
    for (const EnergyPoint &p : points) {
        require(p.optimal > 0.0,
                "EnergyCurve::meanRelative: non-positive optimal");
        acc += (p.*column) / p.optimal;
    }
    return acc / static_cast<double>(points.size());
}

EnergyCurve
runEnergyExperiment(const workloads::ApplicationProfile &profile,
                    const platform::Machine &machine,
                    const platform::ConfigSpace &space,
                    const telemetry::ProfileStore &prior,
                    const EnergyOptions &options)
{
    require(options.utilizationLevels >= 1,
            "runEnergyExperiment: need >= 1 utilization level");
    require(!prior.contains(profile.name),
            "runEnergyExperiment: prior must exclude the target");

    stats::Rng rng(options.seed);
    const telemetry::HeartbeatMonitor monitor;
    const telemetry::WattsUpMeter meter;
    const telemetry::Profiler profiler(monitor, meter);
    const telemetry::RandomSampler policy;

    const workloads::ApplicationModel model(profile, machine);
    const workloads::GroundTruth gt =
        workloads::computeGroundTruth(model, space);
    const double idle = machine.spec().idleSystemPowerW;
    const double peak_rate = gt.performance.max();

    // One estimate per approach, reused across the sweep — matching
    // the paper's runtime, where "the one-time estimation process is
    // sufficient ... for the full range of utilizations" (Sec. 6.7).
    const telemetry::Observations obs = profiler.sample(
        model, space, policy, options.sampleBudget, rng);
    const estimators::EstimationInputs inputs{space, prior, obs};

    const estimators::Estimate est_leo =
        estimators::LeoEstimator().estimate(inputs);
    const estimators::Estimate est_online =
        estimators::OnlineEstimator().estimate(inputs);
    const estimators::Estimate est_offline =
        estimators::OfflineEstimator().estimate(inputs);

    EnergyCurve curve;
    curve.application = profile.name;
    curve.points.reserve(options.utilizationLevels);

    for (std::size_t u = 1; u <= options.utilizationLevels; ++u) {
        const double util = static_cast<double>(u) /
                            static_cast<double>(options.utilizationLevels);
        optimizer::PerformanceConstraint c;
        c.deadlineSeconds = options.deadlineSeconds;
        c.work = util * peak_rate * options.deadlineSeconds;

        // Execution is guarded (executeScheduleGuarded): the
        // runtime's gradient-ascent guard keeps every approach on
        // the deadline, so mispredictions cost energy, not lateness.
        auto run = [&](const estimators::Estimate &est) {
            const optimizer::Schedule plan =
                optimizer::planMinimalEnergy(est.performance.values,
                                             est.power.values, idle, c);
            return optimizer::executeScheduleGuarded(
                       plan, gt.performance, gt.power, idle, c)
                .energyJoules;
        };

        EnergyPoint p;
        p.utilization = util;
        p.leo = run(est_leo);
        p.online = run(est_online);
        p.offline = run(est_offline);

        // Race-to-idle: all resources flat out, then idle. The
        // heuristic has no performance feedback, so it runs OPEN
        // loop: when the all-resources configuration is not actually
        // the fastest (kmeans!), race both misses the deadline and
        // burns maximum power — exactly the failure the paper uses
        // to motivate estimation.
        optimizer::Schedule race;
        race.parts.push_back(
            {space.size() - 1, options.deadlineSeconds});
        p.raceToIdle = optimizer::executeSchedule(
                           race, gt.performance, gt.power, idle, c)
                           .energyJoules;

        // Optimal: plan from the truth itself.
        const optimizer::Schedule best = optimizer::planMinimalEnergy(
            gt.performance, gt.power, idle, c);
        p.optimal = optimizer::executeScheduleGuarded(
                        best, gt.performance, gt.power, idle, c)
                        .energyJoules;

        curve.points.push_back(p);
    }
    return curve;
}

} // namespace leo::experiments
