/**
 * @file
 * Implementation of the reporting helpers.
 */

#include "experiments/report.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "linalg/error.hh"

namespace leo::experiments
{

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    require(!headers_.empty(), "TextTable: no headers");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    require(cells.size() == headers_.size(),
            "TextTable: row width mismatch");
    rows_.push_back(std::move(cells));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> width(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        width[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    std::ostringstream os;
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << std::string(width[c] - row[c].size() + 2, ' ');
        }
        os << '\n';
    };
    emit(headers_);
    std::vector<std::string> rule;
    for (std::size_t c = 0; c < headers_.size(); ++c)
        rule.push_back(std::string(width[c], '-'));
    emit(rule);
    for (const auto &row : rows_)
        emit(row);
    return os.str();
}

std::string
fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::size_t
envSize(const char *name, std::size_t fallback)
{
    const char *raw = std::getenv(name);
    if (raw == nullptr)
        return fallback;
    const long v = std::atol(raw);
    return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

} // namespace leo::experiments
