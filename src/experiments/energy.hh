/**
 * @file
 * The energy-minimization experiment of Section 6.4.
 *
 * Protocol: fix a deadline, sweep the workload W so that the implied
 * utilization spans 1..100% of the application's peak rate, and for
 * each utilization let every approach estimate, plan (Equation 1) and
 * execute; measure the true energy consumed. Figure 10 plots the
 * per-utilization curves; Figure 11 averages each approach over all
 * utilizations, normalized to optimal.
 */

#ifndef LEO_EXPERIMENTS_ENERGY_HH
#define LEO_EXPERIMENTS_ENERGY_HH

#include <string>
#include <vector>

#include "platform/config_space.hh"
#include "telemetry/profile_store.hh"
#include "workloads/app_model.hh"

namespace leo::experiments
{

/** Energy of every approach at one utilization level. */
struct EnergyPoint
{
    /** Utilization in (0, 1]. */
    double utilization = 0.0;
    /** Measured energy per approach (Joules). */
    double leo = 0.0;
    double online = 0.0;
    double offline = 0.0;
    double raceToIdle = 0.0;
    double optimal = 0.0;
};

/** Whole-sweep result for one application. */
struct EnergyCurve
{
    /** Benchmark name. */
    std::string application;
    /** One point per utilization level. */
    std::vector<EnergyPoint> points;

    /** Mean energy over the sweep normalized to optimal. */
    double meanRelative(double EnergyPoint::*column) const;
};

/** Experiment knobs. */
struct EnergyOptions
{
    /** Observations per estimate (paper: 20). */
    std::size_t sampleBudget = 20;
    /** Utilization levels tested (paper: 100). */
    std::size_t utilizationLevels = 100;
    /** Deadline per job in seconds. */
    double deadlineSeconds = 100.0;
    /** Master seed. */
    std::uint64_t seed = 42;
};

/**
 * Run the utilization sweep for one application.
 *
 * @param profile The target benchmark.
 * @param machine The machine.
 * @param space   The configuration space.
 * @param prior   Offline profiles (must not contain the target;
 *                callers use store.without(name)).
 * @param options Knobs.
 */
EnergyCurve runEnergyExperiment(
    const workloads::ApplicationProfile &profile,
    const platform::Machine &machine,
    const platform::ConfigSpace &space,
    const telemetry::ProfileStore &prior, const EnergyOptions &options);

} // namespace leo::experiments

#endif // LEO_EXPERIMENTS_ENERGY_HH
