/**
 * @file
 * Minimal CSV input/output for profiles, observations and estimates.
 *
 * The paper's released artifact consumed measurement tables; these
 * helpers give the command-line tool (tools/leo_cli) and downstream
 * users a plain-text interchange format:
 *
 *  - profile table:  one row per application,
 *        name,v_0,v_1,...,v_{n-1}
 *  - observations:   one row per observed configuration,
 *        index,value
 *  - estimates:      one row per configuration,
 *        index,estimate[,stddev]
 *
 * Lines starting with '#' and blank lines are ignored.
 */

#ifndef LEO_EXPERIMENTS_CSV_HH
#define LEO_EXPERIMENTS_CSV_HH

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "linalg/vector.hh"

namespace leo::experiments
{

/** One named application vector (a profile-table row). */
struct NamedVector
{
    std::string name;
    linalg::Vector values;
};

/**
 * Parse a profile table.
 *
 * @param in Input stream.
 * @return One NamedVector per row; all rows must have equal length.
 */
std::vector<NamedVector> readProfileTable(std::istream &in);

/** Write a profile table. */
void writeProfileTable(std::ostream &out,
                       const std::vector<NamedVector> &rows);

/**
 * Parse an observation list of (index, value) pairs.
 *
 * @param in Input stream.
 * @return Indices and values, in file order.
 */
std::pair<std::vector<std::size_t>, linalg::Vector> readObservations(
    std::istream &in);

/** Write an observation list. */
void writeObservations(std::ostream &out,
                       const std::vector<std::size_t> &indices,
                       const linalg::Vector &values);

/**
 * Write an estimate table (index, value and optional stddev).
 *
 * @param out    Output stream.
 * @param values Estimated values.
 * @param stddev Optional per-configuration standard deviation (empty
 *               to omit the column).
 */
void writeEstimates(std::ostream &out, const linalg::Vector &values,
                    const linalg::Vector &stddev = linalg::Vector{});

} // namespace leo::experiments

#endif // LEO_EXPERIMENTS_CSV_HH
