/**
 * @file
 * Estimation quality metrics.
 *
 * The headline metric is the paper's Equation (5):
 *
 *     accuracy(yhat, y) = max(1 - ||yhat - y||^2 / ||y - ybar||^2, 0)
 *
 * i.e. the coefficient of determination clamped at zero. Figures 5, 6
 * and 12 report exactly this quantity.
 */

#ifndef LEO_STATS_METRICS_HH
#define LEO_STATS_METRICS_HH

#include "linalg/vector.hh"

namespace leo::stats
{

/**
 * Accuracy of an estimate per Equation (5) of the paper.
 *
 * @param estimate Estimated vector yhat.
 * @param truth    True vector y.
 * @return max(1 - ||yhat-y||^2 / ||y-ybar||^2, 0), in [0, 1].
 */
double accuracy(const linalg::Vector &estimate,
                const linalg::Vector &truth);

/** Root mean squared error between two vectors. */
double rmse(const linalg::Vector &estimate, const linalg::Vector &truth);

/** Mean absolute error between two vectors. */
double meanAbsoluteError(const linalg::Vector &estimate,
                         const linalg::Vector &truth);

/** Mean absolute percentage error (truth entries must be nonzero). */
double meanAbsolutePercentageError(const linalg::Vector &estimate,
                                   const linalg::Vector &truth);

/** Pearson correlation coefficient of two vectors. */
double pearsonCorrelation(const linalg::Vector &a,
                          const linalg::Vector &b);

/** Sample variance (denominator n - 1). */
double sampleVariance(const linalg::Vector &v);

/** Sample standard deviation. */
double sampleStddev(const linalg::Vector &v);

} // namespace leo::stats

#endif // LEO_STATS_METRICS_HH
