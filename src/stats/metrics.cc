/**
 * @file
 * Implementation of the estimation quality metrics.
 */

#include "stats/metrics.hh"

#include <algorithm>
#include <cmath>

#include "linalg/error.hh"

namespace leo::stats
{

double
accuracy(const linalg::Vector &estimate, const linalg::Vector &truth)
{
    require(estimate.size() == truth.size() && !truth.empty(),
            "accuracy: dimension mismatch or empty input");
    const double ybar = truth.mean();
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        const double e = estimate[i] - truth[i];
        const double d = truth[i] - ybar;
        num += e * e;
        den += d * d;
    }
    if (den == 0.0) {
        // Constant truth: perfect iff the estimate matches exactly.
        return num == 0.0 ? 1.0 : 0.0;
    }
    return std::max(1.0 - num / den, 0.0);
}

double
rmse(const linalg::Vector &estimate, const linalg::Vector &truth)
{
    require(estimate.size() == truth.size() && !truth.empty(),
            "rmse: dimension mismatch or empty input");
    double acc = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        const double e = estimate[i] - truth[i];
        acc += e * e;
    }
    return std::sqrt(acc / static_cast<double>(truth.size()));
}

double
meanAbsoluteError(const linalg::Vector &estimate,
                  const linalg::Vector &truth)
{
    require(estimate.size() == truth.size() && !truth.empty(),
            "meanAbsoluteError: dimension mismatch or empty input");
    double acc = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i)
        acc += std::abs(estimate[i] - truth[i]);
    return acc / static_cast<double>(truth.size());
}

double
meanAbsolutePercentageError(const linalg::Vector &estimate,
                            const linalg::Vector &truth)
{
    require(estimate.size() == truth.size() && !truth.empty(),
            "meanAbsolutePercentageError: bad input");
    double acc = 0.0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
        require(truth[i] != 0.0,
                "meanAbsolutePercentageError: zero truth entry");
        acc += std::abs((estimate[i] - truth[i]) / truth[i]);
    }
    return acc / static_cast<double>(truth.size());
}

double
pearsonCorrelation(const linalg::Vector &a, const linalg::Vector &b)
{
    require(a.size() == b.size() && a.size() >= 2,
            "pearsonCorrelation: bad input");
    const double ma = a.mean();
    const double mb = b.mean();
    double sab = 0.0, saa = 0.0, sbb = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i) {
        const double da = a[i] - ma;
        const double db = b[i] - mb;
        sab += da * db;
        saa += da * da;
        sbb += db * db;
    }
    if (saa == 0.0 || sbb == 0.0)
        return 0.0;
    return sab / std::sqrt(saa * sbb);
}

double
sampleVariance(const linalg::Vector &v)
{
    require(v.size() >= 2, "sampleVariance needs >= 2 points");
    const double m = v.mean();
    double acc = 0.0;
    for (double x : v)
        acc += (x - m) * (x - m);
    return acc / static_cast<double>(v.size() - 1);
}

double
sampleStddev(const linalg::Vector &v)
{
    return std::sqrt(sampleVariance(v));
}

} // namespace leo::stats
