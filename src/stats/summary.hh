/**
 * @file
 * Streaming summary statistics.
 *
 * The runtime (Section 6.6) watches windows of heartbeat-rate and
 * power samples; Welford's online algorithm gives numerically stable
 * running means and variances without storing the window.
 */

#ifndef LEO_STATS_SUMMARY_HH
#define LEO_STATS_SUMMARY_HH

#include <cstddef>
#include <limits>

namespace leo::stats
{

/**
 * Welford running mean / variance / extrema accumulator.
 */
class RunningStats
{
  public:
    /** Reset to the empty state. */
    void reset();

    /** Accumulate one observation. */
    void push(double x);

    /** @return Number of observations so far. */
    std::size_t count() const { return count_; }

    /** @return Mean of the observations (0 when empty). */
    double mean() const { return mean_; }

    /** @return Sample variance (denominator n - 1; 0 when n < 2). */
    double variance() const;

    /** @return Sample standard deviation. */
    double stddev() const;

    /** @return Smallest observation (+inf when empty). */
    double min() const { return min_; }

    /** @return Largest observation (-inf when empty). */
    double max() const { return max_; }

    /** Merge another accumulator into this one (parallel reduce). */
    void merge(const RunningStats &other);

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

} // namespace leo::stats

#endif // LEO_STATS_SUMMARY_HH
