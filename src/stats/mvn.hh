/**
 * @file
 * Multivariate normal distribution utilities.
 *
 * The hierarchical model of Equation (2) is built entirely from
 * multivariate Gaussians; this module supplies sampling (used by the
 * property-based tests to generate data *from the model itself* and
 * check that EM recovers the generating parameters) and both the
 * conditional-distribution identities the E-step relies on.
 */

#ifndef LEO_STATS_MVN_HH
#define LEO_STATS_MVN_HH

#include "linalg/cholesky.hh"
#include "linalg/matrix.hh"
#include "linalg/vector.hh"
#include "stats/rng.hh"

namespace leo::stats
{

/**
 * A multivariate normal N(mean, cov) with a cached Cholesky factor.
 */
class MultivariateNormal
{
  public:
    /**
     * @param mean Mean vector.
     * @param cov  Covariance (SPD; jitter is applied if borderline).
     */
    MultivariateNormal(linalg::Vector mean, const linalg::Matrix &cov);

    /** @return The dimension of the distribution. */
    std::size_t dim() const { return mean_.size(); }

    /** @return The mean vector. */
    const linalg::Vector &mean() const { return mean_; }

    /** Draw one sample x = mean + L u with u ~ N(0, I). */
    linalg::Vector sample(Rng &rng) const;

    /** Log density at a point. */
    double logPdf(const linalg::Vector &x) const;

  private:
    linalg::Vector mean_;
    linalg::Cholesky chol_;
};

/**
 * Gaussian conditioning: the posterior of z ~ N(mu, Sigma) given noisy
 * observations y_obs = z[obs] + e, e ~ N(0, sigma^2 I).
 *
 * This is Equation (3) of the paper in its numerically efficient form:
 *
 *   E[z]  = mu + Sigma[:,obs] (Sigma[obs,obs] + sigma^2 I)^-1
 *                (y_obs - mu[obs])
 *   Cov[z] = Sigma - Sigma[:,obs] (Sigma[obs,obs] + sigma^2 I)^-1
 *                Sigma[obs,:]
 *
 * which is algebraically identical to the
 * (diag(L)/sigma^2 + Sigma^-1)^-1 form printed in the paper but costs
 * O(n^2 |obs|) instead of O(n^3).
 */
struct GaussianPosterior
{
    linalg::Vector mean;
    linalg::Matrix cov;
};

/**
 * Compute the Gaussian posterior above.
 *
 * @param mu       Prior mean (size n).
 * @param sigma_m  Prior covariance (n x n, SPD).
 * @param obs_idx  Indices of the observed coordinates.
 * @param y_obs    Observed values (size |obs_idx|).
 * @param noise_var Observation noise variance sigma^2.
 * @param want_cov When false, cov is left empty (cheaper).
 */
GaussianPosterior conditionOnObservations(
    const linalg::Vector &mu, const linalg::Matrix &sigma_m,
    const std::vector<std::size_t> &obs_idx, const linalg::Vector &y_obs,
    double noise_var, bool want_cov = true);

/**
 * Reusable scratch for conditionOnObservationsInto.
 *
 * One instance per recurring call site; after the first call with a
 * given (n, |obs|) shape — or an up-front reserve() — subsequent
 * calls are allocation-free.
 */
struct ConditioningScratch
{
    /** Pre-size every buffer for an n-dim prior and s observations. */
    void reserve(std::size_t n, std::size_t s);

    linalg::Matrix k;          ///< Sigma[obs, obs] + sigma^2 I (s x s).
    linalg::Matrix crossT;     ///< Sigma[obs, :] (s x n).
    linalg::Matrix kinvCrossT; ///< K^-1 Sigma[obs, :] (s x n).
    linalg::Vector r;          ///< Residual y_obs - mu[obs] (s).
    linalg::Vector alpha;      ///< K^-1 r (s).
    linalg::Cholesky chol;     ///< Factor of k.
};

/**
 * Allocation-free variant of conditionOnObservations.
 *
 * Writes the posterior into `post` (whose buffers are reused when
 * shapes match) using `scratch` for every temporary. Requires an
 * *exactly* symmetric sigma_m — the cross covariance is read from
 * rows Sigma[obs, :] instead of columns Sigma[:, obs] so both
 * operands stream contiguously — under which the result is bitwise
 * identical to conditionOnObservations.
 */
void conditionOnObservationsInto(
    GaussianPosterior &post, ConditioningScratch &scratch,
    const linalg::Vector &mu, const linalg::Matrix &sigma_m,
    const std::vector<std::size_t> &obs_idx, const linalg::Vector &y_obs,
    double noise_var, bool want_cov = true);

} // namespace leo::stats

#endif // LEO_STATS_MVN_HH
