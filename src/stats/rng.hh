/**
 * @file
 * Deterministic random number generation for LEO.
 *
 * Everything stochastic in the library (measurement noise, random
 * configuration sampling, per-application synthetic parameters) draws
 * from this generator so experiments are exactly reproducible from a
 * seed, as a simulator substrate must be.
 */

#ifndef LEO_STATS_RNG_HH
#define LEO_STATS_RNG_HH

#include <cstdint>
#include <random>
#include <vector>

namespace leo::stats
{

/**
 * A seeded pseudo-random generator with the draws LEO needs.
 *
 * Wraps a 64-bit Mersenne twister; the wrapper exists so the library
 * has one choke point for randomness and so call sites read in the
 * domain's vocabulary (uniform cores, Gaussian Watts, ...).
 */
class Rng
{
  public:
    /** @param seed Seed defining the whole stream. */
    explicit Rng(std::uint64_t seed = 0x1ef0u) : engine_(seed) {}

    /** @return A double uniform in [lo, hi). */
    double uniform(double lo = 0.0, double hi = 1.0);

    /** @return An integer uniform in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** @return A draw from N(mean, stddev^2). */
    double gaussian(double mean = 0.0, double stddev = 1.0);

    /** @return A draw from LogNormal(mu, sigma) (of the underlying normal). */
    double logNormal(double mu, double sigma);

    /** @return True with probability p. */
    bool bernoulli(double p);

    /**
     * Sample k distinct values from {0, ..., n-1} without
     * replacement (partial Fisher-Yates), in random order.
     */
    std::vector<std::size_t> sampleWithoutReplacement(std::size_t n,
                                                      std::size_t k);

    /** Shuffle a vector of indices in place. */
    void shuffle(std::vector<std::size_t> &v);

    /** Fork an independent generator (for parallel sub-streams). */
    Rng fork();

    /** @return The underlying engine (for std distributions). */
    std::mt19937_64 &engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace leo::stats

#endif // LEO_STATS_RNG_HH
