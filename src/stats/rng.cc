/**
 * @file
 * Implementation of the seeded RNG wrapper.
 */

#include "stats/rng.hh"

#include <algorithm>
#include <numeric>

#include "linalg/error.hh"

namespace leo::stats
{

double
Rng::uniform(double lo, double hi)
{
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    require(lo <= hi, "uniformInt with empty range");
    std::uniform_int_distribution<std::int64_t> d(lo, hi);
    return d(engine_);
}

double
Rng::gaussian(double mean, double stddev)
{
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
}

double
Rng::logNormal(double mu, double sigma)
{
    std::lognormal_distribution<double> d(mu, sigma);
    return d(engine_);
}

bool
Rng::bernoulli(double p)
{
    std::bernoulli_distribution d(p);
    return d(engine_);
}

std::vector<std::size_t>
Rng::sampleWithoutReplacement(std::size_t n, std::size_t k)
{
    require(k <= n, "sampleWithoutReplacement: k > n");
    std::vector<std::size_t> pool(n);
    std::iota(pool.begin(), pool.end(), std::size_t{0});
    for (std::size_t i = 0; i < k; ++i) {
        const std::size_t j = static_cast<std::size_t>(
            uniformInt(static_cast<std::int64_t>(i),
                       static_cast<std::int64_t>(n - 1)));
        std::swap(pool[i], pool[j]);
    }
    pool.resize(k);
    return pool;
}

void
Rng::shuffle(std::vector<std::size_t> &v)
{
    std::shuffle(v.begin(), v.end(), engine_);
}

Rng
Rng::fork()
{
    // Derive a new seed from the current stream; forked generators
    // are independent of subsequent draws on the parent.
    const std::uint64_t seed = engine_();
    return Rng(seed);
}

} // namespace leo::stats
