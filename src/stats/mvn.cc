/**
 * @file
 * Implementation of multivariate normal utilities.
 */

#include "stats/mvn.hh"

#include <cmath>
#include <numbers>

namespace leo::stats
{

MultivariateNormal::MultivariateNormal(linalg::Vector mean,
                                       const linalg::Matrix &cov)
    : mean_(std::move(mean)), chol_(cov, 1e-8)
{
    require(mean_.size() == cov.rows(),
            "MultivariateNormal dimension mismatch");
}

linalg::Vector
MultivariateNormal::sample(Rng &rng) const
{
    const std::size_t n = dim();
    linalg::Vector u(n);
    for (std::size_t i = 0; i < n; ++i)
        u[i] = rng.gaussian();
    // x = mean + L u.
    const linalg::Matrix &l = chol_.factor();
    linalg::Vector x = mean_;
    for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j <= i; ++j)
            acc += l.at(i, j) * u[j];
        x[i] += acc;
    }
    return x;
}

double
MultivariateNormal::logPdf(const linalg::Vector &x) const
{
    require(x.size() == dim(), "logPdf dimension mismatch");
    const linalg::Vector d = x - mean_;
    const linalg::Vector w = chol_.solveLower(d);
    const double quad = w.squaredNorm();
    const double n = static_cast<double>(dim());
    return -0.5 * (n * std::log(2.0 * std::numbers::pi) +
                   chol_.logDet() + quad);
}

GaussianPosterior
conditionOnObservations(const linalg::Vector &mu,
                        const linalg::Matrix &sigma_m,
                        const std::vector<std::size_t> &obs_idx,
                        const linalg::Vector &y_obs, double noise_var,
                        bool want_cov)
{
    const std::size_t n = mu.size();
    const std::size_t s = obs_idx.size();
    require(sigma_m.rows() == n && sigma_m.cols() == n,
            "conditionOnObservations: covariance shape mismatch");
    require(y_obs.size() == s,
            "conditionOnObservations: observation shape mismatch");
    require(noise_var > 0.0,
            "conditionOnObservations: noise variance must be > 0");

    GaussianPosterior post;
    if (s == 0) {
        // Nothing observed: the posterior is the prior.
        post.mean = mu;
        if (want_cov)
            post.cov = sigma_m;
        return post;
    }

    // K = Sigma[obs, obs] + sigma^2 I   (s x s)
    linalg::Matrix k = sigma_m.gather(obs_idx);
    k.addToDiagonal(noise_var);
    linalg::Cholesky chol(k, 1e-8);

    // Residual r = y_obs - mu[obs].
    linalg::Vector r(s);
    for (std::size_t j = 0; j < s; ++j)
        r[j] = y_obs[j] - mu[obs_idx[j]];

    // alpha = K^-1 r.
    const linalg::Vector alpha = chol.solve(r);

    // Cross covariance Sigma[:, obs]  (n x s).
    linalg::Matrix cross(n, s);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < s; ++j)
            cross.at(i, j) = sigma_m.at(i, obs_idx[j]);

    post.mean = mu;
    for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < s; ++j)
            acc += cross.at(i, j) * alpha[j];
        post.mean[i] += acc;
    }

    if (want_cov) {
        // Cov = Sigma - cross K^-1 cross'. Accumulate per observed
        // index so the inner loop streams along contiguous rows.
        const linalg::Matrix kinv_crosst = chol.solve(cross.transpose());
        post.cov = sigma_m;
        for (std::size_t t = 0; t < s; ++t) {
            for (std::size_t i = 0; i < n; ++i) {
                const double cit = cross.at(i, t);
                if (cit == 0.0)
                    continue;
                for (std::size_t j = 0; j < n; ++j)
                    post.cov.at(i, j) -= cit * kinv_crosst.at(t, j);
            }
        }
        post.cov.symmetrize();
    }
    return post;
}

void
ConditioningScratch::reserve(std::size_t n, std::size_t s)
{
    k.resize(s, s);
    crossT.resize(s, n);
    kinvCrossT.resize(s, n);
    r.resize(s);
    alpha.resize(s);
    chol.reserve(s);
}

void
conditionOnObservationsInto(GaussianPosterior &post,
                            ConditioningScratch &scratch,
                            const linalg::Vector &mu,
                            const linalg::Matrix &sigma_m,
                            const std::vector<std::size_t> &obs_idx,
                            const linalg::Vector &y_obs,
                            double noise_var, bool want_cov)
{
    const std::size_t n = mu.size();
    const std::size_t s = obs_idx.size();
    require(sigma_m.rows() == n && sigma_m.cols() == n,
            "conditionOnObservationsInto: covariance shape mismatch");
    require(y_obs.size() == s,
            "conditionOnObservationsInto: observation shape mismatch");
    require(noise_var > 0.0,
            "conditionOnObservationsInto: noise variance must be > 0");

    if (s == 0) {
        post.mean = mu;
        if (want_cov)
            post.cov = sigma_m;
        return;
    }

    // K = Sigma[obs, obs] + sigma^2 I, factored in place.
    sigma_m.gatherInto(scratch.k, obs_idx);
    scratch.chol.factorize(scratch.k, noise_var, 1e-8);

    // alpha = K^-1 (y_obs - mu[obs]).
    scratch.alpha.resize(s); // leo-lint: allow(hot-alloc-transitive) capacity guard; no-op when presized
    for (std::size_t j = 0; j < s; ++j)
        scratch.alpha[j] = y_obs[j] - mu[obs_idx[j]];
    scratch.chol.solveInPlace(scratch.alpha);

    // Cross covariance as rows: crossT = Sigma[obs, :] (s x n). For
    // an exactly symmetric sigma_m this holds the same bits as the
    // reference's Sigma[:, obs] columns.
    scratch.crossT.resize(s, n); // leo-lint: allow(hot-alloc-transitive) capacity guard; no-op when presized
    for (std::size_t j = 0; j < s; ++j)
        for (std::size_t i = 0; i < n; ++i)
            scratch.crossT.at(j, i) = sigma_m.at(obs_idx[j], i);

    post.mean = mu;
    for (std::size_t i = 0; i < n; ++i) {
        double acc = 0.0;
        for (std::size_t j = 0; j < s; ++j)
            acc += scratch.crossT.at(j, i) * scratch.alpha[j];
        post.mean[i] += acc;
    }

    if (want_cov) {
        scratch.kinvCrossT = scratch.crossT;
        scratch.chol.solveInPlace(scratch.kinvCrossT);
        post.cov = sigma_m;
        for (std::size_t t = 0; t < s; ++t) {
            for (std::size_t i = 0; i < n; ++i) {
                const double cit = scratch.crossT.at(t, i);
                if (cit == 0.0)
                    continue;
                for (std::size_t j = 0; j < n; ++j)
                    post.cov.at(i, j) -=
                        cit * scratch.kinvCrossT.at(t, j);
            }
        }
        post.cov.symmetrize();
    }
}

} // namespace leo::stats
