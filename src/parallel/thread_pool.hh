/**
 * @file
 * A small fixed-size worker pool shared by the estimators and the
 * experiment drivers.
 *
 * Design constraints (see DESIGN.md "Parallel execution"):
 *
 *  - One pool per process by default (ThreadPool::global()), sized
 *    from the LEO_THREADS environment variable or, failing that,
 *    std::thread::hardware_concurrency(). Callers never block a
 *    worker waiting for other workers: the parallel_for.hh
 *    primitives make the calling thread participate, and work
 *    submitted from inside a worker runs inline
 *    (ThreadPool::insideWorker()), so nesting cannot deadlock and
 *    never over-subscribes the machine.
 *  - A pool with zero workers degenerates to inline execution in the
 *    submitting thread; all algorithms built on the pool therefore
 *    have a serial mode that exercises the identical code path and
 *    (per parallel_for.hh) the identical floating-point accumulation
 *    order.
 *  - submit() returns a std::future so exceptions thrown by tasks
 *    propagate to whoever joins the result; post() is the raw
 *    fire-and-forget used by the parallel loops, which do their own
 *    exception capture.
 */

#ifndef LEO_PARALLEL_THREAD_POOL_HH
#define LEO_PARALLEL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace leo::parallel
{

/**
 * A fixed-size pool of worker threads with a shared FIFO queue.
 *
 * Thread safe: any thread may post()/submit() concurrently. The
 * destructor drains the queue (every task already posted runs) and
 * joins all workers.
 */
class ThreadPool
{
  public:
    /**
     * @param workers Number of worker threads to spawn. Zero is
     *                valid and means every task runs inline in the
     *                submitting thread.
     */
    explicit ThreadPool(std::size_t workers);

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Drains the queue and joins the workers. */
    ~ThreadPool();

    /** @return Number of worker threads (0 = inline pool). */
    std::size_t workerCount() const { return threads_.size(); }

    /**
     * @return Usable concurrency of loops run through this pool:
     *         the workers plus the participating caller.
     */
    std::size_t concurrency() const { return workerCount() + 1; }

    /**
     * Enqueue a fire-and-forget task.
     *
     * With zero workers the task runs inline before post() returns.
     * The task must not throw; use submit() when exceptions need to
     * reach the caller.
     */
    void post(std::function<void()> task);

    /**
     * Enqueue a task and obtain its result as a future.
     *
     * Exceptions thrown by the task are rethrown by future::get().
     * With zero workers the task runs inline before submit() returns
     * (the future is then already ready).
     */
    template <typename F>
    auto submit(F &&fn) -> std::future<std::invoke_result_t<std::decay_t<F>>>
    {
        using R = std::invoke_result_t<std::decay_t<F>>;
        auto task = std::make_shared<std::packaged_task<R()>>(
            std::forward<F>(fn));
        std::future<R> result = task->get_future();
        post([task]() { (*task)(); });
        return result;
    }

    /**
     * @return True iff the calling thread is one of this process's
     *         pool workers (any pool). Parallel loops use this to
     *         fall back to inline execution instead of blocking a
     *         worker on other workers.
     */
    static bool insideWorker();

    /**
     * Default pool concurrency: the LEO_THREADS environment variable
     * when set to a positive integer, otherwise
     * std::thread::hardware_concurrency() (at least 1).
     */
    static std::size_t defaultConcurrency();

    /**
     * The process-wide shared pool, lazily created with
     * defaultConcurrency() - 1 workers (the caller is the remaining
     * thread).
     */
    static ThreadPool &global();

    /** A process-wide zero-worker pool: everything runs inline. */
    static ThreadPool &serial();

  private:
    /** A queued task plus its enqueue timestamp (for the
     *  `pool.wait.ms` observability histogram). */
    struct QueuedTask
    {
        std::function<void()> fn;
        double enqueueMs = 0.0;
    };

    void workerLoop();

    std::mutex mutex_;
    std::condition_variable cv_;
    std::deque<QueuedTask> queue_;
    bool stopping_ = false;
    std::vector<std::thread> threads_;
};

} // namespace leo::parallel

#endif // LEO_PARALLEL_THREAD_POOL_HH
