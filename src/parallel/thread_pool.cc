/**
 * @file
 * Implementation of the worker pool.
 */

#include "parallel/thread_pool.hh"

#include <cstdlib>
#include <string>

namespace leo::parallel
{

namespace
{

/** Set for the lifetime of every worker thread, in any pool. */
thread_local bool inside_worker = false;

} // namespace

ThreadPool::ThreadPool(std::size_t workers)
{
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::post(std::function<void()> task)
{
    if (threads_.empty()) {
        task();
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    inside_worker = true;
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this]() { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
    }
}

bool
ThreadPool::insideWorker()
{
    return inside_worker;
}

std::size_t
ThreadPool::defaultConcurrency()
{
    if (const char *env = std::getenv("LEO_THREADS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && v > 0)
            return static_cast<std::size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(defaultConcurrency() - 1);
    return pool;
}

ThreadPool &
ThreadPool::serial()
{
    static ThreadPool pool(0);
    return pool;
}

} // namespace leo::parallel
