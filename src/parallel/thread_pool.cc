/**
 * @file
 * Implementation of the worker pool.
 */

#include "parallel/thread_pool.hh"

#include <chrono>
#include <cstdlib>
#include <string>

#include "obs/obs.hh"

namespace leo::parallel
{

namespace
{

/** Set for the lifetime of every worker thread, in any pool. */
thread_local bool inside_worker = false;

/** Registry instruments shared by every pool in the process. */
struct PoolObs
{
    obs::Counter posted =
        obs::Registry::global().counter(obs::names::kPoolTasksPosted);
    obs::Counter executed =
        obs::Registry::global().counter(obs::names::kPoolTasksExecuted);
    obs::Gauge depth =
        obs::Registry::global().gauge(obs::names::kPoolQueueDepth);
    obs::Histogram wait_ms = obs::Registry::global().histogram(
        obs::names::kPoolWaitMs, obs::defaultTimeBucketsMs());
    obs::Histogram task_ms = obs::Registry::global().histogram(
        obs::names::kPoolTaskMs, obs::defaultTimeBucketsMs());
};

PoolObs &
poolObs()
{
    static PoolObs o;
    return o;
}

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

} // namespace

ThreadPool::ThreadPool(std::size_t workers)
{
    threads_.reserve(workers);
    for (std::size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread &t : threads_)
        t.join();
}

void
ThreadPool::post(std::function<void()> task)
{
    PoolObs &po = poolObs();
    po.posted.add(1);
    if (threads_.empty()) {
        // Inline pool: run right here. No queue to measure — and no
        // timing either, so the strictly-serial path stays free of
        // clock reads (it is the reference for the 0-ULP and
        // allocation-audit tests).
        task();
        po.executed.add(1);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        queue_.push_back({std::move(task), nowMs()});
        po.depth.set(static_cast<double>(queue_.size()));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    inside_worker = true;
    PoolObs &po = poolObs();
    for (;;) {
        QueuedTask task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock,
                     [this]() { return stopping_ || !queue_.empty(); });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            po.depth.set(static_cast<double>(queue_.size()));
        }
        const double t0 = nowMs();
        po.wait_ms.record(t0 - task.enqueueMs);
        task.fn();
        po.task_ms.record(nowMs() - t0);
        po.executed.add(1);
    }
}

bool
ThreadPool::insideWorker()
{
    return inside_worker;
}

std::size_t
ThreadPool::defaultConcurrency()
{
    if (const char *env = std::getenv("LEO_THREADS")) {
        char *end = nullptr;
        const long v = std::strtol(env, &end, 10);
        if (end != env && v > 0)
            return static_cast<std::size_t>(v);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(defaultConcurrency() - 1);
    return pool;
}

ThreadPool &
ThreadPool::serial()
{
    static ThreadPool pool(0);
    return pool;
}

} // namespace leo::parallel
