/**
 * @file
 * Deterministic data-parallel loops on top of ThreadPool.
 *
 * Every primitive here guarantees *bitwise-identical results at any
 * worker count*, which is what lets the estimator test suite assert
 * exact equality between serial and parallel EM fits:
 *
 *  - Work is split into chunks whose boundaries depend only on the
 *    problem size and the caller-supplied grain — never on the
 *    worker count or on scheduling order.
 *  - parallelReduce combines per-chunk partials along a fixed binary
 *    tree over the chunk indices (stride doubling), so the
 *    floating-point accumulation order is a function of the chunk
 *    count alone. The zero-worker inline path executes the same
 *    chunking and the same tree.
 *  - Chunks may be *executed* in any order on any thread; only
 *    writes to disjoint slots and the fixed-order combine are used
 *    to publish results.
 *
 * Exception behaviour: the first exception thrown by a chunk body is
 * captured and rethrown in the calling thread after every in-flight
 * chunk has finished; remaining chunks still run (cancellation would
 * make partial results scheduling-dependent).
 *
 * Nesting: when called from inside a pool worker these loops run
 * inline (same chunking), so parallel algorithms compose without
 * deadlock or over-subscription.
 */

#ifndef LEO_PARALLEL_PARALLEL_FOR_HH
#define LEO_PARALLEL_PARALLEL_FOR_HH

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <exception>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "linalg/error.hh"
#include "parallel/thread_pool.hh"

namespace leo::parallel
{

/** @return Number of chunks a range of n items splits into. */
inline std::size_t
chunkCount(std::size_t n, std::size_t grain)
{
    if (grain == 0)
        grain = 1;
    return (n + grain - 1) / grain;
}

/**
 * Run body(begin, end) over [0, n) split into ceil(n / grain)
 * chunks, fanned across the pool; the calling thread participates.
 *
 * The body runs concurrently on several threads and must only touch
 * disjoint state per chunk (e.g. slot writes indexed by position).
 *
 * @param pool  Pool whose workers help out (0 workers = inline).
 * @param n     Number of items.
 * @param grain Items per chunk (0 is treated as 1). Chunk layout is
 *              independent of the worker count — the determinism
 *              anchor.
 * @param body  Callable (std::size_t begin, std::size_t end).
 */
template <typename Body>
void
parallelForChunked(ThreadPool &pool, std::size_t n, std::size_t grain,
                   Body &&body)
{
    if (n == 0)
        return;
    if (grain == 0)
        grain = 1;
    const std::size_t chunks = (n + grain - 1) / grain;
    auto run_chunk = [&](std::size_t c) {
        const std::size_t begin = c * grain;
        body(begin, std::min(n, begin + grain));
    };

    const std::size_t helpers =
        std::min(pool.workerCount(), chunks - 1);
    if (helpers == 0 || ThreadPool::insideWorker()) {
        for (std::size_t c = 0; c < chunks; ++c)
            run_chunk(c);
        return;
    }

    struct Shared
    {
        std::atomic<std::size_t> next{0};
        std::mutex mutex;
        std::condition_variable cv;
        std::size_t helpers_done = 0;
        std::exception_ptr error;
    } shared;

    auto drain = [&]() {
        for (;;) {
            const std::size_t c =
                shared.next.fetch_add(1, std::memory_order_relaxed);
            if (c >= chunks)
                return;
            try {
                run_chunk(c);
            } catch (...) {
                std::lock_guard<std::mutex> lock(shared.mutex);
                if (!shared.error)
                    shared.error = std::current_exception();
            }
        }
    };

    for (std::size_t h = 0; h < helpers; ++h) {
        pool.post([&shared, &drain]() {
            drain();
            // Notify while holding the mutex: `shared` lives on the
            // caller's stack, and the caller may destroy it as soon
            // as it observes the final helpers_done. Holding the
            // lock across the notify keeps the caller from waking,
            // re-acquiring and returning before the signal call has
            // finished touching the condition variable.
            std::lock_guard<std::mutex> lock(shared.mutex);
            ++shared.helpers_done;
            shared.cv.notify_one();
        });
    }
    drain();
    {
        std::unique_lock<std::mutex> lock(shared.mutex);
        shared.cv.wait(lock, [&]() {
            return shared.helpers_done == helpers;
        });
    }
    if (shared.error)
        std::rethrow_exception(shared.error);
}

/**
 * Run body(i) for every i in [0, n), one item per chunk.
 */
template <typename Body>
void
parallelFor(ThreadPool &pool, std::size_t n, Body &&body)
{
    parallelForChunked(pool, n, 1,
                       [&](std::size_t begin, std::size_t end) {
                           for (std::size_t i = begin; i < end; ++i)
                               body(i);
                       });
}

/**
 * Deterministic parallel reduction over [0, n).
 *
 * map(begin, end) produces one partial T per chunk (accumulating its
 * items in index order); the partials are then folded pairwise along
 * a fixed stride-doubling binary tree: combine(parts[i],
 * parts[i + stride]) for stride = 1, 2, 4, ... The topology depends
 * only on the chunk count, so the result — including floating-point
 * rounding — is identical at every worker count, and the tree levels
 * themselves run in parallel.
 *
 * @param pool    Pool to fan across (0 workers = inline, same tree).
 * @param n       Number of items; must be positive.
 * @param grain   Items per leaf chunk (0 treated as 1).
 * @param map     Callable (begin, end) -> T.
 * @param combine Callable (T &into, T &&from); must fold `from` into
 *                `into` (e.g. +=).
 * @return The root of the combine tree.
 */
template <typename T, typename Map, typename Combine>
T
parallelReduce(ThreadPool &pool, std::size_t n, std::size_t grain,
               Map &&map, Combine &&combine)
{
    if (grain == 0)
        grain = 1;
    const std::size_t chunks = chunkCount(n, grain);
    std::vector<std::optional<T>> parts(chunks);
    parallelForChunked(
        pool, chunks, 1, [&](std::size_t begin, std::size_t end) {
            for (std::size_t c = begin; c < end; ++c)
                parts[c].emplace(
                    map(c * grain, std::min(n, (c + 1) * grain)));
        });
    for (std::size_t stride = 1; stride < chunks; stride *= 2) {
        const std::size_t pairs =
            (chunks + stride - 1) / (2 * stride);
        parallelForChunked(
            pool, pairs, 1, [&](std::size_t begin, std::size_t end) {
                for (std::size_t p = begin; p < end; ++p) {
                    const std::size_t i = p * 2 * stride;
                    combine(*parts[i], std::move(*parts[i + stride]));
                    parts[i + stride].reset();
                }
            });
    }
    return std::move(*parts[0]);
}

/**
 * Buffer-reusing variant of parallelReduce for hot loops.
 *
 * The caller owns one partial per chunk and passes them as pointers
 * (parts.size() must equal chunkCount(n, grain)); mapInto(begin, end,
 * part) overwrites each partial in place, and the same fixed
 * stride-doubling tree as parallelReduce folds them with
 * combine(into, from). The result lands in *parts[0]. Because the
 * chunk layout and combine topology match parallelReduce exactly,
 * the two produce bitwise-identical results — this one just never
 * touches the heap for the partials.
 *
 * @param pool    Pool to fan across (0 workers = inline, same tree).
 * @param n       Number of items; must be positive.
 * @param grain   Items per leaf chunk (0 treated as 1).
 * @param parts   One pre-allocated partial per chunk.
 * @param mapInto Callable (begin, end, T &part); must overwrite part.
 * @param combine Callable (T &into, const T &from).
 */
template <typename T, typename MapInto, typename Combine>
void
parallelReduceInto(ThreadPool &pool, std::size_t n, std::size_t grain,
                   const std::vector<T *> &parts, MapInto &&mapInto,
                   Combine &&combine)
{
    if (grain == 0)
        grain = 1;
    const std::size_t chunks = chunkCount(n, grain);
    require(parts.size() == chunks,
            "parallelReduceInto: parts/chunk count mismatch");
    parallelForChunked(
        pool, chunks, 1, [&](std::size_t begin, std::size_t end) {
            for (std::size_t c = begin; c < end; ++c)
                mapInto(c * grain, std::min(n, (c + 1) * grain),
                        *parts[c]);
        });
    for (std::size_t stride = 1; stride < chunks; stride *= 2) {
        const std::size_t pairs =
            (chunks + stride - 1) / (2 * stride);
        parallelForChunked(
            pool, pairs, 1, [&](std::size_t begin, std::size_t end) {
                for (std::size_t p = begin; p < end; ++p) {
                    const std::size_t i = p * 2 * stride;
                    combine(*parts[i], *parts[i + stride]);
                }
            });
    }
}

} // namespace leo::parallel

#endif // LEO_PARALLEL_PARALLEL_FOR_HH
