/**
 * @file
 * Implementation of the deterministic fit cache.
 */

#include "service/fit_cache.hh"

namespace leo::service
{

const CachedFit *
FitCache::lookup(const FitCacheKey &key)
{
    if (capacity_ == 0)
        return nullptr;
    auto it = entries_.find(key);
    if (it == entries_.end())
        return nullptr;
    it->second.lastUse = ++clock_;
    return &it->second.fit;
}

void
FitCache::insert(const FitCacheKey &key, CachedFit fit)
{
    if (capacity_ == 0)
        return;
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        it->second.fit = std::move(fit);
        it->second.lastUse = ++clock_;
        return;
    }
    if (entries_.size() >= capacity_) {
        // Evict the stalest entry; the map's key order breaks use-
        // counter ties, so the victim is a pure function of the
        // call history.
        auto victim = entries_.begin();
        for (auto cand = entries_.begin(); cand != entries_.end();
             ++cand) {
            if (cand->second.lastUse < victim->second.lastUse)
                victim = cand;
        }
        entries_.erase(victim);
        ++evictions_;
    }
    entries_[key] = Entry{std::move(fit), ++clock_};
}

} // namespace leo::service
