/**
 * @file
 * Implementation of the multi-tenant serving core.
 */

#include "service/service.hh"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <tuple>

#include "estimators/batch.hh"
#include "estimators/fit_io.hh"
#include "linalg/error.hh"
#include "parallel/parallel_for.hh"

namespace leo::service
{

namespace
{

/** Snapshot format version; bump when the field list changes.
 *  v2 added TenantConfig::deadlineSeconds. */
constexpr std::uint32_t kSnapshotVersion = 2;

} // namespace

Service::Service(const platform::ConfigSpace &space,
                 const estimators::LeoEstimator &estimator,
                 std::shared_ptr<const telemetry::ProfileStore> prior,
                 parallel::ThreadPool &pool, ServiceOptions options)
    : space_(space), estimator_(estimator), pool_(pool),
      options_(options), prior_(std::move(prior)),
      cache_(options.fitCacheCapacity)
{
    require(options_.shards >= 1, "Service: need >= 1 shard");
    require(!options_.globalPlanning ||
                options_.planningHorizonSeconds > 0.0,
            "Service: planning horizon must be > 0");
    require(!std::isnan(options_.powerCapWatts),
            "Service: power cap is NaN");
    require(prior_ != nullptr, "Service: null offline prior");
    require(prior_->spaceSize() == space_.size() ||
                prior_->numApplications() == 0,
            "Service: prior/space size mismatch");
    queues_.reserve(options_.shards);
    for (std::size_t s = 0; s < options_.shards; ++s)
        queues_.push_back(
            std::make_unique<ShardQueue>(options_.queueCapacity));
}

std::unique_ptr<runtime::EnergyController>
Service::makeController(const TenantConfig &config,
                        const telemetry::ProfileStore &prior) const
{
    runtime::ControllerOptions copts = options_.controller;
    copts.targetRate = config.targetRate;
    // The service owns fit scheduling: every controller defers.
    copts.deferFits = true;
    return std::make_unique<runtime::EnergyController>(
        space_, &estimator_, prior, copts);
}

std::optional<std::uint64_t>
Service::admit(const TenantConfig &config)
{
    if (sessions_.size() >= options_.maxTenants ||
        !(config.targetRate > 0.0) ||
        !std::isfinite(config.targetRate) ||
        !(config.deadlineSeconds >= 0.0) ||
        !std::isfinite(config.deadlineSeconds)) {
        tenants_rejected_.add(1);
        return std::nullopt;
    }
    const std::uint64_t id = next_id_++;
    auto sess = std::make_unique<Session>(id, config);
    sess->prior = prior_;
    sess->priorVersion = prior_version_;
    sess->controller = makeController(sess->config, *sess->prior);
    sessions_[id] = std::move(sess);
    tenants_admitted_.add(1);
    tenants_active_.set(static_cast<double>(sessions_.size()));
    return id;
}

bool
Service::close(std::uint64_t tenant)
{
    const auto it = sessions_.find(tenant);
    if (it == sessions_.end())
        return false;
    sessions_.erase(it);
    // Drop the fleet plan rather than serve the closed tenant's
    // stale slice; the next tick() rebuilds it.
    global_plan_ = optimizer::GlobalSchedule{};
    global_tenants_.clear();
    tenants_closed_.add(1);
    tenants_active_.set(static_cast<double>(sessions_.size()));
    return true;
}

std::size_t
Service::nextConfig(std::uint64_t tenant)
{
    const auto it = sessions_.find(tenant);
    require(it != sessions_.end(), "Service: unknown tenant");
    Session &sess = *it->second;
    return sess.controller->nextConfig(sess.rng);
}

bool
Service::submit(std::uint64_t tenant, const telemetry::Sample &s)
{
    const auto it = sessions_.find(tenant);
    if (it == sessions_.end()) {
        samples_dropped_.add(1);
        return false;
    }
    InboundSample item;
    item.tenant = tenant;
    item.seq = it->second->submitSeq.fetch_add(
        1, std::memory_order_relaxed);
    item.sample = s;
    if (!queues_[shardOf(tenant)]->push(item)) {
        samples_dropped_.add(1);
        return false;
    }
    samples_enqueued_.add(1);
    return true;
}

TickReport
Service::tick()
{
    obs::Span span(obs::names::kServiceTickSpan, "service");
    obs::ScopedMs timer(tick_ms_);
    TickReport report;

    // Install a staged prior at the tick boundary; running sessions
    // keep the snapshot they pinned at admission.
    {
        const std::lock_guard<std::mutex> lock(pending_prior_mutex_);
        if (pending_prior_ != nullptr) {
            prior_ = std::move(pending_prior_);
            pending_prior_.reset();
            ++prior_version_;
            prior_refreshes_.add(1);
        }
    }

    const std::size_t nshards = queues_.size();
    // Shard-local tenant lists, in id order (the replay order).
    std::vector<std::vector<Session *>> shard_tenants(nshards);
    for (const auto &[id, sess] : sessions_)
        shard_tenants[shardOf(id)].push_back(sess.get());

    std::vector<std::vector<std::uint64_t>> shard_pending(nshards);
    std::vector<std::size_t> shard_windows(nshards, 0);
    std::vector<std::size_t> shard_dropped(nshards, 0);

    // Drain every shard in one parallel region. A shard exclusively
    // owns its tenants' sessions, so the loop bodies touch disjoint
    // state; sorting each batch by (tenant, seq) erases producer
    // interleaving, making the replay — and every schedule it
    // produces — independent of thread and shard count.
    parallel::parallelFor(pool_, nshards, [&](std::size_t s) {
        std::vector<InboundSample> batch;
        InboundSample item;
        while (queues_[s]->pop(item))
            batch.push_back(item);
        std::sort(batch.begin(), batch.end(),
                  [](const InboundSample &a, const InboundSample &b) {
                      return std::tie(a.tenant, a.seq) <
                             std::tie(b.tenant, b.seq);
                  });
        const std::vector<Session *> &tenants = shard_tenants[s];
        for (const InboundSample &in : batch) {
            const auto pos = std::lower_bound(
                tenants.begin(), tenants.end(), in.tenant,
                [](const Session *t, std::uint64_t id) {
                    return t->id < id;
                });
            if (pos == tenants.end() || (*pos)->id != in.tenant) {
                ++shard_dropped[s]; // Tenant closed since submit.
                continue;
            }
            (*pos)->controller->recordMeasurement(in.sample);
            ++(*pos)->windows;
            ++shard_windows[s];
        }
        for (const Session *sess : tenants)
            if (sess->controller->fitPending())
                shard_pending[s].push_back(sess->id);
    });

    std::vector<std::uint64_t> pending;
    for (std::size_t s = 0; s < nshards; ++s) {
        report.windowsProcessed += shard_windows[s];
        samples_dropped_.add(shard_dropped[s]);
        pending.insert(pending.end(), shard_pending[s].begin(),
                       shard_pending[s].end());
    }
    windows_processed_.add(report.windowsProcessed);
    // Fit order must not depend on the shard layout either.
    std::sort(pending.begin(), pending.end());

    runDeferredFits(pending, report);
    if (options_.globalPlanning)
        globalReplan(report);
    ticks_run_.add(1);
    return report;
}

void
Service::globalReplan(TickReport &report)
{
    // Gather demands in id order (sessions_ is an ordered map), so
    // the plan is a pure function of the session table — independent
    // of shard layout, thread count and producer interleaving.
    std::vector<optimizer::TenantDemand> demands;
    std::vector<std::uint64_t> planned;
    for (const auto &[id, sess] : sessions_) {
        const runtime::EnergyController &ctl = *sess->controller;
        if (!ctl.hasEstimates())
            continue; // Still probing: nothing to plan from yet.
        optimizer::TenantDemand d;
        d.performance = ctl.performanceEstimate();
        d.power = ctl.powerEstimate();
        const double deadline =
            sess->config.deadlineSeconds > 0.0
                ? sess->config.deadlineSeconds
                : options_.planningHorizonSeconds;
        d.constraint.deadlineSeconds = deadline;
        d.constraint.work = sess->config.targetRate * deadline;
        demands.push_back(std::move(d));
        planned.push_back(id);
    }

    global_tenants_ = std::move(planned);
    if (global_tenants_.empty()) {
        global_plan_ = optimizer::GlobalSchedule{};
        return;
    }
    optimizer::GlobalPlanOptions popts;
    popts.powerCapWatts = options_.powerCapWatts;
    global_plan_ = optimizer::planGlobalSchedule(
        demands, options_.controller.idlePower, popts);
    global_replans_.add(1);
    if (!global_plan_.feasible)
        global_infeasible_.add(1);
    report.tenantsPlanned = global_tenants_.size();
    report.globalFeasible = global_plan_.feasible;
    report.globalPredictedEnergy = global_plan_.predictedEnergy;
}

const optimizer::Schedule *
Service::tenantSchedule(std::uint64_t tenant) const
{
    const auto it = std::lower_bound(global_tenants_.begin(),
                                     global_tenants_.end(), tenant);
    if (it == global_tenants_.end() || *it != tenant)
        return nullptr;
    const std::size_t idx = static_cast<std::size_t>(
        it - global_tenants_.begin());
    return &global_plan_.perTenant[idx];
}

void
Service::runDeferredFits(const std::vector<std::uint64_t> &pending,
                         TickReport &report)
{
    if (pending.empty())
        return;
    obs::Span span(obs::names::kServiceFitSpan, "service");
    span.arg("tenants", static_cast<double>(pending.size()));

    // Cache pass: cold fits are pure functions of the key, so a hit
    // hands the tenant a previously computed result — bitwise what
    // its own fit would have produced.
    struct Job
    {
        Session *sess = nullptr;
        FitCacheKey key;
        bool cold = false;
    };
    std::vector<Job> jobs;
    jobs.reserve(pending.size());
    for (const std::uint64_t id : pending) {
        Session &sess = *sessions_.at(id);
        runtime::EnergyController &ctl = *sess.controller;
        const bool cold = ctl.warmPerfFit() == nullptr;
        FitCacheKey key;
        key.appId = sess.config.appId;
        key.priorVersion = sess.priorVersion;
        key.representation =
            static_cast<std::uint8_t>(ctl.fitRepresentation());
        key.obsHash =
            ctl.observations().contentHash(space_.size());
        if (cold) {
            if (const CachedFit *hit = cache_.lookup(key)) {
                ctl.applyExternalFit(hit->perfEstimate,
                                     hit->powerEstimate,
                                     hit->perfFit, hit->powerFit);
                ++report.cacheHits;
                ++report.tenantsFitted;
                cache_hits_.add(1);
                continue;
            }
            cache_misses_.add(1);
        }
        jobs.push_back(Job{&sess, std::move(key), cold});
    }
    if (jobs.empty())
        return;

    // One shared batch for the whole fleet: the per-tenant q-space
    // EM work shares a single parallel region instead of N tiny
    // ones. Requests mirror the controller's inline fit inputs
    // exactly (observations, warm fits, representation), so
    // applyExternalFit reproduces the inline schedule bit for bit.
    estimators::EstimatorBatch batch(estimator_, pool_);
    std::vector<estimators::LeoFit> perf_fits(jobs.size());
    std::vector<estimators::LeoFit> power_fits(jobs.size());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const Session &sess = *jobs[i].sess;
        const runtime::EnergyController &ctl = *sess.controller;
        const auto rep = ctl.fitRepresentation();

        estimators::EstimateRequest perf_req;
        perf_req.prior = estimators::priorVectors(
            *sess.prior, estimators::Metric::Performance);
        perf_req.obsIndices = ctl.observations().indices;
        perf_req.obsValues = ctl.observations().performance;
        perf_req.warmStart = ctl.warmPerfFit();
        perf_req.fitOut = &perf_fits[i];
        perf_req.representation = rep;
        batch.add(std::move(perf_req));

        estimators::EstimateRequest power_req;
        power_req.prior = estimators::priorVectors(
            *sess.prior, estimators::Metric::Power);
        power_req.obsIndices = ctl.observations().indices;
        power_req.obsValues = ctl.observations().power;
        power_req.warmStart = ctl.warmPowerFit();
        power_req.fitOut = &power_fits[i];
        power_req.representation = rep;
        batch.add(std::move(power_req));
    }

    std::vector<estimators::MetricEstimate> results;
    try {
        results = batch.run(space_);
    } catch (const std::exception &) {
        // A batch-level failure (estimateMetric itself degrades
        // internally, so this is an allocation-grade surprise)
        // reaches every tenant as an empty estimate below, engaging
        // each controller's own degradation policy.
        results.clear();
    }

    const bool have_results = results.size() == 2 * jobs.size();
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        runtime::EnergyController &ctl = *jobs[i].sess->controller;
        if (have_results) {
            estimators::MetricEstimate perf =
                std::move(results[2 * i]);
            estimators::MetricEstimate power =
                std::move(results[2 * i + 1]);
            // Cache only cold, reliable fits: warm fits depend on
            // private EM history the key does not capture, and an
            // unreliable fit is a degradation artifact nobody
            // should inherit.
            if (jobs[i].cold && perf.reliable && power.reliable) {
                CachedFit entry;
                entry.perfEstimate = perf;
                entry.powerEstimate = power;
                entry.perfFit = perf_fits[i];
                entry.powerFit = power_fits[i];
                cache_.insert(jobs[i].key, std::move(entry));
            }
            ctl.applyExternalFit(std::move(perf), std::move(power),
                                 std::move(perf_fits[i]),
                                 std::move(power_fits[i]));
        } else {
            ctl.applyExternalFit(estimators::MetricEstimate{},
                                 estimators::MetricEstimate{},
                                 estimators::LeoFit{},
                                 estimators::LeoFit{});
        }
        report.fitsBatched += 2;
        ++report.tenantsFitted;
    }
    fits_batched_.add(2 * jobs.size());
    if (cache_.evictions() > evictions_seen_) {
        cache_evictions_.add(cache_.evictions() - evictions_seen_);
        evictions_seen_ = cache_.evictions();
    }
}

void
Service::refreshPrior(
    std::shared_ptr<const telemetry::ProfileStore> prior)
{
    require(prior != nullptr, "Service: null refreshed prior");
    require(prior->spaceSize() == space_.size() ||
                prior->numApplications() == 0,
            "Service: refreshed prior/space size mismatch");
    const std::lock_guard<std::mutex> lock(pending_prior_mutex_);
    pending_prior_ = std::move(prior);
}

void
Service::saveSnapshot(linalg::ByteWriter &w)
{
    w.u32(kSnapshotVersion);
    w.u64(space_.size());
    w.u64(options_.shards);
    w.u64(next_id_);
    w.u64(prior_version_);
    w.u64(sessions_.size());
    for (const auto &[id, sess] : sessions_) {
        w.u64(id);
        w.str(sess->config.appId);
        w.f64(sess->config.targetRate);
        w.f64(sess->config.deadlineSeconds);
        w.u64(sess->config.seed);
        w.u64(sess->submitSeq.load(std::memory_order_relaxed));
        w.u64(sess->windows);
        w.u64(sess->priorVersion);
        // The mt19937_64 stream operators round-trip the engine
        // state exactly (decimal integers), so probe selection
        // resumes on the same draw.
        std::ostringstream engine;
        engine << sess->rng.engine();
        w.str(engine.str());
        sess->controller->saveState(w);
    }
    // Undrained queue contents ride along so no submitted sample is
    // lost across the snapshot; they are re-enqueued afterwards so
    // the live service keeps serving.
    std::vector<InboundSample> queued;
    InboundSample item;
    for (const auto &q : queues_)
        while (q->pop(item))
            queued.push_back(item);
    std::sort(queued.begin(), queued.end(),
              [](const InboundSample &a, const InboundSample &b) {
                  return std::tie(a.tenant, a.seq) <
                         std::tie(b.tenant, b.seq);
              });
    w.u64(queued.size());
    for (const InboundSample &in : queued) {
        w.u64(in.tenant);
        w.u64(in.seq);
        w.u64(in.sample.configIndex);
        w.f64(in.sample.heartbeatRate);
        w.f64(in.sample.powerWatts);
    }
    for (const InboundSample &in : queued)
        queues_[shardOf(in.tenant)]->push(in);
    snapshots_saved_.add(1);
}

bool
Service::restoreSnapshot(linalg::ByteReader &r)
{
    sessions_.clear();
    // The fleet plan is derived state: it is not in the snapshot and
    // the next tick() after a successful restore reproduces it.
    global_plan_ = optimizer::GlobalSchedule{};
    global_tenants_.clear();
    InboundSample drain;
    for (const auto &q : queues_)
        while (q->pop(drain)) {
        }

    if (r.u32() != kSnapshotVersion || r.u64() != space_.size() ||
        r.u64() != options_.shards) {
        r.fail();
        tenants_active_.set(0.0);
        return false;
    }
    next_id_ = r.u64();
    prior_version_ = r.u64();
    const std::size_t count = static_cast<std::size_t>(r.u64());
    for (std::size_t i = 0; i < count && r.ok(); ++i) {
        const std::uint64_t id = r.u64();
        TenantConfig config;
        config.appId = r.str();
        config.targetRate = r.f64();
        config.deadlineSeconds = r.f64();
        config.seed = r.u64();
        if (!r.ok() || !(config.targetRate > 0.0) ||
            !std::isfinite(config.targetRate) ||
            !(config.deadlineSeconds >= 0.0) ||
            !std::isfinite(config.deadlineSeconds))
            break;
        auto sess = std::make_unique<Session>(id, config);
        sess->submitSeq.store(r.u64(), std::memory_order_relaxed);
        sess->windows = r.u64();
        sess->priorVersion = r.u64();
        std::istringstream engine(r.str());
        engine >> sess->rng.engine();
        if (engine.fail())
            break;
        // Restored sessions pin the service's *current* prior; the
        // restore contract requires it to match the saved service's
        // (the blob carries runtime state, not the profile store).
        sess->prior = prior_;
        sess->controller = makeController(sess->config, *sess->prior);
        if (!sess->controller->restoreState(r))
            break;
        sessions_[id] = std::move(sess);
    }
    const std::size_t queued = static_cast<std::size_t>(r.u64());
    for (std::size_t i = 0; i < queued && r.ok(); ++i) {
        InboundSample in;
        in.tenant = r.u64();
        in.seq = r.u64();
        in.sample.configIndex = static_cast<std::size_t>(r.u64());
        in.sample.heartbeatRate = r.f64();
        in.sample.powerWatts = r.f64();
        if (r.ok())
            queues_[shardOf(in.tenant)]->push(in);
    }
    if (!r.ok() || sessions_.size() != count) {
        sessions_.clear();
        for (const auto &q : queues_)
            while (q->pop(drain)) {
            }
        tenants_active_.set(0.0);
        return false;
    }
    tenants_active_.set(static_cast<double>(sessions_.size()));
    snapshots_restored_.add(1);
    return true;
}

} // namespace leo::service
