/**
 * @file
 * Deterministic fit cache for the multi-tenant service.
 *
 * Tenants of the same application frequently finish their probe
 * plans with identical observation multisets (replayed traces, A/B
 * fleets, restarted instances). A cold LEO fit is a pure function of
 * (prior, observations, representation), so its result can be shared:
 * the cache keys on (app id, prior version, representation,
 * Observations::contentHash) and returns the previously computed
 * estimate + fit pair.
 *
 * Only *cold* fits are cached. A warm-started fit also depends on the
 * tenant's private EM history, which the key does not capture —
 * caching one would alias different results under one key.
 *
 * Eviction is deterministic: least-recently-used by a logical use
 * counter (no wall clock), ties broken by key order. Storage is a
 * std::map, so iteration — and therefore every eviction decision —
 * is independent of insertion interleaving.
 */

#ifndef LEO_SERVICE_FIT_CACHE_HH
#define LEO_SERVICE_FIT_CACHE_HH

#include <cstdint>
#include <map>
#include <string>
#include <tuple>

#include "estimators/estimator.hh"
#include "estimators/leo.hh"

namespace leo::service
{

/** Identity of one cold fit (both metrics). */
struct FitCacheKey
{
    /** Application id the tenant registered under. */
    std::string appId;
    /** Version of the shared offline prior the fit used. */
    std::uint64_t priorVersion = 0;
    /** Covariance representation the fit dispatched on. */
    std::uint8_t representation = 0;
    /** Observations::contentHash of the observation set. */
    std::uint64_t obsHash = 0;

    bool operator<(const FitCacheKey &o) const
    {
        return std::tie(appId, priorVersion, representation,
                        obsHash) < std::tie(o.appId, o.priorVersion,
                                            o.representation,
                                            o.obsHash);
    }
};

/** Cached result of one cold fit: both estimates and warm states. */
struct CachedFit
{
    estimators::MetricEstimate perfEstimate;
    estimators::MetricEstimate powerEstimate;
    estimators::LeoFit perfFit;
    estimators::LeoFit powerFit;
};

/**
 * LRU map from FitCacheKey to CachedFit with deterministic eviction.
 * Not thread safe; the service uses it from tick() only.
 */
class FitCache
{
  public:
    /** @param capacity Entries held before eviction (0 disables). */
    explicit FitCache(std::size_t capacity) : capacity_(capacity) {}

    /**
     * Look up a key, refreshing its recency on a hit.
     *
     * @return The cached fit, or nullptr on a miss. The pointer is
     *         valid until the next insert().
     */
    const CachedFit *lookup(const FitCacheKey &key);

    /**
     * Insert (or overwrite) an entry, evicting the least recently
     * used entry first when at capacity.
     */
    void insert(const FitCacheKey &key, CachedFit fit);

    /** @return Entries currently held. */
    std::size_t size() const { return entries_.size(); }

    /** @return Evictions performed so far. */
    std::size_t evictions() const { return evictions_; }

  private:
    struct Entry
    {
        CachedFit fit;
        std::uint64_t lastUse = 0;
    };

    std::size_t capacity_;
    std::uint64_t clock_ = 0;
    std::size_t evictions_ = 0;
    std::map<FitCacheKey, Entry> entries_;
};

} // namespace leo::service

#endif // LEO_SERVICE_FIT_CACHE_HH
