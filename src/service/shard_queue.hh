/**
 * @file
 * Lock-free bounded inbound queue, one per service shard.
 *
 * Producers are application threads calling Service::submit();
 * the consumer is the shard's drain loop inside Service::tick().
 * The queue is the classic bounded MPMC ring with a per-cell
 * sequence number (Vyukov): a producer claims a slot with one CAS on
 * the enqueue cursor and publishes it by bumping the cell sequence,
 * so producers never take a lock and never block each other beyond
 * the CAS retry. A full ring rejects the push (the service counts
 * the drop) instead of blocking — backpressure must reach the
 * producer, not stall the control plane.
 *
 * Determinism note: arrival *order* across producers is inherently
 * racy; the service re-establishes determinism by sorting each
 * drained batch by (tenant, per-tenant sequence number) before
 * applying it, so queue interleaving never reaches the controllers
 * (see DESIGN.md section 11).
 */

#ifndef LEO_SERVICE_SHARD_QUEUE_HH
#define LEO_SERVICE_SHARD_QUEUE_HH

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "linalg/error.hh"
#include "telemetry/measurement.hh"

namespace leo::service
{

/** One enqueued measurement, tagged for deterministic replay. */
struct InboundSample
{
    /** Tenant the sample belongs to. */
    std::uint64_t tenant = 0;
    /** Per-tenant submission sequence number (assigned by submit();
     *  the drain sort key that erases producer interleaving). */
    std::uint64_t seq = 0;
    /** The measurement itself. */
    telemetry::Sample sample;
};

/**
 * Bounded lock-free MPMC ring of InboundSamples.
 *
 * push() is safe from any number of threads; pop() is safe from any
 * number of threads too (the drain uses one). Capacity is rounded up
 * to a power of two.
 */
class ShardQueue
{
  public:
    /** @param capacity Minimum slot count (rounded up to 2^k). */
    explicit ShardQueue(std::size_t capacity)
    {
        std::size_t cap = 1;
        while (cap < capacity)
            cap <<= 1;
        mask_ = cap - 1;
        cells_ = std::vector<Cell>(cap);
        for (std::size_t i = 0; i < cap; ++i)
            cells_[i].sequence.store(i, std::memory_order_relaxed);
    }

    ShardQueue(const ShardQueue &) = delete;
    ShardQueue &operator=(const ShardQueue &) = delete;

    /**
     * Enqueue one sample.
     *
     * @return False iff the ring is full (the caller counts the
     *         drop; nothing was enqueued).
     */
    bool push(const InboundSample &item)
    {
        std::size_t pos = enqueue_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & mask_];
            const std::size_t seq =
                cell.sequence.load(std::memory_order_acquire);
            const std::intptr_t diff =
                static_cast<std::intptr_t>(seq) -
                static_cast<std::intptr_t>(pos);
            if (diff == 0) {
                if (enqueue_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                {
                    cell.item = item;
                    cell.sequence.store(pos + 1,
                                        std::memory_order_release);
                    return true;
                }
            } else if (diff < 0) {
                return false; // Full.
            } else {
                pos = enqueue_.load(std::memory_order_relaxed);
            }
        }
    }

    /**
     * Dequeue one sample.
     *
     * @return False iff the ring is empty (out untouched).
     */
    bool pop(InboundSample &out)
    {
        std::size_t pos = dequeue_.load(std::memory_order_relaxed);
        for (;;) {
            Cell &cell = cells_[pos & mask_];
            const std::size_t seq =
                cell.sequence.load(std::memory_order_acquire);
            const std::intptr_t diff =
                static_cast<std::intptr_t>(seq) -
                static_cast<std::intptr_t>(pos + 1);
            if (diff == 0) {
                if (dequeue_.compare_exchange_weak(
                        pos, pos + 1, std::memory_order_relaxed))
                {
                    out = cell.item;
                    cell.sequence.store(pos + mask_ + 1,
                                        std::memory_order_release);
                    return true;
                }
            } else if (diff < 0) {
                return false; // Empty.
            } else {
                pos = dequeue_.load(std::memory_order_relaxed);
            }
        }
    }

    /** @return Slot count of the ring. */
    std::size_t capacity() const { return mask_ + 1; }

  private:
    struct Cell
    {
        std::atomic<std::size_t> sequence{0};
        InboundSample item;
    };

    std::vector<Cell> cells_;
    std::size_t mask_ = 0;
    /** Producer and consumer cursors on separate cache lines so
     *  pushes and pops never false-share. */
    alignas(64) std::atomic<std::size_t> enqueue_{0};
    alignas(64) std::atomic<std::size_t> dequeue_{0};
};

} // namespace leo::service

#endif // LEO_SERVICE_SHARD_QUEUE_HH
