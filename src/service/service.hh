/**
 * @file
 * leo::service — the long-running multi-tenant serving core.
 *
 * The paper's controller manages exactly one application per
 * process; this module serves fleets of them from one process by
 * amortizing the shared machinery (offline prior, thread pool, EM
 * batching) across N per-tenant EnergyController sessions:
 *
 *  - **Sharded dispatch.** Tenants hash (tenant id mod shards) onto
 *    shards, each with its own lock-free inbound ShardQueue.
 *    submit() is wait-free against the control plane; tick() drains
 *    every shard in one parallel region, each shard replaying its
 *    batch sorted by (tenant, sequence) so producer interleaving
 *    never reaches a controller — per-tenant schedules are
 *    bitwise-identical at any shard or thread count.
 *  - **Batched warm refits.** Tenant controllers run with
 *    deferFits: a completed probe plan parks the session, the tick
 *    collects every parked tenant and runs all their EM fits through
 *    one EstimatorBatch on the shared pool — one parallel region for
 *    the whole fleet instead of N tiny ones — then hands each result
 *    back through applyExternalFit() (bitwise identical to the
 *    inline fit, see controller.hh).
 *  - **Fit cache + shared prior.** Cold fits are pure functions of
 *    (app id, prior version, representation, observation hash);
 *    FitCache shares them across tenants. The offline prior is one
 *    shared immutable snapshot; refreshPrior() stages a new one from
 *    any thread and tick() installs it at the next boundary (running
 *    sessions keep the prior they started with — a fit must never
 *    change under a tenant mid-run).
 *  - **Global co-scheduling.** With ServiceOptions::globalPlanning
 *    on, every tick() ends by co-scheduling all tenants that have
 *    estimates onto the one machine through the interval LP of
 *    optimizer/global.hh, optionally under a machine power cap. The
 *    fleet plan is exposed through globalPlan()/tenantSchedule() and
 *    is a pure function of the session table, so it inherits the
 *    shard- and thread-count independence of the replay.
 *  - **Snapshot/restore.** saveSnapshot() serializes every session
 *    (controller state incl. low-rank fit factors, RNG engine,
 *    sequence counters) plus undrained queue contents;
 *    restoreSnapshot() into a service built over the same space,
 *    estimator and options resumes every schedule bit for bit.
 *
 * Threading contract: submit() is safe from any number of threads
 * concurrently with other submit() calls, with nextConfig() and with
 * tick() — the data plane never locks. nextConfig() is additionally
 * safe concurrently for *distinct* tenants. admit(), close(),
 * tick(), saveSnapshot() and restoreSnapshot() are control-plane
 * calls: they mutate or replay the session table and must be
 * externally serialized with each other and — for admit(), close()
 * and restoreSnapshot(), which change the table itself — with the
 * data-plane calls too. refreshPrior() is safe from any thread.
 */

#ifndef LEO_SERVICE_SERVICE_HH
#define LEO_SERVICE_SERVICE_HH

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "estimators/leo.hh"
#include "linalg/serialize.hh"
#include "obs/obs.hh"
#include "optimizer/global.hh"
#include "parallel/thread_pool.hh"
#include "runtime/controller.hh"
#include "service/fit_cache.hh"
#include "service/shard_queue.hh"
#include "stats/rng.hh"
#include "telemetry/profile_store.hh"

namespace leo::service
{

/** Tunables of the serving core. */
struct ServiceOptions
{
    /** Shard count; tenants hash onto shards by id. */
    std::size_t shards = 4;
    /** Per-shard inbound queue slots (rounded up to a power of 2);
     *  a full queue rejects submit() — backpressure, not blocking. */
    std::size_t queueCapacity = 1024;
    /** Admission limit; admit() beyond it is rejected. */
    std::size_t maxTenants = 256;
    /** Cold-fit cache entries (0 disables the cache). */
    std::size_t fitCacheCapacity = 64;
    /** Template for per-tenant controllers. targetRate is replaced
     *  by each tenant's demand and deferFits is forced on (the
     *  service owns the fit batching). */
    runtime::ControllerOptions controller;
    /** When true, every tick() ends by co-scheduling the whole fleet
     *  on one machine with optimizer::planGlobalSchedule; the result
     *  is exposed through globalPlan() / tenantSchedule(). */
    bool globalPlanning = false;
    /** Machine-wide average-power cap fed to the global planner. */
    double powerCapWatts = optimizer::kNoPowerCap;
    /** Deadline given to tenants that do not set their own: each
     *  horizon must deliver targetRate * horizon heartbeats. */
    double planningHorizonSeconds = 1.0;
};

/** Per-tenant admission parameters. */
struct TenantConfig
{
    /** Application identity (the fit-cache key component). */
    std::string appId;
    /** Performance demand in heartbeats/s. */
    double targetRate = 1.0;
    /** Global-planning deadline (seconds); tenants with a tighter
     *  deadline are packed earlier by the co-scheduler. 0 (the
     *  default) inherits ServiceOptions::planningHorizonSeconds. */
    double deadlineSeconds = 0.0;
    /** Seed of the tenant's private probe-selection RNG; the whole
     *  run is a deterministic function of (config, seed, samples). */
    std::uint64_t seed = 0x1ef0;
};

/** What one tick() did. */
struct TickReport
{
    /** Measurement windows applied across all tenants. */
    std::size_t windowsProcessed = 0;
    /** EM fits executed in the shared batch (2 per fitted tenant). */
    std::size_t fitsBatched = 0;
    /** Deferred fits satisfied from the cache. */
    std::size_t cacheHits = 0;
    /** Tenants whose deferred fit completed this tick. */
    std::size_t tenantsFitted = 0;
    /** Tenants included in the global co-schedule (0 = planning off
     *  or no tenant has estimates yet). */
    std::size_t tenantsPlanned = 0;
    /** True iff the last global plan met every constraint. */
    bool globalFeasible = true;
    /** Predicted machine energy of the global plan (Joules). */
    double globalPredictedEnergy = 0.0;
};

/**
 * The multi-tenant serving core. See the file comment for the
 * architecture and the threading contract.
 */
class Service
{
  public:
    /**
     * @param space     Configuration space shared by every tenant.
     * @param estimator Shared LEO estimator (borrowed; its
     *                  estimateMetric is const-thread-safe).
     * @param prior     Initial shared offline prior.
     * @param pool      Pool tick() fans across (borrowed).
     * @param options   Service knobs.
     */
    Service(const platform::ConfigSpace &space,
            const estimators::LeoEstimator &estimator,
            std::shared_ptr<const telemetry::ProfileStore> prior,
            parallel::ThreadPool &pool, ServiceOptions options);

    /**
     * Admit one tenant.
     *
     * @return Its tenant id, or nullopt when the service is at
     *         maxTenants (counted as a rejection).
     */
    std::optional<std::uint64_t> admit(const TenantConfig &config);

    /** Close a tenant; its queued samples are dropped at the next
     *  tick. @return False iff the id is unknown. */
    bool close(std::uint64_t tenant);

    /** @return Number of live tenants. */
    std::size_t activeTenants() const { return sessions_.size(); }

    /**
     * Configuration tenant `tenant` should run its next window in.
     * Fleet-order independent: the answer depends only on this
     * tenant's own history.
     */
    std::size_t nextConfig(std::uint64_t tenant);

    /**
     * Route one measurement to the tenant's shard queue. Safe from
     * any thread; lock-free against every other producer.
     *
     * @return False iff the tenant is unknown or its shard queue is
     *         full (the sample was dropped and counted).
     */
    bool submit(std::uint64_t tenant, const telemetry::Sample &s);

    /**
     * Drain every shard, apply the samples, and run all due fits in
     * one shared batch. Control-plane exclusive; see the threading
     * contract.
     */
    TickReport tick();

    /**
     * Stage a refreshed offline prior (built in the background by
     * the caller); tick() installs it at the next boundary. New
     * admissions then use it — existing sessions keep the prior they
     * started with.
     */
    void refreshPrior(
        std::shared_ptr<const telemetry::ProfileStore> prior);

    /**
     * Serialize every session and the undrained queue contents.
     * Call between ticks (control-plane exclusive); concurrent
     * submit() traffic may or may not make the snapshot.
     */
    void saveSnapshot(linalg::ByteWriter &w);

    /**
     * Restore a snapshot into this service. The space, estimator
     * kind, options and offline prior must match the saved
     * service's; the snapshot carries runtime state, not
     * construction parameters. On success every tenant resumes its
     * schedule bit for bit. On failure (truncated or mismatched
     * blob) the service is left empty and false is returned.
     */
    bool restoreSnapshot(linalg::ByteReader &r);

    /**
     * Latest fleet co-schedule (empty before the first planning
     * tick, or when globalPlanning is off). Derived state: it is not
     * snapshotted, and restoring + one tick() reproduces it exactly.
     */
    const optimizer::GlobalSchedule &globalPlan() const
    {
        return global_plan_;
    }

    /** The tenant's slice of the latest global plan, or nullptr when
     *  the tenant was not in it (unknown, closed, or no estimates at
     *  planning time). */
    const optimizer::Schedule *tenantSchedule(
        std::uint64_t tenant) const;

    /** @return The service's private metrics registry. */
    const obs::Registry &metrics() const { return obs_; }

    /** @return The shard an id hashes to (exposed for tests). */
    std::size_t shardOf(std::uint64_t tenant) const
    {
        return static_cast<std::size_t>(tenant %
                                        options_.shards);
    }

  private:
    /** One tenant session. */
    struct Session
    {
        std::uint64_t id = 0;
        TenantConfig config;
        stats::Rng rng;
        std::unique_ptr<runtime::EnergyController> controller;
        /** Prior snapshot pinned at admission. */
        std::shared_ptr<const telemetry::ProfileStore> prior;
        /** Version of the pinned prior (fit-cache key component). */
        std::uint64_t priorVersion = 0;
        /** Per-tenant submission sequence (drain sort key). */
        std::atomic<std::uint64_t> submitSeq{0};
        /** Windows applied so far. */
        std::uint64_t windows = 0;

        Session(std::uint64_t id_, TenantConfig config_)
            : id(id_), config(std::move(config_)), rng(config.seed)
        {
        }
    };

    /** Build a controller for a (new or restored) session. */
    std::unique_ptr<runtime::EnergyController> makeController(
        const TenantConfig &config,
        const telemetry::ProfileStore &prior) const;

    /** Run the deferred fits of `pending` (sorted tenant ids). */
    void runDeferredFits(const std::vector<std::uint64_t> &pending,
                         TickReport &report);

    /** Re-plan the fleet co-schedule from current estimates. */
    void globalReplan(TickReport &report);

    const platform::ConfigSpace &space_;
    const estimators::LeoEstimator &estimator_; // leo-lint: allow(snapshot-completeness) borrowed dependency, rebound on construction
    parallel::ThreadPool &pool_; // leo-lint: allow(snapshot-completeness) borrowed dependency, rebound on construction
    ServiceOptions options_;

    /** Live prior + version, swapped only at tick boundaries. */
    std::shared_ptr<const telemetry::ProfileStore> prior_;
    std::uint64_t prior_version_ = 0;
    /** Staged prior from refreshPrior() (any thread). */
    std::mutex pending_prior_mutex_; // leo-lint: allow(snapshot-completeness) synchronization primitive
    std::shared_ptr<const telemetry::ProfileStore> pending_prior_; // leo-lint: allow(snapshot-completeness) in-flight update, intentionally dropped

    std::uint64_t next_id_ = 0;
    /** Sessions ordered by id (determinism: iteration order is the
     *  replay order, so it must not depend on memory layout). */
    std::map<std::uint64_t, std::unique_ptr<Session>> sessions_;
    std::vector<std::unique_ptr<ShardQueue>> queues_;
    FitCache cache_; // leo-lint: allow(snapshot-completeness) cache, rebuilt on demand
    /** Evictions already forwarded to the eviction counter. */
    std::size_t evictions_seen_ = 0; // leo-lint: allow(snapshot-completeness) derived diagnostic

    /** Latest fleet co-schedule and the ids it covers (id order,
     *  index-aligned with global_plan_.perTenant). Derived state:
     *  rebuilt every planning tick, never snapshotted. */
    optimizer::GlobalSchedule global_plan_;
    std::vector<std::uint64_t> global_tenants_;

    /** Instance-local metrics (mirrors the controller pattern). */
    obs::Registry obs_; // leo-lint: allow(snapshot-completeness) process-local metric
    obs::Counter tenants_admitted_ = // leo-lint: allow(snapshot-completeness) process-local metric
        obs_.counter(obs::names::kServiceTenantsAdmitted);
    obs::Counter tenants_rejected_ = // leo-lint: allow(snapshot-completeness) process-local metric
        obs_.counter(obs::names::kServiceTenantsRejected);
    obs::Counter tenants_closed_ = // leo-lint: allow(snapshot-completeness) process-local metric
        obs_.counter(obs::names::kServiceTenantsClosed);
    obs::Gauge tenants_active_ =
        obs_.gauge(obs::names::kServiceTenantsActive);
    obs::Counter samples_enqueued_ = // leo-lint: allow(snapshot-completeness) process-local metric
        obs_.counter(obs::names::kServiceSamplesEnqueued);
    obs::Counter samples_dropped_ = // leo-lint: allow(snapshot-completeness) process-local metric
        obs_.counter(obs::names::kServiceSamplesDropped);
    obs::Counter windows_processed_ = // leo-lint: allow(snapshot-completeness) process-local metric
        obs_.counter(obs::names::kServiceWindowsProcessed);
    obs::Counter ticks_run_ = // leo-lint: allow(snapshot-completeness) process-local metric
        obs_.counter(obs::names::kServiceTicksRun);
    obs::Counter fits_batched_ = // leo-lint: allow(snapshot-completeness) process-local metric
        obs_.counter(obs::names::kServiceFitsBatched);
    obs::Counter cache_hits_ = // leo-lint: allow(snapshot-completeness) process-local metric
        obs_.counter(obs::names::kServiceCacheHits);
    obs::Counter cache_misses_ = // leo-lint: allow(snapshot-completeness) process-local metric
        obs_.counter(obs::names::kServiceCacheMisses);
    obs::Counter cache_evictions_ = // leo-lint: allow(snapshot-completeness) process-local metric
        obs_.counter(obs::names::kServiceCacheEvictions);
    obs::Counter prior_refreshes_ = // leo-lint: allow(snapshot-completeness) process-local metric
        obs_.counter(obs::names::kServicePriorRefreshes);
    obs::Counter snapshots_saved_ =
        obs_.counter(obs::names::kServiceSnapshotsSaved);
    obs::Counter snapshots_restored_ =
        obs_.counter(obs::names::kServiceSnapshotsRestored);
    obs::Counter global_replans_ = // leo-lint: allow(snapshot-completeness) process-local metric
        obs_.counter(obs::names::kServiceGlobalReplans);
    obs::Counter global_infeasible_ = // leo-lint: allow(snapshot-completeness) process-local metric
        obs_.counter(obs::names::kServiceGlobalInfeasible);
    obs::Histogram tick_ms_ = obs_.histogram( // leo-lint: allow(snapshot-completeness) process-local metric
        obs::names::kServiceTickMs, obs::defaultTimeBucketsMs());
};

} // namespace leo::service

#endif // LEO_SERVICE_SERVICE_HH
