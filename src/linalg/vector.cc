/**
 * @file
 * Implementation of the dense Vector type.
 */

#include "linalg/vector.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace leo::linalg
{

Vector::Vector(std::size_t n, double fill) : data_(n, fill)
{
}

Vector::Vector(std::initializer_list<double> values) : data_(values)
{
}

Vector::Vector(std::vector<double> values) : data_(std::move(values))
{
}

double &
Vector::operator()(std::size_t i)
{
    require(i < data_.size(), "Vector index out of range");
    return data_[i];
}

double
Vector::operator()(std::size_t i) const
{
    require(i < data_.size(), "Vector index out of range");
    return data_[i];
}

Vector &
Vector::operator+=(const Vector &other)
{
    require(size() == other.size(), "Vector += dimension mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

Vector &
Vector::operator-=(const Vector &other)
{
    require(size() == other.size(), "Vector -= dimension mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] -= other.data_[i];
    return *this;
}

Vector &
Vector::operator*=(double s)
{
    for (double &v : data_)
        v *= s;
    return *this;
}

Vector &
Vector::operator/=(double s)
{
    require(s != 0.0, "Vector /= by zero");
    for (double &v : data_)
        v /= s;
    return *this;
}

double
Vector::sum() const
{
    return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double
Vector::mean() const
{
    require(!data_.empty(), "mean() of empty vector");
    return sum() / static_cast<double>(data_.size());
}

double
Vector::min() const
{
    require(!data_.empty(), "min() of empty vector");
    return *std::min_element(data_.begin(), data_.end());
}

double
Vector::max() const
{
    require(!data_.empty(), "max() of empty vector");
    return *std::max_element(data_.begin(), data_.end());
}

std::size_t
Vector::argmax() const
{
    require(!data_.empty(), "argmax() of empty vector");
    return static_cast<std::size_t>(
        std::max_element(data_.begin(), data_.end()) - data_.begin());
}

std::size_t
Vector::argmin() const
{
    require(!data_.empty(), "argmin() of empty vector");
    return static_cast<std::size_t>(
        std::min_element(data_.begin(), data_.end()) - data_.begin());
}

double
Vector::norm() const
{
    return std::sqrt(squaredNorm());
}

double
Vector::squaredNorm() const
{
    double acc = 0.0;
    for (double v : data_)
        acc += v * v;
    return acc;
}

Vector
Vector::cwiseProduct(const Vector &other) const
{
    require(size() == other.size(), "cwiseProduct dimension mismatch");
    Vector out(size());
    for (std::size_t i = 0; i < size(); ++i)
        out[i] = data_[i] * other.data_[i];
    return out;
}

Vector
Vector::gather(const std::vector<std::size_t> &idx) const
{
    Vector out(idx.size());
    for (std::size_t k = 0; k < idx.size(); ++k) {
        require(idx[k] < size(), "gather index out of range");
        out[k] = data_[idx[k]];
    }
    return out;
}

void
Vector::fill(double value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Vector::resize(std::size_t n)
{
    if (n == data_.size())
        return;
    // assign() reuses capacity on both shrink and within-capacity
    // growth, so workspace buffers re-shape without reallocating.
    data_.assign(n, 0.0);
}

void
Vector::addScaled(double scale, const Vector &other)
{
    require(size() == other.size(),
            "Vector::addScaled dimension mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += scale * other.data_[i];
}

bool
Vector::allFinite() const
{
    return std::all_of(data_.begin(), data_.end(),
                       [](double v) { return std::isfinite(v); });
}

Vector
operator+(Vector a, const Vector &b)
{
    a += b;
    return a;
}

Vector
operator-(Vector a, const Vector &b)
{
    a -= b;
    return a;
}

Vector
operator*(Vector a, double s)
{
    a *= s;
    return a;
}

Vector
operator*(double s, Vector a)
{
    a *= s;
    return a;
}

Vector
operator/(Vector a, double s)
{
    a /= s;
    return a;
}

double
dot(const Vector &a, const Vector &b)
{
    require(a.size() == b.size(), "dot dimension mismatch");
    double acc = 0.0;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

} // namespace leo::linalg
