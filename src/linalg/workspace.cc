/**
 * @file
 * Implementation of the Workspace buffer arena.
 */

#include "linalg/workspace.hh"

namespace leo::linalg
{

Matrix &
Workspace::matrix(const std::string &key, std::size_t rows,
                  std::size_t cols)
{
    Matrix &m = matrices_[key];
    if (m.rows() != rows || m.cols() != cols) {
        m = Matrix(rows, cols, 0.0);
        ++allocations_;
    }
    return m;
}

Vector &
Workspace::vector(const std::string &key, std::size_t n)
{
    Vector &v = vectors_[key];
    if (v.size() != n) {
        v = Vector(n, 0.0);
        ++allocations_;
    }
    return v;
}

std::vector<Vector> &
Workspace::vectorArray(const std::string &key, std::size_t count,
                       std::size_t n)
{
    std::vector<Vector> &a = arrays_[key];
    const bool match = a.size() == count &&
                       (count == 0 || a.front().size() == n);
    if (!match) {
        a.assign(count, Vector(n, 0.0));
        ++allocations_;
    }
    return a;
}

std::size_t
Workspace::bytes() const
{
    std::size_t doubles = 0;
    for (const auto &kv : matrices_)
        doubles += kv.second.rows() * kv.second.cols();
    for (const auto &kv : vectors_)
        doubles += kv.second.size();
    for (const auto &kv : arrays_)
        for (const Vector &v : kv.second)
            doubles += v.size();
    return doubles * sizeof(double);
}

void
Workspace::clear()
{
    matrices_.clear();
    vectors_.clear();
    arrays_.clear();
}

} // namespace leo::linalg
