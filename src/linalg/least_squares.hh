/**
 * @file
 * Householder-QR least squares.
 *
 * Used by the Online baseline (Section 6.2): a degree-2 multivariate
 * polynomial regression over the configuration knobs. The rank check
 * reproduces the behaviour called out in Figure 12 — with fewer
 * samples than features the design matrix is rank deficient and the
 * online method cannot produce an estimate.
 */

#ifndef LEO_LINALG_LEAST_SQUARES_HH
#define LEO_LINALG_LEAST_SQUARES_HH

#include "linalg/matrix.hh"
#include "linalg/vector.hh"

namespace leo::linalg
{

/** Result of a least-squares solve. */
struct LeastSquaresResult
{
    /** Fitted coefficients (size = number of columns of the design). */
    Vector coefficients;
    /** Numerical rank of the design matrix. */
    std::size_t rank = 0;
    /** True iff the design matrix had full column rank. */
    bool fullRank = false;
    /** Sum of squared residuals of the fit. */
    double residualSumSquares = 0.0;
};

/**
 * Solve min_w ||X w - y||_2 via Householder QR with column norms used
 * for the rank test.
 *
 * When the design is rank deficient, coefficients for dependent
 * columns are set to zero (a minimum-norm-flavoured fallback) and
 * fullRank is false; callers decide whether to trust the fit.
 *
 * @param x   Design matrix (rows = samples, cols = features).
 * @param y   Targets (size = rows of x).
 * @param tol Relative tolerance of the rank test.
 */
LeastSquaresResult leastSquares(const Matrix &x, const Vector &y,
                                double tol = 1e-10);

/**
 * Ridge-regularized least squares: min_w ||Xw - y||^2 + lambda ||w||^2.
 *
 * Solved through the normal equations with a Cholesky factorization;
 * always well posed for lambda > 0.
 */
Vector ridgeRegression(const Matrix &x, const Vector &y, double lambda);

} // namespace leo::linalg

#endif // LEO_LINALG_LEAST_SQUARES_HH
