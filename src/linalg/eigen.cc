/**
 * @file
 * Implementation of the cyclic Jacobi eigensolver.
 */

#include "linalg/eigen.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/error.hh"

namespace leo::linalg
{

namespace
{

/** Frobenius norm of the strict off-diagonal part. */
double
offDiagonalNorm(const Matrix &a)
{
    double acc = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i)
        for (std::size_t j = 0; j < a.cols(); ++j)
            if (i != j)
                acc += a.at(i, j) * a.at(i, j);
    return std::sqrt(acc);
}

} // namespace

EigenDecomposition
symmetricEigen(const Matrix &a, std::size_t max_sweeps, double tol)
{
    require(a.rows() == a.cols() && a.rows() > 0,
            "symmetricEigen: need a non-empty square matrix");
    require(a.isSymmetric(1e-8 * (1.0 + a.frobeniusNorm())),
            "symmetricEigen: matrix is not symmetric");

    const std::size_t n = a.rows();
    Matrix d = a;
    d.symmetrize();
    Matrix v = Matrix::identity(n);

    const double scale = std::max(a.frobeniusNorm(), 1e-300);
    EigenDecomposition out;

    for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
        out.sweeps = sweep + 1;
        if (offDiagonalNorm(d) <= tol * scale) {
            out.converged = true;
            break;
        }
        for (std::size_t p = 0; p < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                const double apq = d.at(p, q);
                if (std::abs(apq) <= 1e-300)
                    continue;
                const double app = d.at(p, p);
                const double aqq = d.at(q, q);
                // Rotation angle zeroing (p, q).
                const double theta = (aqq - app) / (2.0 * apq);
                const double t =
                    (theta >= 0.0 ? 1.0 : -1.0) /
                    (std::abs(theta) +
                     std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                // Apply the rotation to rows/columns p and q.
                for (std::size_t k = 0; k < n; ++k) {
                    const double dkp = d.at(k, p);
                    const double dkq = d.at(k, q);
                    d.at(k, p) = c * dkp - s * dkq;
                    d.at(k, q) = s * dkp + c * dkq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double dpk = d.at(p, k);
                    const double dqk = d.at(q, k);
                    d.at(p, k) = c * dpk - s * dqk;
                    d.at(q, k) = s * dpk + c * dqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    const double vkp = v.at(k, p);
                    const double vkq = v.at(k, q);
                    v.at(k, p) = c * vkp - s * vkq;
                    v.at(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }
    if (!out.converged && offDiagonalNorm(d) <= tol * scale)
        out.converged = true;

    // Sort by descending eigenvalue.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t i, std::size_t j) {
                  return d.at(i, i) > d.at(j, j);
              });

    out.values = Vector(n);
    out.vectors = Matrix(n, n);
    for (std::size_t k = 0; k < n; ++k) {
        out.values[k] = d.at(order[k], order[k]);
        for (std::size_t r = 0; r < n; ++r)
            out.vectors(r, k) = v.at(r, order[k]);
    }
    return out;
}

std::size_t
effectiveRank(const Vector &eigenvalues, double share)
{
    require(share > 0.0 && share <= 1.0,
            "effectiveRank: share must be in (0, 1]");
    require(!eigenvalues.empty(), "effectiveRank: empty spectrum");
    double total = 0.0;
    for (double v : eigenvalues)
        total += std::max(v, 0.0);
    if (total <= 0.0)
        return 0;
    double acc = 0.0;
    for (std::size_t k = 0; k < eigenvalues.size(); ++k) {
        acc += std::max(eigenvalues[k], 0.0);
        if (acc >= share * total)
            return k + 1;
    }
    return eigenvalues.size();
}

} // namespace leo::linalg
