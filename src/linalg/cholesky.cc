/**
 * @file
 * Implementation of the Cholesky factorization.
 */

#include "linalg/cholesky.hh"

#include <algorithm>
#include <cmath>

#include "linalg/workspace.hh"

namespace leo::linalg
{

namespace
{

/** Panel / tile edge for the blocked factor and inverse kernels
 *  (64 x 64 doubles = 32 KiB, matching the Matrix kernels). */
constexpr std::size_t kPanel = 64;

} // namespace

Cholesky::Cholesky(const Matrix &a, double max_jitter)
{
    require(a.rows() == a.cols(), "Cholesky of non-square matrix");
    require(a.isSymmetric(1e-6 * (1.0 + a.frobeniusNorm())),
            "Cholesky of non-symmetric matrix");

    if (tryFactor(a, 0.0))
        return;

    // Not numerically positive definite: retry with growing jitter.
    double jitter = max_jitter > 0.0 ? max_jitter * 1e-6 : 0.0;
    while (jitter > 0.0 && jitter <= max_jitter) {
        if (tryFactor(a, jitter)) {
            jitter_ = jitter;
            return;
        }
        jitter *= 10.0;
    }
    fatal("Cholesky: matrix is not positive definite");
}

void
Cholesky::reserve(std::size_t n)
{
    l_.resize(n, n); // leo-lint: allow(hot-alloc-transitive) capacity guard; no-op when presized
    panelT_.resize(kPanel, n); // leo-lint: allow(hot-alloc-transitive) capacity guard; no-op when presized
    upd_x_.resize(n); // leo-lint: allow(hot-alloc-transitive) capacity guard; no-op when presized
    upd_stash_.resize(n, n); // leo-lint: allow(hot-alloc-transitive) capacity guard; no-op when presized
}

void
Cholesky::setFactor(Matrix l)
{
    require(l.rows() == l.cols(),
            "Cholesky::setFactor of non-square matrix");
    l_ = std::move(l);
    jitter_ = 0.0;
}

void
Cholesky::factorize(const Matrix &a, double added_diag,
                    double max_jitter)
{
    require(a.rows() == a.cols(),
            "Cholesky::factorize of non-square matrix");
    jitter_ = 0.0;
    if (tryFactorBlocked(a, added_diag, 0.0))
        return;

    // Same retry schedule as the constructor.
    double jitter = max_jitter > 0.0 ? max_jitter * 1e-6 : 0.0;
    while (jitter > 0.0 && jitter <= max_jitter) {
        if (tryFactorBlocked(a, added_diag, jitter)) {
            jitter_ = jitter;
            return;
        }
        jitter *= 10.0;
    }
    fatal("Cholesky: matrix is not positive definite");
}

bool
Cholesky::tryFactorBlocked(const Matrix &a, double added_diag,
                           double jitter)
{
    const std::size_t n = a.rows();
    l_ = a;
    if (added_diag != 0.0)
        l_.addToDiagonal(added_diag);
    if (jitter > 0.0)
        l_.addToDiagonal(jitter);
    if (panelT_.rows() != kPanel || panelT_.cols() != n)
        panelT_.resize(kPanel, n); // leo-lint: allow(hot-alloc-transitive) capacity guard; no-op when presized

    // Right-looking blocked Cholesky. Every entry (i, j) of the
    // lower triangle receives its updates -= l(i,k) * l(j,k) in
    // increasing-k order — panels ascending, k ascending within a
    // panel — i.e. exactly the subtraction sequence of the naive
    // left-looking loop in tryFactor(), so the factor is bitwise
    // identical. The blocked order just streams each trailing row
    // once per panel instead of once per column.
    for (std::size_t p0 = 0; p0 < n; p0 += kPanel) {
        const std::size_t p1 = std::min(n, p0 + kPanel);
        // Factor the panel columns, right-looking within the panel.
        for (std::size_t j = p0; j < p1; ++j) {
            const double d = l_.at(j, j);
            if (!(d > 0.0) || !std::isfinite(d))
                return false;
            const double ljj = std::sqrt(d);
            l_.at(j, j) = ljj;
            const double inv_ljj = 1.0 / ljj;
            for (std::size_t i = j + 1; i < n; ++i)
                l_.at(i, j) = l_.at(i, j) * inv_ljj;
            // Immediately push column j's rank-1 update onto the
            // remaining panel columns (the trailing matrix right of
            // the panel is updated en bloc below).
            for (std::size_t i = j + 1; i < n; ++i) {
                const double lij = l_.at(i, j);
                const std::size_t c_hi = std::min(p1, i + 1);
                for (std::size_t c = j + 1; c < c_hi; ++c)
                    l_.at(i, c) -= lij * l_.at(c, j);
            }
        }
        if (p1 >= n)
            continue;
        // Trailing update: subtract the panel's contribution from
        // the remaining lower triangle. The panel rows are staged
        // transposed so the inner loop is a contiguous saxpy.
        for (std::size_t k = p0; k < p1; ++k)
            for (std::size_t c = p1; c < n; ++c)
                panelT_.at(k - p0, c) = l_.at(c, k);
        for (std::size_t i = p1; i < n; ++i) {
            // 8 trailing entries at a time through registers; each
            // entry subtracts its panel terms in the same ascending-k
            // order as the per-column loop above.
            for (std::size_t cb = p1; cb <= i; cb += 8) {
                const std::size_t w =
                    std::min<std::size_t>(8, i + 1 - cb);
                if (w == 8) {
                    // Named scalars (not an array) so the accumulators
                    // live in registers across the whole panel at -O2.
                    const double *d = &l_.at(i, cb);
                    double a0 = d[0], a1 = d[1], a2 = d[2], a3 = d[3],
                           a4 = d[4], a5 = d[5], a6 = d[6], a7 = d[7];
                    const double *li = &l_.at(i, 0);
                    const double *pt = &panelT_.at(0, cb);
                    const std::size_t stride = panelT_.cols();
                    for (std::size_t k = p0; k < p1;
                         ++k, pt += stride) {
                        const double lik = li[k];
                        a0 -= lik * pt[0];
                        a1 -= lik * pt[1];
                        a2 -= lik * pt[2];
                        a3 -= lik * pt[3];
                        a4 -= lik * pt[4];
                        a5 -= lik * pt[5];
                        a6 -= lik * pt[6];
                        a7 -= lik * pt[7];
                    }
                    double *o = &l_.at(i, cb);
                    o[0] = a0; o[1] = a1; o[2] = a2; o[3] = a3;
                    o[4] = a4; o[5] = a5; o[6] = a6; o[7] = a7;
                } else {
                    double acc[8];
                    for (std::size_t jj = 0; jj < w; ++jj)
                        acc[jj] = l_.at(i, cb + jj);
                    for (std::size_t k = p0; k < p1; ++k) {
                        const double lik = l_.at(i, k);
                        const double *pt = &panelT_.at(k - p0, cb);
                        for (std::size_t jj = 0; jj < w; ++jj)
                            acc[jj] -= lik * pt[jj];
                    }
                    for (std::size_t jj = 0; jj < w; ++jj)
                        l_.at(i, cb + jj) = acc[jj];
                }
            }
        }
    }
    // Zero the strictly upper triangle so factor() is truly lower.
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
            l_.at(i, j) = 0.0;
    return true;
}

bool
Cholesky::tryFactor(const Matrix &a, double jitter)
{
    const std::size_t n = a.rows();
    l_ = a;
    if (jitter > 0.0)
        l_.addToDiagonal(jitter);

    // In-place left-looking Cholesky on the lower triangle.
    for (std::size_t j = 0; j < n; ++j) {
        double d = l_.at(j, j);
        for (std::size_t k = 0; k < j; ++k)
            d -= l_.at(j, k) * l_.at(j, k);
        if (!(d > 0.0) || !std::isfinite(d))
            return false;
        const double ljj = std::sqrt(d);
        l_.at(j, j) = ljj;
        const double inv_ljj = 1.0 / ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double s = l_.at(i, j);
            for (std::size_t k = 0; k < j; ++k)
                s -= l_.at(i, k) * l_.at(j, k);
            l_.at(i, j) = s * inv_ljj;
        }
    }
    // Zero the strictly upper triangle so factor() is truly lower.
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
            l_.at(i, j) = 0.0;
    return true;
}

Vector
Cholesky::solveLower(const Vector &b) const
{
    const std::size_t n = dim();
    require(b.size() == n, "Cholesky::solveLower dimension mismatch");
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double s = b[i];
        for (std::size_t k = 0; k < i; ++k)
            s -= l_.at(i, k) * y[k];
        y[i] = s / l_.at(i, i);
    }
    return y;
}

Vector
Cholesky::solve(const Vector &b) const
{
    const std::size_t n = dim();
    Vector y = solveLower(b);
    // Back substitution: L' x = y.
    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double s = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            s -= l_.at(k, ii) * x[k];
        x[ii] = s / l_.at(ii, ii);
    }
    return x;
}

void
Cholesky::solveLowerInPlace(Vector &b) const
{
    const std::size_t n = dim();
    require(b.size() == n,
            "Cholesky::solveLowerInPlace dimension mismatch");
    // Identical arithmetic to solveLower(): at row i, b[k < i]
    // already holds y[k] and b[i] still holds the original entry.
    for (std::size_t i = 0; i < n; ++i) {
        double s = b[i];
        for (std::size_t k = 0; k < i; ++k)
            s -= l_.at(i, k) * b[k];
        b[i] = s / l_.at(i, i);
    }
}

void
Cholesky::solveInPlace(Vector &b) const
{
    const std::size_t n = dim();
    require(b.size() == n,
            "Cholesky::solveInPlace dimension mismatch");
    solveLowerInPlace(b);
    // Back substitution in place: at row ii, b[k > ii] already holds
    // x[k] and b[ii] still holds y[ii] — the same value sequence as
    // the out-of-place solve().
    for (std::size_t ii = n; ii-- > 0;) {
        double s = b[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            s -= l_.at(k, ii) * b[k];
        b[ii] = s / l_.at(ii, ii);
    }
}

Matrix
Cholesky::solve(const Matrix &b) const
{
    Matrix x = b;
    solveInPlace(x);
    return x;
}

void
Cholesky::solveInPlace(Matrix &x) const
{
    const std::size_t n = dim();
    require(x.rows() == n, "Cholesky::solve dimension mismatch");
    const std::size_t m = x.cols();
    // Forward substitution on all columns: L Y = B.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t k = 0; k < i; ++k) {
            const double lik = l_.at(i, k);
            if (lik == 0.0)
                continue;
            for (std::size_t c = 0; c < m; ++c)
                x.at(i, c) -= lik * x.at(k, c);
        }
        const double inv = 1.0 / l_.at(i, i);
        for (std::size_t c = 0; c < m; ++c)
            x.at(i, c) *= inv;
    }
    // Back substitution on all columns: L' X = Y.
    for (std::size_t ii = n; ii-- > 0;) {
        for (std::size_t k = ii + 1; k < n; ++k) {
            const double lki = l_.at(k, ii);
            if (lki == 0.0)
                continue;
            for (std::size_t c = 0; c < m; ++c)
                x.at(ii, c) -= lki * x.at(k, c);
        }
        const double inv = 1.0 / l_.at(ii, ii);
        for (std::size_t c = 0; c < m; ++c)
            x.at(ii, c) *= inv;
    }
}

Matrix
Cholesky::inverse() const
{
    // Invert the triangular factor (K = L^-1) row by row, then
    // accumulate A^-1 = K' K as a sum of outer products of K's rows.
    // Both phases stream along contiguous rows, which matters: this
    // is the O(n^3) kernel inside every EM iteration at n = 1024.
    const std::size_t n = dim();
    Matrix k(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        // Row i of K: forward substitution against the unit vector.
        k.at(i, i) = 1.0;
        for (std::size_t p = 0; p < i; ++p) {
            const double lip = l_.at(i, p);
            if (lip == 0.0)
                continue;
            for (std::size_t j = 0; j <= p; ++j)
                k.at(i, j) -= lip * k.at(p, j);
        }
        const double inv_lii = 1.0 / l_.at(i, i);
        for (std::size_t j = 0; j <= i; ++j)
            k.at(i, j) *= inv_lii;
    }
    Matrix inv(n, n, 0.0);
    for (std::size_t p = 0; p < n; ++p) {
        for (std::size_t i = 0; i <= p; ++i) {
            const double kpi = k.at(p, i);
            if (kpi == 0.0)
                continue;
            for (std::size_t j = 0; j <= i; ++j)
                inv.at(i, j) += kpi * k.at(p, j);
        }
    }
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < i; ++j)
            inv.at(j, i) = inv.at(i, j);
    return inv;
}

void
Cholesky::reserveInverseScratch(Workspace &ws, std::size_t n)
{
    ws.matrix("chol.k", n, n);
    ws.matrix("chol.kt", n, n);
    ws.matrix("chol.panel", n, kPanel);
}

void
Cholesky::inverseInto(Matrix &inv, Workspace &ws, bool mirror) const
{
    const std::size_t n = dim();
    Matrix &k = ws.matrix("chol.k", n, n);
    Matrix &kt = ws.matrix("chol.kt", n, n);
    Matrix &panel = ws.matrix("chol.panel", n, kPanel);

    // Phase 1: K = L^-1, computed one 64-column panel at a time.
    // Column c of K is the forward substitution of the unit vector
    // e_c; every entry (i, c) receives the same subtractions, in the
    // same increasing-p order, as inverse()'s row-looking loop (its
    // structural-zero terms contribute exact +0 there and are simply
    // never generated here), so the phases agree bit for bit. The
    // panel form streams L once per panel instead of re-reading all
    // earlier K rows for every row i.
    for (std::size_t c0 = 0; c0 < n; c0 += kPanel) {
        const std::size_t c1 = std::min(n, c0 + kPanel);
        const std::size_t w = c1 - c0;
        for (std::size_t i = c0; i < n; ++i) {
            const double inv_lii = 1.0 / l_.at(i, i);
            // Run each 8-column slice of row i through registers:
            // every entry still receives its subtractions in
            // ascending-p order, there is just no store per p.
            for (std::size_t cb = 0; cb < w; cb += 8) {
                const std::size_t wb =
                    std::min<std::size_t>(8, w - cb);
                if (wb == 8) {
                    // Named scalars (not an array) so the accumulators
                    // live in registers across the whole p-run at -O2.
                    const std::size_t e = c0 + cb;
                    double a0 = (i == e) ? 1.0 : 0.0;
                    double a1 = (i == e + 1) ? 1.0 : 0.0;
                    double a2 = (i == e + 2) ? 1.0 : 0.0;
                    double a3 = (i == e + 3) ? 1.0 : 0.0;
                    double a4 = (i == e + 4) ? 1.0 : 0.0;
                    double a5 = (i == e + 5) ? 1.0 : 0.0;
                    double a6 = (i == e + 6) ? 1.0 : 0.0;
                    double a7 = (i == e + 7) ? 1.0 : 0.0;
                    const double *pp = &panel.at(c0, cb);
                    const std::size_t stride = panel.cols();
                    for (std::size_t p = c0; p < i;
                         ++p, pp += stride) {
                        const double lip = l_.at(i, p);
                        if (lip == 0.0)
                            continue;
                        a0 -= lip * pp[0];
                        a1 -= lip * pp[1];
                        a2 -= lip * pp[2];
                        a3 -= lip * pp[3];
                        a4 -= lip * pp[4];
                        a5 -= lip * pp[5];
                        a6 -= lip * pp[6];
                        a7 -= lip * pp[7];
                    }
                    double *o = &panel.at(i, cb);
                    o[0] = a0 * inv_lii;
                    o[1] = a1 * inv_lii;
                    o[2] = a2 * inv_lii;
                    o[3] = a3 * inv_lii;
                    o[4] = a4 * inv_lii;
                    o[5] = a5 * inv_lii;
                    o[6] = a6 * inv_lii;
                    o[7] = a7 * inv_lii;
                } else {
                    double acc[8];
                    for (std::size_t jj = 0; jj < wb; ++jj)
                        acc[jj] = (i == c0 + cb + jj) ? 1.0 : 0.0;
                    for (std::size_t p = c0; p < i; ++p) {
                        const double lip = l_.at(i, p);
                        if (lip == 0.0)
                            continue;
                        const double *pp = &panel.at(p, cb);
                        for (std::size_t jj = 0; jj < wb; ++jj)
                            acc[jj] -= lip * pp[jj];
                    }
                    for (std::size_t jj = 0; jj < wb; ++jj)
                        panel.at(i, cb + jj) = acc[jj] * inv_lii;
                }
            }
        }
        // Publish the panel into K (zeroing the strictly-upper part
        // of these columns, which a reused buffer may have dirty).
        for (std::size_t i = 0; i < c0; ++i)
            for (std::size_t c = c0; c < c1; ++c)
                k.at(i, c) = 0.0;
        for (std::size_t i = c0; i < n; ++i)
            for (std::size_t cc = 0; cc < w; ++cc)
                k.at(i, c0 + cc) = panel.at(i, cc);
    }
    k.transposeInto(kt);

    // Phase 2: A^-1 = K' K, blocked over lower-triangle tiles. The
    // per-entry products and their increasing-p order match
    // inverse() exactly (including its kpi == 0 skip); k-tiles that
    // lie entirely in K's structural-zero region are skipped.
    inv.resize(n, n); // leo-lint: allow(hot-alloc-transitive) capacity guard; no-op when presized
    for (std::size_t i0 = 0; i0 < n; i0 += kPanel) {
        const std::size_t i1 = std::min(n, i0 + kPanel);
        for (std::size_t j0 = 0; j0 <= i0; j0 += kPanel) {
            const std::size_t j1 = std::min(n, j0 + kPanel);
            for (std::size_t i = i0; i < i1; ++i) {
                const std::size_t j_hi = std::min(j1, i + 1);
                for (std::size_t j = j0; j < j_hi; ++j)
                    inv.at(i, j) = 0.0;
            }
            for (std::size_t p0 = i0; p0 < n; p0 += kPanel) {
                const std::size_t p1 = std::min(n, p0 + kPanel);
                for (std::size_t i = i0; i < i1; ++i) {
                    const std::size_t j_hi = std::min(j1, i + 1);
                    // Accumulate 8 output entries in registers across
                    // the whole p-tile (independent dependency chains,
                    // no store per p); each entry still sums its
                    // p-terms in ascending order.
                    for (std::size_t jb = j0; jb < j_hi; jb += 8) {
                        const std::size_t w =
                            std::min<std::size_t>(8, j_hi - jb);
                        if (w == 8) {
                            // Named scalars (not an array) so the
                            // accumulators live in registers across
                            // the whole p-tile at -O2.
                            const double *d = &inv.at(i, jb);
                            double a0 = d[0], a1 = d[1], a2 = d[2],
                                   a3 = d[3], a4 = d[4], a5 = d[5],
                                   a6 = d[6], a7 = d[7];
                            const double *kti = &kt.at(i, 0);
                            const double *kp = &k.at(p0, jb);
                            const std::size_t stride = k.cols();
                            for (std::size_t p = p0; p < p1;
                                 ++p, kp += stride) {
                                const double kpi = kti[p];
                                if (kpi == 0.0)
                                    continue;
                                a0 += kpi * kp[0];
                                a1 += kpi * kp[1];
                                a2 += kpi * kp[2];
                                a3 += kpi * kp[3];
                                a4 += kpi * kp[4];
                                a5 += kpi * kp[5];
                                a6 += kpi * kp[6];
                                a7 += kpi * kp[7];
                            }
                            double *o = &inv.at(i, jb);
                            o[0] = a0; o[1] = a1; o[2] = a2;
                            o[3] = a3; o[4] = a4; o[5] = a5;
                            o[6] = a6; o[7] = a7;
                        } else {
                            double acc[8];
                            for (std::size_t jj = 0; jj < w; ++jj)
                                acc[jj] = inv.at(i, jb + jj);
                            for (std::size_t p = p0; p < p1; ++p) {
                                const double kpi = kt.at(i, p);
                                if (kpi == 0.0)
                                    continue;
                                const double *kp = &k.at(p, jb);
                                for (std::size_t jj = 0; jj < w; ++jj)
                                    acc[jj] += kpi * kp[jj];
                            }
                            for (std::size_t jj = 0; jj < w; ++jj)
                                inv.at(i, jb + jj) = acc[jj];
                        }
                    }
                }
            }
        }
    }
    if (mirror) {
        for (std::size_t i = 0; i < n; ++i)
            for (std::size_t j = 0; j < i; ++j)
                inv.at(j, i) = inv.at(i, j);
    }
}

UpdateStatus
Cholesky::updateRank1(const Vector &x)
{
    const std::size_t n = dim();
    require(x.size() == n, "Cholesky::updateRank1 dimension mismatch");
    if (!x.allFinite())
        return UpdateStatus::NotPositiveDefinite;

    // Givens sweep (LINPACK dchud): column k rotates the k-th factor
    // column against the shrinking update vector. Each column's
    // rotation only reads entries the previous columns have already
    // finalized, so the sweep runs in place.
    upd_x_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        upd_x_[i] = x[i];
    for (std::size_t k = 0; k < n; ++k) {
        const double lkk = l_.at(k, k);
        const double xk = upd_x_[k];
        const double r = std::sqrt(lkk * lkk + xk * xk);
        const double c = r / lkk;
        const double s = xk / lkk;
        l_.at(k, k) = r;
        for (std::size_t i = k + 1; i < n; ++i) {
            const double lik = (l_.at(i, k) + s * upd_x_[i]) / c;
            upd_x_[i] = c * upd_x_[i] - s * lik;
            l_.at(i, k) = lik;
        }
    }
    return UpdateStatus::Ok;
}

UpdateStatus
Cholesky::downdateRank1(const Vector &x, double tol)
{
    const std::size_t n = dim();
    require(x.size() == n,
            "Cholesky::downdateRank1 dimension mismatch");
    if (!x.allFinite())
        return UpdateStatus::NotPositiveDefinite;

    // Feasibility first: A - x x' is SPD iff x' A^-1 x = ||L^-1 x||^2
    // is strictly below 1. Checking before mutating is what makes the
    // failure graceful — the caller keeps a valid factor of A.
    upd_x_.resize(n);
    for (std::size_t i = 0; i < n; ++i)
        upd_x_[i] = x[i];
    solveLowerInPlace(upd_x_);
    const double rho2 = 1.0 - upd_x_.squaredNorm();
    if (!(rho2 > tol) || !std::isfinite(rho2))
        return UpdateStatus::NotPositiveDefinite;

    // The hyperbolic sweep below is mathematically guaranteed to
    // succeed now, but a borderline rho2 can still break down in
    // floating point; stash the factor so that case rolls back to the
    // exact pre-call bits instead of leaving a half-rotated factor.
    upd_stash_ = l_;
    for (std::size_t i = 0; i < n; ++i)
        upd_x_[i] = x[i];
    for (std::size_t k = 0; k < n; ++k) {
        const double lkk = l_.at(k, k);
        const double xk = upd_x_[k];
        const double r2 = lkk * lkk - xk * xk;
        if (!(r2 > 0.0) || !std::isfinite(r2)) {
            l_ = upd_stash_;
            return UpdateStatus::NotPositiveDefinite;
        }
        const double r = std::sqrt(r2);
        const double c = r / lkk;
        const double s = xk / lkk;
        l_.at(k, k) = r;
        for (std::size_t i = k + 1; i < n; ++i) {
            const double lik = (l_.at(i, k) - s * upd_x_[i]) / c;
            upd_x_[i] = c * upd_x_[i] - s * lik;
            l_.at(i, k) = lik;
        }
    }
    return UpdateStatus::Ok;
}

double
Cholesky::logDet() const
{
    double acc = 0.0;
    for (std::size_t i = 0; i < dim(); ++i)
        acc += std::log(l_.at(i, i));
    return 2.0 * acc;
}

Vector
spdSolve(const Matrix &a, const Vector &b)
{
    return Cholesky(a).solve(b);
}

Matrix
spdInverse(const Matrix &a)
{
    return Cholesky(a).inverse();
}

} // namespace leo::linalg
