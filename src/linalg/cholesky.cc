/**
 * @file
 * Implementation of the Cholesky factorization.
 */

#include "linalg/cholesky.hh"

#include <cmath>

namespace leo::linalg
{

Cholesky::Cholesky(const Matrix &a, double max_jitter)
{
    require(a.rows() == a.cols(), "Cholesky of non-square matrix");
    require(a.isSymmetric(1e-6 * (1.0 + a.frobeniusNorm())),
            "Cholesky of non-symmetric matrix");

    if (tryFactor(a, 0.0))
        return;

    // Not numerically positive definite: retry with growing jitter.
    double jitter = max_jitter > 0.0 ? max_jitter * 1e-6 : 0.0;
    while (jitter > 0.0 && jitter <= max_jitter) {
        if (tryFactor(a, jitter)) {
            jitter_ = jitter;
            return;
        }
        jitter *= 10.0;
    }
    fatal("Cholesky: matrix is not positive definite");
}

bool
Cholesky::tryFactor(const Matrix &a, double jitter)
{
    const std::size_t n = a.rows();
    l_ = a;
    if (jitter > 0.0)
        l_.addToDiagonal(jitter);

    // In-place left-looking Cholesky on the lower triangle.
    for (std::size_t j = 0; j < n; ++j) {
        double d = l_.at(j, j);
        for (std::size_t k = 0; k < j; ++k)
            d -= l_.at(j, k) * l_.at(j, k);
        if (!(d > 0.0) || !std::isfinite(d))
            return false;
        const double ljj = std::sqrt(d);
        l_.at(j, j) = ljj;
        const double inv_ljj = 1.0 / ljj;
        for (std::size_t i = j + 1; i < n; ++i) {
            double s = l_.at(i, j);
            for (std::size_t k = 0; k < j; ++k)
                s -= l_.at(i, k) * l_.at(j, k);
            l_.at(i, j) = s * inv_ljj;
        }
    }
    // Zero the strictly upper triangle so factor() is truly lower.
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = i + 1; j < n; ++j)
            l_.at(i, j) = 0.0;
    return true;
}

Vector
Cholesky::solveLower(const Vector &b) const
{
    const std::size_t n = dim();
    require(b.size() == n, "Cholesky::solveLower dimension mismatch");
    Vector y(n);
    for (std::size_t i = 0; i < n; ++i) {
        double s = b[i];
        for (std::size_t k = 0; k < i; ++k)
            s -= l_.at(i, k) * y[k];
        y[i] = s / l_.at(i, i);
    }
    return y;
}

Vector
Cholesky::solve(const Vector &b) const
{
    const std::size_t n = dim();
    Vector y = solveLower(b);
    // Back substitution: L' x = y.
    Vector x(n);
    for (std::size_t ii = n; ii-- > 0;) {
        double s = y[ii];
        for (std::size_t k = ii + 1; k < n; ++k)
            s -= l_.at(k, ii) * x[k];
        x[ii] = s / l_.at(ii, ii);
    }
    return x;
}

Matrix
Cholesky::solve(const Matrix &b) const
{
    const std::size_t n = dim();
    require(b.rows() == n, "Cholesky::solve dimension mismatch");
    const std::size_t m = b.cols();
    Matrix x = b;
    // Forward substitution on all columns: L Y = B.
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t k = 0; k < i; ++k) {
            const double lik = l_.at(i, k);
            if (lik == 0.0)
                continue;
            for (std::size_t c = 0; c < m; ++c)
                x.at(i, c) -= lik * x.at(k, c);
        }
        const double inv = 1.0 / l_.at(i, i);
        for (std::size_t c = 0; c < m; ++c)
            x.at(i, c) *= inv;
    }
    // Back substitution on all columns: L' X = Y.
    for (std::size_t ii = n; ii-- > 0;) {
        for (std::size_t k = ii + 1; k < n; ++k) {
            const double lki = l_.at(k, ii);
            if (lki == 0.0)
                continue;
            for (std::size_t c = 0; c < m; ++c)
                x.at(ii, c) -= lki * x.at(k, c);
        }
        const double inv = 1.0 / l_.at(ii, ii);
        for (std::size_t c = 0; c < m; ++c)
            x.at(ii, c) *= inv;
    }
    return x;
}

Matrix
Cholesky::inverse() const
{
    // Invert the triangular factor (K = L^-1) row by row, then
    // accumulate A^-1 = K' K as a sum of outer products of K's rows.
    // Both phases stream along contiguous rows, which matters: this
    // is the O(n^3) kernel inside every EM iteration at n = 1024.
    const std::size_t n = dim();
    Matrix k(n, n, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        // Row i of K: forward substitution against the unit vector.
        k.at(i, i) = 1.0;
        for (std::size_t p = 0; p < i; ++p) {
            const double lip = l_.at(i, p);
            if (lip == 0.0)
                continue;
            for (std::size_t j = 0; j <= p; ++j)
                k.at(i, j) -= lip * k.at(p, j);
        }
        const double inv_lii = 1.0 / l_.at(i, i);
        for (std::size_t j = 0; j <= i; ++j)
            k.at(i, j) *= inv_lii;
    }
    Matrix inv(n, n, 0.0);
    for (std::size_t p = 0; p < n; ++p) {
        for (std::size_t i = 0; i <= p; ++i) {
            const double kpi = k.at(p, i);
            if (kpi == 0.0)
                continue;
            for (std::size_t j = 0; j <= i; ++j)
                inv.at(i, j) += kpi * k.at(p, j);
        }
    }
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < i; ++j)
            inv.at(j, i) = inv.at(i, j);
    return inv;
}

double
Cholesky::logDet() const
{
    double acc = 0.0;
    for (std::size_t i = 0; i < dim(); ++i)
        acc += std::log(l_.at(i, i));
    return 2.0 * acc;
}

Vector
spdSolve(const Matrix &a, const Vector &b)
{
    return Cholesky(a).solve(b);
}

Matrix
spdInverse(const Matrix &a)
{
    return Cholesky(a).inverse();
}

} // namespace leo::linalg
