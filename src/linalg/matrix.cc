/**
 * @file
 * Implementation of the dense Matrix type.
 */

#include "linalg/matrix.hh"

#include <algorithm>
#include <cmath>

namespace leo::linalg
{

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
{
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_); // leo-lint: allow(hot-alloc-transitive) cold init-list ctor; hot paths use the pooled sized ctor
    for (const auto &r : rows) {
        require(r.size() == cols_, "Matrix init rows of unequal length");
        data_.insert(data_.end(), r.begin(), r.end());
    }
}

Matrix
Matrix::identity(std::size_t d)
{
    Matrix m(d, d, 0.0);
    for (std::size_t i = 0; i < d; ++i)
        m.at(i, i) = 1.0;
    return m;
}

Matrix
Matrix::diag(const Vector &x)
{
    Matrix m(x.size(), x.size(), 0.0);
    for (std::size_t i = 0; i < x.size(); ++i)
        m.at(i, i) = x[i];
    return m;
}

Matrix
Matrix::outer(const Vector &x, const Vector &y)
{
    Matrix m(x.size(), y.size());
    for (std::size_t i = 0; i < x.size(); ++i)
        for (std::size_t j = 0; j < y.size(); ++j)
            m.at(i, j) = x[i] * y[j];
    return m;
}

double &
Matrix::operator()(std::size_t r, std::size_t c)
{
    require(r < rows_ && c < cols_, "Matrix index out of range");
    return data_[r * cols_ + c];
}

double
Matrix::operator()(std::size_t r, std::size_t c) const
{
    require(r < rows_ && c < cols_, "Matrix index out of range");
    return data_[r * cols_ + c];
}

Vector
Matrix::row(std::size_t r) const
{
    require(r < rows_, "Matrix row out of range");
    Vector v(cols_);
    for (std::size_t c = 0; c < cols_; ++c)
        v[c] = at(r, c);
    return v;
}

Vector
Matrix::col(std::size_t c) const
{
    require(c < cols_, "Matrix col out of range");
    Vector v(rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        v[r] = at(r, c);
    return v;
}

void
Matrix::setRow(std::size_t r, const Vector &v)
{
    require(r < rows_ && v.size() == cols_, "setRow dimension mismatch");
    for (std::size_t c = 0; c < cols_; ++c)
        at(r, c) = v[c];
}

void
Matrix::setCol(std::size_t c, const Vector &v)
{
    require(c < cols_ && v.size() == rows_, "setCol dimension mismatch");
    for (std::size_t r = 0; r < rows_; ++r)
        at(r, c) = v[r];
}

Matrix &
Matrix::operator+=(const Matrix &other)
{
    require(rows_ == other.rows_ && cols_ == other.cols_,
            "Matrix += dimension mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

Matrix &
Matrix::operator-=(const Matrix &other)
{
    require(rows_ == other.rows_ && cols_ == other.cols_,
            "Matrix -= dimension mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] -= other.data_[i];
    return *this;
}

Matrix &
Matrix::operator*=(double s)
{
    for (double &v : data_)
        v *= s;
    return *this;
}

Matrix &
Matrix::operator/=(double s)
{
    require(s != 0.0, "Matrix /= by zero");
    for (double &v : data_)
        v /= s;
    return *this;
}

Matrix
Matrix::transpose() const
{
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            t.at(c, r) = at(r, c);
    return t;
}

double
Matrix::trace() const
{
    require(rows_ == cols_, "trace of non-square matrix");
    double acc = 0.0;
    for (std::size_t i = 0; i < rows_; ++i)
        acc += at(i, i);
    return acc;
}

double
Matrix::frobeniusNorm() const
{
    double acc = 0.0;
    for (double v : data_)
        acc += v * v;
    return std::sqrt(acc);
}

Vector
Matrix::diagonal() const
{
    require(rows_ == cols_, "diagonal of non-square matrix");
    Vector v(rows_);
    for (std::size_t i = 0; i < rows_; ++i)
        v[i] = at(i, i);
    return v;
}

bool
Matrix::allFinite() const
{
    return std::all_of(data_.begin(), data_.end(),
                       [](double v) { return std::isfinite(v); });
}

bool
Matrix::isSymmetric(double tol) const
{
    if (rows_ != cols_)
        return false;
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = r + 1; c < cols_; ++c)
            if (std::abs(at(r, c) - at(c, r)) > tol)
                return false;
    return true;
}

void
Matrix::symmetrize()
{
    require(rows_ == cols_, "symmetrize of non-square matrix");
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = r + 1; c < cols_; ++c) {
            double avg = 0.5 * (at(r, c) + at(c, r));
            at(r, c) = avg;
            at(c, r) = avg;
        }
    }
}

void
Matrix::addToDiagonal(double s)
{
    require(rows_ == cols_, "addToDiagonal of non-square matrix");
    for (std::size_t i = 0; i < rows_; ++i)
        at(i, i) += s;
}

Matrix
Matrix::gather(const std::vector<std::size_t> &idx) const
{
    return gather(idx, idx);
}

Matrix
Matrix::gather(const std::vector<std::size_t> &row_idx,
               const std::vector<std::size_t> &col_idx) const
{
    Matrix out(row_idx.size(), col_idx.size());
    for (std::size_t r = 0; r < row_idx.size(); ++r) {
        require(row_idx[r] < rows_, "gather row index out of range");
        for (std::size_t c = 0; c < col_idx.size(); ++c) {
            require(col_idx[c] < cols_, "gather col index out of range");
            out.at(r, c) = at(row_idx[r], col_idx[c]);
        }
    }
    return out;
}

void
Matrix::fill(double value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Matrix::resize(std::size_t rows, std::size_t cols)
{
    if (rows == rows_ && cols == cols_)
        return;
    rows_ = rows;
    cols_ = cols;
    // assign() reuses capacity on both shrink and within-capacity
    // growth, so workspace buffers re-shape without reallocating.
    data_.assign(rows * cols, 0.0);
}

void
Matrix::addScaled(double scale, const Matrix &other)
{
    require(rows_ == other.rows_ && cols_ == other.cols_,
            "Matrix::addScaled dimension mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i)
        data_[i] += scale * other.data_[i];
}

void
Matrix::addScaledSymmetric(double scale, const Matrix &lower)
{
    require(rows_ == cols_ && lower.rows() == rows_ &&
                lower.cols() == cols_,
            "Matrix::addScaledSymmetric dimension mismatch");
    for (std::size_t i = 0; i < rows_; ++i) {
        for (std::size_t j = 0; j < i; ++j) {
            const double v = scale * lower.at(i, j);
            at(i, j) += v;
            at(j, i) += v;
        }
        at(i, i) += scale * lower.at(i, i);
    }
}

void
Matrix::outerAddInto(double scale, const Vector &x, const Vector &y)
{
    require(rows_ == x.size() && cols_ == y.size(),
            "Matrix::outerAddInto dimension mismatch");
    for (std::size_t i = 0; i < rows_; ++i) {
        const double xi = x[i];
        for (std::size_t j = 0; j < cols_; ++j)
            at(i, j) += (xi * y[j]) * scale;
    }
}

void
Matrix::gatherInto(Matrix &out,
                   const std::vector<std::size_t> &idx) const
{
    out.resize(idx.size(), idx.size());
    for (std::size_t r = 0; r < idx.size(); ++r) {
        require(idx[r] < rows_, "gatherInto index out of range");
        for (std::size_t c = 0; c < idx.size(); ++c)
            out.at(r, c) = at(idx[r], idx[c]);
    }
}

void
Matrix::transposeInto(Matrix &out) const
{
    out.resize(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out.at(c, r) = at(r, c);
}

namespace
{

/** Tile edge for the blocked kernels: 64x64 doubles = 32 KiB per
 *  operand tile, sized to keep three tiles resident in a typical
 *  256 KiB L2 slice. */
constexpr std::size_t kBlock = 64;

} // namespace

Matrix
Matrix::multiply(const Matrix &a, const Matrix &b)
{
    require(a.cols() == b.rows(), "Matrix * Matrix dimension mismatch");
    const std::size_t m = a.rows();
    const std::size_t kk = a.cols();
    const std::size_t n = b.cols();
    Matrix out(m, n, 0.0);
    // k-blocks advance in the second loop so every output entry
    // accumulates its inner dimension in increasing-k order — the
    // order the naive triple loop uses, hence bitwise equality.
    for (std::size_t i0 = 0; i0 < m; i0 += kBlock) {
        const std::size_t i1 = std::min(m, i0 + kBlock);
        for (std::size_t k0 = 0; k0 < kk; k0 += kBlock) {
            const std::size_t k1 = std::min(kk, k0 + kBlock);
            for (std::size_t j0 = 0; j0 < n; j0 += kBlock) {
                const std::size_t j1 = std::min(n, j0 + kBlock);
                for (std::size_t i = i0; i < i1; ++i) {
                    for (std::size_t k = k0; k < k1; ++k) {
                        const double a_ik = a.at(i, k);
                        for (std::size_t j = j0; j < j1; ++j)
                            out.at(i, j) += a_ik * b.at(k, j);
                    }
                }
            }
        }
    }
    return out;
}

Matrix
Matrix::multiplyTransposed(const Matrix &a, const Matrix &bt)
{
    require(a.cols() == bt.cols(),
            "multiplyTransposed dimension mismatch");
    const std::size_t m = a.rows();
    const std::size_t kk = a.cols();
    const std::size_t n = bt.rows();
    Matrix out(m, n);
    for (std::size_t i0 = 0; i0 < m; i0 += kBlock) {
        const std::size_t i1 = std::min(m, i0 + kBlock);
        for (std::size_t j0 = 0; j0 < n; j0 += kBlock) {
            const std::size_t j1 = std::min(n, j0 + kBlock);
            for (std::size_t i = i0; i < i1; ++i) {
                for (std::size_t j = j0; j < j1; ++j) {
                    double acc = 0.0;
                    for (std::size_t k = 0; k < kk; ++k)
                        acc += a.at(i, k) * bt.at(j, k);
                    out.at(i, j) = acc;
                }
            }
        }
    }
    return out;
}

Matrix
Matrix::syrk(const Matrix &a)
{
    const std::size_t m = a.rows();
    const std::size_t kk = a.cols();
    Matrix out(m, m);
    for (std::size_t i0 = 0; i0 < m; i0 += kBlock) {
        const std::size_t i1 = std::min(m, i0 + kBlock);
        for (std::size_t j0 = 0; j0 <= i0; j0 += kBlock) {
            const std::size_t j1 = std::min(m, j0 + kBlock);
            for (std::size_t i = i0; i < i1; ++i) {
                const std::size_t j_hi = std::min(j1, i + 1);
                for (std::size_t j = j0; j < j_hi; ++j) {
                    double acc = 0.0;
                    for (std::size_t k = 0; k < kk; ++k)
                        acc += a.at(i, k) * a.at(j, k);
                    out.at(i, j) = acc;
                    out.at(j, i) = acc;
                }
            }
        }
    }
    return out;
}

Matrix
Matrix::gram(const Matrix &a)
{
    return syrk(a.transpose());
}

void
Matrix::multiplyInto(Matrix &out, const Matrix &a, const Matrix &b)
{
    require(a.cols() == b.rows(),
            "multiplyInto dimension mismatch");
    require(&out != &a && &out != &b, "multiplyInto aliased output");
    const std::size_t m = a.rows();
    const std::size_t kk = a.cols();
    const std::size_t n = b.cols();
    out.resize(m, n);
    out.fill(0.0);
    // Same tiling and increasing-k accumulation as multiply(). The
    // inner saxpy runs over restrict-qualified row pointers — out
    // never aliases b (asserted above), and telling the compiler so
    // is what lets it vectorize the j-loop.
    for (std::size_t i0 = 0; i0 < m; i0 += kBlock) {
        const std::size_t i1 = std::min(m, i0 + kBlock);
        for (std::size_t k0 = 0; k0 < kk; k0 += kBlock) {
            const std::size_t k1 = std::min(kk, k0 + kBlock);
            for (std::size_t j0 = 0; j0 < n; j0 += kBlock) {
                const std::size_t j1 = std::min(n, j0 + kBlock);
                for (std::size_t i = i0; i < i1; ++i) {
                    double *__restrict oi = &out.data_[i * n];
                    for (std::size_t k = k0; k < k1; ++k) {
                        const double a_ik = a.at(i, k);
                        const double *__restrict bk =
                            &b.data_[k * n];
                        for (std::size_t j = j0; j < j1; ++j)
                            oi[j] += a_ik * bk[j];
                    }
                }
            }
        }
    }
}

void
Matrix::syrkInto(Matrix &out, const Matrix &a)
{
    require(&out != &a, "syrkInto aliased output");
    const std::size_t m = a.rows();
    const std::size_t kk = a.cols();
    out.resize(m, m);
    // Four output entries of a row share the a(i, k) stream through
    // restrict-qualified row pointers: four independent row dots per
    // pass, each with its own accumulator filled in ascending k, so
    // every entry is still bitwise identical to the scalar dot.
    for (std::size_t i0 = 0; i0 < m; i0 += kBlock) {
        const std::size_t i1 = std::min(m, i0 + kBlock);
        for (std::size_t j0 = 0; j0 <= i0; j0 += kBlock) {
            const std::size_t j1 = std::min(m, j0 + kBlock);
            for (std::size_t i = i0; i < i1; ++i) {
                const double *__restrict ai = &a.data_[i * kk];
                const std::size_t j_hi = std::min(j1, i + 1);
                std::size_t j = j0;
                for (; j + 4 <= j_hi; j += 4) {
                    const double *__restrict r0 = &a.data_[j * kk];
                    const double *__restrict r1 =
                        &a.data_[(j + 1) * kk];
                    const double *__restrict r2 =
                        &a.data_[(j + 2) * kk];
                    const double *__restrict r3 =
                        &a.data_[(j + 3) * kk];
                    double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
                    for (std::size_t k = 0; k < kk; ++k) {
                        const double aik = ai[k];
                        a0 += aik * r0[k];
                        a1 += aik * r1[k];
                        a2 += aik * r2[k];
                        a3 += aik * r3[k];
                    }
                    out.at(i, j) = a0;
                    out.at(i, j + 1) = a1;
                    out.at(i, j + 2) = a2;
                    out.at(i, j + 3) = a3;
                    out.at(j, i) = a0;
                    out.at(j + 1, i) = a1;
                    out.at(j + 2, i) = a2;
                    out.at(j + 3, i) = a3;
                }
                for (; j < j_hi; ++j) {
                    const double *__restrict aj = &a.data_[j * kk];
                    double acc = 0.0;
                    for (std::size_t k = 0; k < kk; ++k)
                        acc += ai[k] * aj[k];
                    out.at(i, j) = acc;
                    out.at(j, i) = acc;
                }
            }
        }
    }
}

void
Matrix::gramInto(Matrix &out, const Matrix &a)
{
    require(&out != &a, "gramInto aliased output");
    const std::size_t m = a.rows();
    const std::size_t n = a.cols();
    out.resize(n, n);
    // out(i, j) = sum_k a(k, i) a(k, j) with k ascending — the same
    // per-entry order as gram()'s column dots — accumulated in a
    // register instead of staging the transpose or sweeping the
    // output once per row. The EM loop calls this with very few rows
    // (its per-chunk residual blocks), where the short dot products
    // are far cheaper than m full passes over the n x n output.
    // Four adjacent output columns share each strided a(k, i) load
    // through a restrict-qualified row cursor; each entry keeps its
    // own ascending-k accumulator, so the result is bitwise identical
    // to the scalar loop.
    const double *const ap = a.data_.data();
    for (std::size_t i = 0; i < n; ++i) {
        std::size_t j = 0;
        for (; j + 4 <= i + 1; j += 4) {
            double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
            const double *__restrict row = ap;
            for (std::size_t k = 0; k < m; ++k, row += n) {
                const double aki = row[i];
                a0 += aki * row[j];
                a1 += aki * row[j + 1];
                a2 += aki * row[j + 2];
                a3 += aki * row[j + 3];
            }
            out.at(i, j) = a0;
            out.at(i, j + 1) = a1;
            out.at(i, j + 2) = a2;
            out.at(i, j + 3) = a3;
        }
        for (; j <= i; ++j) {
            double acc = 0.0;
            const double *__restrict row = ap;
            for (std::size_t k = 0; k < m; ++k, row += n)
                acc += row[i] * row[j];
            out.at(i, j) = acc;
        }
    }
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < i; ++j)
            out.at(j, i) = out.at(i, j);
}

Matrix
operator+(Matrix a, const Matrix &b)
{
    a += b;
    return a;
}

Matrix
operator-(Matrix a, const Matrix &b)
{
    a -= b;
    return a;
}

Matrix
operator*(Matrix a, double s)
{
    a *= s;
    return a;
}

Matrix
operator*(double s, Matrix a)
{
    a *= s;
    return a;
}

Matrix
operator*(const Matrix &a, const Matrix &b)
{
    return Matrix::multiply(a, b);
}

Vector
operator*(const Matrix &a, const Vector &x)
{
    require(a.cols() == x.size(), "Matrix * Vector dimension mismatch");
    Vector out(a.rows(), 0.0);
    for (std::size_t r = 0; r < a.rows(); ++r) {
        double acc = 0.0;
        for (std::size_t c = 0; c < a.cols(); ++c)
            acc += a.at(r, c) * x[c];
        out[r] = acc;
    }
    return out;
}

void
symv(const Matrix &a, const Vector &x, Vector &y)
{
    const std::size_t n = a.rows();
    require(a.cols() == n, "symv of non-square matrix");
    require(x.size() == n, "symv dimension mismatch");
    require(&x != &y, "symv aliased output");
    y.resize(n);
    // Single streaming pass over the lower triangle: row r supplies
    // y[r]'s leading terms directly and scatters a(r, c) * x[r] onto
    // every earlier y[c] via symmetry. For y[t] the additions land as
    // [c < t ascending, diagonal, rows r > t ascending] — exactly the
    // increasing-column order of the full matvec (y[t] is finalized
    // by its own row before the first scatter arrives), so for a
    // symmetric a the result is bitwise identical to it. Unlike the
    // naive mirrored read a(c, r), every access here is contiguous.
    // The three streams are disjoint (y aliases neither x nor a), and
    // saying so with restrict is what lets the fused dot + scatter
    // body vectorize; the single ascending-c accumulator per row is
    // untouched, so the value sequence is exactly the scalar one.
    const double *__restrict xp = x.data();
    double *__restrict yp = y.data();
    const double *__restrict ap = a.data();
    for (std::size_t r = 0; r < n; ++r) {
        const double xr = xp[r];
        const double *__restrict ar = ap + r * n;
        double acc = 0.0;
        for (std::size_t c = 0; c < r; ++c) {
            const double arc = ar[c];
            acc += arc * xp[c];
            yp[c] += arc * xr;
        }
        yp[r] = acc + ar[r] * xr;
    }
}

} // namespace leo::linalg
