/**
 * @file
 * Dense real-valued vector used throughout LEO.
 *
 * The notation follows Section 3 of the paper: vectors are elements
 * of R^d, the L2 norm is written ||x||_2, and diag(x) produces a
 * diagonal matrix (see Matrix::diag).
 */

#ifndef LEO_LINALG_VECTOR_HH
#define LEO_LINALG_VECTOR_HH

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "linalg/error.hh"

namespace leo::linalg
{

/**
 * A dense vector of doubles.
 *
 * A thin, bounds-checked wrapper around std::vector<double> with the
 * arithmetic the estimators need. All binary operations require
 * matching dimensions and call fatal() otherwise.
 */
class Vector
{
  public:
    /** Construct an empty (0-dimensional) vector. */
    Vector() = default;

    /**
     * Construct a vector of a given size.
     *
     * @param n    Dimension.
     * @param fill Initial value for every component.
     */
    explicit Vector(std::size_t n, double fill = 0.0);

    /** Construct from an explicit component list. */
    Vector(std::initializer_list<double> values);

    /** Construct from an existing std::vector. */
    explicit Vector(std::vector<double> values);

    /** @return The dimension of the vector. */
    std::size_t size() const { return data_.size(); }

    /** @return True iff the vector has no components. */
    bool empty() const { return data_.empty(); }

    /** Bounds-checked element access. */
    double &operator()(std::size_t i);
    /** Bounds-checked element access (const). */
    double operator()(std::size_t i) const;

    /** Unchecked element access. */
    double &operator[](std::size_t i) { return data_[i]; }
    /** Unchecked element access (const). */
    double operator[](std::size_t i) const { return data_[i]; }

    /** @return Pointer to the underlying contiguous storage. */
    const double *data() const { return data_.data(); }
    /** @return Pointer to the underlying contiguous storage. */
    double *data() { return data_.data(); }

    /** @return The underlying std::vector. */
    const std::vector<double> &raw() const { return data_; }

    /** Iterators so the vector works with range-for and algorithms. */
    auto begin() { return data_.begin(); }
    auto end() { return data_.end(); }
    auto begin() const { return data_.begin(); }
    auto end() const { return data_.end(); }

    /** In-place addition. */
    Vector &operator+=(const Vector &other);
    /** In-place subtraction. */
    Vector &operator-=(const Vector &other);
    /** In-place scaling. */
    Vector &operator*=(double s);
    /** In-place division by a scalar. */
    Vector &operator/=(double s);

    /** @return The sum of all components. */
    double sum() const;
    /** @return The arithmetic mean of all components. */
    double mean() const;
    /** @return The smallest component. */
    double min() const;
    /** @return The largest component. */
    double max() const;
    /** @return The index of the largest component. */
    std::size_t argmax() const;
    /** @return The index of the smallest component. */
    std::size_t argmin() const;
    /** @return The L2 norm ||x||_2. */
    double norm() const;
    /** @return The squared L2 norm ||x||_2^2. */
    double squaredNorm() const;

    /** @return A copy with every component multiplied elementwise. */
    Vector cwiseProduct(const Vector &other) const;

    /**
     * Gather a sub-vector.
     *
     * @param idx Indices to extract (each must be < size()).
     * @return The vector [x[idx[0]], x[idx[1]], ...].
     */
    Vector gather(const std::vector<std::size_t> &idx) const;

    /** Set every component to a constant. */
    void fill(double value);

    /**
     * Append one component (amortized O(1), like
     * std::vector::push_back). This is what lets incremental
     * consumers — Observations::push in particular — grow a vector
     * across a sampling round in O(n) total instead of O(n^2).
     */
    void push_back(double value) { data_.push_back(value); }

    /** Pre-allocate capacity for n components. */
    void reserve(std::size_t n) { data_.reserve(n); }

    /**
     * Re-shape to n components, zero-filled.
     *
     * A no-op when the size already matches (contents preserved);
     * shrinking or growing within existing capacity does not
     * allocate, which is what lets workspace buffers change problem
     * size without touching the heap.
     */
    void resize(std::size_t n);

    /**
     * In-place axpy: this += scale * other.
     *
     * Bitwise identical to `*this += scale * other` without the
     * temporary (each component adds the product (other[i] * scale)
     * in one rounding step either way).
     */
    void addScaled(double scale, const Vector &other);

    /** @return True iff all components are finite. */
    bool allFinite() const;

  private:
    std::vector<double> data_;
};

/** Component-wise sum of two vectors. */
Vector operator+(Vector a, const Vector &b);
/** Component-wise difference of two vectors. */
Vector operator-(Vector a, const Vector &b);
/** Scale a vector by a scalar. */
Vector operator*(Vector a, double s);
/** Scale a vector by a scalar. */
Vector operator*(double s, Vector a);
/** Divide a vector by a scalar. */
Vector operator/(Vector a, double s);

/**
 * Inner product of two vectors.
 *
 * @return x' y.
 */
double dot(const Vector &a, const Vector &b);

} // namespace leo::linalg

#endif // LEO_LINALG_VECTOR_HH
