/**
 * @file
 * Bit-exact binary serialization primitives.
 *
 * The session snapshot/restore path (runtime controller state,
 * estimators::LeoFit including the low-rank factors, service tenant
 * sessions) needs round trips that are *exact*: a restored controller
 * must reproduce the uninterrupted run's accepted-config schedule
 * bit for bit, so every double travels as its IEEE-754 bit pattern,
 * never through a decimal conversion.
 *
 * Format rules:
 *  - All integers are fixed-width little-endian (explicit byte
 *    packing, so the format is identical across hosts).
 *  - Doubles are the 8 bytes of their bit pattern (via
 *    std::bit_cast to std::uint64_t), preserving NaN payloads and
 *    signed zeros.
 *  - Containers are a u64 length followed by the elements.
 *
 * ByteReader never throws: a truncated or malformed buffer flips
 * ok() to false and every subsequent read returns zero values, so
 * callers validate once at the end (the pattern the no-throw
 * controller restore path requires).
 */

#ifndef LEO_LINALG_SERIALIZE_HH
#define LEO_LINALG_SERIALIZE_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "linalg/matrix.hh"
#include "linalg/vector.hh"

namespace leo::linalg
{

/** Append-only binary encoder (see the format rules above). */
class ByteWriter
{
  public:
    /** Append one byte. */
    void u8(std::uint8_t v) { bytes_.push_back(static_cast<char>(v)); }

    /** Append a 32-bit little-endian integer. */
    void u32(std::uint32_t v);

    /** Append a 64-bit little-endian integer. */
    void u64(std::uint64_t v);

    /** Append a double as its exact IEEE-754 bit pattern. */
    void f64(double v);

    /** Append a length-prefixed byte string. */
    void str(const std::string &s);

    /** Append a length-prefixed vector of doubles (bit patterns). */
    void vec(const Vector &v);

    /** Append a (rows, cols)-prefixed row-major matrix. */
    void mat(const Matrix &m);

    /** Append a length-prefixed vector of u64 indices. */
    void indexVec(const std::vector<std::size_t> &v);

    /** @return The encoded buffer. */
    const std::string &bytes() const { return bytes_; }

    /** Move the encoded buffer out. */
    std::string take() { return std::move(bytes_); }

  private:
    std::string bytes_;
};

/**
 * Sequential binary decoder over a borrowed buffer.
 *
 * Never throws; check ok() after the final read. The borrowed buffer
 * must outlive the reader.
 */
class ByteReader
{
  public:
    /** @param bytes The encoded buffer (borrowed). */
    explicit ByteReader(const std::string &bytes) : bytes_(&bytes) {}

    /** @return False once any read ran past the end. */
    bool ok() const { return ok_; }

    /**
     * Mark the stream failed (e.g. a version or sanity check the
     * caller performed on decoded values); every later read returns
     * zero values, as after a range failure.
     */
    void fail() { ok_ = false; }

    /** @return True iff every byte has been consumed. */
    bool atEnd() const { return pos_ == bytes_->size(); }

    /** Read one byte (0 after a failure). */
    std::uint8_t u8();

    /** Read a 32-bit little-endian integer. */
    std::uint32_t u32();

    /** Read a 64-bit little-endian integer. */
    std::uint64_t u64();

    /** Read a double from its bit pattern. */
    double f64();

    /** Read a length-prefixed byte string. */
    std::string str();

    /** Read a length-prefixed vector of doubles. */
    Vector vec();

    /** Read a (rows, cols)-prefixed row-major matrix. */
    Matrix mat();

    /** Read a length-prefixed vector of u64 indices. */
    std::vector<std::size_t> indexVec();

  private:
    /** Claim n bytes; nullptr (and ok_ = false) when exhausted. */
    const char *claim(std::size_t n);

    const std::string *bytes_;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

} // namespace leo::linalg

#endif // LEO_LINALG_SERIALIZE_HH
