/**
 * @file
 * Symmetric eigendecomposition (cyclic Jacobi).
 *
 * Used to analyze the spectrum of the learned configuration
 * covariance Sigma: with M-1 fully observed prior applications the
 * data part of Sigma has rank at most M, and the eigenvalue decay
 * quantifies how much statistical structure the hierarchical model
 * actually shares across configurations (see DESIGN.md section 6 on
 * prior expressiveness).
 */

#ifndef LEO_LINALG_EIGEN_HH
#define LEO_LINALG_EIGEN_HH

#include "linalg/matrix.hh"
#include "linalg/vector.hh"

namespace leo::linalg
{

/** Eigendecomposition A = V diag(lambda) V' of a symmetric matrix. */
struct EigenDecomposition
{
    /** Eigenvalues, sorted descending. */
    Vector values;
    /** Orthonormal eigenvectors as matrix columns, matching order. */
    Matrix vectors;
    /** Jacobi sweeps used. */
    std::size_t sweeps = 0;
    /** True iff the off-diagonal norm met the tolerance. */
    bool converged = false;
};

/**
 * Decompose a symmetric matrix with the cyclic Jacobi method.
 *
 * O(n^3) per sweep with typically 5-10 sweeps; intended for the
 * moderate sizes LEO works at (n <= a few thousand) and for tests.
 *
 * @param a          Symmetric matrix.
 * @param max_sweeps Sweep limit.
 * @param tol        Relative off-diagonal Frobenius tolerance.
 */
EigenDecomposition symmetricEigen(const Matrix &a,
                                  std::size_t max_sweeps = 30,
                                  double tol = 1e-12);

/**
 * Effective rank of a symmetric PSD matrix: the number of
 * eigenvalues needed to capture the given share of the trace.
 *
 * @param eigenvalues Eigenvalues sorted descending (non-negative).
 * @param share       Trace share to capture, in (0, 1].
 */
std::size_t effectiveRank(const Vector &eigenvalues,
                          double share = 0.99);

} // namespace leo::linalg

#endif // LEO_LINALG_EIGEN_HH
