/**
 * @file
 * Dense real-valued matrix used throughout LEO.
 *
 * Follows the paper's Section 3 notation: matrices live in R^{d x n},
 * tr(A) is the trace, ||X||_F the Frobenius norm and diag(x) the
 * diagonal matrix built from a vector.
 */

#ifndef LEO_LINALG_MATRIX_HH
#define LEO_LINALG_MATRIX_HH

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "linalg/vector.hh"

namespace leo::linalg
{

/**
 * A dense row-major matrix of doubles.
 *
 * Sized at construction; all binary operations check dimensions and
 * call fatal() on mismatch.
 */
class Matrix
{
  public:
    /** Construct an empty (0 x 0) matrix. */
    Matrix() = default;

    /**
     * Construct a rows x cols matrix.
     *
     * @param rows Number of rows.
     * @param cols Number of columns.
     * @param fill Initial value for every entry.
     */
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    /**
     * Construct from nested initializer lists (row by row).
     * All rows must have equal length.
     */
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    /** @return The d x d identity matrix. */
    static Matrix identity(std::size_t d);

    /** @return diag(x): square matrix with x on the diagonal. */
    static Matrix diag(const Vector &x);

    /** @return The outer product x y'. */
    static Matrix outer(const Vector &x, const Vector &y);

    /** @return Number of rows. */
    std::size_t rows() const { return rows_; }
    /** @return Number of columns. */
    std::size_t cols() const { return cols_; }
    /** @return True iff the matrix is 0 x 0. */
    bool empty() const { return data_.empty(); }

    /** Bounds-checked element access. */
    double &operator()(std::size_t r, std::size_t c);
    /** Bounds-checked element access (const). */
    double operator()(std::size_t r, std::size_t c) const;

    /** Unchecked element access. */
    double &at(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    /** Unchecked element access (const). */
    double at(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** @return Pointer to the underlying row-major storage. */
    const double *data() const { return data_.data(); }
    /** @return Pointer to the underlying row-major storage. */
    double *data() { return data_.data(); }

    /** @return Row r as a vector. */
    Vector row(std::size_t r) const;
    /** @return Column c as a vector. */
    Vector col(std::size_t c) const;
    /** Overwrite row r. */
    void setRow(std::size_t r, const Vector &v);
    /** Overwrite column c. */
    void setCol(std::size_t c, const Vector &v);

    /** In-place addition. */
    Matrix &operator+=(const Matrix &other);
    /** In-place subtraction. */
    Matrix &operator-=(const Matrix &other);
    /** In-place scaling. */
    Matrix &operator*=(double s);
    /** In-place division by a scalar. */
    Matrix &operator/=(double s);

    /** @return The transpose X'. */
    Matrix transpose() const;
    /** @return tr(A) (square matrices only). */
    double trace() const;
    /** @return The Frobenius norm ||X||_F. */
    double frobeniusNorm() const;
    /** @return The main diagonal as a vector (square only). */
    Vector diagonal() const;
    /** @return True iff all entries are finite. */
    bool allFinite() const;
    /** @return True iff ||A - A'||_max <= tol. */
    bool isSymmetric(double tol = 1e-9) const;

    /** Force exact symmetry: A <- (A + A') / 2 (square only). */
    void symmetrize();

    /** Add s to every diagonal entry (square only). */
    void addToDiagonal(double s);

    /**
     * Extract the square sub-matrix indexed by idx on both axes.
     *
     * @param idx Row/column indices to keep.
     * @return The |idx| x |idx| principal sub-matrix.
     */
    Matrix gather(const std::vector<std::size_t> &idx) const;

    /**
     * Extract the rectangular sub-matrix rows x cols.
     *
     * @param row_idx Row indices to keep.
     * @param col_idx Column indices to keep.
     */
    Matrix gather(const std::vector<std::size_t> &row_idx,
                  const std::vector<std::size_t> &col_idx) const;

    /** Set every entry to a constant. */
    void fill(double value);

    /**
     * Re-shape to rows x cols, zero-filled.
     *
     * A no-op when the shape already matches (contents preserved);
     * otherwise reuses existing capacity where possible so workspace
     * buffers re-shape without touching the heap.
     */
    void resize(std::size_t rows, std::size_t cols);

    /**
     * In-place axpy: this += scale * other (same shape).
     *
     * Bitwise identical to `*this += scale * other` without the
     * temporary.
     */
    void addScaled(double scale, const Matrix &other);

    /**
     * In-place symmetric axpy from a lower triangle: treats `lower`
     * as a symmetric matrix stored in its lower triangle (upper
     * entries ignored) and adds scale * that matrix. Pairs with the
     * mirror = false mode of Cholesky::inverseInto.
     */
    void addScaledSymmetric(double scale, const Matrix &lower);

    /**
     * Rank-1 update: this += scale * x y'.
     *
     * Each entry adds (x[i] * y[j]) * scale in one rounding step —
     * bitwise identical to `*this += scale * outer(x, y)`.
     */
    void outerAddInto(double scale, const Vector &x, const Vector &y);

    /**
     * Gather the principal sub-matrix indexed by idx into `out`
     * (re-shaped as needed) without allocating a fresh matrix.
     */
    void gatherInto(Matrix &out,
                    const std::vector<std::size_t> &idx) const;

    /** Write the transpose into `out` (re-shaped as needed). */
    void transposeInto(Matrix &out) const;

    /**
     * Cache-blocked matrix product a * b.
     *
     * Tiles all three loop dimensions; for every output entry the
     * inner dimension is accumulated in increasing-k order, so the
     * result is bitwise identical to the naive i,j,k triple loop.
     * operator*(Matrix, Matrix) forwards here.
     */
    static Matrix multiply(const Matrix &a, const Matrix &b);

    /**
     * Blocked product a * b with b supplied already transposed:
     * returns a * bt' using row-dot-row inner loops (both operands
     * stream along contiguous rows). Same increasing-k accumulation
     * order as multiply().
     *
     * @param a  Left operand (m x k).
     * @param bt The transpose of the right operand (n x k).
     * @return a * bt' (m x n).
     */
    static Matrix multiplyTransposed(const Matrix &a, const Matrix &bt);

    /**
     * Blocked symmetric rank-k product a * a' (syrk).
     *
     * Computes the lower triangle with increasing-k dots of rows of
     * a and mirrors it, so the result is exactly symmetric and
     * bitwise identical to multiply(a, a.transpose()).
     */
    static Matrix syrk(const Matrix &a);

    /**
     * Blocked Gram matrix a' * a.
     *
     * Entry (i, j) is the increasing-k dot of columns i and j of a;
     * bitwise identical to multiply(a.transpose(), a). This is the
     * kernel behind the EM M-step's sums of outer products: for a
     * matrix whose rows are vectors r_k, gram(a) = sum_k r_k r_k'
     * accumulated in row order.
     */
    static Matrix gram(const Matrix &a);

    /**
     * Into-buffer variant of multiply(): out = a * b, overwriting
     * (and re-shaping) out. Bitwise identical to multiply(a, b); out
     * must not alias a or b.
     */
    static void multiplyInto(Matrix &out, const Matrix &a,
                             const Matrix &b);

    /**
     * Into-buffer variant of syrk(): out = a * a', overwriting out.
     * Bitwise identical to syrk(a); out must not alias a.
     */
    static void syrkInto(Matrix &out, const Matrix &a);

    /**
     * Into-buffer variant of gram(): out = a' * a, overwriting out,
     * without materializing a.transpose(). Accumulates the lower
     * triangle as rank-1 row updates in row order — the same
     * increasing-k order gram() uses, hence bitwise identical — then
     * mirrors. out must not alias a.
     */
    static void gramInto(Matrix &out, const Matrix &a);

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

/** Matrix sum. */
Matrix operator+(Matrix a, const Matrix &b);
/** Matrix difference. */
Matrix operator-(Matrix a, const Matrix &b);
/** Scale a matrix. */
Matrix operator*(Matrix a, double s);
/** Scale a matrix. */
Matrix operator*(double s, Matrix a);
/** Matrix-matrix product. */
Matrix operator*(const Matrix &a, const Matrix &b);
/** Matrix-vector product. */
Vector operator*(const Matrix &a, const Vector &x);

/**
 * Symmetric matrix-vector product into a caller buffer: y = a x,
 * reading only a's lower triangle (a(c, r) stands in for a(r, c)
 * above the diagonal). For an exactly symmetric (or mirrored) a this
 * is bitwise identical to operator*(a, x): each output component
 * accumulates in increasing-column order. y is re-shaped as needed
 * and must not alias x.
 */
void symv(const Matrix &a, const Vector &x, Vector &y);

} // namespace leo::linalg

#endif // LEO_LINALG_MATRIX_HH
