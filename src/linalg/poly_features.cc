/**
 * @file
 * Implementation of polynomial feature expansion.
 */

#include "linalg/poly_features.hh"

#include <algorithm>
#include <cmath>

namespace leo::linalg
{

PolynomialFeatures::PolynomialFeatures(std::size_t num_inputs,
                                       std::size_t degree)
    : num_inputs_(num_inputs)
{
    require(num_inputs > 0, "PolynomialFeatures needs >= 1 input");
    std::vector<unsigned> current(num_inputs, 0);
    enumerate(current, 0, static_cast<unsigned>(degree));

    // Sort by total degree then lexicographically for a stable,
    // human-readable feature order (constant term first).
    std::sort(exponents_.begin(), exponents_.end(),
              [](const auto &a, const auto &b) {
                  unsigned da = 0, db = 0;
                  for (unsigned e : a) da += e;
                  for (unsigned e : b) db += e;
                  if (da != db)
                      return da < db;
                  return a < b;
              });
}

void
PolynomialFeatures::enumerate(std::vector<unsigned> &current,
                              std::size_t pos, unsigned remaining)
{
    if (pos == num_inputs_) {
        exponents_.push_back(current);
        return;
    }
    for (unsigned e = 0; e <= remaining; ++e) {
        current[pos] = e;
        enumerate(current, pos + 1, remaining - e);
    }
    current[pos] = 0;
}

Vector
PolynomialFeatures::expand(const Vector &x) const
{
    require(x.size() == num_inputs_,
            "PolynomialFeatures::expand dimension mismatch");
    Vector out(exponents_.size());
    for (std::size_t f = 0; f < exponents_.size(); ++f) {
        double v = 1.0;
        for (std::size_t i = 0; i < num_inputs_; ++i) {
            for (unsigned e = 0; e < exponents_[f][i]; ++e)
                v *= x[i];
        }
        out[f] = v;
    }
    return out;
}

Matrix
PolynomialFeatures::designMatrix(const std::vector<Vector> &rows) const
{
    Matrix design(rows.size(), numFeatures());
    for (std::size_t r = 0; r < rows.size(); ++r)
        design.setRow(r, expand(rows[r]));
    return design;
}

} // namespace leo::linalg
