/**
 * @file
 * Dense two-phase simplex solver for small linear programs.
 *
 * The energy-minimization problem of Equation (1),
 *
 *     min  sum_c p_c t_c
 *     s.t. sum_c r_c t_c  = W
 *          sum_c t_c     <= T
 *          t >= 0,
 *
 * is a linear program. LEO solves it geometrically by walking the
 * lower convex hull of the Pareto frontier (see leo::optimizer), which
 * is far cheaper; this general solver exists as a substrate so the
 * test suite can verify the hull walk against an independent exact
 * method, and so downstream users can pose richer allocation LPs.
 */

#ifndef LEO_LINALG_SIMPLEX_HH
#define LEO_LINALG_SIMPLEX_HH

#include <vector>

#include "linalg/matrix.hh"
#include "linalg/vector.hh"

namespace leo::linalg
{

/** Outcome of a linear-program solve. */
enum class LpStatus
{
    Optimal,    //!< An optimal basic feasible solution was found.
    Infeasible, //!< The constraints admit no solution.
    Unbounded   //!< The objective is unbounded below.
};

/** Solution of a linear program. */
struct LpSolution
{
    LpStatus status = LpStatus::Infeasible;
    /** Optimal primal point (valid only when status == Optimal). */
    Vector x;
    /** Optimal objective value c' x. */
    double objective = 0.0;
};

/**
 * A linear program
 *
 *     min c' x  s.t.  Aeq x = beq,  Aub x <= bub,  x >= 0.
 *
 * Either constraint block may be empty. Solved with a dense two-phase
 * simplex using Bland's rule (no cycling).
 */
class LinearProgram
{
  public:
    /** @param num_vars Number of decision variables. */
    explicit LinearProgram(std::size_t num_vars);

    /** Set the objective coefficients c. */
    void setObjective(const Vector &c);

    /** Append an equality constraint a' x = b. */
    void addEquality(const Vector &a, double b);

    /** Append an inequality constraint a' x <= b. */
    void addInequality(const Vector &a, double b);

    /** @return Number of decision variables. */
    std::size_t numVars() const { return num_vars_; }

    /**
     * Solve the program.
     *
     * @return The solution with status, point and objective.
     */
    LpSolution solve() const;

  private:
    std::size_t num_vars_;
    Vector objective_;
    std::vector<Vector> eq_rows_;
    std::vector<double> eq_rhs_;
    std::vector<Vector> ub_rows_;
    std::vector<double> ub_rhs_;
};

} // namespace leo::linalg

#endif // LEO_LINALG_SIMPLEX_HH
