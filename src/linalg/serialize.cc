/**
 * @file
 * Implementation of the bit-exact serialization primitives.
 */

#include "linalg/serialize.hh"

#include <bit>
#include <cstring>

namespace leo::linalg
{

void
ByteWriter::u32(std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
ByteWriter::u64(std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        u8(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
ByteWriter::f64(double v)
{
    u64(std::bit_cast<std::uint64_t>(v));
}

void
ByteWriter::str(const std::string &s)
{
    u64(s.size());
    bytes_.append(s);
}

void
ByteWriter::vec(const Vector &v)
{
    u64(v.size());
    for (double x : v)
        f64(x);
}

void
ByteWriter::mat(const Matrix &m)
{
    u64(m.rows());
    u64(m.cols());
    const double *p = m.data();
    for (std::size_t i = 0; i < m.rows() * m.cols(); ++i)
        f64(p[i]);
}

void
ByteWriter::indexVec(const std::vector<std::size_t> &v)
{
    u64(v.size());
    for (std::size_t x : v)
        u64(static_cast<std::uint64_t>(x));
}

const char *
ByteReader::claim(std::size_t n)
{
    if (!ok_ || bytes_->size() - pos_ < n) {
        ok_ = false;
        return nullptr;
    }
    const char *p = bytes_->data() + pos_;
    pos_ += n;
    return p;
}

std::uint8_t
ByteReader::u8()
{
    const char *p = claim(1);
    return p ? static_cast<std::uint8_t>(*p) : 0;
}

std::uint32_t
ByteReader::u32()
{
    const char *p = claim(4);
    if (!p)
        return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(
                 static_cast<std::uint8_t>(p[i]))
             << (8 * i);
    return v;
}

std::uint64_t
ByteReader::u64()
{
    const char *p = claim(8);
    if (!p)
        return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(
                 static_cast<std::uint8_t>(p[i]))
             << (8 * i);
    return v;
}

double
ByteReader::f64()
{
    return std::bit_cast<double>(u64());
}

std::string
ByteReader::str()
{
    const std::uint64_t n = u64();
    // Bound the length by the remaining bytes before allocating, so
    // a corrupt length fails cleanly instead of attempting a huge
    // allocation.
    const char *p = claim(static_cast<std::size_t>(n));
    if (!p)
        return std::string{};
    return std::string(p, static_cast<std::size_t>(n));
}

Vector
ByteReader::vec()
{
    const std::uint64_t n = u64();
    if (!ok_ || n > (bytes_->size() - pos_) / 8) {
        ok_ = false;
        return Vector{};
    }
    Vector v(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < n; ++i)
        v[i] = f64();
    return v;
}

Matrix
ByteReader::mat()
{
    const std::uint64_t rows = u64();
    const std::uint64_t cols = u64();
    if (!ok_ ||
        (cols != 0 && rows > (bytes_->size() - pos_) / 8 / cols)) {
        ok_ = false;
        return Matrix{};
    }
    Matrix m(static_cast<std::size_t>(rows),
             static_cast<std::size_t>(cols));
    double *p = m.data();
    for (std::size_t i = 0; i < rows * cols; ++i)
        p[i] = f64();
    return m;
}

std::vector<std::size_t>
ByteReader::indexVec()
{
    const std::uint64_t n = u64();
    if (!ok_ || n > (bytes_->size() - pos_) / 8) {
        ok_ = false;
        return {};
    }
    std::vector<std::size_t> v(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::size_t>(u64());
    return v;
}

} // namespace leo::linalg
