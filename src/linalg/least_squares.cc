/**
 * @file
 * Implementation of Householder-QR least squares and ridge regression.
 */

#include "linalg/least_squares.hh"

#include <cmath>
#include <vector>

#include "linalg/cholesky.hh"

namespace leo::linalg
{

LeastSquaresResult
leastSquares(const Matrix &x, const Vector &y, double tol)
{
    const std::size_t m = x.rows();
    const std::size_t n = x.cols();
    require(y.size() == m, "leastSquares dimension mismatch");
    require(n > 0, "leastSquares with empty design");

    // Work on copies: R accumulates the triangularized design, b the
    // transformed targets.
    Matrix r = x;
    Vector b = y;

    const std::size_t steps = std::min(m, n);
    double max_abs_diag = 0.0;

    for (std::size_t k = 0; k < steps; ++k) {
        // Householder vector for column k, rows k..m-1.
        double norm2 = 0.0;
        for (std::size_t i = k; i < m; ++i)
            norm2 += r.at(i, k) * r.at(i, k);
        double alpha = std::sqrt(norm2);
        if (alpha == 0.0)
            continue;
        if (r.at(k, k) > 0.0)
            alpha = -alpha;

        std::vector<double> v(m - k);
        v[0] = r.at(k, k) - alpha;
        for (std::size_t i = k + 1; i < m; ++i)
            v[i - k] = r.at(i, k);
        double vnorm2 = 0.0;
        for (double t : v)
            vnorm2 += t * t;
        if (vnorm2 == 0.0)
            continue;

        // Apply H = I - 2 v v' / (v'v) to R[k:, k:] and b[k:].
        for (std::size_t c = k; c < n; ++c) {
            double s = 0.0;
            for (std::size_t i = k; i < m; ++i)
                s += v[i - k] * r.at(i, c);
            s = 2.0 * s / vnorm2;
            for (std::size_t i = k; i < m; ++i)
                r.at(i, c) -= s * v[i - k];
        }
        double s = 0.0;
        for (std::size_t i = k; i < m; ++i)
            s += v[i - k] * b[i];
        s = 2.0 * s / vnorm2;
        for (std::size_t i = k; i < m; ++i)
            b[i] -= s * v[i - k];

        max_abs_diag = std::max(max_abs_diag, std::abs(r.at(k, k)));
    }

    // Rank test on the diagonal of R.
    const double thresh =
        tol * std::max(1.0, max_abs_diag) *
        static_cast<double>(std::max(m, n));
    std::vector<bool> independent(n, false);
    std::size_t rank = 0;
    for (std::size_t k = 0; k < steps; ++k) {
        if (std::abs(r.at(k, k)) > thresh) {
            independent[k] = true;
            ++rank;
        }
    }

    LeastSquaresResult result;
    result.rank = rank;
    result.fullRank = (rank == n) && (m >= n);

    // Back substitution over the independent columns; dependent
    // coefficients stay zero.
    Vector w(n, 0.0);
    for (std::size_t kk = steps; kk-- > 0;) {
        if (!independent[kk])
            continue;
        double s = b[kk];
        for (std::size_t c = kk + 1; c < n; ++c)
            s -= r.at(kk, c) * w[c];
        w[kk] = s / r.at(kk, kk);
    }
    result.coefficients = w;

    // Residual: recompute against the original system for robustness
    // in the rank-deficient case.
    Vector fitted = x * w;
    double rss = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
        const double e = fitted[i] - y[i];
        rss += e * e;
    }
    result.residualSumSquares = rss;
    return result;
}

Vector
ridgeRegression(const Matrix &x, const Vector &y, double lambda)
{
    require(lambda > 0.0, "ridgeRegression requires lambda > 0");
    const std::size_t n = x.cols();
    require(y.size() == x.rows(), "ridgeRegression dimension mismatch");

    Matrix xtx(n, n, 0.0);
    for (std::size_t i = 0; i < x.rows(); ++i)
        for (std::size_t a = 0; a < n; ++a)
            for (std::size_t b = 0; b < n; ++b)
                xtx.at(a, b) += x.at(i, a) * x.at(i, b);
    xtx.addToDiagonal(lambda);

    Vector xty(n, 0.0);
    for (std::size_t i = 0; i < x.rows(); ++i)
        for (std::size_t a = 0; a < n; ++a)
            xty[a] += x.at(i, a) * y[i];

    return Cholesky(xtx).solve(xty);
}

} // namespace leo::linalg
