/**
 * @file
 * Implementation of the two-phase dense simplex solver.
 */

#include "linalg/simplex.hh"

#include <cmath>
#include <limits>

#include "obs/obs.hh"

namespace leo::linalg
{

namespace
{

constexpr double kEps = 1e-9;

/** Registry instruments of the LP solver (lazily registered). */
struct LpObs
{
    obs::Counter solves =
        obs::Registry::global().counter(obs::names::kLpSolvesRun);
    obs::Counter pivots =
        obs::Registry::global().counter(obs::names::kLpPivotsStepped);
};

LpObs &
lpObs()
{
    static LpObs o;
    return o;
}

/**
 * Dense simplex tableau in standard form:
 *
 *     min c' x  s.t.  A x = b,  x >= 0,  b >= 0,
 *
 * with an explicit basis. Pivoting uses Bland's rule, which is slow
 * but cannot cycle; all LEO programs are small (|C| + 2 columns).
 */
class Tableau
{
  public:
    Tableau(const Matrix &a, const Vector &b, const Vector &c,
            std::vector<std::size_t> basis)
        : a_(a), b_(b), c_(c), basis_(std::move(basis))
    {
    }

    /** Run simplex iterations until optimal or unbounded. */
    LpStatus
    iterate()
    {
        const std::size_t m = a_.rows();
        const std::size_t n = a_.cols();
        // Upper bound on iterations: C(n, m) explodes, but Bland's
        // rule terminates; keep a generous safety valve.
        const std::size_t max_iters = 10000 + 100 * n * (m + 1);

        for (std::size_t iter = 0; iter < max_iters; ++iter) {
            // Compute reduced costs via the basis inverse implicitly:
            // the tableau is kept in canonical form, so reduced costs
            // are c_ - c_B' A_ directly.
            std::size_t entering = n;
            for (std::size_t j = 0; j < n; ++j) {
                if (reducedCost(j) < -kEps) {
                    entering = j;
                    break; // Bland: smallest index.
                }
            }
            if (entering == n)
                return LpStatus::Optimal;

            // Ratio test.
            std::size_t leaving = m;
            double best_ratio = std::numeric_limits<double>::infinity();
            for (std::size_t i = 0; i < m; ++i) {
                const double aij = a_.at(i, entering);
                if (aij > kEps) {
                    const double ratio = b_[i] / aij;
                    if (ratio < best_ratio - kEps ||
                        (ratio < best_ratio + kEps &&
                         (leaving == m || basis_[i] < basis_[leaving]))) {
                        best_ratio = ratio;
                        leaving = i;
                    }
                }
            }
            if (leaving == m)
                return LpStatus::Unbounded;

            pivot(leaving, entering);
        }
        // Should be unreachable with Bland's rule.
        return LpStatus::Unbounded;
    }

    /** Reduced cost of column j in the current canonical tableau. */
    double
    reducedCost(std::size_t j) const
    {
        double z = 0.0;
        for (std::size_t i = 0; i < a_.rows(); ++i)
            z += c_[basis_[i]] * a_.at(i, j);
        return c_[j] - z;
    }

    /** Gauss-Jordan pivot on (row, col); updates the basis. */
    void
    pivot(std::size_t row, std::size_t col)
    {
        lpObs().pivots.add(1);
        const std::size_t n = a_.cols();
        const double p = a_.at(row, col);
        for (std::size_t j = 0; j < n; ++j)
            a_.at(row, j) /= p;
        b_[row] /= p;
        for (std::size_t i = 0; i < a_.rows(); ++i) {
            if (i == row)
                continue;
            const double f = a_.at(i, col);
            if (std::abs(f) < kEps)
                continue;
            for (std::size_t j = 0; j < n; ++j)
                a_.at(i, j) -= f * a_.at(row, j);
            b_[i] -= f * b_[row];
        }
        basis_[row] = col;
    }

    const std::vector<std::size_t> &basis() const { return basis_; }
    const Vector &rhs() const { return b_; }
    Matrix &a() { return a_; }
    Vector &b() { return b_; }
    Vector &c() { return c_; }
    std::vector<std::size_t> &basisMutable() { return basis_; }

  private:
    Matrix a_;
    Vector b_;
    Vector c_;
    std::vector<std::size_t> basis_;
};

} // namespace

LinearProgram::LinearProgram(std::size_t num_vars)
    : num_vars_(num_vars), objective_(num_vars, 0.0)
{
    require(num_vars > 0, "LinearProgram needs >= 1 variable");
}

void
LinearProgram::setObjective(const Vector &c)
{
    require(c.size() == num_vars_, "LP objective dimension mismatch");
    objective_ = c;
}

void
LinearProgram::addEquality(const Vector &a, double b)
{
    require(a.size() == num_vars_, "LP equality dimension mismatch");
    eq_rows_.push_back(a);
    eq_rhs_.push_back(b);
}

void
LinearProgram::addInequality(const Vector &a, double b)
{
    require(a.size() == num_vars_, "LP inequality dimension mismatch");
    ub_rows_.push_back(a);
    ub_rhs_.push_back(b);
}

LpSolution
LinearProgram::solve() const
{
    lpObs().solves.add(1);
    obs::Span span(obs::names::kLpSolveSpan);
    span.arg("vars", static_cast<double>(num_vars_));
    const std::size_t m_eq = eq_rows_.size();
    const std::size_t m_ub = ub_rows_.size();
    const std::size_t m = m_eq + m_ub;
    require(m > 0, "LP with no constraints");

    // Standard form: variables = [x | slacks | artificials].
    const std::size_t n_slack = m_ub;
    const std::size_t n_total = num_vars_ + n_slack + m;

    Matrix a(m, n_total, 0.0);
    Vector b(m, 0.0);

    for (std::size_t i = 0; i < m_eq; ++i) {
        for (std::size_t j = 0; j < num_vars_; ++j)
            a.at(i, j) = eq_rows_[i][j];
        b[i] = eq_rhs_[i];
    }
    for (std::size_t i = 0; i < m_ub; ++i) {
        const std::size_t r = m_eq + i;
        for (std::size_t j = 0; j < num_vars_; ++j)
            a.at(r, j) = ub_rows_[i][j];
        a.at(r, num_vars_ + i) = 1.0; // slack
        b[r] = ub_rhs_[i];
    }

    // Ensure b >= 0.
    for (std::size_t i = 0; i < m; ++i) {
        if (b[i] < 0.0) {
            b[i] = -b[i];
            for (std::size_t j = 0; j < num_vars_ + n_slack; ++j)
                a.at(i, j) = -a.at(i, j);
        }
    }

    // Artificial variables form the initial identity basis.
    std::vector<std::size_t> basis(m);
    for (std::size_t i = 0; i < m; ++i) {
        a.at(i, num_vars_ + n_slack + i) = 1.0;
        basis[i] = num_vars_ + n_slack + i;
    }

    // Phase 1: minimize the sum of artificials.
    Vector c1(n_total, 0.0);
    for (std::size_t i = 0; i < m; ++i)
        c1[num_vars_ + n_slack + i] = 1.0;

    Tableau t(a, b, c1, basis);
    // Canonicalize: subtract basic rows so reduced costs are correct.
    // (reducedCost handles this implicitly, no action needed.)
    LpStatus s1 = t.iterate();
    invariant(s1 != LpStatus::Unbounded, "phase-1 LP unbounded");

    // Feasibility threshold scales with the right-hand side: an
    // artificial stuck at 1e-6 against constraints of magnitude 1e6
    // is rounding noise, not infeasibility.
    double bmax = 0.0;
    for (std::size_t i = 0; i < m; ++i)
        bmax = std::max(bmax, std::abs(b[i]));
    double phase1_obj = 0.0;
    for (std::size_t i = 0; i < m; ++i)
        if (t.basis()[i] >= num_vars_ + n_slack)
            phase1_obj += t.rhs()[i];
    if (phase1_obj > 1e-7 * std::max(1.0, bmax))
        return LpSolution{LpStatus::Infeasible, Vector(num_vars_), 0.0};

    // Drive any remaining artificials out of the basis, pivoting on
    // the largest available element for stability.
    for (std::size_t i = 0; i < m; ++i) {
        if (t.basis()[i] >= num_vars_ + n_slack) {
            std::size_t best = num_vars_ + n_slack;
            double best_mag = kEps;
            for (std::size_t j = 0; j < num_vars_ + n_slack; ++j) {
                const double mag = std::abs(t.a().at(i, j));
                if (mag > best_mag) {
                    best_mag = mag;
                    best = j;
                }
            }
            if (best < num_vars_ + n_slack)
                t.pivot(i, best);
        }
    }

    // Rows whose artificial could not be driven out are redundant
    // (linearly dependent on the others — duplicated equalities, zero
    // rows): every real coefficient left in them is elimination
    // residue below kEps. Drop them, and drop the artificial columns
    // with them. Keeping such rows basic with a "prohibitive" cost is
    // not an option: the cost multiplies the ~1e-16 residues into
    // garbage reduced costs that misreport bounded programs as
    // Unbounded (see simplex_stress_test.cc).
    std::vector<std::size_t> kept;
    kept.reserve(m);
    for (std::size_t i = 0; i < m; ++i)
        if (t.basis()[i] < num_vars_ + n_slack)
            kept.push_back(i);

    if (kept.empty()) {
        // Every constraint was redundant with rhs 0: the feasible set
        // is the whole nonnegative orthant.
        Vector x(num_vars_, 0.0);
        for (std::size_t j = 0; j < num_vars_; ++j)
            if (objective_[j] < 0.0)
                return LpSolution{LpStatus::Unbounded,
                                  Vector(num_vars_), 0.0};
        return LpSolution{LpStatus::Optimal, x, 0.0};
    }

    // Phase 2: original objective over the real and slack columns
    // only; artificials are gone.
    const std::size_t n2 = num_vars_ + n_slack;
    Matrix a2(kept.size(), n2, 0.0);
    Vector b2(kept.size(), 0.0);
    std::vector<std::size_t> basis2(kept.size());
    for (std::size_t k = 0; k < kept.size(); ++k) {
        for (std::size_t j = 0; j < n2; ++j)
            a2.at(k, j) = t.a().at(kept[k], j);
        b2[k] = t.rhs()[kept[k]];
        basis2[k] = t.basis()[kept[k]];
    }
    Vector c2(n2, 0.0);
    for (std::size_t j = 0; j < num_vars_; ++j)
        c2[j] = objective_[j];

    Tableau t2(a2, b2, c2, std::move(basis2));
    LpStatus s2 = t2.iterate();
    if (s2 == LpStatus::Unbounded)
        return LpSolution{LpStatus::Unbounded, Vector(num_vars_), 0.0};

    Vector x(num_vars_, 0.0);
    for (std::size_t i = 0; i < kept.size(); ++i)
        if (t2.basis()[i] < num_vars_)
            x[t2.basis()[i]] = t2.rhs()[i];

    double obj = dot(objective_, x);
    return LpSolution{LpStatus::Optimal, x, obj};
}

} // namespace leo::linalg
