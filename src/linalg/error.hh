/**
 * @file
 * Error reporting for the LEO library.
 *
 * Follows the gem5 panic()/fatal() discipline: panic() flags an
 * internal invariant violation (a library bug), fatal() flags a
 * condition caused by the caller (bad arguments, unusable inputs).
 * Unlike gem5 we throw typed exceptions instead of aborting so that
 * library users and the test suite can observe and recover from
 * failures.
 */

#ifndef LEO_LINALG_ERROR_HH
#define LEO_LINALG_ERROR_HH

#include <sstream>
#include <stdexcept>
#include <string>

namespace leo
{

/** Root of the LEO exception hierarchy. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string &msg) : std::runtime_error(msg) {}
};

/** Raised by panic(): an internal invariant was violated. */
class PanicError : public Error
{
  public:
    explicit PanicError(const std::string &msg) : Error(msg) {}
};

/** Raised by fatal(): the caller supplied unusable input. */
class FatalError : public Error
{
  public:
    explicit FatalError(const std::string &msg) : Error(msg) {}
};

/**
 * Report an internal library bug.
 *
 * @param msg Description of the violated invariant.
 */
[[noreturn]] inline void
panic(const std::string &msg)
{
    throw PanicError("panic: " + msg); // leo-lint: allow(nothrow-reachability) assert-style invariant escape; fit paths guard it
}

/**
 * Report a usage error by the caller.
 *
 * @param msg Description of the bad input.
 */
[[noreturn]] inline void
fatal(const std::string &msg)
{
    throw FatalError("fatal: " + msg); // leo-lint: allow(nothrow-reachability) precondition escape; boundaries validate first
}

/**
 * Check a caller-facing precondition; calls fatal() on failure.
 *
 * @param cond Condition that must hold.
 * @param msg  Message used when the condition fails.
 */
inline void
require(bool cond, const std::string &msg)
{
    if (!cond)
        fatal(msg);
}

/**
 * Literal-message overload of require(). String literals bind here
 * instead of materializing a std::string argument, so checks on the
 * success path never touch the heap — which is what lets the EM hot
 * loop run allocation-free while staying fully checked.
 */
inline void
require(bool cond, const char *msg)
{
    if (!cond)
        fatal(msg);
}

/**
 * Check an internal invariant; calls panic() on failure.
 *
 * @param cond Condition that must hold.
 * @param msg  Message used when the condition fails.
 */
inline void
invariant(bool cond, const std::string &msg)
{
    if (!cond)
        panic(msg);
}

/** Literal-message overload of invariant(); see require(). */
inline void
invariant(bool cond, const char *msg)
{
    if (!cond)
        panic(msg);
}

} // namespace leo

#endif // LEO_LINALG_ERROR_HH
