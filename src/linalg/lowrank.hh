/**
 * @file
 * Low-rank basis and small dense kernels for the factored EM path.
 *
 * The estimator's low-rank representation writes the configuration
 * covariance as Sigma = alpha I + Q' C Q with Q an orthonormal basis
 * of the subspace actually touched by the data — the M prior shapes
 * plus one unit vector per observed configuration. Every EM quantity
 * then lives in q = rank(Q) dimensions (q ~ M + |Omega| << n), and
 * the Woodbury / matrix-inversion-lemma identities reduce each
 * O(n^3) step to O(q^3) (see DESIGN.md section 7.2).
 *
 * This header supplies the basis builder plus the handful of small
 * GEMM/GEMV kernels the q-dimensional iterations need. The kernels
 * are restrict-qualified and unrolled four wide: at q ~ 45 the
 * matrices fit in L1 and the only thing standing between the scalar
 * loop and SIMD is aliasing, so the kernels say there is none.
 */

#ifndef LEO_LINALG_LOWRANK_HH
#define LEO_LINALG_LOWRANK_HH

#include <cstddef>
#include <vector>

#include "linalg/matrix.hh"
#include "linalg/vector.hh"

namespace leo::linalg
{

/**
 * An orthonormal basis of a low-dimensional subspace of R^n, grown
 * one vector at a time by modified Gram-Schmidt.
 *
 * Rows are stored contiguously (row k is basis vector k), so both
 * projection and expansion stream whole cache lines. Every append
 * runs the projection sweep twice ("twice is enough" — a single MGS
 * pass loses orthogonality exactly when a new vector nearly lies in
 * the current span, which is the common case here: application
 * shapes are strongly correlated). Vectors whose residual after
 * projection is below a relative drop tolerance are rejected, which
 * is how rank-deficient priors (duplicated shapes, repeated
 * observation indices) shrink q instead of poisoning the basis.
 */
class LowRankBasis
{
  public:
    /**
     * Start an empty basis over R^n with storage for up to max_rank
     * vectors (appends beyond max_rank are rejected).
     */
    void reset(std::size_t n, std::size_t max_rank);

    /** @return The ambient dimension n. */
    std::size_t dim() const { return n_; }

    /** @return The current rank q (number of basis vectors). */
    std::size_t size() const { return q_; }

    /**
     * Orthonormalize x against the basis and append the residual
     * direction.
     *
     * @return True if the vector added a new direction; false if it
     *         was (numerically) already in the span and was dropped.
     */
    bool appendVector(const Vector &x);

    /**
     * Append the coordinate direction e_j. Identical contract to
     * appendVector, but the projection coefficients are plain column
     * reads so the sweep costs O(q n) instead of O(q n) with an extra
     * O(n) staging copy.
     */
    bool appendUnit(std::size_t j);

    /** @return Basis entry Q[k][j] (row k, component j). */
    double entry(std::size_t k, std::size_t j) const
    {
        return rows_.at(k, j);
    }

    /** Write coordinates c = Q x (length size()) into c. */
    void coordsInto(Vector &c, const Vector &x) const;

    /** Write the expansion x = Q' c (length dim()) into x. */
    void expandInto(Vector &x, const Vector &c) const;

    /** Copy the q live basis rows into `out` (re-shaped to q x n). */
    void rowsInto(Matrix &out) const;

  private:
    /** Storage: max_rank x n; rows [0, q_) hold the basis. */
    Matrix rows_;
    std::size_t n_ = 0;
    std::size_t q_ = 0;
};

/**
 * out = a b' with both operands streamed along rows (a: r x k,
 * b: c x k, out: r x c). Four output columns share each a-row pass;
 * every entry accumulates in ascending k.
 */
void abtInto(Matrix &out, const Matrix &a, const Matrix &b);

/**
 * out = a' b accumulated as rank-1 row updates (a: k x r, b: k x c,
 * out: r x c); both operands stream along rows.
 */
void atbInto(Matrix &out, const Matrix &a, const Matrix &b);

/** y = a x (a: r x c, x: c, y: r; y must not alias x). */
void gemvInto(Vector &y, const Matrix &a, const Vector &x);

/** y = a' x (a: r x c, x: r, y: c; y must not alias x). */
void gemvTransInto(Vector &y, const Matrix &a, const Vector &x);

} // namespace leo::linalg

#endif // LEO_LINALG_LOWRANK_HH
