/**
 * @file
 * Reusable buffer arena for allocation-free hot loops.
 *
 * The EM fit (DESIGN.md "Hot-loop memory discipline") acquires every
 * per-iteration temporary from a Workspace before entering its
 * iteration loop. A buffer is keyed by name and shape: asking again
 * with the same key and shape returns the existing storage untouched,
 * so a loop that acquires its buffers up front never allocates while
 * iterating, and a caller that keeps the Workspace alive across fits
 * pays the allocation cost only once.
 */

#ifndef LEO_LINALG_WORKSPACE_HH
#define LEO_LINALG_WORKSPACE_HH

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "linalg/matrix.hh"
#include "linalg/vector.hh"

namespace leo::linalg
{

/**
 * A named arena of Matrix / Vector buffers keyed by shape.
 *
 * Ownership rules:
 *  - The arena owns every buffer; references stay valid until the
 *    buffer is re-shaped (same key, different shape) or clear() runs.
 *    The node-based map guarantees that acquiring new buffers never
 *    moves existing ones.
 *  - Re-acquiring a key with the *same* shape returns the buffer with
 *    its previous contents intact — callers must overwrite what they
 *    read, and get cross-call reuse (warm refits) for free.
 *  - Re-acquiring a key with a *different* shape discards the old
 *    contents and counts as a new allocation.
 *  - Not thread-safe: one fit (or one owner) at a time. Concurrent
 *    fits each take their own Workspace.
 */
class Workspace
{
  public:
    /**
     * Acquire (or reuse) a rows x cols matrix buffer.
     *
     * A newly created or re-shaped buffer is zero-filled; a reused
     * one keeps its previous contents.
     */
    Matrix &matrix(const std::string &key, std::size_t rows,
                   std::size_t cols);

    /** Acquire (or reuse) an n-component vector buffer. */
    Vector &vector(const std::string &key, std::size_t n);

    /**
     * Acquire (or reuse) an array of count vectors of size n each
     * (e.g. one posterior-mean row per prior application).
     */
    std::vector<Vector> &vectorArray(const std::string &key,
                                     std::size_t count, std::size_t n);

    /**
     * @return Number of buffer (re-)creations so far. Stable across
     *         calls that only reuse buffers — the allocation-free
     *         property the estimator tests assert.
     */
    std::size_t allocations() const { return allocations_; }

    /** @return Number of live buffers (all three kinds). */
    std::size_t buffers() const
    {
        return matrices_.size() + vectors_.size() + arrays_.size();
    }

    /**
     * @return Total payload held by the arena, in bytes (the double
     *         storage of every live buffer; map overhead excluded).
     *         Exported as the `em.workspace.bytes` gauge.
     */
    std::size_t bytes() const;

    /** Drop every buffer (references become dangling). */
    void clear();

  private:
    std::map<std::string, Matrix> matrices_;
    std::map<std::string, Vector> vectors_;
    std::map<std::string, std::vector<Vector>> arrays_;
    std::size_t allocations_ = 0;
};

} // namespace leo::linalg

#endif // LEO_LINALG_WORKSPACE_HH
