/**
 * @file
 * Multivariate polynomial feature expansion.
 *
 * The Online baseline of Section 6.2 performs "polynomial multivariate
 * regression on the observed dataset using configuration values (the
 * number of cores, memory control and speed-settings) as predictors".
 * With the four knobs of the evaluation platform and total degree 2
 * this yields C(4+2, 2) = 15 features, matching the paper's remark
 * (Fig. 12) that the online method is rank deficient below 15 samples.
 */

#ifndef LEO_LINALG_POLY_FEATURES_HH
#define LEO_LINALG_POLY_FEATURES_HH

#include <vector>

#include "linalg/matrix.hh"
#include "linalg/vector.hh"

namespace leo::linalg
{

/**
 * Expands raw predictor vectors into all monomials up to a total
 * degree, including the constant term and all cross terms.
 */
class PolynomialFeatures
{
  public:
    /**
     * @param num_inputs Number of raw predictors d.
     * @param degree     Maximum total degree of the monomials.
     */
    PolynomialFeatures(std::size_t num_inputs, std::size_t degree);

    /** @return Number of expanded features C(d + degree, degree). */
    std::size_t numFeatures() const { return exponents_.size(); }

    /** @return Number of raw predictors. */
    std::size_t numInputs() const { return num_inputs_; }

    /** @return The exponent tuples, one per feature. */
    const std::vector<std::vector<unsigned>> &exponents() const
    {
        return exponents_;
    }

    /**
     * Expand one raw predictor vector.
     *
     * @param x Raw predictors, size numInputs().
     * @return Feature vector of size numFeatures().
     */
    Vector expand(const Vector &x) const;

    /**
     * Expand a batch of predictor vectors into a design matrix.
     *
     * @param rows One raw predictor vector per row.
     * @return Design matrix (rows.size() x numFeatures()).
     */
    Matrix designMatrix(const std::vector<Vector> &rows) const;

  private:
    /** Recursively enumerate exponent tuples of bounded total degree. */
    void enumerate(std::vector<unsigned> &current, std::size_t pos,
                   unsigned remaining);

    std::size_t num_inputs_;
    std::vector<std::vector<unsigned>> exponents_;
};

} // namespace leo::linalg

#endif // LEO_LINALG_POLY_FEATURES_HH
