/**
 * @file
 * Cholesky factorization of symmetric positive-definite matrices.
 *
 * This is the numerical workhorse of the EM algorithm in Section 5.3:
 * every E-step solves linear systems in (Sigma + sigma^2 I), which is
 * SPD by construction (the normal-inverse-Wishart prior keeps Sigma
 * positive definite).
 */

#ifndef LEO_LINALG_CHOLESKY_HH
#define LEO_LINALG_CHOLESKY_HH

#include "linalg/matrix.hh"
#include "linalg/vector.hh"

namespace leo::linalg
{

class Workspace;

/**
 * Result of a rank-1 factor update or downdate.
 *
 * Downdating can legitimately fail — A - x x' need not be positive
 * definite — so the failure is an error *code*, not an exception: the
 * runtime refit path consumes it on every window and must stay
 * no-throw. On failure the factor is left exactly as it was.
 */
enum class UpdateStatus
{
    Ok,                 //!< Factor updated in place.
    NotPositiveDefinite //!< Result not SPD; factor left untouched.
};

/**
 * Lower-triangular Cholesky factorization A = L L'.
 *
 * The factorization is computed once at construction; solves against
 * multiple right-hand sides reuse the factor. If the input is not
 * positive definite the constructor retries with growing diagonal
 * jitter up to maxJitter before giving up with fatal().
 *
 * Hot loops instead default-construct once, reserve(), and then
 * factorize() each iteration: that path reuses the factor storage,
 * skips the constructor's symmetry check, and runs a cache-blocked
 * right-looking factorization that is bitwise identical to the
 * constructor's naive left-looking one (per-entry increasing-k
 * update order is preserved).
 */
class Cholesky
{
  public:
    /**
     * Construct an empty factorization; factorize() fills it in.
     * Every query other than dim() requires a factorize() first.
     */
    Cholesky() = default;

    /**
     * Factorize an SPD matrix.
     *
     * @param a          Symmetric positive-definite matrix.
     * @param max_jitter Largest diagonal jitter to try when the bare
     *                   factorization fails (0 disables jitter).
     */
    explicit Cholesky(const Matrix &a, double max_jitter = 1e-6);

    /**
     * Pre-size the internal buffers for an n x n factorization so a
     * later factorize(n x n) call does not allocate.
     */
    void reserve(std::size_t n);

    /**
     * Re-factor in place: factorize a + added_diag I, reusing the
     * existing storage (allocation-free after reserve()).
     *
     * Unlike the constructor this skips the symmetry check — the
     * caller guarantees an exactly symmetric a — and uses the
     * blocked kernel. The jitter retry schedule matches the
     * constructor, and the resulting factor is bitwise identical to
     * `Cholesky(a', max_jitter)` for a' = a + added_diag I.
     *
     * @param a          Symmetric positive-definite matrix.
     * @param added_diag Constant added to the diagonal before
     *                   factoring (e.g. a noise variance).
     * @param max_jitter Largest diagonal jitter to retry with.
     */
    void factorize(const Matrix &a, double added_diag = 0.0,
                   double max_jitter = 1e-6);

    /** @return The lower-triangular factor L. */
    const Matrix &factor() const { return l_; }

    /**
     * Install an externally produced lower-triangular factor L
     * directly (deserialization: a snapshot restores the factor a
     * rank-1 update sequence arrived at, which a refactorization of
     * the underlying matrix would only reproduce up to rounding).
     * The matrix must be square; its strict upper triangle is
     * ignored by every consumer.
     */
    void setFactor(Matrix l);

    /** @return The jitter that was added to the diagonal (usually 0). */
    double jitterUsed() const { return jitter_; }

    /** @return The dimension of the factored matrix. */
    std::size_t dim() const { return l_.rows(); }

    /**
     * Solve A x = b.
     *
     * @param b Right-hand side.
     * @return x = A^-1 b.
     */
    Vector solve(const Vector &b) const;

    /**
     * Solve A X = B for a matrix right-hand side.
     *
     * @param b Right-hand side with dim() rows.
     * @return X = A^-1 B.
     */
    Matrix solve(const Matrix &b) const;

    /** @return The explicit inverse A^-1 (SPD). */
    Matrix inverse() const;

    /**
     * Allocation-free explicit inverse into a caller buffer.
     *
     * Computes K = L^-1 by cache-blocked panel substitution, then
     * A^-1 = K' K with a blocked multiply that skips K's structural
     * zero blocks. Bitwise identical to inverse() (same per-entry
     * accumulation order), several times faster at n ~ 1000, and
     * allocation-free once `ws` holds the scratch buffers (keys
     * "chol.*" — give each recurring inverseInto call site a
     * workspace of its own, or shapes will thrash).
     *
     * @param inv    Output buffer (re-shaped as needed).
     * @param ws     Scratch arena for the triangular-inverse panels.
     * @param mirror When false only inv's lower triangle is written
     *               (the upper triangle is unspecified), pairing
     *               with symv / addScaledSymmetric consumers.
     */
    void inverseInto(Matrix &inv, Workspace &ws,
                     bool mirror = true) const;

    /**
     * Pre-acquire the "chol.*" scratch buffers an n x n inverseInto
     * will use, so a hot loop's first inverseInto call performs no
     * allocations.
     */
    static void reserveInverseScratch(Workspace &ws, std::size_t n);

    /** @return log det A = 2 sum_i log L[i][i]. */
    double logDet() const;

    /**
     * Forward substitution: solve L y = b.
     *
     * Exposed for whitening operations in sampling code.
     */
    Vector solveLower(const Vector &b) const;

    /**
     * In-place forward substitution: b <- L^-1 b. Bitwise identical
     * to solveLower() without the result allocation.
     */
    void solveLowerInPlace(Vector &b) const;

    /**
     * In-place SPD solve: b <- A^-1 b. Bitwise identical to
     * solve(const Vector &) without the temporaries.
     */
    void solveInPlace(Vector &b) const;

    /**
     * In-place SPD solve on a matrix right-hand side: b <- A^-1 b.
     * solve(const Matrix &) is this applied to a copy.
     */
    void solveInPlace(Matrix &b) const;

    /**
     * Rank-1 update: replace the factor of A with the factor of
     * A + x x' in O(n^2) via Givens rotations (LINPACK dchud order),
     * instead of the O(n^3) refactorization. Allocation-free after
     * reserve(). A + x x' is SPD whenever A is, so this only reports
     * NotPositiveDefinite on non-finite input — in which case the
     * factor is left untouched.
     */
    UpdateStatus updateRank1(const Vector &x);

    /**
     * Rank-1 downdate: replace the factor of A with the factor of
     * A - x x' in O(n^2) via hyperbolic rotations.
     *
     * Unlike the update this can genuinely fail: A - x x' is SPD only
     * while x'A^-1 x < 1. The method first solves L p = x and checks
     * 1 - ||p||^2 > tol before touching the factor, and stashes the
     * factor so that even a rounding-induced mid-sweep breakdown
     * restores it bit-for-bit. On NotPositiveDefinite the factor is
     * therefore always exactly the pre-call factor — never NaN.
     * Allocation-free after reserve().
     *
     * @param x   Downdate direction.
     * @param tol Positivity margin required of 1 - ||L^-1 x||^2.
     */
    UpdateStatus downdateRank1(const Vector &x, double tol = 1e-12);

  private:
    /** Attempt the factorization; @return true on success. */
    bool tryFactor(const Matrix &a, double jitter);

    /**
     * Blocked right-looking variant of tryFactor (bitwise identical
     * result); reuses l_'s and panelT_'s storage.
     */
    bool tryFactorBlocked(const Matrix &a, double added_diag,
                          double jitter);

    Matrix l_;
    /** Transposed-panel scratch for the blocked factorization. */
    Matrix panelT_;
    /** Rotation scratch for updateRank1 / downdateRank1. */
    Vector upd_x_;
    /** Pre-downdate factor stash for exact failure rollback. */
    Matrix upd_stash_;
    double jitter_ = 0.0;
};

/**
 * Convenience wrapper: solve the SPD system A x = b once.
 */
Vector spdSolve(const Matrix &a, const Vector &b);

/**
 * Convenience wrapper: explicit SPD inverse.
 */
Matrix spdInverse(const Matrix &a);

} // namespace leo::linalg

#endif // LEO_LINALG_CHOLESKY_HH
