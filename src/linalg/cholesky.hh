/**
 * @file
 * Cholesky factorization of symmetric positive-definite matrices.
 *
 * This is the numerical workhorse of the EM algorithm in Section 5.3:
 * every E-step solves linear systems in (Sigma + sigma^2 I), which is
 * SPD by construction (the normal-inverse-Wishart prior keeps Sigma
 * positive definite).
 */

#ifndef LEO_LINALG_CHOLESKY_HH
#define LEO_LINALG_CHOLESKY_HH

#include "linalg/matrix.hh"
#include "linalg/vector.hh"

namespace leo::linalg
{

/**
 * Lower-triangular Cholesky factorization A = L L'.
 *
 * The factorization is computed once at construction; solves against
 * multiple right-hand sides reuse the factor. If the input is not
 * positive definite the constructor retries with growing diagonal
 * jitter up to maxJitter before giving up with fatal().
 */
class Cholesky
{
  public:
    /**
     * Factorize an SPD matrix.
     *
     * @param a          Symmetric positive-definite matrix.
     * @param max_jitter Largest diagonal jitter to try when the bare
     *                   factorization fails (0 disables jitter).
     */
    explicit Cholesky(const Matrix &a, double max_jitter = 1e-6);

    /** @return The lower-triangular factor L. */
    const Matrix &factor() const { return l_; }

    /** @return The jitter that was added to the diagonal (usually 0). */
    double jitterUsed() const { return jitter_; }

    /** @return The dimension of the factored matrix. */
    std::size_t dim() const { return l_.rows(); }

    /**
     * Solve A x = b.
     *
     * @param b Right-hand side.
     * @return x = A^-1 b.
     */
    Vector solve(const Vector &b) const;

    /**
     * Solve A X = B for a matrix right-hand side.
     *
     * @param b Right-hand side with dim() rows.
     * @return X = A^-1 B.
     */
    Matrix solve(const Matrix &b) const;

    /** @return The explicit inverse A^-1 (SPD). */
    Matrix inverse() const;

    /** @return log det A = 2 sum_i log L[i][i]. */
    double logDet() const;

    /**
     * Forward substitution: solve L y = b.
     *
     * Exposed for whitening operations in sampling code.
     */
    Vector solveLower(const Vector &b) const;

  private:
    /** Attempt the factorization; @return true on success. */
    bool tryFactor(const Matrix &a, double jitter);

    Matrix l_;
    double jitter_ = 0.0;
};

/**
 * Convenience wrapper: solve the SPD system A x = b once.
 */
Vector spdSolve(const Matrix &a, const Vector &b);

/**
 * Convenience wrapper: explicit SPD inverse.
 */
Matrix spdInverse(const Matrix &a);

} // namespace leo::linalg

#endif // LEO_LINALG_CHOLESKY_HH
