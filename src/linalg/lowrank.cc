/**
 * @file
 * Implementation of the low-rank basis and its small dense kernels.
 */

#include "linalg/lowrank.hh"

#include <algorithm>
#include <cmath>

#include "linalg/error.hh"

namespace leo::linalg
{

namespace
{

/**
 * Residual directions smaller than this (relative to the incoming
 * vector's norm) are treated as already-in-span and dropped: keeping
 * them would add a basis row that is mostly rounding noise.
 */
constexpr double kDropTol = 1e-10;

/** Contiguous dot with four independent partial sums. */
double
dotN(const double *__restrict a, const double *__restrict b,
     std::size_t n)
{
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
    }
    double tail = 0.0;
    for (; i < n; ++i)
        tail += a[i] * b[i];
    return ((s0 + s1) + (s2 + s3)) + tail;
}

/** y += s * x over contiguous storage. */
void
axpyN(double *__restrict y, const double *__restrict x, double s,
      std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] += s * x[i];
}

} // namespace

void
LowRankBasis::reset(std::size_t n, std::size_t max_rank)
{
    n_ = n;
    q_ = 0;
    rows_.resize(max_rank, n);
}

bool
LowRankBasis::appendVector(const Vector &x)
{
    require(x.size() == n_, "LowRankBasis: dimension mismatch");
    if (q_ >= rows_.rows())
        return false;
    double *__restrict v = rows_.data() + q_ * n_;
    for (std::size_t j = 0; j < n_; ++j)
        v[j] = x[j];
    const double norm0 = std::sqrt(dotN(v, v, n_));
    if (!(norm0 > 0.0) || !std::isfinite(norm0))
        return false;

    // Two MGS sweeps: the second pass removes the O(eps * cos-angle)
    // residue the first leaves behind when x nearly lies in the span.
    for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t k = 0; k < q_; ++k) {
            const double *__restrict row = rows_.data() + k * n_;
            const double c = dotN(row, v, n_);
            axpyN(v, row, -c, n_);
        }
    }
    const double norm = std::sqrt(dotN(v, v, n_));
    if (!(norm > kDropTol * norm0) || !std::isfinite(norm))
        return false;
    const double inv = 1.0 / norm;
    for (std::size_t j = 0; j < n_; ++j)
        v[j] *= inv;
    ++q_;
    return true;
}

bool
LowRankBasis::appendUnit(std::size_t j)
{
    require(j < n_, "LowRankBasis: unit index out of range");
    if (q_ >= rows_.rows())
        return false;
    double *__restrict v = rows_.data() + q_ * n_;
    for (std::size_t i = 0; i < n_; ++i)
        v[i] = 0.0;
    v[j] = 1.0;
    for (int pass = 0; pass < 2; ++pass) {
        for (std::size_t k = 0; k < q_; ++k) {
            const double *__restrict row = rows_.data() + k * n_;
            const double c = dotN(row, v, n_);
            axpyN(v, row, -c, n_);
        }
    }
    const double norm = std::sqrt(dotN(v, v, n_));
    if (!(norm > kDropTol) || !std::isfinite(norm))
        return false;
    const double inv = 1.0 / norm;
    for (std::size_t i = 0; i < n_; ++i)
        v[i] *= inv;
    ++q_;
    return true;
}

void
LowRankBasis::coordsInto(Vector &c, const Vector &x) const
{
    require(x.size() == n_, "LowRankBasis: coords dimension mismatch");
    c.resize(q_);
    const double *__restrict xp = x.data();
    for (std::size_t k = 0; k < q_; ++k)
        c[k] = dotN(rows_.data() + k * n_, xp, n_);
}

void
LowRankBasis::expandInto(Vector &x, const Vector &c) const
{
    require(c.size() == q_, "LowRankBasis: expand dimension mismatch");
    x.resize(n_);
    double *__restrict xp = x.data();
    for (std::size_t j = 0; j < n_; ++j)
        xp[j] = 0.0;
    for (std::size_t k = 0; k < q_; ++k)
        axpyN(xp, rows_.data() + k * n_, c[k], n_);
}

void
LowRankBasis::rowsInto(Matrix &out) const
{
    out.resize(q_, n_);
    for (std::size_t k = 0; k < q_; ++k) {
        double *__restrict o = out.data() + k * n_;
        const double *__restrict r = rows_.data() + k * n_;
        for (std::size_t j = 0; j < n_; ++j)
            o[j] = r[j];
    }
}

void
abtInto(Matrix &out, const Matrix &a, const Matrix &b)
{
    require(a.cols() == b.cols(), "abtInto dimension mismatch");
    require(&out != &a && &out != &b, "abtInto aliased output");
    const std::size_t r = a.rows();
    const std::size_t c = b.rows();
    const std::size_t kk = a.cols();
    out.resize(r, c); // leo-lint: allow(hot-alloc-transitive) capacity guard; no-op when presized
    for (std::size_t i = 0; i < r; ++i) {
        const double *__restrict ai = a.data() + i * kk;
        std::size_t j = 0;
        for (; j + 4 <= c; j += 4) {
            const double *__restrict b0 = b.data() + j * kk;
            const double *__restrict b1 = b.data() + (j + 1) * kk;
            const double *__restrict b2 = b.data() + (j + 2) * kk;
            const double *__restrict b3 = b.data() + (j + 3) * kk;
            double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
            for (std::size_t k = 0; k < kk; ++k) {
                const double aik = ai[k];
                s0 += aik * b0[k];
                s1 += aik * b1[k];
                s2 += aik * b2[k];
                s3 += aik * b3[k];
            }
            out.at(i, j) = s0;
            out.at(i, j + 1) = s1;
            out.at(i, j + 2) = s2;
            out.at(i, j + 3) = s3;
        }
        for (; j < c; ++j)
            out.at(i, j) = dotN(ai, b.data() + j * kk, kk);
    }
}

void
atbInto(Matrix &out, const Matrix &a, const Matrix &b)
{
    require(a.rows() == b.rows(), "atbInto dimension mismatch");
    require(&out != &a && &out != &b, "atbInto aliased output");
    const std::size_t kk = a.rows();
    const std::size_t r = a.cols();
    const std::size_t c = b.cols();
    out.resize(r, c); // leo-lint: allow(hot-alloc-transitive) capacity guard; no-op when presized
    out.fill(0.0);
    // Rank-1 row updates: out += a_row_k' * b_row_k, each a saxpy
    // over out's contiguous rows.
    for (std::size_t k = 0; k < kk; ++k) {
        const double *__restrict ak = a.data() + k * r;
        const double *__restrict bk = b.data() + k * c;
        for (std::size_t i = 0; i < r; ++i) {
            const double aki = ak[i];
            if (aki == 0.0)
                continue;
            axpyN(out.data() + i * c, bk, aki, c);
        }
    }
}

void
gemvInto(Vector &y, const Matrix &a, const Vector &x)
{
    require(a.cols() == x.size(), "gemvInto dimension mismatch");
    require(&y != &x, "gemvInto aliased output");
    const std::size_t r = a.rows();
    const std::size_t c = a.cols();
    y.resize(r); // leo-lint: allow(hot-alloc-transitive) capacity guard; no-op when presized
    const double *__restrict xp = x.data();
    for (std::size_t i = 0; i < r; ++i)
        y[i] = dotN(a.data() + i * c, xp, c);
}

void
gemvTransInto(Vector &y, const Matrix &a, const Vector &x)
{
    require(a.rows() == x.size(),
            "gemvTransInto dimension mismatch");
    require(&y != &x, "gemvTransInto aliased output");
    const std::size_t r = a.rows();
    const std::size_t c = a.cols();
    y.resize(c); // leo-lint: allow(hot-alloc-transitive) capacity guard; no-op when presized
    double *__restrict yp = y.data();
    for (std::size_t j = 0; j < c; ++j)
        yp[j] = 0.0;
    for (std::size_t i = 0; i < r; ++i)
        axpyN(yp, a.data() + i * c, x[i], c);
}

} // namespace leo::linalg
