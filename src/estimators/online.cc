/**
 * @file
 * Implementation of the Online baseline.
 */

#include "estimators/online.hh"

#include <algorithm>

#include "estimators/sanitize.hh"
#include "linalg/error.hh"
#include "linalg/least_squares.hh"
#include "linalg/poly_features.hh"

namespace leo::estimators
{

OnlineEstimator::OnlineEstimator(std::size_t degree) : degree_(degree)
{
    require(degree_ >= 1, "OnlineEstimator: degree must be >= 1");
}

MetricEstimate
OnlineEstimator::estimateMetric(
    const platform::ConfigSpace &space,
    const std::vector<linalg::Vector> &prior,
    const std::vector<std::size_t> &obs_idx,
    const linalg::Vector &obs_vals) const
{
    (void)prior; // Online uses observations only.

    MetricEstimate est;
    est.values = linalg::Vector(space.size(), 0.0);

    // Sanitize first: corrupted telemetry (NaN/Inf/dropout readings,
    // duplicated probe indices) must degrade the regression, not
    // crash it.
    const SanitizedObservations clean =
        sanitizeObservations(obs_idx, obs_vals, space.size());
    const std::vector<std::size_t> &oidx =
        clean.modified ? clean.indices : obs_idx;
    const linalg::Vector &ovals = clean.modified ? clean.values : obs_vals;
    est.samplesRejected = clean.rejected;

    if (oidx.empty()) {
        // Nothing (usable) observed: no model at all.
        est.reliable = false;
        return est;
    }

    const linalg::PolynomialFeatures features(space.numKnobs(), degree_);

    // Build the design from the observed knob vectors.
    std::vector<linalg::Vector> rows;
    rows.reserve(oidx.size());
    for (std::size_t idx : oidx)
        rows.push_back(space.knobs(idx));
    if (oidx.size() < features.numFeatures()) {
        // Fewer samples than features: the design matrix is rank
        // deficient and the regression is meaningless — "effectively
        // 0 accuracy" below 15 samples (Fig. 12). Fall back to the
        // observed mean so downstream consumers still get numbers.
        est.values.fill(ovals.mean());
        est.reliable = false;
        return est;
    }

    try {
        const linalg::Matrix design = features.designMatrix(rows);
        const linalg::LeastSquaresResult fit =
            linalg::leastSquares(design, ovals);
        // Binary knobs (hyperthreading, memory controllers) make
        // their squared columns *structurally* collinear, so the rank
        // may sit below the feature count even with ample samples;
        // the QR solver zeroes the dependent coefficients, and
        // because the dependency holds at every configuration the
        // predictions stay well defined.

        for (std::size_t c = 0; c < space.size(); ++c) {
            const double v =
                linalg::dot(features.expand(space.knobs(c)),
                            fit.coefficients);
            // Physical quantities are non-negative; clamp the
            // extrapolation tails.
            est.values[c] = std::max(v, 0.0);
        }
        if (est.values.allFinite()) {
            est.reliable = true;
            return est;
        }
    } catch (const Error &) {
        // Degenerate solve: fall through to the observed-mean
        // fallback below.
    }
    est.values.fill(ovals.mean());
    est.reliable = false;
    return est;
}

} // namespace leo::estimators
