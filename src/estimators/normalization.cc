/**
 * @file
 * Implementation of scale normalization.
 */

#include "estimators/normalization.hh"

#include "linalg/error.hh"

namespace leo::estimators
{

std::vector<linalg::Vector>
normalizeShapes(const std::vector<linalg::Vector> &prior)
{
    std::vector<linalg::Vector> shapes;
    shapes.reserve(prior.size());
    for (const linalg::Vector &y : prior) {
        require(!y.empty(), "normalizeShapes: empty prior vector");
        const double m = y.mean();
        require(m > 0.0, "normalizeShapes: non-positive prior mean");
        shapes.push_back(y / m);
    }
    return shapes;
}

double
observedScale(const linalg::Vector &obs_vals)
{
    require(!obs_vals.empty(), "observedScale: no observations");
    const double m = obs_vals.mean();
    require(m > 0.0, "observedScale: non-positive observation mean");
    return m;
}

} // namespace leo::estimators
