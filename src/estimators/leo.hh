/**
 * @file
 * LEO: the hierarchical Bayesian estimator (Sections 5.2-5.4).
 *
 * The generative model (Equation 2):
 *
 *     y_i | z_i        ~  N(z_i, sigma^2 I)          (filtration layer)
 *     z_i | mu, Sigma  ~  N(mu, Sigma)               (application layer)
 *     mu, Sigma        ~  NIW(mu_0, pi, Psi, nu)     (hyper prior)
 *
 * with hyper-parameters mu_0 = 0, pi = 1, Psi = psi I, nu = 1. The
 * first M-1 applications are fully observed offline; the target
 * application M is observed at a small index set Omega_M. EM
 * alternates the E-step of Equation (3) with the M-step of
 * Equation (4) and predicts y_M as E[z_M | theta-hat].
 *
 * Implementation notes (see DESIGN.md for the full discussion):
 *  - The E-step uses the Gaussian-conditioning form of Equation (3)
 *    (identical algebra, O(n^2 |Omega|) instead of O(n^3) per
 *    application), and the fully-observed applications share one
 *    matrix inverse per iteration.
 *  - Estimation runs on mean-normalized vectors so applications with
 *    different heartbeat units share statistical strength; the
 *    prediction is rescaled by the target's observed mean
 *    (normalization.hh).
 *  - Following Section 5.5, mu is initialized from the Offline
 *    estimate, and convergence typically takes 3-4 iterations.
 */

#ifndef LEO_ESTIMATORS_LEO_HH
#define LEO_ESTIMATORS_LEO_HH

#include <memory>
#include <vector>

#include "estimators/estimator.hh"
#include "linalg/matrix.hh"
#include "linalg/workspace.hh"
#include "parallel/thread_pool.hh"

namespace leo::estimators
{

/**
 * Test hook: register a monotone heap-allocation counter (e.g. backed
 * by an operator-new override in the test binary). When set,
 * LeoFit::loopAllocations reports the number of allocations performed
 * inside the EM iteration loop. Pass nullptr to clear. Not
 * thread-safe against concurrent fits; intended for tests only.
 */
void setAllocationCounter(std::size_t (*counter)());

/** How the EM's mu is initialized (Section 5.5 discussion). */
enum class EmInit
{
    Offline, //!< Mean of the prior shapes (the paper's recommendation).
    Zero     //!< mu_0 = 0; slower, used by the init ablation bench.
};

/**
 * How the configuration covariance Sigma is represented during EM.
 *
 * The dense representation carries the full n x n matrix and is the
 * executable specification. The low-rank representation writes
 * Sigma = alpha I + Q' C Q with Q an orthonormal basis of the
 * subspace spanned by the prior shapes and the observed coordinate
 * directions (q = rank(Q) <= M + |Omega| << n), and runs every EM
 * step in q dimensions via the Woodbury identity — the same model,
 * evaluated in a different parameterization, so results agree with
 * the dense path to rounding (see DESIGN.md section 7.2).
 */
enum class CovarianceRep
{
    Dense,   //!< Full n x n Sigma (bitwise-stable reference behavior).
    LowRank, //!< Factored alpha I + Q' C Q; O(n q^2) per iteration.
    Auto     //!< LowRank when 4 (M + |Omega| + 1) <= n, else Dense.
};

/** Tunable knobs of the LEO estimator. */
struct LeoOptions
{
    /** EM initialization strategy. */
    EmInit init = EmInit::Offline;
    /** NIW precision-scale hyper-parameter pi (paper: 1). */
    double hyperPi = 1.0;
    /** NIW scale matrix Psi = hyperPsiScale * I. The paper sets
     *  Psi = I in raw units; in normalized (unit-mean) space the
     *  equivalent gentle regularizer is smaller. */
    double hyperPsiScale = 0.02;
    /** Maximum EM iterations (Section 5.5: 3-4 suffice in practice). */
    std::size_t maxIterations = 4;
    /** Relative-change convergence tolerance on mu and sigma^2. */
    double tolerance = 1e-2;
    /** Initial observation-noise variance (normalized space). */
    double initSigma2 = 1e-2;
    /** Floor on sigma^2 to keep the E-step well posed. */
    double minSigma2 = 1e-8;
    /**
     * Threads the EM fit may use. 0 = the process-wide shared pool
     * (sized from LEO_THREADS or hardware concurrency), 1 = strictly
     * serial, N > 1 = a private pool with N - 1 workers plus the
     * caller. The fit is bitwise identical for every value — the
     * parallel reductions use thread-count-independent chunking and
     * a fixed combine tree (see parallel/parallel_for.hh).
     */
    std::size_t threads = 0;
    /**
     * Opt into the straightforward reference implementation of the
     * EM loop (allocating temporaries each iteration, naive kernels).
     * The default workspace path is bitwise identical to it — the
     * estimator tests assert exact equality — just allocation-free
     * and considerably faster at large n. Kept as the executable
     * specification of the fit.
     */
    bool referencePath = false;
    /**
     * Covariance representation (see CovarianceRep). Dense keeps the
     * historical bitwise-stable behavior and remains the default;
     * LowRank trades 0-ULP reproducibility of the dense path for
     * O(n q^2) iterations; Auto picks LowRank exactly when the rank
     * bound q = M + |Omega| + 1 satisfies 4 q <= n. referencePath
     * forces Dense (the reference loop is the dense specification).
     */
    CovarianceRep representation = CovarianceRep::Dense;
    /**
     * When false, low-rank fits skip materializing the n-vector
     * predictionVariance (the q x q posterior core is still stored in
     * LeoFit::varCore, and lowRankPredictiveVariance() evaluates any
     * single entry on demand). Saves an O(n q) expansion per fit for
     * callers — the variance-guided sampler, the serving core — that
     * only ever query a handful of candidate configurations. Dense
     * fits ignore the flag.
     */
    bool expandVariance = true;
};

/** Full output of one EM fit (one metric). */
struct LeoFit
{
    /** Predicted values in raw units, every configuration. */
    linalg::Vector prediction;
    /** Posterior predictive variance (raw units squared). */
    linalg::Vector predictionVariance;
    /** Fitted mean mu (normalized space). */
    linalg::Vector mu;
    /** Fitted configuration covariance Sigma (normalized space);
     *  this is the matrix visualized in Figure 4. */
    linalg::Matrix sigma;
    /** Fitted noise variance sigma^2 (normalized space). */
    double sigma2 = 0.0;
    /** EM iterations executed. */
    std::size_t iterations = 0;
    /** True iff the tolerance was met before maxIterations. */
    bool converged = false;
    /** Marginal log-likelihood of the observed data under theta at
     *  the start of each iteration (monotone non-decreasing up to
     *  the MAP prior terms — a standard EM diagnostic). */
    std::vector<double> logLikelihoodTrace;
    /** Scale anchor used to de-normalize the prediction. */
    double scale = 1.0;
    /** True iff this fit was initialized from a previous fit's
     *  parameters rather than the cold Offline/Zero init. */
    bool warmStarted = false;
    /** Heap allocations observed inside the EM iteration loop when a
     *  counter is registered via setAllocationCounter (0 otherwise).
     *  The workspace path keeps this at zero. */
    std::size_t loopAllocations = 0; // leo-lint: allow(snapshot-completeness) diagnostic counter, not model state
    /** True iff this fit used the low-rank representation. Low-rank
     *  fits leave `sigma` empty (at n = 16384 the dense matrix would
     *  be 2 GB) and carry Sigma factored in the three fields below:
     *  Sigma = alphaDiag I + basisT' coeff basisT. */
    bool lowRank = false;
    /** Low-rank basis Q, stored row-major q x n (row k = basis
     *  vector k); empty on dense fits. */
    linalg::Matrix basisT;
    /** Low-rank core C (q x q, symmetric); empty on dense fits. */
    linalg::Matrix coeff;
    /** Isotropic diagonal term alpha of the factored Sigma. */
    double alphaDiag = 0.0;
    /** Posterior covariance core Ct (q x q) of the final E-step, so
     *  the predictive variance of configuration c is
     *  (alphaDiag + q_c' Ct q_c + sigma2) * scale^2 with q_c = column
     *  c of basisT (see lowRankPredictiveVariance). Empty on dense
     *  fits. */
    linalg::Matrix varCore;

    /**
     * Streaming predictive-variance query: the posterior predictive
     * variance of one configuration, in raw units squared. Reads the
     * expanded predictionVariance when present and otherwise
     * evaluates the low-rank factors directly (no q x n expansion),
     * so callers — schedule-time uncertainty displays, the
     * controller's residual standardization — can query single
     * configurations off an expandVariance = false fit at O(q^2)
     * cost. Bitwise identical to predictionVariance[c] whichever
     * path answers.
     *
     * @param c Configuration index.
     * @throws leo::FatalError when c is out of range or the fit
     *         carries no variance information at all.
     */
    double predictiveVarianceAt(std::size_t c) const;
};

/**
 * Predictive variance of one configuration from a low-rank fit's
 * factored posterior, without expanding the full n-vector: evaluates
 * (alphaDiag + q_c' varCore q_c + sigma2) * scale^2 with the same
 * increasing-index accumulation order as the expanded
 * predictionVariance fill, so the result is bitwise identical to
 * fit.predictionVariance[c].
 *
 * @param fit A low-rank fit (fit.lowRank, non-empty varCore).
 * @param c   Configuration index (column of basisT).
 */
double lowRankPredictiveVariance(const LeoFit &fit, std::size_t c);

/**
 * The LEO estimator.
 */
class LeoEstimator : public Estimator
{
  public:
    /** @param options Tunable knobs (defaults follow the paper). */
    explicit LeoEstimator(LeoOptions options = LeoOptions{});

    std::string name() const override { return "leo"; }

    /** @return The options in use. */
    const LeoOptions &options() const { return options_; }

    MetricEstimate estimateMetric(
        const platform::ConfigSpace &space,
        const std::vector<linalg::Vector> &prior,
        const std::vector<std::size_t> &obs_idx,
        const linalg::Vector &obs_vals) const override;

    /**
     * Warm-refit variant of estimateMetric for incremental callers
     * (active sampling, the runtime controller): same result contract,
     * plus workspace reuse and warm starting across calls.
     *
     * @param ws      Scratch arena reused across calls (may be null).
     * @param warm    Previous fit on the same space to start EM from
     *                (may be null; invalid fits fall back to cold).
     * @param fit_out When non-null, receives the full fit so the
     *                caller can warm-start the next call.
     */
    MetricEstimate estimateMetric(
        const platform::ConfigSpace &space,
        const std::vector<linalg::Vector> &prior,
        const std::vector<std::size_t> &obs_idx,
        const linalg::Vector &obs_vals, linalg::Workspace *ws,
        const LeoFit *warm, LeoFit *fit_out = nullptr) const;

    /**
     * Representation-override variant: identical to the warm-refit
     * overload, but dispatches dense/low-rank from `rep` instead of
     * options().representation. Lets one shared estimator serve
     * callers whose resolved representation differs per request (the
     * multi-tenant service batches tenants with per-tenant Auto
     * resolutions through a single estimator); passing
     * options().representation is bitwise identical to the 7-argument
     * overload. The ridge-retry fallback keeps the same override.
     */
    MetricEstimate estimateMetric(
        const platform::ConfigSpace &space,
        const std::vector<linalg::Vector> &prior,
        const std::vector<std::size_t> &obs_idx,
        const linalg::Vector &obs_vals, linalg::Workspace *ws,
        const LeoFit *warm, LeoFit *fit_out, CovarianceRep rep) const;

    /**
     * Run the full EM fit for one metric and return everything
     * (prediction, fitted parameters, diagnostics).
     *
     * @param prior    Fully observed prior vectors (>= 1).
     * @param obs_idx  Observed target indices (may be empty, in which
     *                 case the fit degenerates to the offline shape).
     * @param obs_vals Observed target values.
     */
    LeoFit fitMetric(const std::vector<linalg::Vector> &prior,
                     const std::vector<std::size_t> &obs_idx,
                     const linalg::Vector &obs_vals) const;

    /**
     * Workspace-and-warm-start variant of fitMetric.
     *
     * With a persistent `ws` the EM iteration loop performs no heap
     * allocations (buffers are acquired up front and reused across
     * calls), and with a valid `warm` fit the EM starts from the
     * previous theta instead of the cold init — typically converging
     * in 1-2 iterations instead of 3-4 on incremental refits. A warm
     * fit whose shapes don't match this problem (or whose parameters
     * are not finite) is silently ignored.
     *
     * Identical theta-zero implies identical output bits: warm fits
     * differ from cold fits only through the initialization.
     *
     * @param ws   Scratch arena (null = a fit-local arena).
     * @param warm Previous LeoFit to start from (null = cold init).
     */
    LeoFit fitMetric(const std::vector<linalg::Vector> &prior,
                     const std::vector<std::size_t> &obs_idx,
                     const linalg::Vector &obs_vals,
                     linalg::Workspace *ws, const LeoFit *warm) const;

  private:
    /** fitMetric with the representation dispatched from `rep`. */
    LeoFit fitMetric(const std::vector<linalg::Vector> &prior,
                     const std::vector<std::size_t> &obs_idx,
                     const linalg::Vector &obs_vals,
                     linalg::Workspace *ws, const LeoFit *warm,
                     CovarianceRep rep) const;

    /** The pool the fit fans across, per options_.threads. */
    parallel::ThreadPool &pool() const;

    LeoOptions options_;
    /** Private pool when options_.threads > 1 (built eagerly in the
     *  constructor so concurrent fits never race on creation). */
    std::unique_ptr<parallel::ThreadPool> pool_;
};

} // namespace leo::estimators

#endif // LEO_ESTIMATORS_LEO_HH
