/**
 * @file
 * Implementation of the LEO hierarchical Bayesian estimator.
 *
 * Two implementations of the EM loop live here:
 *
 *  - The *reference path* (LeoOptions::referencePath) is the
 *    straightforward transcription of Equations (3)-(4): allocating
 *    temporaries every iteration, naive Cholesky/inverse kernels. It
 *    is the executable specification of the fit.
 *  - The default *workspace path* acquires every loop buffer up
 *    front from a linalg::Workspace, factors and inverts in place
 *    with the blocked kernels, and exploits symmetry (lower-triangle
 *    inverse + symv). It produces bitwise-identical output — every
 *    kernel it substitutes preserves the reference's per-entry
 *    floating-point accumulation order — while performing zero heap
 *    allocations inside the iteration loop and roughly halving the
 *    per-iteration flops.
 *
 * The estimator tests assert exact equality between the two paths,
 * at several thread counts, warm and cold.
 */

#include "estimators/leo.hh"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <string>
#include <utility>

#include "estimators/normalization.hh"
#include "estimators/offline.hh"
#include "estimators/sanitize.hh"
#include "linalg/cholesky.hh"
#include "linalg/error.hh"
#include "obs/obs.hh"
#include "parallel/parallel_for.hh"
#include "stats/mvn.hh"

namespace leo::estimators
{

namespace
{

/**
 * Leaf-chunk grain for the per-application reductions: at most 8
 * leaves regardless of worker count, so the combine tree (and with
 * it every rounding decision) depends only on the number of prior
 * applications.
 */
std::size_t
emGrain(std::size_t m)
{
    return (m + 7) / 8;
}

/** Registered heap-allocation counter (test hook; see leo.hh). */
std::size_t (*alloc_counter)() = nullptr;

/** Registry instruments of the EM estimator (lazily registered). */
struct EmObs
{
    obs::Counter fits =
        obs::Registry::global().counter(obs::names::kEmFitsCompleted);
    obs::Counter warm =
        obs::Registry::global().counter(obs::names::kEmFitsWarm);
    obs::Counter iters =
        obs::Registry::global().counter(obs::names::kEmIterationsRun);
    obs::Counter ridge =
        obs::Registry::global().counter(obs::names::kEmRidgeRetried);
    obs::Histogram iter_ms = obs::Registry::global().histogram(
        obs::names::kEmIterMs, obs::defaultTimeBucketsMs());
    obs::Gauge ws_bytes =
        obs::Registry::global().gauge(obs::names::kEmWorkspaceBytes);
};

EmObs &
emObs()
{
    static EmObs o;
    return o;
}

} // namespace

void
setAllocationCounter(std::size_t (*counter)())
{
    alloc_counter = counter;
}

LeoEstimator::LeoEstimator(LeoOptions options) : options_(options)
{
    require(options_.hyperPi >= 0.0, "LeoEstimator: pi must be >= 0");
    require(options_.hyperPsiScale >= 0.0,
            "LeoEstimator: psi must be >= 0");
    require(options_.maxIterations >= 1,
            "LeoEstimator: need >= 1 EM iteration");
    require(options_.initSigma2 > 0.0,
            "LeoEstimator: initial sigma^2 must be > 0");
    if (options_.threads > 1)
        pool_ = std::make_unique<parallel::ThreadPool>(
            options_.threads - 1);
}

parallel::ThreadPool &
LeoEstimator::pool() const
{
    if (pool_)
        return *pool_;
    return options_.threads == 1 ? parallel::ThreadPool::serial()
                                 : parallel::ThreadPool::global();
}

MetricEstimate
LeoEstimator::estimateMetric(const platform::ConfigSpace &space,
                             const std::vector<linalg::Vector> &prior,
                             const std::vector<std::size_t> &obs_idx,
                             const linalg::Vector &obs_vals) const
{
    return estimateMetric(space, prior, obs_idx, obs_vals, nullptr,
                          nullptr, nullptr);
}

MetricEstimate
LeoEstimator::estimateMetric(const platform::ConfigSpace &space,
                             const std::vector<linalg::Vector> &prior,
                             const std::vector<std::size_t> &obs_idx,
                             const linalg::Vector &obs_vals,
                             linalg::Workspace *ws, const LeoFit *warm,
                             LeoFit *fit_out) const
{
    MetricEstimate est;
    if (prior.empty()) {
        // No offline knowledge at all: degenerate to a flat guess at
        // the observed mean (flagged unreliable).
        double flat = 0.0;
        for (double v : obs_vals)
            if (std::isfinite(v) && v > 0.0)
                flat = std::max(flat, v);
        est.values = linalg::Vector(space.size(), flat);
        est.reliable = false;
        return est;
    }
    require(prior.front().size() == space.size(),
            "LeoEstimator: prior/space size mismatch");

    // Sanitize the online observations so a faulted reading degrades
    // the fit instead of crashing it (clean sets pass through with
    // zero copies, keeping the fault-free path bitwise identical).
    const SanitizedObservations clean =
        sanitizeObservations(obs_idx, obs_vals, space.size());
    const std::vector<std::size_t> &idx =
        clean.modified ? clean.indices : obs_idx;
    const linalg::Vector &vals = clean.modified ? clean.values : obs_vals;
    est.samplesRejected = clean.rejected;

    try {
        LeoFit fit = fitMetric(prior, idx, vals, ws, warm);
        if (fit.prediction.allFinite()) {
            est.iterations = fit.iterations;
            // Unreliable only when observations existed but none
            // survived sanitization: the fit is then the bare prior
            // shape with no anchoring to the target.
            est.reliable = obs_idx.empty() || !idx.empty();
            if (fit_out) {
                *fit_out = std::move(fit);
                est.values = fit_out->prediction;
            } else {
                est.values = std::move(fit.prediction);
            }
            return est;
        }
    } catch (const Error &) {
        // Fall through to the ridge retry.
    }

    // The EM fit failed (singular covariance even after the Cholesky
    // jitter schedule) or went non-finite. Retry cold with a heavy
    // NIW ridge — a deliberately over-regularized fit that trades
    // statistical efficiency for existence (DESIGN.md "Failure model
    // and degradation policy").
    emObs().ridge.add(1);
    try {
        LeoOptions ridge = options_;
        ridge.hyperPsiScale =
            std::max(options_.hyperPsiScale * 100.0, 1.0);
        ridge.initSigma2 = std::max(options_.initSigma2, 1e-2);
        ridge.threads = 1;
        const LeoEstimator heavy(ridge);
        LeoFit fit = heavy.fitMetric(prior, idx, vals, nullptr, nullptr);
        if (fit.prediction.allFinite()) {
            est.iterations = fit.iterations;
            est.reliable = false;
            if (fit_out) {
                *fit_out = std::move(fit);
                est.values = fit_out->prediction;
            } else {
                est.values = std::move(fit.prediction);
            }
            return est;
        }
    } catch (const Error &) {
        // Fall through to the prior-mean fallback.
    }

    // Last resort: the prior mean shape, anchored to the observed
    // scale when any observation survived. Always finite; never
    // updates fit_out (the caller's warm state stays intact).
    try {
        linalg::Vector shape = OfflineEstimator::meanShape(prior);
        if (!idx.empty()) {
            const double at_obs = shape.gather(idx).mean();
            if (at_obs > 0.0)
                shape *= vals.mean() / at_obs;
        }
        est.values = std::move(shape);
    } catch (const Error &) {
        est.values = linalg::Vector(space.size(),
                                    idx.empty() ? 0.0 : vals.mean());
    }
    est.reliable = false;
    return est;
}

LeoFit
LeoEstimator::fitMetric(const std::vector<linalg::Vector> &prior,
                        const std::vector<std::size_t> &obs_idx,
                        const linalg::Vector &obs_vals) const
{
    return fitMetric(prior, obs_idx, obs_vals, nullptr, nullptr);
}

LeoFit
LeoEstimator::fitMetric(const std::vector<linalg::Vector> &prior,
                        const std::vector<std::size_t> &obs_idx,
                        const linalg::Vector &obs_vals,
                        linalg::Workspace *ws, const LeoFit *warm) const
{
    require(!prior.empty(), "LeoEstimator: no prior applications");
    require(obs_idx.size() == obs_vals.size(),
            "LeoEstimator: observation index/value mismatch");
    const std::size_t n = prior.front().size();
    for (const linalg::Vector &y : prior)
        require(y.size() == n, "LeoEstimator: ragged prior vectors");
    for (std::size_t idx : obs_idx)
        require(idx < n, "LeoEstimator: observation index out of range");

    // ---- Normalization --------------------------------------------
    // Estimation happens on unit-mean shapes (see normalization.hh).
    const std::vector<linalg::Vector> shapes = normalizeShapes(prior);
    const std::size_t m_prior = shapes.size();
    const std::size_t s = obs_idx.size();
    const bool have_obs = s > 0;
    const double scale = have_obs ? observedScale(obs_vals) : 1.0;
    linalg::Vector x_obs(s);
    for (std::size_t j = 0; j < s; ++j)
        x_obs[j] = obs_vals[j] / scale;

    // Total applications M: priors plus (when observed) the target.
    const double m_total =
        static_cast<double>(m_prior) + (have_obs ? 1.0 : 0.0);

    // ---- Initialization -------------------------------------------
    // Warm start (when a compatible previous fit is supplied) resumes
    // EM from its theta; since warm and cold fits share the loop
    // below, identical theta-zero implies identical output bits.
    const bool warm_ok =
        warm != nullptr && warm->mu.size() == n &&
        warm->sigma.rows() == n && warm->sigma.cols() == n &&
        warm->sigma2 >= options_.minSigma2 && warm->mu.allFinite() &&
        warm->sigma.allFinite();

    linalg::Vector mu(n, 0.0);
    linalg::Matrix sigma_m;
    double sigma2 = options_.initSigma2;
    if (warm_ok) {
        mu = warm->mu;
        sigma_m = warm->sigma;
        sigma2 = warm->sigma2;
    } else {
        // Cold init (Section 5.5: offline init helps).
        if (options_.init == EmInit::Offline) {
            for (const linalg::Vector &x : shapes)
                mu += x;
            mu /= static_cast<double>(m_prior);
        }
        // Residual matrix with rows x_i - mu: sum_i outer(x_i - mu)
        // is its Gram matrix, computed with the blocked kernel.
        linalg::Matrix resid(m_prior, n);
        for (std::size_t i = 0; i < m_prior; ++i)
            for (std::size_t j = 0; j < n; ++j)
                resid.at(i, j) = shapes[i][j] - mu[j];
        sigma_m = linalg::Matrix::gram(resid);
        sigma_m += options_.hyperPi * linalg::Matrix::outer(mu, mu);
        sigma_m.addToDiagonal(options_.hyperPsiScale);
        sigma_m /= m_total + 1.0;
    }

    // ---- EM iterations --------------------------------------------
    parallel::ThreadPool &workers = pool();
    LeoFit fit;
    fit.scale = scale;
    fit.warmStarted = warm_ok;
    fit.logLikelihoodTrace.reserve(options_.maxIterations);
    stats::GaussianPosterior target_post;
    target_post.mean = mu;
    linalg::Vector prev_pred = mu;

    const double total_obs =
        static_cast<double>(m_prior * n + s); // ||L||_F^2

    const auto counter = alloc_counter;

    if (options_.referencePath) {
        const std::size_t alloc0 = counter ? counter() : 0;
        for (std::size_t iter = 0; iter < options_.maxIterations;
             ++iter) {
            fit.iterations = iter + 1;

            // E-step, fully-observed applications (shared algebra):
            //   C_full = sigma^2 I - sigma^4 (Sigma + sigma^2 I)^-1
            //   z_i    = x_i - sigma^2 (Sigma + sigma^2 I)^-1
            //            (x_i - mu)
            linalg::Matrix a = sigma_m;
            a.addToDiagonal(sigma2);
            const linalg::Cholesky chol(a, 1e-6);
            const linalg::Matrix inv = chol.inverse();

            // Fan the per-application E-step across the pool: the
            // shared matrix-vector product inv * (x_i - mu) yields
            // both the posterior mean z_i and the app's
            // log-likelihood quadratic term. Each iteration writes
            // disjoint slots; every reduction below folds in a fixed
            // order, so the fit is bitwise identical at any thread
            // count.
            std::vector<linalg::Vector> z(m_prior);
            linalg::Vector ll_quad(m_prior);
            parallel::parallelFor(
                workers, m_prior, [&](std::size_t i) {
                    const linalg::Vector d = shapes[i] - mu;
                    const linalg::Vector w = inv * d;
                    ll_quad[i] = linalg::dot(d, w);
                    z[i] = shapes[i] - sigma2 * w;
                });

            // Marginal log-likelihood of everything observed under
            // the current theta: fully observed apps are N(mu, Sigma
            // + sigma^2 I); the target contributes its Omega
            // marginal.
            {
                const double log2pi =
                    std::log(2.0 * std::numbers::pi);
                double ll = -0.5 * static_cast<double>(m_prior) *
                            (static_cast<double>(n) * log2pi +
                             chol.logDet());
                for (std::size_t i = 0; i < m_prior; ++i)
                    ll -= 0.5 * ll_quad[i];
                if (have_obs) {
                    linalg::Matrix a_obs = sigma_m.gather(obs_idx);
                    a_obs.addToDiagonal(sigma2);
                    const linalg::Cholesky chol_obs(a_obs, 1e-8);
                    linalg::Vector d(s);
                    for (std::size_t j = 0; j < s; ++j)
                        d[j] = x_obs[j] - mu[obs_idx[j]];
                    const linalg::Vector w = chol_obs.solveLower(d);
                    ll -= 0.5 * (static_cast<double>(s) * log2pi +
                                 chol_obs.logDet() + w.squaredNorm());
                }
                fit.logLikelihoodTrace.push_back(ll);
            }

            // E-step, target application (sparse observations):
            if (have_obs) {
                target_post = stats::conditionOnObservations(
                    mu, sigma_m, obs_idx, x_obs, sigma2, true);
            }

            // M-step: mu (Equation 4, mu_0 = 0).
            linalg::Vector mu_new(n, 0.0);
            for (const linalg::Vector &zi : z)
                mu_new += zi;
            if (have_obs)
                mu_new += target_post.mean;
            mu_new /= m_total + options_.hyperPi;

            // M-step: Sigma (Equation 4; Psi and pi mu mu'
            // normalized inside the bracket per Yu et al. '05 — see
            // DESIGN.md).
            linalg::Matrix s_accum(n, n, 0.0);
            // sum_i C_i for the fully observed apps is m_prior *
            // C_full; C_full = sigma^2 I - sigma^4 inv.
            s_accum += (-sigma2 * sigma2 *
                        static_cast<double>(m_prior)) * inv;
            s_accum.addToDiagonal(sigma2 *
                                  static_cast<double>(m_prior));
            if (have_obs)
                s_accum += target_post.cov;
            // sum_i (z_i - mu)(z_i - mu)': per-chunk Gram partials
            // folded along the fixed combine tree — the chunk layout
            // depends only on m_prior, never on the worker count.
            s_accum += parallel::parallelReduce<linalg::Matrix>(
                workers, m_prior, emGrain(m_prior),
                [&](std::size_t b, std::size_t e) {
                    linalg::Matrix r(e - b, n);
                    for (std::size_t i = b; i < e; ++i)
                        for (std::size_t j = 0; j < n; ++j)
                            r.at(i - b, j) = z[i][j] - mu_new[j];
                    return linalg::Matrix::gram(r);
                },
                [](linalg::Matrix &into, linalg::Matrix &&from) {
                    into += from;
                });
            if (have_obs) {
                const linalg::Vector d = target_post.mean - mu_new;
                s_accum += linalg::Matrix::outer(d, d);
            }
            s_accum += options_.hyperPi *
                       linalg::Matrix::outer(mu_new, mu_new);
            s_accum.addToDiagonal(options_.hyperPsiScale);
            s_accum /= m_total + 1.0;
            s_accum.symmetrize();

            // M-step: sigma^2 (Equation 4).
            double noise_accum = 0.0;
            // Fully observed apps: every configuration contributes.
            for (std::size_t i = 0; i < m_prior; ++i) {
                for (std::size_t j = 0; j < n; ++j) {
                    const double cjj =
                        sigma2 - sigma2 * sigma2 * inv.at(j, j);
                    const double r = z[i][j] - shapes[i][j];
                    noise_accum += cjj + r * r;
                }
            }
            // Target: only the observed configurations contribute.
            if (have_obs) {
                for (std::size_t j = 0; j < s; ++j) {
                    const std::size_t idx = obs_idx[j];
                    const double r =
                        target_post.mean[idx] - x_obs[j];
                    noise_accum +=
                        target_post.cov.at(idx, idx) + r * r;
                }
            }
            double sigma2_new = std::max(noise_accum / total_obs,
                                         options_.minSigma2);

            // Convergence is judged on what the algorithm is for:
            // the target prediction ("3-4 iterations to reach the
            // desired accuracy", Section 5.5). Raw parameters —
            // sigma^2 in particular — keep drifting geometrically
            // long after the prediction has stabilized.
            const linalg::Vector &pred =
                have_obs ? target_post.mean : mu_new;
            const double dpred = (pred - prev_pred).norm() /
                                 (prev_pred.norm() + 1e-12);
            prev_pred = pred;

            mu = std::move(mu_new);
            sigma_m = std::move(s_accum);
            sigma2 = sigma2_new;

            if (dpred < options_.tolerance) {
                fit.converged = true;
                break;
            }
        }
        if (counter)
            fit.loopAllocations = counter() - alloc0;

        // ---- Prediction -------------------------------------------
        // Final E-step for the target under the fitted parameters;
        // the prediction is E[z_M | theta-hat] rescaled to raw units.
        if (have_obs) {
            target_post = stats::conditionOnObservations(
                mu, sigma_m, obs_idx, x_obs, sigma2, true);
        } else {
            target_post.mean = mu;
            target_post.cov = sigma_m;
        }

        fit.prediction = linalg::Vector(n);
        fit.predictionVariance = linalg::Vector(n);
        for (std::size_t j = 0; j < n; ++j) {
            fit.prediction[j] =
                std::max(target_post.mean[j] * scale, 0.0);
            fit.predictionVariance[j] =
                (target_post.cov.at(j, j) + sigma2) * scale * scale;
        }
        fit.mu = std::move(mu);
        fit.sigma = std::move(sigma_m);
        fit.sigma2 = sigma2;
        return fit;
    }

    // ---- Workspace path -------------------------------------------
    // Acquire every buffer the loop touches up front; from here to
    // the end of the loop the only heap traffic is inside
    // ThreadPool::post when fanning to workers (serial fits are
    // strictly allocation-free, which the estimator tests assert).
    // Observability: the reference path above stays uninstrumented —
    // it is the executable specification the 0-ULP obs test compares
    // this instrumented path against.
    EmObs &eo = emObs();
    obs::Span fit_span(obs::names::kEmFitSpan, "em");
    fit_span.arg("apps", static_cast<double>(m_prior));
    fit_span.arg("configs", static_cast<double>(n));
    linalg::Workspace local_ws;
    linalg::Workspace &arena = ws ? *ws : local_ws;

    linalg::Matrix &inv = arena.matrix("em.inv", n, n);
    linalg::Matrix &a_obs = arena.matrix("em.aobs", s, s);
    linalg::Vector &d_obs = arena.vector("em.dobs", s);
    std::vector<linalg::Vector> &z =
        arena.vectorArray("em.z", m_prior, n);
    std::vector<linalg::Vector> &dscr =
        arena.vectorArray("em.d", m_prior, n);
    linalg::Vector &ll_quad = arena.vector("em.llquad", m_prior);
    linalg::Vector &mu_new = arena.vector("em.munew", n);
    linalg::Matrix &s_accum = arena.matrix("em.saccum", n, n);
    linalg::Vector &d_target = arena.vector("em.dtarget", n);

    const std::size_t grain = emGrain(m_prior);
    const std::size_t chunks = parallel::chunkCount(m_prior, grain);
    std::vector<linalg::Matrix *> gram_parts(chunks);
    std::vector<linalg::Matrix *> resid_parts(chunks);
    for (std::size_t c = 0; c < chunks; ++c) {
        const std::size_t b = c * grain;
        const std::size_t e = std::min(m_prior, b + grain);
        resid_parts[c] =
            &arena.matrix("em.resid." + std::to_string(c), e - b, n);
        gram_parts[c] =
            &arena.matrix("em.gram." + std::to_string(c), n, n);
    }

    linalg::Cholesky chol;
    chol.reserve(n);
    linalg::Cholesky::reserveInverseScratch(arena, n);
    linalg::Cholesky chol_obs;
    stats::ConditioningScratch cond;
    if (have_obs) {
        chol_obs.reserve(s);
        cond.reserve(n, s);
    }
    target_post.cov.resize(n, n);

    // Touch the registry before the allocation audit starts: the
    // calling thread's shard (and every instrument cell block) is
    // created here, so in-loop counter adds and histogram records
    // below are guaranteed heap-free.
    obs::Registry::global().prepareThread();
    eo.ws_bytes.set(static_cast<double>(arena.bytes()));

    // The allocation-audited region: every buffer the loop touches
    // was acquired from the arena above, and the operator-new
    // counting hook in the estimator tests asserts the serial loop
    // performs zero heap allocations. leo-lint's hot-alloc check
    // enforces the same contract statically.
    // leo-lint: hot-begin
    const std::size_t alloc0 = counter ? counter() : 0;
    for (std::size_t iter = 0; iter < options_.maxIterations; ++iter) {
        obs::Span iter_span(obs::names::kEmIterSpan, "em");
        obs::ScopedMs iter_timer(eo.iter_ms);
        fit.iterations = iter + 1;

        // E-step, fully-observed applications: factor
        // (Sigma + sigma^2 I) in place and expand the lower triangle
        // of its inverse (the mirror is never materialized — the
        // consumers below are symmetry-aware).
        chol.factorize(sigma_m, sigma2, 1e-6);
        chol.inverseInto(inv, arena, /*mirror=*/false);

        parallel::parallelFor(workers, m_prior, [&](std::size_t i) {
            linalg::Vector &d = dscr[i];
            linalg::Vector &zi = z[i];
            d = shapes[i];
            d -= mu;
            linalg::symv(inv, d, zi);
            ll_quad[i] = linalg::dot(d, zi);
            for (std::size_t j = 0; j < n; ++j)
                zi[j] = shapes[i][j] - sigma2 * zi[j];
        });

        // Marginal log-likelihood under the current theta.
        {
            const double log2pi = std::log(2.0 * std::numbers::pi);
            double ll = -0.5 * static_cast<double>(m_prior) *
                        (static_cast<double>(n) * log2pi +
                         chol.logDet());
            for (std::size_t i = 0; i < m_prior; ++i)
                ll -= 0.5 * ll_quad[i];
            if (have_obs) {
                sigma_m.gatherInto(a_obs, obs_idx);
                chol_obs.factorize(a_obs, sigma2, 1e-8);
                for (std::size_t j = 0; j < s; ++j)
                    d_obs[j] = x_obs[j] - mu[obs_idx[j]];
                chol_obs.solveLowerInPlace(d_obs);
                ll -= 0.5 * (static_cast<double>(s) * log2pi +
                             chol_obs.logDet() +
                             d_obs.squaredNorm());
            }
            fit.logLikelihoodTrace.push_back(ll);
            iter_span.arg("iter", static_cast<double>(iter + 1));
            if (iter > 0) {
                const auto &t = fit.logLikelihoodTrace;
                iter_span.arg("ll_delta",
                              t[t.size() - 1] - t[t.size() - 2]);
            }
        }

        // E-step, target application (sparse observations):
        if (have_obs) {
            stats::conditionOnObservationsInto(
                target_post, cond, mu, sigma_m, obs_idx, x_obs,
                sigma2, true);
        }

        // M-step: mu (Equation 4, mu_0 = 0).
        mu_new.fill(0.0);
        for (const linalg::Vector &zi : z)
            mu_new += zi;
        if (have_obs)
            mu_new += target_post.mean;
        mu_new /= m_total + options_.hyperPi;

        // M-step: Sigma (Equation 4).
        s_accum.fill(0.0);
        s_accum.addScaledSymmetric(
            -sigma2 * sigma2 * static_cast<double>(m_prior), inv);
        s_accum.addToDiagonal(sigma2 * static_cast<double>(m_prior));
        if (have_obs)
            s_accum += target_post.cov;
        parallel::parallelReduceInto(
            workers, m_prior, grain, gram_parts,
            [&](std::size_t b, std::size_t e, linalg::Matrix &part) {
                linalg::Matrix &r = *resid_parts[b / grain];
                for (std::size_t i = b; i < e; ++i)
                    for (std::size_t j = 0; j < n; ++j)
                        r.at(i - b, j) = z[i][j] - mu_new[j];
                linalg::Matrix::gramInto(part, r);
            },
            [](linalg::Matrix &into, const linalg::Matrix &from) {
                into += from;
            });
        s_accum += *gram_parts[0];
        if (have_obs) {
            for (std::size_t j = 0; j < n; ++j)
                d_target[j] = target_post.mean[j] - mu_new[j];
            s_accum.outerAddInto(1.0, d_target, d_target);
        }
        s_accum.outerAddInto(options_.hyperPi, mu_new, mu_new);
        s_accum.addToDiagonal(options_.hyperPsiScale);
        s_accum /= m_total + 1.0;
        s_accum.symmetrize();

        // M-step: sigma^2 (Equation 4).
        double noise_accum = 0.0;
        for (std::size_t i = 0; i < m_prior; ++i) {
            for (std::size_t j = 0; j < n; ++j) {
                const double cjj =
                    sigma2 - sigma2 * sigma2 * inv.at(j, j);
                const double r = z[i][j] - shapes[i][j];
                noise_accum += cjj + r * r;
            }
        }
        if (have_obs) {
            for (std::size_t j = 0; j < s; ++j) {
                const std::size_t idx = obs_idx[j];
                const double r = target_post.mean[idx] - x_obs[j];
                noise_accum += target_post.cov.at(idx, idx) + r * r;
            }
        }
        double sigma2_new =
            std::max(noise_accum / total_obs, options_.minSigma2);

        // Convergence on the target prediction, as in the reference
        // path (the explicit difference loop reproduces
        // (pred - prev_pred).norm() term for term).
        const linalg::Vector &pred =
            have_obs ? target_post.mean : mu_new;
        double dd = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            const double t = pred[j] - prev_pred[j];
            dd += t * t;
        }
        const double dpred =
            std::sqrt(dd) / (prev_pred.norm() + 1e-12);
        prev_pred = pred;

        // Swap theta into place; the swapped-out buffers are
        // overwritten wholesale next iteration.
        std::swap(mu, mu_new);
        std::swap(sigma_m, s_accum);
        sigma2 = sigma2_new;

        if (dpred < options_.tolerance) {
            fit.converged = true;
            break;
        }
    }
    if (counter)
        fit.loopAllocations = counter() - alloc0;
    // leo-lint: hot-end

    eo.fits.add(1);
    if (warm_ok)
        eo.warm.add(1);
    eo.iters.add(fit.iterations);
    fit_span.arg("iters", static_cast<double>(fit.iterations));
    fit_span.arg("converged", fit.converged ? 1.0 : 0.0);

    // ---- Prediction ------------------------------------------------
    // Final E-step for the target under the fitted parameters; the
    // prediction is E[z_M | theta-hat] rescaled to raw units.
    if (have_obs) {
        stats::conditionOnObservationsInto(target_post, cond, mu,
                                           sigma_m, obs_idx, x_obs,
                                           sigma2, true);
    } else {
        target_post.mean = mu;
        target_post.cov = sigma_m;
    }

    fit.prediction = linalg::Vector(n);
    fit.predictionVariance = linalg::Vector(n);
    for (std::size_t j = 0; j < n; ++j) {
        fit.prediction[j] =
            std::max(target_post.mean[j] * scale, 0.0);
        fit.predictionVariance[j] =
            (target_post.cov.at(j, j) + sigma2) * scale * scale;
    }
    fit.mu = std::move(mu);
    fit.sigma = std::move(sigma_m);
    fit.sigma2 = sigma2;
    return fit;
}

} // namespace leo::estimators
